#include <gtest/gtest.h>

#include "poly/affine.hpp"
#include "poly/dependence.hpp"
#include "poly/domain.hpp"
#include "poly/program.hpp"
#include "ppn/workloads.hpp"

namespace ppnpart::poly {
namespace {

// --------------------------------------------------------------- affine ---

TEST(Affine, EvaluateAndAccessors) {
  AffineExpr e(2, 3);   // 3
  e.set_coeff(0, 2);    // 2i + 3
  e.set_coeff(1, -1);   // 2i - j + 3
  const std::int64_t point[] = {4, 5};
  EXPECT_EQ(e.evaluate(point), 2 * 4 - 5 + 3);
  EXPECT_EQ(e.coeff(0), 2);
  EXPECT_EQ(e.constant_term(), 3);
}

TEST(Affine, VarAndConstantFactories) {
  const AffineExpr i = AffineExpr::var(2, 0);
  const AffineExpr c = AffineExpr::constant(2, 7);
  const std::int64_t point[] = {3, 9};
  EXPECT_EQ(i.evaluate(point), 3);
  EXPECT_EQ(c.evaluate(point), 7);
}

TEST(Affine, Arithmetic) {
  const AffineExpr i = AffineExpr::var(2, 0);
  const AffineExpr j = AffineExpr::var(2, 1);
  const AffineExpr e = i * 2 + j - 1;
  const std::int64_t point[] = {5, 3};
  EXPECT_EQ(e.evaluate(point), 12);
  const AffineExpr sum = e + e;
  EXPECT_EQ(sum.evaluate(point), 24);
  const AffineExpr diff = e - i;
  EXPECT_EQ(diff.evaluate(point), 7);
}

TEST(Affine, DimensionMismatchThrows) {
  const AffineExpr a(2);
  const AffineExpr b(3);
  EXPECT_THROW(a + b, std::invalid_argument);
  const std::int64_t point[] = {1};
  EXPECT_THROW(a.evaluate(point), std::invalid_argument);
}

TEST(Affine, ToString) {
  AffineExpr e(2, -1);
  e.set_coeff(0, 2);
  e.set_coeff(1, -3);
  EXPECT_EQ(e.to_string(), "2*i - 3*j - 1");
  EXPECT_EQ(AffineExpr::constant(1, 0).to_string(), "0");
  EXPECT_EQ(AffineExpr::var(1, 0).to_string(), "i");
}

// --------------------------------------------------------------- domain ---

TEST(Domain, BoxCardinality) {
  const IterationDomain d({{0, 9}, {1, 5}});
  EXPECT_EQ(d.cardinality(), 50u);
  EXPECT_EQ(d.box_volume(), 50u);
  EXPECT_FALSE(d.empty());
}

TEST(Domain, EmptyBox) {
  const IterationDomain d({{3, 2}});
  EXPECT_EQ(d.cardinality(), 0u);
  EXPECT_TRUE(d.empty());
}

TEST(Domain, Contains) {
  const IterationDomain d({{0, 4}, {0, 4}});
  const std::int64_t inside[] = {2, 3};
  const std::int64_t outside[] = {5, 0};
  EXPECT_TRUE(d.contains(inside));
  EXPECT_FALSE(d.contains(outside));
}

TEST(Domain, GuardRestrictsCardinality) {
  // Triangle: 0 <= i, j <= 9, guard i - j >= 0 (j <= i).
  IterationDomain d({{0, 9}, {0, 9}});
  AffineExpr guard = AffineExpr::var(2, 0) - AffineExpr::var(2, 1);
  d.add_guard(guard);
  EXPECT_EQ(d.cardinality(), 55u);  // 10*11/2
  const std::int64_t good[] = {5, 5};
  const std::int64_t bad[] = {3, 7};
  EXPECT_TRUE(d.contains(good));
  EXPECT_FALSE(d.contains(bad));
}

TEST(Domain, ForEachPointLexicographic) {
  const IterationDomain d({{0, 1}, {0, 1}});
  std::vector<std::vector<std::int64_t>> points;
  d.for_each_point([&](std::span<const std::int64_t> p) {
    points.emplace_back(p.begin(), p.end());
  });
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0], (std::vector<std::int64_t>{0, 0}));
  EXPECT_EQ(points[1], (std::vector<std::int64_t>{0, 1}));
  EXPECT_EQ(points[2], (std::vector<std::int64_t>{1, 0}));
  EXPECT_EQ(points[3], (std::vector<std::int64_t>{1, 1}));
}

TEST(Domain, GuardDimensionMismatchThrows) {
  IterationDomain d({{0, 1}});
  EXPECT_THROW(d.add_guard(AffineExpr(2)), std::invalid_argument);
}

// -------------------------------------------------------------- program ---

TEST(Program, ExternalInputsDetected) {
  const Program prog = ppn::jacobi1d_program(10, 2);
  const auto inputs = prog.external_inputs();
  ASSERT_EQ(inputs.size(), 1u);
  EXPECT_EQ(inputs[0], "A0");
}

TEST(Program, WriterOf) {
  const Program prog = ppn::jacobi1d_program(10, 2);
  EXPECT_EQ(prog.writer_of("A1"), 0);
  EXPECT_EQ(prog.writer_of("A2"), 1);
  EXPECT_EQ(prog.writer_of("A0"), -1);
}

TEST(Program, ValidateCatchesDoubleWrite) {
  Program prog;
  Statement s1, s2;
  s1.name = "S1";
  s2.name = "S2";
  s1.domain = IterationDomain({{0, 3}});
  s2.domain = IterationDomain({{0, 3}});
  ArrayAccess w;
  w.array = "X";
  w.indices = {AffineExpr::var(1, 0)};
  s1.write = w;
  s2.write = w;
  prog.statements = {s1, s2};
  EXPECT_NE(prog.validate().find("single-assignment"), std::string::npos);
}

TEST(Program, ValidateCatchesDuplicateNames) {
  Program prog;
  Statement s;
  s.name = "S";
  s.domain = IterationDomain({{0, 1}});
  prog.statements = {s, s};
  EXPECT_NE(prog.validate().find("duplicate"), std::string::npos);
}

TEST(Program, ValidateCatchesDimensionMismatch) {
  Program prog;
  Statement s;
  s.name = "S";
  s.domain = IterationDomain({{0, 3}});  // 1-D domain
  ArrayAccess w;
  w.array = "X";
  w.indices = {AffineExpr::var(2, 0)};  // 2-D access
  s.write = w;
  prog.statements = {s};
  EXPECT_NE(prog.validate().find("dimension"), std::string::npos);
}

// ----------------------------------------------------------- dependence ---

TEST(Dependence, Jacobi1dVolumes) {
  // width 10: interior i in [1,8] => 8 iterations; stage 2 reads stage 1's
  // A1 at i-1, i, i+1. A1 was written for i in [1,8]. Reads of A1[j] hit
  // for j in [1,8]: i-1 in [1,8] => i in [2,8]: 7; i in [1,8]: 8; i+1 =>
  // i in [1,7]: 7.
  const Program prog = ppn::jacobi1d_program(10, 2);
  const DependenceAnalysis analysis = compute_dependences(prog);
  ASSERT_EQ(analysis.flows.size(), 3u);
  std::uint64_t total = 0;
  for (const Dependence& d : analysis.flows) {
    EXPECT_EQ(d.producer, 0u);
    EXPECT_EQ(d.consumer, 1u);
    EXPECT_EQ(d.array, "A1");
    total += d.volume;
  }
  EXPECT_EQ(total, 7u + 8u + 7u);
}

TEST(Dependence, ExternalReadsCounted) {
  const Program prog = ppn::jacobi1d_program(10, 1);
  const DependenceAnalysis analysis = compute_dependences(prog);
  EXPECT_TRUE(analysis.flows.empty());
  ASSERT_EQ(analysis.external_reads.size(), 3u);  // A0 read thrice
  for (const auto& ext : analysis.external_reads) {
    EXPECT_EQ(ext.array, "A0");
    EXPECT_EQ(ext.volume, 8u);  // all 8 consumer iterations
  }
}

TEST(Dependence, ProducerConsumerChainVolumes) {
  const Program prog = ppn::producer_consumer_program(3, 16);
  const DependenceAnalysis analysis = compute_dependences(prog);
  ASSERT_EQ(analysis.flows.size(), 2u);
  for (const Dependence& d : analysis.flows) {
    EXPECT_EQ(d.volume, 16u);
    EXPECT_EQ(d.consumer, d.producer + 1);
  }
  ASSERT_EQ(analysis.external_reads.size(), 1u);
  EXPECT_EQ(analysis.external_reads[0].volume, 16u);
}

TEST(Dependence, MatmulSelfDependencePresent) {
  const Program prog = ppn::matmul_program(2, 3, 2);
  const DependenceAnalysis analysis = compute_dependences(prog);
  bool saw_self = false;
  for (const Dependence& d : analysis.flows) {
    if (d.producer == d.consumer) {
      saw_self = true;
      EXPECT_EQ(d.array, "S");
      // S[i][j][k-1] exists for k in [1, m-1]: n*p*(m-1) = 2*2*2 = 8.
      EXPECT_EQ(d.volume, 8u);
    }
  }
  EXPECT_TRUE(saw_self);
}

TEST(Dependence, MatmulPipeVolumes) {
  const Program prog = ppn::matmul_program(2, 3, 2);
  const DependenceAnalysis analysis = compute_dependences(prog);
  // Smul -> Sacc via P: full n*p*m = 12; Sacc -> Sout via S[i][j][m-1]: 4.
  std::uint64_t p_volume = 0, out_volume = 0;
  for (const Dependence& d : analysis.flows) {
    if (d.array == "P") p_volume = d.volume;
    if (d.array == "S" && d.producer != d.consumer) out_volume = d.volume;
  }
  EXPECT_EQ(p_volume, 12u);
  EXPECT_EQ(out_volume, 4u);
}

TEST(Dependence, SplitJoinFanout) {
  const Program prog = ppn::split_join_program(3, 8);
  const DependenceAnalysis analysis = compute_dependences(prog);
  // Split -> each worker (3 flows of 8) + workers -> join (3 flows of 8).
  EXPECT_EQ(analysis.flows.size(), 6u);
  for (const Dependence& d : analysis.flows) EXPECT_EQ(d.volume, 8u);
}

TEST(Dependence, RejectsInvalidProgram) {
  Program prog;
  Statement s;
  s.name = "";
  prog.statements = {s};
  EXPECT_THROW(compute_dependences(prog), std::invalid_argument);
}

}  // namespace
}  // namespace ppnpart::poly
