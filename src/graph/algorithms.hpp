#pragma once
// Basic graph algorithms shared by the partitioners and the test suite.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ppnpart::graph {

/// BFS order from `source`; unreachable nodes are absent.
std::vector<NodeId> bfs_order(const Graph& g, NodeId source);

/// Component id per node, ids dense in [0, count).
struct Components {
  std::vector<std::uint32_t> component_of;
  std::uint32_t count = 0;
};
Components connected_components(const Graph& g);

bool is_connected(const Graph& g);

/// Induced subgraph on `nodes` (need not be sorted; duplicates invalid).
/// `original_of[i]` gives the source node of new node i.
struct Subgraph {
  Graph graph;
  std::vector<NodeId> original_of;
};
Subgraph induced_subgraph(const Graph& g, const std::vector<NodeId>& nodes);

/// Relabels nodes: new id of u is perm[u]; perm must be a permutation.
Graph permute(const Graph& g, const std::vector<NodeId>& perm);

struct DegreeStats {
  std::uint32_t min_degree = 0;
  std::uint32_t max_degree = 0;
  double mean_degree = 0;
  Weight min_node_weight = 0;
  Weight max_node_weight = 0;
  Weight min_edge_weight = 0;
  Weight max_edge_weight = 0;
};
DegreeStats degree_stats(const Graph& g);

}  // namespace ppnpart::graph
