// Concurrency stress surface for ThreadSanitizer — the CI tsan job runs
// this (and the whole suite) under -fsanitize=thread. Each test hammers one
// of the documented cross-thread seams from many threads at once:
//
//   * engine streaming: submit/poll/wait with identical keys (single-flight
//     coalescing) and distinct keys, racing stats() and metrics snapshots;
//   * similarity admission: concurrent run_one over near-identical graphs,
//     so sketch probes, index inserts and warm starts interleave;
//   * coarsening cache: get-or-build single-flight from many threads on the
//     same key plus churn on distinct keys;
//   * tracer seqlock: writers record() into the ring while readers
//     snapshot(), including ring wraparound (the payload copy is the one
//     deliberate benign race — trace.cpp makes it TSan-visible-clean);
//   * metrics registry: get-or-create races, relaxed counter/histogram
//     updates racing snapshot();
//   * stop tokens: late deadline arming and parent linking racing
//     stop_requested() polls.
//
// Instances are deliberately small: the point is interleavings, not load,
// and TSan multiplies runtime by ~10x.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "graph/delta.hpp"
#include "graph/generators.hpp"
#include "partition/coarsen_cache.hpp"
#include "partition/parallel.hpp"
#include "partition/workspace.hpp"
#include "support/fault_injection.hpp"
#include "support/metrics.hpp"
#include "support/prng.hpp"
#include "support/stop_token.hpp"
#include "support/trace.hpp"

namespace ppnpart {
namespace {

std::shared_ptr<const graph::Graph> make_shared_graph(std::uint64_t seed,
                                                      graph::NodeId nodes) {
  graph::ProcessNetworkParams params;
  params.num_nodes = nodes;
  params.layers = std::max<std::uint32_t>(4, nodes / 12);
  support::Rng rng(seed);
  return std::make_shared<const graph::Graph>(
      graph::random_process_network(params, rng));
}

engine::Job make_job(std::shared_ptr<const graph::Graph> g,
                     std::uint64_t seed) {
  engine::Job job;
  job.graph = std::move(g);
  job.request.k = 4;
  job.request.seed = seed;
  return job;
}

/// Launches `n` threads over `fn(thread_index)` and joins them all.
template <typename Fn>
void run_threads(unsigned n, Fn fn) {
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (unsigned t = 0; t < n; ++t) threads.emplace_back(fn, t);
  for (std::thread& th : threads) th.join();
}

TEST(RaceStressTest, EngineSubmitPollStats) {
  engine::EngineOptions opt;
  opt.portfolio = engine::Portfolio::parse("gp,kl").value();
  engine::Engine eng(opt);

  // Two shared graphs: submissions collide on keys (exact hits, coalescing)
  // and diverge (distinct portfolio fan-outs) at the same time.
  const auto g_a = make_shared_graph(1, 48);
  const auto g_b = make_shared_graph(2, 64);

  std::atomic<bool> stop{false};
  std::thread observer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)eng.stats();
      (void)support::MetricsRegistry::global().snapshot();
      std::this_thread::yield();
    }
  });

  constexpr unsigned kThreads = 6;
  constexpr int kJobsPerThread = 8;
  run_threads(kThreads, [&](unsigned t) {
    for (int i = 0; i < kJobsPerThread; ++i) {
      // Half the traffic shares one (graph, request) key across threads;
      // the rest spreads over per-thread seeds.
      const bool shared_key = (i % 2) == 0;
      engine::Job job = make_job(shared_key ? g_a : g_b,
                                 shared_key ? 7 : 100 + t * 16 + i);
      const engine::Engine::JobId id = eng.submit(std::move(job));
      const engine::PortfolioOutcome out = eng.wait(id);
      EXPECT_FALSE(out.winner.empty());
      EXPECT_TRUE(out.best.partition.complete());
    }
  });
  stop.store(true, std::memory_order_relaxed);
  observer.join();
}

TEST(RaceStressTest, SimilarityAdmissionConcurrentProbes) {
  engine::EngineOptions opt;
  opt.portfolio = engine::Portfolio::parse("gp,kl").value();
  opt.similarity.enabled = true;
  engine::Engine eng(opt);

  // A base graph plus near-twins built through tiny deltas: concurrent
  // run_one calls race sketch computation, index insertion and diff-based
  // warm starts against each other.
  const auto base = make_shared_graph(11, 64);
  std::vector<std::shared_ptr<const graph::Graph>> variants{base};
  for (int v = 1; v <= 3; ++v) {
    graph::GraphDelta delta(base->num_nodes());
    delta.add_edge(0, static_cast<graph::NodeId>(v * 7 + 1), 2 + v);
    variants.push_back(std::make_shared<const graph::Graph>(
        delta.apply(*base).graph));
  }

  run_threads(6, [&](unsigned t) {
    for (int i = 0; i < 6; ++i) {
      const auto& g = variants[(t + static_cast<unsigned>(i)) % variants.size()];
      engine::Job job = make_job(g, 5);
      const engine::PortfolioOutcome out = eng.run_one(job.graph, job.request);
      EXPECT_EQ(out.best.partition.size(), g->num_nodes());
      EXPECT_TRUE(out.best.partition.complete());
    }
  });
}

TEST(RaceStressTest, SimilarityCountersStaySolventUnderAsyncVerdicts) {
  // The probe-counting transaction: with warm-start verdicts landing on
  // pool threads (deferred matches, parked followers resuming, declines
  // falling back to full runs), a stats() reader racing the whole mess must
  // NEVER see probes != near_hits + declines — the probe and its verdict
  // are bumped under one lock at resolution time, not split across the
  // admission and the verdict.
  engine::EngineOptions opt;
  opt.portfolio = engine::Portfolio::parse("gp").value();
  opt.similarity.enabled = true;
  engine::Engine eng(opt);

  const auto base = make_shared_graph(31, 64);
  std::vector<std::shared_ptr<const graph::Graph>> variants;
  for (int v = 0; v < 8; ++v) {
    graph::GraphDelta delta(base->num_nodes());
    delta.add_edge(static_cast<graph::NodeId>(v),
                   static_cast<graph::NodeId>(v * 5 + 3), 2 + v);
    variants.push_back(std::make_shared<const graph::Graph>(
        delta.apply(*base).graph));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::thread observer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const engine::EngineStats s = eng.stats();
      if (s.similarity.probes !=
          s.similarity.near_hits + s.similarity.declines)
        torn.fetch_add(1, std::memory_order_relaxed);
    }
  });

  run_threads(6, [&](unsigned t) {
    for (int i = 0; i < 6; ++i) {
      // Distinct near-twins per iteration: every admission really probes
      // (no exact hits), and bursts of them race leader registration,
      // parking, and index inserts against each other.
      const auto& g = variants[(t + static_cast<unsigned>(i) * 3) %
                               variants.size()];
      engine::Job job = make_job(g, 5);
      const engine::PortfolioOutcome out = eng.run_one(job.graph, job.request);
      EXPECT_EQ(out.best.partition.size(), g->num_nodes());
      EXPECT_TRUE(out.best.partition.complete());
    }
  });
  stop.store(true, std::memory_order_relaxed);
  observer.join();

  EXPECT_EQ(torn.load(), 0u);
  const engine::EngineStats s = eng.stats();
  EXPECT_EQ(s.similarity.probes, s.similarity.near_hits + s.similarity.declines);
  EXPECT_GT(s.similarity.probes, 0u);
}

TEST(RaceStressTest, CoarsenCacheSingleFlight) {
  part::CoarseningCache cache(8);
  const auto g = make_shared_graph(21, 96);
  const std::uint64_t key = part::graph_digest(*g);
  part::CoarsenOptions options;

  run_threads(8, [&](unsigned t) {
    for (int i = 0; i < 12; ++i) {
      // Everyone collides on the shared key; every fourth call churns a
      // per-thread key so inserts and eviction race the coalesced builds.
      if (i % 4 == 3) {
        (void)cache.hierarchy(key + 1000 + t, options, *g);
      } else {
        const auto h = cache.hierarchy(key, options, *g);
        ASSERT_NE(h, nullptr);
        EXPECT_GE(h->num_levels(), 1u);
      }
    }
  });
  EXPECT_GT(cache.stats().hits + cache.stats().misses, 0u);
}

TEST(RaceStressTest, TracerRecordVsSnapshot) {
  // A tiny private ring forces continuous wraparound, so writers lap each
  // other and readers constantly observe slots mid-write.
  support::Tracer tracer(64);
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&tracer, &stop, w] {
      support::TraceEvent ev;
      ev.cat = "stress";
      ev.name = "evt";
      ev.kind = support::TraceEvent::Kind::kInstant;
      ev.tid = static_cast<std::uint32_t>(w + 1);
      for (std::uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        ev.ts_us = i;
        ev.id = i;
        tracer.record(ev);
      }
    });
  }
  // Wait until the ring has wrapped a few times before reading: this pins
  // the writers as actually running (no scheduling flake on fast machines)
  // and makes every snapshot below contend with live overwrites.
  while (tracer.recorded() < 4 * 64) std::this_thread::yield();
  for (int r = 0; r < 200; ++r) {
    const auto events = tracer.snapshot();
    for (const support::TraceEvent& ev : events) {
      // A torn payload would show a mixed-up event; every accepted slot
      // must be internally consistent.
      EXPECT_STREQ(ev.cat, "stress");
      EXPECT_STREQ(ev.name, "evt");
      EXPECT_EQ(ev.ts_us, ev.id);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : writers) th.join();
  EXPECT_GT(tracer.recorded(), 0u);
}

TEST(RaceStressTest, MetricsRegistryAndInstruments) {
  auto& registry = support::MetricsRegistry::global();
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)registry.snapshot();
      std::this_thread::yield();
    }
  });

  run_threads(6, [&](unsigned t) {
    // Same names from every thread: the get-or-create path races itself,
    // then the relaxed updates race the snapshots.
    auto& hits = registry.counter("stress.hits");
    auto& depth = registry.gauge("stress.depth");
    auto& lat = registry.histogram("stress.latency_us");
    for (int i = 0; i < 2000; ++i) {
      hits.add();
      depth.set(static_cast<std::int64_t>(t));
      lat.observe(static_cast<double>(i % 97));
    }
  });
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_GE(registry.counter("stress.hits").value(), 6u * 2000u);
}

TEST(RaceStressTest, StopTokenLateArming) {
  for (int round = 0; round < 20; ++round) {
    support::StopToken parent;
    support::StopToken token;
    std::atomic<bool> done{false};
    std::vector<std::thread> pollers;
    for (int p = 0; p < 3; ++p) {
      pollers.emplace_back([&] {
        while (!token.stop_requested()) std::this_thread::yield();
        done.store(true, std::memory_order_relaxed);
      });
    }
    // Arm everything late, from a fourth thread, while the polls spin.
    std::thread controller([&] {
      token.set_deadline_after(30.0);  // far future: must not fire
      token.set_parent(&parent);
      parent.request_stop();
    });
    controller.join();
    for (std::thread& th : pollers) th.join();
    EXPECT_TRUE(done.load());
    EXPECT_FALSE(token.deadline_expired());
  }
}

TEST(RaceStressTest, QueueShedRacesFaultsAndLateArming) {
  // The overload seams all at once: a tiny bounded queue sheds under
  // drop_oldest while injected member/pool-task exceptions propagate
  // through fan-out and callers arm stop deadlines AFTER submitting — the
  // three mechanisms that each touch JobState/queue_/stats_ from different
  // threads. The contract: every wait() returns (shed jobs are born
  // finished), and completed + rejected + shed covers every job in the
  // final snapshot with no torn intermediate ones.
  const bool chaos = support::faults_compiled_in();
  if (chaos) {
    auto plan = support::parse_fault_plan(
        "seed=21,rate=0.25,sites=member.run+pool.task");
    ASSERT_TRUE(plan.is_ok()) << plan.message();
    support::FaultInjector::global().reset_counts();
    support::FaultInjector::global().arm(plan.value());
  }

  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"gp", "metislike"}};
  opts.queue_capacity = 2;
  opts.max_running_jobs = 1;
  opts.shed_policy = engine::ShedPolicy::kDropOldest;
  engine::Engine eng(opts);

  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 6;
  std::atomic<std::uint64_t> finished{0};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {
    while (!stop_reader.load(std::memory_order_relaxed)) {
      const engine::EngineStats s = eng.stats();
      if (s.jobs_completed + s.jobs_rejected + s.jobs_shed >
          kThreads * kPerThread)
        torn.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&eng, &finished, t] {
      for (std::uint64_t j = 0; j < kPerThread; ++j) {
        support::StopToken token;
        engine::Job job =
            make_job(make_shared_graph(3000 + t * 100 + j, 48),
                     3000 + t * 100 + j);
        job.request.stop = &token;
        const engine::Engine::JobId id = eng.submit(std::move(job));
        // Arm late, racing the gate's budget reads and the member polls;
        // half the budgets fire mid-run, half never do.
        token.set_deadline_after(j % 2 == 0 ? 0.002 : 30.0);
        (void)eng.wait(id);
        finished.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& th : submitters) th.join();
  stop_reader.store(true, std::memory_order_relaxed);
  reader.join();
  if (chaos) support::FaultInjector::global().disarm();

  EXPECT_EQ(finished.load(), kThreads * kPerThread);
  EXPECT_EQ(torn.load(), 0u);
  const engine::EngineStats s = eng.stats();
  EXPECT_EQ(s.jobs_completed + s.jobs_rejected + s.jobs_shed,
            kThreads * kPerThread);
}

TEST(RaceStressTest, FreeRunningMatchingAndLpUnderContention) {
  // PR 10's lock-free seams: the CAS claim protocol of free-running
  // parallel matching (threads race compare_exchange on the per-node
  // `matched` words) and the completion-order merge of LP scan candidates
  // (per-chunk buffers appended under a mutex as chunks finish). Run both
  // at 8 chunks across the pool, repeatedly, and check the structural
  // invariants that must hold whatever interleaving TSan provokes: the
  // matching is valid (symmetric, edge-backed), the derived coarse-id map
  // is a bijection onto [0, coarse_n), and LP never worsens the exact
  // lexicographic goodness.
  const auto g = make_shared_graph(77, 2000);
  support::ThreadPool& pool = support::ThreadPool::global();
  part::ParallelOptions popts;
  popts.threads = 8;
  popts.deterministic = false;

  for (int iteration = 0; iteration < 6; ++iteration) {
    part::Workspace ws;
    part::Matching m;
    const graph::Weight w =
        part::parallel_heavy_edge_matching(*g, popts, m, ws, pool);
    ASSERT_EQ(part::validate_matching(*g, m), "");
    EXPECT_EQ(w, part::matched_edge_weight(*g, m));

    std::vector<graph::NodeId> f2c;
    const graph::NodeId coarse_n =
        part::parallel_fine_to_coarse(*g, m, popts, f2c, ws, pool);
    std::vector<std::uint8_t> hit(coarse_n, 0);
    for (const graph::NodeId c : f2c) {
      ASSERT_LT(c, coarse_n);
      hit[c] = 1;
    }
    for (const std::uint8_t h : hit) EXPECT_EQ(h, 1);

    part::Constraints c;
    c.rmax = g->total_node_weight() / 3;
    part::Partition p(g->num_nodes(), 4);
    for (graph::NodeId u = 0; u < g->num_nodes(); ++u)
      p.set(u, static_cast<part::PartId>((u + iteration) % 4));
    const part::Goodness before = part::compute_goodness(*g, p, c);
    part::LpRefineOptions lp;
    part::parallel_lp_refine(*g, p, c, lp, popts, ws, pool);
    const part::Goodness after = part::compute_goodness(*g, p, c);
    EXPECT_FALSE(before < after);
  }
}

}  // namespace
}  // namespace ppnpart
