#pragma once
// Portfolio specification: which algorithms race on each job.
//
// Modern partitioning frameworks get quality and robustness from running a
// *portfolio* of configurations rather than a single pass — different
// heuristics win on different instances, and the engine simply keeps the
// best answer. A Portfolio is an ordered list of registry names (see
// part::make_partitioner); order matters twice: member i draws seed stream i
// of the job's SeedStream, and ties in goodness break toward the lower
// index, which keeps the engine's answer deterministic no matter which
// member finishes first.

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace ppnpart::engine {

struct Portfolio {
  std::vector<std::string> members;

  /// The default racing set: the paper's constraint-aware GP plus three
  /// diverse constraint-honouring heuristics. MetisLike is included as the
  /// cut-only baseline — on unconstrained requests it often wins outright.
  static Portfolio defaults();

  /// Parses a comma-separated spec ("gp,annealing,tabu"); "default" (or
  /// empty) yields defaults(). Every name must exist in the registry.
  static support::Result<Portfolio> parse(const std::string& spec);

  bool empty() const { return members.empty(); }
  std::size_t size() const { return members.size(); }

  /// Order-sensitive identity digest, mixed into cache keys so answers from
  /// different portfolios never alias.
  std::uint64_t fingerprint() const;

  std::string to_string() const;
};

}  // namespace ppnpart::engine
