#pragma once
// Cooperative cancellation with an optional wall-clock deadline
// (header-only).
//
// A StopToken is shared between a controller (the portfolio engine, a
// driver with a time budget) and one or more workers (partitioner run
// loops). Workers poll `stop_requested()` at natural checkpoints — once per
// V-cycle, temperature step, generation, tabu iteration — and return their
// best-so-far solution when it fires. Cancellation is therefore always
// graceful: a stopped partitioner still yields a complete, valid partition.
//
// The deadline, if any, must be configured before the token is shared with
// workers; after that only `request_stop()` / `stop_requested()` are safe to
// call concurrently.

#include <atomic>
#include <chrono>

namespace ppnpart::support {

class StopToken {
 public:
  using Clock = std::chrono::steady_clock;

  StopToken() = default;
  StopToken(const StopToken&) = delete;
  StopToken& operator=(const StopToken&) = delete;

  /// Asks workers to stop at their next checkpoint.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  /// Arms a deadline `seconds` from now; `stop_requested()` returns true
  /// once it passes. Not thread-safe against concurrent `stop_requested()`;
  /// call before handing the token to workers.
  void set_deadline_after(double seconds) {
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(seconds));
    has_deadline_ = true;
  }

  /// Links a parent token (non-owning; must outlive this token): a stop
  /// requested on the parent stops this token too. Lets a controller (the
  /// engine) layer its per-job budget on top of a caller's own cancel
  /// signal. Configure before sharing, like the deadline.
  void set_parent(const StopToken* parent) { parent_ = parent; }

  bool has_deadline() const { return has_deadline_; }

  /// True once the armed deadline has passed (independent of
  /// `request_stop()`, which may fire for other reasons).
  bool deadline_expired() const {
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// True once `request_stop()` was called (here or on a linked parent) or
  /// the deadline passed. Deadline and parent checks latch into the flag so
  /// later calls skip them.
  bool stop_requested() const {
    if (stop_.load(std::memory_order_relaxed)) return true;
    if ((has_deadline_ && Clock::now() >= deadline_) ||
        (parent_ != nullptr && parent_->stop_requested())) {
      stop_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

 private:
  mutable std::atomic<bool> stop_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  const StopToken* parent_ = nullptr;
};

}  // namespace ppnpart::support
