#include "ppn/workloads.hpp"

#include <stdexcept>

#include "ppn/from_poly.hpp"

namespace ppnpart::ppn {

using poly::AffineExpr;
using poly::ArrayAccess;
using poly::IterationDomain;
using poly::Program;
using poly::Statement;

namespace {

/// 1-D access helper: array[i + offset] for a statement with `dims` vars,
/// indexing with variable `dim`.
ArrayAccess acc1(const std::string& array, std::size_t dims, std::size_t dim,
                 std::int64_t offset) {
  ArrayAccess a;
  a.array = array;
  a.indices.push_back(AffineExpr::var(dims, dim) + offset);
  return a;
}

/// 2-D access helper: array[i + di][j + dj].
ArrayAccess acc2(const std::string& array, std::size_t dims, std::size_t d0,
                 std::int64_t off0, std::size_t d1, std::int64_t off1) {
  ArrayAccess a;
  a.array = array;
  a.indices.push_back(AffineExpr::var(dims, d0) + off0);
  a.indices.push_back(AffineExpr::var(dims, d1) + off1);
  return a;
}

}  // namespace

Program jacobi1d_program(std::int64_t width, std::uint32_t stages) {
  if (width < 3 || stages == 0)
    throw std::invalid_argument("jacobi1d: width >= 3, stages >= 1");
  Program prog;
  prog.name = "jacobi1d";
  std::string prev = "A0";  // external input
  for (std::uint32_t s = 1; s <= stages; ++s) {
    Statement st;
    st.name = "J" + std::to_string(s);
    st.domain = IterationDomain({{1, width - 2}});
    const std::string out = "A" + std::to_string(s);
    st.write = acc1(out, 1, 0, 0);
    st.reads = {acc1(prev, 1, 0, -1), acc1(prev, 1, 0, 0),
                acc1(prev, 1, 0, 1)};
    st.ops_per_iteration = 4;  // 2 adds + mul + shift
    prog.statements.push_back(std::move(st));
    prev = out;
  }
  return prog;
}

Program jacobi2d_program(std::int64_t n, std::uint32_t stages) {
  if (n < 3 || stages == 0)
    throw std::invalid_argument("jacobi2d: n >= 3, stages >= 1");
  Program prog;
  prog.name = "jacobi2d";
  std::string prev = "A0";
  for (std::uint32_t s = 1; s <= stages; ++s) {
    Statement st;
    st.name = "J" + std::to_string(s);
    st.domain = IterationDomain({{1, n - 2}, {1, n - 2}});
    const std::string out = "A" + std::to_string(s);
    st.write = acc2(out, 2, 0, 0, 1, 0);
    st.reads = {acc2(prev, 2, 0, -1, 1, 0), acc2(prev, 2, 0, 1, 1, 0),
                acc2(prev, 2, 0, 0, 1, -1), acc2(prev, 2, 0, 0, 1, 1),
                acc2(prev, 2, 0, 0, 1, 0)};
    st.ops_per_iteration = 6;
    prog.statements.push_back(std::move(st));
    prev = out;
  }
  return prog;
}

Program matmul_program(std::int64_t n, std::int64_t m, std::int64_t p) {
  if (n < 1 || m < 1 || p < 1)
    throw std::invalid_argument("matmul: dimensions must be positive");
  Program prog;
  prog.name = "matmul";

  // Smul(i,j,k): P[i][j][k] = A[i][k] * B[k][j]
  Statement mul;
  mul.name = "Smul";
  mul.domain = IterationDomain({{0, n - 1}, {0, p - 1}, {0, m - 1}});
  {
    ArrayAccess w;
    w.array = "P";
    w.indices = {AffineExpr::var(3, 0), AffineExpr::var(3, 1),
                 AffineExpr::var(3, 2)};
    mul.write = w;
    ArrayAccess ra;
    ra.array = "A";
    ra.indices = {AffineExpr::var(3, 0), AffineExpr::var(3, 2)};
    ArrayAccess rb;
    rb.array = "B";
    rb.indices = {AffineExpr::var(3, 2), AffineExpr::var(3, 1)};
    mul.reads = {ra, rb};
  }
  mul.ops_per_iteration = 1;
  prog.statements.push_back(std::move(mul));

  // Sacc(i,j,k): S[i][j][k] = S[i][j][k-1] + P[i][j][k]   (self-dep folded
  // into an on-chip accumulator; the P channel is the real FIFO)
  Statement acc;
  acc.name = "Sacc";
  acc.domain = IterationDomain({{0, n - 1}, {0, p - 1}, {0, m - 1}});
  {
    ArrayAccess w;
    w.array = "S";
    w.indices = {AffineExpr::var(3, 0), AffineExpr::var(3, 1),
                 AffineExpr::var(3, 2)};
    acc.write = w;
    ArrayAccess rp;
    rp.array = "P";
    rp.indices = {AffineExpr::var(3, 0), AffineExpr::var(3, 1),
                  AffineExpr::var(3, 2)};
    ArrayAccess rs;
    rs.array = "S";
    rs.indices = {AffineExpr::var(3, 0), AffineExpr::var(3, 1),
                  AffineExpr::var(3, 2) - 1};
    acc.reads = {rp, rs};
  }
  acc.ops_per_iteration = 1;
  prog.statements.push_back(std::move(acc));

  // Sout(i,j): C[i][j] = S[i][j][m-1]
  Statement out;
  out.name = "Sout";
  out.domain = IterationDomain({{0, n - 1}, {0, p - 1}});
  {
    ArrayAccess w;
    w.array = "C";
    w.indices = {AffineExpr::var(2, 0), AffineExpr::var(2, 1)};
    out.write = w;
    ArrayAccess rs;
    rs.array = "S";
    rs.indices = {AffineExpr::var(2, 0), AffineExpr::var(2, 1),
                  AffineExpr::constant(2, m - 1)};
    out.reads = {rs};
  }
  out.ops_per_iteration = 1;
  prog.statements.push_back(std::move(out));
  return prog;
}

Program fir_program(std::uint32_t taps, std::int64_t samples) {
  if (taps == 0 || samples <= static_cast<std::int64_t>(taps))
    throw std::invalid_argument("fir: need taps >= 1, samples > taps");
  Program prog;
  prog.name = "fir";
  // acc_0[n] = h0 * x[n]; acc_t[n] = acc_{t-1}[n] + h_t * x[n - t]
  for (std::uint32_t t = 0; t < taps; ++t) {
    Statement st;
    st.name = "MAC" + std::to_string(t);
    st.domain =
        IterationDomain({{static_cast<std::int64_t>(taps) - 1, samples - 1}});
    st.write = acc1("acc" + std::to_string(t), 1, 0, 0);
    st.reads = {acc1("x", 1, 0, -static_cast<std::int64_t>(t))};
    if (t > 0) {
      st.reads.push_back(acc1("acc" + std::to_string(t - 1), 1, 0, 0));
    }
    st.ops_per_iteration = 2;  // mul + add
    prog.statements.push_back(std::move(st));
  }
  return prog;
}

Program sobel_program(std::int64_t width, std::int64_t height) {
  if (width < 3 || height < 3)
    throw std::invalid_argument("sobel: image must be at least 3x3");
  Program prog;
  prog.name = "sobel";
  const IterationDomain interior({{1, height - 2}, {1, width - 2}});

  Statement gx;
  gx.name = "Gx";
  gx.domain = interior;
  gx.write = acc2("GX", 2, 0, 0, 1, 0);
  gx.reads = {acc2("img", 2, 0, -1, 1, -1), acc2("img", 2, 0, -1, 1, 1),
              acc2("img", 2, 0, 0, 1, -1),  acc2("img", 2, 0, 0, 1, 1),
              acc2("img", 2, 0, 1, 1, -1),  acc2("img", 2, 0, 1, 1, 1)};
  gx.ops_per_iteration = 8;
  prog.statements.push_back(std::move(gx));

  Statement gy;
  gy.name = "Gy";
  gy.domain = interior;
  gy.write = acc2("GY", 2, 0, 0, 1, 0);
  gy.reads = {acc2("img", 2, 0, -1, 1, -1), acc2("img", 2, 0, -1, 1, 0),
              acc2("img", 2, 0, -1, 1, 1),  acc2("img", 2, 0, 1, 1, -1),
              acc2("img", 2, 0, 1, 1, 0),   acc2("img", 2, 0, 1, 1, 1)};
  gy.ops_per_iteration = 8;
  prog.statements.push_back(std::move(gy));

  Statement mag;
  mag.name = "Mag";
  mag.domain = interior;
  mag.write = acc2("MAG", 2, 0, 0, 1, 0);
  mag.reads = {acc2("GX", 2, 0, 0, 1, 0), acc2("GY", 2, 0, 0, 1, 0)};
  mag.ops_per_iteration = 5;  // abs + abs + add (|gx|+|gy| approximation)
  prog.statements.push_back(std::move(mag));

  Statement threshold;
  threshold.name = "Thresh";
  threshold.domain = interior;
  threshold.write = acc2("OUT", 2, 0, 0, 1, 0);
  threshold.reads = {acc2("MAG", 2, 0, 0, 1, 0)};
  threshold.ops_per_iteration = 1;
  prog.statements.push_back(std::move(threshold));
  return prog;
}

Program producer_consumer_program(std::uint32_t depth, std::int64_t width) {
  if (depth == 0 || width < 1)
    throw std::invalid_argument("producer_consumer: depth/width positive");
  Program prog;
  prog.name = "producer_consumer";
  std::string prev = "in";
  for (std::uint32_t d = 0; d < depth; ++d) {
    Statement st;
    st.name = "Stage" + std::to_string(d);
    st.domain = IterationDomain({{0, width - 1}});
    const std::string out = "buf" + std::to_string(d);
    st.write = acc1(out, 1, 0, 0);
    st.reads = {acc1(prev, 1, 0, 0)};
    st.ops_per_iteration = 2 + d % 3;  // vary per-stage compute a little
    prog.statements.push_back(std::move(st));
    prev = out;
  }
  return prog;
}

Program split_join_program(std::uint32_t branches, std::int64_t width) {
  if (branches == 0 || width < 1)
    throw std::invalid_argument("split_join: branches/width positive");
  Program prog;
  prog.name = "split_join";

  Statement split;
  split.name = "Split";
  split.domain = IterationDomain({{0, width - 1}});
  split.write = acc1("SP", 1, 0, 0);
  split.reads = {acc1("in", 1, 0, 0)};
  split.ops_per_iteration = 1;
  prog.statements.push_back(std::move(split));

  for (std::uint32_t b = 0; b < branches; ++b) {
    Statement worker;
    worker.name = "Worker" + std::to_string(b);
    worker.domain = IterationDomain({{0, width - 1}});
    worker.write = acc1("W" + std::to_string(b), 1, 0, 0);
    worker.reads = {acc1("SP", 1, 0, 0)};
    worker.ops_per_iteration = 3 + b;  // heterogeneous branches
    prog.statements.push_back(std::move(worker));
  }

  Statement join;
  join.name = "Join";
  join.domain = IterationDomain({{0, width - 1}});
  join.write = acc1("OUT", 1, 0, 0);
  for (std::uint32_t b = 0; b < branches; ++b) {
    join.reads.push_back(acc1("W" + std::to_string(b), 1, 0, 0));
  }
  join.ops_per_iteration = branches;
  prog.statements.push_back(std::move(join));
  return prog;
}

Program heat3d_program(std::int64_t n, std::uint32_t stages) {
  if (n < 3 || stages == 0)
    throw std::invalid_argument("heat3d: n >= 3, stages >= 1");
  Program prog;
  prog.name = "heat3d";
  std::string prev = "H0";
  const auto acc3 = [](const std::string& array, std::int64_t d0,
                       std::int64_t d1, std::int64_t d2) {
    ArrayAccess a;
    a.array = array;
    a.indices = {AffineExpr::var(3, 0) + d0, AffineExpr::var(3, 1) + d1,
                 AffineExpr::var(3, 2) + d2};
    return a;
  };
  for (std::uint32_t s = 1; s <= stages; ++s) {
    Statement st;
    st.name = "H" + std::to_string(s);
    st.domain = IterationDomain({{1, n - 2}, {1, n - 2}, {1, n - 2}});
    const std::string out = "H" + std::to_string(s);
    st.write = acc3(out, 0, 0, 0);
    st.reads = {acc3(prev, -1, 0, 0), acc3(prev, 1, 0, 0),
                acc3(prev, 0, -1, 0), acc3(prev, 0, 1, 0),
                acc3(prev, 0, 0, -1), acc3(prev, 0, 0, 1),
                acc3(prev, 0, 0, 0)};
    st.ops_per_iteration = 8;  // 6 adds + mul + shift
    prog.statements.push_back(std::move(st));
    prev = out;
  }
  return prog;
}

Program conv2d_program(std::int64_t width, std::int64_t height,
                       std::int64_t kernel) {
  if (kernel < 1 || kernel % 2 == 0)
    throw std::invalid_argument("conv2d: kernel must be odd and positive");
  if (width < kernel || height < kernel)
    throw std::invalid_argument("conv2d: image smaller than kernel");
  Program prog;
  prog.name = "conv2d";
  const std::int64_t r = kernel / 2;

  Statement conv;
  conv.name = "Conv";
  conv.domain = IterationDomain({{r, height - 1 - r}, {r, width - 1 - r}});
  conv.write = acc2("OUT", 2, 0, 0, 1, 0);
  for (std::int64_t dy = -r; dy <= r; ++dy) {
    for (std::int64_t dx = -r; dx <= r; ++dx) {
      conv.reads.push_back(acc2("img", 2, 0, dy, 1, dx));
    }
  }
  conv.ops_per_iteration =
      static_cast<std::uint32_t>(2 * kernel * kernel);  // MACs
  const IterationDomain interior = conv.domain;
  prog.statements.push_back(std::move(conv));

  // Post-processing stage (bias + clamp) so the network has a pipeline.
  Statement post;
  post.name = "Post";
  post.domain = interior;
  post.write = acc2("RES", 2, 0, 0, 1, 0);
  post.reads = {acc2("OUT", 2, 0, 0, 1, 0)};
  post.ops_per_iteration = 2;
  prog.statements.push_back(std::move(post));
  return prog;
}

Program lu_program(std::int64_t n) {
  if (n < 2) throw std::invalid_argument("lu: n >= 2");
  Program prog;
  prog.name = "lu";
  // Doolittle LU without pivoting, unrolled over the elimination step k
  // with versioned trailing submatrices A0 (external) .. A{n-1}; each step
  // contributes a divider row, a rank-1 update over the guarded triangular
  // domain, and the emitted U row.
  const auto a_of = [](std::int64_t k) { return "A" + std::to_string(k); };
  for (std::int64_t k = 0; k + 1 < n; ++k) {
    Statement div;
    div.name = "Div" + std::to_string(k);
    div.domain = IterationDomain({{k + 1, n - 1}});
    {
      ArrayAccess w;
      w.array = "L" + std::to_string(k);
      w.indices = {AffineExpr::var(1, 0)};
      div.write = w;
      ArrayAccess pivot_row;  // A_k[i][k]
      pivot_row.array = a_of(k);
      pivot_row.indices = {AffineExpr::var(1, 0), AffineExpr::constant(1, k)};
      ArrayAccess pivot;  // A_k[k][k]
      pivot.array = a_of(k);
      pivot.indices = {AffineExpr::constant(1, k), AffineExpr::constant(1, k)};
      div.reads = {pivot_row, pivot};
    }
    div.ops_per_iteration = 8;  // divider
    prog.statements.push_back(std::move(div));

    Statement upd;
    upd.name = "Upd" + std::to_string(k);
    upd.domain = IterationDomain({{k + 1, n - 1}, {k + 1, n - 1}});
    {
      ArrayAccess w;  // A_{k+1}[i][j]
      w.array = a_of(k + 1);
      w.indices = {AffineExpr::var(2, 0), AffineExpr::var(2, 1)};
      upd.write = w;
      ArrayAccess prev;  // A_k[i][j]
      prev.array = a_of(k);
      prev.indices = {AffineExpr::var(2, 0), AffineExpr::var(2, 1)};
      ArrayAccess lcol;  // L_k[i]
      lcol.array = "L" + std::to_string(k);
      lcol.indices = {AffineExpr::var(2, 0)};
      ArrayAccess urow;  // A_k[k][j]
      urow.array = a_of(k);
      urow.indices = {AffineExpr::constant(2, k), AffineExpr::var(2, 1)};
      upd.reads = {prev, lcol, urow};
    }
    upd.ops_per_iteration = 2;  // mul + sub
    prog.statements.push_back(std::move(upd));
  }
  for (std::int64_t k = 0; k < n; ++k) {
    Statement urow;
    urow.name = "Urow" + std::to_string(k);
    urow.domain = IterationDomain({{k, n - 1}});
    {
      ArrayAccess w;
      w.array = "U" + std::to_string(k);
      w.indices = {AffineExpr::var(1, 0)};
      urow.write = w;
      ArrayAccess row;  // A_k[k][j]
      row.array = a_of(k);
      row.indices = {AffineExpr::constant(1, k), AffineExpr::var(1, 0)};
      urow.reads = {row};
    }
    urow.ops_per_iteration = 1;
    prog.statements.push_back(std::move(urow));
  }
  return prog;
}

ProcessNetwork fft_network(std::uint32_t log2n) {
  if (log2n < 1 || log2n > 10)
    throw std::invalid_argument("fft: log2n in [1, 10]");
  // Radix-2 decimation-in-time butterfly network: one process per
  // butterfly, log2n stages of n/2 butterflies. Built directly (butterfly
  // index arithmetic is XOR-based, outside the affine fragment).
  const std::uint32_t n = 1u << log2n;
  const std::uint32_t half = n / 2;
  ProcessNetwork net("fft" + std::to_string(n));

  // Source: sample streamer; sink: spectrum consumer. Both fire n/2 times
  // like the butterflies (emitting / consuming two tokens per firing), so
  // every process runs at the same steady-state rate and each channel's
  // nominal bandwidth equals its sustained per-step demand — the property
  // that makes Bmax verdicts operationally meaningful in the simulator.
  const std::uint32_t src = net.add_process("samples", 12, half);
  std::vector<std::uint32_t> owner_of(n);  // butterfly owning lane l
  std::vector<std::uint32_t> prev_stage(half);

  for (std::uint32_t stage = 0; stage < log2n; ++stage) {
    const std::uint32_t span = 1u << stage;  // partner distance
    std::vector<std::uint32_t> cur_stage(half);
    std::vector<std::uint32_t> new_owner(n);
    for (std::uint32_t b = 0; b < half; ++b) {
      // Lanes of butterfly b at this stage (standard DIT indexing).
      const std::uint32_t lo = (b / span) * span * 2 + (b % span);
      const std::uint32_t hi = lo + span;
      const std::uint32_t id = net.add_process(
          "bf_s" + std::to_string(stage) + "_" + std::to_string(b),
          18,  // complex MAC + twiddle ROM
          n / 2);
      cur_stage[b] = id;
      new_owner[lo] = id;
      new_owner[hi] = id;
      if (stage == 0) {
        net.add_channel(src, id, 2, n);  // two samples per butterfly
      } else {
        // Each input lane comes from the butterfly that owned it.
        for (const std::uint32_t lane : {lo, hi}) {
          net.add_channel(owner_of[lane], id, 1, n / 2);
        }
      }
    }
    owner_of = std::move(new_owner);
    prev_stage = std::move(cur_stage);
  }

  const std::uint32_t sink = net.add_process("spectrum", 10, half);
  for (const std::uint32_t id : prev_stage) {
    net.add_channel(id, sink, 2, n);
  }
  return net;
}

ProcessNetwork mjpeg_network() {
  // Weights follow the usual HLS area ranking of the stages: DCT is the
  // giant, VLE is control-heavy, colour conversion is multiplier-bound.
  ProcessNetwork network("mjpeg");
  const std::uint32_t src = network.add_process("video_in", 30, 1024);
  const std::uint32_t cc = network.add_process("rgb2ycbcr", 180, 1024);
  const std::uint32_t dct_y = network.add_process("dct_y", 320, 1024);
  const std::uint32_t dct_cb = network.add_process("dct_cb", 320, 512);
  const std::uint32_t dct_cr = network.add_process("dct_cr", 320, 512);
  const std::uint32_t q_y = network.add_process("quant_y", 90, 1024);
  const std::uint32_t q_c = network.add_process("quant_c", 90, 1024);
  const std::uint32_t zz = network.add_process("zigzag", 60, 2048);
  const std::uint32_t vle = network.add_process("vle", 240, 2048);
  const std::uint32_t sink = network.add_process("stream_out", 25, 2048);

  network.add_channel(src, cc, 12, 12288, "rgb");
  network.add_channel(cc, dct_y, 8, 8192, "y");
  network.add_channel(cc, dct_cb, 4, 4096, "cb");
  network.add_channel(cc, dct_cr, 4, 4096, "cr");
  network.add_channel(dct_y, q_y, 8, 8192, "y_coef");
  network.add_channel(dct_cb, q_c, 4, 4096, "cb_coef");
  network.add_channel(dct_cr, q_c, 4, 4096, "cr_coef");
  network.add_channel(q_y, zz, 8, 8192, "y_q");
  network.add_channel(q_c, zz, 8, 8192, "c_q");
  network.add_channel(zz, vle, 16, 16384, "zz");
  network.add_channel(vle, sink, 6, 6144, "bits");
  return network;
}

std::vector<std::string> workload_names() {
  return {"jacobi1d", "jacobi2d",          "matmul",     "fir",
          "sobel",    "mjpeg",             "producer_consumer",
          "split_join", "heat3d",          "conv2d",     "lu",
          "fft"};
}

ProcessNetwork make_workload(const std::string& name,
                             const WorkloadScale& scale) {
  DerivationOptions options;
  if (name == "jacobi1d") {
    return derive_network(jacobi1d_program(scale.size, scale.stages), options);
  }
  if (name == "jacobi2d") {
    return derive_network(jacobi2d_program(scale.size, scale.stages), options);
  }
  if (name == "matmul") {
    return derive_network(
        matmul_program(scale.size, scale.size, scale.size), options);
  }
  if (name == "fir") {
    return derive_network(
        fir_program(std::max(2u, scale.stages * 2), scale.size * 8), options);
  }
  if (name == "sobel") {
    return derive_network(sobel_program(scale.size, scale.size), options);
  }
  if (name == "mjpeg") return mjpeg_network();
  if (name == "producer_consumer") {
    return derive_network(
        producer_consumer_program(scale.stages * 2, scale.size), options);
  }
  if (name == "split_join") {
    return derive_network(split_join_program(scale.stages, scale.size),
                          options);
  }
  if (name == "heat3d") {
    // Cap the grid: dependence analysis enumerates n^3 points per stage.
    return derive_network(
        heat3d_program(std::min<std::int64_t>(scale.size, 24), scale.stages),
        options);
  }
  if (name == "conv2d") {
    return derive_network(conv2d_program(scale.size, scale.size, 3), options);
  }
  if (name == "lu") {
    return derive_network(
        lu_program(std::max<std::int64_t>(2, scale.size / 4)), options);
  }
  if (name == "fft") {
    return fft_network(std::max(2u, scale.stages));
  }
  throw std::invalid_argument("make_workload: unknown workload " + name);
}

}  // namespace ppnpart::ppn
