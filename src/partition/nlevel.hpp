#pragma once
// n-level partitioning — the paper's ref. [2] (Osipov & Sanders, ESA 2010):
// "their n-level approach is based on the extreme idea of contracting only
// one single edge between two consecutive levels of the multilevel
// hierarchy. During un-coarsening, local search is done highly localized
// around the un-contracted edge."
//
// This module reconstructs that scheme on the paper's constrained problem:
//
//   * coarsening contracts one edge at a time, chosen by a lazy max-heap on
//     the heavy-edge rating w(u,v) (ties broken towards lighter merged
//     nodes, which keeps coarse node weights level — important when Rmax
//     is tight);
//   * the coarsest graph (<= max(stop_size, k) nodes) is seeded with the
//     same greedy growth GP uses;
//   * un-coarsening pops one contraction at a time; both endpoints inherit
//     the coarse part, then a *localized* constrained search re-optimizes
//     only the un-contracted pair and its direct neighbourhood.
//
// The dynamic graph lives in hash-map adjacency (contract/uncontract in
// O(deg)); per-move bookkeeping matches MoveContext's goodness exactly,
// which the tests verify against compute_goodness().

#include <cstdint>

#include "partition/partitioner.hpp"
#include "support/prng.hpp"

namespace ppnpart::part {

struct NLevelOptions {
  /// Stop contracting at max(stop_size, k) alive nodes.
  NodeId stop_size = 32;
  /// Cap on improving moves applied per un-contraction (keeps the local
  /// search "highly localized"; 0 means unlimited).
  std::uint32_t local_moves_per_uncontraction = 24;
  /// Greedy-growth restarts for the coarsest seed.
  std::uint32_t initial_restarts = 10;
  /// Full constrained-FM polish passes on the final (finest) partition.
  std::uint32_t final_fm_passes = 2;
};

class NLevelPartitioner : public Partitioner {
 public:
  explicit NLevelPartitioner(NLevelOptions options = {});

  std::string name() const override { return "NLevel"; }
  PartitionResult run(const Graph& g, const PartitionRequest& request) override;

  const NLevelOptions& options() const { return options_; }

 private:
  NLevelOptions options_;
};

}  // namespace ppnpart::part
