#include "partition/coarsen.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ppnpart::part {

std::string to_string(MatchingKind kind) {
  switch (kind) {
    case MatchingKind::kRandom:
      return "random";
    case MatchingKind::kHeavyEdge:
      return "heavy-edge";
    case MatchingKind::kKMeans:
      return "k-means";
  }
  return "?";
}

CoarseLevel contract(const Graph& fine, const Matching& matching) {
  const NodeId n = fine.num_nodes();
  if (matching.size() != n)
    throw std::invalid_argument("contract: matching size mismatch");

  CoarseLevel out;
  out.fine_to_coarse.assign(n, graph::kInvalidNode);
  NodeId next = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (out.fine_to_coarse[u] != graph::kInvalidNode) continue;
    const NodeId v = matching[u];
    out.fine_to_coarse[u] = next;
    if (v != u) out.fine_to_coarse[v] = next;
    ++next;
  }

  graph::GraphBuilder builder(next);
  // Coarse node weight = sum of merged fine node weights.
  std::vector<Weight> cw(next, 0);
  for (NodeId u = 0; u < n; ++u) cw[out.fine_to_coarse[u]] += fine.node_weight(u);
  for (NodeId c = 0; c < next; ++c) builder.set_node_weight(c, cw[c]);
  // Coarse edges: fold every fine edge whose endpoints land in different
  // coarse nodes; GraphBuilder merges parallel edges by summing weights,
  // which implements the paper's "weights are merged into one and the new
  // edge has a weight equal to the sum of the weights of the merged edges".
  for (NodeId u = 0; u < n; ++u) {
    auto nbrs = fine.neighbors(u);
    auto wgts = fine.edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i];
      if (u >= v) continue;
      const NodeId cu = out.fine_to_coarse[u];
      const NodeId cv = out.fine_to_coarse[v];
      if (cu != cv) builder.add_edge(cu, cv, wgts[i]);
    }
  }
  out.graph = builder.build();
  return out;
}

Matching run_matching(const Graph& g, MatchingKind kind, support::Rng& rng) {
  switch (kind) {
    case MatchingKind::kRandom:
      return random_maximal_matching(g, rng);
    case MatchingKind::kHeavyEdge:
      return heavy_edge_matching(g, rng);
    case MatchingKind::kKMeans:
      return kmeans_matching(g, rng);
  }
  throw std::logic_error("run_matching: bad kind");
}

std::vector<PartId> Hierarchy::project_to_level(
    const std::vector<PartId>& coarse_assign, std::size_t level) const {
  assert(!graphs.empty());
  if (coarse_assign.size() != coarsest().num_nodes())
    throw std::invalid_argument("project_to_level: size mismatch");
  std::vector<PartId> assign = coarse_assign;
  // maps[i] : level i -> level i+1; walk backwards from the coarsest.
  for (std::size_t i = maps.size(); i-- > level;) {
    std::vector<PartId> finer(graphs[i].num_nodes());
    for (NodeId u = 0; u < graphs[i].num_nodes(); ++u) {
      finer[u] = assign[maps[i][u]];
    }
    assign = std::move(finer);
  }
  return assign;
}

RestrictedHierarchy coarsen_restricted(const Graph& g,
                                       const std::vector<PartId>& parts,
                                       const CoarsenOptions& options,
                                       support::Rng& rng) {
  if (parts.size() != g.num_nodes())
    throw std::invalid_argument("coarsen_restricted: parts size mismatch");
  RestrictedHierarchy out;
  Hierarchy& h = out.hierarchy;
  h.graphs.push_back(g);
  std::vector<PartId> level_parts = parts;
  while (h.coarsest().num_nodes() > options.coarsen_to &&
         h.num_levels() <= options.max_levels) {
    const Graph& current = h.coarsest();
    Matching best_matching;
    MatchingKind best_kind = options.strategies.front();
    Weight best_weight = -1;
    std::uint32_t best_pairs = 0;
    for (MatchingKind kind : options.strategies) {
      support::Rng stream = rng.derive(
          static_cast<std::uint64_t>(kind) * 977 + h.num_levels() * 131071);
      Matching m = run_matching(current, kind, stream);
      // Unmatch pairs that straddle parts; the projection must stay exact.
      for (NodeId u = 0; u < current.num_nodes(); ++u) {
        const NodeId v = m[u];
        if (v != u && level_parts[u] != level_parts[v]) {
          m[u] = u;
          m[v] = v;
        }
      }
      const Weight w = matched_edge_weight(current, m);
      const std::uint32_t pairs = matched_pair_count(m);
      if (w > best_weight || (w == best_weight && pairs > best_pairs)) {
        best_weight = w;
        best_pairs = pairs;
        best_matching = std::move(m);
        best_kind = kind;
      }
    }
    if (best_pairs == 0) break;
    CoarseLevel level = contract(current, best_matching);
    const double shrink = static_cast<double>(level.graph.num_nodes()) /
                          static_cast<double>(current.num_nodes());
    if (shrink > options.min_shrink_factor) break;
    std::vector<PartId> coarse_parts(level.graph.num_nodes(), kUnassigned);
    for (NodeId u = 0; u < current.num_nodes(); ++u) {
      coarse_parts[level.fine_to_coarse[u]] = level_parts[u];
    }
    level_parts = std::move(coarse_parts);
    h.maps.push_back(std::move(level.fine_to_coarse));
    h.winners.push_back(best_kind);
    h.graphs.push_back(std::move(level.graph));
  }
  out.coarse_parts = std::move(level_parts);
  return out;
}

Hierarchy coarsen(const Graph& g, const CoarsenOptions& options,
                  support::Rng& rng) {
  if (options.strategies.empty())
    throw std::invalid_argument("coarsen: no matching strategies enabled");
  Hierarchy h;
  h.graphs.push_back(g);
  while (h.coarsest().num_nodes() > options.coarsen_to &&
         h.num_levels() <= options.max_levels) {
    const Graph& current = h.coarsest();
    // Compete the enabled heuristics; keep the one hiding the most weight
    // (ties: more matched pairs, then strategy order).
    Matching best_matching;
    MatchingKind best_kind = options.strategies.front();
    Weight best_weight = -1;
    std::uint32_t best_pairs = 0;
    for (MatchingKind kind : options.strategies) {
      support::Rng stream = rng.derive(
          static_cast<std::uint64_t>(kind) * 977 + h.num_levels() * 131071);
      Matching m = run_matching(current, kind, stream);
      const Weight w = matched_edge_weight(current, m);
      const std::uint32_t pairs = matched_pair_count(m);
      if (w > best_weight || (w == best_weight && pairs > best_pairs)) {
        best_weight = w;
        best_pairs = pairs;
        best_matching = std::move(m);
        best_kind = kind;
      }
    }
    if (best_pairs == 0) break;  // nothing contractible (e.g. no edges)
    CoarseLevel level = contract(current, best_matching);
    const double shrink = static_cast<double>(level.graph.num_nodes()) /
                          static_cast<double>(current.num_nodes());
    if (shrink > options.min_shrink_factor) break;
    h.maps.push_back(std::move(level.fine_to_coarse));
    h.winners.push_back(best_kind);
    h.graphs.push_back(std::move(level.graph));
  }
  return h;
}

}  // namespace ppnpart::part
