#include "partition/report.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "support/strings.hpp"

namespace ppnpart::part {

Report analyze(const Graph& g, const Partition& p, const Constraints& c) {
  Report report;
  report.metrics = compute_metrics(g, p);
  report.violation = compute_violation(report.metrics, c);
  report.feasible = report.violation.feasible();

  const PartId k = p.k();
  report.parts.resize(static_cast<std::size_t>(k));
  for (PartId q = 0; q < k; ++q) {
    PartSummary& s = report.parts[static_cast<std::size_t>(q)];
    s.part = q;
    s.load = report.metrics.loads[static_cast<std::size_t>(q)];
    s.budget = c.rmax_of(q);
    s.occupancy = s.budget != Constraints::kUnlimited && s.budget > 0
                      ? static_cast<double>(s.load) /
                            static_cast<double>(s.budget)
                      : 0.0;
  }

  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const PartId pu = p[u];
    report.parts[static_cast<std::size_t>(pu)].nodes += 1;
    bool on_boundary = false;
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (p[nbrs[i]] != pu) {
        on_boundary = true;
        report.parts[static_cast<std::size_t>(pu)].boundary_weight += wgts[i];
      }
    }
    if (on_boundary) ++report.boundary_nodes;
  }

  for (PartId a = 0; a < k; ++a) {
    for (PartId b = a + 1; b < k; ++b) {
      const Weight cut = report.metrics.pairwise.at(a, b);
      if (cut == 0) continue;
      PairSummary pair;
      pair.a = a;
      pair.b = b;
      pair.cut = cut;
      pair.budget = c.bmax;
      pair.occupancy = c.bmax != Constraints::kUnlimited && c.bmax > 0
                           ? static_cast<double>(cut) /
                                 static_cast<double>(c.bmax)
                           : 0.0;
      report.hot_pairs.push_back(pair);
    }
  }
  std::sort(report.hot_pairs.begin(), report.hot_pairs.end(),
            [](const PairSummary& x, const PairSummary& y) {
              if (x.cut != y.cut) return x.cut > y.cut;
              return std::make_pair(x.a, x.b) < std::make_pair(y.a, y.b);
            });
  return report;
}

std::string Report::to_string() const {
  using support::str_format;
  std::string out;
  out += str_format("%s: cut=%lld, %u boundary node(s)\n",
                    feasible ? "FEASIBLE" : "VIOLATED",
                    static_cast<long long>(metrics.total_cut),
                    boundary_nodes);
  out += "  part     nodes       load     budget   occupancy   boundary-w\n";
  for (const PartSummary& s : parts) {
    const std::string budget =
        s.budget == Constraints::kUnlimited ? "inf"
                                            : std::to_string(s.budget);
    const std::string occ =
        s.budget == Constraints::kUnlimited
            ? "-"
            : str_format("%5.1f%%%s", 100.0 * s.occupancy,
                         s.load > s.budget ? " (!)" : "");
    out += str_format("  %4d %9u %10lld %10s %11s %12lld\n", s.part, s.nodes,
                      static_cast<long long>(s.load), budget.c_str(),
                      occ.c_str(), static_cast<long long>(s.boundary_weight));
  }
  if (!hot_pairs.empty()) {
    out += "  hottest pairs (cut / Bmax):\n";
    const std::size_t shown = std::min<std::size_t>(hot_pairs.size(), 5);
    for (std::size_t i = 0; i < shown; ++i) {
      const PairSummary& pair = hot_pairs[i];
      const std::string budget =
          pair.budget == Constraints::kUnlimited
              ? "inf"
              : std::to_string(pair.budget);
      out += str_format("    (%d,%d): %lld / %s%s\n", pair.a, pair.b,
                        static_cast<long long>(pair.cut), budget.c_str(),
                        pair.budget != Constraints::kUnlimited &&
                                pair.cut > pair.budget
                            ? "  (!)"
                            : "");
    }
  }
  return out;
}

std::ostream& operator<<(std::ostream& out, const Report& report) {
  return out << report.to_string();
}

}  // namespace ppnpart::part
