#include "partition/partition.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "support/strings.hpp"

namespace ppnpart::part {

bool Partition::complete() const {
  for (PartId p : assign_) {
    if (p == kUnassigned || p >= k_) return false;
  }
  return true;
}

std::vector<NodeId> Partition::members(PartId p) const {
  std::vector<NodeId> out;
  for (NodeId u = 0; u < size(); ++u) {
    if (assign_[u] == p) out.push_back(u);
  }
  return out;
}

bool Partition::all_parts_nonempty() const {
  std::vector<bool> seen(static_cast<std::size_t>(k_), false);
  for (PartId p : assign_) {
    if (p >= 0 && p < k_) seen[static_cast<std::size_t>(p)] = true;
  }
  return std::all_of(seen.begin(), seen.end(), [](bool b) { return b; });
}

Weight PairwiseCut::max_pairwise() const {
  Weight best = 0;
  for (PartId a = 0; a < k_; ++a) {
    for (PartId b = a + 1; b < k_; ++b) best = std::max(best, at(a, b));
  }
  return best;
}

Weight PairwiseCut::total() const {
  Weight sum = 0;
  for (PartId a = 0; a < k_; ++a) {
    for (PartId b = a + 1; b < k_; ++b) sum += at(a, b);
  }
  return sum;
}

PartitionMetrics compute_metrics(const Graph& g, const Partition& p) {
  if (p.size() != g.num_nodes())
    throw std::invalid_argument("compute_metrics: size mismatch");
  if (!p.complete())
    throw std::invalid_argument("compute_metrics: incomplete partition");
  PartitionMetrics m;
  const PartId k = p.k();
  m.loads.assign(static_cast<std::size_t>(k), 0);
  m.pairwise = PairwiseCut(k);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    m.loads[static_cast<std::size_t>(p[u])] += g.node_weight(u);
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i];
      if (u < v && p[u] != p[v]) {
        m.total_cut += wgts[i];
        m.pairwise.add(p[u], p[v], wgts[i]);
      }
    }
  }
  m.max_load = m.loads.empty()
                   ? 0
                   : *std::max_element(m.loads.begin(), m.loads.end());
  m.max_pairwise_cut = m.pairwise.max_pairwise();
  const Weight total = g.total_node_weight();
  m.imbalance = (total > 0 && k > 0)
                    ? static_cast<double>(m.max_load) /
                          (static_cast<double>(total) / k)
                    : 0.0;
  return m;
}

Violation compute_violation(const PartitionMetrics& m, const Constraints& c) {
  Violation v;
  if (c.rmax != Constraints::kUnlimited || c.heterogeneous()) {
    for (PartId p = 0; p < static_cast<PartId>(m.loads.size()); ++p) {
      const Weight budget = c.rmax_of(p);
      if (budget == Constraints::kUnlimited) continue;
      v.resource_excess +=
          std::max<Weight>(0, m.loads[static_cast<std::size_t>(p)] - budget);
    }
  }
  if (c.bmax != Constraints::kUnlimited) {
    const PartId k = m.pairwise.k();
    for (PartId a = 0; a < k; ++a) {
      for (PartId b = a + 1; b < k; ++b) {
        v.bandwidth_excess += std::max<Weight>(0, m.pairwise.at(a, b) - c.bmax);
      }
    }
  }
  return v;
}

Goodness compute_goodness(const Graph& g, const Partition& p,
                          const Constraints& c) {
  const PartitionMetrics m = compute_metrics(g, p);
  const Violation v = compute_violation(m, c);
  return Goodness{v.resource_excess, v.bandwidth_excess, m.total_cut};
}

std::string describe(const PartitionMetrics& m, const Constraints& c) {
  using support::str_format;
  std::string s = str_format(
      "cut=%lld max_load=%lld max_pair_bw=%lld imbalance=%.3f",
      static_cast<long long>(m.total_cut), static_cast<long long>(m.max_load),
      static_cast<long long>(m.max_pairwise_cut), m.imbalance);
  if (!c.unconstrained()) {
    const Violation v = compute_violation(m, c);
    s += str_format(" [Rmax=%s Bmax=%lld -> %s",
                    c.heterogeneous()
                        ? "per-part"
                        : std::to_string(c.rmax).c_str(),
                    static_cast<long long>(c.bmax),
                    v.feasible() ? "FEASIBLE]" : "");
    if (!v.feasible()) {
      s += str_format("res_excess=%lld bw_excess=%lld VIOLATED]",
                      static_cast<long long>(v.resource_excess),
                      static_cast<long long>(v.bandwidth_excess));
    }
  }
  return s;
}

}  // namespace ppnpart::part
