#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace ppnpart::graph {
namespace {

Graph sample() {
  GraphBuilder b(4);
  b.set_node_weight(0, 3);
  b.set_node_weight(1, 1);
  b.set_node_weight(2, 4);
  b.set_node_weight(3, 2);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 2, 2);
  b.add_edge(2, 3, 7);
  b.add_edge(0, 3, 1);
  return b.build();
}

bool graphs_equal(const Graph& a, const Graph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges())
    return false;
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    if (a.node_weight(u) != b.node_weight(u)) return false;
    auto na = a.neighbors(u);
    auto nb = b.neighbors(u);
    if (!std::equal(na.begin(), na.end(), nb.begin(), nb.end())) return false;
    auto wa = a.edge_weights(u);
    auto wb = b.edge_weights(u);
    if (!std::equal(wa.begin(), wa.end(), wb.begin(), wb.end())) return false;
  }
  return true;
}

// ---------------------------------------------------------------- METIS ---

TEST(MetisIo, RoundTrip) {
  const Graph g = sample();
  std::stringstream s;
  write_metis(s, g);
  auto r = read_metis(s);
  ASSERT_TRUE(r.is_ok()) << r.message();
  EXPECT_TRUE(graphs_equal(g, r.value()));
}

TEST(MetisIo, RoundTripRandomGraph) {
  support::Rng rng(9);
  const Graph g = erdos_renyi_gnm(50, 180, rng, {1, 20}, {1, 30});
  std::stringstream s;
  write_metis(s, g);
  auto r = read_metis(s);
  ASSERT_TRUE(r.is_ok()) << r.message();
  EXPECT_TRUE(graphs_equal(g, r.value()));
}

TEST(MetisIo, ReadsUnweightedFormat) {
  std::stringstream s("3 2\n2\n1 3\n2\n");
  auto r = read_metis(s);
  ASSERT_TRUE(r.is_ok()) << r.message();
  EXPECT_EQ(r.value().num_nodes(), 3u);
  EXPECT_EQ(r.value().num_edges(), 2u);
  EXPECT_EQ(r.value().node_weight(0), 1);
  EXPECT_EQ(r.value().edge_weight_between(0, 1), 1);
}

TEST(MetisIo, ReadsEdgeWeightOnlyFormat) {
  std::stringstream s("2 1 1\n2 9\n1 9\n");
  auto r = read_metis(s);
  ASSERT_TRUE(r.is_ok()) << r.message();
  EXPECT_EQ(r.value().edge_weight_between(0, 1), 9);
}

TEST(MetisIo, SkipsComments) {
  std::stringstream s("% header comment\n2 1\n% mid comment\n2\n1\n");
  auto r = read_metis(s);
  ASSERT_TRUE(r.is_ok()) << r.message();
  EXPECT_EQ(r.value().num_edges(), 1u);
}

TEST(MetisIo, RejectsEmpty) {
  std::stringstream s("");
  EXPECT_FALSE(read_metis(s).is_ok());
}

TEST(MetisIo, RejectsBadNeighbour) {
  std::stringstream s("2 1\n5\n1\n");
  EXPECT_FALSE(read_metis(s).is_ok());
}

TEST(MetisIo, RejectsTruncated) {
  std::stringstream s("3 2\n2\n");
  EXPECT_FALSE(read_metis(s).is_ok());
}

TEST(MetisIo, RejectsVertexSizes) {
  std::stringstream s("2 1 100\n2\n1\n");
  EXPECT_FALSE(read_metis(s).is_ok());
}

TEST(MetisIo, FileRoundTrip) {
  const Graph g = sample();
  const std::string path = testing::TempDir() + "/ppnpart_io_test.graph";
  ASSERT_TRUE(write_metis_file(path, g));
  auto r = read_metis_file(path);
  ASSERT_TRUE(r.is_ok()) << r.message();
  EXPECT_TRUE(graphs_equal(g, r.value()));
}

TEST(MetisIo, MissingFileIsError) {
  EXPECT_FALSE(read_metis_file("/nonexistent/x.graph").is_ok());
}

// ------------------------------------------------------ adjacency matrix ---

TEST(MatrixIo, RoundTrip) {
  const Graph g = sample();
  std::stringstream s;
  write_adjacency_matrix(s, g);
  auto r = read_adjacency_matrix(s);
  ASSERT_TRUE(r.is_ok()) << r.message();
  EXPECT_TRUE(graphs_equal(g, r.value()));
}

TEST(MatrixIo, RejectsAsymmetric) {
  std::stringstream s("2\n0 1\n2 0\n1 1\n");
  EXPECT_FALSE(read_adjacency_matrix(s).is_ok());
}

TEST(MatrixIo, RejectsNegativeWeight) {
  std::stringstream s("2\n0 -1\n-1 0\n1 1\n");
  EXPECT_FALSE(read_adjacency_matrix(s).is_ok());
}

TEST(MatrixIo, RejectsTruncated) {
  std::stringstream s("3\n0 1 0\n1 0 1\n");
  EXPECT_FALSE(read_adjacency_matrix(s).is_ok());
}

// ------------------------------------------------------------------ DOT ---

TEST(DotIo, ContainsNodesAndEdges) {
  const Graph g = sample();
  std::stringstream s;
  write_dot(s, g, "sample");
  const std::string out = s.str();
  EXPECT_NE(out.find("graph sample"), std::string::npos);
  EXPECT_NE(out.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(out.find("label=\"5\""), std::string::npos);  // edge weight
  EXPECT_NE(out.find("(3)"), std::string::npos);          // node weight
}

}  // namespace
}  // namespace ppnpart::graph
