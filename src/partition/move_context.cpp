#include "partition/move_context.hpp"

#include <algorithm>
#include <stdexcept>

namespace ppnpart::part {

namespace {
inline Weight over(Weight value, Weight cap) { return excess_over(value, cap); }
}  // namespace

void MoveContext::reset(const Graph& g, Partition& p, const Constraints& c) {
  if (p.size() != g.num_nodes())
    throw std::invalid_argument("MoveContext: size mismatch");
  if (!p.complete())
    throw std::invalid_argument("MoveContext: incomplete partition");
  graph_ = &g;
  partition_ = &p;
  constraints_ = c;
  k_ = p.k();
  cut_ = 0;
  resource_excess_ = 0;
  bandwidth_excess_ = 0;
  apply_count_ = 0;

  const NodeId n = g.num_nodes();
  support::assign_tracked(conn_, static_cast<std::size_t>(n) * k_, 0,
                          alloc_stats_);
  support::assign_tracked(loads_, static_cast<std::size_t>(k_), 0,
                          alloc_stats_);
  support::assign_tracked(counts_, static_cast<std::size_t>(k_), 0,
                          alloc_stats_);
  support::assign_tracked(incident_, n, 0, alloc_stats_);
  pairwise_.reset(k_);
  for (NodeId u = 0; u < n; ++u) {
    const PartId pu = p[u];
    loads_[static_cast<std::size_t>(pu)] += g.node_weight(u);
    ++counts_[static_cast<std::size_t>(pu)];
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i];
      conn_[static_cast<std::size_t>(u) * k_ + static_cast<std::size_t>(p[v])] +=
          wgts[i];
      incident_[u] += wgts[i];
      if (u < v && pu != p[v]) {
        cut_ += wgts[i];
        pairwise_.add(pu, p[v], wgts[i]);
      }
    }
  }
  for (PartId r = 0; r < k_; ++r) {
    resource_excess_ +=
        over(loads_[static_cast<std::size_t>(r)], constraints_.rmax_of(r));
  }
  for (PartId a = 0; a < k_; ++a) {
    for (PartId b = a + 1; b < k_; ++b) {
      bandwidth_excess_ += over(pairwise_.at(a, b), constraints_.bmax);
    }
  }

  support::reserve_tracked(nz_parts_, static_cast<std::size_t>(k_),
                           alloc_stats_);

  // Seed the incremental boundary set (ascending by construction).
  support::assign_tracked(in_boundary_list_, n, 0, alloc_stats_);
  support::reserve_tracked(boundary_list_, n, alloc_stats_);
  boundary_list_.clear();
  for (NodeId u = 0; u < n; ++u) {
    if (is_boundary(u)) {
      in_boundary_list_[u] = 1;
      boundary_list_.push_back(u);
    }
  }
}

Goodness MoveContext::goodness_after(NodeId u, PartId q) const {
  const PartId p = part_of(u);
  if (p == q) return goodness();
  const Weight w = graph_->node_weight(u);
  const Weight cup = conn(u, p);
  const Weight cuq = conn(u, q);

  Weight res = resource_excess_;
  res -= over(load(p), constraints_.rmax_of(p));
  res += over(load(p) - w, constraints_.rmax_of(p));
  res -= over(load(q), constraints_.rmax_of(q));
  res += over(load(q) + w, constraints_.rmax_of(q));

  Weight bw = bandwidth_excess_;
  if (constraints_.bmax != Constraints::kUnlimited) {
    const Weight pq_old = pairwise_.at(p, q);
    const Weight pq_new = pq_old + cup - cuq;
    bw += over(pq_new, constraints_.bmax) - over(pq_old, constraints_.bmax);
    for (PartId r = 0; r < k_; ++r) {
      if (r == p || r == q) continue;
      const Weight cur = conn(u, r);
      if (cur == 0) continue;
      const Weight pr_old = pairwise_.at(p, r);
      const Weight qr_old = pairwise_.at(q, r);
      bw += over(pr_old - cur, constraints_.bmax) -
            over(pr_old, constraints_.bmax);
      bw += over(qr_old + cur, constraints_.bmax) -
            over(qr_old, constraints_.bmax);
    }
  }

  return Goodness{res, bw, cut_ + cup - cuq};
}

void MoveContext::apply(NodeId u, PartId q) {
  const PartId p = part_of(u);
  if (p == q) return;
  const Weight w = graph_->node_weight(u);
  const std::size_t conn_base = static_cast<std::size_t>(u) * k_;
  const Weight cup = conn_[conn_base + static_cast<std::size_t>(p)];
  const Weight cuq = conn_[conn_base + static_cast<std::size_t>(q)];
  const Weight bmax = constraints_.bmax;

  // Pairwise cuts and bandwidth excess (uses conn before neighbour updates).
  auto update_pair = [&](PartId a, PartId b, Weight delta) {
    if (delta == 0) return;
    const Weight old = pairwise_.at(a, b);
    pairwise_.add(a, b, delta);
    bandwidth_excess_ += over(old + delta, bmax) - over(old, bmax);
  };
  update_pair(p, q, cup - cuq);
  for (PartId r = 0; r < k_; ++r) {
    if (r == p || r == q) continue;
    const Weight cur = conn_[conn_base + static_cast<std::size_t>(r)];
    if (cur == 0) continue;
    update_pair(p, r, -cur);
    update_pair(q, r, cur);
  }
  cut_ += cup - cuq;

  // Loads and resource excess.
  resource_excess_ -= over(load(p), constraints_.rmax_of(p));
  resource_excess_ -= over(load(q), constraints_.rmax_of(q));
  loads_[static_cast<std::size_t>(p)] -= w;
  loads_[static_cast<std::size_t>(q)] += w;
  resource_excess_ += over(load(p), constraints_.rmax_of(p));
  resource_excess_ += over(load(q), constraints_.rmax_of(q));
  --counts_[static_cast<std::size_t>(p)];
  ++counts_[static_cast<std::size_t>(q)];

  // Neighbour connectivity.
  auto nbrs = graph_->neighbors(u);
  auto wgts = graph_->edge_weights(u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const std::size_t base = static_cast<std::size_t>(nbrs[i]) * k_;
    conn_[base + static_cast<std::size_t>(p)] -= wgts[i];
    conn_[base + static_cast<std::size_t>(q)] += wgts[i];
  }

  partition_->set(u, q);
  ++apply_count_;

  // Boundary maintenance: only u and its neighbours can have changed
  // status. Nodes that *left* the boundary are dropped lazily at
  // enumeration time.
  mark_boundary(u);
  for (NodeId v : nbrs) mark_boundary(v);
}

void MoveContext::boundary_nodes(std::vector<NodeId>& out) const {
  const NodeId n = graph_->num_nodes();
  // When the lazy list covers a large fraction of the graph, a full O(n)
  // rescan (is_boundary is O(1)) beats compacting + sorting it; both paths
  // produce the identical ascending enumeration.
  if (boundary_list_.size() * 4 >= n) {
    boundary_list_.clear();
    for (NodeId u = 0; u < n; ++u) {
      const bool b = is_boundary(u);
      in_boundary_list_[u] = b ? 1 : 0;
      if (b) boundary_list_.push_back(u);
    }
  } else {
    // Compact stale entries (nodes that have become internal), then sort so
    // enumeration is ascending by id — identical to a full 0..n scan.
    std::size_t w = 0;
    for (std::size_t i = 0; i < boundary_list_.size(); ++i) {
      const NodeId u = boundary_list_[i];
      if (is_boundary(u)) {
        boundary_list_[w++] = u;
      } else {
        in_boundary_list_[u] = 0;
      }
    }
    boundary_list_.resize(w);
    std::sort(boundary_list_.begin(), boundary_list_.end());
  }
  support::reserve_tracked(out, boundary_list_.size(), alloc_stats_);
  out.assign(boundary_list_.begin(), boundary_list_.end());
}

std::optional<MoveContext::Candidate> MoveContext::best_move(
    NodeId u, bool allow_emptying) const {
  const PartId p = part_of(u);
  if (!allow_emptying && part_size(p) <= 1) return std::nullopt;

  // Specialized all-targets scan: algebraically identical to calling
  // goodness_after(u, q) for every q (same int64 terms, summed in a
  // different order), but the source-part terms are hoisted out of the
  // target loop and the bandwidth inner loop only visits parts u actually
  // connects to. This is the hottest function of every FM pass.
  const Weight w = graph_->node_weight(u);
  const std::size_t conn_base = static_cast<std::size_t>(u) * k_;
  const Weight cup = conn_[conn_base + static_cast<std::size_t>(p)];
  const Weight bmax = constraints_.bmax;
  const Weight res_base = resource_excess_ -
                          over(load(p), constraints_.rmax_of(p)) +
                          over(load(p) - w, constraints_.rmax_of(p));

  const bool bw_limited = bmax != Constraints::kUnlimited;
  const bool het = constraints_.heterogeneous();
  const Weight uniform_rmax = constraints_.rmax;
  const Weight* conn_row = conn_.data() + conn_base;
  const Weight* pair_row_p = pairwise_.row(p);
  // Parts (other than p) that u has edges into, ascending; and the
  // source-side bandwidth delta summed over all of them.
  nz_parts_.clear();
  Weight sp_sum = 0;
  if (bw_limited) {
    for (PartId r = 0; r < k_; ++r) {
      if (r == p) continue;
      const Weight cur = conn_row[r];
      if (cur == 0) continue;
      nz_parts_.push_back(r);
      const Weight pr_old = pair_row_p[r];
      sp_sum += over(pr_old - cur, bmax) - over(pr_old, bmax);
    }
  }

  PartId best_q = kUnassigned;
  Weight best_res = 0, best_bw = 0, best_cut = 0;
  for (PartId q = 0; q < k_; ++q) {
    if (q == p) continue;
    const Weight cuq = conn_row[q];
    const Weight rq =
        het ? constraints_.rmax_per_part[static_cast<std::size_t>(q)]
            : uniform_rmax;

    const Weight res =
        res_base - over(load(q), rq) + over(load(q) + w, rq);

    Weight bw = bandwidth_excess_;
    if (bw_limited) {
      const Weight pq_old = pair_row_p[q];
      bw += over(pq_old + cup - cuq, bmax) - over(pq_old, bmax);
      // Source-side sum minus its r == q term (goodness_after skips it).
      bw += sp_sum;
      if (cuq != 0) {
        bw -= over(pq_old - cuq, bmax) - over(pq_old, bmax);
      }
      const Weight* pair_row_q = pairwise_.row(q);
      for (PartId r : nz_parts_) {
        if (r == q) continue;
        const Weight cur = conn_row[r];
        const Weight qr_old = pair_row_q[r];
        bw += over(qr_old + cur, bmax) - over(qr_old, bmax);
      }
    }

    const Weight cut_after = cut_ + cup - cuq;
    // Lexicographic strict-less against the incumbent (first best wins
    // ties, like the goodness_after-based loop did).
    if (best_q == kUnassigned || res < best_res ||
        (res == best_res &&
         (bw < best_bw || (bw == best_bw && cut_after < best_cut)))) {
      best_q = q;
      best_res = res;
      best_bw = bw;
      best_cut = cut_after;
    }
  }
  if (best_q == kUnassigned) return std::nullopt;
  return Candidate{best_q, Goodness{best_res, best_bw, best_cut}};
}

}  // namespace ppnpart::part
