#pragma once
// Constant-size similarity sketches of graphs — the probe the engine's
// admission pipeline uses to spot near-identical arrivals before paying for
// an exact diff.
//
// A GraphSketch is a k-min-hash signature over per-node features. Each node
// contributes one 64-bit feature hash of (id, node weight, degree, incident
// edge weight); slot i of the sketch stores the minimum over all nodes of a
// slot-salted remix of that feature. Two sketches then estimate the Jaccard
// similarity of the underlying feature sets as the fraction of agreeing
// slots (the classic MinHash estimator): graphs that share ~99% of their
// node neighbourhoods agree on ~99% of slots in expectation, while
// unrelated graphs agree on almost none.
//
// Including the node id in the feature makes the sketch alignment-aware on
// purpose: the downstream diff/warm-start machinery (graph::diff,
// IncrementalPartitioner) only profits when ids are stable across versions,
// so "similar" must mean "similar under stable-id alignment", not merely
// isomorphic. An edit to one channel perturbs exactly its two endpoints'
// features, so ~1% edge edits leave ~98% of features — and of sketch slots
// — intact.
//
// Cost: O(V + E + kSlots * V) splitmix rounds (sub-millisecond on 10k-node
// networks) and 50-odd machine words of storage per cached graph. The
// sketch is deterministic: equal graphs always produce equal sketches, so
// sketch-driven admission decisions replay bit-identically.
//
// The estimator is probabilistic the other way around — two DIFFERENT
// graphs can collide on every slot with probability ~2^-64 per slot pair.
// Consumers must never treat a sketch match as identity: the engine always
// re-verifies via graph::diff + bit-identical reconstruction before any
// partition is reused (see incremental.hpp).

#include <array>
#include <cstdint>

#include "graph/graph.hpp"

namespace ppnpart::support {

struct GraphSketch {
  /// Slot count: the similarity estimate's standard error is
  /// ~sqrt(s(1-s)/kSlots) (~0.07 worst case), plenty to separate the ~0.95
  /// similarity of a 1%-edited twin from unrelated traffic at the engine's
  /// default 0.5 admission threshold.
  static constexpr std::size_t kSlots = 48;

  std::array<std::uint64_t, kSlots> slots{};
  std::uint32_t nodes = 0;
  std::uint64_t edges = 0;

  friend bool operator==(const GraphSketch&, const GraphSketch&) = default;
};

/// Deterministic sketch of `g` (see file comment).
GraphSketch sketch_of(const graph::Graph& g);

/// MinHash similarity estimate in [0, 1]: the fraction of agreeing slots.
/// Symmetric; sketch_similarity(s, s) == 1. Empty graphs sketch to all
/// sentinel slots and count as similar only to other empty graphs.
double sketch_similarity(const GraphSketch& a, const GraphSketch& b);

}  // namespace ppnpart::support
