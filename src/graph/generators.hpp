#pragma once
// Random graph generators.
//
// The paper evaluates on "random generated graphs … represent[ing] Process
// Networks generated via suitable tools". `random_process_network` is the
// workhorse: a layered, mostly-feed-forward topology with skewed node
// (resource) and edge (bandwidth) weights, which is the structure PPN
// derivation tools emit for streaming kernels. The classic generators
// (G(n,m), geometric, preferential attachment) feed the scaling studies and
// the test suite.

#include <cstdint>

#include "graph/graph.hpp"
#include "support/prng.hpp"

namespace ppnpart::graph {

struct WeightRange {
  Weight lo = 1;
  Weight hi = 1;
};

/// Uniform random simple graph with exactly `m` edges (m capped at n(n-1)/2).
Graph erdos_renyi_gnm(NodeId n, std::uint64_t m, support::Rng& rng,
                      WeightRange node_w = {1, 1}, WeightRange edge_w = {1, 1});

/// Nodes on the unit square, edge when distance <= radius.
Graph random_geometric(NodeId n, double radius, support::Rng& rng,
                       WeightRange node_w = {1, 1},
                       WeightRange edge_w = {1, 1});

/// Barabási–Albert-style preferential attachment; each new node attaches to
/// `attach` existing nodes. Produces the heavy-tailed degree distributions
/// that stress matching heuristics.
Graph preferential_attachment(NodeId n, std::uint32_t attach,
                              support::Rng& rng, WeightRange node_w = {1, 1},
                              WeightRange edge_w = {1, 1});

struct ProcessNetworkParams {
  NodeId num_nodes = 64;
  /// Average out-degree of forward (pipeline) edges.
  double forward_degree = 2.0;
  /// Probability of a skip edge to a node >1 layer ahead.
  double skip_probability = 0.15;
  std::uint32_t layers = 8;
  WeightRange resource = {10, 80};   // R_p per process
  WeightRange bandwidth = {1, 12};   // sustained tokens/cycle per channel
  /// Fraction of "hub" nodes whose resource weight is scaled up ~3x —
  /// mirrors the mix of tiny glue processes and heavy compute kernels that
  /// PPN derivation produces.
  double hub_fraction = 0.1;
};

/// PN-shaped random graph; always connected (a pipeline spine is enforced).
Graph random_process_network(const ProcessNetworkParams& params,
                             support::Rng& rng);

/// Ring of cliques: `cliques` cliques of `clique_size` nodes joined in a
/// cycle by single edges — a worst case for naive matchings, a best case for
/// partitioners (the natural partition is obvious). Used by tests/benches.
Graph ring_of_cliques(std::uint32_t cliques, std::uint32_t clique_size,
                      Weight intra_weight = 10, Weight inter_weight = 1);

/// 2D grid graph (r x c), unit weights unless specified.
Graph grid2d(std::uint32_t rows, std::uint32_t cols,
             WeightRange node_w = {1, 1}, WeightRange edge_w = {1, 1},
             support::Rng* rng = nullptr);

}  // namespace ppnpart::graph
