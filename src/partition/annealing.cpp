#include "partition/annealing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "partition/initial.hpp"
#include "partition/move_context.hpp"
#include "support/timer.hpp"

namespace ppnpart::part {

namespace {

/// Scalarized goodness: any unit of constraint excess outweighs the whole
/// cut. Computed in double — excesses and penalties can exceed int64 when
/// multiplied on large weighted instances.
double energy(const Goodness& good, double penalty) {
  return penalty * (static_cast<double>(good.resource_excess) +
                    static_cast<double>(good.bandwidth_excess)) +
         static_cast<double>(good.cut);
}

}  // namespace

AnnealingPartitioner::AnnealingPartitioner(AnnealingOptions options)
    : options_(options) {
  if (options_.cooling <= 0 || options_.cooling >= 1)
    throw std::invalid_argument("AnnealingOptions: cooling must be in (0,1)");
  if (options_.initial_acceptance <= 0 || options_.initial_acceptance >= 1)
    throw std::invalid_argument(
        "AnnealingOptions: initial_acceptance must be in (0,1)");
}

PartitionResult AnnealingPartitioner::run(const Graph& g,
                                          const PartitionRequest& request) {
  if (request.k <= 0)
    throw std::invalid_argument("Annealing: k must be positive");
  support::Timer timer;
  PartitionResult result;
  result.algorithm = name();

  const NodeId n = g.num_nodes();
  const PartId k = request.k;
  const Constraints& c = request.constraints;
  // Independent per-phase streams from one root seed: the walk and the
  // greedy restarts stay reproducible however the portfolio schedules them.
  support::SeedStream seeds(request.seed);
  support::Rng rng = seeds.rng_for(0);

  // Seed with the paper's greedy growth so annealing starts near-feasible.
  GreedyGrowOptions grow;
  grow.restarts = 4;
  support::Rng grow_rng = seeds.rng_for(1);
  Partition p = greedy_grow_initial(g, k, c, grow, grow_rng);
  MoveContext ctx(g, p, c);

  const double penalty = static_cast<double>(g.total_edge_weight()) + 1.0;
  double current_e = energy(ctx.goodness(), penalty);

  std::vector<PartId> best_assign(p.assignments());
  Goodness best_good = ctx.goodness();
  double best_e = current_e;

  // Calibrate T0 so that `initial_acceptance` of sampled uphill moves pass.
  double t0 = 1.0;
  if (n >= 2 && k >= 2) {
    double sum_abs = 0;
    std::uint32_t samples = 0;
    for (std::uint32_t i = 0; i < 64; ++i) {
      const NodeId u = static_cast<NodeId>(rng.uniform_index(n));
      const PartId q = static_cast<PartId>(rng.uniform_index(k));
      if (q == ctx.part_of(u)) continue;
      const double de =
          energy(ctx.goodness_after(u, q), penalty) - current_e;
      sum_abs += std::abs(de);
      ++samples;
    }
    const double mean = samples > 0 ? sum_abs / samples : 0.0;
    t0 = mean > 0 ? -mean / std::log(options_.initial_acceptance) : 1.0;
  }
  double temperature = t0;

  const std::uint64_t budget =
      static_cast<std::uint64_t>(options_.moves_per_node) * std::max(n, 1u);
  std::uint64_t proposed = 0;
  std::uint32_t stall_steps = 0;

  while (proposed < budget && temperature > options_.min_temperature &&
         n >= 2 && k >= 2) {
    // Cooperative stop at temperature-step granularity; the greedy-grown
    // incumbent above guarantees a complete result either way.
    if (request.stop_requested()) break;
    bool improved_best_this_step = false;
    for (std::uint32_t m = 0;
         m < options_.moves_per_temperature && proposed < budget; ++m) {
      ++proposed;
      const bool do_swap = rng.bernoulli(options_.swap_probability);
      if (do_swap) {
        const NodeId u = static_cast<NodeId>(rng.uniform_index(n));
        const NodeId v = static_cast<NodeId>(rng.uniform_index(n));
        const PartId pu = ctx.part_of(u);
        const PartId pv = ctx.part_of(v);
        if (u == v || pu == pv) continue;
        ctx.apply(u, pv);
        const double after_e =
            energy(ctx.goodness_after(v, pu), penalty);
        const double de = after_e - current_e;
        if (de <= 0 ||
            rng.uniform_real() < std::exp(-de / temperature)) {
          ctx.apply(v, pu);
          current_e = after_e;
        } else {
          ctx.apply(u, pu);  // reject: undo the half-swap
        }
      } else {
        const NodeId u = static_cast<NodeId>(rng.uniform_index(n));
        const PartId from = ctx.part_of(u);
        if (ctx.part_size(from) <= 1) continue;  // never empty a part
        const PartId q = static_cast<PartId>(rng.uniform_index(k));
        if (q == from) continue;
        const double after_e = energy(ctx.goodness_after(u, q), penalty);
        const double de = after_e - current_e;
        if (de <= 0 ||
            rng.uniform_real() < std::exp(-de / temperature)) {
          ctx.apply(u, q);
          current_e = after_e;
        }
      }
      if (current_e < best_e) {
        best_e = current_e;
        best_good = ctx.goodness();
        best_assign = ctx.partition().assignments();
        improved_best_this_step = true;
      }
    }

    temperature *= options_.cooling;
    if (improved_best_this_step) {
      stall_steps = 0;
    } else if (options_.reheat_after_stall > 0 &&
               ++stall_steps >= options_.reheat_after_stall) {
      // Restart the walk from the incumbent with a warmer temperature.
      for (NodeId u = 0; u < n; ++u) {
        if (ctx.part_of(u) != best_assign[u]) ctx.apply(u, best_assign[u]);
      }
      current_e = best_e;
      temperature = std::min(t0, temperature * 8.0);
      stall_steps = 0;
    }
  }

  result.partition = Partition(n, k);
  for (NodeId u = 0; u < n; ++u) result.partition.set(u, best_assign[u]);
  result.finalize(g, c);
  result.seconds = timer.seconds();
  (void)best_good;
  return result;
}

}  // namespace ppnpart::part
