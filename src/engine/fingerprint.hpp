#pragma once
// Content fingerprints for the engine's result cache.
//
// A cache key must identify everything that determines a partitioning
// answer: the graph (structure and both weight vectors), the request (k,
// constraints, seed) and the portfolio that answers it. Fingerprints are
// 64-bit SplitMix64-mixed digests — not cryptographic, but with a 4096-entry
// cache the collision probability is ~2^-40, far below the noise floor of a
// heuristic partitioner serving approximate answers.

#include <cstdint>
#include <string>

#include "graph/graph.hpp"
#include "partition/partitioner.hpp"

namespace ppnpart::engine {

/// Order-sensitive 64-bit combine (SplitMix64 finalizer).
std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v);

std::uint64_t hash_string(std::uint64_t h, const std::string& s);

/// Digest of the CSR arrays and both weight vectors. Two graphs with equal
/// fingerprints produce identical partitioner behaviour (same node ids, same
/// adjacency order).
std::uint64_t graph_fingerprint(const graph::Graph& g);

/// Digest of the request fields that determine the answer: k, seed, rmax,
/// bmax and any per-part budgets. The stop token is transient state and is
/// deliberately excluded.
std::uint64_t request_fingerprint(const part::PartitionRequest& r);

/// Digest of the request fields a warm start must AGREE on — k and the
/// constraint set. The seed is deliberately excluded: a previous answer for
/// the same shape of question remains a valid warm start for a different
/// seed, and a service's near-identical arrivals routinely vary it. Used to
/// key SimilarityIndex compatibility, never the exact result cache.
std::uint64_t request_compat_fingerprint(const part::PartitionRequest& r);

}  // namespace ppnpart::engine
