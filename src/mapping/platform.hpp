#pragma once
// Multi-FPGA platform model: devices with resource budgets, inter-device
// links with bandwidth capacities. The paper's evaluation assumes the
// homogeneous all-to-all case (every FPGA Rmax, every pair Bmax); ring,
// mesh and star topologies generalise it for the mapping studies.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "partition/partition.hpp"

namespace ppnpart::mapping {

using graph::Weight;

struct FpgaDevice {
  std::string name;
  /// Single-resource budget (the paper's Rmax; e.g. LUTs).
  Weight resources = 0;
};

struct Link {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  /// Bandwidth capacity per unit time (the paper's Bmax).
  Weight capacity = 0;
};

class Platform {
 public:
  Platform() = default;
  explicit Platform(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  std::uint32_t add_device(FpgaDevice device);
  /// Adds an undirected link; duplicate pairs are rejected.
  void add_link(std::uint32_t a, std::uint32_t b, Weight capacity);

  std::uint32_t num_devices() const {
    return static_cast<std::uint32_t>(devices_.size());
  }
  const FpgaDevice& device(std::uint32_t i) const { return devices_.at(i); }
  const std::vector<FpgaDevice>& devices() const { return devices_; }
  const std::vector<Link>& links() const { return links_; }

  /// Capacity of the direct link a-b; 0 when absent (a == b returns
  /// "unlimited": on-chip traffic never crosses a link).
  Weight link_capacity(std::uint32_t a, std::uint32_t b) const;
  bool connected(std::uint32_t a, std::uint32_t b) const {
    return a == b || link_capacity(a, b) > 0;
  }

  // --- Topology factories (homogeneous devices). -----------------------
  static Platform all_to_all(std::uint32_t devices, Weight rmax, Weight bmax);
  static Platform ring(std::uint32_t devices, Weight rmax, Weight bmax);
  static Platform mesh2d(std::uint32_t rows, std::uint32_t cols, Weight rmax,
                         Weight bmax);
  static Platform star(std::uint32_t leaves, Weight rmax, Weight bmax);

  /// Partitioning constraints induced by this platform: per-part resource
  /// budgets follow the devices (heterogeneous boards produce
  /// rmax_per_part), and bmax is the *minimum* link capacity — the only
  /// per-pair bound a placement-oblivious partitioner can guarantee. On
  /// all-to-all homogeneous platforms this is exact; on sparser
  /// topologies it is conservative and the mapper re-validates pair by
  /// pair after placement.
  part::Constraints to_constraints() const;

 private:
  std::string name_;
  std::vector<FpgaDevice> devices_;
  std::vector<Link> links_;
};

}  // namespace ppnpart::mapping
