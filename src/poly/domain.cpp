#include "poly/domain.hpp"

#include <stdexcept>

namespace ppnpart::poly {

void IterationDomain::add_guard(AffineExpr guard) {
  if (guard.dims() != dims())
    throw std::invalid_argument("add_guard: dimension mismatch");
  guards_.push_back(std::move(guard));
}

bool IterationDomain::contains(std::span<const std::int64_t> point) const {
  if (point.size() != dims()) return false;
  for (std::size_t d = 0; d < dims(); ++d) {
    if (point[d] < bounds_[d].lo || point[d] > bounds_[d].hi) return false;
  }
  for (const AffineExpr& g : guards_) {
    if (g.evaluate(point) < 0) return false;
  }
  return true;
}

std::uint64_t IterationDomain::box_volume() const {
  std::uint64_t volume = 1;
  for (const Bound& b : bounds_) {
    if (b.hi < b.lo) return 0;
    volume *= static_cast<std::uint64_t>(b.hi - b.lo + 1);
  }
  return volume;
}

std::uint64_t IterationDomain::cardinality() const {
  if (guards_.empty()) return box_volume();
  std::uint64_t count = 0;
  for_each_point([&](std::span<const std::int64_t>) { ++count; });
  return count;
}

void IterationDomain::for_each_point(
    const std::function<void(std::span<const std::int64_t>)>& fn) const {
  if (box_volume() == 0) return;
  constexpr std::uint64_t kEnumerationCap = 1ull << 26;
  if (box_volume() > kEnumerationCap)
    throw std::runtime_error(
        "IterationDomain::for_each_point: domain too large to enumerate");
  std::vector<std::int64_t> point(dims());
  for (std::size_t d = 0; d < dims(); ++d) point[d] = bounds_[d].lo;
  if (dims() == 0) {
    fn(point);
    return;
  }
  for (;;) {
    bool ok = true;
    for (const AffineExpr& g : guards_) {
      if (g.evaluate(point) < 0) {
        ok = false;
        break;
      }
    }
    if (ok) fn(point);
    // Lexicographic increment (last dimension fastest).
    std::size_t d = dims();
    while (d-- > 0) {
      if (point[d] < bounds_[d].hi) {
        ++point[d];
        for (std::size_t e = d + 1; e < dims(); ++e) point[e] = bounds_[e].lo;
        break;
      }
      if (d == 0) return;
    }
  }
}

}  // namespace ppnpart::poly
