// Map the M-JPEG-style encoder pipeline onto a multi-FPGA board, validate
// the mapping against resource and link budgets, and simulate the sustained
// throughput — the end-to-end flow the paper's introduction motivates.
//
//   ./mjpeg_multifpga [--fpgas 4] [--rmax 600] [--bmax 18] [--topology ring]

#include <cstdio>

#include "mapping/mapper.hpp"
#include "partition/gp.hpp"
#include "partition/metislike.hpp"
#include "ppn/workloads.hpp"
#include "sim/simulator.hpp"
#include "support/cli.hpp"
#include "viz/dot.hpp"

namespace {

ppnpart::mapping::Platform make_platform(const std::string& topology,
                                         std::uint32_t fpgas,
                                         ppnpart::graph::Weight rmax,
                                         ppnpart::graph::Weight bmax) {
  using ppnpart::mapping::Platform;
  if (topology == "ring") return Platform::ring(fpgas, rmax, bmax);
  if (topology == "star") return Platform::star(fpgas - 1, rmax, bmax);
  if (topology == "mesh" && fpgas == 4) return Platform::mesh2d(2, 2, rmax, bmax);
  return Platform::all_to_all(fpgas, rmax, bmax);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ppnpart;

  support::ArgParser args("map the M-JPEG pipeline onto a multi-FPGA board");
  args.add_int("fpgas", 4, "number of FPGAs");
  args.add_int("rmax", 600, "per-FPGA resource budget (LUT-equivalents)");
  args.add_int("bmax", 18, "per-link bandwidth budget (tokens/cycle)");
  args.add_string("topology", "all-to-all",
                  "interconnect: all-to-all | ring | star | mesh");
  args.add_string("dot", "", "write the GP mapping as DOT to this path");
  if (auto status = args.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n", status.message().c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.help_text().c_str());
    return 0;
  }

  const auto fpgas = static_cast<std::uint32_t>(args.get_int("fpgas"));
  const graph::Weight rmax = args.get_int("rmax");
  const graph::Weight bmax = args.get_int("bmax");

  const ppn::ProcessNetwork network = ppn::mjpeg_network();
  const graph::Graph g = ppn::to_graph(network);
  std::printf("M-JPEG pipeline: %u processes, %zu channels, %lld total "
              "resources, %lld total channel bandwidth\n",
              network.num_processes(), network.num_channels(),
              static_cast<long long>(network.total_resources()),
              static_cast<long long>(network.total_bandwidth()));

  const mapping::Platform platform =
      make_platform(args.get_string("topology"), fpgas, rmax, bmax);
  std::printf("platform: %u x FPGA(R=%lld), topology %s, link B=%lld\n\n",
              platform.num_devices(), static_cast<long long>(rmax),
              platform.name().c_str(), static_cast<long long>(bmax));

  part::PartitionRequest request;
  request.k = static_cast<part::PartId>(fpgas);
  request.constraints.rmax = rmax;
  request.constraints.bmax = bmax;
  request.seed = 1;

  sim::SimOptions sim_options;
  sim_options.max_steps = 500'000;
  const double solo =
      sim::simulate_single_device(network, sim_options).sink_throughput;
  std::printf("single-FPGA reference throughput: %.4f frames-units/step\n\n",
              solo);

  auto evaluate = [&](const char* name, const part::PartitionResult& r) {
    std::printf("[%s] %s\n", name,
                part::describe(r.metrics, request.constraints).c_str());
    const mapping::Mapping m = mapping::map_network(g, r.partition, platform);
    const mapping::MappingReport report =
        mapping::validate_mapping(g, m, platform);
    std::printf("[%s] %s\n", name, report.summary().c_str());
    const sim::SimStats stats =
        sim::simulate(network, m, platform, sim_options);
    std::printf("[%s] simulated throughput %.4f (%.1f%% of single-FPGA), "
                "drained=%s\n\n",
                name, stats.sink_throughput,
                solo > 0 ? 100.0 * stats.sink_throughput / solo : 0,
                stats.drained ? "yes" : "no");
    return m;
  };

  part::GpPartitioner gp;
  const part::PartitionResult gp_result = gp.run(g, request);
  evaluate("GP", gp_result);

  part::MetisLikeOptions ml;
  ml.unit_vertex_balance = true;
  const part::PartitionResult metis_result =
      part::MetisLikePartitioner(ml).run(g, request);
  evaluate("MetisLike", metis_result);

  if (const std::string& path = args.get_string("dot"); !path.empty()) {
    if (auto status = viz::write_partitioned_dot_file(path, network,
                                                      gp_result.partition)) {
      std::printf("GP mapping written to %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "%s\n", status.message().c_str());
    }
  }
  return gp_result.feasible ? 0 : 2;
}
