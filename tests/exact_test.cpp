#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/exact.hpp"
#include "ppn/paper_instances.hpp"

namespace ppnpart::part {
namespace {

/// Brute force over all k^n assignments — the reference the B&B is checked
/// against (only for tiny n).
Weight brute_force_min_cut(const Graph& g, PartId k, const Constraints& c,
                           bool* found) {
  const NodeId n = g.num_nodes();
  Weight best = std::numeric_limits<Weight>::max();
  std::vector<PartId> assign(n, 0);
  std::uint64_t total = 1;
  for (NodeId i = 0; i < n; ++i) total *= static_cast<std::uint64_t>(k);
  for (std::uint64_t code = 0; code < total; ++code) {
    std::uint64_t x = code;
    for (NodeId i = 0; i < n; ++i) {
      assign[i] = static_cast<PartId>(x % k);
      x /= k;
    }
    Partition p(n, k);
    for (NodeId i = 0; i < n; ++i) p.set(i, assign[i]);
    if (!p.all_parts_nonempty()) continue;  // matches ExactOptions default
    const PartitionMetrics m = compute_metrics(g, p);
    if (!compute_violation(m, c).feasible()) continue;
    best = std::min(best, m.total_cut);
  }
  *found = best != std::numeric_limits<Weight>::max();
  return best;
}

class ExactVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactVsBruteForce, UnconstrainedOptimumMatches) {
  support::Rng rng(GetParam());
  const Graph g = graph::erdos_renyi_gnm(8, 16, rng, {1, 9}, {1, 9});
  bool bf_found = false;
  const Weight bf = brute_force_min_cut(g, 3, Constraints{}, &bf_found);
  const ExactResult exact = exact_min_cut(g, 3, Constraints{});
  ASSERT_TRUE(exact.found);
  ASSERT_TRUE(exact.optimal);
  EXPECT_EQ(exact.cut, bf);
}

TEST_P(ExactVsBruteForce, ConstrainedOptimumMatches) {
  support::Rng rng(GetParam() + 50);
  const Graph g = graph::erdos_renyi_gnm(8, 18, rng, {2, 9}, {1, 9});
  Constraints c;
  c.rmax = g.total_node_weight() / 2;  // tight-ish
  c.bmax = 20;
  bool bf_found = false;
  const Weight bf = brute_force_min_cut(g, 3, c, &bf_found);
  const ExactResult exact = exact_min_cut(g, 3, c);
  EXPECT_EQ(exact.found, bf_found);
  if (bf_found) {
    EXPECT_EQ(exact.cut, bf);
    const Goodness good = compute_goodness(g, exact.partition, c);
    EXPECT_EQ(good.resource_excess, 0);
    EXPECT_EQ(good.bandwidth_excess, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactVsBruteForce,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Exact, TwoTrianglesBridge) {
  graph::GraphBuilder b(6);
  for (NodeId u = 0; u < 3; ++u) {
    for (NodeId v = u + 1; v < 3; ++v) b.add_edge(u, v, 10);
  }
  for (NodeId u = 3; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) b.add_edge(u, v, 10);
  }
  b.add_edge(0, 3, 2);
  const Graph g = b.build();
  const ExactResult r = exact_min_cut(g, 2, Constraints{});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.cut, 2);
  EXPECT_NE(r.partition[0], r.partition[3]);
}

TEST(Exact, InfeasibleDetected) {
  graph::GraphBuilder b(3);
  for (NodeId u = 0; u < 3; ++u) b.set_node_weight(u, 10);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  const Graph g = b.build();
  Constraints c;
  c.rmax = 9;  // no node fits anywhere
  const ExactResult r = exact_min_cut(g, 3, c);
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.optimal);  // search completed; provably infeasible
}

TEST(Exact, ConstraintsCostCutOnPaperInstance) {
  // On the reconstructed Experiment 1 instance the unconstrained optimum
  // violates Rmax/Bmax (that is the paper's premise); the constrained
  // optimum is feasible and strictly more expensive.
  const ppn::PaperInstance inst = ppn::paper_instance(1);
  const ExactResult loose = exact_min_cut(inst.graph, inst.k, Constraints{});
  const ExactResult tight =
      exact_min_cut(inst.graph, inst.k, inst.constraints);
  ASSERT_TRUE(loose.found);
  ASSERT_TRUE(loose.optimal);
  ASSERT_TRUE(tight.found);
  ASSERT_TRUE(tight.optimal);
  const Goodness loose_good =
      compute_goodness(inst.graph, loose.partition, inst.constraints);
  EXPECT_GT(loose_good.resource_excess + loose_good.bandwidth_excess, 0)
      << "unconstrained optimum should violate the FPGA constraints";
  const Goodness tight_good =
      compute_goodness(inst.graph, tight.partition, inst.constraints);
  EXPECT_EQ(tight_good.resource_excess, 0);
  EXPECT_EQ(tight_good.bandwidth_excess, 0);
  EXPECT_LT(loose.cut, tight.cut);
}

TEST(Exact, RefusesOversizedInstance) {
  support::Rng rng(9);
  const Graph g = graph::erdos_renyi_gnm(30, 60, rng);
  EXPECT_THROW(exact_min_cut(g, 2, Constraints{}), std::invalid_argument);
}

TEST(Exact, StateBudgetTruncates) {
  support::Rng rng(10);
  const Graph g = graph::erdos_renyi_gnm(14, 40, rng, {1, 5}, {1, 5});
  ExactOptions options;
  options.max_states = 10;  // absurdly small
  const ExactResult r = exact_min_cut(g, 4, Constraints{}, options);
  EXPECT_FALSE(r.optimal);
}

TEST(Exact, SingletonAndTrivialCases) {
  graph::GraphBuilder b(1);
  const ExactResult r1 = exact_min_cut(b.build(), 1, Constraints{});
  ASSERT_TRUE(r1.found);
  EXPECT_EQ(r1.cut, 0);
  // One node cannot populate two parts: provably infeasible.
  const ExactResult r2 = exact_min_cut(b.build(), 2, Constraints{});
  EXPECT_FALSE(r2.found);
  EXPECT_TRUE(r2.optimal);
  // Unless empty parts are allowed.
  ExactOptions options;
  options.require_all_parts = false;
  const ExactResult r3 = exact_min_cut(b.build(), 2, Constraints{}, options);
  EXPECT_TRUE(r3.found);
  EXPECT_THROW(exact_min_cut(Graph(), 0, Constraints{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ppnpart::part
