#include "partition/kl.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "graph/algorithms.hpp"
#include "support/timer.hpp"

namespace ppnpart::part {

namespace {

/// D-value of classic KL: external minus internal connection weight.
void compute_d_values(const Graph& g, const Partition& p,
                      std::vector<Weight>& d, support::AllocStats* stats) {
  const NodeId n = g.num_nodes();
  support::assign_tracked(d, n, 0, stats);
  for (NodeId u = 0; u < n; ++u) {
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      d[u] += p[nbrs[i]] == p[u] ? -wgts[i] : wgts[i];
    }
  }
}

struct SwapPick {
  NodeId a = graph::kInvalidNode;  // in part 0
  NodeId b = graph::kInvalidNode;  // in part 1
  Weight gain = std::numeric_limits<Weight>::min();
};

}  // namespace

bool kl_bisection_refine(const Graph& g, Partition& p, Weight cap0,
                         Weight cap1, const KlOptions& options,
                         support::Rng& rng, Workspace& ws) {
  if (p.k() != 2) throw std::invalid_argument("kl_bisection_refine: k != 2");
  const NodeId n = g.num_nodes();
  if (n < 2) return false;
  KlScratch& ks = ws.kl;

  Weight load[2] = {0, 0};
  for (NodeId u = 0; u < n; ++u) load[p[u]] += g.node_weight(u);

  bool improved_any = false;
  for (std::uint32_t pass = 0; pass < options.max_passes; ++pass) {
    std::vector<Weight>& d = ks.d;
    compute_d_values(g, p, d, ks.stats);
    std::vector<std::uint8_t>& locked = ks.locked;
    support::assign_tracked(locked, n, 0, ks.stats);

    // Node lists per side, visited in random order so that equal-gain pairs
    // are broken differently across passes/restarts.
    support::reserve_tracked(ks.side0, n, ks.stats);
    support::reserve_tracked(ks.side1, n, ks.stats);
    support::reserve_tracked(ks.steps, n, ks.stats);
    ks.side0.clear();
    ks.side1.clear();
    std::vector<NodeId>* side[2] = {&ks.side0, &ks.side1};
    for (NodeId u = 0; u < n; ++u) side[p[u]]->push_back(u);
    rng.shuffle(*side[0]);
    rng.shuffle(*side[1]);

    std::vector<KlStep>& steps = ks.steps;
    steps.clear();
    Weight l0 = load[0], l1 = load[1];

    const std::size_t max_steps = std::min(side[0]->size(), side[1]->size());
    for (std::size_t step = 0; step < max_steps; ++step) {
      SwapPick pick;
      for (NodeId a : *side[0]) {
        if (locked[a]) continue;
        const Weight wa = g.node_weight(a);
        for (NodeId b : *side[1]) {
          if (locked[b]) continue;
          const Weight wb = g.node_weight(b);
          // Generalized balance admissibility: the swap may not push either
          // side past its cap (unless it strictly reduces that side's
          // overflow, which lets KL escape an infeasible start).
          const Weight n0 = l0 - wa + wb;
          const Weight n1 = l1 - wb + wa;
          const bool admissible =
              (n0 <= cap0 || n0 < l0) && (n1 <= cap1 || n1 < l1);
          if (!admissible) continue;
          const Weight gain = d[a] + d[b] - 2 * g.edge_weight_between(a, b);
          if (gain > pick.gain) pick = SwapPick{a, b, gain};
        }
      }
      if (pick.a == graph::kInvalidNode) break;

      // Tentatively swap (update partition so D-updates below see it), lock.
      p.set(pick.a, 1);
      p.set(pick.b, 0);
      locked[pick.a] = locked[pick.b] = 1;
      const Weight wa = g.node_weight(pick.a);
      const Weight wb = g.node_weight(pick.b);
      l0 += wb - wa;
      l1 += wa - wb;
      steps.push_back({pick.a, pick.b, pick.gain});

      // KL D-value update for unlocked nodes adjacent to the swapped pair.
      // After the swap, a is in part 1 and b in part 0: for an unlocked
      // node v, an edge to a now behaves as if to part 1, etc. The classic
      // closed form: for v in part 0: D[v] += 2w(v,a) - 2w(v,b); part 1 the
      // mirror. (v's own part is the *current* one, already updated.)
      auto update_around = [&](NodeId moved, PartId now_in) {
        auto nbrs = g.neighbors(moved);
        auto wgts = g.edge_weights(moved);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          const NodeId v = nbrs[i];
          if (locked[v]) continue;
          // Edge (v, moved) flipped from cut/internal status.
          d[v] += p[v] == now_in ? -2 * wgts[i] : 2 * wgts[i];
        }
      };
      update_around(pick.a, 1);
      update_around(pick.b, 0);
    }

    // Best prefix by cumulative gain.
    Weight best_sum = 0, run_sum = 0;
    std::size_t best_len = 0;
    for (std::size_t i = 0; i < steps.size(); ++i) {
      run_sum += steps[i].gain;
      if (run_sum > best_sum) {
        best_sum = run_sum;
        best_len = i + 1;
      }
    }
    // Undo the tail beyond the best prefix.
    for (std::size_t i = steps.size(); i-- > best_len;) {
      p.set(steps[i].a, 0);
      p.set(steps[i].b, 1);
      const Weight wa = g.node_weight(steps[i].a);
      const Weight wb = g.node_weight(steps[i].b);
      l0 += wa - wb;
      l1 += wb - wa;
    }
    load[0] = l0;
    load[1] = l1;
    if (best_sum <= 0) break;
    improved_any = true;
  }
  return improved_any;
}

bool kl_bisection_refine(const Graph& g, Partition& p, Weight cap0,
                         Weight cap1, const KlOptions& options,
                         support::Rng& rng) {
  Workspace ws;
  return kl_bisection_refine(g, p, cap0, cap1, options, rng, ws);
}

KlPartitioner::KlPartitioner(KlOptions options) : options_(options) {
  if (options_.imbalance < 1.0)
    throw std::invalid_argument("KlOptions: imbalance must be >= 1");
}

namespace {

/// Recursive KL bisection of `g` into parts [part_lo, part_lo + k).
void kl_recurse(const Graph& g, const std::vector<NodeId>& original_of,
                Partition& out, PartId part_lo, PartId k,
                const KlOptions& options, support::Rng& rng, Workspace& ws) {
  const NodeId n = g.num_nodes();
  if (k <= 1 || n == 0) {
    for (NodeId u = 0; u < n; ++u) out.set(original_of[u], part_lo);
    return;
  }

  const PartId k0 = k / 2;
  const PartId k1 = k - k0;
  const double frac0 = static_cast<double>(k0) / static_cast<double>(k);
  const Weight total = g.total_node_weight();
  const Weight target0 =
      static_cast<Weight>(std::llround(frac0 * static_cast<double>(total)));

  // Random initial split at the target weight (paper: "the initial
  // partition is generated randomly").
  std::vector<NodeId> order(n);
  for (NodeId u = 0; u < n; ++u) order[u] = u;
  rng.shuffle(order);
  Partition bisect(n, 2);
  Weight acc = 0;
  for (NodeId u : order) {
    const PartId side = acc < target0 ? 0 : 1;
    bisect.set(u, side);
    if (side == 0) acc += g.node_weight(u);
  }
  // Guard against degenerate empty sides (tiny n or huge first node).
  if (acc == total && n >= 2) bisect.set(order.back(), 1);
  if (acc == 0 && n >= 1) bisect.set(order.front(), 0);

  const auto cap = [&](double frac) {
    return static_cast<Weight>(
        std::ceil(options.imbalance * frac * static_cast<double>(total)));
  };
  kl_bisection_refine(g, bisect, cap(frac0), cap(1.0 - frac0), options, rng,
                      ws);

  std::vector<NodeId> half0, half1;
  for (NodeId u = 0; u < n; ++u) (bisect[u] == 0 ? half0 : half1).push_back(u);

  const auto recurse_half = [&](const std::vector<NodeId>& half, PartId lo,
                                PartId kk, std::uint64_t tag) {
    graph::Subgraph sub = graph::induced_subgraph(g, half);
    std::vector<NodeId> orig(half.size());
    for (std::size_t i = 0; i < half.size(); ++i)
      orig[i] = original_of[sub.original_of[i]];
    support::Rng child = rng.derive(tag);
    kl_recurse(sub.graph, orig, out, lo, kk, options, child, ws);
  };
  recurse_half(half0, part_lo, k0, 0x5A + static_cast<std::uint64_t>(part_lo));
  recurse_half(half1, part_lo + k0, k1,
               0xA5 + static_cast<std::uint64_t>(part_lo));
}

}  // namespace

PartitionResult KlPartitioner::run(const Graph& g,
                                   const PartitionRequest& request) {
  if (request.k <= 0) throw std::invalid_argument("KL: k must be positive");
  if (g.num_nodes() > options_.max_nodes)
    throw std::invalid_argument(
        "KL: instance exceeds KlOptions::max_nodes (quadratic passes)");
  support::Timer timer;
  PartitionResult result;
  result.algorithm = name();
  result.partition = Partition(g.num_nodes(), request.k);

  std::vector<NodeId> identity(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) identity[u] = u;
  support::Rng rng(request.seed);
  Workspace local_ws;
  Workspace& ws = request.workspace != nullptr ? *request.workspace : local_ws;
  WorkspaceLease lease(ws);
  kl_recurse(g, identity, result.partition, 0, request.k, options_, rng, ws);

  result.finalize(g, request.constraints);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace ppnpart::part
