#!/usr/bin/env python3
"""Architecture-invariant linter: the cross-subsystem rules no compiler flag
or unit test can see, enforced as CI-failing checks over src/.

Rules (each has a stable id, used in the allowlist):

  thread-outside-pool     std::thread / std::jthread / std::async / .detach()
                          anywhere but support/thread_pool.* — all parallelism
                          flows through support::ThreadPool so saturation
                          deadlock rules and worker-thread detection hold.
  result-cache-write      writes to the engine result cache (cache_.insert)
                          outside Engine::finalize_job's guarded path — the
                          single seam where the completeness/cancellation
                          checks run before an entry becomes replayable.
  workspace-ref-capture   a lambda handed to submit()/parallel_for() that
                          captures by reference and touches a part::Workspace
                          — workspaces are single-run scratch; sharing one
                          across pool tasks is the exact race WorkspaceLease
                          aborts on in Debug.
  raw-new-delete          raw `new` / `delete` in src/ — ownership is
                          unique_ptr/shared_ptr/containers; the deliberate
                          leaked singletons (ThreadPool/Tracer/Metrics
                          globals) are allowlisted, not idiomatic.
  tracer-in-header        Tracer:: internals referenced from a header other
                          than support/trace.hpp — headers must compile
                          identically under PPNPART_TRACE_DISABLED, so they
                          may only use the ScopedSpan/trace_* wrappers that
                          have no-op twins.
  status-error-code       Status::error / Result<T>::error called without a
                          leading StatusCode:: in src/ — the untyped overload
                          exists only for legacy callers; new errors must be
                          typed so callers can branch on *why* (retry on
                          kUnavailable, give up on kInvalidArgument).
  parallel-reduction-order  a lambda handed to the pool (submit/parallel_for/
                          run_chunks) that merges per-thread buffers into a
                          shared container under a mutex — completion-order
                          reductions silently break the fixed-seed bit-
                          reproducibility contract, so every such merge must
                          be gated behind the deterministic flag (an
                          identifier matching `determin` or the conventional
                          `det` bool in the lambda) or allowlisted as a
                          knowingly free-running path.
  workspace-pool-lease    an ad-hoc `Workspace <name>` local/member declared
                          in src/engine/ — engine code (warm-start tasks
                          especially, which run concurrently on the pool)
                          must lease exclusive scratch from the engine-owned
                          part::WorkspacePool; a stray local silently forfeits
                          warm-buffer reuse and dodges the pool's
                          growth-counter snapshots, and a stray member
                          reintroduces the shared-workspace serialization the
                          pool exists to remove.

Exceptions live in tools/invariant_allowlist.txt, one per line:

    <rule-id> <path-substring>[:<enclosing-function>]   # comment

Usage:
    python3 tools/check_invariants.py [--root DIR]   # lint src/, exit 1 on findings
    python3 tools/check_invariants.py --self-test    # prove every rule fires

Pure stdlib; runs as a ctest (invariants_lint, invariants_selftest) and in
the CI fast job.
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import re
import sys

# --------------------------------------------------------------------------
# Source preprocessing


def strip_comments_and_strings(text: str) -> str:
    """Blanks out //, /* */ comments and string/char literals, preserving
    line structure so reported line numbers stay exact."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:end]))
            i = end
        elif c in ('"', "'"):
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append("  ")
                    i += 2
                else:
                    out.append(" " if text[i] != "\n" else "\n")
                    i += 1
            out.append(" ")
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


FUNC_DEF_RE = re.compile(
    r"^[A-Za-z_][\w:<>,&*\s]*?\b([A-Za-z_]\w*(?:::~?[A-Za-z_]\w*)+|[A-Za-z_]\w*)"
    r"\s*\([^;]*$"
)


def enclosing_function(lines: list[str], line_no: int) -> str:
    """Best-effort name of the function containing 1-based `line_no`: the
    nearest preceding column-0 definition-looking line."""
    for i in range(line_no - 1, -1, -1):
        line = lines[i]
        if not line or line[0].isspace() or line.startswith(("}", "#")):
            continue
        m = FUNC_DEF_RE.match(line)
        if m:
            return m.group(1)
    return "?"


# --------------------------------------------------------------------------
# Findings and rules


@dataclasses.dataclass
class Finding:
    rule: str
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    func: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message} (in {self.func})"


def _findings_for(rule, pattern, path, stripped, lines, message):
    found = []
    for m in pattern.finditer(stripped):
        line_no = stripped.count("\n", 0, m.start()) + 1
        found.append(
            Finding(rule, path, line_no, enclosing_function(lines, line_no), message)
        )
    return found


THREAD_RE = re.compile(r"std::(?:thread|jthread)\b|std::async\b|\.detach\s*\(")


def rule_thread_outside_pool(path, stripped, lines):
    if "support/thread_pool" in path:
        return []
    return _findings_for(
        "thread-outside-pool",
        THREAD_RE,
        path,
        stripped,
        lines,
        "raw thread primitive; route work through support::ThreadPool",
    )


CACHE_WRITE_RE = re.compile(r"\bcache_\s*\.\s*(?:insert|put|emplace)\s*\(")


def rule_result_cache_write(path, stripped, lines):
    if "/engine/" not in path:
        return []
    return _findings_for(
        "result-cache-write",
        CACHE_WRITE_RE,
        path,
        stripped,
        lines,
        "result-cache write outside the guarded finalize path",
    )


POOL_CALL_RE = re.compile(r"\b(?:submit|parallel_for)\s*\(")
LAMBDA_REF_CAPTURE_RE = re.compile(r"\[\s*&")
WS_TOUCH_RE = re.compile(r"\bWorkspace\b|\bworkspace\b|\bws\b")


def _lambda_for_call(stripped, call_end):
    """Returns (capture+body snippet, offset) of the lambda argument of a
    pool call: inline `[...]...` right at the argument, or a named lambda
    `auto name = [...]` defined in the preceding 50 lines."""
    tail = stripped[call_end : call_end + 600]
    m = re.match(r"\s*(?:\[|.*?,\s*\[)", tail, re.S)
    if m and "[" in m.group(0):
        return tail, call_end
    # Named argument: resolve `auto <name> = [` backwards.
    arg = re.match(r"[\w:\s,]*?\b([A-Za-z_]\w*)\s*[,)]", tail)
    if not arg:
        return None, 0
    name = arg.group(1)
    window_start = max(0, call_end - 4000)
    window = stripped[window_start:call_end]
    defn = None
    for m in re.finditer(r"\bauto\s+" + re.escape(name) + r"\s*=\s*\[", window):
        defn = m
    if defn is None:
        return None, 0
    start = window_start + defn.start()
    return stripped[start:call_end], start


def rule_workspace_ref_capture(path, stripped, lines):
    if "support/thread_pool" in path:
        return []  # the pool's own machinery
    found = []
    for call in POOL_CALL_RE.finditer(stripped):
        snippet, offset = _lambda_for_call(stripped, call.end())
        if snippet is None:
            continue
        if LAMBDA_REF_CAPTURE_RE.search(snippet) and WS_TOUCH_RE.search(snippet):
            line_no = stripped.count("\n", 0, offset) + 1
            found.append(
                Finding(
                    "workspace-ref-capture",
                    path,
                    line_no,
                    enclosing_function(lines, line_no),
                    "by-reference lambda over a Workspace handed to the pool",
                )
            )
    return found


NEW_DELETE_RE = re.compile(r"(?<![=\w])\s*\b(new|delete)\b(?!\s*\()")


def rule_raw_new_delete(path, stripped, lines):
    found = []
    for m in re.finditer(r"\bnew\b|\bdelete\b(\s*\[\s*\])?", stripped):
        before = stripped[: m.start()].rstrip()
        if m.group(0).startswith("delete") and before.endswith("="):
            continue  # `= delete;` special member suppression
        line_no = stripped.count("\n", 0, m.start()) + 1
        found.append(
            Finding(
                "raw-new-delete",
                path,
                line_no,
                enclosing_function(lines, line_no),
                "raw new/delete; use make_unique/make_shared or containers",
            )
        )
    return found


TRACER_INTERNAL_RE = re.compile(r"\bTracer\s*::")


def rule_tracer_in_header(path, stripped, lines):
    if not path.endswith(".hpp") or path.endswith("support/trace.hpp"):
        return []
    return _findings_for(
        "tracer-in-header",
        TRACER_INTERNAL_RE,
        path,
        stripped,
        lines,
        "Tracer internals in a header; use the ScopedSpan/trace_* wrappers",
    )


STATUS_ERROR_RE = re.compile(r"\b(?:Status|Result\s*<[^;{}()]*?>)\s*::\s*error\s*\(")


def rule_status_error_code(path, stripped, lines):
    if path.endswith("support/status.hpp"):
        return []  # the legacy-overload forwarding shim itself
    found = []
    for m in STATUS_ERROR_RE.finditer(stripped):
        first = stripped[m.end() : m.end() + 200].lstrip()
        if re.match(r"(?:\w+\s*::\s*)*StatusCode\s*::", first):
            continue  # possibly namespace-qualified (support::StatusCode::k...)
        line_no = stripped.count("\n", 0, m.start()) + 1
        found.append(
            Finding(
                "status-error-code",
                path,
                line_no,
                enclosing_function(lines, line_no),
                "untyped Status/Result error; name a StatusCode",
            )
        )
    return found


REDUCTION_CALL_RE = re.compile(r"\b(?:submit|parallel_for|run_chunks)\s*\(")
LOCK_RE = re.compile(r"\b(?:lock_guard|unique_lock|scoped_lock)\b")
MERGE_RE = re.compile(r"\b(?:push_back|emplace_back|insert|append)\s*\(")
DET_GATE_RE = re.compile(r"determin|\bdet\b")


def _lambda_span(stripped, call_end, limit=6000):
    """Full text of the first lambda argument of a pool call: capture list
    through the matching close brace of its body (None if no lambda)."""
    region = stripped[call_end : call_end + limit]
    lb = region.find("[")
    if lb == -1:
        return None
    brace = region.find("{", lb)
    if brace == -1:
        return None
    depth = 0
    for j in range(brace, len(region)):
        if region[j] == "{":
            depth += 1
        elif region[j] == "}":
            depth -= 1
            if depth == 0:
                return region[lb : j + 1]
    return None


def rule_parallel_reduction_order(path, stripped, lines):
    if "support/thread_pool" in path:
        return []
    found = []
    for call in REDUCTION_CALL_RE.finditer(stripped):
        body = _lambda_span(stripped, call.end())
        if body is None:
            continue
        if (
            LOCK_RE.search(body)
            and MERGE_RE.search(body)
            and not DET_GATE_RE.search(body)
        ):
            line_no = stripped.count("\n", 0, call.start()) + 1
            found.append(
                Finding(
                    "parallel-reduction-order",
                    path,
                    line_no,
                    enclosing_function(lines, line_no),
                    "completion-order merge in a pool task; gate it behind "
                    "the deterministic flag or allowlist the free-running "
                    "path",
                )
            )
    return found


WORKSPACE_DECL_RE = re.compile(
    r"\b(?:part\s*::\s*)?Workspace\s+[A-Za-z_]\w*\s*[;{=(]"
)


def rule_workspace_pool_lease(path, stripped, lines):
    if "/engine/" not in path:
        return []
    return _findings_for(
        "workspace-pool-lease",
        WORKSPACE_DECL_RE,
        path,
        stripped,
        lines,
        "ad-hoc Workspace in engine code; acquire a WorkspacePool lease",
    )


RULES = [
    rule_thread_outside_pool,
    rule_result_cache_write,
    rule_workspace_ref_capture,
    rule_parallel_reduction_order,
    rule_raw_new_delete,
    rule_tracer_in_header,
    rule_status_error_code,
    rule_workspace_pool_lease,
]


# --------------------------------------------------------------------------
# Allowlist


@dataclasses.dataclass
class AllowEntry:
    rule: str
    path_sub: str
    func: str | None
    used: bool = False

    def matches(self, f: Finding) -> bool:
        if self.rule != f.rule or self.path_sub not in f.path:
            return False
        return self.func is None or self.func == f.func


def load_allowlist(path: pathlib.Path) -> list[AllowEntry]:
    entries = []
    if not path.exists():
        return entries
    for raw in path.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise SystemExit(f"{path}: bad allowlist line: {raw!r}")
        rule, target = parts
        if ":" in target:
            # First colon: paths never contain one, function names may
            # (Engine::finalize_job).
            path_sub, func = target.split(":", 1)
        else:
            path_sub, func = target, None
        entries.append(AllowEntry(rule, path_sub, func))
    return entries


# --------------------------------------------------------------------------
# Driver


def lint_text(path: str, text: str) -> list[Finding]:
    stripped = strip_comments_and_strings(text)
    lines = text.splitlines()
    found = []
    for rule in RULES:
        found.extend(rule(path, stripped, lines))
    return found


def lint_tree(root: pathlib.Path) -> int:
    allowlist = load_allowlist(root / "tools" / "invariant_allowlist.txt")
    findings = []
    for ext in ("*.hpp", "*.cpp"):
        for file in sorted((root / "src").rglob(ext)):
            rel = file.relative_to(root).as_posix()
            for f in lint_text(rel, file.read_text()):
                allowed = False
                for entry in allowlist:
                    if entry.matches(f):
                        entry.used = True
                        allowed = True
                        break
                if not allowed:
                    findings.append(f)
    for f in findings:
        print(f)
    for entry in allowlist:
        if not entry.used:
            print(
                f"note: unused allowlist entry: {entry.rule} {entry.path_sub}"
                + (f":{entry.func}" if entry.func else "")
            )
    if findings:
        print(f"check_invariants: {len(findings)} violation(s)")
        return 1
    print("check_invariants: ok")
    return 0


# --------------------------------------------------------------------------
# Self test: every rule must fire on a seeded violation and stay silent on
# the idiomatic counterpart.

SELF_TESTS = [
    # (rule, path, bad snippet, good snippet)
    (
        "thread-outside-pool",
        "src/engine/engine.cpp",
        "void f() {\n  std::thread t([] {});\n  t.detach();\n}\n",
        "void f() {\n  support::ThreadPool::global().submit([] {});\n}\n",
    ),
    (
        "result-cache-write",
        "src/engine/engine.cpp",
        "void Engine::serve_warm() {\n  cache_.insert(key, snapshot);\n}\n",
        "void Engine::serve_warm() {\n  auto hit = cache_.lookup(key);\n}\n",
    ),
    (
        "workspace-ref-capture",
        "src/partition/initial.cpp",
        "void f(Workspace& ws) {\n  pool.submit([&] { ws.fm.log.clear(); });\n}\n",
        "void f(Workspace& ws) {\n"
        "  auto run = [&](std::size_t r) { results[r] = grow(r); };\n"
        "  parallel_for(0, n, run);\n  ws.fm.log.clear();\n}\n",
    ),
    (
        "parallel-reduction-order",
        "src/partition/parallel.cpp",
        "void f() {\n"
        "  run_chunks(pool, chunks, [out, mu](const Chunk& ch) {\n"
        "    std::lock_guard<std::mutex> lock(*mu);\n"
        "    out->insert(out->end(), local.begin(), local.end());\n"
        "  });\n}\n",
        "void f() {\n"
        "  run_chunks(pool, chunks, [out, mu, det](const Chunk& ch) {\n"
        "    if (!det) {\n"
        "      std::lock_guard<std::mutex> lock(*mu);\n"
        "      out->insert(out->end(), local.begin(), local.end());\n"
        "    }\n  });\n}\n",
    ),
    (
        "raw-new-delete",
        "src/support/metrics.cpp",
        "void f() {\n  auto* p = new Counter();\n  delete p;\n}\n",
        "struct T {\n  T(const T&) = delete;\n"
        "  std::unique_ptr<int> p = std::make_unique<int>(3);  // new-free\n}\n",
    ),
    (
        "tracer-in-header",
        "src/partition/phase_profile.hpp",
        "inline void f() { Tracer::global().record(ev); }\n",
        "inline void f() { support::ScopedSpan span(\"cat\", \"name\"); }\n",
    ),
    (
        "status-error-code",
        "src/graph/io.cpp",
        'Status f() {\n  return Status::error("bad header");\n}\n',
        "Status f() {\n"
        "  return Status::error(StatusCode::kInvalidArgument, reason);\n}\n",
    ),
    (
        "workspace-pool-lease",
        "src/engine/engine.cpp",
        "void Engine::run_warm_task() {\n"
        "  part::Workspace scratch;\n  req.workspace = &scratch;\n}\n",
        "void Engine::run_warm_task() {\n"
        "  part::WorkspacePool::Lease lease = warm_pool_.acquire();\n"
        "  req.workspace = lease.get();\n}\n",
    ),
]


def self_test() -> int:
    failures = 0
    for rule, path, bad, good in SELF_TESTS:
        fired = [f for f in lint_text(path, bad) if f.rule == rule]
        quiet = [f for f in lint_text(path, good) if f.rule == rule]
        if not fired:
            print(f"self-test FAIL: {rule} did not fire on the seeded violation")
            failures += 1
        if quiet:
            print(f"self-test FAIL: {rule} misfired on idiomatic code: {quiet[0]}")
            failures += 1
    # The comment/string stripper must mask lookalikes.
    masked = lint_text(
        "src/engine/x.cpp",
        '// std::thread in a comment\nconst char* s = "new delete";\n',
    )
    if masked:
        print(f"self-test FAIL: stripper leaked a masked token: {masked[0]}")
        failures += 1
    if failures:
        return 1
    print(f"check_invariants --self-test: ok ({len(SELF_TESTS)} rules)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="repository root (default: this script's parent's parent)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the embedded rule tests instead of linting the tree",
    )
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    return lint_tree(args.root)


if __name__ == "__main__":
    sys.exit(main())
