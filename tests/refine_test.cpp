#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/initial.hpp"
#include "partition/refine.hpp"

namespace ppnpart::part {
namespace {

// ------------------------------------------------------- constrained FM ---

class FmProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FmProperty, NeverWorsensGoodness) {
  support::Rng rng(GetParam());
  const Graph g = graph::erdos_renyi_gnm(60, 220, rng, {1, 20}, {1, 10});
  const PartId k = 4;
  Partition p = random_balanced_partition(g, k, rng);
  Constraints c;
  c.rmax = g.total_node_weight() / k + 30;
  c.bmax = 60;
  const Goodness before = compute_goodness(g, p, c);
  support::Rng frng(GetParam() * 3);
  constrained_fm_refine(g, p, c, FmOptions{}, frng);
  const Goodness after = compute_goodness(g, p, c);
  EXPECT_FALSE(before < after) << "FM worsened the goodness";
  EXPECT_TRUE(p.complete());
}

TEST_P(FmProperty, ImprovesRandomPartitionCut) {
  support::Rng rng(GetParam() + 100);
  const Graph g = graph::ring_of_cliques(6, 5, 10, 1);
  Partition p = random_balanced_partition(g, 3, rng);
  const Goodness before = compute_goodness(g, p, Constraints{});
  support::Rng frng(GetParam() * 7);
  constrained_fm_refine(g, p, Constraints{}, FmOptions{}, frng);
  const Goodness after = compute_goodness(g, p, Constraints{});
  // Random 3-way of a 6-clique ring is nowhere near optimal; FM must help.
  EXPECT_LT(after.cut, before.cut);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FmProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(ConstrainedFm, RepairsResourceViolation) {
  // Two heavy nodes stacked in one part; Rmax forces a spread.
  graph::GraphBuilder b(4);
  b.set_node_weight(0, 50);
  b.set_node_weight(1, 50);
  b.set_node_weight(2, 10);
  b.set_node_weight(3, 10);
  b.add_edge(0, 1, 1);
  b.add_edge(2, 3, 1);
  b.add_edge(0, 2, 1);
  b.add_edge(1, 3, 1);
  const Graph g = b.build();
  Partition p(4, 2);
  p.set(0, 0);
  p.set(1, 0);  // load 100
  p.set(2, 1);
  p.set(3, 1);  // load 20
  Constraints c;
  c.rmax = 70;
  support::Rng rng(5);
  EXPECT_TRUE(constrained_fm_refine(g, p, c, FmOptions{}, rng));
  const Goodness after = compute_goodness(g, p, c);
  EXPECT_EQ(after.resource_excess, 0);
}

TEST(ConstrainedFm, RepairsBandwidthViolation) {
  // All cross traffic concentrated between parts 0 and 1; moving one node
  // to part 2 spreads it.
  graph::GraphBuilder b(6);
  b.add_edge(0, 3, 10);
  b.add_edge(1, 4, 10);
  b.add_edge(2, 5, 10);
  b.add_edge(0, 1, 1);
  b.add_edge(3, 4, 1);
  const Graph g = b.build();
  Partition p(6, 3);
  p.set(0, 0);
  p.set(1, 0);
  p.set(2, 0);
  p.set(3, 1);
  p.set(4, 1);
  p.set(5, 2);
  Constraints c;
  c.bmax = 15;  // pair (0,1) carries 20
  EXPECT_GT(compute_goodness(g, p, c).bandwidth_excess, 0);
  support::Rng rng(6);
  constrained_fm_refine(g, p, c, FmOptions{}, rng);
  EXPECT_EQ(compute_goodness(g, p, c).bandwidth_excess, 0);
}

TEST(ConstrainedFm, FindsObviousCutImprovement) {
  // Two triangles joined by a light edge, split across the triangles.
  graph::GraphBuilder b(6);
  for (NodeId u = 0; u < 3; ++u) {
    for (NodeId v = u + 1; v < 3; ++v) b.add_edge(u, v, 10);
  }
  for (NodeId u = 3; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) b.add_edge(u, v, 10);
  }
  b.add_edge(2, 3, 1);
  const Graph g = b.build();
  Partition p(6, 2);  // deliberately bad: mixes the triangles
  p.set(0, 0);
  p.set(1, 1);
  p.set(2, 0);
  p.set(3, 1);
  p.set(4, 0);
  p.set(5, 1);
  support::Rng rng(7);
  constrained_fm_refine(g, p, Constraints{}, FmOptions{}, rng);
  EXPECT_EQ(compute_goodness(g, p, Constraints{}).cut, 1);
}

// ------------------------------------------------------- greedy refine ---

TEST(GreedyCutRefine, RespectsLoadCap) {
  support::Rng rng(8);
  const Graph g = graph::erdos_renyi_gnm(40, 160, rng, {1, 10}, {1, 10});
  Partition p = random_balanced_partition(g, 4, rng);
  const Weight cap = g.total_node_weight() / 4 + g.max_node_weight();
  const Weight before = compute_metrics(g, p).total_cut;
  support::Rng grng(9);
  greedy_cut_refine(g, p, cap, GreedyRefineOptions{}, grng);
  const PartitionMetrics after = compute_metrics(g, p);
  EXPECT_LE(after.total_cut, before);
  EXPECT_LE(after.max_load, cap);
}

TEST(GreedyCutRefine, NoMovesWhenCapForbids) {
  // Cap equal to current max load: only moves into lighter parts allowed.
  graph::GraphBuilder b(2);
  b.set_node_weight(0, 10);
  b.set_node_weight(1, 10);
  b.add_edge(0, 1, 5);
  const Graph g = b.build();
  Partition p(2, 2);
  p.set(0, 0);
  p.set(1, 1);
  support::Rng rng(10);
  greedy_cut_refine(g, p, 10, GreedyRefineOptions{}, rng);
  // Merging would reduce the cut but blow the cap; must stay split.
  EXPECT_EQ(compute_metrics(g, p).max_load, 10);
}

// --------------------------------------------------------- bisection FM ---

TEST(BisectionFm, BalancesTwoCliques) {
  const Graph g = graph::ring_of_cliques(2, 6, 10, 1);
  Partition p(g.num_nodes(), 2);
  // Terrible start: alternate nodes.
  for (NodeId u = 0; u < g.num_nodes(); ++u) p.set(u, u % 2);
  const Weight half = g.total_node_weight() / 2;
  support::Rng rng(11);
  bisection_fm_refine(g, p, half, half, 10, rng);
  const PartitionMetrics m = compute_metrics(g, p);
  EXPECT_LE(m.max_load, half);
  // The clean cut separates the cliques (ring has 2 bridges).
  EXPECT_LE(m.total_cut, 2);
}

TEST(BisectionFm, RequiresK2) {
  const Graph g = graph::ring_of_cliques(2, 3);
  Partition p(g.num_nodes(), 3);
  for (NodeId u = 0; u < g.num_nodes(); ++u) p.set(u, 0);
  support::Rng rng(12);
  EXPECT_THROW(bisection_fm_refine(g, p, 10, 10, 4, rng),
               std::invalid_argument);
}

TEST(BisectionFm, ReducesOverweightFirst) {
  graph::GraphBuilder b(4);
  b.set_node_weight(0, 40);
  b.set_node_weight(1, 40);
  b.set_node_weight(2, 10);
  b.set_node_weight(3, 10);
  b.add_edge(0, 1, 100);  // expensive to separate
  b.add_edge(2, 3, 1);
  b.add_edge(0, 2, 1);
  const Graph g = b.build();
  Partition p(4, 2);
  p.set(0, 0);
  p.set(1, 0);  // 80 > cap
  p.set(2, 1);
  p.set(3, 1);
  support::Rng rng(13);
  bisection_fm_refine(g, p, 60, 60, 10, rng);
  const PartitionMetrics m = compute_metrics(g, p);
  EXPECT_LE(m.max_load, 60) << "overweight must dominate the heavy edge";
}

// ---------------------------------------------------------- swap refine ---

TEST(SwapRefine, FixesTightResourceDeadlock) {
  // Equal-weight nodes, parts exactly full (Rmax = 30): any single move
  // overloads a part by 15, so only the swap neighbourhood can reach the
  // cut-2 optimum while staying feasible.
  graph::GraphBuilder b(4);
  for (NodeId u = 0; u < 4; ++u) b.set_node_weight(u, 15);
  b.add_edge(0, 2, 10);  // wants to merge 0 with 2
  b.add_edge(1, 3, 10);  // wants to merge 1 with 3
  b.add_edge(0, 1, 1);
  b.add_edge(2, 3, 1);
  const Graph g = b.build();
  Partition p(4, 2);
  p.set(0, 0);
  p.set(1, 0);  // 30 (full)
  p.set(2, 1);
  p.set(3, 1);  // 30 (full)
  Constraints c;
  c.rmax = 30;
  // Cut is 20; the swap 1<->2 gives cut 2 while keeping loads at 30.
  support::Rng rng(14);
  EXPECT_TRUE(swap_refine(g, p, c, SwapRefineOptions{}, rng));
  const Goodness after = compute_goodness(g, p, c);
  EXPECT_EQ(after.resource_excess, 0);
  EXPECT_EQ(after.cut, 2);
}

TEST(SwapRefine, SkipsLargeGraphs) {
  support::Rng rng(15);
  const Graph g = graph::erdos_renyi_gnm(300, 600, rng);
  Partition p = random_balanced_partition(g, 2, rng);
  SwapRefineOptions options;
  options.max_nodes = 100;
  EXPECT_FALSE(swap_refine(g, p, Constraints{}, options, rng));
}

TEST(SwapRefine, NeverWorsens) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    support::Rng rng(seed);
    const Graph g = graph::erdos_renyi_gnm(24, 80, rng, {1, 15}, {1, 9});
    Partition p = random_balanced_partition(g, 3, rng);
    Constraints c;
    c.rmax = g.total_node_weight() / 3 + 10;
    c.bmax = 30;
    const Goodness before = compute_goodness(g, p, c);
    swap_refine(g, p, c, SwapRefineOptions{}, rng);
    const Goodness after = compute_goodness(g, p, c);
    EXPECT_FALSE(before < after) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ppnpart::part
