// Quickstart: derive a process network from an affine kernel, partition it
// for a 4-FPGA board under resource + bandwidth constraints with GP, and
// print the mapping report.
//
//   ./quickstart [--k 4] [--rmax 900] [--bmax 40] [--workload sobel]

#include <cstdio>

#include "mapping/mapper.hpp"
#include "partition/gp.hpp"
#include "ppn/workloads.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace ppnpart;

  support::ArgParser args("ppnpart quickstart");
  args.add_int("k", 4, "number of FPGAs");
  args.add_int("rmax", 900, "per-FPGA resource budget");
  args.add_int("bmax", 40, "per-link bandwidth budget");
  args.add_string("workload", "sobel", "workload name (see ppn::workload_names)");
  if (auto status = args.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n", status.message().c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.help_text().c_str());
    return 0;
  }

  // 1. Build the application as a process network.
  ppn::WorkloadScale scale;
  scale.size = 48;
  const ppn::ProcessNetwork network =
      ppn::make_workload(args.get_string("workload"), scale);
  std::printf("workload '%s': %u processes, %zu channels, %lld resources\n",
              network.name().c_str(), network.num_processes(),
              network.num_channels(),
              static_cast<long long>(network.total_resources()));

  // 2. Partition with GP under the platform constraints.
  const graph::Graph g = ppn::to_graph(network);
  part::PartitionRequest request;
  request.k = static_cast<part::PartId>(args.get_int("k"));
  request.constraints.rmax = args.get_int("rmax");
  request.constraints.bmax = args.get_int("bmax");
  request.seed = 42;

  part::GpPartitioner gp;
  const part::PartitionResult result = gp.run(g, request);
  std::printf("GP: %s (%.3fs)\n",
              part::describe(result.metrics, request.constraints).c_str(),
              result.seconds);
  if (!result.feasible) {
    std::printf(
        "no feasible partition found — relax Rmax/Bmax, add FPGAs, or give "
        "GP more cycles\n");
    return 2;
  }

  // 3. Map onto an all-to-all multi-FPGA platform and validate.
  const mapping::Platform platform = mapping::Platform::all_to_all(
      static_cast<std::uint32_t>(request.k), request.constraints.rmax,
      request.constraints.bmax);
  const mapping::Mapping mapping =
      mapping::map_network(g, result.partition, platform);
  const mapping::MappingReport report =
      mapping::validate_mapping(g, mapping, platform);
  std::printf("%s\n", report.summary().c_str());
  for (std::uint32_t d = 0; d < platform.num_devices(); ++d) {
    std::printf("  %s: load %lld / %lld\n", platform.device(d).name.c_str(),
                static_cast<long long>(report.device_loads[d]),
                static_cast<long long>(platform.device(d).resources));
  }
  return report.feasible ? 0 : 2;
}
