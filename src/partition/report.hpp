#pragma once
// Human-readable mapping reports: what a designer needs to see after a
// partitioning run — per-FPGA occupancy against its budget, the bandwidth
// hot pairs, and where the boundary sits. The CLI's default output and the
// examples print these.

#include <iosfwd>
#include <string>
#include <vector>

#include "partition/partition.hpp"

namespace ppnpart::part {

struct PartSummary {
  PartId part = 0;
  std::uint32_t nodes = 0;
  Weight load = 0;
  Weight budget = Constraints::kUnlimited;
  double occupancy = 0;       // load / budget (0 when unlimited)
  Weight boundary_weight = 0; // summed weight of edges leaving the part
};

struct PairSummary {
  PartId a = 0, b = 0;
  Weight cut = 0;
  Weight budget = Constraints::kUnlimited;
  double occupancy = 0;  // cut / budget (0 when unlimited)
};

struct Report {
  PartitionMetrics metrics;
  Violation violation;
  bool feasible = false;
  std::vector<PartSummary> parts;       // by part id
  std::vector<PairSummary> hot_pairs;   // nonzero pairs, heaviest first
  std::uint32_t boundary_nodes = 0;     // nodes with a cross-part edge

  /// Multi-line fixed-width table (ends with a newline).
  std::string to_string() const;
};

/// Full analysis of a complete partition under `c`.
Report analyze(const Graph& g, const Partition& p, const Constraints& c);

std::ostream& operator<<(std::ostream& out, const Report& report);

}  // namespace ppnpart::part
