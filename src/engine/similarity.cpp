#include "engine/similarity.hpp"

namespace ppnpart::engine {

std::optional<SimilarityIndex::Match> SimilarityIndex::best_match(
    const support::GraphSketch& sketch, std::uint64_t compat_fp,
    double min_similarity) {
  std::lock_guard<std::mutex> lock(mutex_);
  return best_match_locked(sketch, compat_fp, min_similarity);
}

std::optional<SimilarityIndex::Match> SimilarityIndex::best_match_locked(
    const support::GraphSketch& sketch, std::uint64_t compat_fp,
    double min_similarity) {
  auto best = entries_.end();
  double best_sim = 0;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->compat_fp != compat_fp) continue;
    const double sim = support::sketch_similarity(sketch, it->sketch);
    // Strict >: ties keep the earlier (more recently used) entry, so equal
    // candidates resolve deterministically toward recency.
    if (sim >= min_similarity && sim > best_sim) {
      best = it;
      best_sim = sim;
    }
  }
  if (best == entries_.end()) return std::nullopt;
  entries_.splice(entries_.begin(), entries_, best);  // LRU touch
  return Match{*best, best_sim};
}

SimilarityIndex::ProbeResult SimilarityIndex::probe_or_park(
    const support::GraphSketch& sketch, std::uint64_t compat_fp,
    double min_similarity, std::uint64_t leader_job, bool may_lead,
    std::shared_ptr<void> follower) {
  if (capacity_ == 0) return ProbeResult{};
  std::lock_guard<std::mutex> lock(mutex_);
  // Indexed answers beat pending ones: a hit warm-starts right now.
  if (auto match = best_match_locked(sketch, compat_fp, min_similarity))
    return ProbeResult{ProbeRole::kMatch, std::move(match)};
  // No entry yet — is a sketch-similar leader already computing one? Pick
  // the most similar cohort (ties toward the earliest-registered leader, so
  // the choice is deterministic under a fixed submission order).
  PendingLeader* cohort = nullptr;
  double best_sim = 0;
  for (PendingLeader& p : pending_) {
    if (p.compat_fp != compat_fp) continue;
    const double sim = support::sketch_similarity(sketch, p.sketch);
    if (sim >= min_similarity && sim > best_sim) {
      cohort = &p;
      best_sim = sim;
    }
  }
  if (cohort != nullptr) {
    cohort->followers.push_back(std::move(follower));
    return ProbeResult{ProbeRole::kParked, std::nullopt};
  }
  if (!may_lead) return ProbeResult{};
  pending_.push_back(PendingLeader{sketch, compat_fp, leader_job, {}});
  return ProbeResult{ProbeRole::kLeader, std::nullopt};
}

std::vector<std::shared_ptr<void>> SimilarityIndex::resolve_pending(
    std::uint64_t compat_fp, std::uint64_t leader_job) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->compat_fp != compat_fp || it->leader_job != leader_job) continue;
    std::vector<std::shared_ptr<void>> followers = std::move(it->followers);
    pending_.erase(it);
    return followers;
  }
  return {};
}

std::size_t SimilarityIndex::pending_leaders() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

void SimilarityIndex::insert(Entry entry) {
  if (capacity_ == 0) return;
  if (!entry.partition.complete()) return;  // never index a non-answer
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->graph_fp == entry.graph_fp && it->compat_fp == entry.compat_fp) {
      *it = std::move(entry);
      entries_.splice(entries_.begin(), entries_, it);
      return;
    }
  }
  entries_.push_front(std::move(entry));
  ++insertions_;
  if (entries_.size() > capacity_) {
    entries_.pop_back();
    ++evictions_;
  }
}

std::size_t SimilarityIndex::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void SimilarityIndex::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

std::uint64_t SimilarityIndex::insertions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return insertions_;
}

std::uint64_t SimilarityIndex::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

SimilarityIndex::Counters SimilarityIndex::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Counters{insertions_, evictions_};
}

}  // namespace ppnpart::engine
