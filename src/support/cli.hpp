#pragma once
// Tiny declarative command-line parser used by the bench harnesses and
// examples. Supports `--name value`, `--name=value` and boolean `--flag`.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace ppnpart::support {

class ArgParser {
 public:
  explicit ArgParser(std::string program_description = "");

  ArgParser& add_flag(const std::string& name, const std::string& help);
  ArgParser& add_int(const std::string& name, std::int64_t default_value,
                     const std::string& help);
  ArgParser& add_double(const std::string& name, double default_value,
                        const std::string& help);
  ArgParser& add_string(const std::string& name,
                        const std::string& default_value,
                        const std::string& help);

  /// Parses argv; unknown options or missing values produce an error Status.
  /// `--help` sets help_requested() and returns OK.
  Status parse(int argc, const char* const* argv);

  bool flag(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

  /// Non-option positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  bool help_requested() const { return help_requested_; }
  std::string help_text() const;

 private:
  enum class Kind { kFlag, kInt, kDouble, kString };
  struct Option {
    Kind kind;
    std::string help;
    bool flag_value = false;
    std::int64_t int_value = 0;
    double double_value = 0;
    std::string string_value;
  };

  const Option* find(const std::string& name, Kind kind) const;

  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
  std::string program_name_;
};

}  // namespace ppnpart::support
