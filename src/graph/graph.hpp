#pragma once
// Immutable undirected weighted graph in compressed-sparse-row form.
//
// This is the substrate every partitioner in the library operates on: node
// weights model per-process FPGA resource demand (R_p in the paper), edge
// weights model sustained FIFO bandwidth between processes. Both are kept as
// 64-bit integers — the polyhedral channel-volume computation produces exact
// integer token counts, and integer arithmetic keeps FM gain updates exact.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ppnpart::graph {

using NodeId = std::uint32_t;
using Weight = std::int64_t;

constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

class Graph {
 public:
  Graph() = default;

  /// Constructs from CSR arrays. Each undirected edge must appear in both
  /// endpoints' adjacency lists with equal weight; `validate()` checks this.
  Graph(std::vector<std::uint64_t> xadj, std::vector<NodeId> adj,
        std::vector<Weight> edge_weights, std::vector<Weight> node_weights);

  NodeId num_nodes() const { return static_cast<NodeId>(vwgt_.size()); }
  /// Number of undirected edges (each stored twice internally).
  std::uint64_t num_edges() const { return adj_.size() / 2; }
  bool empty() const { return vwgt_.empty(); }

  std::span<const NodeId> neighbors(NodeId u) const {
    return {adj_.data() + xadj_[u], adj_.data() + xadj_[u + 1]};
  }
  std::span<const Weight> edge_weights(NodeId u) const {
    return {ewgt_.data() + xadj_[u], ewgt_.data() + xadj_[u + 1]};
  }

  std::uint32_t degree(NodeId u) const {
    return static_cast<std::uint32_t>(xadj_[u + 1] - xadj_[u]);
  }

  Weight node_weight(NodeId u) const { return vwgt_[u]; }
  /// Sum of weights of edges incident to u.
  Weight incident_weight(NodeId u) const;

  Weight total_node_weight() const { return total_node_weight_; }
  /// Sum over undirected edges of their weight.
  Weight total_edge_weight() const { return total_edge_weight_; }

  Weight max_node_weight() const;

  /// Weight of edge (u, v), or 0 if absent. O(degree(u)).
  Weight edge_weight_between(NodeId u, NodeId v) const;
  bool has_edge(NodeId u, NodeId v) const {
    return edge_weight_between(u, v) != 0;
  }

  const std::vector<std::uint64_t>& xadj() const { return xadj_; }
  const std::vector<NodeId>& adj() const { return adj_; }
  const std::vector<Weight>& raw_edge_weights() const { return ewgt_; }
  const std::vector<Weight>& node_weights() const { return vwgt_; }

  /// Checks CSR invariants: sorted adjacency, symmetric edges with symmetric
  /// weights, no self loops, positive weights. Returns a description of the
  /// first violation, or empty if consistent.
  std::string validate() const;

 private:
  std::vector<std::uint64_t> xadj_;
  std::vector<NodeId> adj_;
  std::vector<Weight> ewgt_;
  std::vector<Weight> vwgt_;
  Weight total_node_weight_ = 0;
  Weight total_edge_weight_ = 0;
};

/// Accumulating edge-list builder. Duplicate edges (in either orientation)
/// are merged by summing weights; self loops are dropped (they never cross a
/// partition boundary, so they cannot affect any cut). Node weights default
/// to 1.
class GraphBuilder {
 public:
  GraphBuilder() = default;
  explicit GraphBuilder(NodeId num_nodes);

  /// Adds nodes so that `count` exist; returns first new id.
  NodeId add_nodes(NodeId count);
  NodeId add_node(Weight weight = 1);

  void set_node_weight(NodeId u, Weight w);

  /// Adds (u, v) with weight w; u and v must already exist, w must be > 0.
  void add_edge(NodeId u, NodeId v, Weight w = 1);

  NodeId num_nodes() const { return static_cast<NodeId>(vwgt_.size()); }

  /// Builds the CSR graph. The builder may be reused afterwards.
  Graph build() const;

 private:
  struct RawEdge {
    NodeId u, v;
    Weight w;
  };
  std::vector<RawEdge> edges_;
  std::vector<Weight> vwgt_;
};

}  // namespace ppnpart::graph
