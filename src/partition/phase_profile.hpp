#pragma once
// Per-phase wall-clock accounting for the multilevel inner loop.
//
// A PhaseProfile splits a partitioner run into the paper's three phases —
// coarsen, initial partitioning, refine — and accumulates microseconds and
// call counts per phase. It is threaded through PartitionRequest::phases
// (transient, excluded from fingerprints, like `workspace`) and copied into
// Workspace::phases for the run so shared helpers (coarsen(), the per-level
// refine loops) can charge their level without signature churn.
//
// PhaseScope is the one hook call sites use: it charges the enclosing
// profile AND emits a trace span (cat = algorithm name, name = phase,
// args = level/nodes) in a single RAII object. With no profile attached and
// tracing disabled it costs one relaxed atomic load and two null checks.
//
// Accounting rule: phases are charged at ONE layer only — per level inside
// coarsen()/the refine loops, once per run around initial partitioning —
// so entries never double-count nested work. Trace spans may nest freely.
//
// Threading: a PhaseProfile belongs to one run at a time, like Workspace —
// plain counters, deliberately unsynchronized. Concurrent portfolio members
// must use separate profiles (or none); the engine relies on spans/metrics
// instead.

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "support/trace.hpp"

namespace ppnpart::part {

struct PhaseProfile {
  enum Phase : std::uint8_t { kCoarsen = 0, kInitial = 1, kRefine = 2 };
  static constexpr std::size_t kNumPhases = 3;

  struct Entry {
    std::uint64_t time_us = 0;
    std::uint64_t calls = 0;
  };

  Entry entries[kNumPhases];
  /// Deepest hierarchy level charged so far (0 = finest).
  std::uint32_t max_level = 0;

  static const char* phase_name(Phase p) {
    switch (p) {
      case kCoarsen: return "coarsen";
      case kInitial: return "initial";
      case kRefine: return "refine";
    }
    return "?";
  }

  void add(Phase p, std::uint64_t us) {
    entries[p].time_us += us;
    ++entries[p].calls;
  }
  void note_level(std::int64_t level) {
    if (level > 0 && static_cast<std::uint32_t>(level) > max_level)
      max_level = static_cast<std::uint32_t>(level);
  }
  /// Record a hierarchy depth directly. The n-level partitioner charges its
  /// whole coarsening/uncoarsening under level -1/0 scopes (one scope spans
  /// the entire contraction sequence), which note_level ignores — so it
  /// reports its depth explicitly: the contraction-sequence length, each
  /// contraction being one level of the n-level hierarchy.
  void note_depth(std::uint32_t depth) {
    if (depth > max_level) max_level = depth;
  }

  std::uint64_t total_us() const {
    std::uint64_t total = 0;
    for (const Entry& e : entries) total += e.time_us;
    return total;
  }
  /// This phase's fraction of the accounted time (0 when nothing charged).
  double share(Phase p) const {
    const std::uint64_t total = total_us();
    return total == 0 ? 0.0
                      : static_cast<double>(entries[p].time_us) /
                            static_cast<double>(total);
  }

  void merge(const PhaseProfile& other) {
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      entries[i].time_us += other.entries[i].time_us;
      entries[i].calls += other.entries[i].calls;
    }
    if (other.max_level > max_level) max_level = other.max_level;
  }
  void reset() { *this = PhaseProfile(); }
};

/// RAII phase hook: charges `profile` (when non-null) for the scope's wall
/// clock and emits a trace span cat/phase-name with level/nodes args (when
/// tracing is enabled). `level`/`nodes` < 0 = unknown, omitted.
class PhaseScope {
 public:
  PhaseScope(PhaseProfile* profile, PhaseProfile::Phase phase, const char* cat,
             std::int64_t level = -1, std::int64_t nodes = -1)
      : profile_(profile),
        phase_(phase),
        span_(cat != nullptr ? cat : "multilevel",
              PhaseProfile::phase_name(phase)) {
    if (level >= 0) span_.arg("level", level);
    if (nodes >= 0) span_.arg("nodes", nodes);
    if (profile_ != nullptr) {
      profile_->note_level(level);
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~PhaseScope() {
    if (profile_ == nullptr) return;
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    profile_->add(phase_, static_cast<std::uint64_t>(us));
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  /// Extra span arg (e.g. contraction counts known mid-scope).
  void arg(const char* key, std::int64_t value) { span_.arg(key, value); }

 private:
  PhaseProfile* profile_;
  PhaseProfile::Phase phase_;
  support::ScopedSpan span_;
  std::chrono::steady_clock::time_point start_{};
};

/// Installs a request's phase context into a workspace for one run and
/// restores the previous context on exit (workspaces outlive runs).
/// Templated only to avoid a workspace.hpp include cycle.
template <typename WorkspaceT>
class PhaseContextScope {
 public:
  PhaseContextScope(WorkspaceT& ws, PhaseProfile* phases, const char* cat)
      : ws_(ws), prev_phases_(ws.phases), prev_cat_(ws.phase_cat) {
    ws_.phases = phases;
    ws_.phase_cat = cat;
  }
  ~PhaseContextScope() {
    ws_.phases = prev_phases_;
    ws_.phase_cat = prev_cat_;
  }
  PhaseContextScope(const PhaseContextScope&) = delete;
  PhaseContextScope& operator=(const PhaseContextScope&) = delete;

 private:
  WorkspaceT& ws_;
  PhaseProfile* prev_phases_;
  const char* prev_cat_;
};

}  // namespace ppnpart::part
