// Trace layer: ring wraparound and the lock-free recording contract, span
// nesting/ordering under the thread pool, Chrome trace_event export that
// parses back as valid JSON (via a minimal hand-written parser — no JSON
// dependency), intern_name stability, and the observe-only contract:
// enabling tracing or attaching a PhaseProfile changes no partition output.
//
// Every test that needs events recorded first checks whether tracing is
// compiled in (PPNPART_TRACE_DISABLED builds pin Tracer::enabled() to
// false) and skips cleanly when it is not — the suite passes on both tiers.

#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "partition/gp.hpp"
#include "partition/phase_profile.hpp"
#include "support/prng.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace ppnpart {
namespace {

using support::ScopedSpan;
using support::TraceEvent;
using support::Tracer;

/// True when the build records events at all; the compile-time kill switch
/// pins enabled() to false regardless of set_enabled.
bool tracing_compiled_in() {
  Tracer& t = Tracer::global();
  t.set_enabled(true);
  const bool on = t.enabled();
  t.set_enabled(false);
  return on;
}

/// RAII guard: whatever a test does, the global tracer ends disabled and
/// empty so tests cannot leak events into each other.
struct GlobalTracerGuard {
  GlobalTracerGuard() {
    Tracer::global().set_enabled(false);
    Tracer::global().clear();
  }
  ~GlobalTracerGuard() {
    Tracer::global().set_enabled(false);
    Tracer::global().clear();
  }
};

// ------------------------------------------------ minimal JSON parser ---
// Just enough of RFC 8259 to verify the Chrome export is well-formed and
// round-trips its strings: objects, arrays, strings with every escape
// (including \uXXXX for control characters), numbers, literals. Strict:
// trailing garbage, unquoted keys or dangling commas fail the parse.

struct Json {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;

  const Json* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<Json> parse() {
    std::optional<Json> v = value();
    skip_ws();
    if (!v.has_value() || pos_ != text_.size()) return std::nullopt;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<Json> value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
      case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }

  std::optional<Json> parse_object() {
    if (!consume('{')) return std::nullopt;
    Json j;
    j.kind = Json::kObject;
    if (consume('}')) return j;
    do {
      std::optional<Json> key = parse_string();
      if (!key.has_value() || !consume(':')) return std::nullopt;
      std::optional<Json> val = value();
      if (!val.has_value()) return std::nullopt;
      j.object.emplace_back(std::move(key->str), std::move(*val));
    } while (consume(','));
    if (!consume('}')) return std::nullopt;
    return j;
  }

  std::optional<Json> parse_array() {
    if (!consume('[')) return std::nullopt;
    Json j;
    j.kind = Json::kArray;
    if (consume(']')) return j;
    do {
      std::optional<Json> val = value();
      if (!val.has_value()) return std::nullopt;
      j.array.push_back(std::move(*val));
    } while (consume(','));
    if (!consume(']')) return std::nullopt;
    return j;
  }

  std::optional<Json> parse_string() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    Json j;
    j.kind = Json::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return j;
      if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;
      if (c != '\\') {
        j.str.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': j.str.push_back('"'); break;
        case '\\': j.str.push_back('\\'); break;
        case '/': j.str.push_back('/'); break;
        case 'b': j.str.push_back('\b'); break;
        case 'f': j.str.push_back('\f'); break;
        case 'n': j.str.push_back('\n'); break;
        case 'r': j.str.push_back('\r'); break;
        case 't': j.str.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return std::nullopt;
          }
          // The exporter only \u-escapes control bytes; reconstruct those
          // directly (full UTF-16 surrogate handling is not needed here).
          if (code > 0xff) return std::nullopt;
          j.str.push_back(static_cast<char>(code));
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> parse_bool() {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      Json j;
      j.kind = Json::kBool;
      j.boolean = true;
      return j;
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      Json j;
      j.kind = Json::kBool;
      return j;
    }
    return std::nullopt;
  }

  std::optional<Json> parse_null() {
    if (text_.substr(pos_, 4) != "null") return std::nullopt;
    pos_ += 4;
    return Json{};
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    Json j;
    j.kind = Json::kNumber;
    try {
      j.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (...) {
      return std::nullopt;
    }
    return j;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ------------------------------------------------------------ the ring ---

TEST(Tracer, RingWraparoundKeepsTheNewestEvents) {
  Tracer t(/*capacity=*/8);
  // record() is usable while disabled (the enabled() gate lives in the
  // public helpers), which lets this test drive the ring directly.
  for (std::uint64_t i = 0; i < 20; ++i) {
    TraceEvent ev;
    ev.cat = "ring";
    ev.name = "tick";
    ev.ts_us = i;
    ev.kind = TraceEvent::Kind::kInstant;
    t.record(ev);
  }
  EXPECT_EQ(t.recorded(), 20u);
  EXPECT_EQ(t.overwritten(), 12u);

  const std::vector<TraceEvent> events = t.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest first, and exactly the 8 newest survive the lapping.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_us, 12 + i);
  }

  t.clear();
  EXPECT_TRUE(t.snapshot().empty());
}

TEST(Tracer, ConcurrentRecordingIsSeqlockSafe) {
  // 4 writers hammer a small ring concurrently; after they join, every
  // surviving slot must hold a fully written event (never a torn mix), and
  // the lifetime counter must be exact.
  Tracer t(/*capacity=*/64);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&t, w] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        TraceEvent ev;
        ev.cat = "stress";
        ev.name = "w";
        ev.ts_us = i;
        ev.id = static_cast<std::uint64_t>(w) * kPerThread + i;
        ev.kind = TraceEvent::Kind::kInstant;
        t.record(ev);
      }
    });
  }
  for (std::thread& th : writers) th.join();

  EXPECT_EQ(t.recorded(), kThreads * kPerThread);
  const std::vector<TraceEvent> events = t.snapshot();
  EXPECT_LE(events.size(), t.capacity());
  for (const TraceEvent& ev : events) {
    // A torn slot would show a mismatched cat/name pair or an id outside
    // the written range.
    EXPECT_STREQ(ev.cat, "stress");
    EXPECT_STREQ(ev.name, "w");
    EXPECT_LT(ev.id, kThreads * kPerThread);
  }
}

TEST(Tracer, ScopedSpanLatchesTheEnableDecision) {
  GlobalTracerGuard guard;
  if (!tracing_compiled_in()) GTEST_SKIP() << "tracing compiled out";
  Tracer& t = Tracer::global();

  {
    // Disabled at construction: enabling mid-span must not record a
    // half-built event.
    ScopedSpan span("latch", "off-at-birth");
    EXPECT_FALSE(span.active());
    t.set_enabled(true);
  }
  EXPECT_TRUE(t.snapshot().empty());

  {
    // Enabled at construction: disabling mid-span still records it whole.
    ScopedSpan span("latch", "on-at-birth");
    EXPECT_TRUE(span.active());
    t.set_enabled(false);
  }
  const std::vector<TraceEvent> events = t.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "on-at-birth");
}

// ---------------------------------------------------- pool interleaving ---

TEST(Tracer, SpanNestingAndOrderingUnderThreadPool) {
  GlobalTracerGuard guard;
  if (!tracing_compiled_in()) GTEST_SKIP() << "tracing compiled out";
  Tracer& t = Tracer::global();
  t.set_enabled(true);

  support::ThreadPool pool(4);
  constexpr int kTasks = 12;
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([i] {
      const auto id = static_cast<std::uint64_t>(i) + 1;
      support::trace_async_begin("pooltest", "task", id);
      ScopedSpan outer("pooltest", "outer", id);
      outer.arg("task", i);
      {
        ScopedSpan inner("pooltest", "inner", id);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      support::trace_async_end("pooltest", "task", id);
      // Padding before the outer span closes, so microsecond rounding can
      // never push the inner span's end past the outer's.
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }));
  }
  for (auto& f : futures) f.get();
  t.set_enabled(false);

  const std::vector<TraceEvent> events = t.snapshot();
  std::map<std::uint64_t, const TraceEvent*> outers, inners, begins, ends;
  for (const TraceEvent& ev : events) {
    if (std::string_view(ev.cat) != "pooltest") continue;
    const std::string_view name(ev.name);
    if (name == "outer") outers[ev.id] = &ev;
    if (name == "inner") inners[ev.id] = &ev;
    if (name == "task" && ev.kind == TraceEvent::Kind::kAsyncBegin)
      begins[ev.id] = &ev;
    if (name == "task" && ev.kind == TraceEvent::Kind::kAsyncEnd)
      ends[ev.id] = &ev;
  }
  ASSERT_EQ(outers.size(), static_cast<std::size_t>(kTasks));
  ASSERT_EQ(inners.size(), static_cast<std::size_t>(kTasks));
  ASSERT_EQ(begins.size(), static_cast<std::size_t>(kTasks));
  ASSERT_EQ(ends.size(), static_cast<std::size_t>(kTasks));

  for (const auto& [id, inner] : inners) {
    const TraceEvent* outer = outers.at(id);
    // A task runs on one worker: the pair shares a tid and the inner span
    // nests inside the outer one.
    EXPECT_EQ(inner->tid, outer->tid) << "task " << id;
    EXPECT_GE(inner->ts_us, outer->ts_us);
    EXPECT_LE(inner->ts_us + inner->dur_us, outer->ts_us + outer->dur_us);
    // The async pair brackets the work in timestamp order.
    EXPECT_LE(begins.at(id)->ts_us, ends.at(id)->ts_us);
  }
  // The snapshot is globally ordered oldest-first.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
}

// ------------------------------------------------------- chrome export ---

TEST(Tracer, ChromeExportParsesBackWithEscapedStrings) {
  Tracer t(/*capacity=*/16);
  const char* tricky =
      support::intern_name("name \"quoted\" back\\slash");

  TraceEvent span;
  span.cat = "export";
  span.name = tricky;
  span.ts_us = 10;
  span.dur_us = 5;
  span.tid = 3;
  span.kind = TraceEvent::Kind::kSpan;
  span.add_arg("cut", 42);
  span.add_arg("level", -3);
  span.set_detail("full-portfolio; \"why\"\n\ttab\x01guard");
  t.record(span);

  TraceEvent instant;
  instant.cat = "export";
  instant.name = "decision";
  instant.ts_us = 12;
  instant.kind = TraceEvent::Kind::kInstant;
  t.record(instant);

  TraceEvent begin = instant, end = instant;
  begin.name = end.name = "job";
  begin.id = end.id = 7;
  begin.ts_us = 13;
  begin.kind = TraceEvent::Kind::kAsyncBegin;
  end.ts_us = 20;
  end.kind = TraceEvent::Kind::kAsyncEnd;
  t.record(begin);
  t.record(end);

  std::ostringstream out;
  t.write_chrome_trace(out);
  const std::string text = out.str();

  const std::optional<Json> parsed = JsonParser(text).parse();
  ASSERT_TRUE(parsed.has_value()) << "export is not valid JSON:\n" << text;
  ASSERT_EQ(parsed->kind, Json::kObject);
  const Json* trace_events = parsed->find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_EQ(trace_events->kind, Json::kArray);
  ASSERT_EQ(trace_events->array.size(), 4u);

  int spans = 0, instants = 0, async_b = 0, async_e = 0;
  for (const Json& ev : trace_events->array) {
    ASSERT_EQ(ev.kind, Json::kObject);
    for (const char* key : {"name", "cat", "ph"}) {
      const Json* v = ev.find(key);
      ASSERT_NE(v, nullptr) << key;
      EXPECT_EQ(v->kind, Json::kString) << key;
    }
    for (const char* key : {"ts", "pid", "tid"}) {
      const Json* v = ev.find(key);
      ASSERT_NE(v, nullptr) << key;
      EXPECT_EQ(v->kind, Json::kNumber) << key;
    }
    const std::string& ph = ev.find("ph")->str;
    if (ph == "X") {
      ++spans;
      // Strings round-trip through the escaper, control bytes included.
      EXPECT_EQ(ev.find("name")->str, "name \"quoted\" back\\slash");
      ASSERT_NE(ev.find("dur"), nullptr);
      EXPECT_EQ(ev.find("dur")->number, 5.0);
      const Json* args = ev.find("args");
      ASSERT_NE(args, nullptr);
      ASSERT_EQ(args->kind, Json::kObject);
      EXPECT_EQ(args->find("cut")->number, 42.0);
      EXPECT_EQ(args->find("level")->number, -3.0);
      EXPECT_EQ(args->find("detail")->str,
                "full-portfolio; \"why\"\n\ttab\x01guard");
    } else if (ph == "i") {
      ++instants;
    } else if (ph == "b") {
      ++async_b;
      EXPECT_NE(ev.find("id"), nullptr);
    } else if (ph == "e") {
      ++async_e;
    } else {
      ADD_FAILURE() << "unexpected ph: " << ph;
    }
  }
  EXPECT_EQ(spans, 1);
  EXPECT_EQ(instants, 1);
  EXPECT_EQ(async_b, 1);
  EXPECT_EQ(async_e, 1);
}

TEST(Tracer, EmptyExportIsStillValidJson) {
  Tracer t(/*capacity=*/4);
  std::ostringstream out;
  t.write_chrome_trace(out);
  const std::optional<Json> parsed = JsonParser(out.str()).parse();
  ASSERT_TRUE(parsed.has_value());
  const Json* trace_events = parsed->find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  EXPECT_TRUE(trace_events->array.empty());
}

// ---------------------------------------------------------- intern pool ---

TEST(Tracer, InternNameDeduplicatesAndStaysStable) {
  const char* a = support::intern_name("member:gp");
  const char* b = support::intern_name(std::string("member:") + "gp");
  EXPECT_EQ(a, b);  // same pointer, not just equal content
  EXPECT_STREQ(a, "member:gp");
  const char* c = support::intern_name("member:tabu");
  EXPECT_NE(a, c);
  EXPECT_STREQ(c, "member:tabu");
}

// --------------------------------------------------- observe-only rail ---

TEST(Tracer, InstrumentationChangesNoPartitionOutput) {
  GlobalTracerGuard guard;
  graph::ProcessNetworkParams params;
  params.num_nodes = 240;
  params.layers = 12;
  support::Rng rng(17);
  const graph::Graph g = graph::random_process_network(params, rng);

  part::GpOptions options;
  options.max_cycles = 2;
  part::GpPartitioner gp(options);
  part::PartitionRequest request;
  request.k = 4;
  request.seed = 5;

  const part::PartitionResult plain = gp.run(g, request);

  Tracer::global().set_enabled(true);
  part::PhaseProfile profile;
  part::PartitionRequest instrumented = request;
  instrumented.phases = &profile;
  const part::PartitionResult traced = gp.run(g, instrumented);
  Tracer::global().set_enabled(false);

  EXPECT_EQ(plain.partition.assignments(), traced.partition.assignments());
  // And the profile genuinely accounted the run while not changing it.
  EXPECT_GT(profile.total_us() + profile.entries[0].calls, 0u);
  EXPECT_GT(profile.entries[part::PhaseProfile::kCoarsen].calls, 0u);
  EXPECT_GT(profile.entries[part::PhaseProfile::kInitial].calls, 0u);
  EXPECT_GT(profile.entries[part::PhaseProfile::kRefine].calls, 0u);
}

}  // namespace
}  // namespace ppnpart
