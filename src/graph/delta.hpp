#pragma once
// Edit scripts over immutable CSR graphs — the substrate of incremental
// repartitioning (evolving process networks).
//
// A Graph is immutable by design: every consumer (partitioners, caches,
// fingerprints) relies on CSR arrays that never change underneath it. A
// GraphDelta therefore never mutates its base; it accumulates edits and
// `apply()` materializes a NEW Graph in one O(V + E + ops log ops) pass,
// together with the node map the partition layer needs to project a
// previous solution onto the edited network.
//
// Identifier convention (the "extended id space"): ids [0, base_nodes) name
// the base graph's nodes; every add_node() call appends the next id
// (base_nodes, base_nodes + 1, ...). All ops — including edits that touch
// just-added nodes — use extended ids, so one delta can add a node and wire
// it up in the same script. apply() compacts the surviving extended ids in
// ascending order into the new graph's dense id range and reports the
// mapping (old/extended id -> new id, kInvalidNode for removed nodes).
//
// Semantics:
//   * remove_node(u) strands u's incident edges: they vanish with the node,
//     matching a process being deleted from the network along with its
//     channels. Pending edge ops on a removed endpoint are dropped too.
//   * add_edge(u, v, w) accumulates: an existing (or previously added) edge
//     gains w, a missing one is created at w — the same merge-by-sum rule
//     GraphBuilder applies to duplicate edges.
//   * set_edge_weight(u, v, w) upserts the weight to exactly w;
//     remove_edge(u, v) deletes the edge (removing a non-existent edge is a
//     no-op, so scripts compose without knowing the base's exact edge set).
//   * Ops on a pair fold in script order, so "remove then add" re-creates
//     the edge at the added weight.
//
// apply() is a pure function of (base, delta): the result is bit-identical
// to rebuilding the edited graph from scratch through GraphBuilder (same
// sorted adjacency, same merged weights), so graph digests — and every
// digest-keyed cache above — agree about what the edited network is. The
// property suite (tests/incremental_property_test.cpp) fuzzes exactly this
// equivalence.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace ppnpart::graph {

class GraphDelta {
 public:
  /// Delta against a base graph with `base_nodes` nodes.
  explicit GraphDelta(NodeId base_nodes) : base_nodes_(base_nodes) {}
  explicit GraphDelta(const Graph& base) : GraphDelta(base.num_nodes()) {}

  /// Appends a node; returns its extended id (base_nodes() + #adds so far).
  NodeId add_node(Weight weight = 1);
  /// Removes node `u` and every edge incident to it. `u` must exist and not
  /// already be removed by this delta.
  void remove_node(NodeId u);
  void set_node_weight(NodeId u, Weight w);

  /// Adds `w` (> 0) to edge (u, v), creating it at `w` when absent.
  void add_edge(NodeId u, NodeId v, Weight w = 1);
  /// Deletes edge (u, v); a no-op when the edge does not exist.
  void remove_edge(NodeId u, NodeId v);
  /// Upserts edge (u, v) to exactly `w` (> 0).
  void set_edge_weight(NodeId u, NodeId v, Weight w);

  NodeId base_nodes() const { return base_nodes_; }
  NodeId nodes_added() const { return static_cast<NodeId>(added_weights_.size()); }
  NodeId nodes_removed() const { return static_cast<NodeId>(removed_.size()); }
  std::size_t edge_ops() const { return edge_ops_.size(); }
  std::size_t num_ops() const {
    return edge_ops_.size() + removed_.size() + added_weights_.size() +
           node_weight_ops_.size();
  }
  bool empty() const { return num_ops() == 0; }

  struct Applied {
    Graph graph;
    /// Extended id (base ids, then added ids in add order) -> new dense id;
    /// kInvalidNode for nodes removed by the delta.
    std::vector<NodeId> node_map;
    /// New-graph ids whose incidence or weight the delta changed: endpoints
    /// of effective edge edits, reweighted nodes, neighbours of removed
    /// nodes and added nodes. Sorted ascending, unique. Incremental
    /// repartitioning uses its size as the fallback-threshold numerator
    /// (how much of the network the edit disturbed).
    std::vector<NodeId> touched;
  };

  /// Materializes the edited graph. `base` must have base_nodes() nodes.
  /// Edge weights stay positive by construction: add/set accept only
  /// positive weights, and remove_edge is the only way to delete an edge.
  Applied apply(const Graph& base) const;

  // ---- Introspection — script serialization (ppnpart --diff emits the
  // CLI's --delta grammar from these). Replaying node adds, reweights, edge
  // ops (script order) and removals LAST through a fresh delta reproduces
  // this delta's apply() exactly: every op then references a live node, and
  // apply strands ops on removed endpoints regardless of script position.
  enum class EdgeOpKind : std::uint8_t { kAdd, kRemove, kSet };
  struct EdgeEdit {
    NodeId u, v;  // canonical: u < v, extended ids
    Weight w;     // 0 for kRemove
    EdgeOpKind kind;
  };
  /// Weights of the nodes added by this delta, in add (extended-id) order.
  std::span<const Weight> added_node_weights() const { return added_weights_; }
  /// (node, weight) reweight ops in script order.
  std::span<const std::pair<NodeId, Weight>> node_weight_edits() const {
    return node_weight_ops_;
  }
  /// Nodes removed by this delta, in script order.
  std::span<const NodeId> removed_nodes() const { return removed_; }
  /// The edge ops in script order.
  std::vector<EdgeEdit> edge_edits() const;

 private:
  struct EdgeOp {
    NodeId u, v;  // canonical: u < v, extended ids
    Weight w;
    EdgeOpKind kind;
    std::uint32_t seq;  // script order; pair folding replays it
  };

  NodeId num_extended() const { return base_nodes_ + nodes_added(); }
  bool is_removed(NodeId u) const {
    return u < removed_flags_.size() && removed_flags_[u] != 0;
  }
  void check_live(NodeId u, const char* op) const;

  NodeId base_nodes_ = 0;
  std::vector<Weight> added_weights_;
  std::vector<std::pair<NodeId, Weight>> node_weight_ops_;  // script order
  std::vector<NodeId> removed_;                             // script order
  /// O(1) liveness probe indexed by extended id (grown lazily): per-op
  /// validation must not scan `removed_` — large scripts would go
  /// quadratic in the removal count.
  std::vector<std::uint8_t> removed_flags_;
  std::vector<EdgeOp> edge_ops_;
};

}  // namespace ppnpart::graph
