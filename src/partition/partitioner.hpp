#pragma once
// Common partitioner interface used by the benchmark harness, the portfolio
// engine and examples.
//
// Every algorithm in the library (GP, MetisLike, NLevel, KL, Spectral, Tabu,
// Annealing, Genetic, Exact, Random) answers the same request so the paper's
// comparison tables — and the engine's concurrent portfolios — can iterate
// over a heterogeneous set of partitioners. `make_partitioner` is the
// central registry mapping stable lowercase names to instances.

#include <memory>
#include <string>
#include <vector>

#include "partition/partition.hpp"
#include "support/stop_token.hpp"

namespace ppnpart::part {

class CoarseningCache;
class Workspace;
struct PhaseProfile;

struct PartitionRequest {
  PartId k = 2;
  /// GP honours these; cut-only baselines (MetisLike, Spectral, Random)
  /// ignore them, exactly like METIS in the paper's experiments.
  Constraints constraints;
  std::uint64_t seed = 1;
  /// Intra-run parallelism: worker chunks used by the parallel multilevel
  /// kernels (parallel.hpp). 1 (default) = today's serial path, untouched
  /// byte for byte; 0 = auto (thread-pool size); >= 2 routes GP/MetisLike
  /// through parallel coarsening and parallel LP refinement for large
  /// levels. Unlike `workspace`/`phases` this is an algorithm knob: the
  /// parallel path is a *different* (still deterministic) algorithm than
  /// the serial one, so results differ between threads == 1 and >= 2 — but
  /// with `deterministic` set they are identical across ALL values >= 2
  /// (and across machines), so the golden policy survives.
  std::uint32_t threads = 1;
  /// Fix the parallel reduction order (chunk-index merges, synchronous LP
  /// rounds, node-id tie-breaks): fixed-seed results become a pure function
  /// of (graph, options), bit-identical at any thread count. Default ON;
  /// free-running mode (false) may differ run to run and exists for peak
  /// throughput and for hammering the lock-free paths under TSan.
  bool deterministic = true;

  /// Optional cooperative-stop signal (non-owning; may be null). Iterative
  /// partitioners poll it at checkpoint granularity — V-cycle, temperature
  /// step, generation, tabu iteration — and return their best-so-far
  /// solution when it fires, so a stopped run still yields a complete
  /// partition. Leave null for fully deterministic, budget-free runs.
  const support::StopToken* stop = nullptr;

  /// Optional cross-run coarsening cache (non-owning; may be null). When
  /// set, the multilevel partitioners (GP, MetisLike, NLevel) build their
  /// coarsening from a canonical seed-independent stream and share the
  /// artifact through the cache, so requests on the same graph — different
  /// k, seeds and algorithms — re-run only initial partitioning and
  /// refinement. Results stay deterministic (hit and miss produce the same
  /// answer) but differ from the cache-less path, which folds the request
  /// seed into coarsening randomness. Transient like `stop`: excluded from
  /// request fingerprints.
  CoarseningCache* coarsen_cache = nullptr;

  /// Caller-supplied identity of the graph for coarsen_cache keying (e.g.
  /// the engine's memoized fingerprint); 0 = derive via graph_digest().
  /// Must change whenever the graph does — a stale key serves the wrong
  /// hierarchy.
  std::uint64_t graph_key = 0;

  /// Optional reusable scratch workspace (non-owning; may be null). When
  /// set, the multilevel partitioners thread it through their inner loop —
  /// contraction, matching, refinement — instead of creating a private one,
  /// so repeated sequential runs reach steady-state zero allocation.
  /// Ownership rules (see workspace.hpp): one workspace per run at a time,
  /// NEVER shared across threads. Transient like `stop`: excluded from
  /// request fingerprints and without effect on results.
  Workspace* workspace = nullptr;

  /// Optional per-phase profiling sink (non-owning; may be null). When set,
  /// the multilevel partitioners charge coarsen / initial / refine wall
  /// clock (and hierarchy depth) into it, accumulating across V-cycles and
  /// sequential runs. One profile per run at a time, NEVER shared across
  /// threads (plain counters, like `workspace`). Transient like `stop`:
  /// excluded from request fingerprints and without effect on results.
  PhaseProfile* phases = nullptr;

  /// True when the request carries a fired stop signal.
  bool stop_requested() const { return stop != nullptr && stop->stop_requested(); }
};

struct PartitionResult {
  Partition partition;
  PartitionMetrics metrics;
  Violation violation;
  bool feasible = false;
  double seconds = 0;
  std::string algorithm;

  /// Fills metrics/violation/feasible from the partition.
  void finalize(const Graph& g, const Constraints& c);
};

/// The lexicographic goodness of a finalized result — the single comparison
/// every consumer (engine, CLI, benches) ranks results by.
Goodness goodness_of(const PartitionResult& r);

class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual std::string name() const = 0;
  virtual PartitionResult run(const Graph& g,
                              const PartitionRequest& request) = 0;
};

/// Registry names accepted by `make_partitioner`, in presentation order.
std::vector<std::string> partitioner_names();

/// Instantiates an algorithm (with default options) by registry name:
/// gp | metislike | nlevel | kl | spectral | tabu | annealing | genetic |
/// exact | random. Returns nullptr for unknown names.
std::unique_ptr<Partitioner> make_partitioner(const std::string& name);

}  // namespace ppnpart::part
