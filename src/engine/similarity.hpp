#pragma once
// Similarity index — the engine's memory of recently served graphs, keyed
// by sketch rather than by exact fingerprint.
//
// The exact result cache answers "have I seen exactly this job?". The
// SimilarityIndex answers the softer admission question: "have I recently
// served a graph so close to this arrival that diffing into it and
// warm-starting beats a full portfolio run?". Each entry retains the served
// graph itself (shared, immutable), its content fingerprint, its
// GraphSketch, a request-compatibility digest (k + constraints, not the
// seed) and the complete partition that answered it — everything
// IncrementalPartitioner::try_repartition_diffed needs to turn a near-hit
// into a warm start.
//
// Lookup is a linear scan of at most `capacity` entries, each a kSlots-word
// sketch comparison: ~microseconds against portfolio runs that cost
// milliseconds to seconds, so no sublinear structure is warranted at these
// capacities. Matching entries are LRU-touched; insertion replaces an entry
// with the same (graph fingerprint, compatibility) identity, and evicts the
// least recently used entry past capacity.
//
// Memory: entries hold shared_ptr<const Graph>, so the index pins up to
// `capacity` graphs (plus one partition vector each). Size the capacity to
// the working set you want warm, not to the traffic rate.
//
// Thread-safe; every method takes the internal mutex. Correctness contract
// (enforced by the caller, see engine.cpp): a match is a HINT — the caller
// must re-verify via diff + bit-identical reconstruction before reusing
// anything, and must never write a similarity-served answer into the exact
// result cache.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>

#include "graph/graph.hpp"
#include "partition/partition.hpp"
#include "support/graph_sketch.hpp"

namespace ppnpart::engine {

/// Admission-pipeline knobs (EngineOptions::similarity). Defaults are
/// documented in README "Tuning the admission pipeline".
struct SimilarityOptions {
  /// Master switch, off by default: similarity admission deliberately
  /// trades a little cut quality (warm starts refine, they do not V-cycle)
  /// and cross-history reproducibility (answers depend on which graphs were
  /// served before) for a large latency win on near-identical traffic.
  /// Opt-in keeps the default engine bit-compatible with its history.
  bool enabled = false;
  /// Retained entries (graphs pinned); 0 behaves like enabled == false.
  std::size_t capacity = 32;
  /// Minimum sketch similarity to attempt a diff. 1%-edited twins sketch
  /// at ~0.95; unrelated graphs at ~0. The gap is wide — 0.5 is a
  /// round-trip-saving pre-filter, not a precision instrument.
  double min_sketch_similarity = 0.5;
};

struct SimilarityStats {
  std::uint64_t probes = 0;     // admissions that consulted the index
  std::uint64_t near_hits = 0;  // warm starts served from a sketch match
  std::uint64_t declines = 0;   // probes routed to the full path instead
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
};

class SimilarityIndex {
 public:
  explicit SimilarityIndex(std::size_t capacity) : capacity_(capacity) {}

  struct Entry {
    support::GraphSketch sketch;
    std::shared_ptr<const graph::Graph> graph;
    std::uint64_t graph_fp = 0;   // content fingerprint of `graph`
    std::uint64_t compat_fp = 0;  // request_compat_fingerprint of the answer
    part::Partition partition;    // the complete partition served for it
  };

  struct Match {
    Entry entry;  // copied out under the lock; safe to use unlocked
    double similarity = 0;
  };

  /// Best entry with matching `compat_fp` and sketch similarity >=
  /// `min_similarity` (ties broken toward recency); LRU-touches it.
  std::optional<Match> best_match(const support::GraphSketch& sketch,
                                  std::uint64_t compat_fp,
                                  double min_similarity);

  /// Inserts (or refreshes, keyed by graph_fp + compat_fp) an entry.
  /// Incomplete partitions are rejected — only servable warm starts belong
  /// in the index.
  void insert(Entry entry);

  std::size_t size() const;
  void clear();

  /// Lifetime insert/evict traffic (probe counters live in EngineStats —
  /// hits and declines are admission decisions, not index properties).
  std::uint64_t insertions() const;
  std::uint64_t evictions() const;

  /// Both lifetime counters under ONE lock acquisition, so a stats()
  /// assembled from them can never pair an old insertion count with a newer
  /// eviction count (evictions <= insertions always holds in the pair).
  struct Counters {
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };
  Counters counters() const;

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<Entry> entries_;  // front = most recently used
  std::uint64_t insertions_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace ppnpart::engine
