#include <gtest/gtest.h>

#include "graph/graph.hpp"
#include "partition/partition.hpp"

namespace ppnpart::part {
namespace {

// 4-node square with weighted nodes/edges:
//   0-1 (w5), 1-2 (w1), 2-3 (w5), 3-0 (w1); node weights 10,20,30,40.
Graph square() {
  graph::GraphBuilder b(4);
  b.set_node_weight(0, 10);
  b.set_node_weight(1, 20);
  b.set_node_weight(2, 30);
  b.set_node_weight(3, 40);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 3, 5);
  b.add_edge(3, 0, 1);
  return b.build();
}

Partition bisect01_23() {
  Partition p(4, 2);
  p.set(0, 0);
  p.set(1, 0);
  p.set(2, 1);
  p.set(3, 1);
  return p;
}

TEST(Partition, CompletenessAndMembers) {
  Partition p(3, 2);
  EXPECT_FALSE(p.complete());
  p.set(0, 0);
  p.set(1, 1);
  p.set(2, 1);
  EXPECT_TRUE(p.complete());
  EXPECT_EQ(p.members(1), (std::vector<graph::NodeId>{1, 2}));
  EXPECT_TRUE(p.all_parts_nonempty());
}

TEST(Partition, EmptyPartDetected) {
  Partition p(2, 3);
  p.set(0, 0);
  p.set(1, 1);
  EXPECT_FALSE(p.all_parts_nonempty());
}

TEST(PairwiseCutMatrix, AddAndQuery) {
  PairwiseCut c(3);
  c.add(0, 1, 5);
  c.add(1, 2, 7);
  c.add(0, 1, 2);
  EXPECT_EQ(c.at(0, 1), 7);
  EXPECT_EQ(c.at(1, 0), 7);
  EXPECT_EQ(c.at(0, 2), 0);
  EXPECT_EQ(c.max_pairwise(), 7);
  EXPECT_EQ(c.total(), 14);
}

TEST(Metrics, SquareBisection) {
  const Graph g = square();
  const PartitionMetrics m = compute_metrics(g, bisect01_23());
  EXPECT_EQ(m.total_cut, 2);  // edges 1-2 and 3-0
  EXPECT_EQ(m.loads[0], 30);
  EXPECT_EQ(m.loads[1], 70);
  EXPECT_EQ(m.max_load, 70);
  EXPECT_EQ(m.max_pairwise_cut, 2);
  EXPECT_DOUBLE_EQ(m.imbalance, 70.0 / 50.0);
}

TEST(Metrics, PairwiseTotalEqualsGlobalCut) {
  const Graph g = square();
  Partition p(4, 4);
  for (graph::NodeId u = 0; u < 4; ++u) p.set(u, static_cast<PartId>(u));
  const PartitionMetrics m = compute_metrics(g, p);
  EXPECT_EQ(m.total_cut, 12);  // every edge cut
  EXPECT_EQ(m.pairwise.total(), m.total_cut);
  EXPECT_EQ(m.pairwise.at(0, 1), 5);
  EXPECT_EQ(m.pairwise.at(1, 2), 1);
}

TEST(Metrics, RejectsIncomplete) {
  const Graph g = square();
  Partition p(4, 2);
  EXPECT_THROW(compute_metrics(g, p), std::invalid_argument);
  Partition wrong_size(3, 2);
  EXPECT_THROW(compute_metrics(g, wrong_size), std::invalid_argument);
}

TEST(Violation, ComputedAgainstConstraints) {
  const Graph g = square();
  const PartitionMetrics m = compute_metrics(g, bisect01_23());
  Constraints c;
  c.rmax = 50;
  c.bmax = 1;
  const Violation v = compute_violation(m, c);
  EXPECT_EQ(v.resource_excess, 20);   // 70 - 50
  EXPECT_EQ(v.bandwidth_excess, 1);   // 2 - 1
  EXPECT_FALSE(v.feasible());
}

TEST(Violation, UnlimitedConstraintsAlwaysFeasible) {
  const Graph g = square();
  const PartitionMetrics m = compute_metrics(g, bisect01_23());
  const Violation v = compute_violation(m, Constraints{});
  EXPECT_TRUE(v.feasible());
  EXPECT_TRUE(Constraints{}.unconstrained());
}

TEST(Goodness, LexicographicOrder) {
  const Goodness a{0, 0, 100};
  const Goodness b{0, 1, 1};
  const Goodness c{1, 0, 0};
  const Goodness d{0, 0, 99};
  EXPECT_TRUE(a < b);   // bandwidth violation dominates cut
  EXPECT_TRUE(b < c);   // resource violation dominates bandwidth
  EXPECT_TRUE(d < a);   // cut breaks ties
  EXPECT_FALSE(a < a);
  EXPECT_TRUE(a == a);
}

TEST(Goodness, ComputedFromPartition) {
  const Graph g = square();
  Constraints c;
  c.rmax = 60;
  c.bmax = 10;
  const Goodness good = compute_goodness(g, bisect01_23(), c);
  EXPECT_EQ(good.resource_excess, 10);
  EXPECT_EQ(good.bandwidth_excess, 0);
  EXPECT_EQ(good.cut, 2);
}

TEST(Describe, MentionsViolations) {
  const Graph g = square();
  const PartitionMetrics m = compute_metrics(g, bisect01_23());
  Constraints c;
  c.rmax = 50;
  c.bmax = 100;
  const std::string s = describe(m, c);
  EXPECT_NE(s.find("VIOLATED"), std::string::npos);
  c.rmax = 100;
  const std::string s2 = describe(m, c);
  EXPECT_NE(s2.find("FEASIBLE"), std::string::npos);
}

}  // namespace
}  // namespace ppnpart::part
