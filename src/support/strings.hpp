#pragma once
// Small string utilities shared across I/O, CLI and report code.

#include <string>
#include <string_view>
#include <vector>

namespace ppnpart::support {

/// Splits on `sep`; empty tokens are dropped when `keep_empty` is false.
std::vector<std::string> split(std::string_view text, char sep,
                               bool keep_empty = false);

/// Splits on any ASCII whitespace; empty tokens always dropped.
std::vector<std::string> split_ws(std::string_view text);

std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// printf-style formatting into a std::string.
std::string str_format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Parses a signed integer / double; returns false on trailing garbage.
bool parse_i64(std::string_view text, std::int64_t& out);
bool parse_f64(std::string_view text, double& out);

/// "1234567" -> "1,234,567" (for report tables).
std::string with_thousands(std::int64_t value);

}  // namespace ppnpart::support
