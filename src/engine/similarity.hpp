#pragma once
// Similarity index — the engine's memory of recently served graphs, keyed
// by sketch rather than by exact fingerprint.
//
// The exact result cache answers "have I seen exactly this job?". The
// SimilarityIndex answers the softer admission question: "have I recently
// served a graph so close to this arrival that diffing into it and
// warm-starting beats a full portfolio run?". Each entry retains the served
// graph itself (shared, immutable), its content fingerprint, its
// GraphSketch, a request-compatibility digest (k + constraints, not the
// seed) and the complete partition that answered it — everything
// IncrementalPartitioner::try_repartition_diffed needs to turn a near-hit
// into a warm start.
//
// Lookup is a linear scan of at most `capacity` entries, each a kSlots-word
// sketch comparison: ~microseconds against portfolio runs that cost
// milliseconds to seconds, so no sublinear structure is warranted at these
// capacities. Matching entries are LRU-touched; insertion replaces an entry
// with the same (graph fingerprint, compatibility) identity, and evicts the
// least recently used entry past capacity.
//
// Memory: entries hold shared_ptr<const Graph>, so the index pins up to
// `capacity` graphs (plus one partition vector each). Size the capacity to
// the working set you want warm, not to the traffic rate.
//
// Batch-aware probing: alongside the entries the index keeps a small
// pending-leader registry (keyed by compat fingerprint + sketch
// neighborhood). When a burst of near-twins arrives before any of them has
// been answered, the first probe registers as the cohort's LEADER and runs
// the full path once; the others PARK behind it and warm-start from the
// leader's answer the moment it lands in the index — N concurrent
// near-twins cost one portfolio run and N-1 warm starts instead of N races.
// probe_or_park makes the entry-vs-leader decision under one lock, so no
// arrival can slip between "no entry" and "no leader".
//
// Thread-safe; every method takes the internal mutex. Correctness contract
// (enforced by the caller, see engine.cpp): a match is a HINT — the caller
// must re-verify via diff + bit-identical reconstruction before reusing
// anything, and must never write a similarity-served answer into the exact
// result cache.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "partition/partition.hpp"
#include "support/graph_sketch.hpp"

namespace ppnpart::engine {

/// Admission-pipeline knobs (EngineOptions::similarity). Defaults are
/// documented in README "Tuning the admission pipeline".
struct SimilarityOptions {
  /// Master switch, off by default: similarity admission deliberately
  /// trades a little cut quality (warm starts refine, they do not V-cycle)
  /// and cross-history reproducibility (answers depend on which graphs were
  /// served before) for a large latency win on near-identical traffic.
  /// Opt-in keeps the default engine bit-compatible with its history.
  bool enabled = false;
  /// Retained entries (graphs pinned); 0 behaves like enabled == false.
  std::size_t capacity = 32;
  /// Minimum sketch similarity to attempt a diff. 1%-edited twins sketch
  /// at ~0.95; unrelated graphs at ~0. The gap is wide — 0.5 is a
  /// round-trip-saving pre-filter, not a precision instrument.
  double min_sketch_similarity = 0.5;
};

struct SimilarityStats {
  std::uint64_t probes = 0;     // admissions that consulted the index
  std::uint64_t near_hits = 0;  // warm starts served from a sketch match
  std::uint64_t declines = 0;   // probes routed to the full path instead
  /// Async-stage traffic. `deferred`: probes whose diff/verify/refine ran
  /// as a pool task instead of on the submitting thread. `parked`: probes
  /// that waited for a pending leader's full-path answer before resolving
  /// (batch-aware near-twin coalescing). Both are bumped at decision time;
  /// the probe itself is only counted when its verdict lands, so neither
  /// participates in the probes == near_hits + declines transaction.
  std::uint64_t deferred = 0;
  std::uint64_t parked = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
};

class SimilarityIndex {
 public:
  explicit SimilarityIndex(std::size_t capacity) : capacity_(capacity) {}

  struct Entry {
    support::GraphSketch sketch;
    std::shared_ptr<const graph::Graph> graph;
    std::uint64_t graph_fp = 0;   // content fingerprint of `graph`
    std::uint64_t compat_fp = 0;  // request_compat_fingerprint of the answer
    part::Partition partition;    // the complete partition served for it
  };

  struct Match {
    Entry entry;  // copied out under the lock; safe to use unlocked
    double similarity = 0;
  };

  /// Best entry with matching `compat_fp` and sketch similarity >=
  /// `min_similarity` (ties broken toward recency); LRU-touches it.
  std::optional<Match> best_match(const support::GraphSketch& sketch,
                                  std::uint64_t compat_fp,
                                  double min_similarity);

  /// Batch-aware probing: the outcome of one atomic probe of the index AND
  /// the pending-leader registry. A single lock acquisition rules out the
  /// TOCTOU window between "no entry yet" and "park behind the leader that
  /// is computing one".
  enum class ProbeRole : std::uint8_t {
    kMatch,   // an indexed entry matched: warm-start from `match`
    kParked,  // a sketch-similar pending leader exists; the caller's handle
              // was parked and will be returned by resolve_pending
    kLeader,  // no entry, no leader: the caller is now the pending leader
              // for this neighborhood and must resolve_pending on EVERY
              // completion path
    kMiss,    // no entry, no leader, and the caller may not lead
  };
  struct ProbeResult {
    ProbeRole role = ProbeRole::kMiss;
    std::optional<Match> match;  // set only for kMatch
  };

  /// One probe of both structures under one lock: an indexed best match
  /// wins (LRU-touched, like best_match); otherwise a pending leader with
  /// the same compat key and sketch similarity >= `min_similarity` adopts
  /// `follower` as a parked handle; otherwise the caller registers as the
  /// pending leader (when `may_lead`) or plainly misses. The registry is
  /// keyed by compat fingerprint + sketch neighborhood — at these scales a
  /// similarity scan over the few pending leaders stands in for banded LSH
  /// buckets.
  ProbeResult probe_or_park(const support::GraphSketch& sketch,
                            std::uint64_t compat_fp, double min_similarity,
                            std::uint64_t leader_job, bool may_lead,
                            std::shared_ptr<void> follower);

  /// Removes the pending entry owned by (compat_fp, leader_job) and returns
  /// its parked follower handles for the caller to resume. Call it AFTER the
  /// leader's answer was insert()ed (or when the leader failed/was shed):
  /// followers re-probe and either warm-start from the fresh entry or fall
  /// to the full path. Safe when no such entry exists (returns empty).
  std::vector<std::shared_ptr<void>> resolve_pending(
      std::uint64_t compat_fp, std::uint64_t leader_job);

  /// Pending leaders currently registered (diagnostics/tests).
  std::size_t pending_leaders() const;

  /// Inserts (or refreshes, keyed by graph_fp + compat_fp) an entry.
  /// Incomplete partitions are rejected — only servable warm starts belong
  /// in the index.
  void insert(Entry entry);

  std::size_t size() const;
  /// Drops every retained entry. Pending leaders are deliberately NOT
  /// cleared: they describe in-flight jobs whose parked followers would be
  /// stranded forever if the registry forgot them mid-flight.
  void clear();

  /// Lifetime insert/evict traffic (probe counters live in EngineStats —
  /// hits and declines are admission decisions, not index properties).
  std::uint64_t insertions() const;
  std::uint64_t evictions() const;

  /// Both lifetime counters under ONE lock acquisition, so a stats()
  /// assembled from them can never pair an old insertion count with a newer
  /// eviction count (evictions <= insertions always holds in the pair).
  struct Counters {
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };
  Counters counters() const;

 private:
  std::optional<Match> best_match_locked(const support::GraphSketch& sketch,
                                         std::uint64_t compat_fp,
                                         double min_similarity);

  /// One near-twin cohort awaiting its leader's full-path answer. Follower
  /// handles are opaque (the engine parks JobStates); they are only ever
  /// handed back to the code that parked them.
  struct PendingLeader {
    support::GraphSketch sketch;
    std::uint64_t compat_fp = 0;
    std::uint64_t leader_job = 0;
    std::vector<std::shared_ptr<void>> followers;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<Entry> entries_;  // front = most recently used
  std::vector<PendingLeader> pending_;  // few entries: linear scan
  std::uint64_t insertions_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace ppnpart::engine
