// End-to-end motivation: simulated steady-state throughput of mapped PPNs.
// A constraint-feasible GP mapping sustains (near-)single-FPGA throughput;
// a constraint-blind mapping of the same network loses throughput to link
// saturation exactly where it violates Bmax.
//
// Protocol per workload (K=4, all-to-all board): probe a descending Bmax
// grid for the tightest budget GP can still meet, then map the network
// with GP and with the METIS stand-in at that budget and simulate both.
// K=4 matters: with several FPGA pairs available, a bandwidth-aware
// partitioner can *spread* traffic; a 2-FPGA split could not (pair
// traffic is conserved across the single link).

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "mapping/mapper.hpp"
#include "ppn/workloads.hpp"
#include "sim/simulator.hpp"

namespace {

/// Streams `factor` back-to-back executions: firings and volumes scale,
/// sustained bandwidth (volume / firings) is unchanged. Without this a
/// single-shot run is pipeline-depth-limited and never actually pushes the
/// nominal bandwidth through the links, hiding Bmax violations from the
/// simulation.
ppnpart::ppn::ProcessNetwork scale_stream(
    const ppnpart::ppn::ProcessNetwork& net, std::uint64_t factor) {
  ppnpart::ppn::ProcessNetwork out(net.name());
  for (const auto& p : net.processes()) {
    auto copy = p;
    copy.firings *= factor;
    out.add_process(std::move(copy));
  }
  for (const auto& ch : net.channels()) {
    auto copy = ch;
    copy.volume *= factor;
    out.add_channel(copy);
  }
  return out;
}

}  // namespace

int main() {
  using namespace ppnpart;

  bench::print_header(
      "Simulated throughput at the tightest GP-feasible Bmax (4 FPGAs, "
      "64-block streams)",
      "workload        algorithm   feasible   max-pair-bw/Bmax   throughput "
      "  vs single-FPGA");

  const std::vector<std::string> workloads = {"fft", "split_join", "mjpeg"};

  for (const std::string& name : workloads) {
    ppn::WorkloadScale scale;
    scale.size = 24;
    scale.stages = 4;
    const ppn::ProcessNetwork network =
        scale_stream(ppn::make_workload(name, scale), 64);
    const graph::Graph g = ppn::to_graph(network);
    const graph::Weight rmax = std::max(
        (g.total_node_weight() * 2) / 5, g.max_node_weight());

    // Tightest Bmax (descending grid over fractions of the mean pair
    // traffic) that GP still meets.
    const double mean_pair =
        static_cast<double>(g.total_edge_weight()) / 6.0;  // C(4,2) pairs
    part::PartitionRequest request;
    request.k = 4;
    request.constraints.rmax = rmax;
    request.seed = 5;
    part::GpPartitioner gp;
    part::PartitionResult gp_result;
    graph::Weight bmax = 0;
    for (double factor = 2.0; factor >= 0.2; factor -= 0.1) {
      const auto candidate =
          std::max<graph::Weight>(1, static_cast<graph::Weight>(
                                         factor * mean_pair));
      if (candidate == bmax) continue;  // grid collapsed on small weights
      request.constraints.bmax = candidate;
      const part::PartitionResult r = gp.run(g, request);
      if (!r.feasible) break;
      bmax = candidate;
      gp_result = r;
    }
    if (bmax == 0) {
      std::printf("%-15s (no GP-feasible Bmax on the probe grid)\n",
                  name.c_str());
      continue;
    }
    request.constraints.bmax = bmax;

    const mapping::Platform platform =
        mapping::Platform::all_to_all(4, rmax, bmax);
    sim::SimOptions sim_options;
    sim_options.max_steps = 200'000;
    const double solo =
        sim::simulate_single_device(network, sim_options).sink_throughput;

    auto report = [&](const char* algo, const part::PartitionResult& r) {
      const mapping::Mapping m =
          mapping::map_network(g, r.partition, platform);
      const sim::SimStats stats =
          sim::simulate(network, m, platform, sim_options);
      std::printf("%-15s %-11s %-10s %10lld/%-8lld %10.4f %12.1f%%\n",
                  name.c_str(), algo, r.feasible ? "yes" : "NO",
                  static_cast<long long>(r.metrics.max_pairwise_cut),
                  static_cast<long long>(bmax), stats.sink_throughput,
                  solo > 0 ? 100.0 * stats.sink_throughput / solo : 0.0);
    };

    report("GP", gp_result);
    part::MetisLikeOptions ml_options;
    ml_options.unit_vertex_balance = true;
    part::MetisLikePartitioner metis(ml_options);
    report("MetisLike", metis.run(g, request));
  }
  return 0;
}
