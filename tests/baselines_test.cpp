// Tests for the related-work baseline partitioners the paper surveys in
// Section II: Kernighan-Lin, simulated annealing (non-greedy hill
// climbing), tabu search and the genetic algorithm. Each baseline must (a)
// produce complete partitions, (b) be deterministic given a seed, and (c)
// show its characteristic behaviour (KL improves cuts over random splits,
// tabu escapes FM-style lock-in, the GA's label alignment neutralizes part
// symmetry, ...).

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "partition/annealing.hpp"
#include "partition/genetic.hpp"
#include "partition/kl.hpp"
#include "partition/spectral.hpp"
#include "partition/tabu.hpp"
#include "ppn/paper_instances.hpp"

namespace ppnpart::part {
namespace {

using graph::Graph;

Graph test_graph(std::uint64_t seed, graph::NodeId n = 60,
                 std::uint64_t m = 180) {
  support::Rng rng(seed);
  return graph::erdos_renyi_gnm(n, m, rng, {1, 8}, {1, 12});
}

PartitionRequest basic_request(PartId k, std::uint64_t seed) {
  PartitionRequest r;
  r.k = k;
  r.seed = seed;
  return r;
}

// ---------------------------------------------------------------------------
// Kernighan-Lin
// ---------------------------------------------------------------------------

TEST(KL, ProducesCompletePartition) {
  const Graph g = test_graph(11);
  const PartitionResult r = KlPartitioner().run(g, basic_request(4, 3));
  EXPECT_TRUE(r.partition.complete());
  EXPECT_EQ(r.algorithm, "KL");
}

TEST(KL, BisectionRefineImprovesRandomSplit) {
  const Graph g = graph::ring_of_cliques(4, 8, 20, 1);
  support::Rng rng(7);
  Partition p(g.num_nodes(), 2);
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u)
    p.set(u, static_cast<PartId>(u % 2));  // deliberately terrible split
  const Weight before = compute_metrics(g, p).total_cut;
  KlOptions options;
  const Weight cap = g.total_node_weight();  // balance not binding here
  kl_bisection_refine(g, p, cap, cap, options, rng);
  const Weight after = compute_metrics(g, p).total_cut;
  EXPECT_LT(after, before);
}

TEST(KL, SwapsPreservePartSizes) {
  // Pure KL exchanges pairs, so part cardinalities are invariant under
  // kl_bisection_refine (the drawback the paper lists: "exact bi-sections
  // only").
  const Graph g = test_graph(13, 40, 120);
  support::Rng rng(5);
  Partition p(g.num_nodes(), 2);
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u)
    p.set(u, u < 25 ? 0 : 1);  // 25 / 15 intentionally uneven
  KlOptions options;
  const Weight cap = g.total_node_weight();
  kl_bisection_refine(g, p, cap, cap, options, rng);
  EXPECT_EQ(p.members(0).size(), 25u);
  EXPECT_EQ(p.members(1).size(), 15u);
}

TEST(KL, FindsNaturalCliqueCut) {
  const Graph g = graph::ring_of_cliques(2, 10, 50, 1);
  const PartitionResult r = KlPartitioner().run(g, basic_request(2, 17));
  // Two cliques joined by 2 ring bridges: optimal cut separates them.
  EXPECT_LE(r.metrics.total_cut, 4);
}

TEST(KL, DeterministicGivenSeed) {
  const Graph g = test_graph(19);
  const PartitionResult a = KlPartitioner().run(g, basic_request(3, 23));
  const PartitionResult b = KlPartitioner().run(g, basic_request(3, 23));
  EXPECT_EQ(a.partition.assignments(), b.partition.assignments());
}

TEST(KL, RefusesOversizedInstances) {
  KlOptions options;
  options.max_nodes = 16;
  const Graph g = test_graph(29, 32, 64);
  KlPartitioner kl(options);
  EXPECT_THROW(kl.run(g, basic_request(2, 1)), std::invalid_argument);
}

TEST(KL, RejectsInvalidOptions) {
  KlOptions options;
  options.imbalance = 0.5;
  EXPECT_THROW(KlPartitioner{options}, std::invalid_argument);
}

TEST(KL, HandlesKLargerThanNaturalClusters) {
  const Graph g = graph::ring_of_cliques(3, 4, 10, 1);
  const PartitionResult r = KlPartitioner().run(g, basic_request(5, 31));
  EXPECT_TRUE(r.partition.complete());
}

// ---------------------------------------------------------------------------
// Simulated annealing
// ---------------------------------------------------------------------------

TEST(Annealing, ProducesCompletePartition) {
  const Graph g = test_graph(37);
  const PartitionResult r = AnnealingPartitioner().run(g, basic_request(4, 3));
  EXPECT_TRUE(r.partition.complete());
  EXPECT_EQ(r.algorithm, "Annealing");
}

TEST(Annealing, MeetsConstraintsOnPaperInstances) {
  for (int i = 1; i <= 3; ++i) {
    const ppn::PaperInstance inst = ppn::paper_instance(i);
    PartitionRequest r;
    r.k = inst.k;
    r.seed = 41;
    r.constraints = inst.constraints;
    AnnealingOptions options;
    options.moves_per_node = 800;  // small instance: generous budget
    const PartitionResult result = AnnealingPartitioner(options).run(
        inst.graph, r);
    // Instances 1-2 leave slack; the annealer must land feasible. Instance
    // 3 is engineered near-tight (loads 74-78 against Rmax 78) — a pure
    // stochastic walk is not guaranteed to hit the knife-edge assignment,
    // so there we only require the resource side (the easier one) to hold.
    if (i != 3) {
      EXPECT_TRUE(result.feasible) << "instance " << i;
    } else {
      EXPECT_EQ(result.violation.resource_excess, 0) << "instance " << i;
    }
  }
}

TEST(Annealing, DeterministicGivenSeed) {
  const Graph g = test_graph(43);
  const PartitionResult a =
      AnnealingPartitioner().run(g, basic_request(3, 47));
  const PartitionResult b =
      AnnealingPartitioner().run(g, basic_request(3, 47));
  EXPECT_EQ(a.partition.assignments(), b.partition.assignments());
}

TEST(Annealing, NeverEmptiesParts) {
  const Graph g = test_graph(53, 30, 60);
  const PartitionResult r =
      AnnealingPartitioner().run(g, basic_request(6, 59));
  EXPECT_TRUE(r.partition.all_parts_nonempty());
}

TEST(Annealing, RejectsInvalidOptions) {
  {
    AnnealingOptions o;
    o.cooling = 1.5;
    EXPECT_THROW(AnnealingPartitioner{o}, std::invalid_argument);
  }
  {
    AnnealingOptions o;
    o.initial_acceptance = 0.0;
    EXPECT_THROW(AnnealingPartitioner{o}, std::invalid_argument);
  }
}

TEST(Annealing, ImprovesOverPureGreedySeedOnTightConstraints) {
  // With a generous move budget the annealer should at least match the
  // greedy seed it starts from (it keeps the best state ever seen).
  const ppn::PaperInstance inst = ppn::paper_instance(3);
  PartitionRequest r;
  r.k = inst.k;
  r.seed = 61;
  r.constraints = inst.constraints;
  AnnealingOptions options;
  options.moves_per_node = 400;
  const PartitionResult result =
      AnnealingPartitioner(options).run(inst.graph, r);
  const Goodness good{result.violation.resource_excess,
                      result.violation.bandwidth_excess,
                      result.metrics.total_cut};
  // The greedy seed alone on instance 3 is infeasible for most seeds; the
  // walk must end at least feasible-or-equal.
  EXPECT_EQ(good.resource_excess, 0);
}

// ---------------------------------------------------------------------------
// Tabu search
// ---------------------------------------------------------------------------

TEST(Tabu, ProducesCompletePartition) {
  const Graph g = test_graph(67);
  const PartitionResult r = TabuPartitioner().run(g, basic_request(4, 3));
  EXPECT_TRUE(r.partition.complete());
  EXPECT_EQ(r.algorithm, "Tabu");
}

TEST(Tabu, RefineImprovesBadPartition) {
  const Graph g = graph::ring_of_cliques(4, 6, 15, 1);
  Partition p(g.num_nodes(), 4);
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u)
    p.set(u, static_cast<PartId>(u % 4));  // stripes across cliques
  Constraints c;  // unconstrained: pure cut descent
  const Weight before = compute_metrics(g, p).total_cut;
  support::Rng rng(71);
  TabuOptions options;
  const bool improved = tabu_refine(g, p, c, options, rng);
  const Weight after = compute_metrics(g, p).total_cut;
  EXPECT_TRUE(improved);
  EXPECT_LT(after, before);
}

TEST(Tabu, WalkReturnsBestVisitedNotLast) {
  // Even with a tenure that forces the walk uphill at the end, the result
  // must equal the best state seen. We proxy this by checking the returned
  // goodness is never worse than the initial one.
  const ppn::PaperInstance inst = ppn::paper_instance(1);
  Partition p(inst.graph.num_nodes(), inst.k);
  for (graph::NodeId u = 0; u < inst.graph.num_nodes(); ++u)
    p.set(u, static_cast<PartId>(u % inst.k));
  const Goodness initial =
      compute_goodness(inst.graph, p, inst.constraints);
  support::Rng rng(73);
  TabuOptions options;
  options.iterations_per_node = 64;
  tabu_refine(inst.graph, p, inst.constraints, options, rng);
  const Goodness final_good =
      compute_goodness(inst.graph, p, inst.constraints);
  EXPECT_FALSE(initial < final_good);
}

TEST(Tabu, MeetsConstraintsOnPaperInstances) {
  for (int i = 1; i <= 3; ++i) {
    const ppn::PaperInstance inst = ppn::paper_instance(i);
    PartitionRequest r;
    r.k = inst.k;
    r.seed = 79;
    r.constraints = inst.constraints;
    TabuOptions options;
    options.iterations_per_node = 128;
    const PartitionResult result =
        TabuPartitioner(options).run(inst.graph, r);
    EXPECT_TRUE(result.feasible) << "instance " << i;
  }
}

TEST(Tabu, DeterministicGivenSeed) {
  const Graph g = test_graph(83);
  const PartitionResult a = TabuPartitioner().run(g, basic_request(3, 89));
  const PartitionResult b = TabuPartitioner().run(g, basic_request(3, 89));
  EXPECT_EQ(a.partition.assignments(), b.partition.assignments());
}

// ---------------------------------------------------------------------------
// Genetic algorithm
// ---------------------------------------------------------------------------

TEST(Genetic, ProducesCompletePartition) {
  const Graph g = test_graph(97, 40, 120);
  GeneticOptions options;
  options.generations = 8;
  options.population = 10;
  const PartitionResult r =
      GeneticPartitioner(options).run(g, basic_request(4, 3));
  EXPECT_TRUE(r.partition.complete());
  EXPECT_EQ(r.algorithm, "Genetic");
}

TEST(Genetic, AlignLabelsIdentityWhenEqual) {
  const std::vector<PartId> p = {0, 1, 2, 0, 1, 2};
  const std::vector<PartId> perm = align_labels(p, p, 3);
  EXPECT_EQ(perm, (std::vector<PartId>{0, 1, 2}));
}

TEST(Genetic, AlignLabelsUndoesRelabeling) {
  // parent2 = parent1 with labels rotated; alignment must recover it.
  const std::vector<PartId> p1 = {0, 0, 1, 1, 2, 2, 0, 1, 2};
  std::vector<PartId> p2(p1.size());
  for (std::size_t i = 0; i < p1.size(); ++i) p2[i] = (p1[i] + 1) % 3;
  const std::vector<PartId> perm = align_labels(p1, p2, 3);
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(perm[static_cast<std::size_t>(p2[i])], p1[i]);
  }
}

TEST(Genetic, AlignLabelsHandlesPartialAgreement) {
  const std::vector<PartId> p1 = {0, 0, 0, 1, 1, 1};
  const std::vector<PartId> p2 = {1, 1, 0, 0, 0, 0};
  const std::vector<PartId> perm = align_labels(p1, p2, 2);
  // label 0 of p2 mostly covers p1's 1s (3 of 4), label 1 covers p1's 0s.
  EXPECT_EQ(perm[0], 1);
  EXPECT_EQ(perm[1], 0);
}

TEST(Genetic, MeetsConstraintsOnPaperInstance1) {
  const ppn::PaperInstance inst = ppn::paper_instance(1);
  PartitionRequest r;
  r.k = inst.k;
  r.seed = 101;
  r.constraints = inst.constraints;
  GeneticOptions options;
  options.generations = 30;
  const PartitionResult result =
      GeneticPartitioner(options).run(inst.graph, r);
  EXPECT_TRUE(result.feasible);
}

TEST(Genetic, DeterministicGivenSeed) {
  const Graph g = test_graph(103, 30, 80);
  GeneticOptions options;
  options.generations = 5;
  options.population = 8;
  GeneticPartitioner ga(options);
  const PartitionResult a = ga.run(g, basic_request(3, 107));
  const PartitionResult b = ga.run(g, basic_request(3, 107));
  EXPECT_EQ(a.partition.assignments(), b.partition.assignments());
}

TEST(Genetic, RejectsInvalidOptions) {
  {
    GeneticOptions o;
    o.population = 1;
    EXPECT_THROW(GeneticPartitioner{o}, std::invalid_argument);
  }
  {
    GeneticOptions o;
    o.elites = o.population;
    EXPECT_THROW(GeneticPartitioner{o}, std::invalid_argument);
  }
  {
    GeneticOptions o;
    o.tournament_size = 0;
    EXPECT_THROW(GeneticPartitioner{o}, std::invalid_argument);
  }
}

TEST(Genetic, BeatsRandomControlOnStructuredGraph) {
  const Graph g = graph::ring_of_cliques(6, 6, 12, 1);
  PartitionRequest r = basic_request(3, 109);
  GeneticOptions options;
  options.generations = 12;
  const PartitionResult ga = GeneticPartitioner(options).run(g, r);
  const PartitionResult rnd = RandomPartitioner().run(g, r);
  EXPECT_LT(ga.metrics.total_cut, rnd.metrics.total_cut);
}

// ---------------------------------------------------------------------------
// Cross-baseline seed sweeps (property-style)
// ---------------------------------------------------------------------------

class BaselineSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BaselineSeedSweep, AllBaselinesProduceValidPartitions) {
  const std::uint64_t seed = GetParam();
  const Graph g = test_graph(seed, 36, 100);
  PartitionRequest r = basic_request(4, seed * 3 + 1);

  KlPartitioner kl;
  AnnealingOptions sa_opts;
  sa_opts.moves_per_node = 60;
  AnnealingPartitioner sa(sa_opts);
  TabuOptions tabu_opts;
  tabu_opts.iterations_per_node = 8;
  TabuPartitioner tabu(tabu_opts);
  GeneticOptions ga_opts;
  ga_opts.generations = 4;
  ga_opts.population = 6;
  GeneticPartitioner ga(ga_opts);

  for (Partitioner* algo :
       std::initializer_list<Partitioner*>{&kl, &sa, &tabu, &ga}) {
    const PartitionResult result = algo->run(g, r);
    EXPECT_TRUE(result.partition.complete()) << algo->name();
    EXPECT_EQ(result.partition.size(), g.num_nodes()) << algo->name();
    // Metrics must agree with a from-scratch recomputation.
    const PartitionMetrics reference = compute_metrics(g, result.partition);
    EXPECT_EQ(result.metrics.total_cut, reference.total_cut) << algo->name();
    EXPECT_EQ(result.metrics.max_load, reference.max_load) << algo->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineSeedSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ppnpart::part
