// Design-space exploration: given an application PPN, sweep the platform
// axes (FPGA count K, per-FPGA resources Rmax, per-link bandwidth Bmax) and
// report the cheapest configurations GP can feasibly map — the "how many
// FPGAs do I actually need, and how fat must the links be" question a
// multi-FPGA architect asks before committing to a board design.
//
//   ./design_space_exploration [--workload sobel] [--size 48]

#include <cstdio>
#include <vector>

#include "partition/gp.hpp"
#include "ppn/workloads.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace ppnpart;

  support::ArgParser args("multi-FPGA design space exploration");
  args.add_string("workload", "sobel", "application (see ppn::workload_names)");
  args.add_int("size", 48, "workload spatial scale");
  args.add_int("stages", 4, "workload pipeline depth (where applicable)");
  if (auto status = args.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n", status.message().c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.help_text().c_str());
    return 0;
  }

  ppn::WorkloadScale scale;
  scale.size = args.get_int("size");
  scale.stages = static_cast<std::uint32_t>(args.get_int("stages"));
  const ppn::ProcessNetwork network =
      ppn::make_workload(args.get_string("workload"), scale);
  const graph::Graph g = ppn::to_graph(network);
  const graph::Weight total_r = g.total_node_weight();
  const graph::Weight total_b = g.total_edge_weight();

  std::printf("workload '%s': %u processes, %zu channels, total R=%lld, "
              "total channel weight=%lld\n\n",
              network.name().c_str(), network.num_processes(),
              network.num_channels(), static_cast<long long>(total_r),
              static_cast<long long>(total_b));

  std::printf("%3s %10s %10s   %-10s %10s %10s\n", "K", "Rmax", "Bmax",
              "feasible?", "cut", "max-bw");

  struct Winner {
    part::PartId k;
    graph::Weight rmax, bmax, cut;
    double platform_cost;
  };
  std::vector<Winner> winners;

  for (part::PartId k : {2, 3, 4, 6}) {
    // Resource axis: from barely-fits to comfortable.
    for (double r_slack : {1.05, 1.2, 1.5}) {
      const auto rmax = static_cast<graph::Weight>(
          r_slack * static_cast<double>(total_r) / k);
      // Bandwidth axis: fractions of the total traffic.
      for (graph::Weight divisor : {4, 8, 16}) {
        const graph::Weight bmax =
            std::max<graph::Weight>(1, total_b / divisor);
        part::PartitionRequest request;
        request.k = k;
        request.constraints.rmax = rmax;
        request.constraints.bmax = bmax;
        request.seed = 11;
        part::GpOptions options;
        options.max_cycles = 8;
        part::GpPartitioner gp(options);
        const part::PartitionResult result = gp.run(g, request);
        std::printf("%3d %10lld %10lld   %-10s %10lld %10lld\n", k,
                    static_cast<long long>(rmax),
                    static_cast<long long>(bmax),
                    result.feasible ? "yes" : "no",
                    static_cast<long long>(result.metrics.total_cut),
                    static_cast<long long>(result.metrics.max_pairwise_cut));
        if (result.feasible) {
          // A crude board cost: FPGA area dominates, links are cheaper.
          const double cost =
              static_cast<double>(k) * static_cast<double>(rmax) +
              0.5 * static_cast<double>(k * (k - 1) / 2) *
                  static_cast<double>(bmax);
          winners.push_back(
              {k, rmax, bmax, result.metrics.total_cut, cost});
        }
      }
    }
  }

  if (winners.empty()) {
    std::printf("\nno feasible platform in the swept space — enlarge the "
                "sweep or shrink the workload\n");
    return 2;
  }
  std::sort(winners.begin(), winners.end(),
            [](const Winner& a, const Winner& b) {
              return a.platform_cost < b.platform_cost;
            });
  std::printf("\ncheapest feasible platforms (cost = K*Rmax + links*Bmax/2):\n");
  for (std::size_t i = 0; i < winners.size() && i < 3; ++i) {
    const Winner& w = winners[i];
    std::printf("  #%zu: K=%d, Rmax=%lld, Bmax=%lld  (cost %.0f, cut %lld)\n",
                i + 1, w.k, static_cast<long long>(w.rmax),
                static_cast<long long>(w.bmax), w.platform_cost,
                static_cast<long long>(w.cut));
  }
  return 0;
}
