#include "support/trace.hpp"

#include <algorithm>
#include <mutex>
#include <ostream>
#include <string>
#include <type_traits>
#include <unordered_set>

// ThreadSanitizer detection: GCC defines __SANITIZE_THREAD__, clang exposes
// it through __has_feature.
#if defined(__SANITIZE_THREAD__)
#define PPN_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PPN_TSAN_ENABLED 1
#endif
#endif
#ifndef PPN_TSAN_ENABLED
#define PPN_TSAN_ENABLED 0
#endif

namespace ppnpart::support {

namespace {

#if PPN_TSAN_ENABLED
// The seqlock's payload copies are deliberate data races: record() writes
// `slot.ev` while snapshot() speculatively reads it, and the seq recheck
// discards any torn read. That design is invisible to TSan, which (rightly,
// per the C++ memory model) reports the plain conflicting accesses. Under
// TSan builds only, copy the payload as relaxed atomic words instead: the
// same bytes move, no ordering claims are added (the seqlock's
// acquire/release on `seq` still provides them), and every access TSan sees
// is atomic. Normal builds keep the plain copy — the disabled-hook overhead
// bound in bench_json depends on it staying a memcpy.
static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent is copied word-by-word under TSan");
static_assert(sizeof(TraceEvent) % sizeof(std::uint64_t) == 0,
              "TraceEvent must be whole 64-bit words (pad if it grows)");
static_assert(alignof(TraceEvent) >= alignof(std::uint64_t),
              "TraceEvent words must be naturally aligned for atomic_ref");

void relaxed_word_copy(TraceEvent& dst, const TraceEvent& src) {
  // atomic_ref requires mutable access even for loads until C++26; the
  // source object is never actually written through this cast.
  auto* d = reinterpret_cast<std::uint64_t*>(&dst);
  auto* s = reinterpret_cast<std::uint64_t*>(const_cast<TraceEvent*>(&src));
  for (std::size_t i = 0; i < sizeof(TraceEvent) / sizeof(std::uint64_t);
       ++i) {
    std::atomic_ref<std::uint64_t>(d[i]).store(
        std::atomic_ref<std::uint64_t>(s[i]).load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
}
#endif  // PPN_TSAN_ENABLED

/// Copies a trace payload in or out of a ring slot. Plain assignment in
/// normal builds; relaxed atomic words under TSan (see above).
void copy_payload(TraceEvent& dst, const TraceEvent& src) {
#if PPN_TSAN_ENABLED
  relaxed_word_copy(dst, src);
#else
  dst = src;
#endif
}

}  // namespace

const char* intern_name(std::string_view name) {
  static std::mutex mutex;
  static std::unordered_set<std::string>* pool =
      new std::unordered_set<std::string>();  // leaked: interned strings must
                                              // outlive every static tracer
  std::lock_guard<std::mutex> lock(mutex);
  return pool->emplace(name).first->c_str();
}

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(std::make_unique<Slot[]>(capacity == 0 ? 1 : capacity)),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::global() {
  // Leaked like ThreadPool::global(): destructors of other statics may still
  // record during shutdown.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::set_enabled(bool on) {
#ifdef PPN_TRACE_DISABLED
  (void)on;
#else
  enabled_.store(on, std::memory_order_relaxed);
#endif
}

std::uint32_t Tracer::current_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void Tracer::record(const TraceEvent& ev) {
  const std::uint64_t n = cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[n % capacity_];
  // Per-slot seqlock. Two writers meet on one slot only when the ring laps
  // itself mid-write (cursor advanced a full capacity while this write was
  // in flight); the loser drops its event instead of corrupting the slot.
  std::uint32_t seq = slot.seq.load(std::memory_order_relaxed);
  if (seq & 1u) return;  // a lapped writer is mid-copy; drop ours
  if (!slot.seq.compare_exchange_strong(seq, seq + 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed))
    return;
  copy_payload(slot.ev, ev);
  slot.seq.store(seq + 2, std::memory_order_release);
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint32_t before = slot.seq.load(std::memory_order_acquire);
      if (before == 0) break;       // never written
      if (before & 1u) continue;    // mid-write; retry
      TraceEvent ev;
      copy_payload(ev, slot.ev);
#if PPN_TSAN_ENABLED
      // TSan neither models nor allows standalone fences (GCC hard-errors
      // on atomic_thread_fence under -fsanitize=thread); an acquire on the
      // recheck load provides the same ordering for the validation.
      if (slot.seq.load(std::memory_order_acquire) == before) {
#else
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) == before) {
#endif
        out.push_back(ev);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.dur_us > b.dur_us;  // parents before children
            });
  return out;
}

void Tracer::clear() {
  for (std::size_t i = 0; i < capacity_; ++i)
    slots_[i].seq.store(0, std::memory_order_relaxed);
  cursor_.store(0, std::memory_order_relaxed);
}

namespace {

/// JSON string escaping for the few dynamic strings (detail text).
void write_escaped(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char hex[] = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

const char* phase_of(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kSpan: return "X";
    case TraceEvent::Kind::kInstant: return "i";
    case TraceEvent::Kind::kAsyncBegin: return "b";
    case TraceEvent::Kind::kAsyncEnd: return "e";
  }
  return "i";
}

}  // namespace

void Tracer::write_chrome_trace(std::ostream& out) const {
  const std::vector<TraceEvent> events = snapshot();
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":";
    write_escaped(out, ev.name != nullptr ? ev.name : "?");
    out << ",\"cat\":";
    write_escaped(out, ev.cat != nullptr ? ev.cat : "?");
    out << ",\"ph\":\"" << phase_of(ev.kind) << "\",\"pid\":1,\"tid\":"
        << ev.tid << ",\"ts\":" << ev.ts_us;
    if (ev.kind == TraceEvent::Kind::kSpan) out << ",\"dur\":" << ev.dur_us;
    if (ev.kind == TraceEvent::Kind::kInstant) out << ",\"s\":\"t\"";
    if (ev.id != 0 || ev.kind == TraceEvent::Kind::kAsyncBegin ||
        ev.kind == TraceEvent::Kind::kAsyncEnd)
      out << ",\"id\":" << ev.id;
    bool have_args = ev.detail[0] != '\0';
    for (const TraceEvent::Arg& a : ev.args)
      have_args = have_args || a.key != nullptr;
    if (have_args) {
      out << ",\"args\":{";
      bool first_arg = true;
      for (const TraceEvent::Arg& a : ev.args) {
        if (a.key == nullptr) continue;
        if (!first_arg) out << ",";
        first_arg = false;
        write_escaped(out, a.key);
        out << ":" << a.value;
      }
      if (ev.detail[0] != '\0') {
        if (!first_arg) out << ",";
        out << "\"detail\":";
        write_escaped(out, ev.detail);
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

#ifndef PPN_TRACE_DISABLED

namespace {

void trace_point(TraceEvent::Kind kind, const char* cat, const char* name,
                 std::uint64_t id,
                 std::initializer_list<TraceEvent::Arg> args,
                 std::string_view detail) {
  Tracer& t = Tracer::global();
  if (!t.enabled()) return;
  TraceEvent ev;
  ev.cat = cat;
  ev.name = name;
  ev.id = id;
  ev.kind = kind;
  ev.tid = Tracer::current_tid();
  ev.ts_us = t.now_us();
  for (const TraceEvent::Arg& a : args) ev.add_arg(a.key, a.value);
  if (!detail.empty()) ev.set_detail(detail);
  t.record(ev);
}

}  // namespace

void trace_instant(const char* cat, const char* name, std::uint64_t id,
                   std::initializer_list<TraceEvent::Arg> args,
                   std::string_view detail) {
  trace_point(TraceEvent::Kind::kInstant, cat, name, id, args, detail);
}

void trace_async_begin(const char* cat, const char* name, std::uint64_t id,
                       std::initializer_list<TraceEvent::Arg> args,
                       std::string_view detail) {
  trace_point(TraceEvent::Kind::kAsyncBegin, cat, name, id, args, detail);
}

void trace_async_end(const char* cat, const char* name, std::uint64_t id,
                     std::initializer_list<TraceEvent::Arg> args,
                     std::string_view detail) {
  trace_point(TraceEvent::Kind::kAsyncEnd, cat, name, id, args, detail);
}

#endif  // PPN_TRACE_DISABLED

}  // namespace ppnpart::support
