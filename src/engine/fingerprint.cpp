#include "engine/fingerprint.hpp"

#include "partition/coarsen_cache.hpp"
#include "support/hash.hpp"

namespace ppnpart::engine {

std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  return support::hash_combine(h, v);
}

std::uint64_t hash_string(std::uint64_t h, const std::string& s) {
  return support::hash_string(h, s);
}

std::uint64_t graph_fingerprint(const graph::Graph& g) {
  // One digest implementation for the whole stack: the engine's result-cache
  // key and the partition layer's coarsening-cache key must agree, so a
  // graph_key handed down through PartitionRequest means the same graph.
  return part::graph_digest(g);
}

namespace {

/// The request fields a warm start must agree on: k and the constraint
/// set. Shared by both request digests so they can never drift — the
/// compat fingerprint IS the exact fingerprint minus the seed, by
/// construction. Extend THIS function when Constraints grows a field.
std::uint64_t hash_request_shape(std::uint64_t h,
                                 const part::PartitionRequest& r) {
  h = hash_combine(h, static_cast<std::uint64_t>(r.k));
  h = hash_combine(h, static_cast<std::uint64_t>(r.constraints.rmax));
  h = hash_combine(h, static_cast<std::uint64_t>(r.constraints.bmax));
  h = hash_combine(h, r.constraints.rmax_per_part.size());
  for (const auto w : r.constraints.rmax_per_part)
    h = hash_combine(h, static_cast<std::uint64_t>(w));
  return h;
}

}  // namespace

std::uint64_t request_fingerprint(const part::PartitionRequest& r) {
  std::uint64_t h = 0x7265715f66707631ull;  // "req_fpv1"
  h = hash_combine(h, r.seed);
  return hash_request_shape(h, r);
}

std::uint64_t request_compat_fingerprint(const part::PartitionRequest& r) {
  return hash_request_shape(0x7265715f636d7631ull /* "req_cmv1" */, r);
}

}  // namespace ppnpart::engine
