// Heterogeneous platform support: per-part resource budgets
// (Constraints::rmax_per_part). The paper evaluates the homogeneous case;
// real multi-FPGA boards mix device sizes, and its conclusions call for
// tests "on actual multi-FPGA based systems". These tests pin down the
// semantics: budgets apply per part id, the incremental movers agree with
// the from-scratch metrics, every constrained algorithm honours the
// asymmetry, and Platform::to_constraints() derives the right thing.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mapping/platform.hpp"
#include "partition/exact.hpp"
#include "partition/gp.hpp"
#include "partition/move_context.hpp"
#include "partition/nlevel.hpp"
#include "partition/tabu.hpp"
#include "ppn/paper_instances.hpp"

namespace ppnpart::part {
namespace {

using graph::Graph;

/// Three unit-weight-ish clusters of very different sizes: weights force a
/// big/medium/small placement that only works if the big part id gets the
/// big budget.
Graph skewed_graph() {
  graph::GraphBuilder b(9);
  // Cluster A: nodes 0-3 (weight 10 each = 40), B: 4-6 (5 each = 15),
  // C: 7-8 (2 each = 4). Heavy intra-cluster edges, light bridges.
  const Weight w[9] = {10, 10, 10, 10, 5, 5, 5, 2, 2};
  for (graph::NodeId u = 0; u < 9; ++u) b.set_node_weight(u, w[u]);
  const auto clique = [&](std::initializer_list<graph::NodeId> nodes) {
    for (auto i = nodes.begin(); i != nodes.end(); ++i)
      for (auto j = std::next(i); j != nodes.end(); ++j)
        b.add_edge(*i, *j, 20);
  };
  clique({0, 1, 2, 3});
  clique({4, 5, 6});
  clique({7, 8});
  b.add_edge(3, 4, 1);
  b.add_edge(6, 7, 1);
  return b.build();
}

TEST(Heterogeneous, RmaxOfFallsBackToUniform) {
  Constraints c;
  c.rmax = 42;
  EXPECT_EQ(c.rmax_of(0), 42);
  EXPECT_EQ(c.rmax_of(7), 42);
  EXPECT_FALSE(c.heterogeneous());
  c.rmax_per_part = {10, 20, 30};
  EXPECT_TRUE(c.heterogeneous());
  EXPECT_EQ(c.rmax_of(0), 10);
  EXPECT_EQ(c.rmax_of(2), 30);
}

TEST(Heterogeneous, ViolationUsesPerPartBudgets) {
  const Graph g = skewed_graph();
  Partition p(9, 3);
  for (graph::NodeId u = 0; u < 4; ++u) p.set(u, 0);  // load 40
  for (graph::NodeId u = 4; u < 7; ++u) p.set(u, 1);  // load 15
  for (graph::NodeId u = 7; u < 9; ++u) p.set(u, 2);  // load 4
  const PartitionMetrics m = compute_metrics(g, p);

  Constraints fits;
  fits.rmax_per_part = {40, 15, 4};
  EXPECT_EQ(compute_violation(m, fits).resource_excess, 0);

  Constraints swapped;  // big budget on the wrong part id
  swapped.rmax_per_part = {4, 15, 40};
  EXPECT_EQ(compute_violation(m, swapped).resource_excess, 36);  // 40 - 4
}

TEST(Heterogeneous, MoveContextMatchesReferenceUnderAsymmetricBudgets) {
  support::Rng rng(3);
  const Graph g = graph::erdos_renyi_gnm(40, 120, rng, {1, 9}, {1, 7});
  Constraints c;
  c.rmax_per_part = {30, 60, 90, 120};
  c.bmax = 50;
  Partition p(40, 4);
  for (graph::NodeId u = 0; u < 40; ++u)
    p.set(u, static_cast<PartId>(u % 4));
  MoveContext ctx(g, p, c);
  // Random walk of moves; the incremental excess must track the reference.
  for (int step = 0; step < 200; ++step) {
    const auto u = static_cast<graph::NodeId>(rng.uniform_index(40));
    const auto q = static_cast<PartId>(rng.uniform_index(4));
    const Goodness predicted = ctx.goodness_after(u, q);
    ctx.apply(u, q);
    const Goodness actual = compute_goodness(g, ctx.partition(), c);
    ASSERT_EQ(ctx.goodness().resource_excess, actual.resource_excess);
    ASSERT_EQ(ctx.goodness().bandwidth_excess, actual.bandwidth_excess);
    ASSERT_EQ(ctx.goodness().cut, actual.cut);
    ASSERT_EQ(predicted.resource_excess, actual.resource_excess);
  }
}

TEST(Heterogeneous, GpExploitsTheBigDevice) {
  // Budgets {44, 18, 6}: feasible only when the 40-weight cluster lands on
  // part 0, the 15-weight cluster on part 1, the rest on part 2. A uniform
  // rmax of the same total (68/3 ≈ 22) would be infeasible outright.
  const Graph g = skewed_graph();
  PartitionRequest r;
  r.k = 3;
  r.seed = 5;
  r.constraints.rmax_per_part = {44, 18, 6};
  const PartitionResult result = GpPartitioner().run(g, r);
  EXPECT_TRUE(result.feasible);
  EXPECT_LE(result.metrics.loads[0], 44);
  EXPECT_LE(result.metrics.loads[1], 18);
  EXPECT_LE(result.metrics.loads[2], 6);
}

TEST(Heterogeneous, UniformEquivalentIsInfeasible) {
  const Graph g = skewed_graph();
  PartitionRequest r;
  r.k = 3;
  r.seed = 5;
  r.constraints.rmax = 23;  // mean of {44, 18, 6} rounded up
  const PartitionResult result = GpPartitioner().run(g, r);
  // The 4 x 10-weight clique cannot fit anywhere under 23… unless split,
  // which costs 20-weight edges; even then each half is 20 <= 23, so GP
  // may find a feasible split — but loads[*] <= 23 must hold if so.
  if (result.feasible) {
    for (const Weight load : result.metrics.loads) EXPECT_LE(load, 23);
  }
}

TEST(Heterogeneous, ExactHonoursPerPartBudgets) {
  const Graph g = skewed_graph();
  Constraints c;
  c.rmax_per_part = {44, 18, 6};
  const ExactResult exact = exact_min_cut(g, 3, c);
  ASSERT_TRUE(exact.found);
  EXPECT_TRUE(exact.optimal);
  const PartitionMetrics m = compute_metrics(g, exact.partition);
  EXPECT_LE(m.loads[0], 44);
  EXPECT_LE(m.loads[1], 18);
  EXPECT_LE(m.loads[2], 6);
  // The natural clustering cuts only the two unit bridges.
  EXPECT_EQ(exact.cut, 2);
}

TEST(Heterogeneous, TabuAndNLevelStayValid) {
  const Graph g = skewed_graph();
  PartitionRequest r;
  r.k = 3;
  r.seed = 11;
  r.constraints.rmax_per_part = {44, 18, 6};
  for (const bool use_tabu : {true, false}) {
    const PartitionResult result =
        use_tabu ? TabuPartitioner().run(g, r) : NLevelPartitioner().run(g, r);
    EXPECT_TRUE(result.partition.complete());
    const PartitionMetrics reference = compute_metrics(g, result.partition);
    EXPECT_EQ(result.metrics.total_cut, reference.total_cut);
  }
}

TEST(Heterogeneous, PlatformToConstraintsUniform) {
  const mapping::Platform p = mapping::Platform::all_to_all(4, 900, 32);
  const Constraints c = p.to_constraints();
  EXPECT_FALSE(c.heterogeneous());
  EXPECT_EQ(c.rmax, 900);
  EXPECT_EQ(c.bmax, 32);
}

TEST(Heterogeneous, PlatformToConstraintsMixedDevices) {
  mapping::Platform p("mixed");
  p.add_device({"big", 2000});
  p.add_device({"small", 500});
  p.add_device({"small2", 500});
  p.add_link(0, 1, 40);
  p.add_link(0, 2, 24);
  p.add_link(1, 2, 16);
  const Constraints c = p.to_constraints();
  ASSERT_TRUE(c.heterogeneous());
  EXPECT_EQ(c.rmax_per_part, (std::vector<Weight>{2000, 500, 500}));
  EXPECT_EQ(c.bmax, 16);  // conservative: the weakest link
}

TEST(Heterogeneous, PaperInstanceWithOneSmallDevice) {
  // Experiment 1's instance, but FPGA 3 is half-size: GP must still meet
  // all budgets or report infeasible — never silently violate.
  const ppn::PaperInstance inst = ppn::paper_instance(1);
  PartitionRequest r;
  r.k = inst.k;
  r.seed = 17;
  r.constraints.bmax = inst.constraints.bmax;
  r.constraints.rmax_per_part = {165, 165, 165, 82};
  const PartitionResult result = GpPartitioner().run(inst.graph, r);
  const Violation v = compute_violation(
      compute_metrics(inst.graph, result.partition), r.constraints);
  EXPECT_EQ(result.feasible, v.feasible());
  if (result.feasible) {
    EXPECT_LE(result.metrics.loads[3], 82);
  }
}

class HeteroSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeteroSeedSweep, IncrementalExcessAlwaysMatchesReference) {
  const std::uint64_t seed = GetParam();
  support::Rng rng(seed);
  const Graph g = graph::erdos_renyi_gnm(30, 90, rng, {1, 8}, {1, 6});
  Constraints c;
  c.rmax_per_part = {20, 40, 80};
  PartitionRequest r;
  r.k = 3;
  r.seed = seed;
  r.constraints = c;
  const PartitionResult result = GpPartitioner().run(g, r);
  const Violation v =
      compute_violation(compute_metrics(g, result.partition), c);
  EXPECT_EQ(result.violation.resource_excess, v.resource_excess);
  EXPECT_EQ(result.feasible, v.feasible());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeteroSeedSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ppnpart::part
