#!/usr/bin/env bash
# clang-tidy driver over src/, using the project .clang-tidy and the
# compile_commands.json CMake exports on every configure.
#
#   tools/run_tidy.sh [--require] [build-dir]
#
# Without clang-tidy installed the script SKIPS with exit 0 (the reference
# dev container is GCC-only); pass --require — as the CI clang-tidy job
# does after apt-installing the tool — to turn absence into a failure.
# CLANG_TIDY=<binary> overrides discovery.
set -euo pipefail

require=0
build_dir=build
for arg in "$@"; do
  case "$arg" in
    --require) require=1 ;;
    -h|--help) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) build_dir="$arg" ;;
  esac
done

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

tidy="${CLANG_TIDY:-}"
if [[ -z "$tidy" ]]; then
  for cand in clang-tidy clang-tidy-21 clang-tidy-20 clang-tidy-19 \
              clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15; do
    if command -v "$cand" >/dev/null 2>&1; then
      tidy="$cand"
      break
    fi
  done
fi
if [[ -z "$tidy" ]]; then
  if [[ "$require" -eq 1 ]]; then
    echo "run_tidy.sh: clang-tidy not found (--require set)" >&2
    exit 1
  fi
  echo "run_tidy.sh: clang-tidy not found; skipping (pass --require to fail)"
  exit 0
fi

db="$build_dir/compile_commands.json"
if [[ ! -f "$db" ]]; then
  echo "run_tidy.sh: $db missing; run: cmake -B $build_dir -S ." >&2
  exit 1
fi

mapfile -t files < <(git ls-files 'src/*.cpp' 'src/**/*.cpp')
if [[ "${#files[@]}" -eq 0 ]]; then
  echo "run_tidy.sh: no src/ translation units found" >&2
  exit 1
fi

echo "run_tidy.sh: $($tidy --version | head -n 2 | tail -n 1 | sed 's/^ *//')"
echo "run_tidy.sh: checking ${#files[@]} files against $db"
# xargs -P fans files across cores; any nonzero tidy exit (a warning, via
# WarningsAsErrors in .clang-tidy) fails the pipeline.
printf '%s\n' "${files[@]}" |
  xargs -P "$(nproc)" -n 4 "$tidy" -p "$build_dir" --quiet
echo "run_tidy.sh: clean"
