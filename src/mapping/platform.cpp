#include "mapping/platform.hpp"

#include <algorithm>

#include <limits>
#include <stdexcept>

namespace ppnpart::mapping {

std::uint32_t Platform::add_device(FpgaDevice device) {
  if (device.resources < 0)
    throw std::invalid_argument("add_device: negative resources");
  devices_.push_back(std::move(device));
  return static_cast<std::uint32_t>(devices_.size() - 1);
}

void Platform::add_link(std::uint32_t a, std::uint32_t b, Weight capacity) {
  if (a >= num_devices() || b >= num_devices())
    throw std::out_of_range("add_link: device out of range");
  if (a == b) throw std::invalid_argument("add_link: self link");
  if (capacity <= 0)
    throw std::invalid_argument("add_link: capacity must be positive");
  if (link_capacity(a, b) > 0)
    throw std::invalid_argument("add_link: duplicate link");
  links_.push_back({a, b, capacity});
}

Weight Platform::link_capacity(std::uint32_t a, std::uint32_t b) const {
  if (a == b) return std::numeric_limits<Weight>::max();
  for (const Link& l : links_) {
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) return l.capacity;
  }
  return 0;
}

namespace {
Platform homogeneous(const std::string& name, std::uint32_t count,
                     Weight rmax) {
  Platform p(name);
  for (std::uint32_t i = 0; i < count; ++i) {
    p.add_device({"fpga" + std::to_string(i), rmax});
  }
  return p;
}
}  // namespace

Platform Platform::all_to_all(std::uint32_t devices, Weight rmax,
                              Weight bmax) {
  Platform p = homogeneous("all-to-all", devices, rmax);
  for (std::uint32_t a = 0; a < devices; ++a) {
    for (std::uint32_t b = a + 1; b < devices; ++b) p.add_link(a, b, bmax);
  }
  return p;
}

Platform Platform::ring(std::uint32_t devices, Weight rmax, Weight bmax) {
  Platform p = homogeneous("ring", devices, rmax);
  if (devices == 2) {
    p.add_link(0, 1, bmax);
  } else if (devices > 2) {
    for (std::uint32_t a = 0; a < devices; ++a) {
      p.add_link(a, (a + 1) % devices, bmax);
    }
  }
  return p;
}

Platform Platform::mesh2d(std::uint32_t rows, std::uint32_t cols, Weight rmax,
                          Weight bmax) {
  Platform p = homogeneous("mesh2d", rows * cols, rmax);
  auto id = [cols](std::uint32_t r, std::uint32_t c) { return r * cols + c; };
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) p.add_link(id(r, c), id(r, c + 1), bmax);
      if (r + 1 < rows) p.add_link(id(r, c), id(r + 1, c), bmax);
    }
  }
  return p;
}

Platform Platform::star(std::uint32_t leaves, Weight rmax, Weight bmax) {
  Platform p = homogeneous("star", leaves + 1, rmax);
  for (std::uint32_t leaf = 1; leaf <= leaves; ++leaf) {
    p.add_link(0, leaf, bmax);
  }
  return p;
}


part::Constraints Platform::to_constraints() const {
  part::Constraints c;
  bool uniform = true;
  for (const FpgaDevice& d : devices_) {
    if (d.resources != devices_.front().resources) uniform = false;
  }
  if (devices_.empty()) return c;
  if (uniform) {
    c.rmax = devices_.front().resources;
  } else {
    c.rmax_per_part.reserve(devices_.size());
    for (const FpgaDevice& d : devices_) c.rmax_per_part.push_back(d.resources);
  }
  if (!links_.empty()) {
    Weight min_cap = links_.front().capacity;
    for (const Link& l : links_) min_cap = std::min(min_cap, l.capacity);
    c.bmax = min_cap;
  }
  return c;
}

}  // namespace ppnpart::mapping
