#pragma once
// Direct CSR contraction (METIS-style), the allocation-free replacement for
// the GraphBuilder round-trip in multilevel coarsening.
//
// Given a fine graph and a surjective fine-to-coarse node map, contract_csr
// walks the fine CSR once per coarse row, dedups parallel coarse edges with
// a timestamped scratch array (no hashing, no sort over the whole edge
// list), sorts each short coarse row, and emits the coarse CSR directly.
// The result is bit-identical to building the same contraction through
// GraphBuilder — same sorted adjacency, same merged weights — so graph
// digests and CoarseningCache keys are unaffected by which path produced a
// level. All scratch lives in a caller-owned ContractScratch whose buffers
// are reused across levels and runs; only the returned Graph's own arrays
// are freshly allocated (they are the product and must outlive the call).

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "support/alloc_stats.hpp"

namespace ppnpart::graph {

/// Reusable scratch for contract_csr. Default-constructed buffers grow to
/// the first call's sizes and are then reused; `stats` (optional) counts the
/// growths so benches can verify steady-state allocation-freedom.
struct ContractScratch {
  support::AllocStats* stats = nullptr;

  /// Per-coarse-node timestamp; last_seen[c] == epoch marks c as already
  /// present in the current row.
  std::vector<std::uint64_t> last_seen;
  /// Position of a seen coarse neighbour inside the current row buffer.
  std::vector<std::uint32_t> slot;
  /// Current coarse row under construction: (neighbour, merged weight).
  std::vector<std::pair<NodeId, Weight>> row;

  /// Coarse CSR under construction (exact copies go into the Graph).
  std::vector<std::uint64_t> xadj;
  std::vector<NodeId> adj;
  std::vector<Weight> ewgt;
  std::vector<Weight> node_w;

  /// Coarse -> fine member lists (counting-sorted CSR).
  std::vector<std::uint64_t> member_off;
  std::vector<std::uint64_t> member_cursor;
  std::vector<NodeId> members;

  std::uint64_t epoch = 0;
};

/// Contracts `fine` along `fine_to_coarse` (values in [0, num_coarse); every
/// coarse id must be hit at least once). Coarse node weights are the sums of
/// their members' weights; parallel coarse edges merge by weight sum; edges
/// internal to a coarse node disappear. O(V + E) per call plus one sort per
/// coarse row.
Graph contract_csr(const Graph& fine, std::span<const NodeId> fine_to_coarse,
                   NodeId num_coarse, ContractScratch& scratch);

}  // namespace ppnpart::graph
