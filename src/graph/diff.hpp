#pragma once
// Reconstructing an edit script from two concrete graphs — the inverse of
// GraphDelta::apply, and the front half of similarity-aware admission.
//
// The incremental-repartitioning path (PR 4) is driven by a GraphDelta, but
// a service fronting many users mostly receives plain CSR graphs: the caller
// edited its network out-of-band and hands over the result, not the edits.
// diff(base, edited) recovers a minimal edit script between the two under
// **stable-id alignment**:
//
//   * node ids [0, min(na, nb)) name the same process in both graphs
//     (process networks evolve in place, so ids are stable across edits);
//   * when the edited graph is larger, ids [na, nb) are node additions — in
//     the delta's extended-id convention they get exactly those ids;
//   * when it is smaller, ids [nb, na) are node removals (their incident
//     edges strand with them, as GraphDelta::remove_node specifies).
//
// Within the aligned prefix, per-row sorted merges recover edge additions
// (add_edge at the edited weight), removals (remove_edge) and reweights
// (set_edge_weight), plus node reweights. The script is minimal for this
// alignment: identical rows contribute no ops, and diff(a, a) is empty.
//
// Invariant (fuzzed by tests/diff_property_test.cpp, and re-verified at
// runtime by IncrementalPartitioner::try_repartition_diffed before any
// partition is reused): diff(a, b).apply(a).graph is BIT-IDENTICAL to b —
// same CSR arrays, same weights — and the reported node map is the
// alignment itself (identity on survivors). Graphs whose ids are *not*
// stable across versions still satisfy the invariant; they just produce a
// large script, which the admission gates route to a full run.
//
// Complexity: O(V + E) over both graphs plus O(ops log ops) inside the
// resulting delta's apply.

#include "graph/delta.hpp"
#include "graph/graph.hpp"

namespace ppnpart::graph {

/// Reconstructs the edit script turning `base` into `edited` under
/// stable-id alignment (see file comment). Total: any pair of graphs has a
/// diff; near-identical pairs have a near-empty one.
GraphDelta diff(const Graph& base, const Graph& edited);

/// Exact CSR bit-identity — all four identity-bearing arrays compared, no
/// hashing. THE check behind diff's reconstruction contract, shared by the
/// engine's zero-invalid-reuse rail (incremental.cpp) and the CLI's --diff
/// replay verification so the two can never drift apart.
bool bit_identical(const Graph& a, const Graph& b);

}  // namespace ppnpart::graph
