// Ablation: the paper's cyclic re-coarsening budget (Section IV-C). More
// V-cycles => more instances reach feasibility (and cuts polish further).

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace ppnpart;

  bench::InstanceFamily family;
  family.nodes = 300;
  family.k = 4;
  family.resource_slack = 1.06;  // deliberately tight
  family.bandwidth_slack = 1.0;
  const int kInstances = 8;

  bench::print_header(
      "Ablation: V-cycle budget (GP, 8 tight PN instances, n=300, K=4)",
      "max_cycles   feasible    mean-cut    mean-time");
  for (std::uint32_t cycles : {1u, 2u, 4u, 8u, 16u, 32u}) {
    part::GpOptions options;
    options.max_cycles = cycles;
    bench::RunSummary summary;
    for (int i = 0; i < kInstances; ++i) {
      const auto inst = family.make(i);
      part::GpPartitioner gp(options);
      summary.add(gp.run(inst.graph, inst.request));
    }
    std::printf("%10u %6d/%-4d %11.1f %10.3fs\n", cycles, summary.feasible,
                summary.total, summary.mean_cut(), summary.mean_seconds());
  }
  return 0;
}
