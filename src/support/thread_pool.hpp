#pragma once
// Fixed-size thread pool with a blocking task queue, plus a chunked
// parallel_for helper.
//
// The partitioner's parallelism is coarse-grained (competing matchings,
// initial-partitioning restarts, V-cycle candidates, per-instance benchmark
// fan-out), so a simple mutex-protected queue is more than adequate; the
// fan-out is tens of tasks, each milliseconds long or more.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ppnpart::support {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task; returns a future for its completion/result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// The process-wide pool, sized to the hardware.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Runs fn(i) for i in [begin, end) across the pool in contiguous chunks and
/// waits for completion. fn must be safe to invoke concurrently for distinct
/// indices. Falls back to a serial loop for tiny ranges.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1);

/// parallel_for on the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1);

}  // namespace ppnpart::support
