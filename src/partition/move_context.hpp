#pragma once
// Incremental bookkeeping for node moves during refinement.
//
// MoveContext maintains, under single-node moves:
//   * conn(u, r): total weight of edges from u into part r,
//   * per-part loads and node counts,
//   * the k x k pairwise cut matrix and global cut,
//   * the aggregate resource/bandwidth constraint excesses,
//   * the boundary set (nodes with at least one cross-part edge), kept
//     incrementally: apply() marks the only nodes whose status can change
//     (the moved node and its neighbours), enumeration lazily drops stale
//     entries and reports ascending by node id — the same order the old
//     full rescan produced, so downstream seed shuffles are unchanged.
// A move costs O(degree(u) + k); evaluating a hypothetical move costs O(k);
// boundary enumeration costs O(b log b) in the boundary size instead of the
// former O(n * avg_degree) rescan.
// compute_metrics() (full recomputation) is the reference implementation the
// tests compare against.
//
// A MoveContext is designed to be owned by a part::Workspace and re-armed
// with reset() across refinement levels and passes: every internal buffer
// keeps its capacity, so steady-state resets allocate nothing.

#include <optional>
#include <vector>

#include "partition/partition.hpp"
#include "support/alloc_stats.hpp"

namespace ppnpart::part {

class MoveContext {
 public:
  /// Empty context; arm with reset() before use (workspace pattern).
  MoveContext() = default;

  /// Partition must be complete. The context takes a reference: callers
  /// mutate the partition exclusively through apply().
  MoveContext(const Graph& g, Partition& p, const Constraints& c) {
    reset(g, p, c);
  }

  /// Re-arms the context on a (graph, partition, constraints) triple,
  /// reusing all internal buffer capacity. Same contract as the
  /// constructor.
  void reset(const Graph& g, Partition& p, const Constraints& c);

  /// Optional growth counter for the internal buffers (workspace hook).
  void set_alloc_stats(support::AllocStats* stats) { alloc_stats_ = stats; }

  const Graph& graph() const { return *graph_; }
  const Partition& partition() const { return *partition_; }
  const Constraints& constraints() const { return constraints_; }
  PartId k() const { return k_; }
  PartId part_of(NodeId u) const { return (*partition_)[u]; }

  Weight conn(NodeId u, PartId r) const {
    return conn_[static_cast<std::size_t>(u) * k_ + static_cast<std::size_t>(r)];
  }
  Weight load(PartId p) const { return loads_[static_cast<std::size_t>(p)]; }
  std::uint32_t part_size(PartId p) const {
    return counts_[static_cast<std::size_t>(p)];
  }
  Weight cut() const { return cut_; }
  const PairwiseCut& pairwise() const { return pairwise_; }

  Goodness goodness() const {
    return Goodness{resource_excess_, bandwidth_excess_, cut_};
  }

  /// Number of effective apply() calls since reset(). Any cached gain
  /// computed while this is unchanged is still exact.
  std::uint64_t apply_count() const { return apply_count_; }

  /// Goodness of the partition if u moved to part q (u's part unchanged is
  /// allowed and returns current goodness). O(k).
  Goodness goodness_after(NodeId u, PartId q) const;

  /// Moves u to part q, updating all incremental state. O(degree(u) + k).
  void apply(NodeId u, PartId q);

  /// True iff u has at least one neighbour in another part. O(1).
  bool is_boundary(NodeId u) const {
    return conn(u, part_of(u)) < incident_[u];
  }

  /// Boundary nodes ascending by id. The overload filling a caller buffer
  /// is the allocation-free hot path; the by-value form remains for
  /// convenience.
  void boundary_nodes(std::vector<NodeId>& out) const;
  std::vector<NodeId> boundary_nodes() const {
    std::vector<NodeId> out;
    boundary_nodes(out);
    return out;
  }

  struct Candidate {
    PartId target = kUnassigned;
    Goodness after;
  };
  /// Best target part for u by resulting goodness; never empties u's part
  /// when `allow_emptying` is false. nullopt when no legal target exists.
  std::optional<Candidate> best_move(NodeId u, bool allow_emptying = false) const;

 private:
  /// Adds u to the boundary superset unconditionally; enumeration filters
  /// non-boundary entries out anyway, so testing is_boundary here would
  /// just duplicate that work on the hot move path.
  void mark_boundary(NodeId u) const {
    if (!in_boundary_list_[u]) {
      in_boundary_list_[u] = 1;
      boundary_list_.push_back(u);
    }
  }

  const Graph* graph_ = nullptr;
  Partition* partition_ = nullptr;
  Constraints constraints_;
  PartId k_ = 0;
  std::vector<Weight> conn_;       // n x k
  std::vector<Weight> loads_;      // k
  std::vector<std::uint32_t> counts_;  // k
  std::vector<Weight> incident_;   // n: total incident edge weight
  PairwiseCut pairwise_;
  Weight cut_ = 0;
  Weight resource_excess_ = 0;
  Weight bandwidth_excess_ = 0;
  std::uint64_t apply_count_ = 0;
  /// Superset of the boundary (lazily compacted on enumeration).
  mutable std::vector<NodeId> boundary_list_;
  mutable std::vector<std::uint8_t> in_boundary_list_;
  /// best_move scratch: parts the probed node connects to.
  mutable std::vector<PartId> nz_parts_;
  support::AllocStats* alloc_stats_ = nullptr;
};

}  // namespace ppnpart::part
