#include "graph/delta.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "support/contracts.hpp"

namespace ppnpart::graph {

namespace {

[[noreturn]] void bad_op(const char* op, const char* what) {
  throw std::invalid_argument(std::string("GraphDelta::") + op + ": " + what);
}

}  // namespace

void GraphDelta::check_live(NodeId u, const char* op) const {
  if (u >= num_extended()) bad_op(op, "node out of range");
  if (is_removed(u)) bad_op(op, "node already removed by this delta");
}

NodeId GraphDelta::add_node(Weight weight) {
  if (weight < 0) bad_op("add_node", "negative weight");
  added_weights_.push_back(weight);
  return base_nodes_ + static_cast<NodeId>(added_weights_.size() - 1);
}

void GraphDelta::remove_node(NodeId u) {
  check_live(u, "remove_node");
  removed_.push_back(u);
  if (removed_flags_.size() <= u) removed_flags_.resize(u + 1, 0);
  removed_flags_[u] = 1;
}

void GraphDelta::set_node_weight(NodeId u, Weight w) {
  check_live(u, "set_node_weight");
  if (w < 0) bad_op("set_node_weight", "negative weight");
  node_weight_ops_.emplace_back(u, w);
}

void GraphDelta::add_edge(NodeId u, NodeId v, Weight w) {
  check_live(u, "add_edge");
  check_live(v, "add_edge");
  if (u == v) bad_op("add_edge", "self loop");
  if (w <= 0) bad_op("add_edge", "weight must be positive");
  if (u > v) std::swap(u, v);
  edge_ops_.push_back(
      {u, v, w, EdgeOpKind::kAdd, static_cast<std::uint32_t>(edge_ops_.size())});
}

void GraphDelta::remove_edge(NodeId u, NodeId v) {
  check_live(u, "remove_edge");
  check_live(v, "remove_edge");
  if (u == v) bad_op("remove_edge", "self loop");
  if (u > v) std::swap(u, v);
  edge_ops_.push_back(
      {u, v, 0, EdgeOpKind::kRemove, static_cast<std::uint32_t>(edge_ops_.size())});
}

void GraphDelta::set_edge_weight(NodeId u, NodeId v, Weight w) {
  check_live(u, "set_edge_weight");
  check_live(v, "set_edge_weight");
  if (u == v) bad_op("set_edge_weight", "self loop");
  if (w <= 0) bad_op("set_edge_weight", "weight must be positive");
  if (u > v) std::swap(u, v);
  edge_ops_.push_back(
      {u, v, w, EdgeOpKind::kSet, static_cast<std::uint32_t>(edge_ops_.size())});
}

std::vector<GraphDelta::EdgeEdit> GraphDelta::edge_edits() const {
  std::vector<EdgeEdit> edits;
  edits.reserve(edge_ops_.size());
  for (const EdgeOp& op : edge_ops_)
    edits.push_back({op.u, op.v, op.w, op.kind});
  return edits;
}

GraphDelta::Applied GraphDelta::apply(const Graph& base) const {
  if (base.num_nodes() != base_nodes_)
    throw std::invalid_argument("GraphDelta::apply: base graph size mismatch");

  const NodeId n_ext = num_extended();
  std::vector<std::uint8_t> removed(n_ext, 0);
  for (NodeId u : removed_) removed[u] = 1;

  // ---- Node map: surviving extended ids compact in ascending order. ------
  Applied out;
  out.node_map.assign(n_ext, kInvalidNode);
  NodeId n_new = 0;
  for (NodeId u = 0; u < n_ext; ++u) {
    if (!removed[u]) out.node_map[u] = n_new++;
  }

  const auto base_weight_of = [&](NodeId u) {
    return u < base_nodes_ ? base.node_weight(u)
                           : added_weights_[u - base_nodes_];
  };

  // ---- Node weights: base values, then reweight ops in script order. -----
  std::vector<Weight> vwgt;
  vwgt.reserve(n_new);
  for (NodeId u = 0; u < n_ext; ++u) {
    if (!removed[u]) vwgt.push_back(base_weight_of(u));
  }
  for (const auto& [u, w] : node_weight_ops_) {
    if (!removed[u]) vwgt[out.node_map[u]] = w;
  }

  // ---- Fold edge ops per pair, in script order. --------------------------
  // The fold distils an arbitrary op sequence on one pair into a single
  // final op: kAdd accumulates a (positive) relative delta, kSet/kRemove
  // reset the pair absolutely, and an add after a remove re-creates the
  // edge at the added weight.
  struct FinalOp {
    NodeId u, v;
    EdgeOpKind kind;  // kAdd = relative delta, kSet = absolute, kRemove
    Weight w;
  };
  std::vector<FinalOp> final_ops;
  {
    std::vector<EdgeOp> ops;
    ops.reserve(edge_ops_.size());
    for (const EdgeOp& op : edge_ops_) {
      // Edge ops on a (later-)removed endpoint are stranded with the node.
      if (!removed[op.u] && !removed[op.v]) ops.push_back(op);
    }
    std::sort(ops.begin(), ops.end(), [](const EdgeOp& a, const EdgeOp& b) {
      if (a.u != b.u) return a.u < b.u;
      if (a.v != b.v) return a.v < b.v;
      return a.seq < b.seq;
    });
    final_ops.reserve(ops.size());
    for (std::size_t i = 0; i < ops.size();) {
      const NodeId u = ops[i].u, v = ops[i].v;
      FinalOp f{u, v, EdgeOpKind::kAdd, 0};
      for (; i < ops.size() && ops[i].u == u && ops[i].v == v; ++i) {
        switch (ops[i].kind) {
          case EdgeOpKind::kAdd:
            if (f.kind == EdgeOpKind::kRemove) {
              f.kind = EdgeOpKind::kSet;  // removed, then re-created at w
              f.w = ops[i].w;
            } else {
              f.w += ops[i].w;  // relative and absolute both accumulate
            }
            break;
          case EdgeOpKind::kRemove:
            f.kind = EdgeOpKind::kRemove;
            f.w = 0;
            break;
          case EdgeOpKind::kSet:
            f.kind = EdgeOpKind::kSet;
            f.w = ops[i].w;
            break;
        }
      }
      if (f.kind == EdgeOpKind::kAdd && f.w == 0) continue;  // net no-op
      final_ops.push_back(f);
    }
  }

  // ---- Incidence index: per-node op slices sorted by the other endpoint.
  // Extended ids compact order-preservingly, so "sorted by extended other"
  // is "sorted by new other" — rows merge into sorted adjacency directly.
  struct Incidence {
    NodeId node, other;
    std::uint32_t op;
  };
  std::vector<Incidence> incidence;
  incidence.reserve(final_ops.size() * 2);
  for (std::uint32_t i = 0; i < final_ops.size(); ++i) {
    incidence.push_back({final_ops[i].u, final_ops[i].v, i});
    incidence.push_back({final_ops[i].v, final_ops[i].u, i});
  }
  std::sort(incidence.begin(), incidence.end(),
            [](const Incidence& a, const Incidence& b) {
              if (a.node != b.node) return a.node < b.node;
              return a.other < b.other;
            });

  // ---- Merge each row: surviving base adjacency + this node's final ops.
  std::vector<std::uint8_t> touched(n_ext, 0);
  std::vector<std::uint64_t> xadj;
  std::vector<NodeId> adj;
  std::vector<Weight> ewgt;
  xadj.reserve(static_cast<std::size_t>(n_new) + 1);
  adj.reserve(base.adj().size() + final_ops.size() * 2);
  ewgt.reserve(adj.capacity());
  xadj.push_back(0);

  std::size_t inc_pos = 0;
  for (NodeId x = 0; x < n_ext; ++x) {
    // Incidence entries of removed nodes were never generated (their ops
    // are stranded above), so inc_pos only ever points at surviving rows.
    if (removed[x]) continue;
    const auto nbrs = x < base_nodes_ ? base.neighbors(x) : std::span<const NodeId>{};
    const auto wgts = x < base_nodes_ ? base.edge_weights(x) : std::span<const Weight>{};
    const std::size_t inc_begin = inc_pos;
    while (inc_pos < incidence.size() && incidence[inc_pos].node == x) ++inc_pos;

    std::size_t bi = 0;           // base adjacency cursor
    std::size_t oi = inc_begin;   // op cursor
    const auto emit = [&](NodeId other_ext, Weight w) {
      // Every surviving edge endpoint must have a compacted id; emitting a
      // kInvalidNode here means the removed-endpoint stranding above leaked
      // an op through.
      PPN_DCHECK(out.node_map[other_ext] != kInvalidNode);
      adj.push_back(out.node_map[other_ext]);
      ewgt.push_back(w);
    };
    while (bi < nbrs.size() || oi < inc_pos) {
      // Skip base neighbours that the delta removed; x felt the removal.
      if (bi < nbrs.size() && removed[nbrs[bi]]) {
        touched[x] = 1;
        ++bi;
        continue;
      }
      const bool have_base = bi < nbrs.size();
      const bool have_op = oi < inc_pos;
      const NodeId y = have_base ? nbrs[bi] : kInvalidNode;
      const NodeId o = have_op ? incidence[oi].other : kInvalidNode;
      if (have_base && (!have_op || y < o)) {
        emit(y, wgts[bi]);  // untouched base edge
        ++bi;
      } else if (have_op && (!have_base || o < y)) {
        // Op on an edge absent from the base: kAdd/kSet create it,
        // kRemove of a non-existent edge is an ineffective no-op.
        const FinalOp& f = final_ops[incidence[oi].op];
        if (f.kind != EdgeOpKind::kRemove) {
          emit(o, f.w);
          touched[x] = 1;
          touched[o] = 1;
        }
        ++oi;
      } else {  // op on an existing base edge
        const FinalOp& f = final_ops[incidence[oi].op];
        if (f.kind == EdgeOpKind::kRemove) {
          touched[x] = 1;
          touched[y] = 1;
        } else {
          const Weight w =
              f.kind == EdgeOpKind::kAdd ? wgts[bi] + f.w : f.w;
          emit(y, w);
          if (w != wgts[bi]) {
            touched[x] = 1;
            touched[y] = 1;
          }
        }
        ++bi;
        ++oi;
      }
    }
    xadj.push_back(adj.size());
  }
  // One xadj entry per surviving node plus the leading 0, or the Graph we
  // are about to build is structurally torn.
  PPN_DCHECK(xadj.size() == static_cast<std::size_t>(n_new) + 1);

  // ---- Touched set: effective edge edits (marked above), reweighted and
  // added nodes. Ascending extended order maps to ascending new ids.
  for (NodeId u = base_nodes_; u < n_ext; ++u) touched[u] = 1;  // added
  for (const auto& [u, w] : node_weight_ops_) {
    if (!removed[u] && vwgt[out.node_map[u]] != base_weight_of(u))
      touched[u] = 1;
  }
  for (NodeId u = 0; u < n_ext; ++u) {
    if (touched[u] && !removed[u]) out.touched.push_back(out.node_map[u]);
  }

  out.graph = Graph(std::move(xadj), std::move(adj), std::move(ewgt),
                    std::move(vwgt));
  return out;
}

}  // namespace ppnpart::graph
