// Regenerates the paper's experiment tables. Compiled three times with
// PPNPART_TABLE_INDEX = 1, 2, 3 into bench_table1/2/3.

#include "table_common.hpp"

#ifndef PPNPART_TABLE_INDEX
#define PPNPART_TABLE_INDEX 1
#endif

int main() { return ppnpart::bench::run_table(PPNPART_TABLE_INDEX); }
