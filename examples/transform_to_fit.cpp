// Transform-to-fit: when a process network cannot be mapped onto the
// platform as-is, reshape it until it can.
//
// The scenario (the PPN literature's classic): a streaming pipeline has one
// hot FIFO whose sustained bandwidth exceeds the inter-FPGA link budget
// Bmax. No partitioner can fix that — any placement separating producer
// from consumer ships the whole stream over one link. The repair is a
// *network transformation*: split the producer into round-robin copies so
// the traffic arrives on several thinner FIFOs the partitioner can spread
// across different FPGA pairs. Symmetrically, merging chatty neighbours
// before partitioning removes cut the partitioner would otherwise pay.
//
//   ./transform_to_fit [--k 3] [--bmax 25] [--rmax 13] [--splits 6]

#include <cstdio>

#include "ppn/transform.hpp"
#include "ppn/workloads.hpp"
#include "support/cli.hpp"
#include "viz/dot.hpp"

int main(int argc, char** argv) {
  using namespace ppnpart;

  support::ArgParser args("transform_to_fit");
  args.add_int("k", 3, "number of FPGAs");
  args.add_int("bmax", 25, "per-link bandwidth budget");
  args.add_int("rmax", 13, "per-FPGA resource budget");
  args.add_int("splits", 6, "split budget for the auto-split loop");
  if (auto status = args.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n", status.message().c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.help_text().c_str());
    return 0;
  }

  // The blocked pipeline: A -> P -> C -> B with a 40-wide P -> C FIFO.
  // Rmax forbids P and C from sharing an FPGA, so the hot FIFO must cross
  // a link — and 40 > Bmax makes every placement infeasible.
  ppn::ProcessNetwork net("blocked_pipeline");
  const auto a = net.add_process("A", 3, 100);
  const auto p = net.add_process("P", 7, 100);
  const auto c = net.add_process("C", 7, 100);
  const auto b = net.add_process("B", 3, 100);
  net.add_channel(a, p, 2, 200, "a2p");
  net.add_channel(p, c, 40, 4000, "hot");
  net.add_channel(c, b, 2, 200, "c2b");

  part::Constraints constraints;
  constraints.bmax = args.get_int("bmax");
  constraints.rmax = args.get_int("rmax");
  const auto k = static_cast<part::PartId>(args.get_int("k"));

  std::printf("network '%s': %u processes, hot FIFO carries 40 (> Bmax %lld)\n",
              net.name().c_str(), net.num_processes(),
              static_cast<long long>(constraints.bmax));

  // 1. Show the un-transformed network is infeasible.
  {
    part::GpPartitioner gp;
    part::PartitionRequest request;
    request.k = k;
    request.constraints = constraints;
    request.seed = 7;
    const part::PartitionResult r = gp.run(ppn::to_graph(net), request);
    std::printf("before transformation: %s\n",
                r.feasible ? "feasible (unexpected!)" : "INFEASIBLE, as expected");
  }

  // 2. Auto-split until the partitioner finds a feasible mapping.
  ppn::AutoSplitOptions options;
  options.max_splits = static_cast<std::uint32_t>(args.get_int("splits"));
  options.seed = 7;
  const ppn::AutoSplitReport report =
      ppn::auto_split_until_feasible(net, k, constraints, options);

  std::printf("\nauto-split transcript:\n");
  for (const std::string& line : report.actions)
    std::printf("  %s\n", line.c_str());

  if (!report.feasible) {
    std::printf("\nstill infeasible after %u splits — platform too small\n",
                report.splits_performed);
    return 2;
  }

  std::printf(
      "\nfinal network: %u processes, %zu channels (%u splits)\n"
      "final mapping: cut=%lld, max pairwise bandwidth=%lld (Bmax %lld), "
      "max load=%lld (Rmax %lld)\n",
      report.network.num_processes(), report.network.num_channels(),
      report.splits_performed,
      static_cast<long long>(report.result.metrics.total_cut),
      static_cast<long long>(report.result.metrics.max_pairwise_cut),
      static_cast<long long>(constraints.bmax),
      static_cast<long long>(report.result.metrics.max_load),
      static_cast<long long>(constraints.rmax));

  // 3. Demonstrate the dual transformation: merging chatty neighbours of
  //    an M-JPEG pipeline as pre-clustering (cut can only shrink).
  const ppn::ProcessNetwork mjpeg = ppn::mjpeg_network();
  const part::Constraints loose;  // unconstrained comparison
  part::PartitionRequest request;
  request.k = 2;
  request.seed = 11;
  part::GpPartitioner gp;
  const part::PartitionResult plain = gp.run(ppn::to_graph(mjpeg), request);
  const ppn::MergeResult clustered = ppn::merge_heavy_channels(
      mjpeg, mjpeg.total_resources() / 2, /*max_merges=*/4);
  const part::PartitionResult merged =
      gp.run(ppn::to_graph(clustered.network), request);
  std::printf(
      "\nmerge pre-clustering on '%s': cut %lld (plain 2-way) -> %lld "
      "(after 4 heavy-channel merges)\n",
      mjpeg.name().c_str(), static_cast<long long>(plain.metrics.total_cut),
      static_cast<long long>(merged.metrics.total_cut));
  (void)loose;
  return 0;
}
