#pragma once
// Deterministic pseudo-random number generation for ppnpart.
//
// Every stochastic component of the library (matchings, initial-partitioning
// restarts, V-cycles, graph generators) draws from an explicitly seeded
// xoshiro256** stream so that a given seed reproduces the same result on any
// platform. Parallel tasks derive independent child streams with
// `Rng::derive`, which keeps results independent of thread scheduling.

#include <cstdint>
#include <limits>
#include <vector>

namespace ppnpart::support {

/// SplitMix64 step; used to seed xoshiro and to derive child streams.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** 1.0 by Blackman & Vigna — fast, high-quality, 2^256-1 period.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t uniform_index(std::size_t n);

  /// Uniform double in [0, 1).
  double uniform_real();

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Derives an independent child stream; deterministic in (this stream's
  /// seed, tag). Does not advance this stream.
  Rng derive(std::uint64_t tag) const;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<std::uint32_t> permutation(std::size_t n);

  /// Permutation of [0, n) into a caller buffer (capacity reused; draws the
  /// identical sequence to permutation(n)).
  void permutation_into(std::size_t n, std::vector<std::uint32_t>& out);

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
};

/// Splits one root seed into arbitrarily many independent child seeds
/// (SplitMix64-based mixing). The mapping is pure: stream `i` depends only
/// on (root, i), never on how many other streams were drawn or in what
/// order — exactly what per-worker parallelism and portfolio racing need to
/// stay reproducible under any scheduling.
class SeedStream {
 public:
  explicit SeedStream(std::uint64_t root) : root_(root) {}

  std::uint64_t root() const { return root_; }

  /// Child seed for stream `index`; stateless and index-stable.
  std::uint64_t seed_for(std::uint64_t index) const {
    std::uint64_t state = root_ ^ (0x9e3779b97f4a7c15ull * (index + 1));
    const std::uint64_t a = splitmix64(state);
    return a ^ splitmix64(state);
  }

  /// An Rng seeded from stream `index`.
  Rng rng_for(std::uint64_t index) const { return Rng(seed_for(index)); }

  /// Stateful convenience: seeds for streams 0, 1, 2, ... in order.
  std::uint64_t next() { return seed_for(next_index_++); }

 private:
  std::uint64_t root_;
  std::uint64_t next_index_ = 0;
};

}  // namespace ppnpart::support
