#include "partition/exact.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/timer.hpp"

namespace ppnpart::part {

namespace {

struct SearchState {
  const Graph* g;
  PartId k;
  Constraints c;
  ExactOptions options;
  const support::StopToken* stop = nullptr;
  support::Timer timer;

  std::vector<NodeId> order;      // assignment order
  std::vector<PartId> assign;     // by node id; kUnassigned when free
  std::vector<Weight> loads;
  PairwiseCut pairwise;
  Weight cut = 0;

  Weight best_cut = std::numeric_limits<Weight>::max();
  std::vector<PartId> best_assign;
  bool found = false;
  bool truncated = false;
  std::uint64_t states = 0;

  bool out_of_budget() {
    if (options.max_states != 0 && states > options.max_states) return true;
    // Timer/token checks are cheap but not free; sample every 4096 states.
    if ((states & 0xFFF) == 0) {
      if (timer.seconds() > options.time_limit_seconds) return true;
      if (stop != nullptr && stop->stop_requested()) return true;
    }
    return false;
  }

  void dfs(std::size_t depth, PartId parts_open) {
    ++states;
    if (out_of_budget()) {
      truncated = true;
      return;
    }
    if (depth == order.size()) {
      if (options.require_all_parts && parts_open < k) return;
      if (cut < best_cut) {
        best_cut = cut;
        best_assign = assign;
        found = true;
      }
      return;
    }
    // Non-emptiness pruning: the remaining nodes must suffice to open the
    // parts that are still empty.
    if (options.require_all_parts) {
      const auto remaining = static_cast<PartId>(order.size() - depth);
      if (remaining < k - parts_open) return;
    }
    const NodeId u = order[depth];
    const Weight w = g->node_weight(u);
    // Connection of u to each currently used part.
    std::vector<Weight> conn(static_cast<std::size_t>(k), 0);
    Weight assigned_incident = 0;
    auto nbrs = g->neighbors(u);
    auto wgts = g->edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const PartId pv = assign[nbrs[i]];
      if (pv != kUnassigned) {
        conn[static_cast<std::size_t>(pv)] += wgts[i];
        assigned_incident += wgts[i];
      }
    }
    // Symmetry breaking: u may join any open part or open exactly one new.
    const PartId limit = std::min<PartId>(k, parts_open + 1);
    for (PartId p = 0; p < limit; ++p) {
      if (truncated) return;
      const Weight budget = c.rmax_of(p);
      if (budget != Constraints::kUnlimited && loads[p] + w > budget) continue;
      const Weight added_cut = assigned_incident - conn[p];
      if (cut + added_cut >= best_cut) continue;
      // Pairwise bandwidth pruning (monotone: entries only ever grow).
      bool bw_ok = true;
      if (c.bmax != Constraints::kUnlimited) {
        for (PartId q = 0; q < k && bw_ok; ++q) {
          if (q == p || conn[q] == 0) continue;
          if (pairwise.at(p, q) + conn[q] > c.bmax) bw_ok = false;
        }
      }
      if (!bw_ok) continue;

      assign[u] = p;
      loads[p] += w;
      cut += added_cut;
      for (PartId q = 0; q < k; ++q) {
        if (q != p && conn[q] > 0) pairwise.add(p, q, conn[q]);
      }

      dfs(depth + 1, std::max<PartId>(parts_open, p + 1));

      for (PartId q = 0; q < k; ++q) {
        if (q != p && conn[q] > 0) pairwise.add(p, q, -conn[q]);
      }
      cut -= added_cut;
      loads[p] -= w;
      assign[u] = kUnassigned;
    }
  }
};

}  // namespace

ExactResult exact_min_cut(const Graph& g, PartId k, const Constraints& c,
                          const ExactOptions& options,
                          const support::StopToken* stop) {
  if (k <= 0) throw std::invalid_argument("exact_min_cut: k must be positive");
  if (g.num_nodes() > options.max_nodes) {
    throw std::invalid_argument(
        "exact_min_cut: instance larger than ExactOptions::max_nodes");
  }
  SearchState s;
  s.g = &g;
  s.k = k;
  s.c = c;
  s.options = options;
  s.stop = stop;
  s.assign.assign(g.num_nodes(), kUnassigned);
  s.loads.assign(static_cast<std::size_t>(k), 0);
  s.pairwise = PairwiseCut(k);
  s.order.resize(g.num_nodes());
  std::iota(s.order.begin(), s.order.end(), NodeId{0});
  // Heaviest-connectivity-first maximizes early pruning.
  std::sort(s.order.begin(), s.order.end(), [&](NodeId a, NodeId b) {
    const Weight ia = g.incident_weight(a), ib = g.incident_weight(b);
    if (ia != ib) return ia > ib;
    return a < b;
  });

  s.dfs(0, 0);

  ExactResult result;
  result.states_explored = s.states;
  result.seconds = s.timer.seconds();
  result.found = s.found;
  // A completed search is conclusive either way: optimum found, or proven
  // infeasible. Only a truncated search is inconclusive.
  result.optimal = !s.truncated;
  result.cut = s.found ? s.best_cut : 0;
  result.partition = Partition(g.num_nodes(), k);
  if (s.found) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      result.partition.set(u, s.best_assign[u]);
    }
  }
  return result;
}

ExactPartitioner::ExactPartitioner(ExactOptions options) : options_(options) {}

PartitionResult ExactPartitioner::run(const Graph& g,
                                      const PartitionRequest& request) {
  const ExactResult exact =
      exact_min_cut(g, request.k, request.constraints, options_, request.stop);
  if (!exact.found)
    throw std::runtime_error("Exact: no complete feasible assignment found");
  PartitionResult result;
  result.algorithm = name();
  result.partition = exact.partition;
  result.seconds = exact.seconds;
  result.finalize(g, request.constraints);
  return result;
}

}  // namespace ppnpart::part
