#include "support/fault_injection.hpp"

#include "support/prng.hpp"
#include "support/strings.hpp"

namespace ppnpart::support {

namespace {

/// One stateless SplitMix64 draw: the schedule must be a pure function of
/// (seed, site, index), not of a mutable stream.
std::uint64_t draw_hash(std::uint64_t seed, std::size_t site,
                        std::uint64_t index) {
  std::uint64_t state =
      seed ^ (0x9e3779b97f4a7c15ull * (site + 1)) ^ (index * 0xbf58476d1ce4e5b9ull);
  return splitmix64(state);
}

}  // namespace

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kCacheInsert: return "cache.insert";
    case FaultSite::kCoarsenLeader: return "coarsen.leader";
    case FaultSite::kMemberRun: return "member.run";
    case FaultSite::kPoolTask: return "pool.task";
    case FaultSite::kSimilarityVerify: return "sim.verify";
    case FaultSite::kCount: break;
  }
  return "?";
}

Result<FaultPlan> parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty() || spec == "off") {
    plan.site_mask = 0;
    return plan;
  }
  for (const std::string& pair : split(spec, ',')) {
    const std::string item(trim(pair));
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      return Result<FaultPlan>::error(
          StatusCode::kInvalidArgument,
          "faults: expected key=value, got '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      std::int64_t seed = 0;
      if (!parse_i64(value, seed) || seed < 0)
        return Result<FaultPlan>::error(StatusCode::kInvalidArgument,
                                        "faults: bad seed '" + value + "'");
      plan.seed = static_cast<std::uint64_t>(seed);
    } else if (key == "rate") {
      double rate = 0;
      if (!parse_f64(value, rate) || rate < 0 || !(rate <= 1e9))
        return Result<FaultPlan>::error(StatusCode::kInvalidArgument,
                                        "faults: bad rate '" + value + "'");
      plan.rate = rate;
    } else if (key == "sites") {
      if (value == "all") {
        plan.site_mask = (1u << kNumFaultSites) - 1;
        continue;
      }
      std::uint32_t mask = 0;
      for (const std::string& name : split(value, '+')) {
        bool known = false;
        for (std::size_t i = 0; i < kNumFaultSites; ++i) {
          if (name == to_string(static_cast<FaultSite>(i))) {
            mask |= 1u << i;
            known = true;
            break;
          }
        }
        if (!known)
          return Result<FaultPlan>::error(
              StatusCode::kInvalidArgument,
              "faults: unknown site '" + name +
                  "' (cache.insert, coarsen.leader, member.run, pool.task, "
                  "sim.verify)");
      }
      plan.site_mask = mask;
    } else {
      return Result<FaultPlan>::error(
          StatusCode::kInvalidArgument,
          "faults: unknown key '" + key + "' (seed, rate, sites)");
    }
  }
  return plan;
}

FaultInjector& FaultInjector::global() {
  // Leaked like ThreadPool::global(): pool tasks draining during static
  // destruction may still reach fault sites.
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::arm(const FaultPlan& plan) {
  seed_.store(plan.seed, std::memory_order_relaxed);
  if (plan.rate >= 1.0) {
    threshold_.store(~0ull, std::memory_order_relaxed);
  } else {
    threshold_.store(
        static_cast<std::uint64_t>(plan.rate * 18446744073709551616.0),
        std::memory_order_relaxed);
  }
  mask_.store(plan.site_mask, std::memory_order_relaxed);
  armed_.store(plan.site_mask != 0, std::memory_order_relaxed);
}

bool FaultInjector::should_fire(FaultSite site) {
  const std::size_t idx = static_cast<std::size_t>(site);
  PerSite& s = sites_[idx];
  s.checks.fetch_add(1, std::memory_order_relaxed);
  if ((mask_.load(std::memory_order_relaxed) & (1u << idx)) == 0) return false;
  const std::uint64_t index = s.draws.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t threshold = threshold_.load(std::memory_order_relaxed);
  const std::uint64_t hash =
      draw_hash(seed_.load(std::memory_order_relaxed), idx, index);
  const bool fire = threshold == ~0ull || hash < threshold;
  if (fire) s.fired.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

std::array<FaultInjector::SiteCounts, kNumFaultSites> FaultInjector::counts()
    const {
  std::array<SiteCounts, kNumFaultSites> out;
  for (std::size_t i = 0; i < kNumFaultSites; ++i) {
    out[i].checks = sites_[i].checks.load(std::memory_order_relaxed);
    out[i].fired = sites_[i].fired.load(std::memory_order_relaxed);
  }
  return out;
}

void FaultInjector::reset_counts() {
  for (PerSite& s : sites_) {
    s.draws.store(0, std::memory_order_relaxed);
    s.checks.store(0, std::memory_order_relaxed);
    s.fired.store(0, std::memory_order_relaxed);
  }
}

}  // namespace ppnpart::support
