// Transformation ablation: how much does process splitting extend the
// feasible region?
//
// Family: pipelines with one hot producer whose FIFO carries `hot_bw`
// while Bmax sweeps downward. For each tightness we report the fraction of
// instances GP maps feasibly (a) as-is, (b) with auto-split budgets 2 / 4 /
// 8. The paper's Section IV stops at "declare infeasible"; this bench shows
// how the PPN-manipulation techniques its abstract cites turn that verdict
// around.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "ppn/transform.hpp"
#include "support/strings.hpp"

namespace {

using namespace ppnpart;

/// A layered pipeline with `lanes` parallel lanes and one hot stage in the
/// middle lane whose output FIFO carries `hot_bw`.
using graph::Weight;

ppn::ProcessNetwork hot_lane_network(std::uint32_t lanes, Weight hot_bw,
                                     std::uint64_t seed) {
  support::Rng rng(seed);
  ppn::ProcessNetwork net("hot_lanes");
  const std::uint32_t mid = lanes / 2;
  std::vector<std::uint32_t> prev(lanes);
  // Both endpoints of the hot FIFO get resources 8 while Rmax lands around
  // total/3 ≈ 15, so the hot pair can never co-locate — the partitioner
  // *must* route the hot traffic over an inter-FPGA link.
  for (std::uint32_t l = 0; l < lanes; ++l) {
    prev[l] = net.add_process(support::str_format("src%u", l),
                              l == mid ? 8
                                       : 3 + static_cast<Weight>(
                                                 rng.uniform_index(2)),
                              100);
  }
  for (std::uint32_t stage = 0; stage < 3; ++stage) {
    for (std::uint32_t l = 0; l < lanes; ++l) {
      const bool hot_consumer = stage == 0 && l == mid;
      const bool hot_producer = stage == 1 && l == mid;
      const auto id = net.add_process(
          support::str_format("s%u_l%u", stage, l),
          hot_consumer || hot_producer
              ? 8
              : 3 + static_cast<Weight>(rng.uniform_index(2)),
          100);
      const bool hot_edge = hot_consumer || hot_producer;
      const Weight bw =
          hot_edge ? hot_bw : 2 + static_cast<Weight>(rng.uniform_index(4));
      net.add_channel(prev[l], id, bw, 100 * static_cast<std::uint64_t>(bw));
      prev[l] = id;
    }
  }
  return net;
}

}  // namespace

int main() {
  using namespace ppnpart;
  std::printf(
      "=== Auto-split ablation: feasibility vs Bmax tightness "
      "(hot FIFO = 40, K=4, 10 instances/row) ===\n");
  std::printf("%8s %10s %10s %10s %10s\n", "Bmax", "no-split", "budget=2",
              "budget=4", "budget=8");

  const Weight hot_bw = 40;
  for (Weight bmax : {48, 36, 24, 16, 12}) {
    std::printf("%8lld", static_cast<long long>(bmax));
    for (std::uint32_t budget : {0u, 2u, 4u, 8u}) {
      int feasible = 0;
      const int trials = 10;
      for (int t = 0; t < trials; ++t) {
        const ppn::ProcessNetwork net =
            hot_lane_network(3, hot_bw, 500 + static_cast<std::uint64_t>(t));
        part::Constraints c;
        c.bmax = bmax;
        c.rmax = net.total_resources() / 3;  // forces ~3+ FPGAs in use
        ppn::AutoSplitOptions options;
        options.max_splits = budget;
        options.seed = 900 + static_cast<std::uint64_t>(t);
        const ppn::AutoSplitReport report =
            ppn::auto_split_until_feasible(net, 4, c, options);
        feasible += report.feasible ? 1 : 0;
      }
      std::printf(" %9.0f%%", 100.0 * feasible / trials);
    }
    std::printf("\n");
  }
  return 0;
}
