#pragma once
// Process network model (PPN/KPN): processes with FPGA resource demands,
// directed FIFO channels with sustained bandwidths. This is the paper's
// application model — "each node (process) represents a potentially
// recurrent, potentially periodic task, while edges (channels) represent
// FIFOs between processes".

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace ppnpart::ppn {

using graph::Weight;

struct Process {
  std::string name;
  /// R_p — resources needed to implement the process on an FPGA (the paper
  /// tracks a single resource kind, e.g. LUTs).
  Weight resources = 1;
  /// Firings over one complete execution (drives the simulator).
  std::uint64_t firings = 1;
};

struct Channel {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  /// Sustained bandwidth (tokens per unit time) — the edge weight the
  /// partitioner sees.
  Weight bandwidth = 1;
  /// Total tokens over one complete execution (drives the simulator).
  std::uint64_t volume = 1;
  std::string label;
};

class ProcessNetwork {
 public:
  ProcessNetwork() = default;
  explicit ProcessNetwork(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  std::uint32_t add_process(Process p);
  std::uint32_t add_process(const std::string& name, Weight resources,
                            std::uint64_t firings = 1);
  /// Adds a FIFO src -> dst; src/dst must exist; self channels rejected.
  void add_channel(Channel c);
  void add_channel(std::uint32_t src, std::uint32_t dst, Weight bandwidth,
                   std::uint64_t volume = 0, std::string label = "");

  std::uint32_t num_processes() const {
    return static_cast<std::uint32_t>(processes_.size());
  }
  std::size_t num_channels() const { return channels_.size(); }

  const Process& process(std::uint32_t i) const { return processes_.at(i); }
  Process& process(std::uint32_t i) { return processes_.at(i); }
  const std::vector<Process>& processes() const { return processes_; }
  const std::vector<Channel>& channels() const { return channels_; }

  Weight total_resources() const;
  Weight total_bandwidth() const;

  /// Channels entering / leaving process i.
  std::vector<std::size_t> in_channels(std::uint32_t i) const;
  std::vector<std::size_t> out_channels(std::uint32_t i) const;

  /// Empty string when consistent.
  std::string validate() const;

 private:
  std::string name_;
  std::vector<Process> processes_;
  std::vector<Channel> channels_;
};

/// Undirected partitioning view: node weight = process resources, edge
/// weight = summed bandwidth of all channels between the pair (either
/// direction) — only traffic crossing a partition boundary consumes
/// inter-FPGA bandwidth, and it does so regardless of direction.
graph::Graph to_graph(const ProcessNetwork& network);

/// Inverse-ish convenience for generator-produced graphs: node i becomes
/// process "p<i>", each undirected edge one channel (lower id -> higher id).
ProcessNetwork from_graph(const graph::Graph& g, const std::string& name);

}  // namespace ppnpart::ppn
