#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "ppn/workloads.hpp"

namespace ppnpart::sim {
namespace {

using mapping::Mapping;
using mapping::Platform;
using part::Partition;

/// source -> worker -> sink chain, `tokens` firings each.
ppn::ProcessNetwork chain3(std::uint64_t tokens) {
  ppn::ProcessNetwork n("chain3");
  n.add_process("src", 10, tokens);
  n.add_process("mid", 10, tokens);
  n.add_process("dst", 10, tokens);
  n.add_channel(0, 1, 1, tokens);
  n.add_channel(1, 2, 1, tokens);
  return n;
}

Mapping split_mapping(const ppn::ProcessNetwork& n,
                      const std::vector<part::PartId>& assign,
                      part::PartId k) {
  Mapping m;
  m.partition = Partition(n.num_processes(), k);
  for (std::uint32_t i = 0; i < n.num_processes(); ++i) {
    m.partition.set(i, assign[i]);
  }
  m.device_of_part.resize(static_cast<std::size_t>(k));
  for (part::PartId p = 0; p < k; ++p) {
    m.device_of_part[static_cast<std::size_t>(p)] =
        static_cast<std::uint32_t>(p);
  }
  return m;
}

TEST(Simulator, SingleDeviceChainDrains) {
  const ppn::ProcessNetwork n = chain3(100);
  const SimStats stats = simulate_single_device(n);
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.firings[0], 100u);
  EXPECT_EQ(stats.firings[2], 100u);
  // Pipeline throughput approaches 1 firing/step (plus fill latency).
  EXPECT_GT(stats.sink_throughput, 0.8);
  EXPECT_TRUE(stats.links.empty());
}

TEST(Simulator, TokensConserved) {
  const ppn::ProcessNetwork n = chain3(50);
  const SimStats stats = simulate_single_device(n);
  // Every token produced is delivered: producer fired 50 times per channel.
  EXPECT_EQ(stats.tokens_delivered[0], 50u);
  EXPECT_EQ(stats.tokens_delivered[1], 50u);
}

TEST(Simulator, WideLinkKeepsThroughput) {
  const ppn::ProcessNetwork n = chain3(200);
  const Platform platform = Platform::all_to_all(2, 100, 10);
  const Mapping m = split_mapping(n, {0, 0, 1}, 2);
  const SimStats stats = simulate(n, m, platform);
  EXPECT_TRUE(stats.drained);
  EXPECT_GT(stats.sink_throughput, 0.8);
  ASSERT_EQ(stats.links.size(), 1u);
  EXPECT_EQ(stats.links[0].saturated_steps, 0u);
}

TEST(Simulator, SaturatedLinkThrottlesThroughput) {
  // Both sides exchange 2 tokens per firing (200 total); a capacity-1 link
  // sustains only half a firing per step, a capacity-4 link a full one.
  ppn::ProcessNetwork n("throttled");
  n.add_process("src", 10, 100);   // 100 firings x 2 tokens each
  n.add_process("dst", 10, 100);   // 100 firings x 2 tokens each
  ppn::Channel c;
  c.src = 0;
  c.dst = 1;
  c.bandwidth = 2;
  c.volume = 200;
  n.add_channel(c);
  const Platform narrow = Platform::all_to_all(2, 100, 1);
  const Platform wide = Platform::all_to_all(2, 100, 4);
  const Mapping m = split_mapping(n, {0, 1}, 2);
  SimOptions options;
  options.max_steps = 5000;
  const SimStats slow = simulate(n, m, narrow, options);
  const SimStats fast = simulate(n, m, wide, options);
  EXPECT_TRUE(slow.drained);  // slower, but it gets there
  EXPECT_TRUE(fast.drained);
  EXPECT_LT(slow.sink_throughput, 0.65 * fast.sink_throughput);
  ASSERT_EQ(slow.links.size(), 1u);
  EXPECT_GT(slow.links[0].saturated_steps, 50u);
  EXPECT_GT(slow.links[0].utilization, 0.9);
}

TEST(Simulator, BottleneckLinkHalvesThroughput) {
  // Two channels of bandwidth 1 share a capacity-1 link: each step only one
  // token crosses, so the sink pair sustains ~0.5 firings/step each.
  ppn::ProcessNetwork n("shared");
  n.add_process("src_a", 10, 200);
  n.add_process("src_b", 10, 200);
  n.add_process("dst_a", 10, 200);
  n.add_process("dst_b", 10, 200);
  n.add_channel(0, 2, 1, 200);
  n.add_channel(1, 3, 1, 200);
  const Platform narrow = Platform::all_to_all(2, 100, 1);
  const Platform wide = Platform::all_to_all(2, 100, 4);
  const Mapping m = split_mapping(n, {0, 0, 1, 1}, 2);
  SimOptions options;
  options.max_steps = 2000;
  const SimStats slow = simulate(n, m, narrow, options);
  const SimStats fast = simulate(n, m, wide, options);
  EXPECT_LT(slow.sink_throughput, 0.65 * fast.sink_throughput);
  ASSERT_EQ(slow.links.size(), 1u);
  EXPECT_GT(slow.links[0].saturated_steps, 100u);
  EXPECT_GT(slow.links[0].utilization, 0.9);
}

TEST(Simulator, MissingLinkDeadlocks) {
  const ppn::ProcessNetwork n = chain3(10);
  Platform platform("disconnected");
  platform.add_device({"a", 100});
  platform.add_device({"b", 100});
  // no link between a and b
  const Mapping m = split_mapping(n, {0, 0, 1}, 2);
  SimOptions options;
  options.max_steps = 5000;
  const SimStats stats = simulate(n, m, platform, options);
  EXPECT_FALSE(stats.drained);
  EXPECT_EQ(stats.firings[2], 0u);
  EXPECT_LT(stats.steps, 5000u);  // deadlock guard cuts the run short
}

TEST(Simulator, StallAccounting) {
  const ppn::ProcessNetwork n = chain3(50);
  const SimStats stats = simulate_single_device(n);
  // mid/dst starve during pipeline fill: at least a couple of stalls.
  EXPECT_GT(stats.input_starved_stalls, 0u);
}

TEST(Simulator, FifoCapacityBlocksProducer) {
  // Producer deposits 2 tokens/firing, consumer drains 1/firing: with a
  // 4-token FIFO the producer must repeatedly hit backpressure, pacing to
  // the consumer's rate, but the run still drains.
  ppn::ProcessNetwork n("backpressure");
  n.add_process("src", 10, 50);    // 50 firings x 2 tokens
  n.add_process("dst", 10, 100);   // 100 firings x 1 token
  n.add_channel(0, 1, 1, 100);
  SimOptions options;
  options.fifo_capacity = 4;
  options.max_steps = 1000;
  const SimStats stats = simulate_single_device(n, options);
  EXPECT_GT(stats.output_blocked_stalls, 0u);
  EXPECT_TRUE(stats.drained);
  EXPECT_NEAR(stats.tokens_delivered[0], 100.0, 1e-6);
}

TEST(Simulator, MjpegEndToEnd) {
  const ppn::ProcessNetwork n = ppn::mjpeg_network();
  SimOptions options;
  options.max_steps = 100'000;
  const SimStats stats = simulate_single_device(n, options);
  EXPECT_TRUE(stats.drained);
  EXPECT_GT(stats.sink_throughput, 0.0);
  EXPECT_EQ(stats.firings[9], 2048u);  // stream_out fires its full budget
}

TEST(Simulator, SummaryMentionsKeyFields) {
  const ppn::ProcessNetwork n = chain3(10);
  const SimStats stats = simulate_single_device(n);
  const std::string s = stats.summary();
  EXPECT_NE(s.find("steps="), std::string::npos);
  EXPECT_NE(s.find("sink_throughput="), std::string::npos);
}

}  // namespace
}  // namespace ppnpart::sim
