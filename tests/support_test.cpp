#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <stdexcept>
#include <thread>

#include "support/cli.hpp"
#include "support/prng.hpp"
#include "support/status.hpp"
#include "support/stop_token.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace ppnpart::support {
namespace {

// ---------------------------------------------------------------- PRNG ---

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformIndexInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::size_t v = rng.uniform_index(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(11);
  std::set<std::size_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_index(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIndexRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 10, kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.uniform_index(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(19);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, DeriveIsDeterministicAndIndependent) {
  Rng parent(42);
  Rng c1 = parent.derive(1);
  Rng c2 = parent.derive(1);
  Rng c3 = parent.derive(2);
  EXPECT_EQ(c1(), c2());
  // Deriving does not advance the parent.
  Rng parent2(42);
  EXPECT_EQ(parent(), parent2());
  // Different tags give different streams.
  Rng c1b = parent.derive(1);
  int equal = 0;
  for (int i = 0; i < 50; ++i) equal += c1b() == c3();
  EXPECT_LT(equal, 3);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(5);
  const auto p = rng.permutation(100);
  std::set<std::uint32_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(6);
  std::vector<int> v{1, 2, 3, 4, 5};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Splitmix, KnownNonZeroAndAdvancing) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

// --------------------------------------------------------- thread pool ---

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, 1000, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SizeDefaultsToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  // Force the parallel path: enough work per chunk, several chunks.
  EXPECT_THROW(
      parallel_for(
          pool, 0, 1000,
          [&](std::size_t i) {
            if (i == 500) throw std::runtime_error("boom");
          },
          1),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForDrainsAllChunksOnThrow) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  try {
    parallel_for(
        pool, 0, 1000,
        [&](std::size_t i) {
          if (i % 250 == 1) throw std::runtime_error("boom");
          ++executed;
        },
        1);
    FAIL() << "expected a throw";
  } catch (const std::runtime_error&) {
  }
  // Every non-throwing index in chunks before their chunk's throw point ran;
  // the key property is that no chunk was abandoned mid-flight (which would
  // have dangled the callable). 996 = 1000 - 4 throwing indices.
  EXPECT_LE(executed.load(), 996);
  EXPECT_GT(executed.load(), 0);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  // Outer fan-out saturates the pool; inner calls must degrade to serial
  // instead of queueing behind blocked workers.
  parallel_for(
      pool, 0, 8,
      [&](std::size_t) {
        parallel_for(pool, 0, 64, [&](std::size_t) { ++total; }, 1);
      },
      1);
  EXPECT_EQ(total.load(), 8 * 64);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++ran;
      });
    }
  }  // ~ThreadPool must run every queued task, not drop them
  EXPECT_EQ(ran.load(), 64);
}

// ----------------------------------------------------------- seed stream ---

TEST(SeedStream, IndexStableAndOrderIndependent) {
  SeedStream a(99), b(99);
  const std::uint64_t a5 = a.seed_for(5);
  // Drawing other streams first must not change stream 5.
  (void)b.seed_for(0);
  (void)b.seed_for(12345);
  EXPECT_EQ(b.seed_for(5), a5);
  // Stateful next() walks the same mapping.
  SeedStream c(99);
  EXPECT_EQ(c.next(), a.seed_for(0));
  EXPECT_EQ(c.next(), a.seed_for(1));
}

TEST(SeedStream, StreamsAreIndependent) {
  SeedStream s(7);
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(s.seed_for(i));
  EXPECT_EQ(seeds.size(), 1000u);  // no collisions among the first 1000

  // Child streams decorrelate: matching outputs should be ~chance.
  Rng r0(s.seed_for(0)), r1(s.seed_for(1));
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += r0() == r1();
  EXPECT_LT(equal, 3);
}

TEST(SeedStream, DifferentRootsDiverge) {
  SeedStream a(1), b(2);
  int equal = 0;
  for (std::uint64_t i = 0; i < 100; ++i) equal += a.seed_for(i) == b.seed_for(i);
  EXPECT_LT(equal, 3);
}

// ------------------------------------------------------------ stop token ---

TEST(StopToken, ManualStop) {
  StopToken token;
  EXPECT_FALSE(token.stop_requested());
  token.request_stop();
  EXPECT_TRUE(token.stop_requested());
}

TEST(StopToken, DeadlineFires) {
  StopToken token;
  token.set_deadline_after(0.01);
  EXPECT_TRUE(token.has_deadline());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(token.stop_requested());
  EXPECT_TRUE(token.deadline_expired());
}

TEST(StopToken, NoDeadlineNeverFires) {
  StopToken token;
  EXPECT_FALSE(token.has_deadline());
  EXPECT_FALSE(token.deadline_expired());
  EXPECT_FALSE(token.stop_requested());
}

TEST(StopToken, ParentStopPropagates) {
  StopToken parent, child;
  child.set_parent(&parent);
  EXPECT_FALSE(child.stop_requested());
  parent.request_stop();
  EXPECT_TRUE(child.stop_requested());
  // Child stops never flow upward.
  StopToken parent2, child2;
  child2.set_parent(&parent2);
  child2.request_stop();
  EXPECT_FALSE(parent2.stop_requested());
}

TEST(StopToken, LateArmingWhileWorkersPollIsSafe) {
  // The engine's submit path arms deadlines and parents on a token its
  // member tasks may already be polling; configuration is atomic, so this
  // must neither tear nor be missed. (Exercised under TSan/ASan in CI.)
  StopToken parent;
  StopToken token;
  std::atomic<bool> quit{false};
  std::atomic<bool> observed_stop{false};
  std::thread poller([&] {
    while (!quit.load()) {
      if (token.stop_requested()) observed_stop.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  token.set_deadline_after(3600.0);  // far future: arms, must not fire
  token.set_parent(&parent);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(observed_stop.load());
  EXPECT_TRUE(token.has_deadline());
  parent.request_stop();  // propagates through the late-linked parent
  // Wait for the poller to actually observe the stop instead of assuming a
  // fixed sleep suffices — under oversubscribed sanitizer CI the poller
  // thread can be starved for tens of milliseconds.
  for (int spin = 0; spin < 2000 && !observed_stop.load(); ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  quit.store(true);
  poller.join();
  EXPECT_TRUE(observed_stop.load());
  EXPECT_TRUE(token.stop_requested());
  EXPECT_FALSE(token.deadline_expired());
}

// -------------------------------------------------------------- strings ---

TEST(Strings, SplitBasic) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepEmpty) {
  const auto parts = split("a,,b", ',', true);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitWs) {
  const auto parts = split_ws("  1\t2 \n 3  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "1");
  EXPECT_EQ(parts[2], "3");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("  "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, StrFormat) {
  EXPECT_EQ(str_format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(str_format("%05.1f", 2.25), "002.2");
}

TEST(Strings, ParseI64) {
  std::int64_t v = 0;
  EXPECT_TRUE(parse_i64("-42", v));
  EXPECT_EQ(v, -42);
  EXPECT_TRUE(parse_i64(" 17 ", v));
  EXPECT_EQ(v, 17);
  EXPECT_FALSE(parse_i64("4x", v));
  EXPECT_FALSE(parse_i64("", v));
}

TEST(Strings, ParseF64) {
  double v = 0;
  EXPECT_TRUE(parse_f64("2.5", v));
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_FALSE(parse_f64("2.5 x", v));
}

TEST(Strings, WithThousands) {
  EXPECT_EQ(with_thousands(1234567), "1,234,567");
  EXPECT_EQ(with_thousands(-1000), "-1,000");
  EXPECT_EQ(with_thousands(999), "999");
  EXPECT_EQ(with_thousands(0), "0");
}

// ------------------------------------------------------------------ cli ---

TEST(Cli, ParsesTypedOptions) {
  ArgParser args("test");
  args.add_int("n", 10, "count");
  args.add_double("eps", 0.5, "tolerance");
  args.add_string("name", "x", "label");
  args.add_flag("verbose", "talk more");
  const char* argv[] = {"prog", "--n", "32", "--eps=0.25", "--verbose", "pos"};
  ASSERT_TRUE(args.parse(6, argv));
  EXPECT_EQ(args.get_int("n"), 32);
  EXPECT_DOUBLE_EQ(args.get_double("eps"), 0.25);
  EXPECT_EQ(args.get_string("name"), "x");
  EXPECT_TRUE(args.flag("verbose"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos");
}

TEST(Cli, RejectsUnknownOption) {
  ArgParser args;
  const char* argv[] = {"prog", "--bogus"};
  EXPECT_FALSE(args.parse(2, argv));
}

TEST(Cli, RejectsBadInt) {
  ArgParser args;
  args.add_int("n", 0, "");
  const char* argv[] = {"prog", "--n", "abc"};
  EXPECT_FALSE(args.parse(3, argv));
}

TEST(Cli, MissingValueIsError) {
  ArgParser args;
  args.add_int("n", 0, "");
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(args.parse(2, argv));
}

TEST(Cli, HelpRequested) {
  ArgParser args;
  args.add_int("n", 3, "count");
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(args.parse(2, argv));
  EXPECT_TRUE(args.help_requested());
  EXPECT_NE(args.help_text().find("--n"), std::string::npos);
}

// --------------------------------------------------------------- status ---

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(Status, ErrorCarriesMessage) {
  const Status s = Status::error("boom");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.message(), "boom");
}

TEST(Result, ValueAndError) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.value(), 7);
  EXPECT_EQ(ok.value_or(9), 7);

  Result<int> bad = Result<int>::error("nope");
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.message(), "nope");
  EXPECT_EQ(bad.value_or(9), 9);
}

TEST(Status, TypedCodesRoundTrip) {
  const Status s =
      Status::error(StatusCode::kResourceExhausted, "queue full");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.message(), "queue full");
  EXPECT_EQ(s.to_string(), "RESOURCE_EXHAUSTED: queue full");

  // The legacy untyped factory stays callable and maps to kInternal, so
  // old call sites keep compiling while new ones branch on the code.
  EXPECT_EQ(Status::error("boom").code(), StatusCode::kInternal);
  // An "error" may never smuggle kOk past is_ok() checks.
  EXPECT_NE(Status::error(StatusCode::kOk, "lying").code(), StatusCode::kOk);
  EXPECT_STREQ(to_string(StatusCode::kDeadlineExceeded), "DEADLINE_EXCEEDED");
  EXPECT_STREQ(to_string(StatusCode::kOk), "OK");
}

TEST(Result, TypedCodesPropagate) {
  const Result<int> bad =
      Result<int>::error(StatusCode::kUnavailable, "no file");
  EXPECT_EQ(bad.code(), StatusCode::kUnavailable);
  EXPECT_EQ(bad.status().code(), StatusCode::kUnavailable);
  const Result<int> ok(3);
  EXPECT_EQ(ok.code(), StatusCode::kOk);
}

TEST(Result, ValueOrMovesFromRvalueResults) {
  // A move-instrumented payload: value_or on an rvalue Result must move the
  // held value out, not copy it (the lvalue overload still copies).
  struct Probe {
    int copies = 0;
    int moves = 0;
    Probe() = default;
    Probe(const Probe& o) : copies(o.copies + 1), moves(o.moves) {}
    Probe(Probe&& o) noexcept : copies(o.copies), moves(o.moves + 1) {}
    Probe& operator=(const Probe&) = default;
    Probe& operator=(Probe&&) noexcept = default;
  };

  Result<Probe> lv(Probe{});
  const Probe copied = lv.value_or(Probe{});
  EXPECT_GE(copied.copies, 1);  // lvalue access keeps the stored value

  const Probe moved = Result<Probe>(Probe{}).value_or(Probe{});
  EXPECT_EQ(moved.copies, 0);  // rvalue access steals it — no copy at all

  // The fallback path is unaffected by the qualifier.
  const Probe fallback =
      Result<Probe>::error(StatusCode::kInternal, "x").value_or(Probe{});
  EXPECT_EQ(fallback.copies, 0);
}

// ---------------------------------------------------------------- timer ---

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(t.milliseconds(), 5.0);
  t.reset();
  EXPECT_LT(t.milliseconds(), 5.0);
}

TEST(Timer, ScopedAccumulator) {
  double sink = 0;
  {
    ScopedAccumulator acc(sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(sink, 0.0);
}

}  // namespace
}  // namespace ppnpart::support
