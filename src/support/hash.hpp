#pragma once
// 64-bit content-hashing helpers (header-only), shared by the engine's
// fingerprints and the partition layer's coarsening-cache keys.
//
// SplitMix64-mixed digests — not cryptographic, but with caches of a few
// thousand entries the collision probability (~2^-40) is far below the
// noise floor of a heuristic partitioner serving approximate answers.

#include <cstdint>
#include <string>
#include <vector>

#include "support/prng.hpp"

namespace ppnpart::support {

/// Order-sensitive 64-bit combine (SplitMix64 finalizer).
inline std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  std::uint64_t state = h ^ (v + 0x9e3779b97f4a7c15ull + (h << 12) + (h >> 4));
  return splitmix64(state);
}

inline std::uint64_t hash_string(std::uint64_t h, const std::string& s) {
  h = hash_combine(h, s.size());
  for (unsigned char c : s) h = hash_combine(h, c);
  return h;
}

template <typename T>
std::uint64_t hash_span(std::uint64_t h, const std::vector<T>& v) {
  h = hash_combine(h, v.size());
  for (const T& x : v) h = hash_combine(h, static_cast<std::uint64_t>(x));
  return h;
}

}  // namespace ppnpart::support
