#include "partition/metislike.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "graph/algorithms.hpp"
#include "partition/coarsen.hpp"
#include "partition/coarsen_cache.hpp"
#include "partition/initial.hpp"
#include "partition/parallel.hpp"
#include "partition/phase_profile.hpp"
#include "partition/refine.hpp"
#include "partition/workspace.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace ppnpart::part {

namespace {

constexpr const char* kTraceCat = "metislike";

/// Recursive bisection of `g` into parts [part_offset, part_offset + k);
/// writes into `assign` through `original_of` (ids of g's nodes in the
/// caller's graph).
void recursive_bisect(const Graph& g, const std::vector<NodeId>& original_of,
                      PartId k, PartId part_offset, double imbalance,
                      std::uint32_t fm_passes, support::Rng& rng,
                      std::vector<PartId>& assign, Workspace& ws) {
  if (k <= 1) {
    for (NodeId u = 0; u < g.num_nodes(); ++u)
      assign[original_of[u]] = part_offset;
    return;
  }
  const PartId k0 = k / 2;
  const PartId k1 = k - k0;
  const double fraction = static_cast<double>(k0) / static_cast<double>(k);
  const Weight total = g.total_node_weight();
  // METIS ufactor semantics: loads must stay <= (1+eps) * target, i.e. the
  // integer cap is the floor (never below the exact target rounded up).
  const auto side_cap = [&](double frac) {
    const double target = frac * static_cast<double>(total);
    return std::max(static_cast<Weight>(imbalance * target),
                    static_cast<Weight>(std::ceil(target)));
  };
  const Weight cap0 = side_cap(fraction);
  const Weight cap1 = side_cap(1.0 - fraction);

  Partition p = region_grow_bisection(g, fraction, rng);
  bisection_fm_refine(g, p, cap0, cap1, fm_passes, rng, ws);

  std::vector<NodeId> side0, side1;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    (p[u] == 0 ? side0 : side1).push_back(u);
  }
  // Degenerate splits (empty side) can happen on tiny graphs; fall back to
  // an arbitrary non-empty split so recursion terminates.
  if (side0.empty() || side1.empty()) {
    side0.clear();
    side1.clear();
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      (u % 2 == 0 ? side0 : side1).push_back(u);
    }
    if (side1.empty() && !side0.empty()) {
      side1.push_back(side0.back());
      side0.pop_back();
    }
  }

  auto recurse = [&](const std::vector<NodeId>& side, PartId sub_k,
                     PartId offset) {
    if (side.empty()) return;
    graph::Subgraph sub = graph::induced_subgraph(g, side);
    std::vector<NodeId> sub_original(side.size());
    for (std::size_t i = 0; i < side.size(); ++i) {
      sub_original[i] = original_of[side[i]];
    }
    recursive_bisect(sub.graph, sub_original, sub_k, offset, imbalance,
                     fm_passes, rng, assign, ws);
  };
  recurse(side0, k0, part_offset);
  recurse(side1, k1, part_offset + k0);
}

}  // namespace

MetisLikePartitioner::MetisLikePartitioner(MetisLikeOptions options)
    : options_(options) {
  if (options_.imbalance < 1.0)
    throw std::invalid_argument("MetisLike: imbalance must be >= 1");
}

PartitionResult MetisLikePartitioner::run(const Graph& g,
                                          const PartitionRequest& request) {
  if (request.k <= 0)
    throw std::invalid_argument("MetisLike: k must be positive");
  support::Timer timer;
  PartitionResult result;
  result.algorithm = name();
  const PartId k = request.k;
  support::Rng rng(request.seed);
  Workspace local_ws;
  Workspace& ws = request.workspace != nullptr ? *request.workspace : local_ws;
  WorkspaceLease lease(ws);
  PhaseContextScope<Workspace> phase_ctx(ws, request.phases, kTraceCat);

  support::ThreadPool& pool = support::ThreadPool::global();
  const ParallelOptions par =
      resolve_parallel(request.threads, request.deterministic, pool);

  // Under unit balance, partition a copy whose node weights are all 1 (edge
  // weights — the cut — are untouched); metrics are computed on the real
  // graph afterwards.
  const Graph* work = &g;
  Graph unit_graph;
  if (options_.unit_vertex_balance) {
    graph::GraphBuilder builder(g.num_nodes());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      auto nbrs = g.neighbors(u);
      auto wgts = g.edge_weights(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (u < nbrs[i]) builder.add_edge(u, nbrs[i], wgts[i]);
      }
    }
    unit_graph = builder.build();
    work = &unit_graph;
  }

  // --- Coarsening: heavy-edge matching only, like METIS defaults. --------
  CoarsenOptions coarsen_opts;
  coarsen_opts.strategies = {MatchingKind::kHeavyEdge};
  coarsen_opts.coarsen_to =
      options_.coarsen_to > 0
          ? options_.coarsen_to
          : std::max<NodeId>(40, static_cast<NodeId>(20 * k));
  Hierarchy local;
  std::shared_ptr<const Hierarchy> shared_h;
  if (request.coarsen_cache != nullptr) {
    PhaseScope phase(request.phases, PhaseProfile::kCoarsen, kTraceCat, -1,
                     static_cast<std::int64_t>(work->num_nodes()));
    // Unit-balance runs coarsen a rewritten graph: the caller's graph_key
    // names the original, so key the cache on the work graph's own digest.
    const std::uint64_t gkey = (work == &g && request.graph_key != 0)
                                   ? request.graph_key
                                   : graph_digest(*work);
    shared_h = request.coarsen_cache->hierarchy(gkey, coarsen_opts, *work);
  } else if (par.threads > 1) {
    local = parallel_coarsen(*work, coarsen_opts, par, ws, pool);
  } else {
    local = coarsen(*work, coarsen_opts, rng, ws);
  }
  const Hierarchy& h = shared_h ? *shared_h : local;

  // --- Initial partitioning: recursive bisection of the coarsest graph. --
  const Graph& coarsest = h.num_levels() == 1 ? *work : h.coarsest();
  std::vector<PartId> coarse_assign(coarsest.num_nodes(), 0);
  std::vector<NodeId> identity(coarsest.num_nodes());
  for (NodeId u = 0; u < coarsest.num_nodes(); ++u) identity[u] = u;
  {
    PhaseScope phase(request.phases, PhaseProfile::kInitial, kTraceCat,
                     static_cast<std::int64_t>(h.num_levels() - 1),
                     static_cast<std::int64_t>(coarsest.num_nodes()));
    recursive_bisect(coarsest, identity, k, 0, options_.imbalance,
                     options_.bisection_fm_passes, rng, coarse_assign, ws);
  }

  // --- Uncoarsening: project + greedy k-way boundary refinement. ---------
  const Weight total = work->total_node_weight();
  const double target = static_cast<double>(total) / std::max(1, k);
  // Floor of (1+eps)*target per METIS ufactor semantics, but never below
  // the exact target rounded up, and never below the heaviest node (a cap
  // smaller than one node would deadlock refinement entirely).
  Weight max_load =
      std::max(static_cast<Weight>(options_.imbalance * target),
               static_cast<Weight>(std::ceil(target)));
  max_load = std::max(max_load, work->max_node_weight());

  GreedyRefineOptions refine_opts;
  refine_opts.max_passes = options_.refine_passes;

  std::vector<PartId> assign = std::move(coarse_assign);
  for (std::size_t level = h.num_levels(); level-- > 0;) {
    // Level 0 of a cached hierarchy is empty; the work graph stands in.
    const Graph& level_graph = level == 0 ? *work : h.graphs[level];
    PhaseScope phase(request.phases, PhaseProfile::kRefine, kTraceCat,
                     static_cast<std::int64_t>(level),
                     static_cast<std::int64_t>(level_graph.num_nodes()));
    if (level + 1 < h.num_levels()) {
      std::vector<PartId> finer(level_graph.num_nodes());
      for (NodeId u = 0; u < level_graph.num_nodes(); ++u) {
        finer[u] = assign[h.maps[level][u]];
      }
      assign = std::move(finer);
    }
    Partition& p = ws.level_partition;
    p.reset(level_graph.num_nodes(), k);
    for (NodeId u = 0; u < level_graph.num_nodes(); ++u) p.set(u, assign[u]);
    support::Rng level_rng = rng.derive(0x3E71ull * (level + 1));
    if (par.threads > 1 && level_graph.num_nodes() >= par.min_parallel_nodes) {
      // Large level on the parallel path: the uniform max-load cap maps
      // onto the goodness resource budget (bandwidth unconstrained), so
      // parallel LP enforces exactly greedy_cut_refine's balance contract.
      Constraints lp_c;
      lp_c.rmax = max_load;
      LpRefineOptions lp;
      parallel_lp_refine(level_graph, p, lp_c, lp, par, ws, pool);
    } else {
      greedy_cut_refine(level_graph, p, max_load, refine_opts, level_rng, ws);
    }
    for (NodeId u = 0; u < level_graph.num_nodes(); ++u) assign[u] = p[u];
  }

  result.partition = Partition(g.num_nodes(), k);
  for (NodeId u = 0; u < g.num_nodes(); ++u) result.partition.set(u, assign[u]);
  result.finalize(g, request.constraints);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace ppnpart::part
