// Cross-module integration: workload derivation -> partitioning -> mapping
// -> simulation, plus GP-vs-MetisLike feasibility behaviour on random
// process networks (the paper's core claim, statistically).

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mapping/mapper.hpp"
#include "partition/exact.hpp"
#include "partition/gp.hpp"
#include "partition/metislike.hpp"
#include "ppn/workloads.hpp"
#include "sim/simulator.hpp"

namespace ppnpart {
namespace {

TEST(Integration, WorkloadToFeasibleMapping) {
  const ppn::ProcessNetwork network = ppn::make_workload("sobel", {32, 1});
  const graph::Graph g = ppn::to_graph(network);

  part::PartitionRequest request;
  request.k = 3;
  request.constraints.rmax = g.total_node_weight() / 2;
  request.constraints.bmax = g.total_edge_weight() / 2;
  request.seed = 5;

  part::GpPartitioner gp;
  const part::PartitionResult result = gp.run(g, request);
  ASSERT_TRUE(result.feasible);

  const mapping::Platform platform = mapping::Platform::all_to_all(
      3, request.constraints.rmax, request.constraints.bmax);
  const mapping::Mapping m =
      mapping::map_network(g, result.partition, platform);
  const mapping::MappingReport report =
      mapping::validate_mapping(g, m, platform);
  EXPECT_TRUE(report.feasible) << report.summary();

  // The mapped network must actually run.
  sim::SimOptions options;
  options.max_steps = 200'000;
  const sim::SimStats stats = sim::simulate(network, m, platform, options);
  EXPECT_TRUE(stats.drained);
}

TEST(Integration, GpFeasibleMappingOutperformsViolatingOne) {
  // The paper's motivation, end to end: a bandwidth-feasible mapping
  // sustains higher simulated throughput than a bandwidth-violating one of
  // the same network on the same platform.
  const ppn::ProcessNetwork network = ppn::mjpeg_network();
  const graph::Graph g = ppn::to_graph(network);
  const part::PartId k = 2;
  const graph::Weight rmax = 900;
  const graph::Weight bmax = 9;  // tight: zigzag->vle carries 16

  part::PartitionRequest request;
  request.k = k;
  request.constraints.rmax = rmax;
  request.constraints.bmax = bmax;
  request.seed = 3;
  const part::PartitionResult gp = part::GpPartitioner().run(g, request);

  part::MetisLikeOptions mopts;
  mopts.unit_vertex_balance = true;
  const part::PartitionResult metis =
      part::MetisLikePartitioner(mopts).run(g, request);

  const mapping::Platform platform =
      mapping::Platform::all_to_all(k, rmax, bmax);
  sim::SimOptions options;
  options.max_steps = 400'000;

  auto throughput = [&](const part::Partition& p) {
    mapping::Mapping m = mapping::map_network(g, p, platform);
    return sim::simulate(network, m, platform, options).sink_throughput;
  };

  if (gp.feasible && !metis.feasible) {
    EXPECT_GE(throughput(gp.partition), throughput(metis.partition));
  }
}

TEST(Integration, FeasibilityRateGpVsMetisLike) {
  // On random PNs with moderately tight constraints GP should find feasible
  // mappings far more often than the constraint-blind baseline.
  int gp_feasible = 0, metis_feasible = 0;
  const int kTrials = 10;
  for (int trial = 0; trial < kTrials; ++trial) {
    graph::ProcessNetworkParams params;
    params.num_nodes = 48;
    support::Rng rng(1000 + trial);
    const graph::Graph g = graph::random_process_network(params, rng);
    part::PartitionRequest request;
    request.k = 4;
    request.constraints.rmax =
        g.total_node_weight() / 4 + 2 * g.max_node_weight();
    request.constraints.bmax = g.total_edge_weight() / 7;
    request.seed = 17 + trial;
    gp_feasible += part::GpPartitioner().run(g, request).feasible;
    part::MetisLikeOptions mopts;
    metis_feasible +=
        part::MetisLikePartitioner(mopts).run(g, request).feasible;
  }
  EXPECT_GE(gp_feasible, metis_feasible);
  EXPECT_GE(gp_feasible, kTrials * 2 / 3)
      << "GP should solve most moderately-constrained instances";
}

TEST(Integration, GpCutNearExactOptimumOnSmallInstances) {
  // Quality guardrail: on exactly-solvable instances GP's feasible cut stays
  // within 1.5x of the constrained optimum.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    support::Rng rng(seed);
    const graph::Graph g =
        graph::erdos_renyi_gnm(12, 30, rng, {5, 20}, {1, 9});
    part::Constraints c;
    c.rmax = g.total_node_weight() / 3 + 15;
    c.bmax = g.total_edge_weight() / 4;
    const part::ExactResult exact = part::exact_min_cut(g, 3, c);
    if (!exact.found) continue;  // infeasible instance: nothing to compare
    part::PartitionRequest request;
    request.k = 3;
    request.constraints = c;
    request.seed = seed;
    const part::PartitionResult gp = part::GpPartitioner().run(g, request);
    ASSERT_TRUE(gp.feasible) << "seed " << seed;
    EXPECT_LE(gp.metrics.total_cut, exact.cut + exact.cut / 2 + 4)
        << "seed " << seed << ": GP " << gp.metrics.total_cut
        << " vs optimum " << exact.cut;
  }
}

TEST(Integration, AllWorkloadsPartitionUnderLooseConstraints) {
  for (const std::string& name : ppn::workload_names()) {
    const ppn::ProcessNetwork network = ppn::make_workload(name, {16, 3});
    const graph::Graph g = ppn::to_graph(network);
    if (g.num_nodes() < 2) continue;
    part::PartitionRequest request;
    request.k = 2;
    // "Loose" must still admit a feasible split when one process dominates
    // (conv2d's MAC array): with rmax >= max node weight, {heavy} vs
    // {rest} is always feasible.
    request.constraints.rmax =
        std::max((g.total_node_weight() * 3) / 4, g.max_node_weight());
    request.constraints.bmax = g.total_edge_weight();
    request.seed = 29;
    const part::PartitionResult result =
        part::GpPartitioner().run(g, request);
    EXPECT_TRUE(result.feasible) << name;
  }
}

}  // namespace
}  // namespace ppnpart
