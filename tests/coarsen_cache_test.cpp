// CoarseningCache: build-once/hit-after semantics, LRU bounding,
// single-flight coalescing of concurrent builds, exception propagation,
// and — the property the engine's determinism rests on — hit/miss
// equivalence: a partitioner run answers bit-identically whether its
// coarsening came fresh from the canonical stream or out of the cache.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "graph/generators.hpp"
#include "partition/coarsen_cache.hpp"
#include "partition/gp.hpp"
#include "partition/metislike.hpp"
#include "partition/nlevel.hpp"
#include "support/prng.hpp"

namespace ppnpart::part {
namespace {

graph::Graph make_graph(std::uint64_t seed, graph::NodeId nodes = 160) {
  graph::ProcessNetworkParams params;
  params.num_nodes = nodes;
  params.layers = std::max<std::uint32_t>(4, nodes / 12);
  support::Rng rng(seed);
  return graph::random_process_network(params, rng);
}

Hierarchy build_hierarchy(const graph::Graph& g, const CoarsenOptions& opts) {
  support::Rng rng(canonical_coarsen_seed(coarsen_options_digest(opts)));
  return coarsen(g, opts, rng);
}

TEST(CoarseningCache, HierarchyBuildsOnceThenHits) {
  const graph::Graph g = make_graph(1);
  const std::uint64_t key = graph_digest(g);
  CoarsenOptions opts;
  opts.coarsen_to = 40;

  CoarseningCache cache;
  int builds = 0;
  auto fetch = [&] {
    return cache.hierarchy(key, opts, [&] {
      ++builds;
      return build_hierarchy(g, opts);
    });
  };
  const auto first = fetch();
  const auto second = fetch();
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(first.get(), second.get());  // same shared artifact
  ASSERT_GE(first->num_levels(), 2u);    // 160 -> 40 really coarsened
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.insertions, 1u);
}

TEST(CoarseningCache, DistinctKeysDistinctEntries) {
  const graph::Graph g1 = make_graph(1);
  const graph::Graph g2 = make_graph(2);
  EXPECT_NE(graph_digest(g1), graph_digest(g2));

  CoarsenOptions a;
  a.coarsen_to = 40;
  CoarsenOptions b = a;
  b.coarsen_to = 80;
  EXPECT_NE(coarsen_options_digest(a), coarsen_options_digest(b));
  b = a;
  b.strategies = {MatchingKind::kHeavyEdge};
  EXPECT_NE(coarsen_options_digest(a), coarsen_options_digest(b));

  CoarseningCache cache;
  int builds = 0;
  auto fetch = [&](const graph::Graph& g, const CoarsenOptions& o) {
    return cache.hierarchy(graph_digest(g), o, [&] {
      ++builds;
      return build_hierarchy(g, o);
    });
  };
  fetch(g1, a);
  fetch(g1, b);  // same graph, different options: separate entry
  fetch(g2, a);  // same options, different graph: separate entry
  EXPECT_EQ(builds, 3);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(CoarseningCache, LruEvictionIsBounded) {
  const graph::Graph g = make_graph(3, 80);
  CoarsenOptions opts;
  opts.coarsen_to = 20;
  CoarseningCache cache(/*capacity=*/1);
  int builds = 0;
  auto fetch = [&](std::uint64_t key) {
    return cache.hierarchy(key, opts, [&] {
      ++builds;
      return build_hierarchy(g, opts);
    });
  };
  fetch(101);
  fetch(202);  // evicts 101
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  fetch(101);  // rebuilt
  EXPECT_EQ(builds, 3);
}

TEST(CoarseningCache, SingleFlightCoalescesConcurrentBuilds) {
  const graph::Graph g = make_graph(4, 120);
  CoarsenOptions opts;
  opts.coarsen_to = 30;
  CoarseningCache cache;
  std::atomic<int> builds{0};

  constexpr int kThreads = 8;
  std::vector<CoarseningCache::HierarchyPtr> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[t] = cache.hierarchy(7, opts, [&] {
        builds.fetch_add(1);
        // Hold the build open long enough that every other thread arrives
        // while it is in flight and must coalesce, not rebuild.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return build_hierarchy(g, opts);
      });
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(builds.load(), 1);
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(results[t].get(), results[0].get());
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(CoarseningCache, BuilderExceptionPropagatesAndIsNotCached) {
  CoarseningCache cache;
  CoarsenOptions opts;
  EXPECT_THROW(cache.hierarchy(9, opts,
                               []() -> Hierarchy {
                                 throw std::runtime_error("boom");
                               }),
               std::runtime_error);
  EXPECT_EQ(cache.size(), 0u);
  // The failed build must not poison the key: a later build succeeds.
  const graph::Graph g = make_graph(5, 60);
  const auto h = cache.hierarchy(9, opts, [&] { return build_hierarchy(g, opts); });
  EXPECT_GE(h->num_levels(), 1u);
}

// ------------------------------------------- hit/miss result equivalence ---

TEST(CoarseningCache, GpAnswersIdenticallyOnHitAndMiss) {
  const graph::Graph g = make_graph(6);
  PartitionRequest req;
  req.k = 4;
  req.seed = 99;
  req.constraints.rmax = g.total_node_weight();  // loose

  CoarseningCache cache;
  req.coarsen_cache = &cache;
  GpPartitioner gp;
  const auto miss_run = gp.run(g, req);   // builds the hierarchy
  const auto hit_run = gp.run(g, req);    // reuses it
  EXPECT_EQ(miss_run.partition.assignments(), hit_run.partition.assignments());

  // A fresh cache reproduces the same canonical hierarchy, so a different
  // process (or engine) answers identically too.
  CoarseningCache other;
  req.coarsen_cache = &other;
  const auto fresh_run = gp.run(g, req);
  EXPECT_EQ(miss_run.partition.assignments(),
            fresh_run.partition.assignments());
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST(CoarseningCache, MetisLikeAnswersIdenticallyOnHitAndMiss) {
  const graph::Graph g = make_graph(7);
  PartitionRequest req;
  req.k = 4;
  req.seed = 5;

  CoarseningCache cache;
  req.coarsen_cache = &cache;
  MetisLikePartitioner metis;
  const auto miss_run = metis.run(g, req);
  const auto hit_run = metis.run(g, req);
  EXPECT_EQ(miss_run.partition.assignments(), hit_run.partition.assignments());
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(CoarseningCache, NLevelCachedMatchesUncachedBitForBit) {
  // NLevel's heap coarsening is seed-independent, so the cached replay must
  // reproduce the uncached run exactly — cache on/off is unobservable.
  const graph::Graph g = make_graph(8, 120);
  PartitionRequest req;
  req.k = 3;
  req.seed = 12;

  NLevelPartitioner nlevel;
  const auto uncached = nlevel.run(g, req);

  CoarseningCache cache;
  req.coarsen_cache = &cache;
  const auto miss_run = nlevel.run(g, req);   // builds + records the sequence
  const auto replay_run = nlevel.run(g, req); // replays it, no heap
  EXPECT_EQ(uncached.partition.assignments(), miss_run.partition.assignments());
  EXPECT_EQ(uncached.partition.assignments(),
            replay_run.partition.assignments());
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

}  // namespace
}  // namespace ppnpart::part
