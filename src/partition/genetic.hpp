#pragma once
// Genetic-algorithm partitioner — the evolutionary family of related work
// (paper ref. [12], Bui & Moon, IEEE ToC 1996). Implemented as a memetic
// GA: every offspring is polished with a short constrained-FM pass, the
// standard recipe that makes GA partitioners competitive (pure bitstring
// GAs drown in the permutation symmetry of part labels).
//
// Representation  : assignment vector (node -> part).
// Fitness         : the lexicographic goodness (violations first, cut
//                   second) — individuals are compared directly, no scalar
//                   fitness needed.
// Selection       : tournament of `tournament_size`.
// Crossover       : per-node uniform inheritance after greedy part-label
//                   alignment (parent 2's labels are permuted to maximize
//                   agreement with parent 1, neutralizing label symmetry).
// Mutation        : each node reassigned with probability mutation_rate.
// Replacement     : elitist generational (the best `elites` survive).

#include <cstdint>

#include "partition/partitioner.hpp"
#include "support/prng.hpp"

namespace ppnpart::part {

struct GeneticOptions {
  std::uint32_t population = 24;
  std::uint32_t generations = 40;
  std::uint32_t tournament_size = 3;
  std::uint32_t elites = 2;
  double crossover_rate = 0.9;
  double mutation_rate = 0.02;   // per-node reassignment probability
  std::uint32_t polish_fm_passes = 2;
  /// Stop early after this many generations without incumbent improvement.
  std::uint32_t stall_generations = 12;
};

class GeneticPartitioner : public Partitioner {
 public:
  explicit GeneticPartitioner(GeneticOptions options = {});

  std::string name() const override { return "Genetic"; }
  PartitionResult run(const Graph& g, const PartitionRequest& request) override;

  const GeneticOptions& options() const { return options_; }

 private:
  GeneticOptions options_;
};

/// Greedy label alignment used by the crossover: returns a permutation
/// `perm` of parent-2 labels such that relabelling parent 2 by `perm`
/// maximizes per-node agreement with parent 1 (greedy on the k x k
/// agreement-count matrix). Exposed for testing.
std::vector<PartId> align_labels(const std::vector<PartId>& parent1,
                                 const std::vector<PartId>& parent2,
                                 PartId k);

}  // namespace ppnpart::part
