#include "partition/tabu.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "partition/initial.hpp"
#include "partition/move_context.hpp"
#include "support/timer.hpp"

namespace ppnpart::part {

bool tabu_refine(const Graph& g, Partition& p, const Constraints& c,
                 const TabuOptions& options, support::Rng& rng,
                 const support::StopToken* stop) {
  const NodeId n = g.num_nodes();
  const PartId k = p.k();
  if (n < 2 || k < 2) return false;

  MoveContext ctx(g, p, c);
  const Goodness initial = ctx.goodness();
  Goodness best = initial;
  std::vector<PartId> best_assign(p.assignments());

  const std::uint32_t tenure =
      options.tenure > 0
          ? options.tenure
          : std::max<std::uint32_t>(2, n / 10 + static_cast<std::uint32_t>(k));
  // tabu_until[u]: first iteration at which u may move again.
  std::vector<std::uint64_t> tabu_until(n, 0);

  const std::uint64_t max_iters =
      static_cast<std::uint64_t>(options.iterations_per_node) * n;
  std::uint32_t stall = 0;

  for (std::uint64_t iter = 0; iter < max_iters; ++iter) {
    if (stop != nullptr && stop->stop_requested()) break;
    // Candidate pool: the current boundary (interior nodes cannot change
    // the cut, and load-only moves are reachable once the boundary shifts).
    std::vector<NodeId> pool = ctx.boundary_nodes();
    if (ctx.goodness().resource_excess > 0) {
      // Over-capacity parts may need interior evictions too.
      const Constraints& cc = ctx.constraints();
      for (NodeId u = 0; u < n; ++u) {
        const PartId pu = ctx.part_of(u);
        if (!ctx.is_boundary(u) && ctx.load(pu) > cc.rmax_of(pu))
          pool.push_back(u);
      }
    }
    if (pool.empty()) break;
    if (options.candidate_sample > 0 &&
        pool.size() > options.candidate_sample) {
      // Partial Fisher-Yates: a random prefix of size candidate_sample.
      for (std::uint32_t i = 0; i < options.candidate_sample; ++i) {
        const std::size_t j =
            i + rng.uniform_index(pool.size() - i);
        std::swap(pool[i], pool[j]);
      }
      pool.resize(options.candidate_sample);
    }

    // Best admissible move: non-tabu, or tabu-but-aspirated (beats the
    // incumbent). Unlike FM there is no lock and no rollback: the chosen
    // move is applied unconditionally, worsening or not.
    NodeId pick = graph::kInvalidNode;
    PartId pick_target = kUnassigned;
    Goodness pick_after;
    for (NodeId u : pool) {
      auto cand = ctx.best_move(u);
      if (!cand) continue;
      const bool is_tabu = tabu_until[u] > iter;
      if (is_tabu && !(cand->after < best)) continue;  // aspiration gate
      if (pick == graph::kInvalidNode || cand->after < pick_after) {
        pick = u;
        pick_target = cand->target;
        pick_after = cand->after;
      }
    }
    if (pick == graph::kInvalidNode) break;  // everything tabu, no aspirant

    ctx.apply(pick, pick_target);
    tabu_until[pick] = iter + 1 + tenure;

    if (ctx.goodness() < best) {
      best = ctx.goodness();
      best_assign = ctx.partition().assignments();
      stall = 0;
    } else if (++stall >= options.stall_limit) {
      break;
    }
  }

  // Leave the partition at the best state visited, not the final walk state.
  for (NodeId u = 0; u < n; ++u) {
    if (ctx.part_of(u) != best_assign[u]) ctx.apply(u, best_assign[u]);
  }
  return best < initial;
}

TabuPartitioner::TabuPartitioner(TabuOptions options) : options_(options) {}

PartitionResult TabuPartitioner::run(const Graph& g,
                                     const PartitionRequest& request) {
  if (request.k <= 0) throw std::invalid_argument("Tabu: k must be positive");
  support::Timer timer;
  PartitionResult result;
  result.algorithm = name();

  GreedyGrowOptions grow;
  grow.restarts = 4;
  support::SeedStream seeds(request.seed);
  support::Rng grow_rng = seeds.rng_for(0);
  result.partition =
      greedy_grow_initial(g, request.k, request.constraints, grow, grow_rng);
  support::Rng walk_rng = seeds.rng_for(1);
  tabu_refine(g, result.partition, request.constraints, options_, walk_rng,
              request.stop);

  result.finalize(g, request.constraints);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace ppnpart::part
