#include "engine/fingerprint.hpp"

#include "support/prng.hpp"

namespace ppnpart::engine {

std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  std::uint64_t state = h ^ (v + 0x9e3779b97f4a7c15ull + (h << 12) + (h >> 4));
  return support::splitmix64(state);
}

std::uint64_t hash_string(std::uint64_t h, const std::string& s) {
  h = hash_combine(h, s.size());
  for (unsigned char c : s) h = hash_combine(h, c);
  return h;
}

namespace {

template <typename T>
std::uint64_t hash_span(std::uint64_t h, const std::vector<T>& v) {
  h = hash_combine(h, v.size());
  for (const T& x : v) h = hash_combine(h, static_cast<std::uint64_t>(x));
  return h;
}

}  // namespace

std::uint64_t graph_fingerprint(const graph::Graph& g) {
  std::uint64_t h = 0x67726170685f6670ull;  // "graph_fp"
  h = hash_span(h, g.xadj());
  h = hash_span(h, g.adj());
  h = hash_span(h, g.raw_edge_weights());
  h = hash_span(h, g.node_weights());
  return h;
}

std::uint64_t request_fingerprint(const part::PartitionRequest& r) {
  std::uint64_t h = 0x7265715f66707631ull;  // "req_fpv1"
  h = hash_combine(h, static_cast<std::uint64_t>(r.k));
  h = hash_combine(h, r.seed);
  h = hash_combine(h, static_cast<std::uint64_t>(r.constraints.rmax));
  h = hash_combine(h, static_cast<std::uint64_t>(r.constraints.bmax));
  h = hash_combine(h, r.constraints.rmax_per_part.size());
  for (const auto w : r.constraints.rmax_per_part)
    h = hash_combine(h, static_cast<std::uint64_t>(w));
  return h;
}

}  // namespace ppnpart::engine
