#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/spectral.hpp"

namespace ppnpart::part {
namespace {

TEST(Fiedler, SeparatesTwoCliques) {
  // Two 5-cliques joined by one light bridge: the Fiedler vector's sign
  // structure must separate them.
  const Graph g = graph::ring_of_cliques(2, 5, 10, 1);
  support::Rng rng(1);
  const std::vector<double> f = fiedler_vector(g, SpectralOptions{}, rng);
  ASSERT_EQ(f.size(), 10u);
  // All of clique 0 on one side of zero, all of clique 1 on the other.
  for (NodeId u = 1; u < 5; ++u) {
    EXPECT_GT(f[0] * f[u], 0) << "clique 0 split at node " << u;
  }
  for (NodeId u = 6; u < 10; ++u) {
    EXPECT_GT(f[5] * f[u], 0) << "clique 1 split at node " << u;
  }
  EXPECT_LT(f[0] * f[5], 0) << "cliques on the same side";
}

TEST(Fiedler, TinyGraphsReturnEmpty) {
  support::Rng rng(2);
  EXPECT_TRUE(fiedler_vector(Graph(), SpectralOptions{}, rng).empty());
  graph::GraphBuilder b(1);
  EXPECT_TRUE(fiedler_vector(b.build(), SpectralOptions{}, rng).empty());
}

TEST(SpectralPartitioner, CutsCliqueRingCleanly) {
  const Graph g = graph::ring_of_cliques(4, 6, 10, 1);
  SpectralPartitioner spectral;
  PartitionRequest r;
  r.k = 4;
  r.seed = 3;
  const PartitionResult result = spectral.run(g, r);
  EXPECT_TRUE(result.partition.complete());
  EXPECT_TRUE(result.partition.all_parts_nonempty());
  EXPECT_LE(result.metrics.total_cut, 8);  // near the 4-bridge optimum
}

TEST(SpectralPartitioner, BalancedOnUniformGraph) {
  support::Rng rng(4);
  const Graph g = graph::grid2d(8, 8);
  SpectralPartitioner spectral;
  PartitionRequest r;
  r.k = 2;
  r.seed = 5;
  const PartitionResult result = spectral.run(g, r);
  EXPECT_NEAR(result.metrics.imbalance, 1.0, 0.1);
  // A grid bisection should be around one grid side's worth of edges.
  EXPECT_LE(result.metrics.total_cut, 16);
}

TEST(SpectralPartitioner, HandlesOddK) {
  support::Rng rng(6);
  const Graph g = graph::erdos_renyi_gnm(40, 160, rng, {1, 4}, {1, 4});
  SpectralPartitioner spectral;
  PartitionRequest r;
  r.k = 3;
  r.seed = 7;
  const PartitionResult result = spectral.run(g, r);
  EXPECT_TRUE(result.partition.complete());
  EXPECT_TRUE(result.partition.all_parts_nonempty());
}

TEST(RandomPartitioner, CompleteAndRoughlyBalanced) {
  support::Rng rng(8);
  const Graph g = graph::erdos_renyi_gnm(100, 200, rng, {1, 3}, {1, 3});
  RandomPartitioner random;
  PartitionRequest r;
  r.k = 5;
  r.seed = 9;
  const PartitionResult result = random.run(g, r);
  EXPECT_TRUE(result.partition.complete());
  EXPECT_LT(result.metrics.imbalance, 1.25);
}

}  // namespace
}  // namespace ppnpart::part
