#pragma once
// Engine-facing aliases for the generic LRU cache.
//
// The cache implementation moved to support/lru_cache.hpp so the partition
// layer's CoarseningCache can share it without depending on the engine.
// Engine code and tests keep using engine::LruCache / engine::CacheStats.

#include "support/lru_cache.hpp"

namespace ppnpart::engine {

using CacheStats = support::CacheStats;

template <typename Value>
using LruCache = support::LruCache<Value>;

}  // namespace ppnpart::engine
