#include "graph/generators.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ppnpart::graph {

namespace {

Weight draw(WeightRange r, support::Rng& rng) {
  if (r.lo > r.hi) std::swap(r.lo, r.hi);
  return rng.uniform_int(r.lo, r.hi);
}

void assign_node_weights(GraphBuilder& builder, NodeId n, WeightRange node_w,
                         support::Rng& rng) {
  for (NodeId u = 0; u < n; ++u) builder.set_node_weight(u, draw(node_w, rng));
}

}  // namespace

Graph erdos_renyi_gnm(NodeId n, std::uint64_t m, support::Rng& rng,
                      WeightRange node_w, WeightRange edge_w) {
  GraphBuilder builder(n);
  assign_node_weights(builder, n, node_w, rng);
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  m = std::min(m, max_edges);
  std::set<std::pair<NodeId, NodeId>> chosen;
  while (chosen.size() < m) {
    NodeId u = static_cast<NodeId>(rng.uniform_index(n));
    NodeId v = static_cast<NodeId>(rng.uniform_index(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (chosen.insert({u, v}).second) {
      builder.add_edge(u, v, draw(edge_w, rng));
    }
  }
  return builder.build();
}

Graph random_geometric(NodeId n, double radius, support::Rng& rng,
                       WeightRange node_w, WeightRange edge_w) {
  GraphBuilder builder(n);
  assign_node_weights(builder, n, node_w, rng);
  std::vector<std::pair<double, double>> pts(n);
  for (auto& p : pts) p = {rng.uniform_real(), rng.uniform_real()};
  const double r2 = radius * radius;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double dx = pts[u].first - pts[v].first;
      const double dy = pts[u].second - pts[v].second;
      if (dx * dx + dy * dy <= r2) builder.add_edge(u, v, draw(edge_w, rng));
    }
  }
  return builder.build();
}

Graph preferential_attachment(NodeId n, std::uint32_t attach,
                              support::Rng& rng, WeightRange node_w,
                              WeightRange edge_w) {
  if (n == 0) return Graph();
  attach = std::max(1u, attach);
  GraphBuilder builder(n);
  assign_node_weights(builder, n, node_w, rng);
  // `targets` holds one entry per edge endpoint; sampling from it is
  // sampling proportional to degree.
  std::vector<NodeId> targets;
  const NodeId seed_nodes = std::min<NodeId>(n, attach + 1);
  for (NodeId u = 1; u < seed_nodes; ++u) {
    builder.add_edge(u, u - 1, draw(edge_w, rng));
    targets.push_back(u);
    targets.push_back(u - 1);
  }
  for (NodeId u = seed_nodes; u < n; ++u) {
    std::set<NodeId> picked;
    while (picked.size() < attach && picked.size() < u) {
      const NodeId t = targets[rng.uniform_index(targets.size())];
      picked.insert(t);
    }
    for (NodeId t : picked) {
      builder.add_edge(u, t, draw(edge_w, rng));
      targets.push_back(u);
      targets.push_back(t);
    }
  }
  return builder.build();
}

Graph random_process_network(const ProcessNetworkParams& params,
                             support::Rng& rng) {
  const NodeId n = params.num_nodes;
  if (n == 0) return Graph();
  const std::uint32_t layers = std::max(1u, std::min(params.layers, n));
  GraphBuilder builder(n);

  // Assign nodes round-robin to layers so each layer is populated.
  std::vector<std::uint32_t> layer_of(n);
  std::vector<std::vector<NodeId>> layer_nodes(layers);
  for (NodeId u = 0; u < n; ++u) {
    layer_of[u] = u % layers;
    layer_nodes[u % layers].push_back(u);
  }

  // Resource weights: uniform base with a scaled-up hub subset.
  for (NodeId u = 0; u < n; ++u) {
    Weight w = draw(params.resource, rng);
    if (rng.bernoulli(params.hub_fraction)) w *= 3;
    builder.set_node_weight(u, std::max<Weight>(w, 1));
  }

  // Pipeline spine: guarantees connectivity layer to layer.
  for (std::uint32_t l = 0; l + 1 < layers; ++l) {
    const NodeId a = layer_nodes[l][rng.uniform_index(layer_nodes[l].size())];
    const NodeId b =
        layer_nodes[l + 1][rng.uniform_index(layer_nodes[l + 1].size())];
    builder.add_edge(a, b, draw(params.bandwidth, rng));
  }
  // Connect every node to something in an adjacent layer.
  for (NodeId u = 0; u < n; ++u) {
    const std::uint32_t l = layer_of[u];
    const std::uint32_t tl = (l + 1 < layers) ? l + 1 : (l == 0 ? 0 : l - 1);
    if (tl == l) continue;
    const auto& pool = layer_nodes[tl];
    const NodeId v = pool[rng.uniform_index(pool.size())];
    if (v != u) builder.add_edge(u, v, draw(params.bandwidth, rng));
  }
  // Forward edges up to the requested average degree.
  const std::uint64_t extra = static_cast<std::uint64_t>(
      std::max(0.0, params.forward_degree - 1.0) * n);
  for (std::uint64_t i = 0; i < extra; ++i) {
    const NodeId u = static_cast<NodeId>(rng.uniform_index(n));
    const std::uint32_t l = layer_of[u];
    std::uint32_t tl;
    if (rng.bernoulli(params.skip_probability) && l + 2 < layers) {
      tl = l + 2 + static_cast<std::uint32_t>(
                       rng.uniform_index(layers - l - 2));
    } else if (l + 1 < layers) {
      tl = l + 1;
    } else {
      continue;
    }
    const auto& pool = layer_nodes[tl];
    const NodeId v = pool[rng.uniform_index(pool.size())];
    if (v != u) builder.add_edge(u, v, draw(params.bandwidth, rng));
  }
  return builder.build();
}

Graph streamed_process_network(const ProcessNetworkParams& params,
                               support::Rng& rng) {
  const NodeId n = params.num_nodes;
  if (n == 0) return Graph();
  const std::uint32_t layers =
      std::max<std::uint32_t>(1, std::min<NodeId>(params.layers, n));
  // Contiguous layer blocks: layer l is [floor(n*l/L), floor(n*(l+1)/L)),
  // so later layers hold strictly larger node ids and layer_of inverts
  // layer_begin exactly.
  const auto layer_begin = [n, layers](std::uint32_t l) {
    return static_cast<NodeId>(static_cast<std::uint64_t>(n) * l / layers);
  };
  const auto layer_of = [n, layers](NodeId u) {
    return static_cast<std::uint32_t>(static_cast<std::uint64_t>(u) * layers /
                                      n);
  };

  const double extra_mean = std::max(0.0, params.forward_degree - 1.0);
  const auto extra_base = static_cast<std::uint32_t>(extra_mean);
  const double extra_frac = extra_mean - extra_base;

  // One deterministic pass over the per-node stream. Both invocations run
  // from the same Rng state, so every draw (weights, picks, dedup retries)
  // replays identically; the sinks are the only difference between the
  // count pass and the fill pass.
  std::vector<NodeId> picked;  // u's accepted targets, for local dedup
  auto stream = [&](support::Rng& r, auto&& node_sink, auto&& edge_sink) {
    for (NodeId u = 0; u < n; ++u) {
      Weight w = draw(params.resource, r);
      if (r.bernoulli(params.hub_fraction)) w *= 3;
      node_sink(u, std::max<Weight>(w, 1));

      picked.clear();
      const std::uint32_t l = layer_of(u);
      // Emits one channel u—v with v drawn uniformly from [lo, hi)∖{u},
      // dropped on a duplicate after a few bounded retries (identical
      // decisions either pass). Every edge leaves from its higher-id
      // endpoint, so cross-node duplicates cannot exist.
      const auto emit_to = [&](NodeId lo, NodeId hi) {
        for (int attempt = 0; attempt < 4; ++attempt) {
          const NodeId v =
              lo + static_cast<NodeId>(r.uniform_index(hi - lo));
          if (v == u) return;  // l == 0 range is [0, u); defensive
          if (std::find(picked.begin(), picked.end(), v) != picked.end())
            continue;
          picked.push_back(v);
          edge_sink(u, v, draw(params.bandwidth, r));
          return;
        }
      };

      if (u == 0) continue;
      // Parent channel: previous layer (or an earlier node inside layer 0)
      // — connectivity by induction on node id.
      if (l > 0)
        emit_to(layer_begin(l - 1), layer_begin(l));
      else
        emit_to(0, u);
      // Extra channels: one layer back, or a longer skip.
      std::uint32_t extras = extra_base;
      if (extra_frac > 0.0 && r.bernoulli(extra_frac)) ++extras;
      for (std::uint32_t i = 0; i < extras; ++i) {
        std::uint32_t tl;
        if (l >= 2 && r.bernoulli(params.skip_probability))
          tl = static_cast<std::uint32_t>(r.uniform_index(l - 1));
        else if (l >= 1)
          tl = l - 1;
        else
          continue;
        emit_to(layer_begin(tl), layer_begin(tl + 1));
      }
    }
  };

  // Pass 1 (copy of the caller's stream): node weights and degrees.
  std::vector<Weight> vwgt(n, 1);
  std::vector<std::uint64_t> xadj(static_cast<std::size_t>(n) + 1, 0);
  {
    support::Rng count_rng = rng;
    stream(
        count_rng, [&](NodeId u, Weight w) { vwgt[u] = w; },
        [&](NodeId u, NodeId v, Weight) {
          ++xadj[u + 1];
          ++xadj[v + 1];
        });
  }
  for (NodeId u = 0; u < n; ++u) xadj[u + 1] += xadj[u];

  // Pass 2 (advances the caller's stream): fill both CSR directions.
  std::vector<NodeId> adj(xadj[n]);
  std::vector<Weight> ewgt(xadj[n]);
  {
    std::vector<std::uint64_t> cursor(xadj.begin(), xadj.end() - 1);
    stream(
        rng, [](NodeId, Weight) {},
        [&](NodeId u, NodeId v, Weight w) {
          adj[cursor[u]] = v;
          ewgt[cursor[u]++] = w;
          adj[cursor[v]] = u;
          ewgt[cursor[v]++] = w;
        });
  }
  // Per-node insertion sort (degrees are small) to meet the strictly-sorted
  // adjacency invariant.
  for (NodeId u = 0; u < n; ++u) {
    const std::uint64_t b = xadj[u], e = xadj[u + 1];
    for (std::uint64_t i = b + 1; i < e; ++i) {
      const NodeId a = adj[i];
      const Weight w = ewgt[i];
      std::uint64_t j = i;
      for (; j > b && adj[j - 1] > a; --j) {
        adj[j] = adj[j - 1];
        ewgt[j] = ewgt[j - 1];
      }
      adj[j] = a;
      ewgt[j] = w;
    }
  }
  return Graph(std::move(xadj), std::move(adj), std::move(ewgt),
               std::move(vwgt));
}

Graph ring_of_cliques(std::uint32_t cliques, std::uint32_t clique_size,
                      Weight intra_weight, Weight inter_weight) {
  if (cliques == 0 || clique_size == 0) return Graph();
  const NodeId n = cliques * clique_size;
  GraphBuilder builder(n);
  for (std::uint32_t c = 0; c < cliques; ++c) {
    const NodeId base = c * clique_size;
    for (std::uint32_t i = 0; i < clique_size; ++i) {
      for (std::uint32_t j = i + 1; j < clique_size; ++j) {
        builder.add_edge(base + i, base + j, intra_weight);
      }
    }
  }
  if (cliques > 1) {
    for (std::uint32_t c = 0; c < cliques; ++c) {
      const NodeId a = c * clique_size;                       // first of clique c
      const NodeId b = ((c + 1) % cliques) * clique_size + 1 % clique_size;
      if (a != b) builder.add_edge(a, b, inter_weight);
    }
  }
  return builder.build();
}

Graph grid2d(std::uint32_t rows, std::uint32_t cols, WeightRange node_w,
             WeightRange edge_w, support::Rng* rng) {
  support::Rng fallback(42);
  support::Rng& r = rng != nullptr ? *rng : fallback;
  const NodeId n = rows * cols;
  GraphBuilder builder(n);
  assign_node_weights(builder, n, node_w, r);
  auto id = [cols](std::uint32_t i, std::uint32_t j) {
    return static_cast<NodeId>(i * cols + j);
  };
  for (std::uint32_t i = 0; i < rows; ++i) {
    for (std::uint32_t j = 0; j < cols; ++j) {
      if (j + 1 < cols) builder.add_edge(id(i, j), id(i, j + 1), draw(edge_w, r));
      if (i + 1 < rows) builder.add_edge(id(i, j), id(i + 1, j), draw(edge_w, r));
    }
  }
  return builder.build();
}

}  // namespace ppnpart::graph
