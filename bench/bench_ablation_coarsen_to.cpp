// Ablation: the coarsening stop size ("for example 100 nodes -- this is a
// parameter in our implementation", Section IV-A). Smaller coarsest graphs
// give the greedy initial partitioning a more global view but lose detail;
// larger ones cost time.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace ppnpart;

  bench::InstanceFamily family;
  family.nodes = 2000;
  family.k = 4;
  family.resource_slack = 1.2;
  family.bandwidth_slack = 1.3;
  const int kInstances = 4;

  bench::print_header(
      "Ablation: coarsen_to stop size (GP, 4 PN instances, n=2000, K=4)",
      "coarsen_to   feasible    mean-cut    mean-time");
  for (graph::NodeId target : {25u, 50u, 100u, 200u, 400u, 800u}) {
    part::GpOptions options;
    options.coarsen_to = target;
    options.max_cycles = 6;
    bench::RunSummary summary;
    for (int i = 0; i < kInstances; ++i) {
      const auto inst = family.make(i);
      part::GpPartitioner gp(options);
      summary.add(gp.run(inst.graph, inst.request));
    }
    std::printf("%10u %6d/%-4d %11.1f %10.3fs\n", target, summary.feasible,
                summary.total, summary.mean_cut(), summary.mean_seconds());
  }
  return 0;
}
