// Property-based sweeps over random instances: the invariants every
// partitioner and transformation in the library must satisfy, checked over a
// grid of (seed, k) parameters.

#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.hpp"
#include "partition/coarsen.hpp"
#include "partition/gp.hpp"
#include "partition/initial.hpp"
#include "partition/metislike.hpp"
#include "partition/spectral.hpp"

namespace ppnpart::part {
namespace {

using Param = std::tuple<std::uint64_t, PartId>;

class PartitionerInvariants : public ::testing::TestWithParam<Param> {
 protected:
  Graph make_graph() const {
    graph::ProcessNetworkParams params;
    params.num_nodes = 72;
    support::Rng rng(std::get<0>(GetParam()));
    return graph::random_process_network(params, rng);
  }
  PartitionRequest make_request(const Graph& g) const {
    PartitionRequest r;
    r.k = std::get<1>(GetParam());
    r.constraints.rmax =
        g.total_node_weight() / r.k + 2 * g.max_node_weight();
    r.constraints.bmax = g.total_edge_weight() / r.k;
    r.seed = std::get<0>(GetParam()) * 13 + 1;
    return r;
  }
};

TEST_P(PartitionerInvariants, GpResultConsistent) {
  const Graph g = make_graph();
  const PartitionRequest r = make_request(g);
  const PartitionResult result = GpPartitioner().run(g, r);
  // Complete assignment into [0, k).
  ASSERT_TRUE(result.partition.complete());
  EXPECT_EQ(result.partition.size(), g.num_nodes());
  // Reported metrics must equal recomputed metrics.
  const PartitionMetrics m = compute_metrics(g, result.partition);
  EXPECT_EQ(result.metrics.total_cut, m.total_cut);
  EXPECT_EQ(result.metrics.max_load, m.max_load);
  EXPECT_EQ(result.metrics.max_pairwise_cut, m.max_pairwise_cut);
  // Feasible flag must agree with the violation struct.
  const Violation v = compute_violation(m, r.constraints);
  EXPECT_EQ(result.feasible, v.feasible());
  // Pairwise cut sums to the global cut.
  EXPECT_EQ(m.pairwise.total(), m.total_cut);
  // If feasible, the constraints genuinely hold.
  if (result.feasible) {
    EXPECT_LE(m.max_load, r.constraints.rmax);
    EXPECT_LE(m.max_pairwise_cut, r.constraints.bmax);
  }
}

TEST_P(PartitionerInvariants, MetisLikeResultConsistent) {
  const Graph g = make_graph();
  const PartitionRequest r = make_request(g);
  const PartitionResult result = MetisLikePartitioner().run(g, r);
  ASSERT_TRUE(result.partition.complete());
  const PartitionMetrics m = compute_metrics(g, result.partition);
  EXPECT_EQ(result.metrics.total_cut, m.total_cut);
  // Cut never exceeds total edge weight.
  EXPECT_LE(m.total_cut, g.total_edge_weight());
  // Loads sum to the graph's weight.
  Weight sum = 0;
  for (Weight load : m.loads) sum += load;
  EXPECT_EQ(sum, g.total_node_weight());
}

TEST_P(PartitionerInvariants, SpectralResultConsistent) {
  const Graph g = make_graph();
  const PartitionRequest r = make_request(g);
  const PartitionResult result = SpectralPartitioner().run(g, r);
  ASSERT_TRUE(result.partition.complete());
  EXPECT_TRUE(result.partition.all_parts_nonempty());
}

TEST_P(PartitionerInvariants, GpNeverWorseThanItsOwnInitial) {
  const Graph g = make_graph();
  const PartitionRequest r = make_request(g);
  support::Rng rng(r.seed);
  const Partition initial = greedy_grow_initial(
      g, r.k, r.constraints, GreedyGrowOptions{}, rng);
  const Goodness initial_goodness =
      compute_goodness(g, initial, r.constraints);
  const PartitionResult refined = GpPartitioner().run(g, r);
  const Goodness final_goodness =
      compute_goodness(g, refined.partition, r.constraints);
  EXPECT_FALSE(initial_goodness < final_goodness)
      << "the full pipeline must not be worse than the bare initial";
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndK, PartitionerInvariants,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values<PartId>(2, 4, 6)));

// ---------------------------------------------------------- coarsening ---

class HierarchyInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HierarchyInvariants, EveryLevelConserves) {
  support::Rng rng(GetParam());
  const Graph g = graph::erdos_renyi_gnm(400, 1500, rng, {1, 9}, {1, 9});
  CoarsenOptions options;
  options.coarsen_to = 30;
  support::Rng crng(GetParam() * 3 + 1);
  const Hierarchy h = coarsen(g, options, crng);
  for (std::size_t level = 0; level + 1 < h.num_levels(); ++level) {
    const Graph& fine = h.graphs[level];
    const Graph& coarse = h.graphs[level + 1];
    EXPECT_EQ(fine.total_node_weight(), coarse.total_node_weight());
    EXPECT_GE(fine.total_edge_weight(), coarse.total_edge_weight());
    EXPECT_TRUE(coarse.validate().empty());
    // Map is total and within range.
    ASSERT_EQ(h.maps[level].size(), fine.num_nodes());
    for (NodeId u = 0; u < fine.num_nodes(); ++u) {
      EXPECT_LT(h.maps[level][u], coarse.num_nodes());
    }
  }
}

TEST_P(HierarchyInvariants, ProjectedCutMatchesCoarseCut) {
  // A partition of the coarse graph, projected to the fine graph, has
  // exactly the same cut: contraction only hides intra-pair edges.
  support::Rng rng(GetParam() + 31);
  const Graph g = graph::erdos_renyi_gnm(300, 1000, rng, {1, 9}, {1, 9});
  CoarsenOptions options;
  options.coarsen_to = 40;
  support::Rng crng(GetParam() * 7 + 3);
  const Hierarchy h = coarsen(g, options, crng);
  const Graph& coarsest = h.coarsest();
  support::Rng prng(GetParam() * 11 + 5);
  Partition coarse_p = random_balanced_partition(coarsest, 4, prng);
  std::vector<PartId> coarse_assign(coarsest.num_nodes());
  for (NodeId u = 0; u < coarsest.num_nodes(); ++u) {
    coarse_assign[u] = coarse_p[u];
  }
  const std::vector<PartId> fine_assign = h.project_to_level(coarse_assign, 0);
  Partition fine_p(g.num_nodes(), 4);
  for (NodeId u = 0; u < g.num_nodes(); ++u) fine_p.set(u, fine_assign[u]);

  const PartitionMetrics coarse_m = compute_metrics(coarsest, coarse_p);
  const PartitionMetrics fine_m = compute_metrics(g, fine_p);
  EXPECT_EQ(coarse_m.total_cut, fine_m.total_cut);
  EXPECT_EQ(coarse_m.max_load, fine_m.max_load);
  EXPECT_EQ(coarse_m.max_pairwise_cut, fine_m.max_pairwise_cut);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchyInvariants,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ------------------------------------------------------------- ordering ---

TEST(GoodnessProperty, TotalOrderOnSamples) {
  // Transitivity + antisymmetry spot check over a sample set.
  std::vector<Goodness> samples;
  for (Weight r : {0, 1, 5}) {
    for (Weight b : {0, 2}) {
      for (Weight c : {0, 10, 100}) samples.push_back({r, b, c});
    }
  }
  for (const Goodness& a : samples) {
    EXPECT_FALSE(a < a);
    for (const Goodness& b : samples) {
      EXPECT_FALSE(a < b && b < a);
      for (const Goodness& c : samples) {
        if (a < b && b < c) EXPECT_TRUE(a < c);
      }
    }
  }
}

}  // namespace
}  // namespace ppnpart::part
