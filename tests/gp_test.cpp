#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/gp.hpp"
#include "ppn/paper_instances.hpp"

namespace ppnpart::part {
namespace {

PartitionRequest request_for(const ppn::PaperInstance& inst,
                             std::uint64_t seed) {
  PartitionRequest r;
  r.k = inst.k;
  r.constraints = inst.constraints;
  r.seed = seed;
  return r;
}

TEST(Gp, FeasibleOnAllPaperInstances) {
  GpPartitioner gp;
  for (int i = 1; i <= 3; ++i) {
    const ppn::PaperInstance inst = ppn::paper_instance(i);
    const PartitionResult result = gp.run(inst.graph, request_for(inst, 7));
    EXPECT_TRUE(result.feasible) << "instance " << i;
    EXPECT_LE(result.metrics.max_load, inst.constraints.rmax);
    EXPECT_LE(result.metrics.max_pairwise_cut, inst.constraints.bmax);
  }
}

TEST(Gp, DeterministicGivenSeed) {
  const ppn::PaperInstance inst = ppn::paper_instance(1);
  GpPartitioner gp;
  const PartitionResult a = gp.run(inst.graph, request_for(inst, 11));
  const PartitionResult b = gp.run(inst.graph, request_for(inst, 11));
  EXPECT_EQ(a.partition.assignments(), b.partition.assignments());
}

TEST(Gp, UnconstrainedRunMinimizesCut) {
  // Ring of cliques: the natural k-way split cuts only the ring bridges.
  const Graph g = graph::ring_of_cliques(4, 6, 10, 1);
  GpPartitioner gp;
  PartitionRequest r;
  r.k = 4;
  r.seed = 3;
  const PartitionResult result = gp.run(g, r);
  EXPECT_TRUE(result.feasible);  // no constraints => trivially feasible
  EXPECT_LE(result.metrics.total_cut, 4);  // the 4 ring bridges
}

TEST(Gp, MultilevelPathOnLargerGraph) {
  graph::ProcessNetworkParams params;
  params.num_nodes = 600;  // > coarsen_to => real hierarchy
  support::Rng rng(5);
  const Graph g = graph::random_process_network(params, rng);
  GpPartitioner gp;
  PartitionRequest r;
  r.k = 4;
  r.constraints.rmax = g.total_node_weight() / 4 +
                       4 * g.max_node_weight();
  r.constraints.bmax = g.total_edge_weight();  // loose
  r.seed = 9;
  const GpResult result = gp.run_detailed(g, r);
  EXPECT_TRUE(result.partition.complete());
  EXPECT_TRUE(result.feasible);
  // The trace must show actual coarsening levels.
  bool saw_coarse_level = false;
  for (const GpLevelTrace& t : result.trace) {
    if (t.nodes < 600) saw_coarse_level = true;
  }
  EXPECT_TRUE(saw_coarse_level);
}

TEST(Gp, ReportsInfeasibleWhenImpossible) {
  // Total weight 40 across k=2 parts with Rmax 15: impossible.
  graph::GraphBuilder b(4);
  for (graph::NodeId u = 0; u < 4; ++u) b.set_node_weight(u, 10);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 3, 1);
  const Graph g = b.build();
  GpOptions options;
  options.max_cycles = 3;
  GpPartitioner gp(options);
  PartitionRequest r;
  r.k = 2;
  r.constraints.rmax = 15;
  r.seed = 1;
  const PartitionResult result = gp.run(g, r);
  EXPECT_FALSE(result.feasible);
  EXPECT_TRUE(result.partition.complete());  // still returns best effort
  EXPECT_GT(result.violation.resource_excess, 0);
}

TEST(Gp, StopsEarlyWhenFeasible) {
  const ppn::PaperInstance inst = ppn::paper_instance(2);
  GpOptions options;
  options.max_cycles = 16;
  options.extra_cycles_after_feasible = 0;
  GpPartitioner gp(options);
  const GpResult result =
      gp.run_detailed(inst.graph, request_for(inst, 7));
  EXPECT_TRUE(result.feasible);
  EXPECT_LT(result.cycles_used, 16u);
}

TEST(Gp, ExtraCyclesImproveOrKeepCut) {
  const ppn::PaperInstance inst = ppn::paper_instance(2);
  GpOptions eager;
  eager.extra_cycles_after_feasible = 0;
  GpOptions patient;
  patient.extra_cycles_after_feasible = 4;
  const PartitionResult quick =
      GpPartitioner(eager).run(inst.graph, request_for(inst, 21));
  const PartitionResult polished =
      GpPartitioner(patient).run(inst.graph, request_for(inst, 21));
  ASSERT_TRUE(quick.feasible);
  ASSERT_TRUE(polished.feasible);
  EXPECT_LE(polished.metrics.total_cut, quick.metrics.total_cut);
}

TEST(Gp, SingleMatchingStrategiesWork) {
  const ppn::PaperInstance inst = ppn::paper_instance(1);
  for (MatchingKind kind : {MatchingKind::kRandom, MatchingKind::kHeavyEdge,
                            MatchingKind::kKMeans}) {
    GpOptions options;
    options.matchings = {kind};
    GpPartitioner gp(options);
    const PartitionResult result =
        gp.run(inst.graph, request_for(inst, 13));
    EXPECT_TRUE(result.partition.complete()) << to_string(kind);
  }
}

TEST(Gp, RejectsBadOptions) {
  GpOptions options;
  options.matchings.clear();
  EXPECT_THROW(GpPartitioner{options}, std::invalid_argument);
  GpPartitioner gp;
  PartitionRequest r;
  r.k = 0;
  EXPECT_THROW(gp.run(Graph(), r), std::invalid_argument);
}

TEST(Gp, KEqualsOneIsTrivial) {
  support::Rng rng(6);
  const Graph g = graph::erdos_renyi_gnm(20, 50, rng);
  GpPartitioner gp;
  PartitionRequest r;
  r.k = 1;
  const PartitionResult result = gp.run(g, r);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.metrics.total_cut, 0);
}

TEST(Gp, NameIsGp) { EXPECT_EQ(GpPartitioner().name(), "GP"); }

}  // namespace
}  // namespace ppnpart::part
