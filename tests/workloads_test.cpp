#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "ppn/workloads.hpp"

namespace ppnpart::ppn {
namespace {

TEST(Workloads, CatalogBuildsEverything) {
  WorkloadScale scale;
  scale.size = 12;
  scale.stages = 3;
  for (const std::string& name : workload_names()) {
    const ProcessNetwork n = make_workload(name, scale);
    EXPECT_GT(n.num_processes(), 1u) << name;
    EXPECT_GT(n.num_channels(), 0u) << name;
    EXPECT_TRUE(n.validate().empty()) << name << ": " << n.validate();
    // Partitioning view must be a single connected component (a PPN is a
    // connected dataflow application).
    const graph::Graph g = to_graph(n);
    EXPECT_TRUE(graph::is_connected(g)) << name;
  }
}

TEST(Workloads, UnknownNameThrows) {
  EXPECT_THROW(make_workload("nope"), std::invalid_argument);
}

TEST(Workloads, Jacobi1dShape) {
  const ProcessNetwork n = make_workload("jacobi1d", {32, 4});
  EXPECT_EQ(n.num_processes(), 5u);  // 4 stages + source
  // Stage-to-stage: 3 channels each (the stencil taps); source->first: 3.
  EXPECT_EQ(n.num_channels(), 12u);
}

TEST(Workloads, SobelShape) {
  const ProcessNetwork n = make_workload("sobel", {16, 1});
  // Gx, Gy, Mag, Thresh + src_img.
  EXPECT_EQ(n.num_processes(), 5u);
}

TEST(Workloads, MjpegShape) {
  const ProcessNetwork n = mjpeg_network();
  EXPECT_EQ(n.num_processes(), 10u);
  EXPECT_EQ(n.num_channels(), 11u);
  EXPECT_TRUE(n.validate().empty());
  // DCT dominates the area budget, like real HLS reports.
  graph::Weight max_res = 0;
  std::string heaviest;
  for (const Process& p : n.processes()) {
    if (p.resources > max_res) {
      max_res = p.resources;
      heaviest = p.name;
    }
  }
  EXPECT_EQ(heaviest.rfind("dct", 0), 0u);
}

TEST(Workloads, FirChainLength) {
  const poly::Program prog = fir_program(5, 64);
  EXPECT_EQ(prog.statements.size(), 5u);
  EXPECT_TRUE(prog.validate().empty());
}

TEST(Workloads, ProgramsValidate) {
  EXPECT_TRUE(jacobi1d_program(16, 3).validate().empty());
  EXPECT_TRUE(jacobi2d_program(8, 2).validate().empty());
  EXPECT_TRUE(matmul_program(4, 4, 4).validate().empty());
  EXPECT_TRUE(fir_program(4, 32).validate().empty());
  EXPECT_TRUE(sobel_program(8, 8).validate().empty());
  EXPECT_TRUE(producer_consumer_program(4, 16).validate().empty());
  EXPECT_TRUE(split_join_program(3, 16).validate().empty());
}

TEST(Workloads, BadParametersThrow) {
  EXPECT_THROW(jacobi1d_program(2, 1), std::invalid_argument);
  EXPECT_THROW(jacobi1d_program(10, 0), std::invalid_argument);
  EXPECT_THROW(matmul_program(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(fir_program(0, 10), std::invalid_argument);
  EXPECT_THROW(fir_program(8, 4), std::invalid_argument);
  EXPECT_THROW(sobel_program(2, 8), std::invalid_argument);
  EXPECT_THROW(split_join_program(0, 4), std::invalid_argument);
}

TEST(Workloads, ScaleChangesSize) {
  const ProcessNetwork small = make_workload("producer_consumer", {8, 2});
  const ProcessNetwork large = make_workload("producer_consumer", {8, 5});
  EXPECT_LT(small.num_processes(), large.num_processes());
}

}  // namespace
}  // namespace ppnpart::ppn
