#pragma once
// Partition representation, quality metrics and the paper's constraint model.
//
// The paper's problem (Section I): divide the process-network graph into K
// parts such that
//   (1) for every pair of parts (a, b), the total weight of edges crossing
//       exactly between a and b is <= Bmax   (inter-FPGA link bandwidth), and
//   (2) every part's total node weight is   <= Rmax (per-FPGA resources),
// minimizing global edge cut subject to (1) and (2).

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "support/contracts.hpp"

namespace ppnpart::part {

using graph::Graph;
using graph::NodeId;
using graph::Weight;

using PartId = std::int32_t;
constexpr PartId kUnassigned = -1;

/// Assignment of nodes to parts 0..k-1 (or kUnassigned during construction).
class Partition {
 public:
  Partition() = default;
  Partition(NodeId num_nodes, PartId k)
      : assign_(num_nodes, kUnassigned), k_(k) {}

  /// Re-initializes in place to `num_nodes` unassigned nodes and `k` parts,
  /// reusing the existing capacity (workspace hot-path use).
  void reset(NodeId num_nodes, PartId k) {
    assign_.assign(num_nodes, kUnassigned);
    k_ = k;
  }

  PartId k() const { return k_; }
  NodeId size() const { return static_cast<NodeId>(assign_.size()); }

  PartId operator[](NodeId u) const {
    PPN_ASSERT(u < assign_.size());
    return assign_[u];
  }
  void set(NodeId u, PartId p) {
    PPN_ASSERT(u < assign_.size());
    PPN_ASSERT(p == kUnassigned || (p >= 0 && p < k_));
    assign_[u] = p;
  }

  bool complete() const;
  /// Nodes assigned to part p.
  std::vector<NodeId> members(PartId p) const;
  const std::vector<PartId>& assignments() const { return assign_; }

  /// True iff every part in [0, k) has at least one node.
  bool all_parts_nonempty() const;

 private:
  std::vector<PartId> assign_;
  PartId k_ = 0;
};

/// Symmetric k x k matrix of inter-part cut weights (diagonal unused = 0).
class PairwiseCut {
 public:
  PairwiseCut() = default;
  explicit PairwiseCut(PartId k) : k_(k), m_(static_cast<std::size_t>(k) * k, 0) {}

  /// Re-initializes to a zeroed k x k matrix, reusing existing capacity.
  void reset(PartId k) {
    k_ = k;
    m_.assign(static_cast<std::size_t>(k) * k, 0);
  }

  PartId k() const { return k_; }
  Weight at(PartId a, PartId b) const { return m_[index(a, b)]; }
  void add(PartId a, PartId b, Weight w) {
    m_[index(a, b)] += w;
    m_[index(b, a)] += w;
  }

  /// Raw row access for hot loops (row(a)[b] == at(a, b)).
  const Weight* row(PartId a) const {
    return m_.data() + static_cast<std::size_t>(a) * k_;
  }

  /// Largest entry — the paper's "Maximum Local Bandwidth".
  Weight max_pairwise() const;
  /// Sum over unordered pairs — equals the global edge cut.
  Weight total() const;

 private:
  std::size_t index(PartId a, PartId b) const {
    return static_cast<std::size_t>(a) * k_ + static_cast<std::size_t>(b);
  }
  PartId k_ = 0;
  std::vector<Weight> m_;
};

struct PartitionMetrics {
  Weight total_cut = 0;            // paper: "Total Edge-Cuts"
  Weight max_load = 0;             // paper: "Maximum Resource Allocation"
  Weight max_pairwise_cut = 0;     // paper: "Maximum Local bandwidth"
  std::vector<Weight> loads;       // per-part node-weight sums
  PairwiseCut pairwise;
  double imbalance = 0;            // max_load / (total_weight / k)
};

/// Full recomputation from scratch; the reference the incremental movers are
/// tested against. Partition must be complete.
PartitionMetrics compute_metrics(const Graph& g, const Partition& p);

/// The two FPGA-mapping constraints. `kUnlimited` disables one side.
struct Constraints {
  static constexpr Weight kUnlimited = std::numeric_limits<Weight>::max();
  Weight rmax = kUnlimited;  // per-part resource budget (uniform case)
  Weight bmax = kUnlimited;  // per-pair bandwidth budget

  /// Heterogeneous platforms: budget of part p is rmax_per_part[p] and
  /// `rmax` is ignored. Empty (default) = uniform. Size must cover every
  /// part id used; extra entries are harmless.
  std::vector<Weight> rmax_per_part;

  bool heterogeneous() const { return !rmax_per_part.empty(); }

  /// Resource budget of part p under either regime.
  Weight rmax_of(PartId p) const {
    return rmax_per_part.empty()
               ? rmax
               : rmax_per_part[static_cast<std::size_t>(p)];
  }

  bool unconstrained() const {
    return rmax == kUnlimited && bmax == kUnlimited &&
           rmax_per_part.empty();
  }
};

/// max(0, value - cap) with an unlimited cap short-circuited — the
/// subtraction itself would overflow Weight. The one excess computation
/// every violation/goodness bookkeeper must share.
inline Weight excess_over(Weight value, Weight cap) {
  if (cap == Constraints::kUnlimited) return 0;
  return value > cap ? value - cap : 0;
}

/// Aggregate constraint violation; 0/0 means feasible.
struct Violation {
  Weight resource_excess = 0;   // sum over parts of max(0, load - Rmax)
  Weight bandwidth_excess = 0;  // sum over pairs of max(0, cut(a,b) - Bmax)

  bool feasible() const {
    return resource_excess == 0 && bandwidth_excess == 0;
  }
};

Violation compute_violation(const PartitionMetrics& m, const Constraints& c);

/// The paper's "goodness function": candidates are compared
/// constraint-violation first, cut second (Section IV, "the best (i.e. the
/// one that is nearest to meeting the constraints) is chosen").
struct Goodness {
  Weight resource_excess = 0;
  Weight bandwidth_excess = 0;
  Weight cut = 0;

  friend bool operator==(const Goodness&, const Goodness&) = default;
};

/// Lexicographic: smaller is better. Inline: this comparison runs tens of
/// millions of times per FM-heavy partitioner run.
inline bool operator<(const Goodness& a, const Goodness& b) {
  if (a.resource_excess != b.resource_excess)
    return a.resource_excess < b.resource_excess;
  if (a.bandwidth_excess != b.bandwidth_excess)
    return a.bandwidth_excess < b.bandwidth_excess;
  return a.cut < b.cut;
}

Goodness compute_goodness(const Graph& g, const Partition& p,
                          const Constraints& c);

/// Human-readable one-line summary for reports/logs.
std::string describe(const PartitionMetrics& m, const Constraints& c);

}  // namespace ppnpart::part
