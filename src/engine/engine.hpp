#pragma once
// Portfolio partitioning engine — the library's concurrent service core.
//
// The paper's multi-level flow answers one request with one algorithm. This
// subsystem turns that into a multi-tenant service: batches of
// (graph, request) jobs race a configurable portfolio of partitioners
// across the global thread pool, with
//
//   * per-job wall-clock budgets (StopToken deadlines; members return their
//     best-so-far when the budget fires, so an answer always exists),
//   * cooperative cancellation once a member's result is feasible and beats
//     a quality threshold (remaining members are stopped / skipped),
//   * deterministic per-member seed streams (SeedStream of the request
//     seed), so a fixed seed reproduces bit-identical results regardless of
//     scheduling — provided no budget/cancel threshold is set, since those
//     trade determinism for latency by construction,
//   * an in-memory LRU result cache keyed by graph fingerprint + request
//     hash + portfolio identity, so repeated queries (the heavy-traffic
//     scenario) are served in O(1) without touching the pool.
//
// Entry points: run_one (synchronous), run_batch (fan out a vector of jobs
// and wait), and a streaming submit/poll/wait trio for callers that overlap
// job production with consumption. All three share one code path, one cache
// and one stats block, and are safe to call from multiple client threads.
//
// Winner selection is deterministic: members are compared by (goodness,
// member index), never by completion order.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/cache.hpp"
#include "engine/portfolio.hpp"
#include "graph/graph.hpp"
#include "partition/partitioner.hpp"

namespace ppnpart::engine {

struct EngineOptions {
  Portfolio portfolio = Portfolio::defaults();

  /// Per-job wall-clock budget in milliseconds; 0 = unlimited. The budget
  /// is cooperative: member 0 of a job always runs (partitioners produce a
  /// complete partition even when stopped at their first checkpoint), so a
  /// blown budget degrades quality, never availability. Checkpoint polls
  /// exist in the iterative members (gp, annealing, genetic, tabu) and in
  /// exact's branch-and-bound; the single-pass heuristics (metislike,
  /// nlevel, kl, spectral, random) run to completion — they are the fast,
  /// bounded members, so the overshoot is one direct pass at worst.
  double time_budget_ms = 0;

  /// Early-exit quality gate: once some member's result is feasible with
  /// total cut <= cancel_cut_threshold, the job's remaining members are
  /// stopped (running ones at their next checkpoint, unstarted ones are
  /// skipped). Negative disables the gate.
  part::Weight cancel_cut_threshold = -1;

  /// Shorthand gate: any feasible member result cancels the rest. Useful
  /// when the caller wants *a* feasible mapping as fast as possible.
  bool cancel_on_feasible = false;

  /// Result-cache capacity in jobs; 0 disables caching.
  std::size_t cache_capacity = 4096;
};

/// Per-member accounting of one job.
struct MemberOutcome {
  std::string algorithm;
  part::Goodness goodness;
  double seconds = 0;
  bool ran = false;     // false = skipped by cancellation before starting
  bool failed = false;  // threw (e.g. Exact on an oversized graph)
  std::string error;
};

/// The engine's answer for one job.
struct PortfolioOutcome {
  part::PartitionResult best;  // the winning member's full result
  std::string winner;          // registry name of the winning member
  bool from_cache = false;
  bool budget_expired = false;  // the job's deadline fired
  double seconds = 0;           // engine-observed job latency
  std::uint64_t key = 0;        // cache key (diagnostics)
  std::vector<MemberOutcome> members;
};

// A caller-armed request.stop is honoured: the per-job token links it as a
// parent, so firing it cancels the job exactly like the quality gate does
// (running members stop at their next checkpoint; an answer still exists
// once any member completes).
//
// Known limitation: Job owns its graph, so a same-graph batch of N jobs
// holds N copies (see ROADMAP — shared-graph batches are a planned
// follow-up; real multi-tenant traffic carries distinct graphs per job).
struct EngineStats {
  std::uint64_t jobs_completed = 0;
  std::uint64_t members_run = 0;
  std::uint64_t members_skipped = 0;
  std::uint64_t members_failed = 0;
  CacheStats cache;
};

/// One unit of work for the batch/streaming entry points.
struct Job {
  graph::Graph graph;
  part::PartitionRequest request;
};

class Engine {
 public:
  using JobId = std::uint64_t;

  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const EngineOptions& options() const { return options_; }

  /// Synchronous single-job entry point. A cache hit returns without
  /// copying the graph or touching the pool.
  PortfolioOutcome run_one(const graph::Graph& g,
                           const part::PartitionRequest& request);

  /// Fans every job's every member onto the thread pool at once and waits;
  /// results are returned in job order. Throughput scales with cores
  /// because members of *different* jobs overlap, not just members of one.
  /// The const& overload copies each job (the caller keeps them); the &&
  /// overload moves the graphs in.
  std::vector<PortfolioOutcome> run_batch(const std::vector<Job>& jobs);
  std::vector<PortfolioOutcome> run_batch(std::vector<Job>&& jobs);

  /// Streaming: enqueue a job and return immediately.
  JobId submit(Job job);

  /// Non-blocking: the outcome if the job finished, nullopt otherwise.
  /// A returned outcome releases the job's bookkeeping; a second poll of
  /// the same id reports an error (std::invalid_argument).
  std::optional<PortfolioOutcome> poll(JobId id);

  /// Blocks until the job finishes, then behaves like a successful poll.
  PortfolioOutcome wait(JobId id);

  EngineStats stats() const;
  void clear_cache();

 private:
  struct JobState;

  std::uint64_t job_key(const graph::Graph& g,
                        const part::PartitionRequest& request) const;
  std::shared_ptr<JobState> start_job(Job job, std::uint64_t key,
                                      bool check_cache);
  std::shared_ptr<JobState> find_job(JobId id);
  PortfolioOutcome take_outcome(const std::shared_ptr<JobState>& state);
  void run_member(const std::shared_ptr<JobState>& state, std::size_t index);
  void finalize_job(const std::shared_ptr<JobState>& state);

  EngineOptions options_;
  LruCache<PortfolioOutcome> cache_;

  mutable std::mutex mutex_;  // guards jobs_, next_id_, stats_
  std::uint64_t next_id_ = 1;
  std::unordered_map<JobId, std::shared_ptr<JobState>> jobs_;
  EngineStats stats_;
};

}  // namespace ppnpart::engine
