#include <gtest/gtest.h>

#include <sstream>

#include "ppn/paper_instances.hpp"
#include "viz/dot.hpp"

namespace ppnpart::viz {
namespace {

TEST(Dot, UnpartitionedContainsAllProcesses) {
  const ppn::PaperInstance inst = ppn::paper_instance(1);
  std::stringstream s;
  write_network_dot(s, inst.network);
  const std::string out = s.str();
  for (std::uint32_t i = 0; i < inst.network.num_processes(); ++i) {
    EXPECT_NE(out.find("n" + std::to_string(i) + " "), std::string::npos);
  }
  EXPECT_NE(out.find("->"), std::string::npos);
  EXPECT_NE(out.find("R="), std::string::npos);
}

TEST(Dot, SizeScalesWithResources) {
  ppn::ProcessNetwork n("two");
  n.add_process("small", 4);
  n.add_process("huge", 400);
  n.add_channel(0, 1, 1);
  std::stringstream s;
  write_network_dot(s, n);
  const std::string out = s.str();
  // Both have fixedsize circles; the huge one must be wider.
  const auto p_small = out.find("width=", out.find("small"));
  const auto p_huge = out.find("width=", out.find("huge"));
  ASSERT_NE(p_small, std::string::npos);
  ASSERT_NE(p_huge, std::string::npos);
  const double w_small = std::stod(out.substr(p_small + 6, 5));
  const double w_huge = std::stod(out.substr(p_huge + 6, 5));
  EXPECT_GT(w_huge, w_small);
}

TEST(Dot, PartitionedEmitsClusters) {
  const ppn::PaperInstance inst = ppn::paper_instance(2);
  part::Partition p(inst.graph.num_nodes(), 4);
  for (graph::NodeId u = 0; u < inst.graph.num_nodes(); ++u) {
    p.set(u, static_cast<part::PartId>(u % 4));
  }
  std::stringstream s;
  write_partitioned_dot(s, inst.network, p);
  const std::string out = s.str();
  for (int c = 0; c < 4; ++c) {
    EXPECT_NE(out.find("subgraph cluster_" + std::to_string(c)),
              std::string::npos);
    EXPECT_NE(out.find("FPGA " + std::to_string(c)), std::string::npos);
  }
}

TEST(Dot, FlatColouringWithoutClusters) {
  const ppn::PaperInstance inst = ppn::paper_instance(3);
  part::Partition p(inst.graph.num_nodes(), 2);
  for (graph::NodeId u = 0; u < inst.graph.num_nodes(); ++u) {
    p.set(u, static_cast<part::PartId>(u % 2));
  }
  DotOptions options;
  options.cluster_parts = false;
  std::stringstream s;
  write_partitioned_dot(s, inst.network, p, options);
  EXPECT_EQ(s.str().find("subgraph"), std::string::npos);
  EXPECT_NE(s.str().find("fillcolor"), std::string::npos);
}

TEST(Dot, FileWriters) {
  const ppn::PaperInstance inst = ppn::paper_instance(1);
  const std::string path = testing::TempDir() + "/ppnpart_viz_test.dot";
  EXPECT_TRUE(write_network_dot_file(path, inst.network));
  part::Partition p(inst.graph.num_nodes(), 4);
  for (graph::NodeId u = 0; u < inst.graph.num_nodes(); ++u) p.set(u, 0);
  EXPECT_TRUE(write_partitioned_dot_file(path, inst.network, p));
  EXPECT_FALSE(write_network_dot_file("/no/such/dir/x.dot", inst.network));
}

}  // namespace
}  // namespace ppnpart::viz
