#include "support/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ppnpart::support {

const std::vector<double>& Histogram::latency_bounds_us() {
  static const std::vector<double> bounds = {
      1,       2,       5,        10,       20,       50,       100,
      200,     500,     1000,     2000,     5000,     10000,    20000,
      50000,   100000,  200000,   500000,   1000000,  2000000,  5000000,
      10000000};
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = latency_bounds_us();
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // == size() → overflow
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add(double) needs C++20 library support; CAS-loop keeps us portable.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  // Concurrent observes can make the total drift from the bucket sum; clamp
  // to the buckets actually copied so the snapshot is internally consistent.
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : snap.counts) bucket_total += c;
  snap.count = std::min(snap.count, bucket_total);
  return snap;
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t c = counts[i];
    if (c == 0) continue;
    if (static_cast<double>(seen + c) >= target) {
      if (i == bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(c);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    seen += c;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    counts_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::uint64_t MetricsSnapshot::counter_or(std::string_view name,
                                          std::uint64_t fallback) const {
  for (const CounterEntry& c : counters)
    if (c.name == name) return c.value;
  return fallback;
}

const MetricsSnapshot::HistogramEntry* MetricsSnapshot::find_histogram(
    std::string_view name) const {
  for (const HistogramEntry& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

std::string MetricsSnapshot::to_string() const {
  std::ostringstream out;
  for (const CounterEntry& c : counters)
    out << "counter " << c.name << " " << c.value << "\n";
  for (const GaugeEntry& g : gauges)
    out << "gauge " << g.name << " " << g.value << "\n";
  for (const HistogramEntry& h : histograms) {
    out << "histogram " << h.name << " count=" << h.hist.count
        << " mean=" << h.hist.mean() << " p50=" << h.hist.quantile(0.5)
        << " p95=" << h.hist.quantile(0.95)
        << " p99=" << h.hist.quantile(0.99) << "\n";
  }
  return out.str();
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked: cached Counter&/Gauge& references may be used from destructors
  // of other statics during shutdown.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    snap.counters.push_back({name, c->value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    snap.gauges.push_back({name, g->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_)
    snap.histograms.push_back({name, h->snapshot()});
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace ppnpart::support
