#include "support/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace ppnpart::support {

namespace {
// The pool (if any) whose worker_loop is running on this thread.
thread_local const ThreadPool* g_current_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() const { return g_current_pool == this; }

void ThreadPool::worker_loop() {
  g_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  // Leaked on purpose — see the header: joining workers from a static
  // destructor races against other statics that may still submit work.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t max_chunks = pool.size() * 4;
  const std::size_t chunk =
      std::max(grain, (n + max_chunks - 1) / std::max<std::size_t>(max_chunks, 1));
  // Serial fallback: tiny ranges, degenerate pools, and — crucially — calls
  // made from inside one of this pool's own workers (nested fan-out), where
  // blocking on queued chunks can deadlock the pool.
  if (n <= chunk || pool.size() == 1 || pool.on_worker_thread()) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve((n + chunk - 1) / chunk);
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    futures.push_back(pool.submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  // Drain every chunk before rethrowing so no task is left running with a
  // dangling reference to `fn`; the first failure wins, as in serial code.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  parallel_for(ThreadPool::global(), begin, end, fn, grain);
}

}  // namespace ppnpart::support
