#include "graph/io.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "support/strings.hpp"

namespace ppnpart::graph {

using support::Result;
using support::Status;
using support::StatusCode;
using support::str_format;

void write_metis(std::ostream& out, const Graph& g) {
  out << g.num_nodes() << ' ' << g.num_edges() << " 011\n";
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    out << g.node_weight(u);
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      out << ' ' << (nbrs[i] + 1) << ' ' << wgts[i];
    }
    out << '\n';
  }
}

Status write_metis_file(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  if (!out) return Status::error(StatusCode::kUnavailable,
                             "cannot open for writing: " + path);
  write_metis(out, g);
  return out ? Status::ok() : Status::error(StatusCode::kUnavailable,
                                      "write failed: " + path);
}

Result<Graph> read_metis(std::istream& in) {
  std::string line;
  // Header (skipping comments).
  std::uint64_t n = 0, m = 0;
  std::string fmt = "0";
  std::uint32_t ncon = 1;
  bool have_header = false;
  while (std::getline(in, line)) {
    auto t = support::trim(line);
    if (t.empty() || t[0] == '%') continue;
    auto tokens = support::split_ws(t);
    if (tokens.size() < 2 || tokens.size() > 4)
      return Result<Graph>::error(StatusCode::kInvalidArgument,
                                  "metis: malformed header");
    std::int64_t vn = 0, vm = 0;
    if (!support::parse_i64(tokens[0], vn) || !support::parse_i64(tokens[1], vm))
      return Result<Graph>::error(StatusCode::kInvalidArgument,
                                  "metis: malformed header numbers");
    n = static_cast<std::uint64_t>(vn);
    m = static_cast<std::uint64_t>(vm);
    if (tokens.size() >= 3) fmt = tokens[2];
    if (tokens.size() == 4) {
      std::int64_t vncon = 1;
      if (!support::parse_i64(tokens[3], vncon) || vncon != 1)
        return Result<Graph>::error(StatusCode::kInvalidArgument,
                                    "metis: only ncon=1 supported");
      ncon = 1;
    }
    have_header = true;
    break;
  }
  (void)ncon;
  if (!have_header)
    return Result<Graph>::error(StatusCode::kInvalidArgument,
                                "metis: empty input");
  // fmt is up to 3 chars: [has_vertex_sizes][has_vertex_weights][has_edge_weights]
  while (fmt.size() < 3) fmt.insert(fmt.begin(), '0');
  if (fmt[0] == '1')
    return Result<Graph>::error(StatusCode::kInvalidArgument,
                                "metis: vertex sizes unsupported");
  const bool has_vwgt = fmt[1] == '1';
  const bool has_ewgt = fmt[2] == '1';

  GraphBuilder builder(static_cast<NodeId>(n));
  std::uint64_t read_nodes = 0;
  while (read_nodes < n && std::getline(in, line)) {
    auto t = support::trim(line);
    if (!t.empty() && t[0] == '%') continue;
    const NodeId u = static_cast<NodeId>(read_nodes++);
    auto tokens = support::split_ws(t);
    std::size_t pos = 0;
    if (has_vwgt) {
      if (tokens.empty())
        return Result<Graph>::error(
            StatusCode::kInvalidArgument,
            str_format("metis: node %u missing weight", u + 1));
      std::int64_t w = 1;
      if (!support::parse_i64(tokens[pos++], w) || w < 0)
        return Result<Graph>::error(
            StatusCode::kInvalidArgument,
            str_format("metis: node %u bad weight", u + 1));
      builder.set_node_weight(u, w);
    }
    const std::size_t stride = has_ewgt ? 2 : 1;
    if ((tokens.size() - pos) % stride != 0)
      return Result<Graph>::error(
          StatusCode::kInvalidArgument,
          str_format("metis: node %u odd token count", u + 1));
    for (; pos < tokens.size(); pos += stride) {
      std::int64_t v1 = 0, w = 1;
      if (!support::parse_i64(tokens[pos], v1) || v1 < 1 ||
          static_cast<std::uint64_t>(v1) > n)
        return Result<Graph>::error(
            StatusCode::kInvalidArgument,
            str_format("metis: node %u bad neighbour", u + 1));
      if (has_ewgt &&
          (!support::parse_i64(tokens[pos + 1], w) || w <= 0))
        return Result<Graph>::error(
            StatusCode::kInvalidArgument,
            str_format("metis: node %u bad edge weight", u + 1));
      const NodeId v = static_cast<NodeId>(v1 - 1);
      // Each undirected edge appears twice in the file; add once.
      if (u < v) builder.add_edge(u, v, w);
    }
  }
  if (read_nodes != n)
    return Result<Graph>::error(StatusCode::kInvalidArgument,
                                "metis: fewer node lines than header claims");
  Graph g = builder.build();
  if (g.num_edges() != m) {
    // Tolerated: some writers count self loops or miscount; the builder
    // result is still a consistent graph. Strict readers may check.
  }
  return g;
}

Result<Graph> read_metis_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Result<Graph>::error(StatusCode::kUnavailable,
                                "cannot open: " + path);
  return read_metis(in);
}

void write_adjacency_matrix(std::ostream& out, const Graph& g) {
  const NodeId n = g.num_nodes();
  out << n << '\n';
  for (NodeId u = 0; u < n; ++u) {
    std::vector<Weight> row(n, 0);
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) row[nbrs[i]] = wgts[i];
    for (NodeId v = 0; v < n; ++v) out << row[v] << (v + 1 < n ? ' ' : '\n');
  }
  for (NodeId u = 0; u < n; ++u)
    out << g.node_weight(u) << (u + 1 < n ? ' ' : '\n');
}

Result<Graph> read_adjacency_matrix(std::istream& in) {
  std::int64_t n = 0;
  if (!(in >> n) || n < 0) return Result<Graph>::error(StatusCode::kInvalidArgument,
                                "matrix: bad size");
  GraphBuilder builder(static_cast<NodeId>(n));
  std::vector<std::vector<Weight>> mat(
      static_cast<std::size_t>(n), std::vector<Weight>(n, 0));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      if (!(in >> mat[i][j]))
        return Result<Graph>::error(StatusCode::kInvalidArgument,
                                "matrix: truncated rows");
    }
  }
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i + 1; j < n; ++j) {
      if (mat[i][j] != mat[j][i])
        return Result<Graph>::error(
            StatusCode::kInvalidArgument,
            str_format("matrix: asymmetric at (%lld, %lld)",
                       static_cast<long long>(i), static_cast<long long>(j)));
      if (mat[i][j] < 0)
        return Result<Graph>::error(StatusCode::kInvalidArgument,
                                "matrix: negative edge weight");
      if (mat[i][j] > 0)
        builder.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j),
                         mat[i][j]);
    }
  }
  for (std::int64_t i = 0; i < n; ++i) {
    Weight w = 1;
    if (!(in >> w)) return Result<Graph>::error(StatusCode::kInvalidArgument,
                                "matrix: missing node weights");
    if (w < 0) return Result<Graph>::error(StatusCode::kInvalidArgument,
                                "matrix: negative node weight");
    builder.set_node_weight(static_cast<NodeId>(i), w);
  }
  return builder.build();
}

void write_dot(std::ostream& out, const Graph& g, const std::string& name) {
  out << "graph " << name << " {\n";
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    out << "  n" << u << " [label=\"" << u << " (" << g.node_weight(u)
        << ")\"];\n";
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i]) {
        out << "  n" << u << " -- n" << nbrs[i] << " [label=\"" << wgts[i]
            << "\"];\n";
      }
    }
  }
  out << "}\n";
}

}  // namespace ppnpart::graph
