#pragma once
// Workload library: the affine streaming kernels PPN tooling is typically
// demonstrated on (stencils, filters, image pipelines) plus structural
// topologies (chains, split/join). Each returns either a poly::Program to be
// fed through derive_network(), or a ready ProcessNetwork.

#include <cstdint>
#include <string>
#include <vector>

#include "poly/program.hpp"
#include "ppn/network.hpp"

namespace ppnpart::ppn {

// --- Affine kernels (poly programs). -----------------------------------

/// `stages` unrolled time steps of a 3-point 1D stencil over `width` cells.
poly::Program jacobi1d_program(std::int64_t width, std::uint32_t stages);

/// `stages` unrolled steps of the 5-point 2D stencil on an n x n grid.
poly::Program jacobi2d_program(std::int64_t n, std::uint32_t stages);

/// C = A * B with explicit multiply / accumulate / writeback statements.
poly::Program matmul_program(std::int64_t n, std::int64_t m, std::int64_t p);

/// `taps`-tap FIR filter over `samples` samples, one MAC statement per tap.
poly::Program fir_program(std::uint32_t taps, std::int64_t samples);

/// Sobel edge detection on a w x h image: Gx, Gy, magnitude, threshold.
poly::Program sobel_program(std::int64_t width, std::int64_t height);

/// Linear pipeline of `depth` map stages over `width` elements.
poly::Program producer_consumer_program(std::uint32_t depth,
                                        std::int64_t width);

/// Fork/join: split -> `branches` parallel workers -> join.
poly::Program split_join_program(std::uint32_t branches, std::int64_t width);

/// `stages` steps of the 7-point 3D stencil on an n^3 grid.
poly::Program heat3d_program(std::int64_t n, std::uint32_t stages);

/// k x k convolution (odd k) over a w x h image plus a post-process stage.
poly::Program conv2d_program(std::int64_t width, std::int64_t height,
                             std::int64_t kernel);

/// Doolittle LU decomposition (no pivoting) on an n x n matrix, unrolled
/// over the elimination step with triangular guarded domains: ~3n
/// heterogeneous processes (dividers, rank-1 updates, U-row emitters).
poly::Program lu_program(std::int64_t n);

// --- Direct networks. ---------------------------------------------------

/// M-JPEG-style encoder pipeline (the canonical multi-FPGA PPN demo):
/// source -> colour conversion -> per-component DCT -> quantisation ->
/// zigzag -> VLE -> sink, with HLS-calibre resource weights.
ProcessNetwork mjpeg_network();

/// Radix-2 DIT FFT butterfly network over 2^log2n samples: one process per
/// butterfly (log2n stages of 2^(log2n-1) butterflies), plus sample source
/// and spectrum sink. Built directly — butterfly lane indexing is XOR
/// arithmetic, outside the affine fragment the poly layer models.
ProcessNetwork fft_network(std::uint32_t log2n);

// --- Catalog (drives benches/examples uniformly). ------------------------

struct WorkloadScale {
  std::int64_t size = 32;      // spatial extent
  std::uint32_t stages = 4;    // pipeline depth where applicable
};

std::vector<std::string> workload_names();

/// Builds the named workload as a process network (deriving through the
/// polyhedral layer where applicable). Throws on unknown name.
ProcessNetwork make_workload(const std::string& name,
                             const WorkloadScale& scale = {});

}  // namespace ppnpart::ppn
