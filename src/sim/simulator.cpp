#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/strings.hpp"

namespace ppnpart::sim {

namespace {
constexpr double kEps = 1e-9;
}

std::string SimStats::summary() const {
  std::string out = support::str_format(
      "steps=%llu firings=%llu sink_throughput=%.4f starved=%llu "
      "blocked=%llu drained=%s",
      static_cast<unsigned long long>(steps),
      static_cast<unsigned long long>(total_firings), sink_throughput,
      static_cast<unsigned long long>(input_starved_stalls),
      static_cast<unsigned long long>(output_blocked_stalls),
      drained ? "yes" : "no");
  for (const LinkStats& l : links) {
    out += support::str_format(
        "\n  link %u-%u: moved=%.0f util=%.3f sat=%llu", l.device_a,
        l.device_b, l.units_moved, l.utilization,
        static_cast<unsigned long long>(l.saturated_steps));
  }
  return out;
}

SimStats simulate(const ppn::ProcessNetwork& network,
                  const mapping::Mapping& mapping,
                  const mapping::Platform& platform,
                  const SimOptions& options) {
  const std::uint32_t n = network.num_processes();
  const std::size_t m = network.num_channels();

  SimStats stats;
  stats.firings.assign(n, 0);
  stats.tokens_delivered.assign(m, 0.0);

  // Per-process channel lists and per-channel SDF rates.
  std::vector<std::vector<std::size_t>> ins(n), outs(n);
  std::vector<double> prod_rate(m, 1.0), cons_rate(m, 1.0), cap(m, 0.0);
  for (std::size_t c = 0; c < m; ++c) {
    const auto& ch = network.channels()[c];
    outs[ch.src].push_back(c);
    ins[ch.dst].push_back(c);
    const double volume = static_cast<double>(std::max<std::uint64_t>(
        ch.volume, 1));
    prod_rate[c] = volume / static_cast<double>(
                                std::max<std::uint64_t>(
                                    network.process(ch.src).firings, 1));
    cons_rate[c] = volume / static_cast<double>(
                                std::max<std::uint64_t>(
                                    network.process(ch.dst).firings, 1));
    // One producer deposit plus one consumer demand must always fit.
    cap[c] = std::max(options.fifo_capacity, prod_rate[c] + cons_rate[c]);
  }

  // Device of each process; link index per inter-device channel.
  std::vector<std::uint32_t> device_of(n);
  for (std::uint32_t i = 0; i < n; ++i) device_of[i] = mapping.device_of_node(i);
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> link_index;
  std::vector<LinkStats> links;
  std::vector<std::vector<std::size_t>> link_channels;
  constexpr std::size_t kOnChip = static_cast<std::size_t>(-1);
  std::vector<std::size_t> channel_link(m, kOnChip);
  for (std::size_t c = 0; c < m; ++c) {
    const auto& ch = network.channels()[c];
    const std::uint32_t da = device_of[ch.src];
    const std::uint32_t db = device_of[ch.dst];
    if (da == db) continue;
    const auto key = std::minmax(da, db);
    auto it = link_index.find(key);
    if (it == link_index.end()) {
      LinkStats ls;
      ls.device_a = key.first;
      ls.device_b = key.second;
      ls.capacity = platform.link_capacity(da, db);
      it = link_index.emplace(key, links.size()).first;
      links.push_back(ls);
      link_channels.emplace_back();
    }
    channel_link[c] = it->second;
    link_channels[it->second].push_back(c);
  }

  // FIFO state in tokens: ready at consumer, pending on the link, arriving
  // this step (visible next step).
  std::vector<double> ready(m, 0.0), pending(m, 0.0), arriving(m, 0.0);

  std::uint64_t idle_steps = 0;
  constexpr std::uint64_t kDeadlockWindow = 1024;

  for (stats.steps = 0; stats.steps < options.max_steps; ++stats.steps) {
    bool any_activity = false;

    // --- Fire processes. -------------------------------------------------
    for (std::uint32_t i = 0; i < n; ++i) {
      if (stats.firings[i] >= network.process(i).firings) continue;
      bool starved = false;
      for (std::size_t c : ins[i]) {
        if (ready[c] + kEps < cons_rate[c]) {
          starved = true;
          break;
        }
      }
      if (starved) {
        ++stats.input_starved_stalls;
        continue;
      }
      bool blocked = false;
      for (std::size_t c : outs[i]) {
        if (ready[c] + pending[c] + arriving[c] + prod_rate[c] >
            cap[c] + kEps) {
          blocked = true;
          break;
        }
      }
      if (blocked) {
        ++stats.output_blocked_stalls;
        continue;
      }
      for (std::size_t c : ins[i]) ready[c] -= cons_rate[c];
      for (std::size_t c : outs[i]) {
        if (channel_link[c] == kOnChip) {
          arriving[c] += prod_rate[c];  // lands next step
        } else {
          pending[c] += prod_rate[c];  // must traverse the link first
        }
      }
      ++stats.firings[i];
      ++stats.total_firings;
      any_activity = true;
    }

    // --- Drain links (moving one token costs one bandwidth unit). --------
    for (std::size_t l = 0; l < links.size(); ++l) {
      double budget = static_cast<double>(links[l].capacity);
      for (std::size_t c : link_channels[l]) {
        if (budget <= kEps) break;
        if (pending[c] <= kEps) continue;
        const double space = cap[c] - ready[c] - arriving[c];
        const double move = std::min({pending[c], budget, std::max(space, 0.0)});
        if (move <= kEps) continue;
        pending[c] -= move;
        arriving[c] += move;
        stats.tokens_delivered[c] += move;
        links[l].units_moved += move;
        budget -= move;
        any_activity = true;
      }
      bool has_pending = false;
      for (std::size_t c : link_channels[l]) has_pending |= pending[c] > kEps;
      if (has_pending && budget <= kEps) ++links[l].saturated_steps;
    }

    // --- Deliver arrived tokens. ------------------------------------------
    for (std::size_t c = 0; c < m; ++c) {
      if (arriving[c] > 0.0) {
        if (channel_link[c] == kOnChip) stats.tokens_delivered[c] += arriving[c];
        ready[c] += arriving[c];
        arriving[c] = 0.0;
      }
    }

    // --- Termination. ------------------------------------------------------
    if (options.stop_when_drained) {
      bool all_done = true;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (stats.firings[i] < network.process(i).firings) {
          all_done = false;
          break;
        }
      }
      if (all_done) {
        stats.drained = true;
        ++stats.steps;
        break;
      }
    }
    idle_steps = any_activity ? 0 : idle_steps + 1;
    if (idle_steps >= kDeadlockWindow) break;  // deadlock (e.g. missing link)
  }

  // Throughput of the sinks (no outgoing channels).
  std::uint64_t sink_firings = 0;
  bool has_sink = false;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (outs[i].empty()) {
      has_sink = true;
      sink_firings += stats.firings[i];
    }
  }
  if (!has_sink) sink_firings = stats.total_firings;
  stats.sink_throughput =
      stats.steps > 0
          ? static_cast<double>(sink_firings) / static_cast<double>(stats.steps)
          : 0;
  for (LinkStats& l : links) {
    l.utilization = (l.capacity > 0 && stats.steps > 0)
                        ? l.units_moved / (static_cast<double>(l.capacity) *
                                           static_cast<double>(stats.steps))
                        : 0;
  }
  stats.links = std::move(links);
  return stats;
}

SimStats simulate_single_device(const ppn::ProcessNetwork& network,
                                const SimOptions& options) {
  mapping::Platform platform("single");
  platform.add_device({"fpga0", network.total_resources()});
  mapping::Mapping mapping;
  mapping.partition = part::Partition(network.num_processes(), 1);
  for (std::uint32_t i = 0; i < network.num_processes(); ++i) {
    mapping.partition.set(i, 0);
  }
  mapping.device_of_part = {0};
  return simulate(network, mapping, platform, options);
}

}  // namespace ppnpart::sim
