#include "graph/diff.hpp"

#include <algorithm>

namespace ppnpart::graph {

bool bit_identical(const Graph& a, const Graph& b) {
  return a.xadj() == b.xadj() && a.adj() == b.adj() &&
         a.raw_edge_weights() == b.raw_edge_weights() &&
         a.node_weights() == b.node_weights();
}

GraphDelta diff(const Graph& base, const Graph& edited) {
  const NodeId na = base.num_nodes();
  const NodeId nb = edited.num_nodes();
  const NodeId nc = std::min(na, nb);  // aligned prefix
  GraphDelta d(na);

  // Additions first: the extended ids they mint ([na, nb), in order) must be
  // live before any edge op references them — and under tail-only removals
  // they compact to exactly the edited graph's ids.
  for (NodeId u = na; u < nb; ++u) d.add_node(edited.node_weight(u));

  // Node reweights on the aligned prefix.
  for (NodeId u = 0; u < nc; ++u) {
    if (base.node_weight(u) != edited.node_weight(u))
      d.set_node_weight(u, edited.node_weight(u));
  }

  // Edge edits: per-row sorted merge, each undirected edge visited once via
  // its lower endpoint (v > u). Base edges whose other endpoint is removed
  // ([nc, na)) strand with the removal and need no op; edited edges into
  // added nodes ([nc, nb)) are creations like any other.
  for (NodeId u = 0; u < nb; ++u) {
    const auto en = edited.neighbors(u);
    const auto ew = edited.edge_weights(u);
    const auto bn = u < nc ? base.neighbors(u) : std::span<const NodeId>{};
    const auto bw = u < nc ? base.edge_weights(u) : std::span<const Weight>{};
    std::size_t bi = std::upper_bound(bn.begin(), bn.end(), u) - bn.begin();
    std::size_t ei = std::upper_bound(en.begin(), en.end(), u) - en.begin();
    while (bi < bn.size() || ei < en.size()) {
      // Stranded base edge: the other endpoint is removed by this diff.
      if (bi < bn.size() && bn[bi] >= nc) {
        ++bi;
        continue;
      }
      const bool have_base = bi < bn.size();
      const bool have_edit = ei < en.size();
      const NodeId vb = have_base ? bn[bi] : kInvalidNode;
      const NodeId ve = have_edit ? en[ei] : kInvalidNode;
      if (have_base && (!have_edit || vb < ve)) {
        d.remove_edge(u, vb);
        ++bi;
      } else if (have_edit && (!have_base || ve < vb)) {
        d.add_edge(u, ve, ew[ei]);
        ++ei;
      } else {
        if (bw[bi] != ew[ei]) d.set_edge_weight(u, ve, ew[ei]);
        ++bi;
        ++ei;
      }
    }
  }

  // Tail removals last, so every edge op above referenced a live node at
  // script-build time. apply() strands nothing extra: no surviving edge op
  // touches [nb, na).
  for (NodeId u = nb; u < na; ++u) d.remove_node(u);

  return d;
}

}  // namespace ppnpart::graph
