#pragma once
// Coarsening phase (paper Section IV-A).
//
// At each level all enabled matching heuristics are computed, scored by the
// total weight of matched edges (hidden weight can no longer be cut at
// coarser levels — the standard Karypis–Kumar argument), and the winner is
// contracted: matched pairs become single coarse nodes whose weight is the
// sum of the pair's weights; parallel coarse edges are folded by summing
// weights. Coarsening stops at `coarsen_to` nodes (paper default: 100) or
// when a level fails to shrink the graph by `min_shrink_factor`.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "partition/matching.hpp"
#include "partition/partition.hpp"
#include "partition/workspace.hpp"
#include "support/prng.hpp"

namespace ppnpart::part {

enum class MatchingKind { kRandom, kHeavyEdge, kKMeans };

std::string to_string(MatchingKind kind);

/// One contracted level: the coarse graph plus fine-to-coarse node map.
struct CoarseLevel {
  Graph graph;
  std::vector<NodeId> fine_to_coarse;
  MatchingKind used_matching = MatchingKind::kRandom;
};

/// Contracts `fine` along `matching` (must be valid, see validate_matching)
/// through the direct CSR path (graph::contract_csr). The Workspace overload
/// reuses contraction scratch across levels; both produce a coarse graph
/// bit-identical to contract_via_builder.
CoarseLevel contract(const Graph& fine, const Matching& matching);
CoarseLevel contract(const Graph& fine, const Matching& matching,
                     Workspace& ws);

/// Slow-but-simple reference contraction through GraphBuilder (copy, sort,
/// merge). Kept as the oracle the direct CSR path is property-tested
/// against; not used on the hot path.
CoarseLevel contract_via_builder(const Graph& fine, const Matching& matching);

struct CoarsenOptions {
  NodeId coarsen_to = 100;  // paper's default
  std::vector<MatchingKind> strategies = {
      MatchingKind::kRandom, MatchingKind::kHeavyEdge, MatchingKind::kKMeans};
  /// Stop if a level shrinks the node count by less than this factor.
  double min_shrink_factor = 0.98;
  std::uint32_t max_levels = 64;
};

/// The whole multilevel hierarchy. graphs[0] is the input; maps[i] sends
/// node ids of graphs[i] to graphs[i+1]. levels_used[i] records which
/// heuristic won level i.
struct Hierarchy {
  std::vector<Graph> graphs;
  std::vector<std::vector<NodeId>> maps;
  std::vector<MatchingKind> winners;

  const Graph& coarsest() const { return graphs.back(); }
  std::size_t num_levels() const { return graphs.size(); }

  /// Projects a coarsest-level part assignment down to level `level`
  /// (0 = original graph). `coarse_assign` indexes coarsest-graph nodes.
  std::vector<PartId> project_to_level(
      const std::vector<PartId>& coarse_assign, std::size_t level) const;
};

/// Builds the hierarchy, selecting the best of the enabled matchings at each
/// level (ties by matched pair count, then strategy order). The Workspace
/// overload reuses matching/contraction scratch across levels and runs.
Hierarchy coarsen(const Graph& g, const CoarsenOptions& options,
                  support::Rng& rng, Workspace& ws);
Hierarchy coarsen(const Graph& g, const CoarsenOptions& options,
                  support::Rng& rng);

/// Runs one matching heuristic.
Matching run_matching(const Graph& g, MatchingKind kind, support::Rng& rng);
/// Allocation-free variant (result into `match`, temporaries from `ws`).
/// Returns the total matched edge weight (== matched_edge_weight(g, match)).
Weight run_matching_into(const Graph& g, MatchingKind kind, support::Rng& rng,
                         Matching& match, Workspace& ws);

/// Partition-preserving ("restricted") coarsening for the paper's cyclic
/// re-coarsening: only node pairs inside the same part may match, so the
/// current partition projects exactly onto every level of the new hierarchy.
/// Returns the hierarchy plus the induced coarsest-level assignment.
struct RestrictedHierarchy {
  Hierarchy hierarchy;
  std::vector<PartId> coarse_parts;
};
RestrictedHierarchy coarsen_restricted(const Graph& g,
                                       const std::vector<PartId>& parts,
                                       const CoarsenOptions& options,
                                       support::Rng& rng, Workspace& ws);
RestrictedHierarchy coarsen_restricted(const Graph& g,
                                       const std::vector<PartId>& parts,
                                       const CoarsenOptions& options,
                                       support::Rng& rng);

}  // namespace ppnpart::part
