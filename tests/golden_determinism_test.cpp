// Fixed-seed golden tests: the multilevel partitioners' outputs are part of
// the determinism contract (PR 1). The fingerprints below were captured from
// the pre-workspace implementation (GraphBuilder-based contraction, per-pass
// scratch allocation); the allocation-free hot path must reproduce them
// bit-for-bit. If a deliberate algorithmic change invalidates them, update
// the constants in the same PR and say so — a silent mismatch is a
// determinism regression.

#include <gtest/gtest.h>

#include <cstdio>

#include "graph/generators.hpp"
#include "partition/coarsen_cache.hpp"
#include "partition/gp.hpp"
#include "partition/kl.hpp"
#include "partition/metislike.hpp"
#include "partition/nlevel.hpp"
#include "support/hash.hpp"

namespace {

using namespace ppnpart;

graph::Graph pn_graph(graph::NodeId n, std::uint64_t seed) {
  graph::ProcessNetworkParams params;
  params.num_nodes = n;
  params.layers = std::max<std::uint32_t>(8, n / 24);
  support::Rng rng(seed);
  return graph::random_process_network(params, rng);
}

std::uint64_t fingerprint(const part::Partition& p) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  h = support::hash_combine(h, static_cast<std::uint64_t>(p.k()));
  for (graph::NodeId u = 0; u < p.size(); ++u) {
    h = support::hash_combine(h, static_cast<std::uint64_t>(p[u]));
  }
  return h;
}

part::PartitionRequest request_for(const graph::Graph& g) {
  part::PartitionRequest request;
  request.k = 4;
  request.seed = 42;
  request.constraints.rmax = g.total_node_weight() / 3;
  request.constraints.bmax = g.total_edge_weight() / 6;
  return request;
}

TEST(GoldenDeterminism, GpFixedSeed) {
  const graph::Graph g = pn_graph(300, 7);
  part::GpOptions options;
  options.max_cycles = 4;
  part::GpPartitioner gp(options);
  const part::PartitionResult r = gp.run(g, request_for(g));
  const std::uint64_t fp = fingerprint(r.partition);
  std::printf("GP fingerprint: 0x%llxull\n", static_cast<unsigned long long>(fp));
  EXPECT_EQ(fp, 0xb76d70c9c12ab48aull);
}

TEST(GoldenDeterminism, GpCachedFixedSeed) {
  const graph::Graph g = pn_graph(300, 7);
  part::CoarseningCache cache;
  part::GpOptions options;
  options.max_cycles = 4;
  part::GpPartitioner gp(options);
  part::PartitionRequest request = request_for(g);
  request.coarsen_cache = &cache;
  const part::PartitionResult r = gp.run(g, request);
  const std::uint64_t fp = fingerprint(r.partition);
  std::printf("GP cached fingerprint: 0x%llxull\n",
              static_cast<unsigned long long>(fp));
  EXPECT_EQ(fp, 0x25d50fb9960fee09ull);
}

TEST(GoldenDeterminism, MetisLikeFixedSeed) {
  const graph::Graph g = pn_graph(300, 7);
  part::MetisLikePartitioner metis;
  const part::PartitionResult r = metis.run(g, request_for(g));
  const std::uint64_t fp = fingerprint(r.partition);
  std::printf("MetisLike fingerprint: 0x%llxull\n",
              static_cast<unsigned long long>(fp));
  EXPECT_EQ(fp, 0x2e62f1eb0d0e681cull);
}

TEST(GoldenDeterminism, NLevelFixedSeed) {
  const graph::Graph g = pn_graph(300, 7);
  part::NLevelPartitioner nlevel;
  const part::PartitionResult r = nlevel.run(g, request_for(g));
  const std::uint64_t fp = fingerprint(r.partition);
  std::printf("NLevel fingerprint: 0x%llxull\n",
              static_cast<unsigned long long>(fp));
  EXPECT_EQ(fp, 0xe478be81f7d9e695ull);
}

TEST(GoldenDeterminism, KlFixedSeed) {
  const graph::Graph g = pn_graph(200, 11);
  part::KlPartitioner kl;
  part::PartitionRequest request;
  request.k = 4;
  request.seed = 42;
  const part::PartitionResult r = kl.run(g, request);
  const std::uint64_t fp = fingerprint(r.partition);
  std::printf("KL fingerprint: 0x%llxull\n",
              static_cast<unsigned long long>(fp));
  EXPECT_EQ(fp, 0x30dbb270ea4905cdull);
}

TEST(GoldenDeterminism, RepeatRunsIdentical) {
  const graph::Graph g = pn_graph(300, 7);
  part::GpOptions options;
  options.max_cycles = 2;
  part::GpPartitioner gp(options);
  const part::PartitionResult a = gp.run(g, request_for(g));
  const part::PartitionResult b = gp.run(g, request_for(g));
  EXPECT_EQ(fingerprint(a.partition), fingerprint(b.partition));
}

}  // namespace
