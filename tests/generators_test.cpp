#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace ppnpart::graph {
namespace {

TEST(Generators, GnmExactEdgeCount) {
  support::Rng rng(1);
  const Graph g = erdos_renyi_gnm(30, 100, rng);
  EXPECT_EQ(g.num_nodes(), 30u);
  EXPECT_EQ(g.num_edges(), 100u);
  EXPECT_TRUE(g.validate().empty());
}

TEST(Generators, GnmCapsAtCompleteGraph) {
  support::Rng rng(2);
  const Graph g = erdos_renyi_gnm(5, 1000, rng);
  EXPECT_EQ(g.num_edges(), 10u);
}

TEST(Generators, GnmWeightRangesRespected) {
  support::Rng rng(3);
  const Graph g = erdos_renyi_gnm(40, 150, rng, {5, 9}, {2, 4});
  const DegreeStats s = degree_stats(g);
  EXPECT_GE(s.min_node_weight, 5);
  EXPECT_LE(s.max_node_weight, 9);
  EXPECT_GE(s.min_edge_weight, 2);
  EXPECT_LE(s.max_edge_weight, 4);
}

TEST(Generators, GnmDeterministicPerSeed) {
  support::Rng a(7), b(7), c(8);
  const Graph ga = erdos_renyi_gnm(20, 50, a);
  const Graph gb = erdos_renyi_gnm(20, 50, b);
  const Graph gc = erdos_renyi_gnm(20, 50, c);
  EXPECT_EQ(ga.adj(), gb.adj());
  EXPECT_NE(ga.adj(), gc.adj());
}

TEST(Generators, GeometricRespectsRadius) {
  support::Rng rng(4);
  const Graph sparse = random_geometric(50, 0.01, rng);
  support::Rng rng2(4);
  const Graph dense = random_geometric(50, 0.9, rng2);
  EXPECT_LT(sparse.num_edges(), dense.num_edges());
  EXPECT_TRUE(dense.validate().empty());
}

TEST(Generators, PreferentialAttachmentConnectedAndSkewed) {
  support::Rng rng(5);
  const Graph g = preferential_attachment(200, 2, rng);
  EXPECT_TRUE(is_connected(g));
  const DegreeStats s = degree_stats(g);
  EXPECT_GT(s.max_degree, 10u);  // hubs emerge
}

TEST(Generators, ProcessNetworkConnected) {
  ProcessNetworkParams params;
  params.num_nodes = 120;
  params.layers = 10;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    support::Rng rng(seed);
    const Graph g = random_process_network(params, rng);
    EXPECT_EQ(g.num_nodes(), 120u);
    EXPECT_TRUE(is_connected(g)) << "seed " << seed;
    EXPECT_TRUE(g.validate().empty());
  }
}

TEST(Generators, ProcessNetworkWeightsInRange) {
  ProcessNetworkParams params;
  params.num_nodes = 80;
  params.resource = {10, 40};
  params.hub_fraction = 0.0;
  support::Rng rng(6);
  const Graph g = random_process_network(params, rng);
  const DegreeStats s = degree_stats(g);
  EXPECT_GE(s.min_node_weight, 10);
  EXPECT_LE(s.max_node_weight, 40);
}

TEST(Generators, ProcessNetworkHubsScaleUp) {
  ProcessNetworkParams params;
  params.num_nodes = 200;
  params.resource = {10, 10};
  params.hub_fraction = 0.5;
  support::Rng rng(7);
  const Graph g = random_process_network(params, rng);
  EXPECT_EQ(degree_stats(g).max_node_weight, 30);  // 3x hub scaling
}

TEST(Generators, RingOfCliquesStructure) {
  const Graph g = ring_of_cliques(4, 5, 10, 1);
  EXPECT_EQ(g.num_nodes(), 20u);
  // 4 cliques of C(5,2)=10 edges plus 4 ring edges.
  EXPECT_EQ(g.num_edges(), 44u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(g.validate().empty());
}

TEST(Generators, Grid2dStructure) {
  const Graph g = grid2d(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_edges(), 17u);  // 3*3 + 2*4 horizontal/vertical
  EXPECT_TRUE(is_connected(g));
  // Corner has degree 2, centre 4.
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(5), 4u);
}

TEST(Generators, StreamedProcessNetworkValidConnectedDeterministic) {
  ProcessNetworkParams params;
  params.num_nodes = 5000;
  params.layers = 40;
  params.forward_degree = 2.4;
  support::Rng a(11), b(11), c(12);
  const Graph ga = streamed_process_network(params, a);
  EXPECT_TRUE(ga.validate().empty()) << ga.validate();
  EXPECT_TRUE(is_connected(ga));
  EXPECT_GE(ga.num_edges(), static_cast<std::uint64_t>(params.num_nodes));
  const Graph gb = streamed_process_network(params, b);
  EXPECT_EQ(ga.adj(), gb.adj());
  EXPECT_EQ(ga.node_weights(), gb.node_weights());
  const Graph gc = streamed_process_network(params, c);
  EXPECT_NE(ga.adj(), gc.adj());
}

TEST(Generators, StreamedProcessNetworkWeightsInRange) {
  ProcessNetworkParams params;
  params.num_nodes = 2000;
  params.resource = {10, 80};
  params.bandwidth = {1, 12};
  support::Rng rng(13);
  const Graph g = streamed_process_network(params, rng);
  const DegreeStats s = degree_stats(g);
  EXPECT_GE(s.min_node_weight, 10);
  EXPECT_LE(s.max_node_weight, 3 * 80);  // hubs scale 3x
  EXPECT_GE(s.min_edge_weight, 1);
  EXPECT_LE(s.max_edge_weight, 12);
}

TEST(Generators, EmptyInputsProduceEmptyGraphs) {
  support::Rng rng(8);
  EXPECT_EQ(erdos_renyi_gnm(0, 5, rng).num_nodes(), 0u);
  EXPECT_EQ(preferential_attachment(0, 2, rng).num_nodes(), 0u);
  EXPECT_EQ(ring_of_cliques(0, 3).num_nodes(), 0u);
  ProcessNetworkParams params;
  params.num_nodes = 0;
  EXPECT_EQ(random_process_network(params, rng).num_nodes(), 0u);
  EXPECT_EQ(streamed_process_network(params, rng).num_nodes(), 0u);
}

}  // namespace
}  // namespace ppnpart::graph
