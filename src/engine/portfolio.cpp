#include "engine/portfolio.hpp"

#include <algorithm>

#include "engine/fingerprint.hpp"
#include "partition/partitioner.hpp"
#include "support/strings.hpp"

namespace ppnpart::engine {

Portfolio Portfolio::defaults() {
  return Portfolio{{"gp", "metislike", "annealing", "tabu"}};
}

support::Result<Portfolio> Portfolio::parse(const std::string& spec) {
  if (spec.empty() || spec == "default") return defaults();
  const std::vector<std::string> names = part::partitioner_names();
  Portfolio p;
  for (const std::string& raw : support::split(spec, ',')) {
    std::string name = raw;
    name.erase(std::remove(name.begin(), name.end(), ' '), name.end());
    if (name.empty()) continue;
    if (std::find(names.begin(), names.end(), name) == names.end()) {
      return support::Status::error(
          support::StatusCode::kInvalidArgument,
          "unknown portfolio member '" + name + "' (see partitioner_names())");
    }
    p.members.push_back(std::move(name));
  }
  if (p.members.empty())
    return support::Status::error(support::StatusCode::kInvalidArgument,
                                  "portfolio spec names no algorithms");
  return p;
}

std::uint64_t Portfolio::fingerprint() const {
  std::uint64_t h = 0x706f7274666f6c69ull;  // "portfoli"
  for (const std::string& m : members) h = hash_string(h, m);
  return h;
}

std::string Portfolio::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (i > 0) out += ',';
    out += members[i];
  }
  return out;
}

}  // namespace ppnpart::engine
