#include "ppn/network.hpp"

#include <stdexcept>

#include "support/strings.hpp"

namespace ppnpart::ppn {

std::uint32_t ProcessNetwork::add_process(Process p) {
  if (p.resources < 0)
    throw std::invalid_argument("add_process: negative resources");
  processes_.push_back(std::move(p));
  return static_cast<std::uint32_t>(processes_.size() - 1);
}

std::uint32_t ProcessNetwork::add_process(const std::string& name,
                                          Weight resources,
                                          std::uint64_t firings) {
  Process p;
  p.name = name;
  p.resources = resources;
  p.firings = firings;
  return add_process(std::move(p));
}

void ProcessNetwork::add_channel(Channel c) {
  if (c.src >= num_processes() || c.dst >= num_processes())
    throw std::out_of_range("add_channel: endpoint out of range");
  if (c.src == c.dst)
    throw std::invalid_argument("add_channel: self channel");
  if (c.bandwidth <= 0)
    throw std::invalid_argument("add_channel: bandwidth must be positive");
  if (c.volume == 0) c.volume = static_cast<std::uint64_t>(c.bandwidth);
  channels_.push_back(std::move(c));
}

void ProcessNetwork::add_channel(std::uint32_t src, std::uint32_t dst,
                                 Weight bandwidth, std::uint64_t volume,
                                 std::string label) {
  Channel c;
  c.src = src;
  c.dst = dst;
  c.bandwidth = bandwidth;
  c.volume = volume;
  c.label = std::move(label);
  add_channel(std::move(c));
}

Weight ProcessNetwork::total_resources() const {
  Weight sum = 0;
  for (const Process& p : processes_) sum += p.resources;
  return sum;
}

Weight ProcessNetwork::total_bandwidth() const {
  Weight sum = 0;
  for (const Channel& c : channels_) sum += c.bandwidth;
  return sum;
}

std::vector<std::size_t> ProcessNetwork::in_channels(std::uint32_t i) const {
  std::vector<std::size_t> out;
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    if (channels_[c].dst == i) out.push_back(c);
  }
  return out;
}

std::vector<std::size_t> ProcessNetwork::out_channels(std::uint32_t i) const {
  std::vector<std::size_t> out;
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    if (channels_[c].src == i) out.push_back(c);
  }
  return out;
}

std::string ProcessNetwork::validate() const {
  using support::str_format;
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    if (processes_[i].resources < 0)
      return str_format("process %zu has negative resources", i);
    if (processes_[i].firings == 0)
      return str_format("process %zu has zero firings", i);
  }
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    const Channel& ch = channels_[c];
    if (ch.src >= processes_.size() || ch.dst >= processes_.size())
      return str_format("channel %zu endpoint out of range", c);
    if (ch.src == ch.dst) return str_format("channel %zu is a self loop", c);
    if (ch.bandwidth <= 0)
      return str_format("channel %zu has non-positive bandwidth", c);
  }
  return {};
}

graph::Graph to_graph(const ProcessNetwork& network) {
  graph::GraphBuilder builder(network.num_processes());
  for (std::uint32_t i = 0; i < network.num_processes(); ++i) {
    builder.set_node_weight(i, network.process(i).resources);
  }
  // GraphBuilder merges parallel/bidirectional channels by summing weights.
  for (const Channel& c : network.channels()) {
    builder.add_edge(c.src, c.dst, c.bandwidth);
  }
  return builder.build();
}

ProcessNetwork from_graph(const graph::Graph& g, const std::string& name) {
  ProcessNetwork network(name);
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    network.add_process("p" + std::to_string(u), g.node_weight(u));
  }
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i]) {
        network.add_channel(u, nbrs[i], wgts[i],
                            static_cast<std::uint64_t>(wgts[i]) * 64);
      }
    }
  }
  return network;
}

}  // namespace ppnpart::ppn
