#pragma once
// Graphviz/DOT export of (partitioned) process networks — regenerates the
// paper's Figures 2-13: node radius proportional to resource weight, edge
// labels carrying bandwidth, one colour/cluster per partition.

#include <iosfwd>
#include <string>

#include "partition/partition.hpp"
#include "ppn/network.hpp"
#include "support/status.hpp"

namespace ppnpart::viz {

struct DotOptions {
  /// Scale node diameter with sqrt(resources) (the paper's "radius of nodes
  /// proportional to weight").
  bool size_by_resources = true;
  bool show_edge_weights = true;
  bool show_node_weights = true;
  /// Group each part into a clustered subgraph with a fill colour.
  bool cluster_parts = true;
  std::string graph_name = "ppn";
};

/// Unpartitioned network (Figures 2, 6, 10 — plain; 3, 7, 11 — weighted).
void write_network_dot(std::ostream& out, const ppn::ProcessNetwork& network,
                       const DotOptions& options = {});

/// Partitioned network (Figures 4/5, 8/9, 12/13).
void write_partitioned_dot(std::ostream& out,
                           const ppn::ProcessNetwork& network,
                           const part::Partition& partition,
                           const DotOptions& options = {});

support::Status write_network_dot_file(const std::string& path,
                                       const ppn::ProcessNetwork& network,
                                       const DotOptions& options = {});
support::Status write_partitioned_dot_file(const std::string& path,
                                           const ppn::ProcessNetwork& network,
                                           const part::Partition& partition,
                                           const DotOptions& options = {});

}  // namespace ppnpart::viz
