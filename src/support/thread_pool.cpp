#include "support/thread_pool.hpp"

#include <algorithm>

namespace ppnpart::support {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t max_chunks = pool.size() * 4;
  const std::size_t chunk =
      std::max(grain, (n + max_chunks - 1) / std::max<std::size_t>(max_chunks, 1));
  if (n <= chunk || pool.size() == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve((n + chunk - 1) / chunk);
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    futures.push_back(pool.submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  parallel_for(ThreadPool::global(), begin, end, fn, grain);
}

}  // namespace ppnpart::support
