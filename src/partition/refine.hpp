#pragma once
// Refinement algorithms (paper Sections IV-B / IV-C).
//
//  * constrained_fm_refine — the paper's "FM-based algorithm": a
//    Fiduccia–Mattheyses pass generalised to k parts whose gain is the
//    lexicographic goodness (resource excess, bandwidth excess, cut). Each
//    pass moves every node at most once, accepts temporarily-worsening moves
//    and commits the best prefix (classic FM hill-climbing), so it can
//    escape local minima while repairing constraint violations.
//  * greedy_cut_refine — METIS-style k-way boundary refinement: positive
//    cut-gain moves only, subject to a hard balance cap. Used by the
//    MetisLike baseline, which models METIS's behavioural contract.
//  * bisection_fm_refine — 2-way FM with per-side weight caps, used inside
//    the MetisLike recursive-bisection initial partitioning.

#include <cstdint>

#include "partition/move_context.hpp"
#include "partition/partition.hpp"
#include "partition/workspace.hpp"
#include "support/prng.hpp"

namespace ppnpart::part {

struct FmOptions {
  std::uint32_t max_passes = 8;
  /// Per-pass move budget; 0 means every node may move once.
  std::uint64_t move_limit = 0;
  /// Seed the candidate heap with boundary nodes plus the nodes of
  /// overloaded parts (false: every node).
  bool seed_boundary_only = true;
};

/// Refines `p` in place toward lower goodness under `c`. Returns true iff
/// the goodness strictly improved. The Workspace overload is the
/// allocation-free hot path (scratch reused across calls); the plain
/// overload spins up a private workspace — results are identical.
bool constrained_fm_refine(const Graph& g, Partition& p, const Constraints& c,
                           const FmOptions& options, support::Rng& rng,
                           Workspace& ws);
bool constrained_fm_refine(const Graph& g, Partition& p, const Constraints& c,
                           const FmOptions& options, support::Rng& rng);

struct GreedyRefineOptions {
  std::uint32_t max_passes = 8;
};

/// Cut-only greedy boundary refinement with hard max-load cap. Moves are
/// applied immediately when they strictly reduce the cut (or keep it equal
/// while improving the load spread) and respect the cap. Returns true iff
/// the cut improved.
bool greedy_cut_refine(const Graph& g, Partition& p, Weight max_load,
                       const GreedyRefineOptions& options, support::Rng& rng,
                       Workspace& ws);
bool greedy_cut_refine(const Graph& g, Partition& p, Weight max_load,
                       const GreedyRefineOptions& options, support::Rng& rng);

/// 2-way FM with independent side caps (cap0 for part 0, cap1 for part 1).
/// Minimizes (total overweight, cut) lexicographically. Returns true iff
/// improved.
bool bisection_fm_refine(const Graph& g, Partition& p, Weight cap0,
                         Weight cap1, std::uint32_t max_passes,
                         support::Rng& rng, Workspace& ws);
bool bisection_fm_refine(const Graph& g, Partition& p, Weight cap0,
                         Weight cap1, std::uint32_t max_passes,
                         support::Rng& rng);

struct SwapRefineOptions {
  std::uint32_t max_passes = 4;
  /// Skip graphs larger than this (the pair scan is quadratic; it is meant
  /// for coarsest-level graphs and small instances).
  NodeId max_nodes = 200;
};

/// Steepest-descent over the pairwise *swap* neighbourhood under the
/// goodness objective. When Rmax is tight every part is full, so any single
/// FM move transits a deep resource violation — swaps sidestep that by
/// exchanging near-equal weights, which is exactly the move the paper's
/// tight Experiment 3 needs. Returns true iff goodness improved.
bool swap_refine(const Graph& g, Partition& p, const Constraints& c,
                 const SwapRefineOptions& options, support::Rng& rng,
                 Workspace& ws);
bool swap_refine(const Graph& g, Partition& p, const Constraints& c,
                 const SwapRefineOptions& options, support::Rng& rng);

}  // namespace ppnpart::part
