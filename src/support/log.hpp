#pragma once
// Leveled logging to stderr. Thread-safe, globally configurable, off by
// default above WARN so library users control verbosity.

#include <sstream>
#include <string>

namespace ppnpart::support {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line (with level prefix) if `level` >= the global level.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define PPNPART_LOG(level) ::ppnpart::support::detail::LogLine(level)
#define PPNPART_DEBUG PPNPART_LOG(::ppnpart::support::LogLevel::kDebug)
#define PPNPART_INFO PPNPART_LOG(::ppnpart::support::LogLevel::kInfo)
#define PPNPART_WARN PPNPART_LOG(::ppnpart::support::LogLevel::kWarn)
#define PPNPART_ERROR PPNPART_LOG(::ppnpart::support::LogLevel::kError)

}  // namespace ppnpart::support
