// Tests for the n-level partitioner (paper ref. [2], Osipov & Sanders):
// single-edge contraction hierarchy, greedy coarsest seeding, localized
// uncoarsening search. The partitioner must agree with the static-graph
// metric code and behave like a constraint-aware algorithm on the paper's
// instances.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/nlevel.hpp"
#include "partition/spectral.hpp"
#include "ppn/paper_instances.hpp"

namespace ppnpart::part {
namespace {

using graph::Graph;

PartitionRequest basic_request(PartId k, std::uint64_t seed) {
  PartitionRequest r;
  r.k = k;
  r.seed = seed;
  return r;
}

TEST(NLevel, ProducesCompletePartition) {
  support::Rng rng(3);
  const Graph g = graph::erdos_renyi_gnm(80, 240, rng, {1, 6}, {1, 10});
  const PartitionResult r = NLevelPartitioner().run(g, basic_request(4, 7));
  EXPECT_TRUE(r.partition.complete());
  EXPECT_EQ(r.algorithm, "NLevel");
  const PartitionMetrics reference = compute_metrics(g, r.partition);
  EXPECT_EQ(r.metrics.total_cut, reference.total_cut);
  EXPECT_EQ(r.metrics.max_pairwise_cut, reference.max_pairwise_cut);
}

TEST(NLevel, HandlesGraphSmallerThanStopSize) {
  support::Rng rng(5);
  const Graph g = graph::erdos_renyi_gnm(10, 20, rng, {1, 4}, {1, 4});
  NLevelOptions options;
  options.stop_size = 64;  // no contraction happens at all
  const PartitionResult r =
      NLevelPartitioner(options).run(g, basic_request(3, 11));
  EXPECT_TRUE(r.partition.complete());
}

TEST(NLevel, HandlesDisconnectedGraph) {
  // Two components with no bridging edge: contraction stalls early (heap
  // drains), initial partitioning must still cover both components.
  graph::GraphBuilder b(8);
  for (graph::NodeId u = 0; u < 8; ++u) b.set_node_weight(u, 1);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 2, 5);
  b.add_edge(2, 3, 5);
  b.add_edge(4, 5, 5);
  b.add_edge(5, 6, 5);
  b.add_edge(6, 7, 5);
  const Graph g = b.build();
  NLevelOptions options;
  options.stop_size = 2;
  const PartitionResult r =
      NLevelPartitioner(options).run(g, basic_request(2, 13));
  EXPECT_TRUE(r.partition.complete());
  // The natural 2-cut is 0 (the components themselves).
  EXPECT_EQ(r.metrics.total_cut, 0);
}

TEST(NLevel, MeetsConstraintsOnPaperInstances) {
  for (int i = 1; i <= 3; ++i) {
    const ppn::PaperInstance inst = ppn::paper_instance(i);
    PartitionRequest r;
    r.k = inst.k;
    r.seed = 17;
    r.constraints = inst.constraints;
    NLevelOptions options;
    options.stop_size = 8;
    const PartitionResult result =
        NLevelPartitioner(options).run(inst.graph, r);
    EXPECT_TRUE(result.partition.complete()) << "instance " << i;
    // n-level with constrained local search should land feasible on at
    // least the two loose instances; instance 3 is near-tight so only
    // completeness is required there.
    if (i != 3) EXPECT_TRUE(result.feasible) << "instance " << i;
  }
}

TEST(NLevel, DeterministicGivenSeed) {
  support::Rng rng(19);
  const Graph g = graph::erdos_renyi_gnm(50, 140, rng, {1, 5}, {1, 9});
  NLevelPartitioner nl;
  const PartitionResult a = nl.run(g, basic_request(3, 23));
  const PartitionResult b = nl.run(g, basic_request(3, 23));
  EXPECT_EQ(a.partition.assignments(), b.partition.assignments());
}

TEST(NLevel, FindsNaturalCliquePartition) {
  const Graph g = graph::ring_of_cliques(4, 8, 20, 1);
  const PartitionResult r = NLevelPartitioner().run(g, basic_request(4, 29));
  EXPECT_LE(r.metrics.total_cut, 4);  // only ring bridges cut
}

TEST(NLevel, EmptyGraph) {
  const Graph g;
  const PartitionResult r = NLevelPartitioner().run(g, basic_request(2, 1));
  EXPECT_EQ(r.partition.size(), 0u);
}

TEST(NLevel, SingleNode) {
  graph::GraphBuilder b(1);
  b.set_node_weight(0, 7);
  const Graph g = b.build();
  const PartitionResult r = NLevelPartitioner().run(g, basic_request(2, 1));
  EXPECT_TRUE(r.partition.complete());
  EXPECT_EQ(r.metrics.total_cut, 0);
}

TEST(NLevel, ThrowsOnNonPositiveK) {
  const Graph g = graph::ring_of_cliques(2, 4, 5, 1);
  NLevelPartitioner nl;
  EXPECT_THROW(nl.run(g, basic_request(0, 1)), std::invalid_argument);
}

TEST(NLevel, LargerGraphStaysNearMetisLikeQuality) {
  graph::ProcessNetworkParams params;
  params.num_nodes = 2000;
  support::Rng rng(31);
  const Graph g = graph::random_process_network(params, rng);
  PartitionRequest r = basic_request(8, 37);
  const PartitionResult nl = NLevelPartitioner().run(g, r);
  const PartitionResult rnd = RandomPartitioner().run(g, r);
  EXPECT_TRUE(nl.partition.complete());
  EXPECT_LT(nl.metrics.total_cut, rnd.metrics.total_cut);
}

class NLevelSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NLevelSeedSweep, MetricsMatchReferenceAcrossSeeds) {
  const std::uint64_t seed = GetParam();
  support::Rng rng(seed);
  const Graph g = graph::erdos_renyi_gnm(64, 180, rng, {1, 7}, {1, 11});
  PartitionRequest r = basic_request(4, seed + 100);
  r.constraints.rmax =
      static_cast<Weight>(0.4 * static_cast<double>(g.total_node_weight()));
  const PartitionResult result = NLevelPartitioner().run(g, r);
  EXPECT_TRUE(result.partition.complete());
  const PartitionMetrics reference = compute_metrics(g, result.partition);
  EXPECT_EQ(result.metrics.total_cut, reference.total_cut);
  EXPECT_EQ(result.metrics.max_load, reference.max_load);
  EXPECT_EQ(result.metrics.max_pairwise_cut, reference.max_pairwise_cut);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NLevelSeedSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace ppnpart::part
