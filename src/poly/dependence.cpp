#include "poly/dependence.hpp"

#include <map>
#include <set>
#include <stdexcept>

namespace ppnpart::poly {

DependenceAnalysis compute_dependences(const Program& program,
                                       const DependenceOptions& options) {
  const std::string problem = program.validate();
  if (!problem.empty())
    throw std::invalid_argument("compute_dependences: " + problem);

  DependenceAnalysis out;

  // Produced index sets, one per written array (exact enumeration).
  std::map<std::string, std::set<std::vector<std::int64_t>>> produced;
  for (const Statement& s : program.statements) {
    if (!s.write) continue;
    if (s.domain.box_volume() > options.enumeration_cap)
      throw std::runtime_error("compute_dependences: domain of " + s.name +
                               " exceeds enumeration cap");
    auto& set = produced[s.write->array];
    s.domain.for_each_point([&](std::span<const std::int64_t> point) {
      set.insert(s.write->evaluate(point));
    });
  }

  for (std::size_t ci = 0; ci < program.statements.size(); ++ci) {
    const Statement& consumer = program.statements[ci];
    if (consumer.domain.box_volume() > options.enumeration_cap)
      throw std::runtime_error("compute_dependences: domain of " +
                               consumer.name + " exceeds enumeration cap");
    for (std::size_t ri = 0; ri < consumer.reads.size(); ++ri) {
      const ArrayAccess& read = consumer.reads[ri];
      const std::int64_t writer = program.writer_of(read.array);
      if (writer < 0) {
        // External input: every read is a token from the source process.
        DependenceAnalysis::ExternalRead ext;
        ext.consumer = ci;
        ext.read_index = ri;
        ext.array = read.array;
        ext.volume = consumer.domain.cardinality();
        out.external_reads.push_back(ext);
        continue;
      }
      const auto& set = produced[read.array];
      std::uint64_t volume = 0;
      consumer.domain.for_each_point([&](std::span<const std::int64_t> point) {
        if (set.find(read.evaluate(point)) != set.end()) ++volume;
      });
      if (volume == 0 && options.drop_empty) continue;
      Dependence dep;
      dep.producer = static_cast<std::size_t>(writer);
      dep.consumer = ci;
      dep.array = read.array;
      dep.read_index = ri;
      dep.volume = volume;
      out.flows.push_back(dep);
    }
  }
  return out;
}

}  // namespace ppnpart::poly
