#pragma once
// MetisLike — a from-scratch reimplementation of the baseline the paper
// compares against (METIS 5.1 multilevel k-way, default parameters).
//
// It fulfils METIS's behavioural contract and nothing more: minimize the
// global edge cut subject to a ~3% balance constraint on node weight. It is
// deliberately unaware of the paper's Rmax/Bmax constraints — that blindness
// is exactly what Tables I–III demonstrate.
//
// Pipeline (Karypis–Kumar SIAM'98 structure):
//   coarsen with heavy-edge matching  ->  recursive bisection of the
//   coarsest graph (BFS region growing + 2-way FM)  ->  uncoarsen with
//   greedy k-way boundary refinement under the balance cap.

#include <cstdint>

#include "partition/partitioner.hpp"

namespace ppnpart::part {

struct MetisLikeOptions {
  /// Allowed max-load factor over perfect balance (METIS ufactor 30 ≈ 1.03).
  double imbalance = 1.03;
  /// Coarsening stops at max(this, 20 * k) nodes; 0 keeps the default.
  NodeId coarsen_to = 0;
  std::uint32_t refine_passes = 8;
  std::uint32_t bisection_fm_passes = 10;
  /// Balance node *count* instead of node weight — how the paper's authors
  /// ran METIS (resources were tallied only after the fact; Tables I–III
  /// show METIS exceeding Rmax by ~11%, far beyond ufactor 30's 3%, which
  /// is only possible when vertex weights don't enter the balance).
  bool unit_vertex_balance = false;
};

class MetisLikePartitioner : public Partitioner {
 public:
  explicit MetisLikePartitioner(MetisLikeOptions options = {});

  std::string name() const override { return "MetisLike"; }
  PartitionResult run(const Graph& g, const PartitionRequest& request) override;

  const MetisLikeOptions& options() const { return options_; }

 private:
  MetisLikeOptions options_;
};

}  // namespace ppnpart::part
