// Portfolio engine: determinism under fixed seed, cache hit/miss
// accounting, budget enforcement, batch results matching the best
// single-algorithm result at equal seeds, the streaming entry points,
// shared-graph batches (one fingerprint, one coarsening per options key)
// and single-flight coalescing of identical in-flight jobs.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "engine/cache.hpp"
#include "engine/engine.hpp"
#include "engine/fingerprint.hpp"
#include "engine/portfolio.hpp"
#include "graph/generators.hpp"
#include "partition/coarsen_cache.hpp"
#include "support/prng.hpp"
#include "support/status.hpp"
#include "support/stop_token.hpp"
#include "support/thread_pool.hpp"

namespace ppnpart {
namespace {

std::shared_ptr<const graph::Graph> make_shared_graph(
    std::uint64_t seed, graph::NodeId nodes) {
  graph::ProcessNetworkParams params;
  params.num_nodes = nodes;
  params.layers = std::max<std::uint32_t>(4, nodes / 12);
  support::Rng rng(seed);
  return std::make_shared<const graph::Graph>(
      graph::random_process_network(params, rng));
}

/// A reproducible mid-size instance with loose-ish constraints so the
/// constraint-aware members usually reach feasibility.
engine::Job make_job(std::uint64_t seed, graph::NodeId nodes = 96,
                     double slack = 1.4) {
  engine::Job job;
  job.graph = make_shared_graph(seed, nodes);
  job.request.k = 4;
  job.request.seed = seed * 31 + 7;
  const double total_w = static_cast<double>(job.graph->total_node_weight());
  const double total_e = static_cast<double>(job.graph->total_edge_weight());
  job.request.constraints.rmax = std::max<graph::Weight>(
      static_cast<graph::Weight>(slack * total_w / job.request.k),
      job.graph->max_node_weight());
  job.request.constraints.bmax = std::max<graph::Weight>(
      1, static_cast<graph::Weight>(slack * total_e / 6.0 / 2.0));
  return job;
}

// ----------------------------------------------------------- portfolio ---

TEST(Portfolio, DefaultsAreRegistered) {
  const engine::Portfolio p = engine::Portfolio::defaults();
  ASSERT_FALSE(p.empty());
  for (const std::string& name : p.members) {
    EXPECT_NE(part::make_partitioner(name), nullptr) << name;
  }
}

TEST(Portfolio, ParseAcceptsListsAndDefaultKeyword) {
  auto p = engine::Portfolio::parse("gp, annealing,tabu");
  ASSERT_TRUE(p.is_ok()) << p.message();
  EXPECT_EQ(p.value().members,
            (std::vector<std::string>{"gp", "annealing", "tabu"}));
  EXPECT_EQ(engine::Portfolio::parse("default").value().members,
            engine::Portfolio::defaults().members);
  EXPECT_EQ(engine::Portfolio::parse("").value().members,
            engine::Portfolio::defaults().members);
}

TEST(Portfolio, ParseRejectsUnknownNames) {
  EXPECT_FALSE(engine::Portfolio::parse("gp,notanalgo").is_ok());
  EXPECT_FALSE(engine::Portfolio::parse(",, ,").is_ok());
}

TEST(Portfolio, FingerprintIsOrderSensitive) {
  const auto a = engine::Portfolio{{"gp", "tabu"}}.fingerprint();
  const auto b = engine::Portfolio{{"tabu", "gp"}}.fingerprint();
  EXPECT_NE(a, b);
}

// --------------------------------------------------------- fingerprints ---

TEST(Fingerprint, GraphAndRequestSensitivity) {
  const engine::Job j1 = make_job(1);
  const engine::Job j2 = make_job(2);
  EXPECT_EQ(engine::graph_fingerprint(*j1.graph),
            engine::graph_fingerprint(*j1.graph));
  EXPECT_NE(engine::graph_fingerprint(*j1.graph),
            engine::graph_fingerprint(*j2.graph));
  // One digest across the stack: the partition layer's graph_digest (used
  // by the coarsening cache) is the engine fingerprint.
  EXPECT_EQ(engine::graph_fingerprint(*j1.graph), part::graph_digest(*j1.graph));

  part::PartitionRequest r1 = j1.request;
  part::PartitionRequest r2 = r1;
  EXPECT_EQ(engine::request_fingerprint(r1), engine::request_fingerprint(r2));
  r2.seed += 1;
  EXPECT_NE(engine::request_fingerprint(r1), engine::request_fingerprint(r2));
  r2 = r1;
  r2.k += 1;
  EXPECT_NE(engine::request_fingerprint(r1), engine::request_fingerprint(r2));
  r2 = r1;
  r2.constraints.rmax = 12345;
  EXPECT_NE(engine::request_fingerprint(r1), engine::request_fingerprint(r2));
}

// ----------------------------------------------------------------- cache ---

TEST(LruCache, HitMissEvictLifecycle) {
  engine::LruCache<int> cache(2);
  EXPECT_FALSE(cache.lookup(1).has_value());
  cache.insert(1, 10);
  cache.insert(2, 20);
  EXPECT_EQ(cache.lookup(1).value(), 10);  // 1 becomes most recent
  cache.insert(3, 30);                     // evicts 2
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_EQ(cache.lookup(1).value(), 10);
  EXPECT_EQ(cache.lookup(3).value(), 30);
  const engine::CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.insertions, 3u);
  EXPECT_EQ(s.evictions, 1u);
}

TEST(LruCache, EvictionFollowsRecencyOrder) {
  engine::LruCache<int> cache(3);
  cache.insert(1, 10);
  cache.insert(2, 20);
  cache.insert(3, 30);
  // Touch 1 then 2: LRU order (old -> new) becomes 3, 1, 2.
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_TRUE(cache.lookup(2).has_value());
  cache.insert(4, 40);  // evicts 3, the least recently used
  EXPECT_FALSE(cache.lookup(3).has_value());
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_TRUE(cache.lookup(2).has_value());
  EXPECT_TRUE(cache.lookup(4).has_value());
  cache.insert(5, 50);  // now 1 is oldest
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(LruCache, ZeroCapacityDisablesButCountsTraffic) {
  engine::LruCache<int> cache(0);
  cache.insert(1, 10);
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_FALSE(cache.lookup(2).has_value());
  const engine::CacheStats s = cache.stats();
  // A disabled cache still sees the traffic: every lookup is a miss, so
  // hit_rate() reports 0/N rather than a vacuous 0/0.
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.insertions, 0u);
  EXPECT_EQ(s.hit_rate(), 0.0);
}

// ---------------------------------------------------------------- engine ---

TEST(Engine, DeterministicForFixedSeed) {
  const engine::Job job = make_job(42);
  engine::EngineOptions opts;
  opts.cache_capacity = 0;  // force both runs to compute from scratch

  engine::Engine a(opts);
  engine::Engine b(opts);
  const engine::PortfolioOutcome ra = a.run_one(job.graph, job.request);
  const engine::PortfolioOutcome rb = b.run_one(job.graph, job.request);

  ASSERT_FALSE(ra.winner.empty());
  EXPECT_EQ(ra.winner, rb.winner);
  EXPECT_EQ(ra.best.partition.assignments(), rb.best.partition.assignments());
  EXPECT_EQ(ra.best.metrics.total_cut, rb.best.metrics.total_cut);
  EXPECT_EQ(ra.best.metrics.max_load, rb.best.metrics.max_load);
  EXPECT_FALSE(ra.from_cache);
  EXPECT_FALSE(rb.from_cache);
}

TEST(Engine, CacheHitMissAccounting) {
  const engine::Job job = make_job(7);
  engine::Engine eng;

  const auto first = eng.run_one(job.graph, job.request);
  EXPECT_FALSE(first.from_cache);
  const auto second = eng.run_one(job.graph, job.request);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(first.best.partition.assignments(),
            second.best.partition.assignments());
  EXPECT_EQ(first.winner, second.winner);

  engine::EngineStats stats = eng.stats();
  EXPECT_EQ(stats.jobs_completed, 2u);
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.misses, 1u);
  // The shared graph pointer is fingerprinted once, then memoized.
  EXPECT_EQ(stats.graph_fingerprints_computed, 1u);

  // A different seed is a different question — must miss.
  part::PartitionRequest other = job.request;
  other.seed += 1;
  const auto third = eng.run_one(job.graph, other);
  EXPECT_FALSE(third.from_cache);
  stats = eng.stats();
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.misses, 2u);

  eng.clear_cache();
  const auto fourth = eng.run_one(job.graph, job.request);
  EXPECT_FALSE(fourth.from_cache);
}

TEST(Engine, BudgetEnforcementStillYieldsCompleteAnswer) {
  const engine::Job job = make_job(3, /*nodes=*/700, /*slack=*/1.2);
  engine::EngineOptions opts;
  opts.time_budget_ms = 30;  // far below an unbudgeted portfolio run
  engine::Engine eng(opts);

  const auto out = eng.run_one(job.graph, job.request);
  ASSERT_FALSE(out.winner.empty());
  EXPECT_TRUE(out.best.partition.complete());
  EXPECT_EQ(out.best.partition.size(), job.graph->num_nodes());
  // Cooperative budgets overshoot by at most one checkpoint per member;
  // allow a generous CI margin while still catching "budget ignored".
  EXPECT_LT(out.seconds, 60.0);
  for (const auto& m : out.members) EXPECT_FALSE(m.failed) << m.error;
}

TEST(Engine, BatchMatchesBestSingleAlgorithmAtEqualSeeds) {
  const engine::Job job = make_job(11);
  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"gp", "metislike", "annealing"}};
  opts.cache_capacity = 0;
  engine::Engine eng(opts);

  const auto batch = eng.run_batch({job});
  ASSERT_EQ(batch.size(), 1u);
  const engine::PortfolioOutcome& out = batch.front();
  ASSERT_FALSE(out.winner.empty());

  // Reproduce each member by hand with the engine's seed derivation and a
  // coarsening cache of our own (cached coarsenings are canonical — a pure
  // function of graph + options — so any cache reproduces the engine's
  // hierarchy); the engine's answer must equal the lexicographic best.
  part::CoarseningCache cc;
  part::Goodness best_good;
  std::vector<part::PartId> best_assign;
  std::string best_name;
  bool have = false;
  for (std::size_t i = 0; i < opts.portfolio.members.size(); ++i) {
    auto algo = part::make_partitioner(opts.portfolio.members[i]);
    part::PartitionRequest req = job.request;
    req.seed = support::SeedStream(job.request.seed).seed_for(i);
    req.coarsen_cache = &cc;
    const part::PartitionResult r = algo->run(*job.graph, req);
    const part::Goodness good{r.violation.resource_excess,
                              r.violation.bandwidth_excess,
                              r.metrics.total_cut};
    if (!have || good < best_good) {
      have = true;
      best_good = good;
      best_assign = r.partition.assignments();
      best_name = opts.portfolio.members[i];
    }
  }
  EXPECT_EQ(out.winner, best_name);
  EXPECT_EQ(out.best.partition.assignments(), best_assign);
}

TEST(Engine, RunBatchReturnsJobOrderAndDistinctAnswers) {
  std::vector<engine::Job> jobs;
  for (std::uint64_t s = 0; s < 4; ++s) jobs.push_back(make_job(100 + s, 48));
  engine::Engine eng;
  const auto outs = eng.run_batch(jobs);
  ASSERT_EQ(outs.size(), jobs.size());
  for (std::size_t i = 0; i < outs.size(); ++i) {
    EXPECT_FALSE(outs[i].winner.empty());
    EXPECT_EQ(outs[i].best.partition.size(), jobs[i].graph->num_nodes());
  }
}

TEST(Engine, SubmitPollStreaming) {
  engine::Engine eng;
  const engine::Job job = make_job(5, 48);
  const engine::Engine::JobId id = eng.submit(job);

  std::optional<engine::PortfolioOutcome> out;
  for (int spins = 0; spins < 20000 && !out; ++spins) {
    out = eng.poll(id);
    if (!out) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(out.has_value()) << "job did not finish";
  EXPECT_FALSE(out->winner.empty());

  // A collected id is gone; unknown ids are programming errors.
  EXPECT_THROW(eng.poll(id), std::invalid_argument);
  EXPECT_THROW(eng.poll(999999), std::invalid_argument);
}

TEST(Engine, CancelOnFeasibleStillReturnsFeasible) {
  const engine::Job job = make_job(13, 96, /*slack=*/1.8);  // easy instance
  engine::EngineOptions opts;
  opts.cancel_on_feasible = true;
  opts.cache_capacity = 0;
  engine::Engine eng(opts);
  const auto out = eng.run_one(job.graph, job.request);
  ASSERT_FALSE(out.winner.empty());
  EXPECT_TRUE(out.best.feasible);
  for (const auto& m : out.members) {
    if (!m.ran) EXPECT_FALSE(m.failed);  // skipped members carry no error
  }
}

TEST(Engine, CallerStopTokenIsHonored) {
  // A request.stop fired before submission cancels the job's iterative
  // work: every member returns its first-checkpoint answer, so the job
  // completes fast and complete rather than hanging or being ignored.
  engine::Job job = make_job(19, /*nodes=*/700, /*slack=*/1.2);
  support::StopToken client_stop;
  client_stop.request_stop();
  job.request.stop = &client_stop;

  engine::EngineOptions opts;
  opts.cache_capacity = 0;
  engine::Engine eng(opts);
  const auto out = eng.run_one(job.graph, job.request);
  ASSERT_FALSE(out.winner.empty());
  EXPECT_TRUE(out.best.partition.complete());
  EXPECT_LT(out.seconds, 60.0);
  for (const auto& m : out.members) EXPECT_FALSE(m.failed) << m.error;
}

TEST(Engine, CallerCancelledRunsAreNotCached) {
  // The cache key deliberately excludes the transient stop token, so a
  // caller-cancelled (truncated) outcome must never be inserted: the next
  // identical request without a token deserves the full portfolio, and its
  // complete answer is what future twins get served.
  const engine::Job job = make_job(43, 48);
  engine::Engine eng;
  support::StopToken fired;
  fired.request_stop();
  part::PartitionRequest cancelled = job.request;
  cancelled.stop = &fired;
  const auto truncated = eng.run_one(job.graph, cancelled);
  ASSERT_FALSE(truncated.winner.empty());
  EXPECT_FALSE(truncated.from_cache);

  const auto full = eng.run_one(job.graph, job.request);
  EXPECT_FALSE(full.from_cache);  // not poisoned by the truncated twin
  const auto repeat = eng.run_one(job.graph, job.request);
  EXPECT_TRUE(repeat.from_cache);  // the complete answer is cached
  EXPECT_EQ(repeat.best.partition.assignments(),
            full.best.partition.assignments());
}

TEST(Engine, FailedMembersAreIsolated) {
  // Exact refuses graphs beyond ~20 nodes; the portfolio must survive it.
  const engine::Job job = make_job(17, 64);
  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"exact", "metislike"}};
  opts.cache_capacity = 0;
  engine::Engine eng(opts);
  const auto out = eng.run_one(job.graph, job.request);
  EXPECT_EQ(out.winner, "metislike");
  ASSERT_EQ(out.members.size(), 2u);
  EXPECT_TRUE(out.members[0].failed);
  EXPECT_FALSE(out.members[0].error.empty());
  EXPECT_EQ(eng.stats().members_failed, 1u);
}

// ---------------------------------------------------- shared-graph batch ---

TEST(Engine, SharedGraphBatchFingerprintsAndCoarsensOnce) {
  // 16 jobs over ONE shared graph, all multilevel members: the engine must
  // compute exactly one graph fingerprint and build exactly one coarsening
  // per (algorithm options) key — gp hierarchy, metislike hierarchy and
  // nlevel contraction sequence — everything else is reuse.
  const auto g = make_shared_graph(23, 144);  // large enough to really coarsen
  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"gp", "metislike", "nlevel"}};
  engine::Engine eng(opts);

  std::vector<engine::Job> jobs;
  for (std::uint64_t s = 0; s < 16; ++s) {
    engine::Job job;
    job.graph = g;
    job.request.k = 4;
    job.request.seed = 900 + s;  // distinct seeds: no result-cache hits
    jobs.push_back(std::move(job));
  }
  const auto outs = eng.run_batch(jobs);
  ASSERT_EQ(outs.size(), 16u);
  for (const auto& out : outs) EXPECT_FALSE(out.winner.empty());

  const engine::EngineStats stats = eng.stats();
  EXPECT_EQ(stats.graph_fingerprints_computed, 1u);
  EXPECT_EQ(stats.coarsening.insertions, 3u);  // one build per options key
  EXPECT_EQ(stats.coarsening.misses, 3u);
  EXPECT_GT(stats.coarsening.hits, 0u);
}

TEST(Engine, SharedGraphMatchesByValuePathBitForBit) {
  // The shared-graph API must answer exactly like the by-value convenience
  // path at a fixed seed (both engines fresh, so every job computes).
  const auto g = make_shared_graph(31, 48);
  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"gp", "metislike", "nlevel"}};

  std::vector<engine::Job> shared_jobs, byvalue_jobs;
  for (std::uint64_t s = 0; s < 6; ++s) {
    part::PartitionRequest request;
    request.k = 3;
    request.seed = 70 + s;
    shared_jobs.emplace_back(g, request);
    byvalue_jobs.emplace_back(graph::Graph(*g), request);  // copies the graph
  }

  engine::Engine shared_engine(opts);
  engine::Engine byvalue_engine(opts);
  const auto shared_outs = shared_engine.run_batch(shared_jobs);
  const auto byvalue_outs = byvalue_engine.run_batch(byvalue_jobs);
  ASSERT_EQ(shared_outs.size(), byvalue_outs.size());
  for (std::size_t i = 0; i < shared_outs.size(); ++i) {
    EXPECT_EQ(shared_outs[i].winner, byvalue_outs[i].winner) << i;
    EXPECT_EQ(shared_outs[i].best.partition.assignments(),
              byvalue_outs[i].best.partition.assignments())
        << i;
  }
  // The by-value path pays one fingerprint per job; the shared path one in
  // total. Coarsening artifacts are keyed by content, so both engines
  // build the same number.
  EXPECT_EQ(shared_engine.stats().graph_fingerprints_computed, 1u);
  EXPECT_EQ(byvalue_engine.stats().graph_fingerprints_computed, 6u);
  EXPECT_EQ(shared_engine.stats().coarsening.insertions,
            byvalue_engine.stats().coarsening.insertions);
}

// ---------------------------------------------------------- single-flight ---

TEST(Engine, DuplicateInFlightKeysCoalesce) {
  // Two submissions of the same (graph, request): the second must attach to
  // the first's in-flight computation instead of running the portfolio
  // again — the leader runs its members once, the follower shares the
  // outcome (marked `coalesced`). A descheduled main thread can let the
  // leader finish before the second submit lands (then both legitimately
  // run), so retry on fresh engines until the race is observed; answers
  // must be identical either way.
  const engine::Job job = make_job(37, /*nodes=*/300, /*slack=*/1.3);
  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"gp"}};
  opts.cache_capacity = 0;  // retries must recompute, not hit the cache

  bool coalesced = false;
  for (int attempt = 0; attempt < 5 && !coalesced; ++attempt) {
    engine::Engine eng(opts);
    const auto id1 = eng.submit(job);
    const auto id2 = eng.submit(job);
    const auto out1 = eng.wait(id1);
    const auto out2 = eng.wait(id2);

    ASSERT_FALSE(out1.winner.empty());
    EXPECT_FALSE(out1.coalesced);
    EXPECT_EQ(out1.winner, out2.winner);
    EXPECT_EQ(out1.best.partition.assignments(),
              out2.best.partition.assignments());

    coalesced = out2.coalesced;
    if (coalesced) {
      EXPECT_FALSE(out2.from_cache);
      const engine::EngineStats stats = eng.stats();
      EXPECT_EQ(stats.jobs_completed, 2u);
      EXPECT_EQ(stats.jobs_coalesced, 1u);
      EXPECT_EQ(stats.members_run, 1u);  // the leader's single gp member
    }
  }
  EXPECT_TRUE(coalesced) << "second submit never found the first in flight";
}

// ------------------------------------------------- incremental repartition ---

TEST(Engine, RepartitionIncrementalPathAndChaining) {
  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"gp"}};
  engine::Engine eng(opts);

  engine::Job job = make_job(11, /*nodes=*/200);
  const auto first = eng.run_one(job.graph, job.request);
  ASSERT_FALSE(first.winner.empty());

  // A small edit: the warm-started path must answer.
  graph::GraphDelta delta(*job.graph);
  delta.set_edge_weight(0, job.graph->neighbors(0)[0], 17);
  const graph::NodeId fresh = delta.add_node(30);
  delta.add_edge(fresh, 5, 3);

  const engine::RepartitionOutcome rep = eng.repartition(job, delta, first.best);
  EXPECT_TRUE(rep.incremental) << rep.fallback_reason;
  EXPECT_EQ(rep.outcome.winner, "incremental");
  EXPECT_EQ(rep.graph->num_nodes(), job.graph->num_nodes() + 1);
  ASSERT_EQ(rep.outcome.best.partition.size(), rep.graph->num_nodes());
  EXPECT_TRUE(rep.outcome.best.partition.complete());
  EXPECT_EQ(rep.outcome.best.metrics.total_cut,
            part::compute_metrics(*rep.graph, rep.outcome.best.partition)
                .total_cut);

  // Chain a second delta against the repartitioned network.
  graph::GraphDelta delta2(*rep.graph);
  delta2.remove_node(3);
  const engine::RepartitionOutcome rep2 = eng.repartition(
      engine::Job{rep.graph, job.request}, delta2, rep.outcome.best);
  EXPECT_TRUE(rep2.incremental) << rep2.fallback_reason;
  EXPECT_EQ(rep2.graph->num_nodes(), rep.graph->num_nodes() - 1);
  EXPECT_TRUE(rep2.outcome.best.partition.complete());

  const engine::EngineStats stats = eng.stats();
  EXPECT_EQ(stats.repartitions_incremental, 2u);
  EXPECT_EQ(stats.repartitions_fallback, 0u);
}

TEST(Engine, RepartitionNeverServesStaleCacheForEditedGraph) {
  // Regression guard for the mutated-shared-graph hazard: after an edit,
  // the old fingerprint's cached result must never be returned for the new
  // graph — the edited graph is a new object with a new content key.
  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"gp"}};
  engine::Engine eng(opts);

  engine::Job job = make_job(13, /*nodes=*/150);
  const auto first = eng.run_one(job.graph, job.request);
  ASSERT_FALSE(first.winner.empty());

  // Same request twice: the pre-edit answer IS cached under the old key.
  const auto again = eng.run_one(job.graph, job.request);
  EXPECT_TRUE(again.from_cache);

  graph::GraphDelta delta(*job.graph);
  delta.set_node_weight(0, job.graph->node_weight(0) + 5);
  delta.set_edge_weight(1, job.graph->neighbors(1)[0], 21);
  const engine::RepartitionOutcome rep = eng.repartition(job, delta, first.best);

  // The edited graph's answer was computed, not replayed from the old key.
  EXPECT_FALSE(rep.outcome.from_cache);
  EXPECT_NE(rep.outcome.key, first.key);

  // A full run on the edited graph must also miss (incremental answers are
  // never cached) and agree about the key split.
  const auto full = eng.run_one(rep.graph, job.request);
  EXPECT_FALSE(full.from_cache);
  EXPECT_EQ(full.key, rep.outcome.key);
  EXPECT_NE(full.key, first.key);

  // And the old graph's cached answer is still served for the old graph.
  const auto old_again = eng.run_one(job.graph, job.request);
  EXPECT_TRUE(old_again.from_cache);
  EXPECT_EQ(old_again.key, first.key);
}

TEST(Engine, RepartitionDeclinesIncompletePreviousPartition) {
  // An untrustworthy warm start (unassigned slots) must decline to the
  // portfolio like any other, not throw out of the service loop.
  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"metislike"}};
  engine::Engine eng(opts);

  engine::Job job = make_job(29, /*nodes=*/80);
  part::PartitionResult bogus;
  bogus.partition = part::Partition(job.graph->num_nodes(), job.request.k);
  // right size, but nothing assigned

  graph::GraphDelta delta(*job.graph);
  delta.set_node_weight(0, 7);
  const engine::RepartitionOutcome rep = eng.repartition(job, delta, bogus);
  EXPECT_FALSE(rep.incremental);
  EXPECT_EQ(rep.fallback_reason, "previous partition incomplete");
  EXPECT_TRUE(rep.outcome.best.partition.complete());
}

TEST(Engine, RepartitionFallsBackOnOversizedDelta) {
  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"gp"}};
  engine::Engine eng(opts);

  engine::Job job = make_job(17, /*nodes=*/120);
  const auto first = eng.run_one(job.graph, job.request);
  ASSERT_FALSE(first.winner.empty());

  graph::GraphDelta big(*job.graph);
  for (graph::NodeId u = 0; u < job.graph->num_nodes(); ++u)
    big.set_node_weight(u, job.graph->node_weight(u) + 1);

  const engine::RepartitionOutcome rep = eng.repartition(job, big, first.best);
  EXPECT_FALSE(rep.incremental);
  EXPECT_FALSE(rep.fallback_reason.empty());
  EXPECT_EQ(rep.outcome.winner, "gp");  // the portfolio answered
  EXPECT_TRUE(rep.outcome.best.partition.complete());
  EXPECT_EQ(eng.stats().repartitions_fallback, 1u);

  // Fallback answers are pure (graph, request) functions and ARE cached: a
  // twin repartition of the same edit is served from the cache.
  const engine::RepartitionOutcome twin = eng.repartition(job, big, first.best);
  EXPECT_TRUE(twin.outcome.from_cache);
  EXPECT_EQ(eng.stats().repartition_cache_hits, 1u);
  EXPECT_EQ(twin.outcome.best.partition.assignments(),
            rep.outcome.best.partition.assignments());
}

TEST(Engine, RepartitionWorkspaceIsAllocationFreeInSteadyState) {
  // The engine-owned repartition workspace must reach a high-water mark and
  // stop growing: repeated small edits on a stable-size network pay zero
  // allocator traffic in the incremental refine loop.
  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"gp"}};
  engine::Engine eng(opts);

  engine::Job job = make_job(23, /*nodes=*/300);
  auto current = eng.run_one(job.graph, job.request);
  ASSERT_FALSE(current.winner.empty());
  std::shared_ptr<const graph::Graph> g = job.graph;

  support::Rng rng(5);
  const auto evolve = [&]() {
    graph::GraphDelta delta(*g);
    for (int e = 0; e < 6; ++e) {
      const auto u =
          static_cast<graph::NodeId>(rng.uniform_index(g->num_nodes()));
      if (g->degree(u) == 0) continue;
      const graph::NodeId v = g->neighbors(u)[rng.uniform_index(g->degree(u))];
      delta.set_edge_weight(
          u, v, 1 + static_cast<graph::Weight>(rng.uniform_index(12)));
    }
    const engine::RepartitionOutcome rep =
        eng.repartition(engine::Job{g, job.request}, delta, current.best);
    ASSERT_TRUE(rep.incremental) << rep.fallback_reason;
    g = rep.graph;
    current.best = rep.outcome.best;
  };

  for (int warm = 0; warm < 2; ++warm) ASSERT_NO_FATAL_FAILURE(evolve());
  const std::uint64_t before = eng.stats().repartition_ws_growths;
  for (int i = 0; i < 5; ++i) ASSERT_NO_FATAL_FAILURE(evolve());
  EXPECT_EQ(eng.stats().repartition_ws_growths, before)
      << "engine repartition workspace allocated in steady state";
}

// ------------------------------------------------------- observability ---

/// ~1% channel reweights — the near-identical-arrival shape of the
/// similarity-admission tests.
std::shared_ptr<const graph::Graph> perturb_graph(const graph::Graph& g,
                                                  std::uint64_t seed) {
  support::Rng rng(seed);
  graph::GraphDelta d(g);
  const std::size_t ops =
      std::max<std::size_t>(1, g.num_nodes() / 100);
  for (std::size_t i = 0; i < ops; ++i) {
    const auto u = static_cast<graph::NodeId>(rng.uniform_index(g.num_nodes()));
    if (g.degree(u) == 0) continue;
    const graph::NodeId v = g.neighbors(u)[rng.uniform_index(g.degree(u))];
    d.set_edge_weight(u, v,
                      1 + static_cast<graph::Weight>(rng.uniform_index(12)));
  }
  return std::make_shared<const graph::Graph>(d.apply(g).graph);
}

TEST(Engine, AdmissionDecisionRecordsRouteAndProvenance) {
  // Every outcome carries the structured record of which pipeline stage
  // answered it and, when a warm start was consulted but fell through, why.
  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"gp"}};
  opts.similarity.enabled = true;
  support::MetricsRegistry registry;  // private: exact values, no crosstalk
  opts.metrics = &registry;
  engine::Engine eng(opts);

  engine::Job job = make_job(41, /*nodes=*/300);

  const auto first = eng.run_one(job.graph, job.request);
  EXPECT_EQ(first.decision.path,
            engine::AdmissionDecision::Path::kFullPortfolio);
  EXPECT_TRUE(first.decision.sim_probed);  // consulted an empty index
  EXPECT_FALSE(first.decision.decline_reason.empty());
  EXPECT_STREQ(engine::to_string(first.decision.path), "full-portfolio");

  const auto second = eng.run_one(job.graph, job.request);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.decision.path, engine::AdmissionDecision::Path::kExactHit);
  EXPECT_FALSE(second.decision.sim_probed);  // stage 1 answers before it
  EXPECT_TRUE(second.decision.decline_reason.empty());

  const auto arriving = perturb_graph(*job.graph, 77);
  const auto sim = eng.run_one(arriving, job.request);
  ASSERT_TRUE(sim.similarity);
  EXPECT_EQ(sim.decision.path, engine::AdmissionDecision::Path::kSimilarity);
  EXPECT_TRUE(sim.decision.sim_probed);
  EXPECT_TRUE(sim.decision.decline_reason.empty());

  // The admission-path counters in the private registry tell the same
  // story, job for job.
  const support::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_or("engine.jobs"), 3u);
  EXPECT_EQ(snap.counter_or("engine.admit.full_portfolio"), 1u);
  EXPECT_EQ(snap.counter_or("engine.admit.exact_hit"), 1u);
  EXPECT_EQ(snap.counter_or("engine.admit.similarity"), 1u);
  EXPECT_EQ(snap.counter_or("engine.admit.sim_decline"), 1u);
  const auto* job_us = snap.find_histogram("engine.job.time_us");
  ASSERT_NE(job_us, nullptr);
  EXPECT_EQ(job_us->hist.count, 3u);
}

TEST(Engine, RepartitionDecisionRecordsWarmStart) {
  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"gp"}};
  engine::Engine eng(opts);
  engine::Job job = make_job(43, /*nodes=*/300);
  const auto first = eng.run_one(job.graph, job.request);
  ASSERT_FALSE(first.winner.empty());

  graph::GraphDelta delta(*job.graph);
  delta.set_edge_weight(0, job.graph->neighbors(0)[0], 17);
  const engine::RepartitionOutcome rep =
      eng.repartition(engine::Job{job.graph, job.request}, delta, first.best);
  ASSERT_TRUE(rep.incremental) << rep.fallback_reason;
  EXPECT_EQ(rep.outcome.decision.path,
            engine::AdmissionDecision::Path::kWarmStart);
  // Caller-supplied deltas take stage 2 directly; the sketch index is
  // never consulted for them.
  EXPECT_FALSE(rep.outcome.decision.sim_probed);
}

TEST(Engine, MemberWinLossMetricsAreExact) {
  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"gp", "metislike"}};
  support::MetricsRegistry registry;
  opts.metrics = &registry;
  engine::Engine eng(opts);

  constexpr std::uint64_t kJobs = 4;
  std::vector<engine::Job> batch;
  for (std::uint64_t j = 0; j < kJobs; ++j)
    batch.push_back(make_job(50 + j, /*nodes=*/96));
  const auto outcomes = eng.run_batch(batch);
  ASSERT_EQ(outcomes.size(), kJobs);

  // Exactly one member wins each job, and the flag agrees with `winner`.
  for (const engine::PortfolioOutcome& out : outcomes) {
    ASSERT_FALSE(out.winner.empty());
    int winners = 0;
    for (const engine::MemberOutcome& m : out.members) {
      if (m.won) {
        ++winners;
        EXPECT_EQ(m.algorithm, out.winner);
      }
    }
    EXPECT_EQ(winners, 1);
  }

  // Registry view: every member ran every job; wins partition the jobs and
  // wins + losses == runs (nothing failed, nothing was skipped).
  const support::MetricsSnapshot snap = registry.snapshot();
  std::uint64_t wins_total = 0;
  for (const char* member : {"gp", "metislike"}) {
    const std::string prefix = std::string("engine.member.") + member;
    const std::uint64_t runs = snap.counter_or(prefix + ".runs");
    const std::uint64_t wins = snap.counter_or(prefix + ".wins");
    const std::uint64_t losses = snap.counter_or(prefix + ".losses");
    EXPECT_EQ(runs, kJobs) << member;
    EXPECT_EQ(snap.counter_or(prefix + ".failures"), 0u) << member;
    EXPECT_EQ(wins + losses, runs) << member;
    const auto* time_us = snap.find_histogram(prefix + ".time_us");
    ASSERT_NE(time_us, nullptr) << member;
    EXPECT_EQ(time_us->hist.count, kJobs) << member;
    wins_total += wins;
  }
  EXPECT_EQ(wins_total, kJobs);
  EXPECT_EQ(snap.counter_or("engine.jobs"), kJobs);

  // The same snapshot rides on EngineStats for callers that only see the
  // engine.
  EXPECT_EQ(eng.stats().metrics.counter_or("engine.jobs"), kJobs);
}

TEST(Engine, StatsSnapshotIsNeverTornUnderConcurrentSubmit) {
  // Satellite rail of the observability PR: similarity counters are bumped
  // transactionally with their verdict, so EVERY stats() snapshot satisfies
  // probes == near_hits + declines and evictions <= insertions — even while
  // submits are in full flight on other threads.
  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"metislike"}};
  opts.similarity.enabled = true;
  engine::Engine eng(opts);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const engine::EngineStats s = eng.stats();
      if (s.similarity.probes != s.similarity.near_hits + s.similarity.declines)
        torn.fetch_add(1, std::memory_order_relaxed);
      if (s.similarity.evictions > s.similarity.insertions)
        torn.fetch_add(1, std::memory_order_relaxed);
    }
  });

  constexpr int kWriters = 2;
  constexpr std::uint64_t kJobsPerWriter = 24;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&eng, w] {
      for (std::uint64_t j = 0; j < kJobsPerWriter; ++j) {
        // Distinct graphs keep the full path (and its probes) busy; the
        // occasional perturbed repeat exercises the near-hit transaction.
        engine::Job job =
            make_job(100 + w * kJobsPerWriter + j, /*nodes=*/64);
        if (j % 3 == 2) job.graph = perturb_graph(*job.graph, j);
        (void)eng.run_one(job.graph, job.request);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(torn.load(), 0u) << "a stats() snapshot saw a torn mid-probe view";
  const engine::EngineStats final_stats = eng.stats();
  EXPECT_EQ(final_stats.similarity.probes,
            final_stats.similarity.near_hits + final_stats.similarity.declines);
  EXPECT_GE(final_stats.similarity.probes, kWriters * kJobsPerWriter);
}

// ---------------------------------------------------- bounded admission ---

/// Parks every global-pool worker on a spin flag so queued engine work
/// cannot drain: admission depth then depends only on the submission order,
/// making the degradation ladder exactly predictable.
class PoolBlocker {
 public:
  PoolBlocker() {
    auto& pool = support::ThreadPool::global();
    for (unsigned i = 0; i < pool.size(); ++i) {
      futures_.push_back(pool.submit([this] {
        started_.fetch_add(1, std::memory_order_relaxed);
        while (!release_.load(std::memory_order_relaxed))
          std::this_thread::yield();
      }));
    }
    while (started_.load(std::memory_order_relaxed) < pool.size())
      std::this_thread::yield();
  }

  void release() {
    if (release_.exchange(true)) return;
    for (std::future<void>& f : futures_) f.get();
  }

  ~PoolBlocker() { release(); }

 private:
  std::atomic<bool> release_{false};
  std::atomic<unsigned> started_{0};
  std::vector<std::future<void>> futures_;
};

TEST(Engine, BoundedAdmissionWalksTheLadderAndRejectsAtCapacity) {
  using Rung = engine::AdmissionDecision::DegradeRung;
  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"gp", "annealing"}};
  opts.queue_capacity = 4;
  opts.max_running_jobs = 1;
  opts.shed_policy = engine::ShedPolicy::kRejectNew;
  engine::Engine eng(opts);

  PoolBlocker blocker;
  std::vector<engine::Engine::JobId> ids;
  for (std::uint64_t s = 0; s < 6; ++s)
    ids.push_back(eng.submit(make_job(500 + s, /*nodes=*/48)));

  // The sixth submit found the queue full under reject_new: born finished
  // with a typed refusal, so wait() returns immediately even though the
  // pool is still fully parked.
  const engine::PortfolioOutcome rejected = eng.wait(ids[5]);
  EXPECT_EQ(rejected.status.code(), support::StatusCode::kResourceExhausted);
  EXPECT_TRUE(rejected.winner.empty());
  EXPECT_EQ(rejected.decision.path, engine::AdmissionDecision::Path::kShed);

  blocker.release();

  // Depth at admission: 0(run) 0 1 2 3 -> full full cheap gp gp with cap 4.
  const Rung expected[5] = {Rung::kFull, Rung::kFull, Rung::kCheapMembers,
                            Rung::kGpOnly, Rung::kGpOnly};
  for (int j = 0; j < 5; ++j) {
    const engine::PortfolioOutcome out = eng.wait(ids[j]);
    EXPECT_TRUE(out.status.is_ok()) << out.status.to_string();
    EXPECT_FALSE(out.winner.empty());
    EXPECT_EQ(out.decision.rung, expected[j]) << "job " << j;
    EXPECT_TRUE(out.best.partition.complete());
  }

  // Every submitted job ended in exactly one bucket.
  const engine::EngineStats stats = eng.stats();
  EXPECT_EQ(stats.jobs_completed, 5u);
  EXPECT_EQ(stats.jobs_rejected, 1u);
  EXPECT_EQ(stats.jobs_shed, 0u);
  EXPECT_EQ(stats.jobs_degraded, 3u);

  // Degraded answers must not poison the cache: the cheap-rung key misses
  // (recomputed at full strength now that the load is gone) while the
  // full-rung key hits.
  const engine::Job full_again = make_job(500, /*nodes=*/48);
  const engine::Job cheap_again = make_job(502, /*nodes=*/48);
  EXPECT_TRUE(eng.run_one(full_again.graph, full_again.request).from_cache);
  const engine::PortfolioOutcome recomputed =
      eng.run_one(cheap_again.graph, cheap_again.request);
  EXPECT_FALSE(recomputed.from_cache);
  EXPECT_EQ(recomputed.decision.rung, Rung::kFull);
}

TEST(Engine, DropOldestShedsTheQueueHeadWithTypedError) {
  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"metislike"}};
  opts.queue_capacity = 1;
  opts.max_running_jobs = 1;
  opts.shed_policy = engine::ShedPolicy::kDropOldest;
  opts.degrade_under_load = false;  // isolate shedding from the ladder
  engine::Engine eng(opts);

  PoolBlocker blocker;
  const auto a = eng.submit(make_job(600, /*nodes=*/48));  // running slot
  const auto b = eng.submit(make_job(601, /*nodes=*/48));  // queue head
  const auto c = eng.submit(make_job(602, /*nodes=*/48));  // full: b is shed

  const engine::PortfolioOutcome shed = eng.wait(b);
  EXPECT_EQ(shed.status.code(), support::StatusCode::kResourceExhausted);
  EXPECT_TRUE(shed.winner.empty());
  EXPECT_EQ(shed.decision.path, engine::AdmissionDecision::Path::kShed);

  blocker.release();
  EXPECT_TRUE(eng.wait(a).status.is_ok());
  const engine::PortfolioOutcome late = eng.wait(c);
  EXPECT_TRUE(late.status.is_ok()) << late.status.to_string();
  EXPECT_FALSE(late.winner.empty());

  const engine::EngineStats stats = eng.stats();
  EXPECT_EQ(stats.jobs_completed, 2u);
  EXPECT_EQ(stats.jobs_shed, 1u);
  EXPECT_EQ(stats.jobs_rejected, 0u);
}

TEST(Engine, DeadlineAwareRefusesBudgetsThatCannotSurviveTheQueue) {
  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"gp", "annealing"}};
  opts.queue_capacity = 8;
  opts.max_running_jobs = 1;
  opts.shed_policy = engine::ShedPolicy::kDeadlineAware;
  opts.degrade_under_load = false;
  engine::Engine eng(opts);

  // Seed the latency estimate: the first completed job sets the EWMA.
  const engine::Job first = make_job(700, /*nodes=*/96);
  const engine::PortfolioOutcome seeded =
      eng.run_one(first.graph, first.request);
  ASSERT_TRUE(seeded.status.is_ok());
  ASSERT_GT(seeded.seconds, 0.0);

  PoolBlocker blocker;
  const auto running = eng.submit(make_job(701, /*nodes=*/48));
  const auto queued1 = eng.submit(make_job(702, /*nodes=*/48));
  const auto queued2 = eng.submit(make_job(703, /*nodes=*/48));

  // Two jobs queued ahead: the estimated drain is 3x the average latency,
  // so a budget of ~2x the seeded latency is refused instead of queueing
  // behind work it will never see finish. (The refusal also fires if the
  // deadline expires before the gate runs — negative slack still loses.)
  support::StopToken doomed_token;
  doomed_token.set_deadline_after(2.0 * seeded.seconds);
  engine::Job doomed = make_job(704, /*nodes=*/48);
  doomed.request.stop = &doomed_token;
  const engine::PortfolioOutcome refused = eng.wait(eng.submit(std::move(doomed)));
  EXPECT_EQ(refused.status.code(), support::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(refused.winner.empty());

  // A roomy budget queues normally behind the same depth.
  support::StopToken roomy_token;
  roomy_token.set_deadline_after(60.0);
  engine::Job roomy = make_job(705, /*nodes=*/48);
  roomy.request.stop = &roomy_token;
  const auto ok_id = eng.submit(std::move(roomy));

  blocker.release();
  EXPECT_TRUE(eng.wait(running).status.is_ok());
  EXPECT_TRUE(eng.wait(queued1).status.is_ok());
  EXPECT_TRUE(eng.wait(queued2).status.is_ok());
  EXPECT_TRUE(eng.wait(ok_id).status.is_ok());
  EXPECT_EQ(eng.stats().jobs_rejected, 1u);
}

TEST(Engine, SimilaritySubmitDoesNotBlockOnWarmStart) {
  // Tentpole rail: admit() charges the submitter only the sketch probe. The
  // diff -> verify -> refine verdict runs as a pool task — with every pool
  // worker parked, submit() must still return with the job un-done and the
  // warm start merely queued. If any of that work ran on the submitting
  // thread, the job would already be finished here.
  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"gp"}};
  opts.similarity.enabled = true;
  engine::Engine eng(opts);

  engine::Job job = make_job(900, /*nodes=*/300);
  ASSERT_FALSE(eng.run_one(job.graph, job.request).winner.empty());

  PoolBlocker blocker;
  const auto near = perturb_graph(*job.graph, 5);
  const auto id = eng.submit(engine::Job{near, job.request});
  EXPECT_FALSE(eng.poll(id).has_value()) << "warm start ran on the submitter";

  // The probe matched and was deferred; its verdict is still open — and the
  // counters say exactly that: only the seeding run's probe has resolved,
  // so probes == near_hits + declines holds mid-flight too.
  {
    const engine::EngineStats stats = eng.stats();
    EXPECT_EQ(stats.similarity.deferred, 1u);
    EXPECT_EQ(stats.similarity.probes, 1u);
    EXPECT_EQ(stats.similarity.declines, 1u);
    EXPECT_EQ(stats.similarity.near_hits, 0u);
  }

  blocker.release();
  const engine::PortfolioOutcome out = eng.wait(id);
  EXPECT_TRUE(out.similarity);
  EXPECT_EQ(out.winner, "similarity");
  EXPECT_TRUE(out.decision.warm_deferred);
  EXPECT_EQ(out.best.partition.size(), near->num_nodes());
  EXPECT_TRUE(out.best.partition.complete());
  const engine::EngineStats stats = eng.stats();
  EXPECT_EQ(stats.similarity.probes, 2u);
  EXPECT_EQ(stats.similarity.near_hits, 1u);
  EXPECT_EQ(stats.similarity.declines, 1u);
}

TEST(Engine, NearTwinFollowersCoalesceOntoLeader) {
  // Batch-aware probing: N concurrent near-twins with NO indexed answer yet
  // cost one full portfolio run plus N-1 warm starts. The first submission
  // registers as the cohort's pending leader; the rest park behind it and
  // resume from its indexed answer.
  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"gp"}};
  opts.similarity.enabled = true;
  engine::Engine eng(opts);

  const engine::Job seed = make_job(910, /*nodes=*/300);
  const auto base = seed.graph;

  // Park the pool BEFORE any submission, so the leader's answer cannot land
  // until every follower has probed — the whole cohort is truly concurrent.
  PoolBlocker blocker;
  constexpr int kTwins = 5;
  std::vector<engine::Engine::JobId> ids;
  ids.push_back(eng.submit(engine::Job{base, seed.request}));
  for (int t = 1; t < kTwins; ++t) {
    ids.push_back(eng.submit(engine::Job{
        perturb_graph(*base, static_cast<std::uint64_t>(t)), seed.request}));
  }
  for (const auto id : ids) EXPECT_FALSE(eng.poll(id).has_value());
  EXPECT_EQ(eng.stats().similarity.parked,
            static_cast<std::uint64_t>(kTwins - 1));

  blocker.release();
  const engine::PortfolioOutcome leader = eng.wait(ids[0]);
  EXPECT_EQ(leader.decision.path,
            engine::AdmissionDecision::Path::kFullPortfolio);
  EXPECT_TRUE(leader.decision.warm_leader);
  EXPECT_FALSE(leader.similarity);
  for (int t = 1; t < kTwins; ++t) {
    const engine::PortfolioOutcome out = eng.wait(ids[t]);
    EXPECT_TRUE(out.similarity) << "twin " << t;
    EXPECT_EQ(out.winner, "similarity") << "twin " << t;
    EXPECT_TRUE(out.decision.warm_deferred) << "twin " << t;
    EXPECT_TRUE(out.best.partition.complete()) << "twin " << t;
  }

  // Exact accounting: every twin probed once; the leader declined (empty
  // index) and was the ONLY full-portfolio member run; the other N-1 all
  // warm-started off its answer.
  const engine::EngineStats stats = eng.stats();
  EXPECT_EQ(stats.similarity.probes, static_cast<std::uint64_t>(kTwins));
  EXPECT_EQ(stats.similarity.near_hits,
            static_cast<std::uint64_t>(kTwins - 1));
  EXPECT_EQ(stats.similarity.declines, 1u);
  EXPECT_EQ(stats.members_run, 1u);
  EXPECT_EQ(stats.jobs_completed, static_cast<std::uint64_t>(kTwins));
}

TEST(Engine, DeadlineAwarePredictorColdStart) {
  // Regression: before the EWMA has ANY completion to learn from,
  // avg_job_seconds is 0 and the drain estimate `(depth+1) * avg` waves
  // everything through — including deadlines that have ALREADY expired. An
  // expired deadline needs no estimate: it must be refused even on a cold
  // predictor. Live deadlines keep queueing until the predictor has data.
  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"gp"}};
  opts.queue_capacity = 8;
  opts.max_running_jobs = 1;
  opts.shed_policy = engine::ShedPolicy::kDeadlineAware;
  opts.degrade_under_load = false;  // isolate refusal from the ladder
  engine::Engine eng(opts);
  EXPECT_EQ(eng.stats().avg_job_seconds, 0.0);

  PoolBlocker blocker;
  const auto running = eng.submit(make_job(920, /*nodes=*/48));
  const auto queued = eng.submit(make_job(921, /*nodes=*/48));

  support::StopToken expired;
  expired.set_deadline_after(0.0);
  engine::Job doomed = make_job(922, /*nodes=*/48);
  doomed.request.stop = &expired;
  const engine::PortfolioOutcome refused =
      eng.wait(eng.submit(std::move(doomed)));
  EXPECT_EQ(refused.status.code(), support::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(refused.winner.empty());

  // A live deadline on the same cold predictor queues normally: refusing it
  // on a guess would shed meetable work.
  support::StopToken live;
  live.set_deadline_after(60.0);
  engine::Job patient = make_job(923, /*nodes=*/48);
  patient.request.stop = &live;
  const auto patient_id = eng.submit(std::move(patient));

  blocker.release();
  EXPECT_TRUE(eng.wait(running).status.is_ok());
  EXPECT_TRUE(eng.wait(queued).status.is_ok());
  EXPECT_TRUE(eng.wait(patient_id).status.is_ok());
  const engine::EngineStats stats = eng.stats();
  EXPECT_EQ(stats.jobs_rejected, 1u);
  EXPECT_GT(stats.avg_job_seconds, 0.0);  // seeded by the full completions
}

TEST(Engine, DegradedCompletionsDoNotSeedTheDrainPredictor) {
  // The EWMA learns only from FULL-rung completions: degraded rungs finish
  // fast by design, and feeding them in would bias the drain estimate low
  // exactly when overload makes it matter.
  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"gp"}};
  opts.queue_capacity = 4;
  opts.max_running_jobs = 1;
  engine::Engine eng(opts);

  // A projected (bottom-rung) answer is served inline and must leave the
  // predictor cold.
  support::StopToken gone;
  gone.set_deadline_after(0.0);
  engine::Job rushed = make_job(930, /*nodes=*/96);
  rushed.request.stop = &gone;
  const auto projected = eng.run_one(rushed.graph, rushed.request);
  ASSERT_EQ(projected.decision.rung,
            engine::AdmissionDecision::DegradeRung::kProjected);
  EXPECT_EQ(eng.stats().avg_job_seconds, 0.0);

  // Build a deterministic rung mix: h runs (depth 0, full); q1 queues at
  // depth 0 (full); q2 at depth 1 (cheap); q3 at depth 2 (gp-only). With
  // max_running 1 they finalize in exactly that order, so the EWMA after
  // the drain is a pure function of the two FULL completions' latencies —
  // bit-equal to replaying the update rule on the reported seconds. If the
  // degraded q2/q3 fed the estimate, this equality breaks.
  PoolBlocker blocker;
  const auto h = eng.submit(make_job(931, /*nodes=*/48));
  const auto q1 = eng.submit(make_job(932, /*nodes=*/48));
  const auto q2 = eng.submit(make_job(933, /*nodes=*/48));
  const auto q3 = eng.submit(make_job(934, /*nodes=*/48));
  blocker.release();

  const engine::PortfolioOutcome out_h = eng.wait(h);
  const engine::PortfolioOutcome out_q1 = eng.wait(q1);
  const engine::PortfolioOutcome out_q2 = eng.wait(q2);
  const engine::PortfolioOutcome out_q3 = eng.wait(q3);
  ASSERT_EQ(out_h.decision.rung, engine::AdmissionDecision::DegradeRung::kFull);
  ASSERT_EQ(out_q1.decision.rung,
            engine::AdmissionDecision::DegradeRung::kFull);
  ASSERT_NE(out_q2.decision.rung,
            engine::AdmissionDecision::DegradeRung::kFull);
  ASSERT_NE(out_q3.decision.rung,
            engine::AdmissionDecision::DegradeRung::kFull);

  const double expected = 0.8 * out_h.seconds + 0.2 * out_q1.seconds;
  EXPECT_DOUBLE_EQ(eng.stats().avg_job_seconds, expected);
}

TEST(Engine, ExpiredBudgetGetsProjectedAnswerInline) {
  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"gp", "annealing"}};
  opts.queue_capacity = 2;
  engine::Engine eng(opts);

  support::StopToken expired;
  expired.set_deadline_after(0.0);
  engine::Job job = make_job(800, /*nodes=*/96);
  job.request.stop = &expired;
  const auto shared = job.graph;
  const part::PartitionRequest request = job.request;

  // The budget is already gone: the bottom rung serves a projected answer
  // inline — coarsest-level greedy growth projected back to the full graph,
  // no pool slot, no queue entry.
  const engine::PortfolioOutcome out = eng.run_one(shared, request);
  EXPECT_TRUE(out.status.is_ok()) << out.status.to_string();
  EXPECT_EQ(out.winner, "projected");
  EXPECT_EQ(out.decision.rung,
            engine::AdmissionDecision::DegradeRung::kProjected);
  EXPECT_TRUE(out.best.partition.complete());
  EXPECT_EQ(eng.stats().jobs_degraded, 1u);

  // Projected answers are never cached: the same key recomputes at full
  // strength once the budget pressure is gone.
  part::PartitionRequest full_request = request;
  full_request.stop = nullptr;
  const engine::PortfolioOutcome full = eng.run_one(shared, full_request);
  EXPECT_FALSE(full.from_cache);
  EXPECT_NE(full.winner, "projected");
  EXPECT_TRUE(eng.run_one(shared, full_request).from_cache);
}

}  // namespace
}  // namespace ppnpart
