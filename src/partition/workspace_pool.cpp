#include "partition/workspace_pool.hpp"

#include <algorithm>

namespace ppnpart::part {

WorkspacePool::WorkspacePool(std::size_t capacity) {
  const std::size_t n = std::max<std::size_t>(1, capacity);
  all_.reserve(n);
  free_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    all_.push_back(Slot{std::make_unique<Workspace>(), 0});
  // Fill the free stack so slot 0 is handed out first: a mostly-serial
  // caller keeps hitting the same warm workspace.
  for (std::size_t i = n; i-- > 0;) free_.push_back(i);
}

WorkspacePool::Lease WorkspacePool::acquire() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return !free_.empty(); });
  const std::size_t index = free_.back();
  free_.pop_back();
  return Lease(this, all_[index].ws.get(), index);
}

void WorkspacePool::Lease::release() {
  if (pool_ == nullptr) return;
  pool_->put_back(index_);
  pool_ = nullptr;
  ws_ = nullptr;
}

void WorkspacePool::put_back(std::size_t index) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // The holder is gone, so reading the (unsynchronized) growth counter
    // cannot race a user; the snapshot makes total_growths() race-free.
    all_[index].growths = all_[index].ws->stats().growths;
    free_.push_back(index);
  }
  cv_.notify_one();
}

std::size_t WorkspacePool::available() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return free_.size();
}

std::uint64_t WorkspacePool::total_growths() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const Slot& slot : all_) total += slot.growths;
  return total;
}

}  // namespace ppnpart::part
