#include "engine/similarity.hpp"

namespace ppnpart::engine {

std::optional<SimilarityIndex::Match> SimilarityIndex::best_match(
    const support::GraphSketch& sketch, std::uint64_t compat_fp,
    double min_similarity) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto best = entries_.end();
  double best_sim = 0;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->compat_fp != compat_fp) continue;
    const double sim = support::sketch_similarity(sketch, it->sketch);
    // Strict >: ties keep the earlier (more recently used) entry, so equal
    // candidates resolve deterministically toward recency.
    if (sim >= min_similarity && sim > best_sim) {
      best = it;
      best_sim = sim;
    }
  }
  if (best == entries_.end()) return std::nullopt;
  entries_.splice(entries_.begin(), entries_, best);  // LRU touch
  return Match{*best, best_sim};
}

void SimilarityIndex::insert(Entry entry) {
  if (capacity_ == 0) return;
  if (!entry.partition.complete()) return;  // never index a non-answer
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->graph_fp == entry.graph_fp && it->compat_fp == entry.compat_fp) {
      *it = std::move(entry);
      entries_.splice(entries_.begin(), entries_, it);
      return;
    }
  }
  entries_.push_front(std::move(entry));
  ++insertions_;
  if (entries_.size() > capacity_) {
    entries_.pop_back();
    ++evictions_;
  }
}

std::size_t SimilarityIndex::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void SimilarityIndex::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

std::uint64_t SimilarityIndex::insertions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return insertions_;
}

std::uint64_t SimilarityIndex::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

SimilarityIndex::Counters SimilarityIndex::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Counters{insertions_, evictions_};
}

}  // namespace ppnpart::engine
