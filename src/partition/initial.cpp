#include "partition/initial.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>
#include <vector>

#include "support/thread_pool.hpp"

namespace ppnpart::part {

namespace {

/// One growth attempt. `first_seed` selects the seed of the first partition;
/// subsequent partitions always seed from the heaviest remaining node (the
/// paper's rule — only the initial selection is randomised across restarts).
Partition grow_once(const Graph& g, PartId k, const Constraints& c,
                    double balance_slack, NodeId first_seed,
                    support::Rng& rng) {
  const NodeId n = g.num_nodes();
  Partition p(n, k);
  std::vector<bool> assigned(n, false);

  const Weight total = g.total_node_weight();
  // The paper grows each partition "as long as Rmax is not violated"; the
  // balanced cap only substitutes when no resource budget is given (a
  // loose/unlimited Rmax must not let one part swallow the whole graph).
  const Weight balanced =
      k > 0 ? std::max<Weight>(
                  static_cast<Weight>(std::ceil(
                      std::max(1.0, balance_slack) *
                      static_cast<double>(total) / k)),
                  1)
            : total;
  const auto cap_of = [&](PartId part) {
    const Weight budget = c.rmax_of(part);
    return budget == Constraints::kUnlimited ? balanced : budget;
  };

  auto heaviest_unassigned = [&]() -> NodeId {
    NodeId best = graph::kInvalidNode;
    Weight best_w = -1;
    for (NodeId u = 0; u < n; ++u) {
      if (!assigned[u] && g.node_weight(u) > best_w) {
        best_w = g.node_weight(u);
        best = u;
      }
    }
    return best;
  };

  for (PartId part = 0; part < k; ++part) {
    NodeId seed = graph::kInvalidNode;
    if (part == 0 && first_seed != graph::kInvalidNode &&
        !assigned[first_seed]) {
      seed = first_seed;
    } else {
      seed = heaviest_unassigned();
    }
    if (seed == graph::kInvalidNode) break;  // everything assigned already
    p.set(seed, part);
    assigned[seed] = true;
    Weight load = g.node_weight(seed);

    // Frontier keyed by connection strength into the growing part; lazy
    // entries are revalidated on pop.
    struct FrontierEntry {
      Weight conn;
      NodeId node;
      bool operator<(const FrontierEntry& o) const { return conn < o.conn; }
    };
    std::priority_queue<FrontierEntry> frontier;
    std::vector<Weight> conn_to_part(n, 0);
    auto absorb_neighbours = [&](NodeId u) {
      auto nbrs = g.neighbors(u);
      auto wgts = g.edge_weights(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const NodeId v = nbrs[i];
        if (!assigned[v]) {
          conn_to_part[v] += wgts[i];
          frontier.push({conn_to_part[v], v});
        }
      }
    };
    absorb_neighbours(seed);
    while (!frontier.empty()) {
      const FrontierEntry e = frontier.top();
      frontier.pop();
      if (assigned[e.node] || e.conn != conn_to_part[e.node]) continue;
      if (load + g.node_weight(e.node) > cap_of(part)) continue;  // try others
      p.set(e.node, part);
      assigned[e.node] = true;
      load += g.node_weight(e.node);
      absorb_neighbours(e.node);
    }
  }

  // Leftovers: heaviest first, best-fit by free space under Rmax; when
  // nothing fits, overflow into the part with the most free space.
  std::vector<Weight> loads(static_cast<std::size_t>(k), 0);
  for (NodeId u = 0; u < n; ++u) {
    if (assigned[u]) loads[static_cast<std::size_t>(p[u])] += g.node_weight(u);
  }
  std::vector<NodeId> leftovers;
  for (NodeId u = 0; u < n; ++u) {
    if (!assigned[u]) leftovers.push_back(u);
  }
  std::sort(leftovers.begin(), leftovers.end(), [&](NodeId a, NodeId b) {
    if (g.node_weight(a) != g.node_weight(b))
      return g.node_weight(a) > g.node_weight(b);
    return a < b;
  });
  for (NodeId u : leftovers) {
    const Weight w = g.node_weight(u);
    PartId best_fit = kUnassigned;
    Weight best_free = -1;
    PartId most_free = 0;
    Weight most_free_w = std::numeric_limits<Weight>::min();
    for (PartId q = 0; q < k; ++q) {
      const Weight budget = c.rmax_of(q);
      const Weight free =
          (budget == Constraints::kUnlimited ? total : budget) - loads[q];
      if (free > most_free_w) {
        most_free_w = free;
        most_free = q;
      }
      if (w <= free && free > best_free) {
        best_free = free;
        best_fit = q;
      }
    }
    const PartId target = best_fit != kUnassigned ? best_fit : most_free;
    p.set(u, target);
    loads[static_cast<std::size_t>(target)] += w;
  }
  (void)rng;
  return p;
}

}  // namespace

Partition greedy_grow_initial(const Graph& g, PartId k, const Constraints& c,
                              const GreedyGrowOptions& options,
                              support::Rng& rng) {
  const NodeId n = g.num_nodes();
  const std::uint32_t restarts = std::max(1u, options.restarts);

  // Restart r seeds: r == 0 uses the heaviest node (the paper's primary
  // rule); the rest pick uniformly random seeds. Seeds are drawn up front so
  // parallel execution stays deterministic.
  std::vector<NodeId> seeds(restarts, graph::kInvalidNode);
  for (std::uint32_t r = 1; r < restarts && n > 0; ++r) {
    seeds[r] = static_cast<NodeId>(rng.uniform_index(n));
  }

  std::vector<Partition> results(restarts);
  auto run_one = [&](std::size_t r) {
    support::Rng local = rng.derive(0xABCDull + r);
    results[r] = grow_once(g, k, c, options.balance_slack, seeds[r], local);
  };
  if (options.parallel && restarts > 1) {
    support::parallel_for(0, restarts, run_one);
  } else {
    for (std::uint32_t r = 0; r < restarts; ++r) run_one(r);
  }

  std::size_t best = 0;
  Goodness best_g = compute_goodness(g, results[0], c);
  for (std::size_t r = 1; r < restarts; ++r) {
    const Goodness gr = compute_goodness(g, results[r], c);
    if (gr < best_g) {
      best_g = gr;
      best = r;
    }
  }
  return results[best];
}

Partition random_balanced_partition(const Graph& g, PartId k,
                                    support::Rng& rng) {
  const NodeId n = g.num_nodes();
  Partition p(n, k);
  auto order = rng.permutation(n);
  std::vector<Weight> loads(static_cast<std::size_t>(k), 0);
  for (NodeId u : order) {
    const auto lightest = static_cast<PartId>(
        std::min_element(loads.begin(), loads.end()) - loads.begin());
    p.set(u, lightest);
    loads[static_cast<std::size_t>(lightest)] += g.node_weight(u);
  }
  return p;
}

Partition region_grow_bisection(const Graph& g, double fraction,
                                support::Rng& rng) {
  const NodeId n = g.num_nodes();
  Partition p(n, 2);
  for (NodeId u = 0; u < n; ++u) p.set(u, 1);
  if (n == 0) return p;
  const Weight target = static_cast<Weight>(
      fraction * static_cast<double>(g.total_node_weight()));
  Weight grown = 0;
  std::vector<bool> visited(n, false);
  // BFS from random seeds until the target weight is reached; multiple
  // seeds cover disconnected graphs.
  while (grown < target) {
    NodeId seed = graph::kInvalidNode;
    for (std::uint32_t attempt = 0; attempt < 8; ++attempt) {
      const NodeId cand = static_cast<NodeId>(rng.uniform_index(n));
      if (!visited[cand]) {
        seed = cand;
        break;
      }
    }
    if (seed == graph::kInvalidNode) {
      for (NodeId u = 0; u < n && seed == graph::kInvalidNode; ++u) {
        if (!visited[u]) seed = u;
      }
    }
    if (seed == graph::kInvalidNode) break;  // everything visited
    std::queue<NodeId> queue;
    queue.push(seed);
    visited[seed] = true;
    while (!queue.empty() && grown < target) {
      const NodeId u = queue.front();
      queue.pop();
      p.set(u, 0);
      grown += g.node_weight(u);
      for (NodeId v : g.neighbors(u)) {
        if (!visited[v]) {
          visited[v] = true;
          queue.push(v);
        }
      }
    }
  }
  return p;
}

}  // namespace ppnpart::part
