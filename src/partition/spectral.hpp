#pragma once
// Recursive spectral bisection — the "global search" family of related work
// (paper Section II-B): partition from the Fiedler vector of the weighted
// graph Laplacian, computed here with deflated power iteration (no external
// eigensolver). Serves as a quality baseline in the ablation benches and as
// an alternative coarsest-level seeding strategy.

#include <cstdint>
#include <vector>

#include "partition/partitioner.hpp"
#include "support/prng.hpp"

namespace ppnpart::part {

struct SpectralOptions {
  std::uint32_t power_iterations = 300;
  double tolerance = 1e-9;
  std::uint32_t fm_passes = 6;
  double imbalance = 1.03;
};

/// Approximate Fiedler vector (eigenvector of the second-smallest Laplacian
/// eigenvalue); empty when n < 2.
std::vector<double> fiedler_vector(const Graph& g,
                                   const SpectralOptions& options,
                                   support::Rng& rng);

class SpectralPartitioner : public Partitioner {
 public:
  explicit SpectralPartitioner(SpectralOptions options = {});

  std::string name() const override { return "Spectral"; }
  PartitionResult run(const Graph& g, const PartitionRequest& request) override;

 private:
  SpectralOptions options_;
};

/// Uniformly random balanced assignment; the control baseline.
class RandomPartitioner : public Partitioner {
 public:
  std::string name() const override { return "Random"; }
  PartitionResult run(const Graph& g, const PartitionRequest& request) override;
};

}  // namespace ppnpart::part
