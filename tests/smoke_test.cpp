// End-to-end smoke: build a paper instance, run GP and MetisLike, check the
// headline claim (GP feasible, MetisLike not necessarily).

#include <gtest/gtest.h>

#include "partition/gp.hpp"
#include "partition/metislike.hpp"
#include "ppn/paper_instances.hpp"

namespace ppnpart {
namespace {

TEST(Smoke, GpPartitionsPaperInstance1) {
  const ppn::PaperInstance inst = ppn::paper_instance(1);
  ASSERT_TRUE(inst.graph.validate().empty()) << inst.graph.validate();

  part::PartitionRequest request;
  request.k = inst.k;
  request.constraints = inst.constraints;
  request.seed = 7;

  part::GpPartitioner gp;
  const part::PartitionResult result = gp.run(inst.graph, request);
  EXPECT_TRUE(result.partition.complete());
  EXPECT_EQ(result.partition.size(), inst.graph.num_nodes());

  part::MetisLikeOptions mopts;
  mopts.unit_vertex_balance = true;
  part::MetisLikePartitioner metis(mopts);
  const part::PartitionResult baseline = metis.run(inst.graph, request);
  EXPECT_TRUE(baseline.partition.complete());
}

}  // namespace
}  // namespace ppnpart
