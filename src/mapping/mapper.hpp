#pragma once
// Partition -> device assignment and mapping validation.
//
// On an all-to-all platform the assignment is the identity; on sparser
// topologies (ring, mesh, star) the parts must be *placed*: heavy-talking
// part pairs need direct links with enough capacity. For the k's that make
// sense on multi-FPGA boards (k <= 8) exhaustive placement is instant; a
// greedy edge-driven placement covers larger k.

#include <cstdint>
#include <string>
#include <vector>

#include "mapping/platform.hpp"
#include "partition/partition.hpp"
#include "ppn/network.hpp"

namespace ppnpart::mapping {

struct Mapping {
  part::Partition partition;
  /// device_of_part[p] = device hosting part p.
  std::vector<std::uint32_t> device_of_part;

  std::uint32_t device_of_node(graph::NodeId u) const {
    return device_of_part[static_cast<std::size_t>(partition[u])];
  }
};

struct MappingViolation {
  enum class Kind { kResource, kBandwidth, kNoLink } kind = Kind::kResource;
  /// Device (resource) or device pair (bandwidth / missing link).
  std::uint32_t a = 0, b = 0;
  Weight demand = 0;
  Weight budget = 0;
  std::string describe() const;
};

struct MappingReport {
  bool feasible = true;
  std::vector<MappingViolation> violations;
  std::vector<Weight> device_loads;
  /// Traffic demanded between each device pair (flattened k x k, row-major).
  std::vector<Weight> pair_traffic;
  std::uint32_t num_devices = 0;

  Weight traffic(std::uint32_t a, std::uint32_t b) const {
    return pair_traffic[static_cast<std::size_t>(a) * num_devices + b];
  }
  std::string summary() const;
};

struct MapOptions {
  /// Try all part->device permutations when k <= this (exact placement).
  std::uint32_t exhaustive_limit = 8;
};

/// Places parts onto devices minimizing (violation count, overflow sum).
/// Requires partition.k() <= platform.num_devices().
Mapping map_network(const graph::Graph& g, const part::Partition& partition,
                    const Platform& platform, const MapOptions& options = {});

/// Checks a given mapping against resource budgets and link capacities.
MappingReport validate_mapping(const graph::Graph& g, const Mapping& mapping,
                               const Platform& platform);

}  // namespace ppnpart::mapping
