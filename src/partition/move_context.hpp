#pragma once
// Incremental bookkeeping for node moves during refinement.
//
// MoveContext maintains, under single-node moves:
//   * conn(u, r): total weight of edges from u into part r,
//   * per-part loads and node counts,
//   * the k x k pairwise cut matrix and global cut,
//   * the aggregate resource/bandwidth constraint excesses.
// A move costs O(degree(u) + k); evaluating a hypothetical move costs O(k).
// compute_metrics() (full recomputation) is the reference implementation the
// tests compare against.

#include <optional>
#include <vector>

#include "partition/partition.hpp"

namespace ppnpart::part {

class MoveContext {
 public:
  /// Partition must be complete. The context takes a reference: callers
  /// mutate the partition exclusively through apply().
  MoveContext(const Graph& g, Partition& p, const Constraints& c);

  const Graph& graph() const { return *graph_; }
  const Partition& partition() const { return *partition_; }
  const Constraints& constraints() const { return constraints_; }
  PartId k() const { return k_; }
  PartId part_of(NodeId u) const { return (*partition_)[u]; }

  Weight conn(NodeId u, PartId r) const {
    return conn_[static_cast<std::size_t>(u) * k_ + static_cast<std::size_t>(r)];
  }
  Weight load(PartId p) const { return loads_[static_cast<std::size_t>(p)]; }
  std::uint32_t part_size(PartId p) const {
    return counts_[static_cast<std::size_t>(p)];
  }
  Weight cut() const { return cut_; }
  const PairwiseCut& pairwise() const { return pairwise_; }

  Goodness goodness() const {
    return Goodness{resource_excess_, bandwidth_excess_, cut_};
  }

  /// Goodness of the partition if u moved to part q (u's part unchanged is
  /// allowed and returns current goodness). O(k).
  Goodness goodness_after(NodeId u, PartId q) const;

  /// Moves u to part q, updating all incremental state. O(degree(u) + k).
  void apply(NodeId u, PartId q);

  /// True iff u has at least one neighbour in another part.
  bool is_boundary(NodeId u) const;
  std::vector<NodeId> boundary_nodes() const;

  struct Candidate {
    PartId target = kUnassigned;
    Goodness after;
  };
  /// Best target part for u by resulting goodness; never empties u's part
  /// when `allow_emptying` is false. nullopt when no legal target exists.
  std::optional<Candidate> best_move(NodeId u, bool allow_emptying = false) const;

 private:
  const Graph* graph_;
  Partition* partition_;
  Constraints constraints_;
  PartId k_;
  std::vector<Weight> conn_;       // n x k
  std::vector<Weight> loads_;      // k
  std::vector<std::uint32_t> counts_;  // k
  PairwiseCut pairwise_;
  Weight cut_ = 0;
  Weight resource_excess_ = 0;
  Weight bandwidth_excess_ = 0;
};

}  // namespace ppnpart::part
