#pragma once
// Shared helpers for the bench harnesses: instance generation and aligned
// table printing.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "graph/delta.hpp"
#include "graph/generators.hpp"
#include "partition/gp.hpp"
#include "partition/metislike.hpp"
#include "partition/phase_profile.hpp"
#include "partition/workspace.hpp"
#include "support/timer.hpp"

namespace ppnpart::bench {

/// The PR-3 multilevel hot-path workload: one PN-shaped graph at `nodes`
/// with the scaling-study constraint scheme (K=8). Both bench_scaling's
/// throughput table and tools/bench_json measure exactly this, so the two
/// reports can never drift onto different workloads.
inline graph::Graph multilevel_workload_graph(graph::NodeId nodes) {
  graph::ProcessNetworkParams params;
  params.num_nodes = nodes;
  params.layers = std::max<std::uint32_t>(8, nodes / 64);
  support::Rng rng(123 + nodes);
  return graph::random_process_network(params, rng);
}

inline part::PartitionRequest multilevel_workload_request(
    const graph::Graph& g, part::Workspace& ws) {
  part::PartitionRequest request;
  request.k = 8;
  request.seed = 99;
  request.workspace = &ws;
  request.constraints.rmax =
      static_cast<graph::Weight>(1.15 * g.total_node_weight() / 8);
  request.constraints.bmax =
      static_cast<graph::Weight>(1.3 * g.total_edge_weight() / 28.0 / 2.0);
  return request;
}

/// Warm-then-time harness: one untimed warming run, `reps` timed runs, and
/// the workspace growth delta across the timed phase (0 == allocation-free
/// steady state). The timed runs carry a PhaseProfile, so every harness
/// built on this also reports where the time went (coarsen / initial /
/// refine shares, accumulated across the `reps` runs).
struct MultilevelCase {
  double seconds = 0;
  std::uint64_t ws_growths = 0;
  part::PartitionResult warm;
  part::PhaseProfile phases;  // accumulated over the timed runs only
};

inline MultilevelCase run_multilevel_case(part::Partitioner& p,
                                          const graph::Graph& g,
                                          part::Workspace& ws, int reps) {
  part::PartitionRequest request = multilevel_workload_request(g, ws);
  MultilevelCase result;
  result.warm = p.run(g, request);
  const std::uint64_t growths_before = ws.stats().growths;
  // Profiling hooks cost two clock reads per level — noise against the
  // millisecond-scale runs they account — so the timed phase carries them.
  request.phases = &result.phases;
  support::Timer timer;
  for (int i = 0; i < reps; ++i) p.run(g, request);
  result.seconds = timer.seconds();
  result.ws_growths = ws.stats().growths - growths_before;
  return result;
}

/// A random small-edit script against `g` — the evolving-network workload
/// of the incremental-repartitioning scenario (PR 4). Roughly
/// `edit_fraction * num_nodes` ops: mostly channel reweights, some channel
/// adds/removes, and (when `node_ops`) occasional process adds/removals.
/// Deterministic in `rng`; both bench_engine and tools/bench_json drive
/// exactly this generator so their workloads cannot drift apart.
inline graph::GraphDelta random_evolution_delta(const graph::Graph& g,
                                                double edit_fraction,
                                                support::Rng& rng,
                                                bool node_ops = true) {
  graph::GraphDelta delta(g);
  const graph::NodeId n = g.num_nodes();
  if (n == 0) return delta;
  const auto ops = static_cast<std::size_t>(
      std::max(1.0, edit_fraction * static_cast<double>(n)));
  std::vector<graph::NodeId> live;  // base nodes not yet removed
  live.reserve(n);
  for (graph::NodeId u = 0; u < n; ++u) live.push_back(u);
  for (std::size_t i = 0; i < ops && live.size() >= 2; ++i) {
    const std::size_t roll = rng.uniform_index(100);
    const graph::NodeId u = live[rng.uniform_index(live.size())];
    if (roll < 60) {  // reweight a channel of u (if it has one alive)
      if (g.degree(u) != 0) {
        const graph::NodeId v = g.neighbors(u)[rng.uniform_index(g.degree(u))];
        if (std::find(live.begin(), live.end(), v) != live.end()) {
          delta.set_edge_weight(
              u, v, 1 + static_cast<graph::Weight>(rng.uniform_index(12)));
          continue;
        }
      }
      // u lost its channels to removals: fall through to adding one.
    }
    if (roll < 80 || !node_ops) {  // add a channel
      const graph::NodeId v = live[rng.uniform_index(live.size())];
      if (u != v)
        delta.add_edge(u, v,
                       1 + static_cast<graph::Weight>(rng.uniform_index(6)));
      continue;
    }
    if (roll < 90) {  // add a process wired to two live ones
      const graph::NodeId fresh = delta.add_node(
          10 + static_cast<graph::Weight>(rng.uniform_index(70)));
      delta.add_edge(fresh, live[rng.uniform_index(live.size())],
                     1 + static_cast<graph::Weight>(rng.uniform_index(6)));
      delta.add_edge(fresh, live[rng.uniform_index(live.size())],
                     1 + static_cast<graph::Weight>(rng.uniform_index(6)));
      continue;
    }
    // retire a process (strands its channels)
    const std::size_t idx = rng.uniform_index(live.size());
    delta.remove_node(live[idx]);
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  return delta;
}

/// A near-identical ARRIVAL: the evolving-network edit generator applied and
/// materialized as a fresh plain-CSR graph, the shape a service receives
/// when callers edit their networks out-of-band and hand over the result
/// with no delta attached. ~`divergence * num_nodes` edits; node ids stay
/// stable (edge-only edits by default), which is what the similarity
/// admission path's stable-id diff exploits. Both bench_engine section 6
/// and tools/bench_json drive exactly this generator so the tracked
/// "similarity" numbers and the bench report cannot drift apart.
inline graph::Graph near_identical_arrival(const graph::Graph& g,
                                           double divergence,
                                           support::Rng& rng,
                                           bool node_ops = false) {
  return random_evolution_delta(g, divergence, rng, node_ops).apply(g).graph;
}

/// A reproducible family of PN-shaped instances with constraints scaled to
/// a tightness factor: rmax = resource_slack * W/k, bmax = bandwidth_slack *
/// (total edge weight) / (k choose 2)  — slack 1.0 is the tightest sensible
/// setting, larger is looser.
struct InstanceFamily {
  graph::NodeId nodes = 200;
  part::PartId k = 4;
  double resource_slack = 1.3;
  double bandwidth_slack = 1.3;
  std::uint64_t base_seed = 1000;

  struct Instance {
    graph::Graph graph;
    part::PartitionRequest request;
  };

  Instance make(int index) const {
    graph::ProcessNetworkParams params;
    params.num_nodes = nodes;
    params.layers = std::max<std::uint32_t>(4, nodes / 16);
    support::Rng rng(base_seed + static_cast<std::uint64_t>(index));
    Instance inst;
    inst.graph = graph::random_process_network(params, rng);
    inst.request.k = k;
    inst.request.seed = base_seed * 7 + static_cast<std::uint64_t>(index);
    const auto total_w = static_cast<double>(inst.graph.total_node_weight());
    const auto total_e = static_cast<double>(inst.graph.total_edge_weight());
    const double pairs = k * (k - 1) / 2.0;
    inst.request.constraints.rmax = std::max<graph::Weight>(
        static_cast<graph::Weight>(resource_slack * total_w / k),
        inst.graph.max_node_weight());
    inst.request.constraints.bmax =
        std::max<graph::Weight>(1,
                                static_cast<graph::Weight>(
                                    bandwidth_slack * total_e / pairs / 2.0));
    return inst;
  }
};

/// Aggregate of one algorithm over a family.
struct RunSummary {
  int feasible = 0;
  int total = 0;
  double cut_sum = 0;
  double seconds_sum = 0;
  double max_bw_sum = 0;
  double max_load_sum = 0;

  void add(const part::PartitionResult& r) {
    ++total;
    feasible += r.feasible ? 1 : 0;
    cut_sum += static_cast<double>(r.metrics.total_cut);
    seconds_sum += r.seconds;
    max_bw_sum += static_cast<double>(r.metrics.max_pairwise_cut);
    max_load_sum += static_cast<double>(r.metrics.max_load);
  }
  double feasible_rate() const {
    return total != 0 ? static_cast<double>(feasible) / total : 0;
  }
  double mean_cut() const { return total != 0 ? cut_sum / total : 0; }
  double mean_seconds() const { return total != 0 ? seconds_sum / total : 0; }
};

inline void print_header(const char* title, const char* columns) {
  std::printf("=== %s ===\n%s\n", title, columns);
}

}  // namespace ppnpart::bench
