#pragma once
// Reusable scratch memory for the multilevel hot path.
//
// Every multilevel partitioner run (GP, MetisLike, NLevel, KL) spends its
// budget in the same inner loop — match, contract, refine, project — and
// used to pay for fresh allocations at every level and pass: a new n x k
// connectivity matrix per refinement call, a heap-allocated row buffer per
// coarse node, per-pass heap/stamp/locked/seed vectors. A Workspace owns all
// of that scratch once per run; buffers grow to the finest level's sizes and
// are then reused by every coarser level, every pass and every V-cycle, so
// the steady-state inner loop performs no allocator traffic at all.
// `stats()` exposes the counting-allocator hook: it increments only when a
// workspace buffer actually has to grow, which benches use to certify the
// O(1)-amortized-allocations-per-level property.
//
// Ownership rules: ONE Workspace per partitioner run, created by (or handed
// to) the run and threaded down by reference. NEVER share a Workspace
// across threads — it is deliberately unsynchronized scratch; parallel
// sections (e.g. greedy-grow restarts) must not touch it. Reuse across
// sequential runs is encouraged (PartitionRequest::workspace) and is where
// the steady-state zero-allocation behaviour comes from.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/contract.hpp"
#include "partition/matching.hpp"
#include "partition/move_context.hpp"
#include "partition/partition.hpp"
#include "support/alloc_stats.hpp"
#include "support/contracts.hpp"

namespace ppnpart::part {

struct PhaseProfile;

/// Heap entry of the constrained FM pass: the move's gain delta
/// (goodness-after minus goodness-now, lexicographic), its node/target and
/// the lazy-revalidation stamp.
struct FmHeapEntry {
  Weight d_resource, d_bandwidth, d_cut;
  NodeId node;
  PartId target;
  /// Stamps/versions are compared for equality only and only within one
  /// pass (the heap never survives a pass), so 32 bits cannot collide: a
  /// pass performs far fewer than 2^32 stamp bumps or moves.
  std::uint32_t stamp;
  std::uint32_t version;
};

struct FmMoveRecord {
  NodeId node;
  PartId from;
};

/// Per-pass scratch of constrained_fm_pass, hoisted out of the pass. The
/// heap sifts 4-byte pool indices instead of 40-byte entries (identical pop
/// order: the comparator sees the same values); popped entries stay in the
/// pool until the pass ends.
struct FmScratch {
  support::AllocStats* stats = nullptr;
  std::vector<FmHeapEntry> pool;        // entries, append-only per pass
  std::vector<std::uint32_t> heap;      // std::push_heap/pop_heap over pool indices
  std::vector<std::uint32_t> stamp;     // per-node revalidation stamps
  std::vector<std::uint8_t> locked;
  std::vector<NodeId> seeds;
  std::vector<std::uint8_t> seeded;
  std::vector<FmMoveRecord> log;
};

/// Scratch of bisection_fm_refine (2-way FM with side caps).
struct BisectionScratch {
  support::AllocStats* stats = nullptr;
  std::vector<Weight> internal;  // conn to own side
  std::vector<Weight> external;  // conn to other side
  std::vector<std::uint8_t> locked;
  std::vector<NodeId> log;
};

struct KlStep {
  NodeId a, b;
  Weight gain;
};

/// Scratch of kl_bisection_refine.
struct KlScratch {
  support::AllocStats* stats = nullptr;
  std::vector<Weight> d;  // KL D-values
  std::vector<std::uint8_t> locked;
  std::vector<NodeId> side0, side1;
  std::vector<KlStep> steps;
};

/// Scratch of IncrementalPartitioner (projection + greedy seeding of new
/// nodes). The refinement itself runs through move_ctx/fm like every other
/// FM consumer.
struct IncrementalScratch {
  support::AllocStats* stats = nullptr;
  std::vector<Weight> loads;      // per-part load during greedy seeding
  std::vector<Weight> part_conn;  // per-part connectivity of the probed node
};

/// One LP move proposal from a parallel scan chunk (parallel.hpp): move
/// `node` to part `to`. Validated against the exact goodness at commit time.
struct LpCandidate {
  NodeId node;
  PartId to;
};

/// Per-chunk scratch of the parallel kernels. A chunk task owns exactly one
/// arena for the duration of a phase; arenas are interior to the single
/// leased Workspace and pairwise disjoint, so the one-lease-per-run
/// ownership rule holds unchanged — the lease covers the run, the arenas
/// partition the scratch among that run's worker chunks.
struct ThreadArena {
  support::AllocStats* stats = nullptr;
  /// LP candidate buffer; merged across arenas once per round.
  std::vector<LpCandidate> moves;
};

/// Shared buffers of the parallel multilevel kernels (parallel.hpp). The
/// proposal/weight arrays back the deterministic mutual-proposal matching
/// (phase-separated plain access: every slot has exactly one writer per
/// phase); the atomic claim array backs the free-running CAS matching.
struct ParallelScratch {
  support::AllocStats* stats = nullptr;
  /// Per-node proposed partner (mutual-proposal rounds).
  std::vector<NodeId> proposal;
  /// Weight of the proposed edge, consumed when a proposal pairs up.
  std::vector<Weight> proposal_weight;
  /// Chunk-merged LP candidates (deterministic: chunk-index order == node
  /// order; free-running: completion order).
  std::vector<LpCandidate> merged;
  /// Per-chunk representative counts / exclusive prefix bases for the
  /// parallel fine-to-coarse id assignment.
  std::vector<NodeId> chunk_base;

  /// Atomic per-node `matched` words for the CAS claim protocol, grown to
  /// `n` (contents unspecified on return; callers re-initialize).
  std::atomic<NodeId>* claims(std::size_t n) {
    if (n > claims_cap_) {
      if (stats != nullptr) stats->note(n * sizeof(std::atomic<NodeId>));
      claims_ = std::make_unique<std::atomic<NodeId>[]>(n);
      claims_cap_ = n;
    }
    return claims_.get();
  }

  /// The i-th chunk arena, created on first use (a growth event) and reused
  /// by every later phase, level and run.
  ThreadArena& arena(std::size_t i) {
    while (arenas_.size() <= i) {
      if (stats != nullptr) stats->note(sizeof(ThreadArena));
      arenas_.push_back(std::make_unique<ThreadArena>());
      arenas_.back()->stats = stats;
    }
    return *arenas_[i];
  }

 private:
  std::unique_ptr<std::atomic<NodeId>[]> claims_;
  std::size_t claims_cap_ = 0;
  std::vector<std::unique_ptr<ThreadArena>> arenas_;
};

class Workspace {
 public:
  Workspace() {
    contract.stats = &stats_;
    matching.stats = &stats_;
    fm.stats = &stats_;
    bisect.stats = &stats_;
    kl.stats = &stats_;
    incremental.stats = &stats_;
    parallel.stats = &stats_;
    move_ctx.set_alloc_stats(&stats_);
  }
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Growth counter over every workspace-owned buffer. Warm steady state
  /// (same graph family, same k) must not advance it.
  const support::AllocStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

  graph::ContractScratch contract;
  MatchingScratch matching;
  FmScratch fm;
  BisectionScratch bisect;
  KlScratch kl;
  IncrementalScratch incremental;
  ParallelScratch parallel;

  /// Reusable incremental mover (reset() per level/pass).
  MoveContext move_ctx;

  /// Boundary/visit-order buffer for the greedy refiners.
  std::vector<NodeId> boundary;

  /// Matching competition buffers (coarsen(): candidate vs best-so-far).
  Matching match_candidate;
  Matching match_best;

  /// Reusable Partition for per-level refine-project loops.
  Partition level_partition;

  /// Transient per-run profiling context, installed from
  /// PartitionRequest::phases via PhaseContextScope so shared helpers
  /// (coarsen(), per-level refine loops) can charge their phase without
  /// signature churn. Non-owning; null = no profiling. Not scratch: never
  /// grows, never counted by stats().
  PhaseProfile* phases = nullptr;
  /// Trace category for spans emitted through this workspace — the running
  /// algorithm's registry name (static string); null = "multilevel".
  const char* phase_cat = nullptr;

 private:
  support::AllocStats stats_;
#if PPN_CONTRACTS_ENABLED
  friend class WorkspaceLease;
  /// Debug-only exclusivity flag; see WorkspaceLease.
  std::atomic<bool> in_use_{false};
#endif
};

/// RAII enforcement of the ownership rule above: ONE run per Workspace at a
/// time. Every partitioner entry point takes a lease on the workspace it
/// resolved (caller-supplied or local) for the duration of the run; taking
/// a second lease — two threads sharing one workspace, or a re-entrant run
/// handed its caller's scratch — aborts in Debug builds with the usual
/// contract diagnostics. The flag is atomic so a cross-thread violation is
/// reported deterministically instead of being itself a data race; Release
/// builds compile the guard away entirely.
class WorkspaceLease {
 public:
  explicit WorkspaceLease(Workspace& ws)
#if PPN_CONTRACTS_ENABLED
      : ws_(&ws) {
    PPN_CHECK_MSG(!ws_->in_use_.exchange(true, std::memory_order_acq_rel),
                  "Workspace already in use: two partitioner runs share one "
                  "workspace (concurrently or re-entrantly)");
  }
  ~WorkspaceLease() { ws_->in_use_.store(false, std::memory_order_release); }
#else
  {
    (void)ws;
  }
#endif
  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;

#if PPN_CONTRACTS_ENABLED
 private:
  Workspace* ws_;
#endif
};

}  // namespace ppnpart::part
