#include "partition/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/algorithms.hpp"
#include "partition/initial.hpp"
#include "partition/refine.hpp"
#include "support/timer.hpp"

namespace ppnpart::part {

std::vector<double> fiedler_vector(const Graph& g,
                                   const SpectralOptions& options,
                                   support::Rng& rng) {
  const NodeId n = g.num_nodes();
  if (n < 2) return {};

  // Power iteration on M = cI - L converges to L's smallest eigenpairs;
  // deflating the constant vector (L's nullspace on connected graphs)
  // leaves the Fiedler vector as the dominant direction.
  std::vector<double> degree(n, 0);
  double max_degree = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (Weight w : g.edge_weights(u)) degree[u] += static_cast<double>(w);
    max_degree = std::max(max_degree, degree[u]);
  }
  const double shift = 2.0 * max_degree + 1.0;

  std::vector<double> x(n), next(n);
  for (NodeId u = 0; u < n; ++u) x[u] = rng.uniform_real(-1.0, 1.0);

  auto deflate_and_normalize = [&](std::vector<double>& v) {
    double mean = std::accumulate(v.begin(), v.end(), 0.0) / n;
    for (double& value : v) value -= mean;
    double norm = std::sqrt(std::inner_product(v.begin(), v.end(), v.begin(), 0.0));
    if (norm < 1e-300) {
      // Degenerate start; re-randomize.
      for (double& value : v) value = rng.uniform_real(-1.0, 1.0);
      mean = std::accumulate(v.begin(), v.end(), 0.0) / n;
      for (double& value : v) value -= mean;
      norm = std::sqrt(std::inner_product(v.begin(), v.end(), v.begin(), 0.0));
    }
    for (double& value : v) value /= norm;
  };
  deflate_and_normalize(x);

  double previous_rayleigh = 0;
  for (std::uint32_t it = 0; it < options.power_iterations; ++it) {
    // next = (shift I - L) x = shift*x - degree*x + A*x
    for (NodeId u = 0; u < n; ++u) {
      double acc = (shift - degree[u]) * x[u];
      auto nbrs = g.neighbors(u);
      auto wgts = g.edge_weights(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        acc += static_cast<double>(wgts[i]) * x[nbrs[i]];
      }
      next[u] = acc;
    }
    const double rayleigh =
        std::inner_product(x.begin(), x.end(), next.begin(), 0.0);
    deflate_and_normalize(next);
    x.swap(next);
    if (it > 4 && std::abs(rayleigh - previous_rayleigh) <
                      options.tolerance * std::abs(rayleigh)) {
      break;
    }
    previous_rayleigh = rayleigh;
  }
  return x;
}

namespace {

void spectral_recurse(const Graph& g, const std::vector<NodeId>& original_of,
                      PartId k, PartId offset, const SpectralOptions& options,
                      support::Rng& rng, std::vector<PartId>& assign) {
  if (k <= 1 || g.num_nodes() <= 1) {
    for (NodeId u = 0; u < g.num_nodes(); ++u)
      assign[original_of[u]] = offset;
    return;
  }
  const PartId k0 = k / 2;
  const PartId k1 = k - k0;
  const double fraction = static_cast<double>(k0) / static_cast<double>(k);
  const Weight total = g.total_node_weight();

  std::vector<double> fiedler = fiedler_vector(g, options, rng);
  // Sort by Fiedler value; side 0 takes the prefix up to `fraction` weight.
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (fiedler[a] != fiedler[b]) return fiedler[a] < fiedler[b];
    return a < b;
  });
  Partition p(g.num_nodes(), 2);
  Weight acc = 0;
  const auto target = static_cast<Weight>(
      fraction * static_cast<double>(total));
  for (NodeId u : order) {
    p.set(u, acc < target ? 0 : 1);
    acc += g.node_weight(u);
  }
  // Guard: both sides non-empty.
  if (p.members(0).empty()) p.set(order.front(), 0);
  if (p.members(1).empty()) p.set(order.back(), 1);

  const auto cap0 = static_cast<Weight>(
      std::ceil(options.imbalance * fraction * static_cast<double>(total)));
  const auto cap1 = static_cast<Weight>(std::ceil(
      options.imbalance * (1.0 - fraction) * static_cast<double>(total)));
  bisection_fm_refine(g, p, cap0, cap1, options.fm_passes, rng);

  std::vector<NodeId> side0, side1;
  for (NodeId u = 0; u < g.num_nodes(); ++u) (p[u] == 0 ? side0 : side1).push_back(u);
  if (side0.empty() || side1.empty()) {
    side0.clear();
    side1.clear();
    for (NodeId u = 0; u < g.num_nodes(); ++u)
      (u % 2 == 0 ? side0 : side1).push_back(u);
  }
  auto recurse = [&](const std::vector<NodeId>& side, PartId sub_k,
                     PartId sub_offset) {
    if (side.empty()) return;
    graph::Subgraph sub = graph::induced_subgraph(g, side);
    std::vector<NodeId> sub_original(side.size());
    for (std::size_t i = 0; i < side.size(); ++i)
      sub_original[i] = original_of[side[i]];
    spectral_recurse(sub.graph, sub_original, sub_k, sub_offset, options, rng,
                     assign);
  };
  recurse(side0, k0, offset);
  recurse(side1, k1, offset + k0);
}

}  // namespace

SpectralPartitioner::SpectralPartitioner(SpectralOptions options)
    : options_(options) {}

PartitionResult SpectralPartitioner::run(const Graph& g,
                                         const PartitionRequest& request) {
  support::Timer timer;
  PartitionResult result;
  result.algorithm = name();
  support::Rng rng(request.seed);
  std::vector<PartId> assign(g.num_nodes(), 0);
  std::vector<NodeId> identity(g.num_nodes());
  std::iota(identity.begin(), identity.end(), NodeId{0});
  spectral_recurse(g, identity, request.k, 0, options_, rng, assign);
  result.partition = Partition(g.num_nodes(), request.k);
  for (NodeId u = 0; u < g.num_nodes(); ++u) result.partition.set(u, assign[u]);
  result.finalize(g, request.constraints);
  result.seconds = timer.seconds();
  return result;
}

PartitionResult RandomPartitioner::run(const Graph& g,
                                       const PartitionRequest& request) {
  support::Timer timer;
  PartitionResult result;
  result.algorithm = name();
  support::Rng rng(request.seed);
  result.partition = random_balanced_partition(g, request.k, rng);
  result.finalize(g, request.constraints);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace ppnpart::part
