#pragma once
// The three matching heuristics of the paper's coarsening phase
// (Section IV-A): Random Maximal Matching, Heavy Edge Matching and K-Means
// Matching. All three are run side by side at every coarsening level and the
// best-scoring matching is contracted (see coarsen.hpp).

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "support/alloc_stats.hpp"
#include "support/prng.hpp"

namespace ppnpart::part {

using graph::Graph;
using graph::NodeId;
using graph::Weight;

/// match[u] == v means u and v are contracted together (match[v] == u);
/// match[u] == u means u stays single.
using Matching = std::vector<NodeId>;

/// An undirected edge record for sorted-edge sweeps. `pos` tags the edge's
/// position after the pre-sort shuffle so an unstable sort by (w desc, pos
/// asc) reproduces exactly what a stable sort by weight produced — without
/// stable_sort's per-call merge-buffer allocation.
struct WeightedEdge {
  Weight w;
  NodeId u, v;
  std::uint32_t pos;
};

/// Reusable temporaries for the matching heuristics. One scratch serves all
/// three heuristics sequentially (the coarsening competition); buffers grow
/// to the finest level's size once and are reused for every coarser level
/// and every later run.
struct MatchingScratch {
  support::AllocStats* stats = nullptr;
  std::vector<std::uint32_t> order;      // random visit order
  std::vector<NodeId> candidates;        // free-neighbour pool
  std::vector<WeightedEdge> edges;       // sorted-edge sweeps
  // k-means matching state
  std::vector<double> weight_of;
  std::vector<double> sorted_w;
  std::vector<double> centroid;
  std::vector<double> midpoints;
  std::vector<double> cluster_sum;
  std::vector<std::uint32_t> cluster_of;
  std::vector<std::uint32_t> cluster_count;
};

/// Visits nodes in random order; each unmatched node picks a uniformly
/// random unmatched neighbour (paper: "Random Maximal Matching").
Matching random_maximal_matching(const Graph& g, support::Rng& rng);
/// Allocation-free variant: result into `match`, temporaries from `scratch`.
/// Returns the total matched edge weight (== matched_edge_weight(g, match)),
/// computed for free during the sweep.
Weight random_maximal_matching_into(const Graph& g, support::Rng& rng,
                                    Matching& match, MatchingScratch& scratch);

/// Visits nodes in random order; each unmatched node picks its heaviest
/// unmatched incident edge. (The paper describes the global sorted-edge
/// variant; the node-local variant is the standard equivalent — it selects
/// the same matchings up to ties and is O(m) instead of O(m log m). Set
/// `globally_sorted` to use the literal sorted-edge sweep.)
Matching heavy_edge_matching(const Graph& g, support::Rng& rng,
                             bool globally_sorted = false);
Weight heavy_edge_matching_into(const Graph& g, support::Rng& rng,
                                Matching& match, MatchingScratch& scratch,
                                bool globally_sorted = false);

struct KMeansMatchingOptions {
  /// Number of weight-clusters; 0 means ceil(n / 8).
  std::uint32_t clusters = 0;
  std::uint32_t max_iterations = 16;
};

/// The paper's "K-Means Matching": nodes are clustered by weight (1-D
/// k-means with k-means++ seeding); within each cluster, adjacent pairs are
/// matched heaviest-edge-first. Nodes whose neighbours all fall in other
/// clusters remain unmatched (maximality within clusters only), which is why
/// this heuristic is only ever used in competition with the other two.
Matching kmeans_matching(const Graph& g, support::Rng& rng,
                         const KMeansMatchingOptions& options = {});
Weight kmeans_matching_into(const Graph& g, support::Rng& rng, Matching& match,
                            MatchingScratch& scratch,
                            const KMeansMatchingOptions& options = {});

/// Sum of weights of matched edges — the standard proxy for matching quality
/// (hidden weight cannot be cut at coarser levels).
Weight matched_edge_weight(const Graph& g, const Matching& m);

std::uint32_t matched_pair_count(const Matching& m);

/// Validates symmetry (match[match[u]] == u), adjacency of matched pairs and
/// range; returns first problem or empty string.
std::string validate_matching(const Graph& g, const Matching& m);

}  // namespace ppnpart::part
