// bench_json — machine-readable tracker for the multilevel hot path.
//
// Runs the end-to-end multilevel workload (GP / MetisLike / NLevel on a
// 10k-node PN-shaped graph, K=8, the workload of ROADMAP's scaling studies)
// through one reused part::Workspace and emits BENCH_multilevel.json with
//   * runs/s and seconds/run per partitioner,
//   * steady-state workspace allocation growths per run (the counting-
//     allocator hook; 0 == allocation-free inner loop),
//   * a peak-RSS proxy (VmHWM on Linux),
//   * the frozen pre-workspace baseline (commit bb85fa0) measured on the
//     same workload, so every future run reports its speedup against the
//     PR-3 starting point.
//
// PR 4 adds the evolving-network scenario: the same 10k-node PN evolves by
// ~1% edit deltas and Engine::repartition (warm-started incremental
// refinement) is tracked against a from-scratch portfolio run on every
// edited graph — speedup, cut-quality ratio, fallback count and the
// steady-state allocation contract of the engine's repartition workspace.
//
// PR 5 adds the similarity-admission scenario: the same drift arrives as
// plain CSR graphs with NO deltas, and the engine's admission pipeline
// (sketch -> diff -> warm start) is tracked against a scratch engine —
// speedup, cut ratio, near-hit/decline counters, plus two zero-tolerance
// rails: no invalid reuse (every served partition is complete, correctly
// sized and metrics-consistent for ITS arrival) and no stale-cache serve
// (no arrival is answered from the exact cache under another graph's key).
//
// PR 6 adds the "phases" block: per-partitioner coarsen/initial/refine time
// shares on the tracked workload (via the PhaseProfile threaded through the
// shared harness) and the tracing-off hook cost in nanoseconds — the
// overhead the observability layer charges the inner loop when nobody is
// watching. --check gates both: shares must sum to ~1 without exceeding the
// wall clock, profiling must not change any answer, and the disabled hook
// must stay in the nanosecond range.
//
// PR 8 adds the "robustness" block: a parked-pool burst against bounded
// admission (capacity 4, one running slot) reporting the shed rate and the
// degradation-rung distribution, plus one expired-budget arrival answered
// by the projected bottom rung. --check gates the accounting identity
// (completed + rejected + shed covers every arrival), typed refusal codes,
// the inline projected answer, and schedule replay across identical bursts.
//
// PR 10 adds the "parallel_scale" block: one GP run on a 1M-node streamed
// PN per thread count (1, 2, 4, 8) — wall-clock speedup vs the exact serial
// path, cut quality vs serial, peak RSS (the streamed generator keeps it
// near the finished CSR size), and the deterministic-mode contract that the
// parallel answer is bit-identical at every thread count. --check gates the
// structural facts everywhere (validity, thread-count invariance, repeat
// reproducibility, cut ratio <= 1.05) and arms the >= 3x speedup-at-8 gate
// only on >= 8-core hardware.
//
// Modes:
//   bench_json            full workload, writes BENCH_multilevel.json
//   bench_json --stdout   full workload, JSON to stdout only
//   bench_json --check    small self-check (CI smoke): verifies the
//                         workload runs, the steady state allocates
//                         nothing, the incremental path is deterministic
//                         and fallback-free on small edits, and the
//                         similarity path near-hits every ~1% arrival with
//                         zero invalid reuses, zero stale-cache serves,
//                         cut ratio <= 1.05 and a deterministic admission
//                         chain; exits non-zero on violation.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "engine/engine.hpp"
#include "partition/nlevel.hpp"
#include "support/stop_token.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace {

using namespace ppnpart;

/// Peak resident set in kilobytes (VmHWM); 0 where unsupported.
long peak_rss_kb() {
#if defined(__linux__)
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtol(line.c_str() + 6, nullptr, 10);
    }
  }
#endif
  return 0;
}

struct CaseResult {
  std::string name;
  int reps = 0;
  double seconds_per_run = 0;
  double runs_per_second = 0;
  double ws_growths_per_run = 0;  // steady-state allocation growths
  long long cut = 0;
  part::PhaseProfile phases;  // accumulated across the timed runs
};

/// Cost of one tracing hook when tracing is OFF — the tier the multilevel
/// inner loop pays permanently. Measured as ScopedSpan construct+destroy
/// (one relaxed atomic load) plus an arg() call per iteration; the
/// PPN_TRACE_DISABLED build optimizes the whole loop to nothing and
/// reports ~0.
double disabled_span_ns() {
  support::Tracer::global().set_enabled(false);
  constexpr int kIters = 2'000'000;
  support::Timer timer;
  for (int i = 0; i < kIters; ++i) {
    support::ScopedSpan span("bench", "disabled-probe");
    span.arg("i", i);
  }
  return timer.seconds() * 1e9 / kIters;
}

/// The evolving-network scenario: D deltas of ~`edit_fraction` edits chain
/// through Engine::repartition; every edited graph is also answered from
/// scratch by a portfolio engine for the speedup/quality comparison.
struct IncrementalResult {
  int deltas = 0;
  double edit_fraction = 0;
  double scratch_seconds_per_run = 0;
  double repartition_seconds_per_run = 0;
  double speedup_vs_scratch = 0;
  double mean_cut_ratio_vs_scratch = 0;  // incremental cut / scratch cut
  std::uint64_t fallbacks = 0;
  /// Workspace growths after the 3-delta warm-up window. The gated
  /// allocation-free contract is for stable workloads (bench_json --check,
  /// engine/property tests); on a large evolving network rare high-water
  /// events can outlast the window — this tracks them honestly.
  std::uint64_t ws_growths_after_warmup = 0;
};

IncrementalResult run_incremental_case(const graph::Graph& base, int deltas,
                                       double edit_fraction) {
  IncrementalResult r;
  r.deltas = deltas;
  r.edit_fraction = edit_fraction;

  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"gp"}};
  engine::Engine eng(opts);
  engine::EngineOptions scratch_opts = opts;
  scratch_opts.cache_capacity = 0;  // scratch must recompute every graph
  engine::Engine scratch_eng(scratch_opts);

  part::Workspace ws;  // request shaping only; engine requests drop it
  part::PartitionRequest request =
      bench::multilevel_workload_request(base, ws);
  request.workspace = nullptr;

  auto g = std::make_shared<const graph::Graph>(base);
  auto current = eng.run_one(g, request);

  support::Rng rng(2026);
  double cut_ratio_sum = 0;
  int cut_ratios = 0;
  std::uint64_t growths_after_warmup = 0;
  for (int d = 0; d < deltas; ++d) {
    // Edge-only edits keep the network size stable — the steady-state
    // allocation contract is part of what this scenario tracks.
    const graph::GraphDelta delta =
        bench::random_evolution_delta(*g, edit_fraction, rng,
                                      /*node_ops=*/false);
    support::Timer repart_timer;
    const engine::RepartitionOutcome rep =
        eng.repartition(engine::Job{g, request}, delta, current.best);
    r.repartition_seconds_per_run += repart_timer.seconds();
    // A cache hit (a delta that nets to an already-answered graph) is not
    // a fallback: nothing was recomputed at all.
    if (!rep.incremental && !rep.outcome.from_cache) ++r.fallbacks;
    // Warm-up window for the steady-state number: same contract as
    // self_check's gate (the FM scratch high-water mark converges over the
    // first few edits).
    if (d <= 2) growths_after_warmup = eng.stats().repartition_ws_growths;

    support::Timer scratch_timer;
    const engine::PortfolioOutcome scratch =
        scratch_eng.run_one(rep.graph, request);
    r.scratch_seconds_per_run += scratch_timer.seconds();
    if (scratch.best.metrics.total_cut > 0) {
      cut_ratio_sum +=
          static_cast<double>(rep.outcome.best.metrics.total_cut) /
          static_cast<double>(scratch.best.metrics.total_cut);
      ++cut_ratios;
    }
    g = rep.graph;
    current.best = rep.outcome.best;
  }
  r.scratch_seconds_per_run /= deltas;
  r.repartition_seconds_per_run /= deltas;
  r.speedup_vs_scratch =
      r.repartition_seconds_per_run > 0
          ? r.scratch_seconds_per_run / r.repartition_seconds_per_run
          : 0;
  r.mean_cut_ratio_vs_scratch =
      cut_ratios > 0 ? cut_ratio_sum / cut_ratios : 0;
  r.ws_growths_after_warmup =
      eng.stats().repartition_ws_growths - growths_after_warmup;
  return r;
}

/// The similarity-admission scenario: `arrivals` near-identical plain-CSR
/// versions of the workload graph stream through an admission-enabled
/// engine and a scratch engine. Every served answer is validated against
/// its OWN arrival (the zero-invalid-reuse / zero-stale-serve rails).
struct SimilarityResult {
  int arrivals = 0;
  double divergence = 0;
  double scratch_seconds_per_run = 0;
  double admit_seconds_per_run = 0;
  double speedup_vs_scratch = 0;
  double mean_cut_ratio_vs_scratch = 0;  // admitted cut / scratch cut
  std::uint64_t near_hits = 0;
  std::uint64_t declines = 0;
  std::uint64_t invalid_reuses = 0;  // wrong size/incomplete/metric mismatch
  std::uint64_t stale_serves = 0;    // exact-cache hit for a fresh arrival
};

SimilarityResult run_similarity_case(const graph::Graph& base, int arrivals,
                                     double divergence,
                                     std::vector<std::vector<part::PartId>>*
                                         out_assignments = nullptr) {
  SimilarityResult r;
  r.arrivals = arrivals;
  r.divergence = divergence;

  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"gp"}};
  opts.similarity.enabled = true;
  engine::Engine eng(opts);
  engine::EngineOptions scratch_opts = opts;
  scratch_opts.similarity.enabled = false;
  scratch_opts.cache_capacity = 0;  // scratch must recompute every arrival
  engine::Engine scratch_eng(scratch_opts);

  part::Workspace ws;  // request shaping only; engine requests drop it
  part::PartitionRequest request =
      bench::multilevel_workload_request(base, ws);
  request.workspace = nullptr;

  auto version = std::make_shared<const graph::Graph>(base);
  (void)eng.run_one(version, request);  // full run seeds the index
  // Counter baseline after seeding: the reported near-hits/declines cover
  // the ARRIVAL stream only (the seeding probe of an empty index always
  // declines and is not an arrival) — bench_engine section 6 reports the
  // same view.
  const engine::SimilarityStats seeded = eng.stats().similarity;

  support::Rng rng(5150);
  double cut_ratio_sum = 0;
  int cut_ratios = 0;
  for (int a = 0; a < arrivals; ++a) {
    const auto arrival = std::make_shared<const graph::Graph>(
        bench::near_identical_arrival(*version, divergence, rng));
    support::Timer admit_timer;
    const engine::PortfolioOutcome served = eng.run_one(arrival, request);
    r.admit_seconds_per_run += admit_timer.seconds();

    // Zero-stale-serve rail: a fresh arrival's content was never answered
    // before, so an exact-cache serve would mean a wrong-key replay.
    if (served.from_cache) ++r.stale_serves;
    // Zero-invalid-reuse rail: the answer must be a complete partition of
    // THIS arrival whose reported metrics recompute exactly.
    if (served.best.partition.size() != arrival->num_nodes() ||
        !served.best.partition.complete() ||
        served.best.metrics.total_cut !=
            part::compute_metrics(*arrival, served.best.partition).total_cut)
      ++r.invalid_reuses;
    if (out_assignments != nullptr)
      out_assignments->push_back(served.best.partition.assignments());

    support::Timer scratch_timer;
    const engine::PortfolioOutcome scratch =
        scratch_eng.run_one(arrival, request);
    r.scratch_seconds_per_run += scratch_timer.seconds();
    if (scratch.best.metrics.total_cut > 0) {
      cut_ratio_sum += static_cast<double>(served.best.metrics.total_cut) /
                       static_cast<double>(scratch.best.metrics.total_cut);
      ++cut_ratios;
    }
    version = arrival;
  }
  r.scratch_seconds_per_run /= arrivals;
  r.admit_seconds_per_run /= arrivals;
  r.speedup_vs_scratch = r.admit_seconds_per_run > 0
                             ? r.scratch_seconds_per_run /
                                   r.admit_seconds_per_run
                             : 0;
  r.mean_cut_ratio_vs_scratch =
      cut_ratios > 0 ? cut_ratio_sum / cut_ratios : 0;
  const engine::EngineStats stats = eng.stats();
  r.near_hits = stats.similarity.near_hits - seeded.near_hits;
  r.declines = stats.similarity.declines - seeded.declines;
  return r;
}

/// The overload scenario (PR 8): every pool worker is parked on a spin
/// flag, a burst of distinct jobs hits a bounded-admission engine
/// (capacity 4, one running slot), and one arrival comes in with an
/// already-expired budget. Depth at admission is then a pure function of
/// submission order, so the degradation-ladder walk, the shed set and the
/// projected inline answer are exactly reproducible — the block reports
/// the shed rate and the rung distribution, and --check gates the
/// accounting identity and the replay.
struct RobustnessResult {
  int jobs = 0;  // burst size, excluding the expired-budget arrival
  std::size_t queue_capacity = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t degraded = 0;
  std::uint64_t rung_full = 0;
  std::uint64_t rung_cheap = 0;
  std::uint64_t rung_gp = 0;
  std::uint64_t rung_projected = 0;
  std::uint64_t untyped_errors = 0;  // refusals missing a real StatusCode
  double shed_rate = 0;              // (rejected + shed) / total arrivals
  bool accounting_exact = false;     // completed + rejected + shed == total
  bool projected_served = false;     // the expired-budget arrival answered
};

RobustnessResult run_robustness_case(
    const graph::Graph& base, int jobs,
    std::vector<std::pair<int, int>>* schedule = nullptr) {
  RobustnessResult r;
  r.jobs = jobs;
  r.queue_capacity = 4;

  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"gp", "metislike"}};
  opts.queue_capacity = r.queue_capacity;
  opts.max_running_jobs = 1;
  opts.shed_policy = engine::ShedPolicy::kRejectNew;
  engine::Engine eng(opts);

  part::Workspace ws;  // request shaping only; engine requests drop it
  part::PartitionRequest req = bench::multilevel_workload_request(base, ws);
  req.workspace = nullptr;
  auto shared = std::make_shared<const graph::Graph>(base);

  // Park every worker so the burst cannot drain mid-submission.
  auto& pool = support::ThreadPool::global();
  std::atomic<bool> release{false};
  std::atomic<unsigned> parked{0};
  std::vector<std::future<void>> blockers;
  for (unsigned i = 0; i < pool.size(); ++i) {
    blockers.push_back(pool.submit([&release, &parked] {
      parked.fetch_add(1, std::memory_order_relaxed);
      while (!release.load(std::memory_order_relaxed))
        std::this_thread::yield();
    }));
  }
  while (parked.load(std::memory_order_relaxed) < pool.size())
    std::this_thread::yield();

  std::vector<engine::Engine::JobId> ids;
  for (int j = 0; j < jobs; ++j) {
    engine::Job job;
    job.graph = shared;
    job.request = req;
    job.request.seed = req.seed + 1 + static_cast<std::uint64_t>(j);
    ids.push_back(eng.submit(std::move(job)));
  }

  // An arrival whose budget is already gone: the bottom rung projects an
  // answer inline on the submitting thread — even with every worker parked.
  support::StopToken expired;
  expired.set_deadline_after(0.0);
  engine::Job last;
  last.graph = shared;
  last.request = req;
  last.request.seed = req.seed + 1000;
  last.request.stop = &expired;
  const engine::PortfolioOutcome projected =
      eng.run_one(last.graph, last.request);
  r.projected_served =
      projected.status.is_ok() && projected.winner == "projected" &&
      projected.best.partition.complete();

  release.store(true, std::memory_order_relaxed);
  for (std::future<void>& f : blockers) f.get();

  auto tally = [&r, schedule](const engine::PortfolioOutcome& out) {
    using Rung = engine::AdmissionDecision::DegradeRung;
    if (schedule != nullptr)
      schedule->emplace_back(static_cast<int>(out.decision.path),
                             static_cast<int>(out.decision.rung));
    if (!out.status.is_ok()) {
      if (out.status.code() == support::StatusCode::kOk ||
          out.status.code() == support::StatusCode::kInternal)
        ++r.untyped_errors;  // overload refusals must say WHY, typed
      return;
    }
    switch (out.decision.rung) {
      case Rung::kFull: ++r.rung_full; break;
      case Rung::kCheapMembers: ++r.rung_cheap; break;
      case Rung::kGpOnly: ++r.rung_gp; break;
      case Rung::kProjected: ++r.rung_projected; break;
    }
  };
  for (const engine::Engine::JobId id : ids) tally(eng.wait(id));
  tally(projected);

  const engine::EngineStats stats = eng.stats();
  r.completed = stats.jobs_completed;
  r.rejected = stats.jobs_rejected;
  r.shed = stats.jobs_shed;
  r.degraded = stats.jobs_degraded;
  const auto total = static_cast<std::uint64_t>(jobs) + 1;
  r.accounting_exact = r.completed + r.rejected + r.shed == total;
  r.shed_rate = static_cast<double>(r.rejected + r.shed) /
                static_cast<double>(total);
  return r;
}

/// The near-twin burst scenario (PR 9): every pool worker is parked, then a
/// burst of near-identical arrivals is submitted with NO indexed answer to
/// match — the first registers as the cohort's pending leader, the rest park
/// behind it. Because the warm-start stage runs as pool tasks, every
/// submit() must return with its job still pending (the parked pool is the
/// proof that no diff/verify/refine ran on the submitting thread). After
/// release, the whole cohort must cost exactly one full portfolio run plus
/// N-1 warm starts, with the probe counters solvent at the end.
struct NearTwinBurstResult {
  int twins = 0;  // burst size, leader included
  double divergence = 0;
  double max_submit_seconds = 0;  // worst single submit() latency
  std::uint64_t inline_serves = 0;   // jobs done before the pool was released
  std::uint64_t invalid_serves = 0;  // wrong-size/incomplete answers
  std::uint64_t full_member_runs = 0;  // portfolio members executed
  std::uint64_t probes = 0;
  std::uint64_t near_hits = 0;
  std::uint64_t declines = 0;
  std::uint64_t parked = 0;
  bool counters_solvent = false;  // probes == near_hits + declines
};

NearTwinBurstResult run_neartwin_burst_case(const graph::Graph& base,
                                            int twins, double divergence) {
  NearTwinBurstResult r;
  r.twins = twins;
  r.divergence = divergence;

  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"gp"}};
  opts.similarity.enabled = true;
  engine::Engine eng(opts);

  part::Workspace ws;  // request shaping only; engine requests drop it
  part::PartitionRequest req = bench::multilevel_workload_request(base, ws);
  req.workspace = nullptr;

  auto shared = std::make_shared<const graph::Graph>(base);
  std::vector<std::shared_ptr<const graph::Graph>> arrivals{shared};
  support::Rng rng(9090);
  for (int t = 1; t < twins; ++t) {
    arrivals.push_back(std::make_shared<const graph::Graph>(
        bench::near_identical_arrival(base, divergence, rng)));
  }

  // Park every worker BEFORE the first submission: the leader's answer
  // cannot land until every twin has probed, so the cohort really is
  // concurrent, and any admission work beyond the sketch probe would have
  // nowhere to run but the submitting thread.
  auto& pool = support::ThreadPool::global();
  std::atomic<bool> release{false};
  std::atomic<unsigned> parked_workers{0};
  std::vector<std::future<void>> blockers;
  for (unsigned i = 0; i < pool.size(); ++i) {
    blockers.push_back(pool.submit([&release, &parked_workers] {
      parked_workers.fetch_add(1, std::memory_order_relaxed);
      while (!release.load(std::memory_order_relaxed))
        std::this_thread::yield();
    }));
  }
  while (parked_workers.load(std::memory_order_relaxed) < pool.size())
    std::this_thread::yield();

  std::vector<engine::Engine::JobId> ids;
  for (int t = 0; t < twins; ++t) {
    support::Timer submit_timer;
    ids.push_back(eng.submit(engine::Job{arrivals[static_cast<std::size_t>(t)],
                                         req}));
    r.max_submit_seconds =
        std::max(r.max_submit_seconds, submit_timer.seconds());
  }
  // Zero-inline-serve rail: with the pool parked nothing can have finished
  // yet — a done job here means warm-start (or worse, portfolio) work ran on
  // the submitting thread. (poll() consumes a finished outcome, so keep it.)
  std::vector<std::optional<engine::PortfolioOutcome>> early(
      static_cast<std::size_t>(twins));
  for (int t = 0; t < twins; ++t) {
    early[static_cast<std::size_t>(t)] =
        eng.poll(ids[static_cast<std::size_t>(t)]);
    if (early[static_cast<std::size_t>(t)].has_value()) ++r.inline_serves;
  }

  release.store(true, std::memory_order_relaxed);
  for (std::future<void>& f : blockers) f.get();

  for (int t = 0; t < twins; ++t) {
    const std::size_t i = static_cast<std::size_t>(t);
    const engine::PortfolioOutcome out =
        early[i].has_value() ? *early[i] : eng.wait(ids[i]);
    if (!out.status.is_ok() ||
        out.best.partition.size() != arrivals[i]->num_nodes() ||
        !out.best.partition.complete())
      ++r.invalid_serves;
  }

  const engine::EngineStats stats = eng.stats();
  r.full_member_runs = stats.members_run;
  r.probes = stats.similarity.probes;
  r.near_hits = stats.similarity.near_hits;
  r.declines = stats.similarity.declines;
  r.parked = stats.similarity.parked;
  r.counters_solvent = r.probes == r.near_hits + r.declines;
  return r;
}

/// The shared-memory scaling scenario (PR 10): one GP run on a large
/// streamed PN at increasing per-run thread counts. Reports wall clock,
/// speedup vs the exact serial path (threads=1), cut quality vs serial, and
/// whether the parallel path is bit-identical across thread counts (the
/// deterministic-mode contract: the answer is a function of the input, not
/// of the executing thread count). Peak RSS is sampled after the large
/// instance is built and partitioned — the streamed generator exists so
/// this number stays near the finished CSR size instead of a sorted
/// edge-list multiple of it.
struct ParallelScalePoint {
  unsigned threads = 0;
  double seconds = 0;
  double speedup_vs_serial = 0;
  long long cut = 0;
};

struct ParallelScaleResult {
  graph::NodeId nodes = 0;
  std::uint64_t edges = 0;
  unsigned hardware_threads = 0;
  double serial_seconds = 0;
  long long serial_cut = 0;
  std::vector<ParallelScalePoint> points;  // threads >= 2
  double worst_cut_ratio_vs_serial = 0;
  bool bit_identical_across_threads = false;
  long peak_rss_kb = 0;
};

ParallelScaleResult run_parallel_scale_case(
    graph::NodeId nodes, const std::vector<unsigned>& thread_counts) {
  ParallelScaleResult r;
  graph::ProcessNetworkParams params;
  params.num_nodes = nodes;
  params.layers = std::max<std::uint32_t>(8, nodes / 64);
  support::Rng rng(4242);
  const graph::Graph g = graph::streamed_process_network(params, rng);
  r.nodes = g.num_nodes();
  r.edges = g.num_edges();
  r.hardware_threads = std::thread::hardware_concurrency();

  part::Workspace ws;
  part::GpOptions options;
  options.max_cycles = 2;
  part::GpPartitioner gp(options);
  part::PartitionRequest request = bench::multilevel_workload_request(g, ws);

  request.threads = 1;  // the untouched serial path is the baseline
  (void)gp.run(g, request);  // warm the workspace once, untimed
  support::Timer serial_timer;
  const part::PartitionResult serial = gp.run(g, request);
  r.serial_seconds = serial_timer.seconds();
  r.serial_cut = static_cast<long long>(serial.metrics.total_cut);

  std::vector<part::PartId> reference;
  r.bit_identical_across_threads = true;
  for (const unsigned p : thread_counts) {
    request.threads = p;
    support::Timer timer;
    const part::PartitionResult res = gp.run(g, request);
    ParallelScalePoint point;
    point.threads = p;
    point.seconds = timer.seconds();
    point.speedup_vs_serial =
        point.seconds > 0 ? r.serial_seconds / point.seconds : 0;
    point.cut = static_cast<long long>(res.metrics.total_cut);
    r.points.push_back(point);
    if (reference.empty())
      reference = res.partition.assignments();
    else if (res.partition.assignments() != reference)
      r.bit_identical_across_threads = false;
    if (r.serial_cut > 0) {
      const double ratio = static_cast<double>(point.cut) /
                           static_cast<double>(r.serial_cut);
      r.worst_cut_ratio_vs_serial =
          std::max(r.worst_cut_ratio_vs_serial, ratio);
    }
  }
  r.peak_rss_kb = peak_rss_kb();
  return r;
}

CaseResult run_case(const char* name, part::Partitioner& p,
                    const graph::Graph& g, part::Workspace& ws, int reps) {
  // The shared bench harness defines the workload and the warm-then-time
  // measurement, so this report and bench_scaling's table cannot drift
  // apart.
  const bench::MultilevelCase c = bench::run_multilevel_case(p, g, ws, reps);
  CaseResult r;
  r.name = name;
  r.reps = reps;
  r.seconds_per_run = c.seconds / reps;
  r.runs_per_second = reps / c.seconds;
  r.ws_growths_per_run = static_cast<double>(c.ws_growths) / reps;
  r.cut = static_cast<long long>(c.warm.metrics.total_cut);
  r.phases = c.phases;
  return r;
}

void emit_json(std::FILE* out, const std::vector<CaseResult>& results,
               const IncrementalResult& inc, const SimilarityResult& sim,
               const RobustnessResult& rob, const NearTwinBurstResult& burst,
               const ParallelScaleResult& scale, graph::NodeId n,
               double span_ns) {
  // Baseline: pre-workspace implementation (commit bb85fa0), same workload,
  // same machine class as the numbers committed with PR 3.
  struct Baseline {
    const char* name;
    double seconds_per_run;
  };
  const Baseline baseline[] = {
      {"gp", 0.648}, {"metislike", 0.0148}, {"nlevel", 35.31}};

  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"multilevel_end_to_end\",\n");
  std::fprintf(out, "  \"workload\": {\"graph\": \"random_process_network\", "
                    "\"nodes\": %u, \"k\": 8, \"seed\": 99},\n",
               n);
  std::fprintf(out, "  \"peak_rss_kb\": %ld,\n", peak_rss_kb());
  std::fprintf(out, "  \"baseline_commit\": \"bb85fa0\",\n");
  // End-to-end workload speedup: one run of every multilevel partitioner,
  // before vs after (the PR-3 acceptance metric).
  double total_before = 0, total_after = 0;
  for (const CaseResult& r : results) {
    for (const Baseline& b : baseline) {
      if (r.name == b.name) {
        total_before += b.seconds_per_run;
        total_after += r.seconds_per_run;
      }
    }
  }
  if (total_after > 0) {
    std::fprintf(out, "  \"workload_speedup_vs_baseline\": %.2f,\n",
                 total_before / total_after);
  }
  std::fprintf(out, "  \"cases\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    double base_secs = 0;
    for (const Baseline& b : baseline) {
      if (r.name == b.name) base_secs = b.seconds_per_run;
    }
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"reps\": %d, "
                 "\"seconds_per_run\": %.4f, \"runs_per_second\": %.4f, "
                 "\"ws_growths_per_run\": %.2f, \"cut\": %lld, "
                 "\"baseline_seconds_per_run\": %.4f, "
                 "\"speedup_vs_baseline\": %.2f}%s\n",
                 r.name.c_str(), r.reps, r.seconds_per_run, r.runs_per_second,
                 r.ws_growths_per_run, r.cut, base_secs,
                 base_secs > 0 ? base_secs / r.seconds_per_run : 0.0,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  // Phase profile (PR 6): where each multilevel partitioner's time goes on
  // this workload, as shares of the accounted coarsen/initial/refine time
  // (shares sum to 1 by construction; `coverage_of_wall` is how much of the
  // timed wall clock the three phases explain). `tracing_off_span_ns` is
  // the cost of one tracing hook with tracing disabled at runtime — the
  // tier the inner loop pays permanently; the PPN_TRACE_DISABLED build
  // reports ~0 for it.
  std::fprintf(out, "  \"phases\": {\n");
  std::fprintf(out, "    \"tracing_off_span_ns\": %.1f,\n", span_ns);
  std::fprintf(out, "    \"cases\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    const part::PhaseProfile& p = r.phases;
    const double wall_us = r.seconds_per_run * r.reps * 1e6;
    std::fprintf(
        out,
        "      {\"name\": \"%s\", \"levels\": %u, "
        "\"coarsen_share\": %.4f, \"initial_share\": %.4f, "
        "\"refine_share\": %.4f, \"coverage_of_wall\": %.4f, "
        "\"coarsen_us_per_run\": %.1f, \"initial_us_per_run\": %.1f, "
        "\"refine_us_per_run\": %.1f}%s\n",
        r.name.c_str(), p.max_level, p.share(part::PhaseProfile::kCoarsen),
        p.share(part::PhaseProfile::kInitial),
        p.share(part::PhaseProfile::kRefine),
        wall_us > 0 ? static_cast<double>(p.total_us()) / wall_us : 0.0,
        static_cast<double>(p.entries[part::PhaseProfile::kCoarsen].time_us) /
            r.reps,
        static_cast<double>(p.entries[part::PhaseProfile::kInitial].time_us) /
            r.reps,
        static_cast<double>(p.entries[part::PhaseProfile::kRefine].time_us) /
            r.reps,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "    ]\n");
  std::fprintf(out, "  },\n");
  // Evolving-network scenario (PR 4): Engine::repartition vs a from-scratch
  // portfolio {gp} run on every edited graph.
  std::fprintf(
      out,
      "  \"incremental\": {\"deltas\": %d, \"edit_fraction\": %.3f, "
      "\"scratch_seconds_per_run\": %.4f, "
      "\"repartition_seconds_per_run\": %.4f, "
      "\"speedup_vs_scratch\": %.2f, \"mean_cut_ratio_vs_scratch\": %.4f, "
      "\"fallbacks\": %llu, \"ws_growths_after_warmup\": %llu},\n",
      inc.deltas, inc.edit_fraction, inc.scratch_seconds_per_run,
      inc.repartition_seconds_per_run, inc.speedup_vs_scratch,
      inc.mean_cut_ratio_vs_scratch,
      static_cast<unsigned long long>(inc.fallbacks),
      static_cast<unsigned long long>(inc.ws_growths_after_warmup));
  // Similarity-admission scenario (PR 5): near-identical plain-CSR arrivals
  // (no deltas) through the admission pipeline vs a scratch engine.
  std::fprintf(
      out,
      "  \"similarity\": {\"arrivals\": %d, \"divergence\": %.3f, "
      "\"scratch_seconds_per_run\": %.4f, \"admit_seconds_per_run\": %.4f, "
      "\"speedup_vs_scratch\": %.2f, \"mean_cut_ratio_vs_scratch\": %.4f, "
      "\"near_hits\": %llu, \"declines\": %llu, \"invalid_reuses\": %llu, "
      "\"stale_serves\": %llu},\n",
      sim.arrivals, sim.divergence, sim.scratch_seconds_per_run,
      sim.admit_seconds_per_run, sim.speedup_vs_scratch,
      sim.mean_cut_ratio_vs_scratch,
      static_cast<unsigned long long>(sim.near_hits),
      static_cast<unsigned long long>(sim.declines),
      static_cast<unsigned long long>(sim.invalid_reuses),
      static_cast<unsigned long long>(sim.stale_serves));
  // Overload scenario (PR 8): a parked-pool burst against bounded
  // admission — shed rate and degradation-rung distribution.
  std::fprintf(
      out,
      "  \"robustness\": {\"burst_jobs\": %d, \"queue_capacity\": %zu, "
      "\"completed\": %llu, \"rejected\": %llu, \"shed\": %llu, "
      "\"degraded\": %llu, \"shed_rate\": %.4f, "
      "\"rungs\": {\"full\": %llu, \"cheap_members\": %llu, "
      "\"gp_only\": %llu, \"projected\": %llu}, "
      "\"accounting_exact\": %s, \"projected_served\": %s},\n",
      rob.jobs, rob.queue_capacity,
      static_cast<unsigned long long>(rob.completed),
      static_cast<unsigned long long>(rob.rejected),
      static_cast<unsigned long long>(rob.shed),
      static_cast<unsigned long long>(rob.degraded), rob.shed_rate,
      static_cast<unsigned long long>(rob.rung_full),
      static_cast<unsigned long long>(rob.rung_cheap),
      static_cast<unsigned long long>(rob.rung_gp),
      static_cast<unsigned long long>(rob.rung_projected),
      rob.accounting_exact ? "true" : "false",
      rob.projected_served ? "true" : "false");
  // Near-twin burst scenario (PR 9): parked-pool cohort coalescing — one
  // full run plus N-1 deferred warm starts, with submit() never paying for
  // any of it.
  std::fprintf(
      out,
      "  \"neartwin_burst\": {\"twins\": %d, \"divergence\": %.3f, "
      "\"max_submit_seconds\": %.6f, \"inline_serves\": %llu, "
      "\"invalid_serves\": %llu, \"full_member_runs\": %llu, "
      "\"probes\": %llu, \"near_hits\": %llu, \"declines\": %llu, "
      "\"parked\": %llu, \"counters_solvent\": %s},\n",
      burst.twins, burst.divergence, burst.max_submit_seconds,
      static_cast<unsigned long long>(burst.inline_serves),
      static_cast<unsigned long long>(burst.invalid_serves),
      static_cast<unsigned long long>(burst.full_member_runs),
      static_cast<unsigned long long>(burst.probes),
      static_cast<unsigned long long>(burst.near_hits),
      static_cast<unsigned long long>(burst.declines),
      static_cast<unsigned long long>(burst.parked),
      burst.counters_solvent ? "true" : "false");
  // Shared-memory scaling scenario (PR 10): one GP run on a large streamed
  // PN per thread count. `bit_identical_across_threads` is the
  // deterministic-mode contract; speedups are honest wall-clock ratios on
  // THIS machine (`hardware_threads` says how many cores backed them).
  std::fprintf(
      out,
      "  \"parallel_scale\": {\"graph\": \"streamed_process_network\", "
      "\"nodes\": %u, \"edges\": %llu, \"hardware_threads\": %u, "
      "\"peak_rss_kb\": %ld, \"serial_seconds\": %.4f, \"serial_cut\": "
      "%lld,\n",
      scale.nodes, static_cast<unsigned long long>(scale.edges),
      scale.hardware_threads, scale.peak_rss_kb, scale.serial_seconds,
      scale.serial_cut);
  std::fprintf(out, "    \"points\": [\n");
  for (std::size_t i = 0; i < scale.points.size(); ++i) {
    const ParallelScalePoint& p = scale.points[i];
    std::fprintf(out,
                 "      {\"threads\": %u, \"seconds\": %.4f, "
                 "\"speedup_vs_serial\": %.2f, \"cut\": %lld}%s\n",
                 p.threads, p.seconds, p.speedup_vs_serial, p.cut,
                 i + 1 < scale.points.size() ? "," : "");
  }
  std::fprintf(out,
               "    ],\n    \"worst_cut_ratio_vs_serial\": %.4f, "
               "\"bit_identical_across_threads\": %s}\n",
               scale.worst_cut_ratio_vs_serial,
               scale.bit_identical_across_threads ? "true" : "false");
  std::fprintf(out, "}\n");
}

int self_check() {
  // Small instance: correctness of the plumbing plus the allocation-free
  // steady-state contract, fast enough for CI.
  const graph::Graph g = bench::multilevel_workload_graph(800);
  part::Workspace ws;
  part::GpOptions options;
  options.max_cycles = 2;
  part::GpPartitioner gp(options);
  const part::PartitionRequest request = bench::multilevel_workload_request(g, ws);
  const part::PartitionResult a = gp.run(g, request);
  const part::PartitionResult b = gp.run(g, request);
  if (a.partition.assignments() != b.partition.assignments()) {
    std::fprintf(stderr, "bench_json --check: nondeterministic results\n");
    return 1;
  }
  // Steady state: a third identical run must not grow any workspace buffer.
  const std::uint64_t growths_before = ws.stats().growths;
  gp.run(g, request);
  const std::uint64_t grown = ws.stats().growths - growths_before;
  if (grown != 0) {
    std::fprintf(stderr,
                 "bench_json --check: %llu workspace growths in steady "
                 "state (expected 0)\n",
                 static_cast<unsigned long long>(grown));
    return 1;
  }
  // Phase-profile gates (PR 6): a profiled run must charge every phase at
  // least once, shares must sum to 1, the accounted time must not exceed
  // the wall clock it claims to explain, and attaching a profile must not
  // change the answer (instrumentation observes, it never participates).
  {
    part::PhaseProfile prof;
    part::PartitionRequest preq = request;
    preq.phases = &prof;
    support::Timer phase_timer;
    const part::PartitionResult profiled = gp.run(g, preq);
    const double wall_us = phase_timer.seconds() * 1e6;
    if (profiled.partition.assignments() != a.partition.assignments()) {
      std::fprintf(stderr,
                   "bench_json --check: phase profiling changed the "
                   "partition\n");
      return 1;
    }
    double share_sum = 0;
    for (std::size_t i = 0; i < part::PhaseProfile::kNumPhases; ++i) {
      const auto phase = static_cast<part::PhaseProfile::Phase>(i);
      if (prof.entries[i].calls == 0) {
        std::fprintf(stderr,
                     "bench_json --check: phase '%s' never charged\n",
                     part::PhaseProfile::phase_name(phase));
        return 1;
      }
      share_sum += prof.share(phase);
    }
    if (prof.total_us() == 0 || share_sum < 0.999 || share_sum > 1.001) {
      std::fprintf(stderr,
                   "bench_json --check: phase shares sum to %.4f over %llu "
                   "us (expected ~1 over > 0 us)\n",
                   share_sum,
                   static_cast<unsigned long long>(prof.total_us()));
      return 1;
    }
    // Single-layer accounting: the three phases never overlap, so their sum
    // is bounded by the run's wall clock (small slack for clock-read skew).
    if (static_cast<double>(prof.total_us()) > wall_us * 1.02 + 1000.0) {
      std::fprintf(stderr,
                   "bench_json --check: accounted %llu us exceeds the %.0f "
                   "us wall clock (double-counted phase?)\n",
                   static_cast<unsigned long long>(prof.total_us()), wall_us);
      return 1;
    }
  }
  // Overhead gate: with tracing disabled at runtime a hook must cost
  // nanoseconds (one relaxed load; ~0 when compiled out). The generous
  // bound catches a hook accidentally doing real work when off, without
  // flaking on machine noise.
  const double span_ns = disabled_span_ns();
  if (span_ns > 250.0) {
    std::fprintf(stderr,
                 "bench_json --check: tracing-off hook costs %.1f ns "
                 "(bound 250)\n",
                 span_ns);
    return 1;
  }

  // Evolving-network smoke: small edits must stay on the incremental path,
  // chain deterministically, and keep the engine's repartition workspace
  // allocation-free once warm.
  auto run_chain = [&](std::vector<std::vector<part::PartId>>* out_assignments)
      -> int {
    engine::EngineOptions eopts;
    eopts.portfolio = engine::Portfolio{{"metislike"}};
    engine::Engine eng(eopts);
    part::PartitionRequest req = request;
    req.workspace = nullptr;
    auto shared = std::make_shared<const graph::Graph>(g);
    auto current = eng.run_one(shared, req);
    support::Rng rng(7);
    std::uint64_t warm_growths = 0;
    for (int d = 0; d < 7; ++d) {
      const graph::GraphDelta delta =
          bench::random_evolution_delta(*shared, 0.01, rng, /*node_ops=*/false);
      const engine::RepartitionOutcome rep =
          eng.repartition(engine::Job{shared, req}, delta, current.best);
      // A cache hit is fine (a delta can net to an already-answered
      // graph); an actual fallback on a ~1% edit is the regression.
      if (!rep.incremental && !rep.outcome.from_cache) {
        std::fprintf(stderr,
                     "bench_json --check: small delta fell back (%s)\n",
                     rep.fallback_reason.c_str());
        return 1;
      }
      if (!rep.outcome.best.partition.complete()) {
        std::fprintf(stderr,
                     "bench_json --check: incomplete incremental partition\n");
        return 1;
      }
      // Warm-up deltas: the FM scratch's high-water mark depends on the
      // boundary and candidate volume each edit exposes, so it converges
      // over the first edits (geometric buffer growth bounds the total).
      if (d <= 2) warm_growths = eng.stats().repartition_ws_growths;
      if (out_assignments != nullptr)
        out_assignments->push_back(rep.outcome.best.partition.assignments());
      shared = rep.graph;
      current.best = rep.outcome.best;
    }
    if (eng.stats().repartition_ws_growths != warm_growths) {
      std::fprintf(stderr,
                   "bench_json --check: repartition workspace grew in steady "
                   "state (%llu growths)\n",
                   static_cast<unsigned long long>(
                       eng.stats().repartition_ws_growths - warm_growths));
      return 1;
    }
    return 0;
  };
  std::vector<std::vector<part::PartId>> chain_a, chain_b;
  if (int rc = run_chain(&chain_a); rc != 0) return rc;
  if (int rc = run_chain(&chain_b); rc != 0) return rc;
  if (chain_a != chain_b) {
    std::fprintf(stderr,
                 "bench_json --check: nondeterministic incremental chain\n");
    return 1;
  }

  // Similarity-admission gates (PR 5): every ~1% plain-CSR arrival must be
  // served by a near-hit (the structural fact behind the tracked speedup),
  // with zero invalid reuses, zero stale-cache serves, scratch-comparable
  // cut quality, and a deterministic admission chain. All quality gates are
  // seed-fixed and timing-free, so they are CI-stable.
  std::vector<std::vector<part::PartId>> sim_a, sim_b;
  const SimilarityResult sim_check =
      run_similarity_case(g, /*arrivals=*/6, /*divergence=*/0.01, &sim_a);
  if (sim_check.near_hits !=
      static_cast<std::uint64_t>(sim_check.arrivals)) {
    std::fprintf(stderr,
                 "bench_json --check: similarity near-hit on %llu/%d "
                 "arrivals (declines: %llu)\n",
                 static_cast<unsigned long long>(sim_check.near_hits),
                 sim_check.arrivals,
                 static_cast<unsigned long long>(sim_check.declines));
    return 1;
  }
  if (sim_check.invalid_reuses != 0 || sim_check.stale_serves != 0) {
    std::fprintf(stderr,
                 "bench_json --check: similarity served %llu invalid "
                 "reuses, %llu stale-cache serves (expected 0/0)\n",
                 static_cast<unsigned long long>(sim_check.invalid_reuses),
                 static_cast<unsigned long long>(sim_check.stale_serves));
    return 1;
  }
  if (sim_check.mean_cut_ratio_vs_scratch > 1.05) {
    std::fprintf(stderr,
                 "bench_json --check: similarity cut ratio %.4f vs scratch "
                 "(expected <= 1.05)\n",
                 sim_check.mean_cut_ratio_vs_scratch);
    return 1;
  }
  (void)run_similarity_case(g, /*arrivals=*/6, /*divergence=*/0.01, &sim_b);
  if (sim_a != sim_b) {
    std::fprintf(stderr,
                 "bench_json --check: nondeterministic similarity chain\n");
    return 1;
  }

  // Overload gates (PR 8): every arrival of the parked-pool burst must land
  // in exactly one accounting bucket, refusals must carry a real
  // StatusCode, the expired-budget arrival must be answered inline, and a
  // second identical burst must replay the same (path, rung) schedule —
  // the degradation ladder is deterministic, not load-lucky. All gates are
  // structural, not timing-based.
  std::vector<std::pair<int, int>> burst_a, burst_b;
  const RobustnessResult rob = run_robustness_case(g, /*jobs=*/12, &burst_a);
  if (!rob.accounting_exact) {
    std::fprintf(stderr,
                 "bench_json --check: overload accounting leaked a job "
                 "(completed %llu + rejected %llu + shed %llu != %d)\n",
                 static_cast<unsigned long long>(rob.completed),
                 static_cast<unsigned long long>(rob.rejected),
                 static_cast<unsigned long long>(rob.shed), rob.jobs + 1);
    return 1;
  }
  if (rob.untyped_errors != 0) {
    std::fprintf(stderr,
                 "bench_json --check: %llu overload refusal(s) without a "
                 "typed StatusCode\n",
                 static_cast<unsigned long long>(rob.untyped_errors));
    return 1;
  }
  if (!rob.projected_served) {
    std::fprintf(stderr,
                 "bench_json --check: expired-budget arrival was not served "
                 "a projected answer\n");
    return 1;
  }
  if (rob.rejected + rob.shed == 0 || rob.degraded == 0) {
    std::fprintf(stderr,
                 "bench_json --check: the overload burst neither shed nor "
                 "degraded — the gate never engaged\n");
    return 1;
  }
  (void)run_robustness_case(g, /*jobs=*/12, &burst_b);
  if (burst_a != burst_b) {
    std::fprintf(stderr,
                 "bench_json --check: nondeterministic degradation-ladder "
                 "schedule across identical bursts\n");
    return 1;
  }

  // Near-twin burst gates (PR 9): the submitting thread pays only the
  // sketch probe. With every pool worker parked, no submission may come
  // back finished (inline_serves == 0 is the structural proof that zero
  // warm-start time ran inline), and the worst submit() latency stays far
  // below a single portfolio run. After release: exactly one full run
  // (portfolio {gp} => one member execution) answers the whole cohort, the
  // other N-1 arrivals warm-start, and the probe ledger balances.
  const NearTwinBurstResult nb =
      run_neartwin_burst_case(g, /*twins=*/8, /*divergence=*/0.01);
  if (nb.inline_serves != 0) {
    std::fprintf(stderr,
                 "bench_json --check: %llu burst submission(s) finished with "
                 "the pool parked — warm-start work ran on the submitter\n",
                 static_cast<unsigned long long>(nb.inline_serves));
    return 1;
  }
  if (nb.max_submit_seconds > 0.5) {
    std::fprintf(stderr,
                 "bench_json --check: worst burst submit() took %.3f s "
                 "(bound 0.5 — admission must not block on warm starts)\n",
                 nb.max_submit_seconds);
    return 1;
  }
  if (nb.invalid_serves != 0) {
    std::fprintf(stderr,
                 "bench_json --check: %llu invalid burst serve(s)\n",
                 static_cast<unsigned long long>(nb.invalid_serves));
    return 1;
  }
  if (nb.full_member_runs != 1 ||
      nb.near_hits != static_cast<std::uint64_t>(nb.twins - 1) ||
      nb.declines != 1 ||
      nb.parked != static_cast<std::uint64_t>(nb.twins - 1)) {
    std::fprintf(stderr,
                 "bench_json --check: burst of %d near-twins cost %llu full "
                 "member run(s), %llu near-hits, %llu declines, %llu parked "
                 "(expected 1 / %d / 1 / %d)\n",
                 nb.twins,
                 static_cast<unsigned long long>(nb.full_member_runs),
                 static_cast<unsigned long long>(nb.near_hits),
                 static_cast<unsigned long long>(nb.declines),
                 static_cast<unsigned long long>(nb.parked), nb.twins - 1,
                 nb.twins - 1);
    return 1;
  }
  if (!nb.counters_solvent) {
    std::fprintf(stderr,
                 "bench_json --check: burst probe ledger insolvent "
                 "(probes %llu != near_hits %llu + declines %llu)\n",
                 static_cast<unsigned long long>(nb.probes),
                 static_cast<unsigned long long>(nb.near_hits),
                 static_cast<unsigned long long>(nb.declines));
    return 1;
  }

  // Parallel-scale gates (PR 10), on a mid-size streamed PN so CI stays
  // fast. Structural gates run everywhere: the streamed graph is valid, the
  // parallel path is bit-identical across thread counts AND across repeat
  // runs (deterministic mode), and parallel cut quality stays within 5% of
  // the exact serial path. The >= 3x speedup-at-8-threads gate is hardware-
  // aware: wall-clock ratios are only meaningful when 8 cores exist, so the
  // gate arms at hardware_concurrency >= 8 and is reported as skipped
  // otherwise (the committed BENCH_multilevel.json still records the
  // honest numbers for the machine that produced it).
  const ParallelScaleResult ps =
      run_parallel_scale_case(/*nodes=*/20'000, {2u, 8u});
  {
    graph::ProcessNetworkParams sp;
    sp.num_nodes = 20'000;
    sp.layers = std::max<std::uint32_t>(8, sp.num_nodes / 64);
    support::Rng srng(4242);
    const graph::Graph sg = graph::streamed_process_network(sp, srng);
    if (const std::string err = sg.validate(); !err.empty()) {
      std::fprintf(stderr,
                   "bench_json --check: streamed PN invalid: %s\n",
                   err.c_str());
      return 1;
    }
  }
  if (!ps.bit_identical_across_threads) {
    std::fprintf(stderr,
                 "bench_json --check: parallel partitions differ across "
                 "thread counts (deterministic mode broken)\n");
    return 1;
  }
  const ParallelScaleResult ps_repeat =
      run_parallel_scale_case(/*nodes=*/20'000, {8u});
  if (ps.points.empty() || ps_repeat.points.empty() ||
      ps.points.back().cut != ps_repeat.points.back().cut ||
      ps.serial_cut != ps_repeat.serial_cut) {
    std::fprintf(stderr,
                 "bench_json --check: parallel run not reproducible across "
                 "repeats\n");
    return 1;
  }
  if (ps.worst_cut_ratio_vs_serial > 1.05) {
    std::fprintf(stderr,
                 "bench_json --check: parallel cut degraded %.4fx vs serial "
                 "(bound 1.05)\n",
                 ps.worst_cut_ratio_vs_serial);
    return 1;
  }
  const bool speedup_gate_armed = ps.hardware_threads >= 8;
  if (speedup_gate_armed) {
    double speedup_at_8 = 0;
    for (const ParallelScalePoint& p : ps.points)
      if (p.threads == 8) speedup_at_8 = p.speedup_vs_serial;
    if (speedup_at_8 < 3.0) {
      std::fprintf(stderr,
                   "bench_json --check: %.2fx speedup at 8 threads "
                   "(bound 3.0 on %u-core hardware)\n",
                   speedup_at_8, ps.hardware_threads);
      return 1;
    }
  }

  std::printf("bench_json --check: ok (deterministic, allocation-free "
              "steady state; incremental chain deterministic and "
              "fallback-free; similarity admission all-hit, valid, "
              "stale-free, cut ratio %.3f; phase shares consistent, "
              "tracing-off hook %.1f ns; overload burst exact and "
              "replayable, shed rate %.2f; near-twin burst non-blocking, "
              "%d twins -> 1 full run + %llu warm starts; parallel scale "
              "thread-count-invariant, cut ratio %.3f, speedup gate %s)\n",
              sim_check.mean_cut_ratio_vs_scratch, span_ns, rob.shed_rate,
              nb.twins, static_cast<unsigned long long>(nb.near_hits),
              ps.worst_cut_ratio_vs_serial,
              speedup_gate_armed ? "armed" : "skipped (< 8 cores)");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool to_stdout = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) return self_check();
    if (std::strcmp(argv[i], "--stdout") == 0) to_stdout = true;
  }

  const graph::NodeId n = 10'000;
  const graph::Graph g = bench::multilevel_workload_graph(n);
  part::Workspace ws;

  std::vector<CaseResult> results;
  part::GpOptions gp_options;
  gp_options.max_cycles = 4;
  part::GpPartitioner gp(gp_options);
  part::MetisLikePartitioner metis;
  part::NLevelPartitioner nlevel;
  results.push_back(run_case("gp", gp, g, ws, 3));
  results.push_back(run_case("metislike", metis, g, ws, 20));
  results.push_back(run_case("nlevel", nlevel, g, ws, 1));

  const IncrementalResult inc =
      run_incremental_case(g, /*deltas=*/6, /*edit_fraction=*/0.01);
  const SimilarityResult sim =
      run_similarity_case(g, /*arrivals=*/6, /*divergence=*/0.01);
  // The overload burst runs on a smaller instance: the scenario measures
  // admission behaviour, not partitioner throughput.
  const RobustnessResult rob =
      run_robustness_case(bench::multilevel_workload_graph(800), /*jobs=*/12);
  // The near-twin burst also runs on the small instance: it measures the
  // submit path and cohort coalescing, not partitioner throughput.
  const NearTwinBurstResult burst = run_neartwin_burst_case(
      bench::multilevel_workload_graph(800), /*twins=*/8, /*divergence=*/0.01);
  // The shared-memory scaling scenario runs on a 1M-node streamed PN — the
  // instance class the streamed generator and the parallel kernels exist
  // for. One warm + one timed serial run, then one run per thread count.
  const ParallelScaleResult scale =
      run_parallel_scale_case(/*nodes=*/1'000'000, {2u, 4u, 8u});

  const double span_ns = disabled_span_ns();
  emit_json(stdout, results, inc, sim, rob, burst, scale, n, span_ns);
  if (!to_stdout) {
    std::FILE* f = std::fopen("BENCH_multilevel.json", "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot write BENCH_multilevel.json\n");
      return 1;
    }
    emit_json(f, results, inc, sim, rob, burst, scale, n, span_ns);
    std::fclose(f);
    std::fprintf(stderr, "bench_json: wrote BENCH_multilevel.json\n");
  }
  return 0;
}
