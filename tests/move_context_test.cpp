#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "partition/initial.hpp"
#include "partition/move_context.hpp"

namespace ppnpart::part {
namespace {

// The core property: the incremental state equals full recomputation after
// any sequence of moves.
class MoveContextProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MoveContextProperty, IncrementalMatchesRecompute) {
  support::Rng rng(GetParam());
  const Graph g = graph::erdos_renyi_gnm(50, 200, rng, {1, 20}, {1, 15});
  const PartId k = 5;
  Partition p = random_balanced_partition(g, k, rng);
  Constraints c;
  c.rmax = g.total_node_weight() / k + 20;
  c.bmax = 40;
  MoveContext ctx(g, p, c);
  for (int step = 0; step < 200; ++step) {
    const NodeId u = static_cast<NodeId>(rng.uniform_index(g.num_nodes()));
    const PartId q = static_cast<PartId>(rng.uniform_index(k));
    // Check the prediction before applying.
    const Goodness predicted = ctx.goodness_after(u, q);
    ctx.apply(u, q);
    const Goodness actual = ctx.goodness();
    EXPECT_EQ(predicted.resource_excess, actual.resource_excess);
    EXPECT_EQ(predicted.bandwidth_excess, actual.bandwidth_excess);
    EXPECT_EQ(predicted.cut, actual.cut);
    if (step % 20 == 0) {
      // Full recompute cross-check.
      const PartitionMetrics m = compute_metrics(g, p);
      const Violation v = compute_violation(m, c);
      EXPECT_EQ(ctx.cut(), m.total_cut);
      EXPECT_EQ(ctx.goodness().resource_excess, v.resource_excess);
      EXPECT_EQ(ctx.goodness().bandwidth_excess, v.bandwidth_excess);
      for (PartId a = 0; a < k; ++a) {
        EXPECT_EQ(ctx.load(a), m.loads[static_cast<std::size_t>(a)]);
        for (PartId b2 = 0; b2 < k; ++b2) {
          EXPECT_EQ(ctx.pairwise().at(a, b2), m.pairwise.at(a, b2));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MoveContextProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/// Reference boundary enumeration: full scan against compute_metrics-style
/// adjacency inspection, ascending by id.
std::vector<NodeId> reference_boundary(const Graph& g, const Partition& p) {
  std::vector<NodeId> out;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (p[v] != p[u]) {
        out.push_back(u);
        break;
      }
    }
  }
  return out;
}

// The incremental boundary set must equal the full rescan after any move
// sequence, stay ascending, and agree with is_boundary().
class BoundaryProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundaryProperty, IncrementalBoundaryMatchesRescan) {
  support::Rng rng(GetParam());
  const Graph g = graph::erdos_renyi_gnm(60, 180, rng, {1, 10}, {1, 9});
  const PartId k = 4;
  Partition p = random_balanced_partition(g, k, rng);
  Constraints c;
  c.rmax = g.total_node_weight() / k + 25;
  MoveContext ctx(g, p, c);
  std::vector<NodeId> enumerated;
  for (int step = 0; step < 300; ++step) {
    const NodeId u = static_cast<NodeId>(rng.uniform_index(g.num_nodes()));
    const PartId q = static_cast<PartId>(rng.uniform_index(k));
    ctx.apply(u, q);
    // Enumerate at varying cadence so both the compact-and-sort path and
    // the dense-rescan path get exercised with stale entries present.
    if (step % 7 == 0) {
      ctx.boundary_nodes(enumerated);
      EXPECT_EQ(enumerated, reference_boundary(g, p)) << "step " << step;
      EXPECT_TRUE(std::is_sorted(enumerated.begin(), enumerated.end()));
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        const bool listed = std::binary_search(enumerated.begin(),
                                               enumerated.end(), v);
        EXPECT_EQ(listed, ctx.is_boundary(v));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundaryProperty,
                         ::testing::Values(11, 12, 13, 14));

TEST(MoveContext, ResetReusesAcrossGraphs) {
  // One context armed on graphs of different sizes and k must behave like a
  // freshly constructed one each time (the workspace reuse pattern).
  support::Rng rng(21);
  MoveContext ctx;
  for (int round = 0; round < 4; ++round) {
    const NodeId n = round % 2 == 0 ? 80 : 30;
    const PartId k = round % 2 == 0 ? 6 : 3;
    support::Rng ground = rng.derive(round);
    const Graph g = graph::erdos_renyi_gnm(n, n * 3, ground, {1, 8}, {1, 6});
    Partition p = random_balanced_partition(g, k, ground);
    Partition p_copy = p;
    Constraints c;
    c.rmax = g.total_node_weight() / k + 10;
    c.bmax = 30;
    ctx.reset(g, p, c);
    MoveContext fresh(g, p_copy, c);
    EXPECT_EQ(ctx.goodness(), fresh.goodness());
    EXPECT_EQ(ctx.boundary_nodes(), fresh.boundary_nodes());
    for (int step = 0; step < 50; ++step) {
      const NodeId u = static_cast<NodeId>(ground.uniform_index(n));
      const PartId q = static_cast<PartId>(ground.uniform_index(k));
      ctx.apply(u, q);
      fresh.apply(u, q);
      EXPECT_EQ(ctx.goodness(), fresh.goodness());
    }
    EXPECT_EQ(ctx.boundary_nodes(), fresh.boundary_nodes());
  }
}

TEST(MoveContext, ConnMatchesAdjacency) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1, 3);
  b.add_edge(0, 2, 5);
  b.add_edge(0, 3, 7);
  const Graph g = b.build();
  Partition p(4, 2);
  p.set(0, 0);
  p.set(1, 0);
  p.set(2, 1);
  p.set(3, 1);
  MoveContext ctx(g, p, Constraints{});
  EXPECT_EQ(ctx.conn(0, 0), 3);
  EXPECT_EQ(ctx.conn(0, 1), 12);
  EXPECT_EQ(ctx.conn(1, 0), 3);
  EXPECT_EQ(ctx.conn(1, 1), 0);
  EXPECT_EQ(ctx.cut(), 12);
}

TEST(MoveContext, MoveToSamePartIsNoop) {
  graph::GraphBuilder b(2);
  b.add_edge(0, 1, 1);
  const Graph g = b.build();
  Partition p(2, 2);
  p.set(0, 0);
  p.set(1, 1);
  MoveContext ctx(g, p, Constraints{});
  const Goodness before = ctx.goodness();
  ctx.apply(0, 0);
  EXPECT_TRUE(before == ctx.goodness());
  EXPECT_TRUE(before == ctx.goodness_after(0, 0));
}

TEST(MoveContext, BoundaryDetection) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(2, 3, 1);
  const Graph g = b.build();
  Partition p(4, 2);
  p.set(0, 0);
  p.set(1, 0);
  p.set(2, 1);
  p.set(3, 1);
  MoveContext ctx(g, p, Constraints{});
  EXPECT_FALSE(ctx.is_boundary(0));
  EXPECT_TRUE(ctx.boundary_nodes().empty());
  ctx.apply(1, 1);
  EXPECT_TRUE(ctx.is_boundary(0));
  EXPECT_TRUE(ctx.is_boundary(1));
}

TEST(MoveContext, BestMoveRespectsEmptying) {
  graph::GraphBuilder b(3);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 2, 1);
  const Graph g = b.build();
  Partition p(3, 2);
  p.set(0, 0);
  p.set(1, 1);
  p.set(2, 1);
  MoveContext ctx(g, p, Constraints{});
  // Node 0 alone in part 0: no move allowed unless emptying permitted.
  EXPECT_FALSE(ctx.best_move(0).has_value());
  EXPECT_TRUE(ctx.best_move(0, /*allow_emptying=*/true).has_value());
  // Node 1 should prefer joining node 0 (cut 6 -> 1).
  const auto cand = ctx.best_move(1);
  ASSERT_TRUE(cand.has_value());
  EXPECT_EQ(cand->target, 0);
  EXPECT_EQ(cand->after.cut, 1);
}

TEST(MoveContext, PartSizeTracking) {
  support::Rng rng(9);
  const Graph g = graph::erdos_renyi_gnm(30, 60, rng);
  Partition p = random_balanced_partition(g, 3, rng);
  MoveContext ctx(g, p, Constraints{});
  std::uint32_t total = 0;
  for (PartId q = 0; q < 3; ++q) total += ctx.part_size(q);
  EXPECT_EQ(total, 30u);
  const NodeId u = 0;
  const PartId from = ctx.part_of(u);
  const PartId to = (from + 1) % 3;
  const auto before_from = ctx.part_size(from);
  const auto before_to = ctx.part_size(to);
  ctx.apply(u, to);
  EXPECT_EQ(ctx.part_size(from), before_from - 1);
  EXPECT_EQ(ctx.part_size(to), before_to + 1);
}

TEST(MoveContext, RejectsIncompletePartition) {
  graph::GraphBuilder b(2);
  b.add_edge(0, 1, 1);
  const Graph g = b.build();
  Partition p(2, 2);
  p.set(0, 0);  // node 1 unassigned
  EXPECT_THROW(MoveContext(g, p, Constraints{}), std::invalid_argument);
}

}  // namespace
}  // namespace ppnpart::part
