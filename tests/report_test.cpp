// Tests for the partition analysis report: summaries must agree with the
// metrics they aggregate, pair ordering must be heaviest-first, and the
// rendered table must carry the feasibility verdict.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/gp.hpp"
#include "partition/report.hpp"
#include "ppn/paper_instances.hpp"

namespace ppnpart::part {
namespace {

Report paper_report(int index, std::uint64_t seed = 3) {
  const ppn::PaperInstance inst = ppn::paper_instance(index);
  PartitionRequest r;
  r.k = inst.k;
  r.seed = seed;
  r.constraints = inst.constraints;
  const PartitionResult result = GpPartitioner().run(inst.graph, r);
  return analyze(inst.graph, result.partition, inst.constraints);
}

TEST(Report, PartSummariesAgreeWithMetrics) {
  const Report report = paper_report(1);
  ASSERT_EQ(report.parts.size(), 4u);
  Weight total_load = 0;
  std::uint32_t total_nodes = 0;
  for (const PartSummary& s : report.parts) {
    EXPECT_EQ(s.load, report.metrics.loads[static_cast<std::size_t>(s.part)]);
    total_load += s.load;
    total_nodes += s.nodes;
  }
  EXPECT_EQ(total_nodes, 12u);
  const ppn::PaperInstance inst = ppn::paper_instance(1);
  EXPECT_EQ(total_load, inst.graph.total_node_weight());
}

TEST(Report, HotPairsSortedHeaviestFirst) {
  const Report report = paper_report(3);
  for (std::size_t i = 1; i < report.hot_pairs.size(); ++i) {
    EXPECT_GE(report.hot_pairs[i - 1].cut, report.hot_pairs[i].cut);
  }
  // Sum of pair cuts equals the global cut.
  Weight sum = 0;
  for (const PairSummary& pair : report.hot_pairs) sum += pair.cut;
  EXPECT_EQ(sum, report.metrics.total_cut);
}

TEST(Report, OccupancyAgainstBudgets) {
  const Report report = paper_report(3);  // Rmax 78, tight
  for (const PartSummary& s : report.parts) {
    EXPECT_EQ(s.budget, 78);
    EXPECT_NEAR(s.occupancy, static_cast<double>(s.load) / 78.0, 1e-12);
    EXPECT_LE(s.occupancy, 1.0);  // GP met the constraint
  }
}

TEST(Report, RenderCarriesVerdict) {
  const Report feasible = paper_report(2);
  EXPECT_NE(feasible.to_string().find("FEASIBLE"), std::string::npos);

  // A deliberately bad partition must render VIOLATED with (!) marks.
  const ppn::PaperInstance inst = ppn::paper_instance(3);
  Partition bad(inst.graph.num_nodes(), 4);
  for (graph::NodeId u = 0; u < inst.graph.num_nodes(); ++u)
    bad.set(u, u < 11 ? 0 : 1);  // part 0 overloaded, parts 2/3 empty
  const Report report = analyze(inst.graph, bad, inst.constraints);
  EXPECT_FALSE(report.feasible);
  const std::string text = report.to_string();
  EXPECT_NE(text.find("VIOLATED"), std::string::npos);
  EXPECT_NE(text.find("(!)"), std::string::npos);
}

TEST(Report, UnlimitedBudgetsRenderDashes) {
  support::Rng rng(5);
  const Graph g = graph::erdos_renyi_gnm(20, 50, rng, {1, 4}, {1, 4});
  Partition p(20, 2);
  for (graph::NodeId u = 0; u < 20; ++u) p.set(u, u % 2);
  const Report report = analyze(g, p, Constraints{});
  EXPECT_TRUE(report.feasible);
  for (const PartSummary& s : report.parts) {
    EXPECT_EQ(s.budget, Constraints::kUnlimited);
    EXPECT_EQ(s.occupancy, 0.0);
  }
  EXPECT_NE(report.to_string().find("inf"), std::string::npos);
}

TEST(Report, BoundaryCountsMatchDefinition) {
  const ppn::PaperInstance inst = ppn::paper_instance(1);
  Partition p(inst.graph.num_nodes(), 2);
  for (graph::NodeId u = 0; u < inst.graph.num_nodes(); ++u)
    p.set(u, u < 6 ? 0 : 1);
  const Report report = analyze(inst.graph, p, inst.constraints);
  std::uint32_t expected = 0;
  for (graph::NodeId u = 0; u < inst.graph.num_nodes(); ++u) {
    for (graph::NodeId v : inst.graph.neighbors(u)) {
      if (p[v] != p[u]) {
        ++expected;
        break;
      }
    }
  }
  EXPECT_EQ(report.boundary_nodes, expected);
}

TEST(Report, PerPartBudgetsFlowThrough) {
  support::Rng rng(7);
  const Graph g = graph::erdos_renyi_gnm(15, 40, rng, {1, 5}, {1, 5});
  Partition p(15, 3);
  for (graph::NodeId u = 0; u < 15; ++u) p.set(u, u % 3);
  Constraints c;
  c.rmax_per_part = {10, 20, 30};
  const Report report = analyze(g, p, c);
  EXPECT_EQ(report.parts[0].budget, 10);
  EXPECT_EQ(report.parts[1].budget, 20);
  EXPECT_EQ(report.parts[2].budget, 30);
}

}  // namespace
}  // namespace ppnpart::part
