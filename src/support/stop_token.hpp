#pragma once
// Cooperative cancellation with an optional wall-clock deadline
// (header-only).
//
// A StopToken is shared between a controller (the portfolio engine, a
// driver with a time budget) and one or more workers (partitioner run
// loops). Workers poll `stop_requested()` at natural checkpoints — once per
// V-cycle, temperature step, generation, tabu iteration — and return their
// best-so-far solution when it fires. Cancellation is therefore always
// graceful: a stopped partitioner still yields a complete, valid partition.
//
// All configuration (deadline, parent link) is stored atomically, so
// arming a token that is already visible to workers cannot race their
// `stop_requested()` polls — a controller may re-arm late without tearing.
// The one remaining precondition is lifetime: a linked parent must outlive
// this token.

#include <atomic>
#include <chrono>
#include <limits>

#include "support/contracts.hpp"

namespace ppnpart::support {

class StopToken {
 public:
  using Clock = std::chrono::steady_clock;

  StopToken() = default;
  StopToken(const StopToken&) = delete;
  StopToken& operator=(const StopToken&) = delete;

  /// Asks workers to stop at their next checkpoint.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  /// Arms a deadline `seconds` from now; `stop_requested()` returns true
  /// once it passes. Safe to call while workers are polling: the tick count
  /// is published before the armed flag, so a reader either sees no
  /// deadline or a fully written one — never a torn value.
  void set_deadline_after(double seconds) {
    // Arming contract: a deadline is a wall-clock budget. Negative or NaN
    // budgets are caller bugs (an already-expired deadline is request_stop).
    PPN_ASSERT(seconds >= 0);
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds));
    deadline_ticks_.store(deadline.time_since_epoch().count(),
                          std::memory_order_relaxed);
    has_deadline_.store(true, std::memory_order_release);
  }

  /// Links a parent token (non-owning; must outlive this token): a stop
  /// requested on the parent stops this token too. Lets a controller (the
  /// engine) layer its per-job budget on top of a caller's own cancel
  /// signal. Atomic like the deadline, so linking late cannot race polls.
  void set_parent(const StopToken* parent) {
    // A self-parent would make stop_requested() recurse forever.
    PPN_ASSERT(parent != this);
    parent_.store(parent, std::memory_order_release);
  }

  bool has_deadline() const {
    return has_deadline_.load(std::memory_order_acquire);
  }

  /// True once the armed deadline has passed (independent of
  /// `request_stop()`, which may fire for other reasons).
  bool deadline_expired() const {
    if (!has_deadline_.load(std::memory_order_acquire)) return false;
    return Clock::now() >= deadline();
  }

  /// Seconds until the armed deadline (negative once it passed); +infinity
  /// when none is armed. Deadline-aware admission uses this to shed jobs
  /// whose budget cannot survive the queue wait ahead of them.
  double seconds_until_deadline() const {
    if (!has_deadline_.load(std::memory_order_acquire))
      return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(deadline() - Clock::now()).count();
  }

  /// True once `request_stop()` was called (here or on a linked parent) or
  /// the deadline passed. Deadline and parent checks latch into the flag so
  /// later calls skip them.
  bool stop_requested() const {
    if (stop_.load(std::memory_order_relaxed)) return true;
    const StopToken* parent = parent_.load(std::memory_order_acquire);
    if (deadline_expired() || (parent != nullptr && parent->stop_requested())) {
      stop_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

 private:
  Clock::time_point deadline() const {
    return Clock::time_point(
        Clock::duration(deadline_ticks_.load(std::memory_order_relaxed)));
  }

  mutable std::atomic<bool> stop_{false};
  std::atomic<bool> has_deadline_{false};
  std::atomic<Clock::rep> deadline_ticks_{0};
  std::atomic<const StopToken*> parent_{nullptr};
};

}  // namespace ppnpart::support
