#pragma once
// Typed Status / Result<T> error handling (header-only).
//
// The library reports recoverable errors (bad input files, infeasible
// configurations, malformed graphs, shed jobs) through Result<T> instead of
// exceptions, per the project convention; exceptions remain for programming
// errors. Every error carries a StatusCode so callers can branch on *why*
// something failed — a CLI retries an kUnavailable file but not a
// kInvalidArgument spec; a service client backs off on kResourceExhausted
// but fails fast on kInternal.
//
// New call sites must name a code: `Status::error(StatusCode::k..., msg)`.
// The single-argument overload exists for legacy callers only and maps to
// kInternal; tools/check_invariants.py (rule `status-error-code`) rejects
// code-less Status::error calls in src/.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace ppnpart::support {

/// Why an operation failed. Modeled on the canonical RPC code set, trimmed
/// to what this library can actually signal:
///   kInvalidArgument   caller handed something malformed (bad spec, bad
///                      file contents, mismatched sizes)
///   kDeadlineExceeded  a wall-clock budget expired before the work could
///                      run (deadline-aware admission shed)
///   kCancelled         a caller stop token fired
///   kResourceExhausted the engine refused load (bounded admission queue
///                      full; the typed rejection of overload protection)
///   kUnavailable       a dependency is missing or unreachable (file cannot
///                      be opened/written); retrying may succeed
///   kInternal          an invariant broke or the error predates typing
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kDeadlineExceeded,
  kCancelled,
  kResourceExhausted,
  kUnavailable,
  kInternal,
};

/// Stable uppercase label ("OK", "INVALID_ARGUMENT", ...), suitable for
/// logs and CLI output.
inline const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "?";
}

class Status {
 public:
  Status() = default;  // OK
  static Status ok() { return Status(); }

  static Status error(StatusCode code, std::string message) {
    Status s;
    s.code_ = code == StatusCode::kOk ? StatusCode::kInternal : code;
    s.message_ = std::move(message);
    return s;
  }
  /// Legacy untyped error — maps to kInternal. New src/ call sites must use
  /// the typed overload (lint rule `status-error-code`).
  static Status error(std::string message) {
    return error(StatusCode::kInternal, std::move(message));
  }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  explicit operator bool() const { return is_ok(); }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK", or "CODE: message" ("RESOURCE_EXHAUSTED: admission queue full").
  std::string to_string() const {
    if (is_ok()) return "OK";
    std::string out = support::to_string(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  static Result error(StatusCode code, std::string message) {
    return Result(Status::error(code, std::move(message)));
  }
  /// Legacy untyped error — maps to kInternal, like Status::error(message).
  static Result error(std::string message) {
    return Result(Status::error(StatusCode::kInternal, std::move(message)));
  }

  bool is_ok() const { return status_.is_ok(); }
  explicit operator bool() const { return is_ok(); }
  const Status& status() const { return status_; }
  StatusCode code() const { return status_.code(); }
  const std::string& message() const { return status_.message(); }

  /// Precondition: is_ok().
  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Lvalue overload: COPIES the held value (the Result keeps it).
  T value_or(T fallback) const& {
    return is_ok() ? *value_ : std::move(fallback);
  }
  /// Rvalue overload: MOVES the held value out — `std::move(r).value_or(d)`
  /// never pays a copy of T.
  T value_or(T fallback) && {
    return is_ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace ppnpart::support
