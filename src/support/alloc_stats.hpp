#pragma once
// Counting-allocator hook for workspace-owned scratch buffers.
//
// The multilevel hot path (contraction, FM passes, MoveContext resets) is
// meant to be allocation-free in steady state: every scratch buffer lives in
// a part::Workspace and is only ever *grown*, never freed, between runs.
// AllocStats counts exactly those growth events, so benches can assert the
// "near-zero allocations per level once warm" property instead of guessing
// at allocator traffic.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ppnpart::support {

struct AllocStats {
  /// Number of capacity growths (each one is at least one real allocation).
  std::uint64_t growths = 0;
  /// Total bytes requested by those growths.
  std::uint64_t grown_bytes = 0;

  void note(std::size_t bytes) {
    ++growths;
    grown_bytes += bytes;
  }

  void reset() { *this = AllocStats{}; }
};

/// reserve() that records a growth event when (and only when) the vector
/// actually has to reallocate. `stats` may be null. Growth is geometric
/// (at least 1.5x the old capacity): demand that creeps up by a few
/// elements per run — e.g. a slowly growing boundary across incremental
/// repartitions — costs O(log n) growth events total instead of ratcheting
/// one reallocation per call, while the overshoot stays at most 50% of the
/// high-water mark. Capacity never affects results.
template <typename T>
inline void reserve_tracked(std::vector<T>& v, std::size_t n,
                            AllocStats* stats) {
  if (n > v.capacity()) {
    if (stats != nullptr) stats->note(n * sizeof(T));
    v.reserve(std::max(n, v.capacity() + v.capacity() / 2));
  }
}

/// assign() through a tracked reserve: capacity is reused across calls, so
/// a warm buffer costs a fill and no allocation.
template <typename T, typename U>
inline void assign_tracked(std::vector<T>& v, std::size_t n, const U& value,
                           AllocStats* stats) {
  reserve_tracked(v, n, stats);
  v.assign(n, static_cast<T>(value));
}

}  // namespace ppnpart::support
