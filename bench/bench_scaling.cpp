// Scaling study: the introduction's motivation — exact methods die on
// "graphs with potentially thousands [of] nodes", multilevel heuristics
// stay near-linear. GP vs MetisLike wall-clock and cut on PN-shaped graphs
// from 1k to 50k nodes (pass --full for 100k).

#include <cstdio>
#include <cstring>

#include "bench_common.hpp"
#include "partition/workspace.hpp"
#include "support/timer.hpp"

namespace {

// End-to-end multilevel throughput (the PR-3 hot-path metric): repeated
// GP/MetisLike runs on one 10k-node PN graph through a single reused
// workspace — the steady-state regime the allocation-free inner loop
// targets. Reports runs/s and workspace growths during the timed phase
// (0 growths == allocation-free steady state).
void multilevel_throughput() {
  using namespace ppnpart;
  const graph::Graph g = bench::multilevel_workload_graph(10'000);
  part::Workspace ws;

  bench::print_header(
      "End-to-end multilevel throughput, n=10k PN, K=8 (reused workspace)",
      "algorithm        runs    total      runs/s   ws-growths");
  const auto run_case = [&](const char* name, part::Partitioner& p,
                            int reps) {
    const bench::MultilevelCase c = bench::run_multilevel_case(p, g, ws, reps);
    std::printf("%-12s %8d %7.3fs %11.3f %12llu\n", name, reps, c.seconds,
                reps / c.seconds,
                static_cast<unsigned long long>(c.ws_growths));
  };
  part::GpOptions gp_options;
  gp_options.max_cycles = 4;
  part::GpPartitioner gp(gp_options);
  part::MetisLikePartitioner metis;
  run_case("GP(c=4)", gp, 3);
  run_case("MetisLike", metis, 20);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ppnpart;
  const bool full =
      argc > 1 && std::strcmp(argv[1], "--full") == 0;

  multilevel_throughput();
  std::printf("\n");

  std::vector<graph::NodeId> sizes = {1'000, 5'000, 10'000, 25'000, 50'000};
  if (full) sizes.push_back(100'000);

  bench::print_header(
      "Scaling on PN-shaped graphs, K=8 (GP max_cycles=4 vs MetisLike)",
      "      n         m   GP-cut    GP-time  GP-feas   ML-cut    ML-time");
  for (graph::NodeId n : sizes) {
    graph::ProcessNetworkParams params;
    params.num_nodes = n;
    params.layers = std::max<std::uint32_t>(8, n / 64);
    support::Rng rng(123 + n);
    const graph::Graph g = graph::random_process_network(params, rng);

    part::PartitionRequest request;
    request.k = 8;
    request.seed = 99;
    request.constraints.rmax =
        static_cast<graph::Weight>(1.15 * g.total_node_weight() / 8);
    request.constraints.bmax = static_cast<graph::Weight>(
        1.3 * g.total_edge_weight() / 28.0 / 2.0);

    part::GpOptions gp_options;
    gp_options.max_cycles = 4;
    part::GpPartitioner gp(gp_options);
    const part::PartitionResult gr = gp.run(g, request);

    part::MetisLikePartitioner metis;
    const part::PartitionResult mr = metis.run(g, request);

    std::printf("%7u %9llu %8lld %9.3fs %8s %8lld %9.3fs\n", n,
                static_cast<unsigned long long>(g.num_edges()),
                static_cast<long long>(gr.metrics.total_cut), gr.seconds,
                gr.feasible ? "yes" : "no",
                static_cast<long long>(mr.metrics.total_cut), mr.seconds);
  }
  return 0;
}
