// bench_json — machine-readable tracker for the multilevel hot path.
//
// Runs the end-to-end multilevel workload (GP / MetisLike / NLevel on a
// 10k-node PN-shaped graph, K=8, the workload of ROADMAP's scaling studies)
// through one reused part::Workspace and emits BENCH_multilevel.json with
//   * runs/s and seconds/run per partitioner,
//   * steady-state workspace allocation growths per run (the counting-
//     allocator hook; 0 == allocation-free inner loop),
//   * a peak-RSS proxy (VmHWM on Linux),
//   * the frozen pre-workspace baseline (commit bb85fa0) measured on the
//     same workload, so every future run reports its speedup against the
//     PR-3 starting point.
//
// Modes:
//   bench_json            full workload, writes BENCH_multilevel.json
//   bench_json --stdout   full workload, JSON to stdout only
//   bench_json --check    small self-check (CI smoke): verifies the
//                         workload runs and the steady state allocates
//                         nothing; exits non-zero on violation.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "partition/nlevel.hpp"

namespace {

using namespace ppnpart;

/// Peak resident set in kilobytes (VmHWM); 0 where unsupported.
long peak_rss_kb() {
#if defined(__linux__)
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtol(line.c_str() + 6, nullptr, 10);
    }
  }
#endif
  return 0;
}

struct CaseResult {
  std::string name;
  int reps = 0;
  double seconds_per_run = 0;
  double runs_per_second = 0;
  double ws_growths_per_run = 0;  // steady-state allocation growths
  long long cut = 0;
};

CaseResult run_case(const char* name, part::Partitioner& p,
                    const graph::Graph& g, part::Workspace& ws, int reps) {
  // The shared bench harness defines the workload and the warm-then-time
  // measurement, so this report and bench_scaling's table cannot drift
  // apart.
  const bench::MultilevelCase c = bench::run_multilevel_case(p, g, ws, reps);
  CaseResult r;
  r.name = name;
  r.reps = reps;
  r.seconds_per_run = c.seconds / reps;
  r.runs_per_second = reps / c.seconds;
  r.ws_growths_per_run = static_cast<double>(c.ws_growths) / reps;
  r.cut = static_cast<long long>(c.warm.metrics.total_cut);
  return r;
}

void emit_json(std::FILE* out, const std::vector<CaseResult>& results,
               graph::NodeId n) {
  // Baseline: pre-workspace implementation (commit bb85fa0), same workload,
  // same machine class as the numbers committed with PR 3.
  struct Baseline {
    const char* name;
    double seconds_per_run;
  };
  const Baseline baseline[] = {
      {"gp", 0.648}, {"metislike", 0.0148}, {"nlevel", 35.31}};

  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"multilevel_end_to_end\",\n");
  std::fprintf(out, "  \"workload\": {\"graph\": \"random_process_network\", "
                    "\"nodes\": %u, \"k\": 8, \"seed\": 99},\n",
               n);
  std::fprintf(out, "  \"peak_rss_kb\": %ld,\n", peak_rss_kb());
  std::fprintf(out, "  \"baseline_commit\": \"bb85fa0\",\n");
  // End-to-end workload speedup: one run of every multilevel partitioner,
  // before vs after (the PR-3 acceptance metric).
  double total_before = 0, total_after = 0;
  for (const CaseResult& r : results) {
    for (const Baseline& b : baseline) {
      if (r.name == b.name) {
        total_before += b.seconds_per_run;
        total_after += r.seconds_per_run;
      }
    }
  }
  if (total_after > 0) {
    std::fprintf(out, "  \"workload_speedup_vs_baseline\": %.2f,\n",
                 total_before / total_after);
  }
  std::fprintf(out, "  \"cases\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    double base_secs = 0;
    for (const Baseline& b : baseline) {
      if (r.name == b.name) base_secs = b.seconds_per_run;
    }
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"reps\": %d, "
                 "\"seconds_per_run\": %.4f, \"runs_per_second\": %.4f, "
                 "\"ws_growths_per_run\": %.2f, \"cut\": %lld, "
                 "\"baseline_seconds_per_run\": %.4f, "
                 "\"speedup_vs_baseline\": %.2f}%s\n",
                 r.name.c_str(), r.reps, r.seconds_per_run, r.runs_per_second,
                 r.ws_growths_per_run, r.cut, base_secs,
                 base_secs > 0 ? base_secs / r.seconds_per_run : 0.0,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

int self_check() {
  // Small instance: correctness of the plumbing plus the allocation-free
  // steady-state contract, fast enough for CI.
  const graph::Graph g = bench::multilevel_workload_graph(800);
  part::Workspace ws;
  part::GpOptions options;
  options.max_cycles = 2;
  part::GpPartitioner gp(options);
  const part::PartitionRequest request = bench::multilevel_workload_request(g, ws);
  const part::PartitionResult a = gp.run(g, request);
  const part::PartitionResult b = gp.run(g, request);
  if (a.partition.assignments() != b.partition.assignments()) {
    std::fprintf(stderr, "bench_json --check: nondeterministic results\n");
    return 1;
  }
  // Steady state: a third identical run must not grow any workspace buffer.
  const std::uint64_t growths_before = ws.stats().growths;
  gp.run(g, request);
  const std::uint64_t grown = ws.stats().growths - growths_before;
  if (grown != 0) {
    std::fprintf(stderr,
                 "bench_json --check: %llu workspace growths in steady "
                 "state (expected 0)\n",
                 static_cast<unsigned long long>(grown));
    return 1;
  }
  std::printf("bench_json --check: ok (deterministic, allocation-free "
              "steady state)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool to_stdout = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) return self_check();
    if (std::strcmp(argv[i], "--stdout") == 0) to_stdout = true;
  }

  const graph::NodeId n = 10'000;
  const graph::Graph g = bench::multilevel_workload_graph(n);
  part::Workspace ws;

  std::vector<CaseResult> results;
  part::GpOptions gp_options;
  gp_options.max_cycles = 4;
  part::GpPartitioner gp(gp_options);
  part::MetisLikePartitioner metis;
  part::NLevelPartitioner nlevel;
  results.push_back(run_case("gp", gp, g, ws, 3));
  results.push_back(run_case("metislike", metis, g, ws, 20));
  results.push_back(run_case("nlevel", nlevel, g, ws, 1));

  emit_json(stdout, results, n);
  if (!to_stdout) {
    std::FILE* f = std::fopen("BENCH_multilevel.json", "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot write BENCH_multilevel.json\n");
      return 1;
    }
    emit_json(f, results, n);
    std::fclose(f);
    std::fprintf(stderr, "bench_json: wrote BENCH_multilevel.json\n");
  }
  return 0;
}
