#pragma once
// Common partitioner interface used by the benchmark harness and examples.
//
// Every algorithm in the library (GP, MetisLike, Spectral, Exact, Random)
// answers the same request so the paper's comparison tables can iterate over
// a heterogeneous set of partitioners.

#include <memory>
#include <string>

#include "partition/partition.hpp"

namespace ppnpart::part {

struct PartitionRequest {
  PartId k = 2;
  /// GP honours these; cut-only baselines (MetisLike, Spectral, Random)
  /// ignore them, exactly like METIS in the paper's experiments.
  Constraints constraints;
  std::uint64_t seed = 1;
};

struct PartitionResult {
  Partition partition;
  PartitionMetrics metrics;
  Violation violation;
  bool feasible = false;
  double seconds = 0;
  std::string algorithm;

  /// Fills metrics/violation/feasible from the partition.
  void finalize(const Graph& g, const Constraints& c);
};

class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual std::string name() const = 0;
  virtual PartitionResult run(const Graph& g,
                              const PartitionRequest& request) = 0;
};

}  // namespace ppnpart::part
