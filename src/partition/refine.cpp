#include "partition/refine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace ppnpart::part {

namespace {

/// Lexicographic comparison of a move's gain delta (goodness after minus
/// goodness now, componentwise; negative components are improvements).
inline bool delta_less(const FmHeapEntry& a, const FmHeapEntry& b) {
  if (a.d_resource != b.d_resource) return a.d_resource < b.d_resource;
  if (a.d_bandwidth != b.d_bandwidth) return a.d_bandwidth < b.d_bandwidth;
  return a.d_cut < b.d_cut;
}

/// Heap comparator: min-heap on delta (best gain at the top), over pool
/// indices. Used with std::push_heap/pop_heap over the workspace-owned
/// index vector, which is operation-for-operation what std::priority_queue
/// over whole entries did before the scratch was hoisted — the comparator
/// sees identical values, so the pop order is identical.
struct WorseDelta {
  const FmHeapEntry* pool;
  bool operator()(std::uint32_t a, std::uint32_t b) const {
    return delta_less(pool[b], pool[a]);
  }
};

/// One FM pass over the constrained goodness. Returns the pass's best
/// goodness (state of `p` on return corresponds to it). All scratch comes
/// from `ws`; a warm workspace makes the pass allocation-free.
Goodness constrained_fm_pass(MoveContext& ctx, const FmOptions& options,
                             support::Rng& rng, FmScratch& fs) {
  const Graph& g = ctx.graph();
  const NodeId n = g.num_nodes();

  // Lazy max-improvement heap keyed by the move's *gain delta* — goodness
  // after minus goodness now, componentwise. Keying on the absolute
  // goodness-after would invalidate every entry whenever any move changes
  // the global cut; deltas only drift for nodes whose neighbourhood or
  // parts were touched, so the lazy revalidation below stays local (this
  // is what keeps a pass near-linear on large graphs).
  auto entry_of = [&](NodeId u, PartId target, const Goodness& after,
                      std::uint32_t stamp) {
    const Goodness now = ctx.goodness();
    return FmHeapEntry{after.resource_excess - now.resource_excess,
                       after.bandwidth_excess - now.bandwidth_excess,
                       after.cut - now.cut, u, target, stamp,
                       static_cast<std::uint32_t>(ctx.apply_count())};
  };
  std::vector<FmHeapEntry>& pool = fs.pool;
  std::vector<std::uint32_t>& heap = fs.heap;
  pool.clear();
  heap.clear();
  // Stamps need only intra-pass equality (the heap is emptied between
  // passes), so the buffer is grown but never re-zeroed or shrunk: values
  // persist monotonically, which skips an O(n) memset per pass and the
  // re-zeroing that shrink-then-grow across levels would cause.
  if (fs.stamp.size() < n) {
    support::reserve_tracked(fs.stamp, n, fs.stats);
    fs.stamp.resize(n);
  }
  support::assign_tracked(fs.locked, n, 0, fs.stats);

  auto heap_push = [&](const FmHeapEntry& e) {
    pool.push_back(e);
    heap.push_back(static_cast<std::uint32_t>(pool.size() - 1));
    std::push_heap(heap.begin(), heap.end(), WorseDelta{pool.data()});
  };
  auto push_candidate = [&](NodeId u) {
    if (fs.locked[u]) return;
    auto cand = ctx.best_move(u);
    if (!cand) return;
    heap_push(entry_of(u, cand->target, cand->after, fs.stamp[u]));
  };

  // Seed: boundary nodes plus every node of an over-capacity part (those
  // repair resource violations but need not touch the boundary), in random
  // order so equal-goodness candidates break ties stochastically.
  {
    std::vector<NodeId>& seeds = fs.seeds;
    if (options.seed_boundary_only) {
      ctx.boundary_nodes(seeds);
      if (ctx.goodness().resource_excess > 0) {
        support::assign_tracked(fs.seeded, n, 0, fs.stats);
        for (NodeId u : seeds) fs.seeded[u] = 1;
        const Constraints& c = ctx.constraints();
        for (NodeId u = 0; u < n; ++u) {
          const PartId pu = ctx.part_of(u);
          if (!fs.seeded[u] && ctx.load(pu) > c.rmax_of(pu)) seeds.push_back(u);
        }
      }
    } else {
      support::reserve_tracked(seeds, n, fs.stats);
      seeds.resize(n);
      for (NodeId u = 0; u < n; ++u) seeds[u] = u;
    }
    rng.shuffle(seeds);
    support::reserve_tracked(heap, seeds.size(), fs.stats);
    support::reserve_tracked(pool, seeds.size(), fs.stats);
    for (NodeId u : seeds) push_candidate(u);
  }

  std::vector<FmMoveRecord>& log = fs.log;
  support::reserve_tracked(log, n, fs.stats);
  log.clear();
  Goodness best = ctx.goodness();
  std::size_t best_prefix = 0;
  const std::uint64_t limit =
      options.move_limit == 0 ? n : options.move_limit;

  // Safety valve: lazy revalidation is amortized-cheap, but adversarial
  // weight patterns could ping-pong reinsertions; cap total pops.
  std::uint64_t pops = 0;
  const std::uint64_t pop_limit = 16ull * std::max<std::uint64_t>(n, 64);
  // push_back growth past the tracked reserves is real allocator traffic;
  // account for it at pass end via the capacity delta.
  const std::size_t pool_cap = pool.capacity();
  const std::size_t heap_cap = heap.capacity();

  while (!heap.empty() && log.size() < limit && pops++ < pop_limit) {
    const FmHeapEntry e = pool[heap.front()];
    std::pop_heap(heap.begin(), heap.end(), WorseDelta{pool.data()});
    heap.pop_back();
    if (fs.locked[e.node] || e.stamp != fs.stamp[e.node]) continue;
    PartId target = e.target;
    if (e.version != static_cast<std::uint32_t>(ctx.apply_count())) {
      // Revalidate lazily: the stored delta may have drifted because a
      // neighbouring move changed loads or pairwise cuts. Recompute; if the
      // move is now *worse* than advertised, reinsert with the fresh key
      // (someone else may beat it); if it is as good or better, take it —
      // it still dominates everything below it in the heap. (When no move
      // at all happened since the push, the stored delta is exact and this
      // recomputation is skipped.)
      auto cand = ctx.best_move(e.node);
      if (!cand) continue;
      FmHeapEntry actual =
          entry_of(e.node, cand->target, cand->after, fs.stamp[e.node]);
      if (delta_less(e, actual)) {
        actual.stamp = ++fs.stamp[e.node];
        heap_push(actual);
        continue;
      }
      target = cand->target;
    }
    const PartId from = ctx.part_of(e.node);
    ctx.apply(e.node, target);
    fs.locked[e.node] = 1;
    log.push_back({e.node, from});
    const Goodness now = ctx.goodness();
    if (now < best) {
      best = now;
      best_prefix = log.size();
    }
    for (NodeId v : g.neighbors(e.node)) {
      if (!fs.locked[v]) {
        ++fs.stamp[v];
        push_candidate(v);
      }
    }
  }

  if (fs.stats != nullptr) {
    if (pool.capacity() > pool_cap) {
      fs.stats->note((pool.capacity() - pool_cap) * sizeof(FmHeapEntry));
    }
    if (heap.capacity() > heap_cap) {
      fs.stats->note((heap.capacity() - heap_cap) * sizeof(std::uint32_t));
    }
  }

  // Roll back to the best prefix.
  for (std::size_t i = log.size(); i-- > best_prefix;) {
    ctx.apply(log[i].node, log[i].from);
  }
  return best;
}

}  // namespace

bool constrained_fm_refine(const Graph& g, Partition& p, const Constraints& c,
                           const FmOptions& options, support::Rng& rng,
                           Workspace& ws) {
  MoveContext& ctx = ws.move_ctx;
  ctx.reset(g, p, c);
  const Goodness initial = ctx.goodness();
  Goodness current = initial;
  for (std::uint32_t pass = 0; pass < options.max_passes; ++pass) {
    support::Rng pass_rng = rng.derive(0x9d5ull * (pass + 1));
    const Goodness after = constrained_fm_pass(ctx, options, pass_rng, ws.fm);
    if (!(after < current)) break;
    current = after;
  }
  return current < initial;
}

bool constrained_fm_refine(const Graph& g, Partition& p, const Constraints& c,
                           const FmOptions& options, support::Rng& rng) {
  Workspace ws;
  return constrained_fm_refine(g, p, c, options, rng, ws);
}

bool swap_refine(const Graph& g, Partition& p, const Constraints& c,
                 const SwapRefineOptions& options, support::Rng& rng,
                 Workspace& ws) {
  const NodeId n = g.num_nodes();
  if (n > options.max_nodes || n < 2) return false;
  MoveContext& ctx = ws.move_ctx;
  ctx.reset(g, p, c);
  const Goodness initial = ctx.goodness();

  for (std::uint32_t pass = 0; pass < options.max_passes; ++pass) {
    bool improved_this_pass = false;
    // Steepest descent: repeatedly take the best improving swap.
    for (std::uint64_t step = 0; step < n; ++step) {
      const Goodness current = ctx.goodness();
      NodeId best_u = graph::kInvalidNode, best_v = graph::kInvalidNode;
      Goodness best_after = current;
      for (NodeId u = 0; u < n; ++u) {
        const PartId pu = ctx.part_of(u);
        for (NodeId v = u + 1; v < n; ++v) {
          const PartId pv = ctx.part_of(v);
          if (pu == pv) continue;
          // Evaluate the swap by applying half of it temporarily.
          ctx.apply(u, pv);
          const Goodness after = ctx.goodness_after(v, pu);
          ctx.apply(u, pu);
          if (after < best_after) {
            best_after = after;
            best_u = u;
            best_v = v;
          }
        }
      }
      if (best_u == graph::kInvalidNode) break;
      const PartId pu = ctx.part_of(best_u);
      const PartId pv = ctx.part_of(best_v);
      ctx.apply(best_u, pv);
      ctx.apply(best_v, pu);
      improved_this_pass = true;
    }
    if (!improved_this_pass) break;
  }
  (void)rng;
  return ctx.goodness() < initial;
}

bool swap_refine(const Graph& g, Partition& p, const Constraints& c,
                 const SwapRefineOptions& options, support::Rng& rng) {
  Workspace ws;
  return swap_refine(g, p, c, options, rng, ws);
}

bool greedy_cut_refine(const Graph& g, Partition& p, Weight max_load,
                       const GreedyRefineOptions& options, support::Rng& rng,
                       Workspace& ws) {
  // Balance modelled as a hard cap; cut via the goodness cut component.
  Constraints cap;
  cap.rmax = max_load;
  MoveContext& ctx = ws.move_ctx;
  ctx.reset(g, p, cap);
  const Weight initial_cut = ctx.cut();
  // The visit order lives in the workspace; every executed pass follows a
  // pass that moved something (or is the first), so each collection is
  // warranted — and it is the incremental boundary enumeration, not a
  // graph rescan.
  std::vector<NodeId>& order = ws.boundary;
  for (std::uint32_t pass = 0; pass < options.max_passes; ++pass) {
    bool moved = false;
    ctx.boundary_nodes(order);
    rng.shuffle(order);
    for (NodeId u : order) {
      const PartId from = ctx.part_of(u);
      if (ctx.part_size(from) <= 1) continue;
      const Weight w = g.node_weight(u);
      PartId best_target = kUnassigned;
      Weight best_gain = 0;
      Weight best_target_load = std::numeric_limits<Weight>::max();
      for (PartId q = 0; q < ctx.k(); ++q) {
        if (q == from) continue;
        if (ctx.conn(u, q) == 0) continue;        // only toward neighbours
        if (ctx.load(q) + w > max_load) continue;  // hard balance cap
        const Weight gain = ctx.conn(u, q) - ctx.conn(u, from);
        const bool acceptable =
            gain > 0 || (gain == 0 && ctx.load(q) + w < ctx.load(from));
        if (!acceptable) continue;
        if (best_target == kUnassigned || gain > best_gain ||
            (gain == best_gain && ctx.load(q) < best_target_load)) {
          best_gain = gain;
          best_target = q;
          best_target_load = ctx.load(q);
        }
      }
      if (best_target != kUnassigned) {
        ctx.apply(u, best_target);
        moved = true;
      }
    }
    if (!moved) break;
  }
  return ctx.cut() < initial_cut;
}

bool greedy_cut_refine(const Graph& g, Partition& p, Weight max_load,
                       const GreedyRefineOptions& options, support::Rng& rng) {
  Workspace ws;
  return greedy_cut_refine(g, p, max_load, options, rng, ws);
}

bool bisection_fm_refine(const Graph& g, Partition& p, Weight cap0,
                         Weight cap1, std::uint32_t max_passes,
                         support::Rng& rng, Workspace& ws) {
  if (p.k() != 2)
    throw std::invalid_argument("bisection_fm_refine: k must be 2");
  const NodeId n = g.num_nodes();
  BisectionScratch& bs = ws.bisect;

  auto overweight = [&](Weight l0, Weight l1) {
    return std::max<Weight>(0, l0 - cap0) + std::max<Weight>(0, l1 - cap1);
  };

  // Local 2-way state: conn-to-own / conn-to-other per node.
  support::assign_tracked(bs.internal, n, 0, bs.stats);
  support::assign_tracked(bs.external, n, 0, bs.stats);
  std::vector<Weight>& internal = bs.internal;
  std::vector<Weight>& external = bs.external;
  Weight load[2] = {0, 0};
  std::uint32_t count[2] = {0, 0};
  Weight cut = 0;
  for (NodeId u = 0; u < n; ++u) {
    load[p[u]] += g.node_weight(u);
    ++count[p[u]];
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (p[nbrs[i]] == p[u]) {
        internal[u] += wgts[i];
      } else {
        external[u] += wgts[i];
        if (u < nbrs[i]) cut += wgts[i];
      }
    }
  }

  struct State {
    Weight over, cut;
  };
  auto better = [](const State& a, const State& b) {
    return a.over != b.over ? a.over < b.over : a.cut < b.cut;
  };

  const State initial{overweight(load[0], load[1]), cut};
  State current = initial;

  for (std::uint32_t pass = 0; pass < max_passes; ++pass) {
    support::assign_tracked(bs.locked, n, 0, bs.stats);
    std::vector<NodeId>& log = bs.log;
    support::reserve_tracked(log, n, bs.stats);
    log.clear();
    State best = current;
    std::size_t best_prefix = 0;

    // Simple selection: scan for the best unlocked move each step. The
    // bisection runs on coarsest-level graphs (hundreds of nodes), so the
    // O(n) scan per move is irrelevant next to correctness.
    for (std::uint64_t step = 0; step < n; ++step) {
      NodeId pick = graph::kInvalidNode;
      State pick_state{std::numeric_limits<Weight>::max(),
                       std::numeric_limits<Weight>::max()};
      for (NodeId u = 0; u < n; ++u) {
        if (bs.locked[u]) continue;
        const PartId from = p[u];
        if (count[from] <= 1) continue;
        const Weight w = g.node_weight(u);
        const Weight l_from = load[from] - w;
        const Weight l_to = load[1 - from] + w;
        const State s{from == 0 ? overweight(l_from, l_to)
                                : overweight(l_to, l_from),
                      cut + internal[u] - external[u]};
        if (pick == graph::kInvalidNode || better(s, pick_state)) {
          pick = u;
          pick_state = s;
        }
      }
      if (pick == graph::kInvalidNode) break;
      // Apply the move.
      const PartId from = p[pick];
      const PartId to = 1 - from;
      const Weight w = g.node_weight(pick);
      load[from] -= w;
      load[to] += w;
      --count[from];
      ++count[to];
      cut += internal[pick] - external[pick];
      std::swap(internal[pick], external[pick]);
      auto nbrs = g.neighbors(pick);
      auto wgts = g.edge_weights(pick);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const NodeId v = nbrs[i];
        if (p[v] == to) {
          internal[v] += wgts[i];
          external[v] -= wgts[i];
        } else {
          internal[v] -= wgts[i];
          external[v] += wgts[i];
        }
      }
      p.set(pick, to);
      bs.locked[pick] = 1;
      log.push_back(pick);
      const State now{overweight(load[0], load[1]), cut};
      if (better(now, best)) {
        best = now;
        best_prefix = log.size();
      }
    }

    // Roll back to best prefix (re-run the same update in reverse).
    for (std::size_t i = log.size(); i-- > best_prefix;) {
      const NodeId u = log[i];
      const PartId from = p[u];
      const PartId to = 1 - from;
      const Weight w = g.node_weight(u);
      load[from] -= w;
      load[to] += w;
      --count[from];
      ++count[to];
      cut += internal[u] - external[u];
      std::swap(internal[u], external[u]);
      auto nbrs = g.neighbors(u);
      auto wgts = g.edge_weights(u);
      for (std::size_t j = 0; j < nbrs.size(); ++j) {
        const NodeId v = nbrs[j];
        if (p[v] == to) {
          internal[v] += wgts[j];
          external[v] -= wgts[j];
        } else {
          internal[v] -= wgts[j];
          external[v] += wgts[j];
        }
      }
      p.set(u, to);
    }
    if (!better(best, current)) break;
    current = best;
    (void)rng;
  }
  return better(current, initial);
}

bool bisection_fm_refine(const Graph& g, Partition& p, Weight cap0,
                         Weight cap1, std::uint32_t max_passes,
                         support::Rng& rng) {
  Workspace ws;
  return bisection_fm_refine(g, p, cap0, cap1, max_passes, rng, ws);
}

}  // namespace ppnpart::part
