// Similarity-aware admission: GraphSketch separation, SimilarityIndex LRU
// semantics, and the engine's near-hit pipeline — including the two
// correctness rails the PR-5 acceptance pins: a sketch near-hit never
// serves a partition that is invalid for the ARRIVING graph, and
// similarity-served answers never pollute the exact result cache.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "engine/fingerprint.hpp"
#include "engine/similarity.hpp"
#include "graph/delta.hpp"
#include "graph/diff.hpp"
#include "graph/generators.hpp"
#include "partition/incremental.hpp"
#include "support/graph_sketch.hpp"
#include "support/prng.hpp"

namespace ppnpart {
namespace {

using graph::Graph;
using graph::GraphDelta;
using graph::NodeId;
using graph::Weight;

std::shared_ptr<const Graph> make_pn(std::uint64_t seed, NodeId nodes) {
  graph::ProcessNetworkParams params;
  params.num_nodes = nodes;
  params.layers = std::max<std::uint32_t>(4, nodes / 12);
  support::Rng rng(seed);
  return std::make_shared<const Graph>(
      graph::random_process_network(params, rng));
}

/// ~`fraction` random channel reweights/adds — a near-identical arrival.
std::shared_ptr<const Graph> perturb(const Graph& g, double fraction,
                                     std::uint64_t seed) {
  support::Rng rng(seed);
  GraphDelta d(g);
  const auto ops = static_cast<std::size_t>(
      std::max(1.0, fraction * static_cast<double>(g.num_nodes())));
  for (std::size_t i = 0; i < ops; ++i) {
    const auto u = static_cast<NodeId>(rng.uniform_index(g.num_nodes()));
    if (g.degree(u) == 0) continue;
    const NodeId v = g.neighbors(u)[rng.uniform_index(g.degree(u))];
    d.set_edge_weight(u, v, 1 + static_cast<Weight>(rng.uniform_index(12)));
  }
  return std::make_shared<const Graph>(d.apply(g).graph);
}

part::PartitionRequest make_request(const Graph& g, part::PartId k = 4,
                                    std::uint64_t seed = 9) {
  part::PartitionRequest r;
  r.k = k;
  r.seed = seed;
  r.constraints.rmax = std::max<Weight>(
      static_cast<Weight>(1.4 * static_cast<double>(g.total_node_weight()) /
                          k),
      g.max_node_weight());
  return r;
}

engine::EngineOptions sim_options() {
  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"gp"}};
  opts.similarity.enabled = true;
  return opts;
}

// ---------------------------------------------------------------- sketch ---

TEST(GraphSketch, SeparatesNearTwinsFromUnrelatedGraphs) {
  const auto g = make_pn(1, 400);
  const support::GraphSketch self = support::sketch_of(*g);
  EXPECT_EQ(support::sketch_similarity(self, self), 1.0);
  EXPECT_EQ(self, support::sketch_of(*g));  // deterministic

  // ~1% edits: almost every slot survives.
  const auto near = perturb(*g, 0.01, 7);
  const double near_sim =
      support::sketch_similarity(self, support::sketch_of(*near));
  EXPECT_GE(near_sim, 0.8);

  // An unrelated network of the same size: almost no slot survives.
  const auto far = make_pn(2, 400);
  const double far_sim =
      support::sketch_similarity(self, support::sketch_of(*far));
  EXPECT_LE(far_sim, 0.3);
  EXPECT_GT(near_sim, far_sim);
}

TEST(GraphSketch, EmptyGraphsOnlyMatchEmptyGraphs) {
  const Graph empty;
  const auto g = make_pn(3, 64);
  EXPECT_EQ(support::sketch_similarity(support::sketch_of(empty),
                                       support::sketch_of(empty)),
            1.0);
  EXPECT_EQ(support::sketch_similarity(support::sketch_of(empty),
                                       support::sketch_of(*g)),
            0.0);
}

// ----------------------------------------------------------------- index ---

engine::SimilarityIndex::Entry make_entry(std::shared_ptr<const Graph> g,
                                          std::uint64_t compat,
                                          part::PartId k = 4) {
  engine::SimilarityIndex::Entry e;
  e.sketch = support::sketch_of(*g);
  e.graph_fp = engine::graph_fingerprint(*g);
  e.compat_fp = compat;
  e.partition = part::Partition(g->num_nodes(), k);
  for (NodeId u = 0; u < g->num_nodes(); ++u)
    e.partition.set(u, static_cast<part::PartId>(u % k));
  e.graph = std::move(g);
  return e;
}

TEST(SimilarityIndex, MatchesByCompatAndEvictsLru) {
  engine::SimilarityIndex index(2);
  const auto a = make_pn(10, 96);
  const auto b = make_pn(11, 96);
  index.insert(make_entry(a, /*compat=*/1));
  index.insert(make_entry(b, /*compat=*/2));

  // Compat mismatch never matches, even a perfect sketch twin.
  EXPECT_FALSE(
      index.best_match(support::sketch_of(*a), /*compat=*/3, 0.5).has_value());
  auto hit = index.best_match(support::sketch_of(*a), 1, 0.5);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->entry.graph.get(), a.get());
  EXPECT_EQ(hit->similarity, 1.0);

  // `a` was just touched, so inserting a third entry evicts `b`.
  const auto c = make_pn(12, 96);
  index.insert(make_entry(c, /*compat=*/1));
  EXPECT_EQ(index.size(), 2u);
  EXPECT_FALSE(index.best_match(support::sketch_of(*b), 2, 0.5).has_value());
  EXPECT_TRUE(index.best_match(support::sketch_of(*a), 1, 0.5).has_value());
  EXPECT_TRUE(index.best_match(support::sketch_of(*c), 1, 0.5).has_value());
}

TEST(SimilarityIndex, RejectsIncompletePartitions) {
  engine::SimilarityIndex index(4);
  const auto g = make_pn(13, 48);
  auto entry = make_entry(g, 1);
  entry.partition = part::Partition(g->num_nodes(), 4);  // all unassigned
  index.insert(std::move(entry));
  EXPECT_EQ(index.size(), 0u);
}

TEST(SimilarityIndex, ProbeOrParkAssignsRolesUnderOneLock) {
  using Role = engine::SimilarityIndex::ProbeRole;
  engine::SimilarityIndex index(4);
  const auto g = make_pn(14, 96);
  const support::GraphSketch sketch = support::sketch_of(*g);

  // Empty index, empty registry: the first prober becomes the leader.
  auto first = index.probe_or_park(sketch, /*compat_fp=*/1, 0.5,
                                   /*leader_job=*/100, /*may_lead=*/true,
                                   std::make_shared<int>(0));
  EXPECT_EQ(first.role, Role::kLeader);
  EXPECT_EQ(index.pending_leaders(), 1u);

  // Sketch twins of the same compat key park behind the pending leader;
  // their handles come back from resolve_pending in arrival order.
  auto f1 = std::make_shared<int>(1);
  auto f2 = std::make_shared<int>(2);
  EXPECT_EQ(index.probe_or_park(sketch, 1, 0.5, 101, true, f1).role,
            Role::kParked);
  EXPECT_EQ(index.probe_or_park(sketch, 1, 0.5, 102, true, f2).role,
            Role::kParked);
  EXPECT_EQ(index.pending_leaders(), 1u);

  // A different compat key is its own cohort (leads, never parks), and a
  // prober that may not lead plainly misses.
  EXPECT_EQ(index
                .probe_or_park(sketch, /*compat_fp=*/2, 0.5, 103, true,
                               std::make_shared<int>(3))
                .role,
            Role::kLeader);
  const auto far = make_pn(15, 96);
  EXPECT_EQ(index
                .probe_or_park(support::sketch_of(*far), 1, 0.5, 104,
                               /*may_lead=*/false, std::make_shared<int>(4))
                .role,
            Role::kMiss);

  // Resolving hands back exactly the parked handles and erases the entry;
  // a second resolve (or a wrong leader id) is a safe no-op.
  auto parked = index.resolve_pending(/*compat_fp=*/1, /*leader_job=*/100);
  ASSERT_EQ(parked.size(), 2u);
  EXPECT_EQ(parked[0].get(), f1.get());
  EXPECT_EQ(parked[1].get(), f2.get());
  EXPECT_TRUE(index.resolve_pending(1, 100).empty());
  EXPECT_EQ(index.pending_leaders(), 1u);  // compat 2's leader remains

  // Once an entry is indexed, probers match it instead of leading/parking.
  index.insert(make_entry(g, /*compat=*/1));
  auto hit = index.probe_or_park(sketch, 1, 0.5, 105, true,
                                 std::make_shared<int>(5));
  EXPECT_EQ(hit.role, Role::kMatch);
  ASSERT_TRUE(hit.match.has_value());
  EXPECT_EQ(hit.match->entry.graph.get(), g.get());
}

// ---------------------------------------------------------------- engine ---

TEST(Engine, SimilarityNearHitWarmStartsAndStaysValid) {
  engine::Engine eng(sim_options());
  const auto base = make_pn(21, 300);
  const part::PartitionRequest request = make_request(*base);

  const auto first = eng.run_one(base, request);
  ASSERT_FALSE(first.winner.empty());
  EXPECT_FALSE(first.similarity);

  // A near-identical arrival WITHOUT a delta: admission must diff + warm
  // start, and the answer must be a complete, metrics-consistent partition
  // of the ARRIVING graph.
  const auto arriving = perturb(*base, 0.01, 99);
  const auto out = eng.run_one(arriving, request);
  EXPECT_TRUE(out.similarity) << "expected a similarity near-hit";
  EXPECT_EQ(out.winner, "similarity");
  EXPECT_FALSE(out.from_cache);
  ASSERT_EQ(out.best.partition.size(), arriving->num_nodes());
  EXPECT_TRUE(out.best.partition.complete());
  EXPECT_EQ(out.best.metrics.total_cut,
            part::compute_metrics(*arriving, out.best.partition).total_cut);

  const engine::EngineStats stats = eng.stats();
  // Both admissions probed; the first found an empty index and declined to
  // the full path (which then seeded the index), the second near-hit.
  EXPECT_EQ(stats.similarity.probes, 2u);
  EXPECT_EQ(stats.similarity.near_hits, 1u);
  EXPECT_EQ(stats.similarity.declines, 1u);
}

TEST(Engine, SimilarityHitNeverPollutesTheExactCache) {
  // Regression rail: after a similarity-served answer for B, (1) the exact
  // cache still serves A's own answer for A, and (2) an exact twin of B
  // must NOT be served from the exact cache — warm answers depend on the
  // matched previous answer and are never cached.
  engine::Engine eng(sim_options());
  const auto a = make_pn(22, 250);
  const part::PartitionRequest request = make_request(*a);

  const auto first = eng.run_one(a, request);
  ASSERT_FALSE(first.winner.empty());

  const auto b = perturb(*a, 0.01, 5);
  const auto served_b = eng.run_one(b, request);
  ASSERT_TRUE(served_b.similarity);

  // A's exact twin: cache hit, and the partition is A-sized — not B's.
  const auto again_a = eng.run_one(a, request);
  EXPECT_TRUE(again_a.from_cache);
  EXPECT_EQ(again_a.best.partition.size(), a->num_nodes());
  EXPECT_EQ(again_a.best.partition.assignments(),
            first.best.partition.assignments());

  // B's exact twin: never from the exact cache. (It may warm-start again —
  // B itself is in the similarity index now — but each serve is computed
  // fresh on B and valid for B.)
  const auto again_b = eng.run_one(b, request);
  EXPECT_FALSE(again_b.from_cache);
  EXPECT_EQ(again_b.best.partition.size(), b->num_nodes());
  EXPECT_TRUE(again_b.best.partition.complete());
}

TEST(Engine, FarArrivalsDeclineToTheFullPath) {
  engine::Engine eng(sim_options());
  const auto a = make_pn(23, 200);
  const part::PartitionRequest request = make_request(*a);
  ASSERT_FALSE(eng.run_one(a, request).winner.empty());

  // Entirely different network, same request shape: probe, decline, full
  // portfolio — and the answer is that graph's own.
  const auto far = make_pn(24, 200);
  const auto out = eng.run_one(far, request);
  EXPECT_FALSE(out.similarity);
  EXPECT_EQ(out.winner, "gp");
  EXPECT_EQ(out.best.partition.size(), far->num_nodes());
  const engine::EngineStats stats = eng.stats();
  EXPECT_GE(stats.similarity.declines, 1u);
  EXPECT_EQ(stats.similarity.near_hits, 0u);
}

TEST(Engine, ChangedKNeverMatchesAStoredAnswer) {
  // Request compatibility excludes the seed but includes k: a stored k=4
  // answer must never warm-start a k=5 request (the projection would be
  // meaningless). The k=5 arrival runs the full path and stays valid.
  engine::Engine eng(sim_options());
  const auto a = make_pn(25, 200);
  ASSERT_FALSE(eng.run_one(a, make_request(*a, 4)).winner.empty());

  const auto near = perturb(*a, 0.01, 31);
  const auto out = eng.run_one(near, make_request(*near, 5));
  EXPECT_FALSE(out.similarity);
  EXPECT_EQ(out.best.partition.k(), 5);
  EXPECT_TRUE(out.best.partition.complete());

  // Same k but different seed IS compatible — that near-twin warm-starts.
  part::PartitionRequest other_seed = make_request(*near, 4);
  other_seed.seed = 777;
  const auto warm = eng.run_one(near, other_seed);
  EXPECT_TRUE(warm.similarity);
  EXPECT_EQ(warm.best.partition.size(), near->num_nodes());
}

TEST(Engine, SimilarityDisabledByDefault) {
  engine::EngineOptions opts;
  opts.portfolio = engine::Portfolio{{"gp"}};
  engine::Engine eng(opts);
  const auto a = make_pn(26, 150);
  const part::PartitionRequest request = make_request(*a);
  ASSERT_FALSE(eng.run_one(a, request).winner.empty());
  const auto out = eng.run_one(perturb(*a, 0.01, 3), request);
  EXPECT_FALSE(out.similarity);
  const engine::EngineStats stats = eng.stats();
  EXPECT_EQ(stats.similarity.probes, 0u);
  EXPECT_EQ(stats.similarity.near_hits, 0u);
}

TEST(Engine, SimilarityChainTracksDriftingNetwork) {
  // A service scenario: the network drifts 1% per arrival, each arrival a
  // plain CSR graph. After the first full run, every arrival should be
  // served by the similarity path, each answer valid for ITS graph.
  engine::Engine eng(sim_options());
  auto g = make_pn(27, 300);
  const part::PartitionRequest request = make_request(*g);
  ASSERT_FALSE(eng.run_one(g, request).winner.empty());

  for (int step = 0; step < 5; ++step) {
    g = perturb(*g, 0.01, 1000 + static_cast<std::uint64_t>(step));
    const auto out = eng.run_one(g, request);
    EXPECT_TRUE(out.similarity) << "step " << step;
    ASSERT_EQ(out.best.partition.size(), g->num_nodes());
    EXPECT_TRUE(out.best.partition.complete());
    EXPECT_EQ(out.best.metrics.total_cut,
              part::compute_metrics(*g, out.best.partition).total_cut);
  }
  EXPECT_EQ(eng.stats().similarity.near_hits, 5u);
}

TEST(Engine, SimilarityCountersAreExactUnderConcurrentSubmit) {
  // Admission counters live under the engine mutex: with T client threads
  // racing distinct near-twin arrivals, every admission probes exactly
  // once and lands in exactly one bucket — probes == T and
  // near_hits + declines == probes, regardless of interleaving. Every
  // outcome must still be a valid partition of its own arrival.
  engine::Engine eng(sim_options());
  const auto base = make_pn(30, 200);
  const part::PartitionRequest request = make_request(*base);
  ASSERT_FALSE(eng.run_one(base, request).winner.empty());
  const std::uint64_t seed_probes = eng.stats().similarity.probes;

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const Graph>> arrivals;
  for (int t = 0; t < kThreads; ++t)
    arrivals.push_back(perturb(*base, 0.01, 100 + static_cast<std::uint64_t>(t)));

  std::vector<engine::PortfolioOutcome> outs(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] { outs[t] = eng.run_one(arrivals[t], request); });
  }
  for (auto& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(outs[t].best.partition.size(), arrivals[t]->num_nodes()) << t;
    EXPECT_TRUE(outs[t].best.partition.complete()) << t;
    EXPECT_FALSE(outs[t].from_cache) << t;  // all-distinct content
  }
  const engine::EngineStats stats = eng.stats();
  EXPECT_EQ(stats.similarity.probes - seed_probes,
            static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(stats.similarity.near_hits + stats.similarity.declines,
            stats.similarity.probes);
}

// ------------------------------------------------- partition-layer rail ---

TEST(IncrementalDiffed, DeclinesOversizedAndMismatchedWarmStarts) {
  part::IncrementalPartitioner inc;
  const auto base = make_pn(28, 120);
  const auto far = make_pn(29, 120);  // unrelated: diff is huge
  part::PartitionRequest request = make_request(*base);

  part::Partition prev(base->num_nodes(), request.k);
  for (NodeId u = 0; u < base->num_nodes(); ++u)
    prev.set(u, static_cast<part::PartId>(u % request.k));

  part::IncrementalStats stats;
  EXPECT_FALSE(
      inc.try_repartition_diffed(*base, *far, prev, request, &stats)
          .has_value());
  EXPECT_EQ(stats.fallback_reason, "diff too large");

  // Wrong-sized warm start declines instead of throwing.
  part::Partition wrong(base->num_nodes() / 2, request.k);
  EXPECT_FALSE(
      inc.try_repartition_diffed(*base, *far, wrong, request, &stats)
          .has_value());
  EXPECT_EQ(stats.fallback_reason,
            "previous partition does not match the base graph");

  // A near-identical arrival succeeds and reports the script size.
  const auto near = perturb(*base, 0.02, 8);
  const auto warm =
      inc.try_repartition_diffed(*base, *near, prev, request, &stats);
  ASSERT_TRUE(warm.has_value());
  EXPECT_GT(stats.diff_ops, 0u);
  EXPECT_EQ(warm->partition.size(), near->num_nodes());
  EXPECT_TRUE(warm->partition.complete());
}

}  // namespace
}  // namespace ppnpart
