#include "partition/incremental.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/diff.hpp"
#include "partition/refine.hpp"
#include "partition/workspace.hpp"
#include "support/prng.hpp"
#include "support/timer.hpp"

namespace ppnpart::part {

namespace {

using graph::kInvalidNode;

/// Seed-stream tag of the incremental refinement randomness; fixed so a
/// given (prev, delta, request.seed) reproduces bit-identical results.
constexpr std::uint64_t kIncrementalSeedTag = 0x696e63725f726570ull;  // "incr_rep"

}  // namespace

IncrementalPartitioner::IncrementalPartitioner(IncrementalOptions options)
    : options_(std::move(options)) {}

std::optional<PartitionResult> IncrementalPartitioner::try_repartition(
    const Graph& g, const Partition& prev,
    std::span<const graph::NodeId> node_map,
    std::span<const graph::NodeId> touched, const PartitionRequest& request,
    IncrementalStats* stats) {
  support::Timer timer;
  if (stats != nullptr) *stats = IncrementalStats{};
  const NodeId n = g.num_nodes();
  const PartId k = request.k;
  if (k <= 0)
    throw std::invalid_argument("IncrementalPartitioner: k must be positive");
  if (node_map.size() < prev.size())
    throw std::invalid_argument(
        "IncrementalPartitioner: node_map shorter than the previous "
        "partition");

  const auto decline = [&](const char* reason) -> std::optional<PartitionResult> {
    if (stats != nullptr) {
      stats->fell_back = true;
      stats->fallback_reason = reason;
    }
    return std::nullopt;
  };

  // A changed part count invalidates the projection outright: previous part
  // ids name different budgets/neighbourhoods now.
  if (k != prev.k()) return decline("k changed");
  if (static_cast<double>(touched.size()) >
      options_.max_touched_fraction * static_cast<double>(n))
    return decline("delta touches too many nodes");

  PartitionResult result;
  result.algorithm = "Incremental";
  result.partition.reset(n, k);
  Partition& p = result.partition;

  if (n == 0) {  // the delta removed every node: trivially complete
    result.finalize(g, request.constraints);
    result.seconds = timer.seconds();
    return result;
  }

  // ---- 1. Project surviving nodes through the old->new map. --------------
  NodeId projected = 0;
  for (NodeId u = 0; u < prev.size(); ++u) {
    const NodeId m = node_map[u];
    if (m == kInvalidNode) continue;
    if (m >= n)
      throw std::invalid_argument(
          "IncrementalPartitioner: node_map entry out of range");
    const PartId q = prev[u];
    if (q < 0 || q >= k)
      throw std::invalid_argument(
          "IncrementalPartitioner: previous partition is incomplete");
    p.set(m, q);
    ++projected;
  }

  // ---- 2. Seed new nodes greedily by connectivity. -----------------------
  // The engine always injects a pool-leased workspace here; local_ws is the
  // standalone-caller fallback and costs a cold allocation per call.
  Workspace local_ws;
  Workspace& ws = request.workspace != nullptr ? *request.workspace : local_ws;
  WorkspaceLease lease(ws);
  const Constraints& c = request.constraints;
  std::vector<Weight>& loads = ws.incremental.loads;
  std::vector<Weight>& part_conn = ws.incremental.part_conn;
  support::assign_tracked(loads, static_cast<std::size_t>(k), 0,
                          ws.incremental.stats);
  support::assign_tracked(part_conn, static_cast<std::size_t>(k), 0,
                          ws.incremental.stats);
  for (NodeId x = 0; x < n; ++x) {
    if (p[x] != kUnassigned) loads[static_cast<std::size_t>(p[x])] += g.node_weight(x);
  }
  NodeId fresh = 0;
  for (NodeId x = 0; x < n; ++x) {
    if (p[x] != kUnassigned) continue;
    std::fill(part_conn.begin(), part_conn.end(), Weight{0});
    const auto nbrs = g.neighbors(x);
    const auto wgts = g.edge_weights(x);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const PartId q = p[nbrs[i]];
      if (q != kUnassigned) part_conn[static_cast<std::size_t>(q)] += wgts[i];
    }
    const Weight wx = g.node_weight(x);
    // Capacity-respecting parts first; if every part is full, fall through
    // to an unconstrained round so the node is always placed (refinement
    // repairs what it can). Ties: connectivity, then load, then part id.
    PartId best = kUnassigned;
    for (int round = 0; round < 2 && best == kUnassigned; ++round) {
      for (PartId q = 0; q < k; ++q) {
        if (round == 0 &&
            loads[static_cast<std::size_t>(q)] + wx > c.rmax_of(q))
          continue;
        if (best == kUnassigned ||
            part_conn[static_cast<std::size_t>(q)] >
                part_conn[static_cast<std::size_t>(best)] ||
            (part_conn[static_cast<std::size_t>(q)] ==
                 part_conn[static_cast<std::size_t>(best)] &&
             loads[static_cast<std::size_t>(q)] <
                 loads[static_cast<std::size_t>(best)]))
          best = q;
      }
    }
    p.set(x, best);
    loads[static_cast<std::size_t>(best)] += wx;
    ++fresh;
  }
  // Projection covered survivors, the greedy loop covered everything else:
  // from here on the partition must be total, or FM below walks kUnassigned.
  PPN_DCHECK(p.complete());

  // ---- Warm-start quality gate. ------------------------------------------
  // MoveContext doubles as the O(n k) metrics pass here: its reset yields
  // the projected goodness and loads without allocating once warm.
  ws.move_ctx.reset(g, p, c);
  const Goodness projected_goodness = ws.move_ctx.goodness();
  // The imbalance gate only applies under resource budgets: there a skewed
  // warm start can sit in a violation local FM cannot climb out of. Without
  // budgets, imbalance is not part of the objective at all — the paper's
  // unconstrained baselines legitimately produce skewed low-cut partitions,
  // and declining on them would just forfeit the warm start for an equally
  // skewed scratch run.
  const bool resource_constrained =
      c.rmax != Constraints::kUnlimited || c.heterogeneous();
  if (resource_constrained) {
    Weight max_load = 0;
    for (PartId q = 0; q < k; ++q)
      max_load = std::max(max_load, ws.move_ctx.load(q));
    const double avg_load =
        static_cast<double>(g.total_node_weight()) / static_cast<double>(k);
    if (avg_load > 0 &&
        static_cast<double>(max_load) >
            options_.max_projected_imbalance * avg_load)
      return decline("projected partition too imbalanced");
  }

  if (stats != nullptr) {
    stats->projected = projected;
    stats->fresh = fresh;
    stats->projected_goodness = projected_goodness;
  }

  // ---- 3. Boundary-driven FM around the edit sites. ----------------------
  FmOptions fm;
  fm.max_passes = options_.refine_passes;
  fm.seed_boundary_only = true;
  support::Rng rng = support::Rng(request.seed).derive(kIncrementalSeedTag);
  constrained_fm_refine(g, p, c, fm, rng, ws);

  result.finalize(g, request.constraints);
  result.seconds = timer.seconds();
  return result;
}

std::optional<PartitionResult> IncrementalPartitioner::try_repartition(
    const graph::GraphDelta::Applied& applied, const Partition& prev,
    const PartitionRequest& request, IncrementalStats* stats) {
  return try_repartition(applied.graph, prev, applied.node_map,
                         applied.touched, request, stats);
}

std::optional<PartitionResult> IncrementalPartitioner::try_repartition_diffed(
    const Graph& base, const Graph& arriving, const Partition& prev,
    const PartitionRequest& request, IncrementalStats* stats) {
  const auto decline = [&](const char* reason) -> std::optional<PartitionResult> {
    if (stats != nullptr) {
      *stats = IncrementalStats{};
      stats->fell_back = true;
      stats->fallback_reason = reason;
    }
    return std::nullopt;
  };
  // A mismatched warm start declines instead of throwing: the admission
  // pipeline treats any decline as "run the full path", and a service loop
  // must survive a stale index entry.
  if (prev.size() != base.num_nodes())
    return decline("previous partition does not match the base graph");
  if (!prev.complete()) return decline("previous partition incomplete");

  const graph::GraphDelta delta = graph::diff(base, arriving);
  const std::size_t diff_ops = delta.num_ops();
  if (static_cast<double>(diff_ops) >
      options_.max_diff_ops_fraction *
          static_cast<double>(arriving.num_nodes()))
    return decline("diff too large");

  graph::GraphDelta::Applied applied = delta.apply(base);
  // Zero-invalid-reuse rail: the reconstruction must BE the arriving graph,
  // bit for bit. diff's invariant guarantees it; this exact comparison
  // makes a violation decline (full run) instead of corrupting an answer.
  if (!graph::bit_identical(applied.graph, arriving))
    return decline("diff reconstruction mismatch");

  // The reconstruction and `arriving` are interchangeable now; run on
  // `arriving` so the result indexes the caller's object.
  auto result = try_repartition(arriving, prev, applied.node_map,
                                applied.touched, request, stats);
  if (stats != nullptr) stats->diff_ops = diff_ops;
  return result;
}

PartitionResult IncrementalPartitioner::repartition(
    const Graph& g, const Partition& prev,
    std::span<const graph::NodeId> node_map,
    std::span<const graph::NodeId> touched, const PartitionRequest& request,
    IncrementalStats* stats) {
  if (auto r = try_repartition(g, prev, node_map, touched, request, stats))
    return *std::move(r);
  auto algo = make_partitioner(options_.fallback_algorithm);
  if (algo == nullptr)
    throw std::invalid_argument(
        "IncrementalPartitioner: unknown fallback algorithm '" +
        options_.fallback_algorithm + "'");
  return algo->run(g, request);
}

PartitionResult IncrementalPartitioner::repartition(
    const graph::GraphDelta::Applied& applied, const Partition& prev,
    const PartitionRequest& request, IncrementalStats* stats) {
  return repartition(applied.graph, prev, applied.node_map, applied.touched,
                     request, stats);
}

}  // namespace ppnpart::part
