#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace ppnpart::support {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "[debug]";
    case LogLevel::kInfo:
      return "[info ]";
    case LogLevel::kWarn:
      return "[warn ]";
    case LogLevel::kError:
      return "[error]";
    case LogLevel::kOff:
      return "[off  ]";
  }
  return "[?    ]";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "%s %s\n", prefix(level), message.c_str());
}

}  // namespace ppnpart::support
