#pragma once
// Exact minimum-cut k-way partitioning by branch and bound.
//
// The paper's introduction notes the problem "is possible to solve … in an
// exact manner via dynamic programming approaches [but] this is not the case
// when practical graphs are under examination". This module makes that
// trade-off measurable: on instances up to ~16 nodes it finds the true
// optimum (optionally under the Rmax/Bmax constraints), which the
// bench_exact_gap harness compares against GP's heuristic answer.
//
// Search: nodes in decreasing incident-weight order; canonical part-label
// symmetry breaking (node may open at most one new part); pruning on
// (a) partial cut >= incumbent, (b) load > Rmax, (c) any pairwise cut >
// Bmax — (b) and (c) are monotone in assignment order since all weights are
// positive, so pruning is safe.

#include <cstdint>

#include "partition/partition.hpp"
#include "partition/partitioner.hpp"

namespace ppnpart::part {

struct ExactOptions {
  /// Hard refusal threshold; beyond it the search space is hopeless.
  NodeId max_nodes = 20;
  /// Abort and report best-so-far (optimal=false) past this budget.
  double time_limit_seconds = 60.0;
  std::uint64_t max_states = 0;  // 0 = unlimited
  /// Require every part non-empty (otherwise the unconstrained optimum is
  /// the degenerate all-in-one-part assignment with cut 0).
  bool require_all_parts = true;
};

struct ExactResult {
  Partition partition;
  Weight cut = 0;
  bool found = false;    // a complete feasible assignment exists
  bool optimal = false;  // search finished (not truncated)
  std::uint64_t states_explored = 0;
  double seconds = 0;
};

/// Minimum-cut complete assignment honouring `c` (pass default-constructed
/// Constraints for the unconstrained optimum). Throws on n > max_nodes.
/// A fired `stop` token truncates the search like the time limit does
/// (best-so-far, optimal=false).
ExactResult exact_min_cut(const Graph& g, PartId k, const Constraints& c,
                          const ExactOptions& options = {},
                          const support::StopToken* stop = nullptr);

/// Adapter exposing the branch-and-bound search through the uniform
/// Partitioner interface so the registry and portfolio engine can race it
/// on tiny instances. Throws std::invalid_argument beyond
/// options().max_nodes and std::runtime_error when no complete assignment
/// exists; portfolio members that throw are recorded as failed, not fatal.
class ExactPartitioner : public Partitioner {
 public:
  explicit ExactPartitioner(ExactOptions options = {});

  std::string name() const override { return "Exact"; }
  PartitionResult run(const Graph& g, const PartitionRequest& request) override;

  const ExactOptions& options() const { return options_; }

 private:
  ExactOptions options_;
};

}  // namespace ppnpart::part
