// ppnpart — the command-line partitioner this paper describes as "a tool to
// automatically map tasks to FPGAs".
//
// Input sources (exactly one):
//   --graph FILE        METIS .graph file (node+edge weights supported)
//   --matrix FILE       dense symmetric adjacency matrix (the paper's
//                       MATLAB input convention)
//   --workload NAME     built-in PPN workload (see --list-workloads)
//   --paper N           paper experiment instance 1 | 2 | 3
//
// Core options:
//   --algorithm NAME    gp | metislike | nlevel | kl | spectral | tabu |
//                       annealing | genetic | exact | random   (default gp)
//   --k N               number of FPGAs / parts                (default 4)
//   --rmax W            per-FPGA resource budget               (default inf)
//   --bmax W            per-link bandwidth budget              (default inf)
//   --seed S            PRNG seed                              (default 1)
//
// Engine (portfolio) mode — any of these switches it on:
//   --portfolio SPEC    race a comma-separated portfolio of algorithms
//                       ("default" = gp,metislike,annealing,tabu; when
//                       omitted, --algorithm runs as a 1-member portfolio)
//   --time-budget-ms N  per-job wall-clock budget (cooperative)
//   --threads-per-job N shared-memory threads inside each partitioner run
//                       (default 1 = exact serial path, 0 = auto); the
//                       engine caps members × threads at the pool size.
//                       Deterministic mode (always on here) makes results
//                       identical at any thread count; also honoured in
//                       direct single-algorithm mode
//   --jobs N            batch N jobs with seeds seed..seed+N-1 and report
//                       the best answer plus engine throughput/cache stats
//   --similarity on|off similarity-aware admission (default off): arrivals
//                       near-identical to a recently served graph are
//                       diffed into a delta and warm-started off-thread
//                       instead of paying a full portfolio run; concurrent
//                       near-twins coalesce behind one full run; the engine
//                       stats line reports exact hits (cache_hits),
//                       near-hits, declines, deferred and parked
//
// Overload protection & fault injection (PR 8):
//   --queue-cap N       bounded admission: at most N stage-3 jobs pending;
//                       0 (default) = unbounded legacy behaviour. With a
//                       cap set, submit() never blocks — overflow is shed
//                       with a typed error, and rising queue depth walks
//                       the degradation ladder (full portfolio ->
//                       cheap-members-only -> GP-only -> projected answer)
//   --shed POLICY       reject_new | drop_oldest | deadline_aware
//                       (what a full queue does; default reject_new)
//   --faults SPEC       deterministic fault injection, e.g.
//                       "seed=42,rate=0.25,sites=member.run+cache.insert"
//                       ("off" disarms; sites=all = every seam). Injected
//                       failures take the same paths real ones do; the
//                       per-site check/fire counts print to stderr at exit
//
// Diff mode — reconstruct an edit script from two concrete graphs:
//   --diff OLD NEW      (positional METIS .graph files) print the minimal
//                       edit script turning OLD into NEW under stable-id
//                       alignment, in exactly the --delta replay grammar:
//                       `ppnpart --graph OLD --delta SCRIPT` replays it.
//                       The script is verified (replay reconstructs NEW
//                       bit-identically) before anything is printed; --out
//                       redirects the script to a file.
//
// Delta replay mode — evolving networks (PR 4):
//   --delta FILE        after a full initial run, replay an edit script
//                       against the input network; each `commit` applies
//                       the accumulated delta through Engine::repartition
//                       (incremental warm-started refinement, portfolio
//                       fallback past the thresholds) and reports one line.
//                       Script grammar, one op per line ('#' comments):
//                         addnode [W]      new process (id printed order:
//                                          n, n+1, ... per commit window)
//                         rmnode U         retire process U (strands edges)
//                         nodew U W        set resource weight
//                         addedge U V [W]  add W to channel (create at W)
//                         rmedge U V       delete channel
//                         setedge U V W    set channel weight
//                         commit           repartition now
//                       Ids refer to the current (post-previous-commit)
//                       graph; trailing ops auto-commit at EOF.
//
// Like the `summary` line, the `engine ...` stats line is machine-readable
// output and prints even under --quiet (which suppresses only the
// human-readable report).
//
// Outputs:
//   --out FILE          one part id per line (node order)
//   --dot FILE          colour-clustered DOT of the partitioned network
//   --summary           one-line machine-readable result (always printed)
//
// Observability (PR 6):
//   --trace FILE        Chrome trace_event JSON timeline of the whole run —
//                       per-job admission spans and decision records, member
//                       races, per-level coarsen/initial/refine phases; load
//                       in chrome://tracing or https://ui.perfetto.dev
//   --metrics           print the process metrics registry (admission-path
//                       counters, per-member win/loss, latency histograms)
//
// Exit codes: 0 feasible (or unconstrained), 2 infeasible, 1 usage error.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/portfolio.hpp"
#include "graph/diff.hpp"
#include "graph/io.hpp"
#include "partition/exact.hpp"
#include "partition/partitioner.hpp"
#include "partition/report.hpp"
#include "ppn/network.hpp"
#include "ppn/paper_instances.hpp"
#include "ppn/workloads.hpp"
#include "support/cli.hpp"
#include "support/fault_injection.hpp"
#include "support/metrics.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"
#include "viz/dot.hpp"

namespace {

using namespace ppnpart;

int fail(const char* message) {
  std::fprintf(stderr, "ppnpart: %s (try --help)\n", message);
  return 1;
}

/// Serializes a GraphDelta in the --delta replay grammar, in a replay-safe
/// order: node adds (minting extended ids in order), node reweights, edge
/// ops in script order, removals last — every op references a live node at
/// replay-build time, and apply() strands ops on removed endpoints
/// regardless of position, so the replay reproduces the delta exactly.
void emit_delta_script(std::ostream& out, const graph::GraphDelta& d) {
  for (const graph::Weight w : d.added_node_weights())
    out << "addnode " << w << "\n";
  for (const auto& [u, w] : d.node_weight_edits())
    out << "nodew " << u << " " << w << "\n";
  for (const auto& op : d.edge_edits()) {
    switch (op.kind) {
      case graph::GraphDelta::EdgeOpKind::kAdd:
        out << "addedge " << op.u << " " << op.v << " " << op.w << "\n";
        break;
      case graph::GraphDelta::EdgeOpKind::kRemove:
        out << "rmedge " << op.u << " " << op.v << "\n";
        break;
      case graph::GraphDelta::EdgeOpKind::kSet:
        out << "setedge " << op.u << " " << op.v << " " << op.w << "\n";
        break;
    }
  }
  for (const graph::NodeId u : d.removed_nodes()) out << "rmnode " << u << "\n";
  out << "commit\n";
}

/// --diff OLD NEW: reconstruct, verify, print. Returns the process exit
/// code.
int run_diff_mode(const std::string& old_path, const std::string& new_path,
                  const std::string& out_path) {
  auto read = [](const std::string& path, graph::Graph& g) -> int {
    auto result = graph::read_metis_file(path);
    if (!result) {
      std::fprintf(stderr, "ppnpart: %s: %s\n", path.c_str(),
                   result.status().message().c_str());
      return 1;
    }
    g = std::move(result).value();
    return 0;
  };
  graph::Graph old_g, new_g;
  if (int rc = read(old_path, old_g); rc != 0) return rc;
  if (int rc = read(new_path, new_g); rc != 0) return rc;

  const graph::GraphDelta d = graph::diff(old_g, new_g);
  // The replay contract, checked before a single line is printed: applying
  // the script to OLD must reconstruct NEW bit-identically.
  const graph::GraphDelta::Applied applied = d.apply(old_g);
  if (!graph::bit_identical(applied.graph, new_g)) {
    std::fprintf(stderr,
                 "ppnpart: internal error: diff replay does not reconstruct "
                 "'%s'\n",
                 new_path.c_str());
    return 1;
  }

  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) return fail("cannot open --out file");
  }
  std::ostream& out = out_path.empty() ? std::cout : file;
  out << "# ppnpart --diff " << old_path << " " << new_path << "\n"
      << "# replay with: ppnpart --graph " << old_path << " --delta THIS\n";
  emit_delta_script(out, d);

  std::fprintf(
      stderr,
      "ppnpart: diff %s (n=%u) -> %s (n=%u): %zu ops "
      "(+%u/-%u nodes, %zu edge ops)\n",
      old_path.c_str(), old_g.num_nodes(), new_path.c_str(),
      new_g.num_nodes(), d.num_ops(), d.nodes_added(), d.nodes_removed(),
      d.edge_ops());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args(
      "ppnpart — constraint-aware multi-FPGA process-network partitioner");
  args.add_string("graph", "", "METIS .graph input file");
  args.add_string("matrix", "", "dense adjacency-matrix input file");
  args.add_string("workload", "", "built-in workload name");
  args.add_int("paper", 0, "paper experiment instance (1|2|3)");
  args.add_flag("list-workloads", "print available workload names and exit");
  args.add_string("algorithm", "gp", "partitioning algorithm");
  args.add_int("k", 4, "number of parts (FPGAs)");
  args.add_int("rmax", 0, "per-FPGA resource budget (0 = unlimited)");
  args.add_int("bmax", 0, "per-link bandwidth budget (0 = unlimited)");
  args.add_int("seed", 1, "PRNG seed");
  args.add_string("portfolio", "",
                  "engine mode: comma-separated algorithms to race "
                  "('default' = gp,metislike,annealing,tabu)");
  args.add_int("time-budget-ms", 0,
               "engine mode: per-job wall-clock budget (0 = unlimited)");
  args.add_int("jobs", 1,
               "engine mode: batch N jobs with seeds seed..seed+N-1");
  args.add_int("threads-per-job", 1,
               "shared-memory threads per partitioner run (1 = serial, "
               "0 = auto); deterministic, so results do not depend on it");
  args.add_string("delta", "",
                  "replay an edit script against the input network "
                  "(incremental repartitioning per commit)");
  args.add_flag("diff",
                "emit the edit script turning positional OLD into NEW "
                "(METIS files), consumable by --delta");
  args.add_string("similarity", "off",
                  "engine mode: similarity-aware admission (on|off) — "
                  "near-identical arrivals are diffed and warm-started");
  args.add_int("queue-cap", 0,
               "engine mode: bounded admission queue capacity "
               "(0 = unbounded); overflow is shed with a typed error");
  args.add_string("shed", "reject_new",
                  "engine mode: full-queue policy — reject_new | "
                  "drop_oldest | deadline_aware");
  args.add_string("faults", "",
                  "deterministic fault injection spec: "
                  "seed=U,rate=F,sites=member.run+... ('off' disarms)");
  args.add_string("out", "", "write partition vector (one part id per line)");
  args.add_string("dot", "", "write colour-clustered DOT file");
  args.add_flag("quiet", "suppress the human-readable report");
  args.add_flag("report", "print the per-part / hot-pair analysis table");
  args.add_string("trace", "",
                  "record a Chrome trace_event JSON timeline of the run "
                  "(admission decisions, member races, per-level multilevel "
                  "phases) to FILE; open in chrome://tracing or Perfetto");
  args.add_flag("metrics",
                "print the process metrics registry (engine counters and "
                "latency histograms) after the run");

  if (auto status = args.parse(argc, argv); !status.is_ok()) {
    std::fprintf(stderr, "ppnpart: %s\n", status.message().c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.help_text().c_str());
    return 0;
  }
  if (args.flag("list-workloads")) {
    for (const std::string& name : ppn::workload_names())
      std::printf("%s\n", name.c_str());
    return 0;
  }

  // Tracing switches on before any work so admission spans from the very
  // first job land in the ring. Under PPN_TRACE_DISABLED nothing records
  // and the file written at exit is an empty (but valid) timeline.
  const std::string trace_path = args.get_string("trace");
  if (!trace_path.empty()) {
#ifdef PPN_TRACE_DISABLED
    std::fprintf(stderr,
                 "ppnpart: warning: tracing is compiled out "
                 "(PPNPART_TRACE_DISABLED); --trace will be empty\n");
#endif
    support::Tracer::global().set_enabled(true);
  }

  const std::string similarity_mode = args.get_string("similarity");
  if (similarity_mode != "on" && similarity_mode != "off")
    return fail("--similarity must be 'on' or 'off'");
  const bool similarity_on = similarity_mode == "on";

  // Overload protection + fault injection knobs, resolved before any work.
  const auto queue_cap =
      static_cast<std::size_t>(std::max<long long>(0, args.get_int("queue-cap")));
  const auto threads_per_job = static_cast<std::uint32_t>(
      std::max<long long>(0, args.get_int("threads-per-job")));
  auto shed_policy = engine::parse_shed_policy(args.get_string("shed"));
  if (!shed_policy.is_ok()) {
    std::fprintf(stderr, "ppnpart: --shed: %s\n",
                 shed_policy.message().c_str());
    return 1;
  }
  bool faults_armed = false;
  if (const std::string faults_spec = args.get_string("faults");
      !faults_spec.empty()) {
    auto plan = support::parse_fault_plan(faults_spec);
    if (!plan.is_ok()) {
      std::fprintf(stderr, "ppnpart: --faults: %s\n",
                   plan.message().c_str());
      return 1;
    }
    if (plan.value().site_mask != 0) {
      if (!support::faults_compiled_in())
        std::fprintf(stderr,
                     "ppnpart: warning: fault injection is compiled out "
                     "(PPNPART_FAULTS_DISABLED); --faults has no effect\n");
      support::FaultInjector::global().arm(plan.value());
      faults_armed = true;
    }
  }

  // ---- Diff mode: two positional graph files, no partitioning at all. ---
  if (args.flag("diff")) {
    if (args.positional().size() != 2)
      return fail("--diff requires two positional graph files: OLD NEW");
    return run_diff_mode(args.positional()[0], args.positional()[1],
                         args.get_string("out"));
  }

  // ---- Resolve the input to a graph (and a network when we have one). ---
  int sources = 0;
  for (const char* opt : {"graph", "matrix", "workload"})
    sources += args.get_string(opt).empty() ? 0 : 1;
  sources += args.get_int("paper") != 0 ? 1 : 0;
  if (sources != 1)
    return fail("exactly one of --graph/--matrix/--workload/--paper required");

  graph::Graph g;
  ppn::ProcessNetwork network;  // populated when the source is a PPN
  bool have_network = false;
  part::Constraints constraints;
  auto k = static_cast<part::PartId>(args.get_int("k"));

  if (!args.get_string("graph").empty()) {
    auto result = graph::read_metis_file(args.get_string("graph"));
    if (!result) {
      // to_string() keeps the code visible (UNAVAILABLE: missing file vs
      // INVALID_ARGUMENT: malformed contents want different user fixes).
      std::fprintf(stderr, "ppnpart: %s\n",
                   result.status().to_string().c_str());
      return 1;
    }
    g = std::move(result).value();
  } else if (!args.get_string("matrix").empty()) {
    std::ifstream in(args.get_string("matrix"));
    if (!in) return fail("cannot open --matrix file");
    auto result = graph::read_adjacency_matrix(in);
    if (!result) {
      std::fprintf(stderr, "ppnpart: %s\n",
                   result.status().to_string().c_str());
      return 1;
    }
    g = std::move(result).value();
  } else if (!args.get_string("workload").empty()) {
    try {
      network = ppn::make_workload(args.get_string("workload"));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ppnpart: %s\n", e.what());
      return 1;
    }
    g = ppn::to_graph(network);
    have_network = true;
  } else {
    const int index = static_cast<int>(args.get_int("paper"));
    if (index < 1 || index > 3) return fail("--paper must be 1, 2 or 3");
    ppn::PaperInstance inst = ppn::paper_instance(index);
    network = std::move(inst.network);
    g = std::move(inst.graph);
    constraints = inst.constraints;  // defaults; --rmax/--bmax override
    k = inst.k;
    have_network = true;
  }

  if (args.get_int("k") != 4 || k <= 0)
    k = static_cast<part::PartId>(args.get_int("k"));
  if (k <= 0) return fail("--k must be positive");
  if (args.get_int("rmax") > 0) constraints.rmax = args.get_int("rmax");
  if (args.get_int("bmax") > 0) constraints.bmax = args.get_int("bmax");

  // ---- Run. --------------------------------------------------------------
  part::PartitionRequest request;
  request.k = k;
  request.constraints = constraints;
  request.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  // Direct mode honours the flag as-is; engine mode overrides per member
  // with the capped Engine::threads_per_job() value.
  request.threads = threads_per_job;

  const std::string algo_name = args.get_string("algorithm");
  const int num_jobs = std::max(1, static_cast<int>(args.get_int("jobs")));
  const bool engine_mode = !args.get_string("portfolio").empty() ||
                           args.get_int("time-budget-ms") > 0 || num_jobs > 1;
  part::PartitionResult result;
  try {
    if (!args.get_string("delta").empty()) {
      // ---- Delta replay: evolving network, incremental repartitioning. ---
      if (num_jobs > 1)
        return fail("--delta replays one evolving job; it cannot be "
                    "combined with --jobs");
      std::ifstream in(args.get_string("delta"));
      if (!in) return fail("cannot open --delta file");
      std::string spec = args.get_string("portfolio");
      if (spec.empty()) spec = algo_name;
      auto portfolio = engine::Portfolio::parse(spec);
      if (!portfolio.is_ok()) {
        std::fprintf(stderr, "ppnpart: %s\n", portfolio.message().c_str());
        return 1;
      }
      engine::EngineOptions eopts;
      eopts.portfolio = portfolio.value();
      eopts.time_budget_ms =
          static_cast<double>(args.get_int("time-budget-ms"));
      eopts.similarity.enabled = similarity_on;
      eopts.queue_capacity = queue_cap;
      eopts.threads_per_job = threads_per_job;
      eopts.shed_policy = shed_policy.value();
      engine::Engine eng(eopts);

      auto shared = std::make_shared<const graph::Graph>(std::move(g));
      auto initial = eng.run_one(shared, request);
      if (initial.winner.empty()) {
        std::fprintf(stderr, "ppnpart: every portfolio member failed\n");
        return 1;
      }
      part::PartitionResult current = initial.best;
      if (!args.flag("quiet")) {
        std::printf("portfolio : %s\n", eopts.portfolio.to_string().c_str());
        std::printf("initial   : winner=%s %s\n", initial.winner.c_str(),
                    part::describe(initial.best.metrics, constraints).c_str());
      }

      graph::GraphDelta delta(*shared);
      int step = 0;
      const auto commit = [&]() {
        if (delta.empty()) return;
        const std::size_t ops = delta.num_ops();
        const engine::RepartitionOutcome rep =
            eng.repartition(engine::Job{shared, request}, delta, current);
        shared = rep.graph;
        current = rep.outcome.best;
        if (!args.flag("quiet")) {
          std::printf(
              "delta %-3d : ops=%zu nodes=%u path=%s %s%s\n", step, ops,
              shared->num_nodes(),
              rep.incremental ? "incremental" : "fallback",
              part::describe(current.metrics, constraints).c_str(),
              rep.outcome.from_cache ? " [cache]" : "");
        }
        delta = graph::GraphDelta(*shared);
        ++step;
      };
      std::string line;
      while (std::getline(in, line)) {
        if (const auto hash = line.find('#'); hash != std::string::npos)
          line.resize(hash);
        // Strict tokenization: every operand must be a whole integer and
        // the arity must match exactly — a typo must fail the replay, not
        // silently substitute a default weight.
        std::istringstream ls(line);
        std::vector<std::string> tok;
        for (std::string t; ls >> t;) tok.push_back(std::move(t));
        if (tok.empty()) continue;  // blank line
        long long a = 0, b = 0, c = 0;
        const auto num = [&](std::size_t i, long long& out) {
          char* end = nullptr;
          out = std::strtoll(tok[i].c_str(), &end, 10);
          return end != tok[i].c_str() && *end == '\0';
        };
        const auto node = [](long long x) {
          return static_cast<graph::NodeId>(x);
        };
        const std::string& op = tok[0];
        if (op == "commit" && tok.size() == 1) {
          commit();
        } else if (op == "addnode" &&
                   (tok.size() == 1 || (tok.size() == 2 && num(1, a)))) {
          delta.add_node(tok.size() == 2 ? a : 1);
        } else if (op == "rmnode" && tok.size() == 2 && num(1, a)) {
          delta.remove_node(node(a));
        } else if (op == "nodew" && tok.size() == 3 && num(1, a) &&
                   num(2, b)) {
          delta.set_node_weight(node(a), b);
        } else if (op == "addedge" && tok.size() >= 3 && tok.size() <= 4 &&
                   num(1, a) && num(2, b) &&
                   (tok.size() == 3 || num(3, c))) {
          delta.add_edge(node(a), node(b), tok.size() == 4 ? c : 1);
        } else if (op == "rmedge" && tok.size() == 3 && num(1, a) &&
                   num(2, b)) {
          delta.remove_edge(node(a), node(b));
        } else if (op == "setedge" && tok.size() == 4 && num(1, a) &&
                   num(2, b) && num(3, c)) {
          delta.set_edge_weight(node(a), node(b), c);
        } else {
          std::fprintf(stderr, "ppnpart: bad --delta line: '%s'\n",
                       line.c_str());
          return 1;
        }
      }
      commit();  // trailing ops auto-commit

      const engine::EngineStats stats = eng.stats();
      std::printf(
          "engine deltas=%d threads_per_job=%u incremental=%llu "
          "fallbacks=%llu repart_cache_hits=%llu ws_growths=%llu\n",
          step, eng.threads_per_job(),
          static_cast<unsigned long long>(stats.repartitions_incremental),
          static_cast<unsigned long long>(stats.repartitions_fallback),
          static_cast<unsigned long long>(stats.repartition_cache_hits),
          static_cast<unsigned long long>(stats.repartition_ws_growths));
      result = std::move(current);
      g = *shared;             // final network for the report/outputs below
      have_network = false;    // node set may have changed; re-derive
    } else if (engine_mode) {
      // ---- Portfolio engine: race algorithms, batch seeds. --------------
      // No --portfolio but engine mode via --jobs/--time-budget-ms: honour
      // the requested --algorithm as a one-member portfolio instead of
      // silently substituting the default racing set.
      std::string spec = args.get_string("portfolio");
      if (spec.empty()) spec = algo_name;
      auto portfolio = engine::Portfolio::parse(spec);
      if (!portfolio.is_ok()) {
        std::fprintf(stderr, "ppnpart: %s\n", portfolio.message().c_str());
        return 1;
      }
      engine::EngineOptions eopts;
      eopts.portfolio = portfolio.value();
      eopts.time_budget_ms =
          static_cast<double>(args.get_int("time-budget-ms"));
      eopts.similarity.enabled = similarity_on;
      eopts.queue_capacity = queue_cap;
      eopts.threads_per_job = threads_per_job;
      eopts.shed_policy = shed_policy.value();
      engine::Engine eng(eopts);

      // One shared graph for the whole batch: N jobs hold one copy, the
      // engine fingerprints it once, and the coarsening cache shares the
      // multilevel hierarchy across every job and member.
      const auto shared_graph = std::make_shared<const graph::Graph>(g);
      std::vector<engine::Job> batch;
      std::vector<std::uint64_t> job_seeds;
      batch.reserve(num_jobs);
      job_seeds.reserve(num_jobs);
      for (int j = 0; j < num_jobs; ++j) {
        engine::Job job{shared_graph, request};
        job.request.seed = request.seed + static_cast<std::uint64_t>(j);
        job_seeds.push_back(job.request.seed);
        batch.push_back(std::move(job));
      }
      support::Timer batch_timer;
      const auto outcomes = eng.run_batch(std::move(batch));
      const double batch_seconds = batch_timer.seconds();

      // Best job across the batch; jobs without an answer (shed with a
      // typed error, or every member failed) must not be compared.
      std::size_t best_job = outcomes.size();
      for (std::size_t j = 0; j < outcomes.size(); ++j) {
        if (outcomes[j].winner.empty()) continue;
        if (best_job == outcomes.size() ||
            part::goodness_of(outcomes[j].best) <
                part::goodness_of(outcomes[best_job].best))
          best_job = j;
      }
      if (best_job == outcomes.size()) {
        // Branch on WHY: resource exhaustion asks for a retry with a larger
        // --queue-cap (or less load); an internal error does not.
        const support::StatusCode code = outcomes.empty()
                                             ? support::StatusCode::kInternal
                                             : outcomes[0].status.code();
        if (code == support::StatusCode::kResourceExhausted ||
            code == support::StatusCode::kDeadlineExceeded)
          std::fprintf(stderr,
                       "ppnpart: every job was shed (%s) — raise "
                       "--queue-cap or reduce --jobs\n",
                       support::to_string(code));
        else
          std::fprintf(stderr, "ppnpart: every portfolio member failed\n");
        return 1;
      }
      const engine::PortfolioOutcome& winner_out = outcomes[best_job];
      result = winner_out.best;

      if (!args.flag("quiet")) {
        std::printf("portfolio : %s\n", eopts.portfolio.to_string().c_str());
        for (std::size_t j = 0; j < outcomes.size(); ++j) {
          if (outcomes[j].winner.empty()) {
            // No answer: the typed status says why (shed queue, expired
            // deadline, every member failed).
            std::printf("job %-5zu : seed=%llu error=%s\n", j,
                        static_cast<unsigned long long>(job_seeds[j]),
                        outcomes[j].status.to_string().c_str());
            continue;
          }
          const char* rung_tag =
              outcomes[j].decision.rung ==
                      engine::AdmissionDecision::DegradeRung::kFull
                  ? ""
                  : " [degraded]";
          std::printf(
              "job %-5zu : seed=%llu winner=%s %s%s%s%s\n", j,
              static_cast<unsigned long long>(job_seeds[j]),
              outcomes[j].winner.c_str(),
              part::describe(outcomes[j].best.metrics, constraints).c_str(),
              outcomes[j].from_cache ? " [cache]" : "",
              outcomes[j].similarity ? " [similarity]" : "", rung_tag);
        }
      }
      const engine::EngineStats stats = eng.stats();
      // Admission counters: exact hits are cache_hits, near-hits are
      // similarity warm starts, declines are probes routed to the full
      // path; sim_deferred counts probe-time matches whose warm start was
      // handed straight to the pool, sim_parked counts near-twin arrivals
      // that coalesced behind an in-flight leader (disjoint; parked
      // followers' warm starts also run on the pool once the leader
      // lands). sim_* stay 0 under --similarity off.
      std::printf(
          "engine jobs=%zu threads_per_job=%u seconds=%.4f throughput=%.2f "
          "cache_hits=%llu "
          "members_run=%llu members_skipped=%llu members_failed=%llu "
          "coalesced=%llu fingerprints=%llu coarsen_hits=%llu "
          "coarsen_builds=%llu sim_probes=%llu sim_near_hits=%llu "
          "sim_declines=%llu sim_deferred=%llu sim_parked=%llu "
          "rejected=%llu shed=%llu degraded=%llu\n",
          outcomes.size(), eng.threads_per_job(), batch_seconds,
          batch_seconds > 0 ? outcomes.size() / batch_seconds : 0.0,
          static_cast<unsigned long long>(stats.cache.hits),
          static_cast<unsigned long long>(stats.members_run),
          static_cast<unsigned long long>(stats.members_skipped),
          static_cast<unsigned long long>(stats.members_failed),
          static_cast<unsigned long long>(stats.jobs_coalesced),
          static_cast<unsigned long long>(stats.graph_fingerprints_computed),
          static_cast<unsigned long long>(stats.coarsening.hits),
          static_cast<unsigned long long>(stats.coarsening.insertions),
          static_cast<unsigned long long>(stats.similarity.probes),
          static_cast<unsigned long long>(stats.similarity.near_hits),
          static_cast<unsigned long long>(stats.similarity.declines),
          static_cast<unsigned long long>(stats.similarity.deferred),
          static_cast<unsigned long long>(stats.similarity.parked),
          static_cast<unsigned long long>(stats.jobs_rejected),
          static_cast<unsigned long long>(stats.jobs_shed),
          static_cast<unsigned long long>(stats.jobs_degraded));
    } else if (algo_name == "exact") {
      part::ExactOptions exact_opts;
      const part::ExactResult exact =
          part::exact_min_cut(g, k, constraints, exact_opts);
      if (!exact.found) {
        std::fprintf(stderr, "ppnpart: exact search found no assignment\n");
        return 2;
      }
      result.partition = exact.partition;
      result.algorithm = "Exact";
      result.seconds = exact.seconds;
      result.finalize(g, constraints);
    } else {
      auto algo = part::make_partitioner(algo_name);
      if (!algo) return fail("unknown --algorithm");
      result = algo->run(g, request);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ppnpart: %s\n", e.what());
    return 1;
  }

  // ---- Report. -------------------------------------------------------------
  if (!args.flag("quiet")) {
    std::printf("algorithm : %s\n", result.algorithm.c_str());
    std::printf("graph     : n=%u m=%llu\n", g.num_nodes(),
                static_cast<unsigned long long>(g.num_edges()));
    std::printf("request   : k=%d rmax=%s bmax=%s seed=%llu\n", k,
                constraints.rmax == part::Constraints::kUnlimited
                    ? "inf"
                    : std::to_string(constraints.rmax).c_str(),
                constraints.bmax == part::Constraints::kUnlimited
                    ? "inf"
                    : std::to_string(constraints.bmax).c_str(),
                static_cast<unsigned long long>(request.seed));
    std::printf("result    : %s\n",
                part::describe(result.metrics, constraints).c_str());
    std::printf("time      : %.4fs\n", result.seconds);
  }
  if (args.flag("report")) {
    std::printf("%s", part::analyze(g, result.partition, constraints)
                          .to_string()
                          .c_str());
  }
  std::printf(
      "summary cut=%lld max_load=%lld max_pairwise=%lld feasible=%d "
      "seconds=%.4f\n",
      static_cast<long long>(result.metrics.total_cut),
      static_cast<long long>(result.metrics.max_load),
      static_cast<long long>(result.metrics.max_pairwise_cut),
      result.feasible ? 1 : 0, result.seconds);

  // ---- Optional outputs. ---------------------------------------------------
  if (!args.get_string("out").empty()) {
    std::ofstream out(args.get_string("out"));
    if (!out) return fail("cannot open --out file");
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u)
      out << result.partition[u] << "\n";
  }
  if (!args.get_string("dot").empty()) {
    if (!have_network) network = ppn::from_graph(g, "input");
    const auto status = viz::write_partitioned_dot_file(
        args.get_string("dot"), network, result.partition);
    if (!status.is_ok()) {
      std::fprintf(stderr, "ppnpart: %s\n", status.message().c_str());
      return 1;
    }
  }

  // ---- Observability outputs. ----------------------------------------------
  if (!trace_path.empty()) {
    std::ofstream trace_out(trace_path);
    if (!trace_out) return fail("cannot open --trace file");
    support::Tracer& tracer = support::Tracer::global();
    tracer.write_chrome_trace(trace_out);
    std::fprintf(stderr,
                 "ppnpart: wrote %s (%llu events recorded, %llu lost to ring "
                 "wraparound)\n",
                 trace_path.c_str(),
                 static_cast<unsigned long long>(tracer.recorded()),
                 static_cast<unsigned long long>(tracer.overwritten()));
  }
  if (args.flag("metrics")) {
    std::printf("%s", support::MetricsRegistry::global()
                          .snapshot()
                          .to_string()
                          .c_str());
  }
  if (faults_armed) {
    // Per-site check/fire tallies, so a chaos run shows which seams the
    // seeded schedule actually hit (stderr: diagnostics, not results).
    const auto counts = support::FaultInjector::global().counts();
    for (std::size_t i = 0; i < counts.size(); ++i)
      std::fprintf(stderr, "ppnpart: faults %-14s checks=%llu fired=%llu\n",
                   support::to_string(static_cast<support::FaultSite>(i)),
                   static_cast<unsigned long long>(counts[i].checks),
                   static_cast<unsigned long long>(counts[i].fired));
  }
  return result.feasible || constraints.unconstrained() ? 0 : 2;
}
