#pragma once
// Wall-clock timing helpers (header-only).

#include <chrono>

namespace ppnpart::support {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }
  double microseconds() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time into a double on scope exit; for ad-hoc profiling.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& sink) : sink_(sink) {}
  ~ScopedAccumulator() { sink_ += timer_.seconds(); }
  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  double& sink_;
  Timer timer_;
};

}  // namespace ppnpart::support
