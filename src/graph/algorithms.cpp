#include "graph/algorithms.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace ppnpart::graph {

std::vector<NodeId> bfs_order(const Graph& g, NodeId source) {
  std::vector<NodeId> order;
  if (source >= g.num_nodes()) return order;
  std::vector<bool> seen(g.num_nodes(), false);
  std::queue<NodeId> queue;
  queue.push(source);
  seen[source] = true;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    order.push_back(u);
    for (NodeId v : g.neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        queue.push(v);
      }
    }
  }
  return order;
}

Components connected_components(const Graph& g) {
  Components out;
  out.component_of.assign(g.num_nodes(), std::numeric_limits<std::uint32_t>::max());
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (out.component_of[s] != std::numeric_limits<std::uint32_t>::max())
      continue;
    const std::uint32_t id = out.count++;
    std::queue<NodeId> queue;
    queue.push(s);
    out.component_of[s] = id;
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop();
      for (NodeId v : g.neighbors(u)) {
        if (out.component_of[v] == std::numeric_limits<std::uint32_t>::max()) {
          out.component_of[v] = id;
          queue.push(v);
        }
      }
    }
  }
  return out;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  return connected_components(g).count == 1;
}

Subgraph induced_subgraph(const Graph& g, const std::vector<NodeId>& nodes) {
  std::vector<NodeId> new_id(g.num_nodes(), kInvalidNode);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] >= g.num_nodes())
      throw std::out_of_range("induced_subgraph: node out of range");
    if (new_id[nodes[i]] != kInvalidNode)
      throw std::invalid_argument("induced_subgraph: duplicate node");
    new_id[nodes[i]] = static_cast<NodeId>(i);
  }
  GraphBuilder builder(static_cast<NodeId>(nodes.size()));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeId u = nodes[i];
    builder.set_node_weight(static_cast<NodeId>(i), g.node_weight(u));
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      const NodeId v = nbrs[j];
      if (new_id[v] != kInvalidNode && u < v) {
        builder.add_edge(static_cast<NodeId>(i), new_id[v], wgts[j]);
      }
    }
  }
  return Subgraph{builder.build(), nodes};
}

Graph permute(const Graph& g, const std::vector<NodeId>& perm) {
  if (perm.size() != g.num_nodes())
    throw std::invalid_argument("permute: size mismatch");
  std::vector<bool> seen(perm.size(), false);
  for (NodeId p : perm) {
    if (p >= perm.size() || seen[p])
      throw std::invalid_argument("permute: not a permutation");
    seen[p] = true;
  }
  GraphBuilder builder(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    builder.set_node_weight(perm[u], g.node_weight(u));
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      if (u < nbrs[j]) builder.add_edge(perm[u], perm[nbrs[j]], wgts[j]);
    }
  }
  return builder.build();
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  if (g.num_nodes() == 0) return s;
  s.min_degree = std::numeric_limits<std::uint32_t>::max();
  s.min_node_weight = std::numeric_limits<Weight>::max();
  s.min_edge_weight = std::numeric_limits<Weight>::max();
  std::uint64_t degree_sum = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const std::uint32_t d = g.degree(u);
    degree_sum += d;
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
    s.min_node_weight = std::min(s.min_node_weight, g.node_weight(u));
    s.max_node_weight = std::max(s.max_node_weight, g.node_weight(u));
    for (Weight w : g.edge_weights(u)) {
      s.min_edge_weight = std::min(s.min_edge_weight, w);
      s.max_edge_weight = std::max(s.max_edge_weight, w);
    }
  }
  if (g.num_edges() == 0) {
    s.min_edge_weight = 0;
    s.max_edge_weight = 0;
  }
  s.mean_degree = static_cast<double>(degree_sum) / g.num_nodes();
  return s;
}

}  // namespace ppnpart::graph
