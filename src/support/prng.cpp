#include "support/prng.hpp"

#include <numeric>

namespace ppnpart::support {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  // Seed the full 256-bit state from splitmix64, per the xoshiro authors'
  // recommendation; guards against the all-zero state.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

std::size_t Rng::uniform_index(std::size_t n) {
  // Lemire's nearly-divisionless bounded generation with rejection; unbiased.
  const std::uint64_t bound = n;
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::size_t>(m >> 64);
}

double Rng::uniform_real() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform_real();
}

bool Rng::bernoulli(double p) { return uniform_real() < p; }

Rng Rng::derive(std::uint64_t tag) const {
  std::uint64_t mix = seed_ ^ (0x517cc1b727220a95ull * (tag + 1));
  return Rng(splitmix64(mix));
}

std::vector<std::uint32_t> Rng::permutation(std::size_t n) {
  std::vector<std::uint32_t> p;
  permutation_into(n, p);
  return p;
}

void Rng::permutation_into(std::size_t n, std::vector<std::uint32_t>& out) {
  out.resize(n);
  std::iota(out.begin(), out.end(), 0u);
  shuffle(out);
}

}  // namespace ppnpart::support
