#pragma once
// Thread-safe LRU cache (header-only, generic over the value type).
//
// Shared by the engine's result cache and the partition layer's coarsening
// cache: a small mutex-protected LRU map keyed by 64-bit fingerprints that
// turns repeated expensive computations into O(1) lookups. Contention is
// irrelevant at this granularity — one lookup per job against jobs that cost
// milliseconds to seconds to compute.

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

namespace ppnpart::support {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

template <typename Value>
class LruCache {
 public:
  /// capacity 0 disables the cache entirely (lookups miss, inserts drop).
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  std::optional<Value> lookup(std::uint64_t key) {
    std::lock_guard<std::mutex> lock(mutex_);
    // A disabled cache still sees the traffic: count the miss so hit_rate()
    // and the engine stats reflect every lookup that had to recompute.
    if (capacity_ == 0) {
      ++stats_.misses;
      return std::nullopt;
    }
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    ++stats_.hits;
    return it->second->second;
  }

  void insert(std::uint64_t key, Value value) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (capacity_ == 0) return;
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.emplace_front(key, std::move(value));
    index_[key] = lru_.begin();
    ++stats_.insertions;
    if (lru_.size() > capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
      ++stats_.evictions;
    }
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
  }

  CacheStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<std::pair<std::uint64_t, Value>> lru_;  // front = most recent
  std::unordered_map<std::uint64_t,
                     typename std::list<std::pair<std::uint64_t, Value>>::iterator>
      index_;
  CacheStats stats_;
};

}  // namespace ppnpart::support
