#include "partition/matching.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "support/strings.hpp"

namespace ppnpart::part {

namespace {

Matching identity_matching(NodeId n) {
  Matching m(n);
  std::iota(m.begin(), m.end(), NodeId{0});
  return m;
}

}  // namespace

Matching random_maximal_matching(const Graph& g, support::Rng& rng) {
  const NodeId n = g.num_nodes();
  Matching match = identity_matching(n);
  const auto order = rng.permutation(n);
  std::vector<NodeId> candidates;
  for (NodeId u_idx : order) {
    const NodeId u = u_idx;
    if (match[u] != u) continue;
    candidates.clear();
    for (NodeId v : g.neighbors(u)) {
      if (match[v] == v) candidates.push_back(v);
    }
    if (candidates.empty()) continue;
    const NodeId v = candidates[rng.uniform_index(candidates.size())];
    match[u] = v;
    match[v] = u;
  }
  return match;
}

Matching heavy_edge_matching(const Graph& g, support::Rng& rng,
                             bool globally_sorted) {
  const NodeId n = g.num_nodes();
  Matching match = identity_matching(n);
  if (globally_sorted) {
    // Literal description from the paper: sort all edges by weight
    // descending, sweep, match edges whose both endpoints are free.
    struct E {
      Weight w;
      NodeId u, v;
    };
    std::vector<E> edges;
    edges.reserve(g.num_edges());
    for (NodeId u = 0; u < n; ++u) {
      auto nbrs = g.neighbors(u);
      auto wgts = g.edge_weights(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (u < nbrs[i]) edges.push_back({wgts[i], u, nbrs[i]});
      }
    }
    // Random tie-break among equal weights keeps the heuristic stochastic
    // across V-cycles, as the multi-restart design expects.
    rng.shuffle(edges);
    std::stable_sort(edges.begin(), edges.end(),
                     [](const E& a, const E& b) { return a.w > b.w; });
    for (const E& e : edges) {
      if (match[e.u] == e.u && match[e.v] == e.v) {
        match[e.u] = e.v;
        match[e.v] = e.u;
      }
    }
    return match;
  }
  // Node-local HEM (Karypis-Kumar style): random visit order, pick the
  // heaviest free incident edge.
  const auto order = rng.permutation(n);
  for (NodeId u : order) {
    if (match[u] != u) continue;
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    NodeId best = graph::kInvalidNode;
    Weight best_w = std::numeric_limits<Weight>::min();
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i];
      if (match[v] != v) continue;
      if (wgts[i] > best_w) {
        best_w = wgts[i];
        best = v;
      }
    }
    if (best != graph::kInvalidNode) {
      match[u] = best;
      match[best] = u;
    }
  }
  return match;
}

Matching kmeans_matching(const Graph& g, support::Rng& rng,
                         const KMeansMatchingOptions& options) {
  const NodeId n = g.num_nodes();
  Matching match = identity_matching(n);
  if (n < 2) return match;

  std::uint32_t k = options.clusters;
  if (k == 0) k = std::max<std::uint32_t>(1, (n + 7) / 8);
  k = std::min<std::uint32_t>(k, n);

  // --- 1-D k-means on node weight. --------------------------------------
  // 1-D structure makes the usual O(n*k) Lloyd step unnecessary: with
  // centroids kept sorted, the nearest centroid of a weight w is found by
  // binary search over the k-1 midpoints, so one iteration costs
  // O(n log k). Seeding uses jittered quantiles of the weight distribution
  // (the 1-D equivalent of k-means++ spread, at O(n log n) once).
  std::vector<double> centroid(k);
  {
    std::vector<double> weight_of(n);
    for (NodeId u = 0; u < n; ++u)
      weight_of[u] = static_cast<double>(g.node_weight(u));

    std::vector<double> sorted_w = weight_of;
    std::sort(sorted_w.begin(), sorted_w.end());
    for (std::uint32_t c = 0; c < k; ++c) {
      const double jitter = rng.uniform_real(-0.25, 0.25);
      const double pos =
          (static_cast<double>(c) + 0.5 + jitter) * n / static_cast<double>(k);
      const auto idx = static_cast<std::size_t>(std::clamp(
          pos, 0.0, static_cast<double>(n - 1)));
      centroid[c] = sorted_w[idx];
    }
    std::sort(centroid.begin(), centroid.end());

    std::vector<std::uint32_t> cluster_of(n, 0);
    std::vector<double> midpoints(k > 0 ? k - 1 : 0);
    for (std::uint32_t it = 0; it < options.max_iterations; ++it) {
      for (std::uint32_t c = 0; c + 1 < k; ++c)
        midpoints[c] = 0.5 * (centroid[c] + centroid[c + 1]);
      bool changed = false;
      std::vector<double> sum(k, 0);
      std::vector<std::uint32_t> cnt(k, 0);
      for (NodeId u = 0; u < n; ++u) {
        const auto best = static_cast<std::uint32_t>(
            std::upper_bound(midpoints.begin(), midpoints.end(),
                             weight_of[u]) -
            midpoints.begin());
        if (cluster_of[u] != best) {
          cluster_of[u] = best;
          changed = true;
        }
        sum[best] += weight_of[u];
        ++cnt[best];
      }
      for (std::uint32_t c = 0; c < k; ++c) {
        if (cnt[c] > 0) centroid[c] = sum[c] / cnt[c];
      }
      // Means of disjoint sorted intervals stay sorted; re-sort only to
      // guard against empty-cluster carry-overs.
      std::sort(centroid.begin(), centroid.end());
      if (!changed) break;
    }

    // --- Match within clusters, heaviest incident edge first. ----------
    struct E {
      Weight w;
      NodeId u, v;
    };
    std::vector<E> intra;
    for (NodeId u = 0; u < n; ++u) {
      auto nbrs = g.neighbors(u);
      auto wgts = g.edge_weights(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const NodeId v = nbrs[i];
        if (u < v && cluster_of[u] == cluster_of[v]) {
          intra.push_back({wgts[i], u, v});
        }
      }
    }
    rng.shuffle(intra);
    std::stable_sort(intra.begin(), intra.end(),
                     [](const E& a, const E& b) { return a.w > b.w; });
    for (const E& e : intra) {
      if (match[e.u] == e.u && match[e.v] == e.v) {
        match[e.u] = e.v;
        match[e.v] = e.u;
      }
    }
  }
  return match;
}

Weight matched_edge_weight(const Graph& g, const Matching& m) {
  Weight sum = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const NodeId v = m[u];
    if (v != u && u < v) sum += g.edge_weight_between(u, v);
  }
  return sum;
}

std::uint32_t matched_pair_count(const Matching& m) {
  std::uint32_t count = 0;
  for (NodeId u = 0; u < m.size(); ++u) {
    if (m[u] != u && u < m[u]) ++count;
  }
  return count;
}

std::string validate_matching(const Graph& g, const Matching& m) {
  using support::str_format;
  if (m.size() != g.num_nodes()) return "matching size mismatch";
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const NodeId v = m[u];
    if (v >= g.num_nodes()) return str_format("match[%u] out of range", u);
    if (m[v] != u) return str_format("matching not symmetric at %u", u);
    if (v != u && !g.has_edge(u, v))
      return str_format("matched pair (%u, %u) not adjacent", u, v);
  }
  return {};
}

}  // namespace ppnpart::part
