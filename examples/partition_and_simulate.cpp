// Head-to-head on a user-supplied or generated process network: partition
// with every algorithm in the library (GP, MetisLike, Spectral, Random),
// check the paper's two constraints, and simulate each mapping's sustained
// throughput on the target platform.
//
//   ./partition_and_simulate [--nodes 96] [--k 4] [--seed 3]
//   ./partition_and_simulate --metis-file app.graph --k 4 --rmax 800 --bmax 30

#include <cstdio>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "mapping/mapper.hpp"
#include "partition/gp.hpp"
#include "partition/metislike.hpp"
#include "partition/spectral.hpp"
#include "ppn/network.hpp"
#include "sim/simulator.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace ppnpart;

  support::ArgParser args(
      "compare all partitioners on one process network, with simulation");
  args.add_int("nodes", 96, "generated PN size (ignored with --metis-file)");
  args.add_int("k", 4, "number of FPGAs");
  args.add_int("seed", 3, "generator / partitioner seed");
  args.add_string("metis-file", "", "load the graph from a METIS file");
  args.add_double("resource-slack", 1.2, "Rmax = slack * total/k");
  args.add_double("bandwidth-slack", 1.2,
                  "Bmax = slack * total-edge-weight / pairs / 2");
  if (auto status = args.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n", status.message().c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.help_text().c_str());
    return 0;
  }

  // --- Acquire the application graph. -----------------------------------
  graph::Graph g;
  if (const std::string& path = args.get_string("metis-file"); !path.empty()) {
    auto loaded = graph::read_metis_file(path);
    if (!loaded) {
      std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                   loaded.message().c_str());
      return 1;
    }
    g = std::move(loaded).value();
  } else {
    graph::ProcessNetworkParams params;
    params.num_nodes =
        static_cast<graph::NodeId>(args.get_int("nodes"));
    support::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));
    g = graph::random_process_network(params, rng);
  }
  const ppn::ProcessNetwork network = ppn::from_graph(g, "app");

  const auto k = static_cast<part::PartId>(args.get_int("k"));
  part::PartitionRequest request;
  request.k = k;
  request.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  request.constraints.rmax = std::max<graph::Weight>(
      static_cast<graph::Weight>(args.get_double("resource-slack") *
                                 static_cast<double>(g.total_node_weight()) /
                                 k),
      g.max_node_weight());
  request.constraints.bmax = std::max<graph::Weight>(
      1, static_cast<graph::Weight>(
             args.get_double("bandwidth-slack") *
             static_cast<double>(g.total_edge_weight()) /
             (k * (k - 1) / 2.0) / 2.0));

  std::printf("application: n=%u m=%llu total R=%lld | platform: K=%d "
              "Rmax=%lld Bmax=%lld\n\n",
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()),
              static_cast<long long>(g.total_node_weight()), k,
              static_cast<long long>(request.constraints.rmax),
              static_cast<long long>(request.constraints.bmax));

  const mapping::Platform platform = mapping::Platform::all_to_all(
      static_cast<std::uint32_t>(k), request.constraints.rmax,
      request.constraints.bmax);
  sim::SimOptions sim_options;
  sim_options.max_steps = 300'000;
  const double solo =
      sim::simulate_single_device(network, sim_options).sink_throughput;

  std::printf("%-10s %8s %6s %9s %9s %8s %11s %9s\n", "algorithm", "cut",
              "feas", "max-load", "max-bw", "time", "throughput", "vs-solo");

  auto contend = [&](part::Partitioner& algo) {
    const part::PartitionResult r = algo.run(g, request);
    const mapping::Mapping m = mapping::map_network(g, r.partition, platform);
    const sim::SimStats stats =
        sim::simulate(network, m, platform, sim_options);
    std::printf("%-10s %8lld %6s %9lld %9lld %7.3fs %11.4f %8.1f%%\n",
                algo.name().c_str(),
                static_cast<long long>(r.metrics.total_cut),
                r.feasible ? "yes" : "NO",
                static_cast<long long>(r.metrics.max_load),
                static_cast<long long>(r.metrics.max_pairwise_cut), r.seconds,
                stats.sink_throughput,
                solo > 0 ? 100.0 * stats.sink_throughput / solo : 0.0);
  };

  part::GpPartitioner gp;
  contend(gp);
  part::MetisLikePartitioner metis;
  contend(metis);
  part::SpectralPartitioner spectral;
  contend(spectral);
  part::RandomPartitioner random;
  contend(random);
  return 0;
}
