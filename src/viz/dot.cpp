#include "viz/dot.hpp"

#include <cmath>
#include <fstream>
#include <functional>
#include <ostream>

#include "support/strings.hpp"

namespace ppnpart::viz {

namespace {

const char* kPalette[] = {"#e6194b", "#3cb44b", "#4363d8", "#f58231",
                          "#911eb4", "#46f0f0", "#f032e6", "#bcf60c",
                          "#fabebe", "#008080", "#e6beff", "#9a6324"};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

void emit_node(std::ostream& out, const ppn::ProcessNetwork& network,
               std::uint32_t i, const DotOptions& options,
               const char* fill_color, const char* indent) {
  const ppn::Process& p = network.process(i);
  out << indent << "n" << i << " [label=\"" << p.name;
  if (options.show_node_weights) out << "\\nR=" << p.resources;
  out << "\"";
  if (options.size_by_resources) {
    const double diameter =
        0.4 + 0.12 * std::sqrt(static_cast<double>(p.resources));
    out << support::str_format(", width=%.2f, height=%.2f, fixedsize=true",
                               diameter, diameter);
  }
  out << ", shape=circle, style=filled, fillcolor=\"" << fill_color
      << "\"];\n";
}

void emit_channels(std::ostream& out, const ppn::ProcessNetwork& network,
                   const DotOptions& options) {
  for (const ppn::Channel& c : network.channels()) {
    out << "  n" << c.src << " -> n" << c.dst;
    if (options.show_edge_weights) {
      out << " [label=\"" << c.bandwidth << "\"]";
    }
    out << ";\n";
  }
}

}  // namespace

void write_network_dot(std::ostream& out, const ppn::ProcessNetwork& network,
                       const DotOptions& options) {
  out << "digraph " << options.graph_name << " {\n"
      << "  rankdir=LR;\n  node [fontsize=10];\n  edge [fontsize=9];\n";
  for (std::uint32_t i = 0; i < network.num_processes(); ++i) {
    emit_node(out, network, i, options, "#d0d0d0", "  ");
  }
  emit_channels(out, network, options);
  out << "}\n";
}

void write_partitioned_dot(std::ostream& out,
                           const ppn::ProcessNetwork& network,
                           const part::Partition& partition,
                           const DotOptions& options) {
  out << "digraph " << options.graph_name << " {\n"
      << "  rankdir=LR;\n  node [fontsize=10];\n  edge [fontsize=9];\n";
  if (options.cluster_parts) {
    for (part::PartId p = 0; p < partition.k(); ++p) {
      out << "  subgraph cluster_" << p << " {\n"
          << "    label=\"FPGA " << p << "\";\n    style=rounded;\n";
      for (std::uint32_t i = 0; i < network.num_processes(); ++i) {
        if (partition[i] == p) {
          emit_node(out, network, i, options,
                    kPalette[static_cast<std::size_t>(p) % kPaletteSize],
                    "    ");
        }
      }
      out << "  }\n";
    }
  } else {
    for (std::uint32_t i = 0; i < network.num_processes(); ++i) {
      const auto p = static_cast<std::size_t>(partition[i]);
      emit_node(out, network, i, options, kPalette[p % kPaletteSize], "  ");
    }
  }
  emit_channels(out, network, options);
  out << "}\n";
}

namespace {
support::Status write_file(
    const std::string& path,
    const std::function<void(std::ostream&)>& writer) {
  std::ofstream out(path);
  if (!out) return support::Status::error(support::StatusCode::kUnavailable,
                                  "cannot open for writing: " + path);
  writer(out);
  return out ? support::Status::ok()
             : support::Status::error(support::StatusCode::kUnavailable,
                                      "write failed: " + path);
}
}  // namespace

support::Status write_network_dot_file(const std::string& path,
                                       const ppn::ProcessNetwork& network,
                                       const DotOptions& options) {
  return write_file(path, [&](std::ostream& out) {
    write_network_dot(out, network, options);
  });
}

support::Status write_partitioned_dot_file(const std::string& path,
                                           const ppn::ProcessNetwork& network,
                                           const part::Partition& partition,
                                           const DotOptions& options) {
  return write_file(path, [&](std::ostream& out) {
    write_partitioned_dot(out, network, partition, options);
  });
}

}  // namespace ppnpart::viz
