// Metrics registry: counter/gauge semantics, histogram bucketing and
// quantile estimation, get-or-create pointer stability, snapshot
// consistency (sorted, internally consistent under concurrent updates) and
// the to_string format the CLI --metrics flag prints.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "support/metrics.hpp"

namespace ppnpart {
namespace {

using support::Counter;
using support::Gauge;
using support::Histogram;
using support::MetricsRegistry;
using support::MetricsSnapshot;

TEST(Metrics, CounterAndGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  Gauge g;
  g.set(7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Metrics, HistogramBucketsAndQuantiles) {
  Histogram h({1, 10, 100});
  h.observe(0.5);   // bucket <= 1
  h.observe(5);     // bucket <= 10
  h.observe(50);    // bucket <= 100
  h.observe(50);
  h.observe(1000);  // overflow

  const Histogram::Snapshot snap = h.snapshot();
  ASSERT_EQ(snap.bounds, (std::vector<double>{1, 10, 100}));
  ASSERT_EQ(snap.counts, (std::vector<std::uint64_t>{1, 1, 2, 1}));
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 5 + 50 + 50 + 1000);
  EXPECT_DOUBLE_EQ(snap.mean(), snap.sum / 5);

  // Quantiles are linear-in-bucket and monotone; the overflow bucket
  // reports the top bound (there is no upper edge to interpolate toward).
  EXPECT_LE(snap.quantile(0.1), 1.0);
  EXPECT_GT(snap.quantile(0.5), 1.0);
  EXPECT_LE(snap.quantile(0.5), 100.0);
  EXPECT_EQ(snap.quantile(1.0), 100.0);
  double prev = 0;
  for (double q = 0; q <= 1.0; q += 0.05) {
    const double v = snap.quantile(q);
    EXPECT_GE(v, prev) << "quantile not monotone at q=" << q;
    prev = v;
  }
  // Out-of-range q clamps instead of misbehaving.
  EXPECT_EQ(snap.quantile(-1), snap.quantile(0));
  EXPECT_EQ(snap.quantile(2), snap.quantile(1));
}

TEST(Metrics, HistogramEmptyAndResetBehaviour) {
  Histogram h({1, 2});
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_EQ(h.snapshot().quantile(0.5), 0.0);
  EXPECT_EQ(h.snapshot().mean(), 0.0);
  h.observe(1.5);
  h.reset();
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0.0);
}

TEST(Metrics, HistogramDefaultBoundsAreTheLatencyBuckets) {
  // Empty bounds mean the shared microsecond latency scheme: ascending,
  // wide enough for a cache hit and a 10-second exact solve.
  const std::vector<double>& bounds = Histogram::latency_bounds_us();
  ASSERT_FALSE(bounds.empty());
  EXPECT_EQ(bounds.front(), 1.0);
  EXPECT_EQ(bounds.back(), 10'000'000.0);
  for (std::size_t i = 1; i < bounds.size(); ++i)
    EXPECT_LT(bounds[i - 1], bounds[i]);

  Histogram h({});
  EXPECT_EQ(h.snapshot().bounds, bounds);
}

TEST(Metrics, HistogramBoundsAreSortedAndDeduplicated) {
  Histogram h({100, 1, 100, 10});
  EXPECT_EQ(h.snapshot().bounds, (std::vector<double>{1, 10, 100}));
}

TEST(Metrics, RegistryGetOrCreateIsPointerStable) {
  MetricsRegistry reg;
  Counter& a = reg.counter("jobs");
  Counter& b = reg.counter("jobs");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &reg.counter("other"));

  Histogram& h1 = reg.histogram("lat", {1, 2, 3});
  // Creation-time bounds win; a later lookup's bounds are ignored.
  Histogram& h2 = reg.histogram("lat", {99});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.snapshot().bounds, (std::vector<double>{1, 2, 3}));
}

TEST(Metrics, SnapshotIsNameSortedAndQueriable) {
  MetricsRegistry reg;
  reg.counter("c.zeta").add(3);
  reg.counter("c.alpha").add(1);
  reg.gauge("depth").set(-4);
  reg.histogram("lat").observe(42);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "c.alpha");
  EXPECT_EQ(snap.counters[1].name, "c.zeta");
  EXPECT_EQ(snap.counter_or("c.zeta"), 3u);
  EXPECT_EQ(snap.counter_or("missing", 77), 77u);
  ASSERT_NE(snap.find_histogram("lat"), nullptr);
  EXPECT_EQ(snap.find_histogram("lat")->hist.count, 1u);
  EXPECT_EQ(snap.find_histogram("missing"), nullptr);
}

TEST(Metrics, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry reg;
  Counter& c = reg.counter("jobs");
  c.add(9);
  reg.histogram("lat").observe(5);
  reg.reset();
  // The cached reference survives and still points at the live metric.
  EXPECT_EQ(c.value(), 0u);
  c.add(2);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("jobs"), 2u);
  EXPECT_EQ(snap.find_histogram("lat")->hist.count, 0u);
}

TEST(Metrics, ToStringMatchesTheCliFormat) {
  MetricsRegistry reg;
  reg.counter("engine.jobs").add(3);
  reg.gauge("inflight").set(2);
  reg.histogram("engine.job.time_us").observe(10);
  const std::string text = reg.snapshot().to_string();
  EXPECT_NE(text.find("counter engine.jobs 3\n"), std::string::npos) << text;
  EXPECT_NE(text.find("gauge inflight 2\n"), std::string::npos) << text;
  EXPECT_NE(text.find("histogram engine.job.time_us count=1"),
            std::string::npos)
      << text;
}

TEST(Metrics, ConcurrentUpdatesAreExactAndSnapshotsConsistent) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&reg, w] {
      // Hot-path idiom: resolve once, then relaxed atomics only.
      Counter& c = reg.counter("hits");
      Histogram& h = reg.histogram("lat", {10, 100, 1000});
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add();
        h.observe(static_cast<double>((w * 37 + i) % 2000));
      }
    });
  }
  // A reader races the writers: every snapshot must be internally
  // consistent (count never exceeds the bucket total it ships with).
  std::thread reader([&reg] {
    for (int i = 0; i < 200; ++i) {
      const MetricsSnapshot snap = reg.snapshot();
      const auto* lat = snap.find_histogram("lat");
      if (lat == nullptr) continue;
      std::uint64_t bucket_total = 0;
      for (const std::uint64_t c : lat->hist.counts) bucket_total += c;
      EXPECT_LE(lat->hist.count, bucket_total);
    }
  });
  for (std::thread& t : workers) t.join();
  reader.join();

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("hits"), kThreads * kPerThread);
  const auto* lat = snap.find_histogram("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->hist.count, kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : lat->hist.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

}  // namespace
}  // namespace ppnpart
