#include "ppn/paper_instances.hpp"

#include <stdexcept>

namespace ppnpart::ppn {

namespace {

struct EdgeSpec {
  std::uint32_t u, v;
  graph::Weight w;
};

ProcessNetwork build(const char* name,
                     const std::vector<graph::Weight>& resources,
                     const std::vector<EdgeSpec>& edges) {
  ProcessNetwork network(name);
  for (std::size_t i = 0; i < resources.size(); ++i) {
    network.add_process("p" + std::to_string(i), resources[i]);
  }
  for (const EdgeSpec& e : edges) {
    network.add_channel(e.u, e.v, e.w,
                        static_cast<std::uint64_t>(e.w) * 64);
  }
  return network;
}

PaperInstance experiment1() {
  PaperInstance inst;
  inst.index = 1;
  inst.k = 4;
  inst.constraints.rmax = 165;
  inst.constraints.bmax = 16;
  inst.metis_paper = {58, 172, 20, 0.02};
  inst.gp_paper = {70, 163, 16, 0.33};

  // Natural (cut-minimal) clusters: {0,1,11} {2,3,9} {4,5,10} {6,7,8}.
  // Resource-feasible split: {0,1} {2,3,9,11,10} {4,5} {6,7,8}.
  const std::vector<graph::Weight> resources = {
      93, 70, 55, 45, 50, 45, 60, 55, 35, 30, 20, 9};
  const std::vector<EdgeSpec> edges = {
      // cluster {0,1,11}: heavy pair + steal bait
      {0, 1, 13}, {0, 11, 7}, {1, 11, 5},
      // cluster {2,3,9}
      {2, 3, 7}, {2, 9, 6}, {3, 9, 6},
      // cluster {4,5,10}
      {4, 5, 8}, {4, 10, 5}, {5, 10, 5},
      // cluster {6,7,8}
      {6, 7, 8}, {6, 8, 7}, {7, 8, 6},
      // p11's ties into cluster {2,3,9}
      {2, 11, 2}, {3, 11, 2}, {9, 11, 2},
      // base crossings
      {0, 2, 2}, {1, 3, 2},                                    // A-B
      {4, 6, 3}, {5, 7, 4}, {10, 6, 4}, {10, 7, 4}, {4, 8, 2},
      {5, 8, 3},                                               // C-D: 20
      {2, 4, 2}, {9, 5, 1}, {2, 5, 1}, {9, 10, 1},             // B-C
      {3, 6, 2}, {8, 9, 1},                                    // B-D
      {0, 4, 2}, {1, 5, 2},                                    // A-C
      {0, 6, 2}, {1, 7, 1},                                    // A-D
  };
  inst.network = build("paper_exp1", resources, edges);
  inst.graph = to_graph(inst.network);
  return inst;
}

PaperInstance experiment2() {
  PaperInstance inst;
  inst.index = 2;
  inst.k = 4;
  inst.constraints.rmax = 130;
  inst.constraints.bmax = 25;
  inst.metis_paper = {77, 137, 25, 0.02};
  inst.gp_paper = {62, 127, 18, 0.25};

  // Natural clusters: {0,1} {2,3,4,5} {6,7,8} {9,10,11}. Count balance
  // forces one node of {2,3,4,5} (cheapest: p5) into {0,1}: 127 + 10 = 137.
  const std::vector<graph::Weight> resources = {
      72, 55, 40, 35, 30, 10, 45, 40, 35, 45, 40, 25};
  const std::vector<EdgeSpec> edges = {
      {0, 1, 10},                                               // A
      {2, 3, 8}, {2, 4, 7}, {3, 4, 6}, {2, 5, 6}, {3, 5, 5},
      {4, 5, 5},                                                // B
      {6, 7, 8}, {6, 8, 7}, {7, 8, 6},                          // C
      {9, 10, 8}, {9, 11, 7}, {10, 11, 6},                      // D
      {0, 5, 3}, {1, 5, 2},                                     // steal bait
      {0, 2, 4}, {1, 3, 3},                                     // A-B
      {0, 6, 4}, {1, 7, 3},                                     // A-C
      {0, 9, 3}, {1, 10, 3},                                    // A-D
      {2, 6, 4}, {4, 8, 3}, {2, 7, 2},                          // B-C
      {3, 9, 4}, {4, 10, 3}, {5, 9, 2},                         // B-D
      {6, 9, 6}, {7, 10, 5}, {8, 11, 5},                        // C-D
  };
  inst.network = build("paper_exp2", resources, edges);
  inst.graph = to_graph(inst.network);
  return inst;
}

PaperInstance experiment3() {
  PaperInstance inst;
  inst.index = 3;
  inst.k = 4;
  inst.constraints.rmax = 78;
  inst.constraints.bmax = 20;
  inst.metis_paper = {90, 78, 38, 0.02};
  inst.gp_paper = {96, 76, 19, 7.76};

  // Natural clusters: {0,1,2} {3,4,5} {6,7,8} {9,10,11}; resources all
  // within a hair of Rmax, and a 38-unit channel bundle between {6,7,8} and
  // {9,10,11}. Feasible split needs cross-cluster swaps (2<->9, 5<->10).
  const std::vector<graph::Weight> resources = {
      27, 26, 25, 25, 25, 24, 26, 25, 25, 23, 24, 27};
  const std::vector<EdgeSpec> edges = {
      {0, 1, 12}, {0, 2, 4}, {1, 2, 4},      // A
      {3, 4, 12}, {3, 5, 4}, {4, 5, 4},      // B
      {6, 7, 12}, {6, 8, 11}, {7, 8, 11},    // C
      {9, 10, 10}, {9, 11, 11}, {10, 11, 11},  // D
      // C-D bandwidth trap: 38 units
      {6, 9, 10}, {7, 10, 10}, {6, 10, 9}, {8, 11, 9},
      // base crossings + swap lanes
      {0, 3, 3}, {1, 4, 3}, {1, 3, 1},                 // A-B
      {0, 6, 4}, {0, 7, 2},                            // A-C
      {0, 9, 2}, {1, 9, 2},                            // A-D (swap lane 9->A)
      {3, 10, 2}, {4, 10, 2},                          // B-D (swap lane 10->B)
      {2, 5, 2}, {2, 11, 2}, {5, 11, 2},               // D' internal lanes
      {8, 2, 3}, {8, 5, 3}, {7, 2, 2}, {6, 2, 2},      // C-D' lanes
  };
  inst.network = build("paper_exp3", resources, edges);
  inst.graph = to_graph(inst.network);
  return inst;
}

}  // namespace

PaperInstance paper_instance(int index) {
  switch (index) {
    case 1:
      return experiment1();
    case 2:
      return experiment2();
    case 3:
      return experiment3();
    default:
      throw std::invalid_argument("paper_instance: index must be 1, 2 or 3");
  }
}

}  // namespace ppnpart::ppn
