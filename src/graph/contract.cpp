#include "graph/contract.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/contracts.hpp"

namespace ppnpart::graph {

Graph contract_csr(const Graph& fine, std::span<const NodeId> fine_to_coarse,
                   NodeId num_coarse, ContractScratch& scratch) {
  const NodeId n = fine.num_nodes();
  if (fine_to_coarse.size() != n)
    throw std::invalid_argument("contract_csr: map size mismatch");

  support::AllocStats* stats = scratch.stats;

  // --- Coarse node weights + member lists (counting sort by coarse id). ---
  support::assign_tracked(scratch.node_w, num_coarse, Weight{0}, stats);
  support::assign_tracked(scratch.member_off,
                          static_cast<std::size_t>(num_coarse) + 1, 0, stats);
  for (NodeId u = 0; u < n; ++u) {
    const NodeId c = fine_to_coarse[u];
    if (c >= num_coarse)
      throw std::invalid_argument("contract_csr: coarse id out of range");
    scratch.node_w[c] += fine.node_weight(u);
    ++scratch.member_off[c + 1];
  }
  for (NodeId c = 0; c < num_coarse; ++c)
    scratch.member_off[c + 1] += scratch.member_off[c];
  support::reserve_tracked(scratch.member_cursor,
                           static_cast<std::size_t>(num_coarse), stats);
  scratch.member_cursor.assign(scratch.member_off.begin(),
                               scratch.member_off.end() - 1);
  support::reserve_tracked(scratch.members, n, stats);
  scratch.members.resize(n);  // every slot overwritten below
  for (NodeId u = 0; u < n; ++u) {
    scratch.members[scratch.member_cursor[fine_to_coarse[u]]++] = u;
  }

  // --- Timestamped dedup state. ------------------------------------------
  if (scratch.last_seen.size() < num_coarse) {
    support::assign_tracked(scratch.last_seen, num_coarse, 0, stats);
    scratch.epoch = 0;
  }
  support::reserve_tracked(scratch.slot, static_cast<std::size_t>(num_coarse),
                           stats);
  scratch.slot.resize(num_coarse);
  support::reserve_tracked(scratch.row, static_cast<std::size_t>(num_coarse),
                           stats);

  // --- One pass: gather, dedup and sort each coarse row. -----------------
  support::reserve_tracked(scratch.xadj,
                           static_cast<std::size_t>(num_coarse) + 1, stats);
  scratch.xadj.resize(static_cast<std::size_t>(num_coarse) + 1);
  scratch.xadj[0] = 0;  // remaining slots overwritten below
  support::reserve_tracked(scratch.adj, fine.adj().size(), stats);
  support::reserve_tracked(scratch.ewgt, fine.adj().size(), stats);
  scratch.adj.clear();
  scratch.ewgt.clear();

  for (NodeId c = 0; c < num_coarse; ++c) {
    const std::uint64_t row_epoch = ++scratch.epoch;
    scratch.row.clear();
    for (std::uint64_t i = scratch.member_off[c]; i < scratch.member_off[c + 1];
         ++i) {
      const NodeId u = scratch.members[i];
      auto nbrs = fine.neighbors(u);
      auto wgts = fine.edge_weights(u);
      for (std::size_t j = 0; j < nbrs.size(); ++j) {
        const NodeId cv = fine_to_coarse[nbrs[j]];
        if (cv == c) continue;  // now-internal edge: drop
        if (scratch.last_seen[cv] == row_epoch) {
          scratch.row[scratch.slot[cv]].second += wgts[j];
        } else {
          scratch.last_seen[cv] = row_epoch;
          scratch.slot[cv] = static_cast<std::uint32_t>(scratch.row.size());
          scratch.row.emplace_back(cv, wgts[j]);
        }
      }
    }
    // Neighbour ids are unique after the merge, so any comparison sort
    // yields the identical id-ordered row GraphBuilder produces. Coarse
    // rows are short (average degree), where insertion sort beats the
    // introsort call overhead.
    auto* row_data = scratch.row.data();
    const std::size_t row_len = scratch.row.size();
    if (row_len <= 24) {
      for (std::size_t i = 1; i < row_len; ++i) {
        const auto key = row_data[i];
        std::size_t j = i;
        while (j > 0 && key < row_data[j - 1]) {
          row_data[j] = row_data[j - 1];
          --j;
        }
        row_data[j] = key;
      }
    } else {
      std::sort(scratch.row.begin(), scratch.row.end());
    }
#if PPN_CONTRACTS_ENABLED
    // Produced-row audit: each coarse row must be strictly sorted and free
    // of self loops, or downstream binary searches (edge_weight_between)
    // silently misread the coarse graph.
    for (std::size_t i = 0; i < row_len; ++i) {
      PPN_DCHECK(row_data[i].first != c);
      PPN_DCHECK(i == 0 || row_data[i - 1].first < row_data[i].first);
    }
#endif
    for (const auto& [cv, w] : scratch.row) {
      scratch.adj.push_back(cv);
      scratch.ewgt.push_back(w);
    }
    scratch.xadj[c + 1] = scratch.adj.size();
  }

  // The Graph owns its arrays (it outlives the scratch), so the final copies
  // are the one unavoidable allocation per level: the product itself.
  return Graph(
      std::vector<std::uint64_t>(scratch.xadj.begin(), scratch.xadj.end()),
      std::vector<NodeId>(scratch.adj.begin(), scratch.adj.end()),
      std::vector<Weight>(scratch.ewgt.begin(), scratch.ewgt.end()),
      std::vector<Weight>(scratch.node_w.begin(), scratch.node_w.end()));
}

}  // namespace ppnpart::graph
