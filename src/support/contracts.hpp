#pragma once
// Debug contracts — the load-bearing preconditions, as checks instead of
// prose.
//
// Three macros, all compiled out in Release (NDEBUG) builds so the hot path
// pays nothing, all aborting with file:line (and the failed expression) in
// Debug builds so a violated invariant dies at the seam that broke it
// instead of corrupting state three subsystems later:
//
//   PPN_ASSERT(cond)           cheap O(1) precondition (bounds, non-null,
//                              size agreement). Use freely, including on
//                              hot paths — it costs one compare in Debug.
//   PPN_CHECK_MSG(cond, msg)   like PPN_ASSERT with a context message; the
//                              message expression is evaluated ONLY on
//                              failure, so `str_format(...)` arguments are
//                              free on the success path.
//   PPN_DCHECK(cond)           potentially expensive validation (linear
//                              scans, structural audits). Same tier today;
//                              kept distinct so a future knob can disable
//                              deep checks while keeping the cheap ones.
//
// Contracts guard OUR invariants (caller/internal programming errors);
// conditions a correct caller can legitimately trigger (bad user input,
// oversized deltas) keep throwing std::invalid_argument — a service must
// survive those, and does. The architecture rules that span subsystems
// (workspace ownership, cache hygiene, pool discipline) are enforced
// separately by tools/check_invariants.py; these macros cover the per-call
// preconditions a linter cannot see.
//
// tests/contracts_test.cpp pins both tiers: Debug builds abort (death
// tests), Release builds compile the checks out entirely (the test
// self-skips its death half, mirroring trace_test's PPN_TRACE_DISABLED
// pattern).

#include <string>

namespace ppnpart::support {

/// Failure sink: prints "file:line: contract violated: expr (msg)" to
/// stderr and aborts. Out-of-line so the macro expansion stays one compare
/// and one never-taken call.
[[noreturn]] void contract_violated(const char* file, int line,
                                    const char* expr, const char* msg);
[[noreturn]] void contract_violated(const char* file, int line,
                                    const char* expr, const std::string& msg);

}  // namespace ppnpart::support

#if !defined(NDEBUG)
#define PPN_CONTRACTS_ENABLED 1

#define PPN_ASSERT(cond)                                                  \
  do {                                                                    \
    if (!(cond))                                                          \
      ::ppnpart::support::contract_violated(__FILE__, __LINE__, #cond,    \
                                            static_cast<const char*>(nullptr)); \
  } while (false)

#define PPN_CHECK_MSG(cond, msg)                                          \
  do {                                                                    \
    if (!(cond))                                                          \
      ::ppnpart::support::contract_violated(__FILE__, __LINE__, #cond,    \
                                            (msg));                       \
  } while (false)

#define PPN_DCHECK(cond) PPN_ASSERT(cond)

#else  // NDEBUG: compiled out. sizeof keeps the condition's names "used"
       // (no -Wunused warnings for Debug-only locals) without evaluating
       // anything at runtime.
#define PPN_CONTRACTS_ENABLED 0

#define PPN_ASSERT(cond) ((void)sizeof(!(cond)))
#define PPN_CHECK_MSG(cond, msg) ((void)sizeof(!(cond)))
#define PPN_DCHECK(cond) ((void)sizeof(!(cond)))

#endif  // NDEBUG
