// graph::diff — the reconstruction invariant behind similarity-aware
// admission: diff(a, b).apply(a).graph must be BIT-IDENTICAL to b (same CSR
// arrays, same digests) for ANY pair of graphs, because the engine reuses a
// previous partition only after replaying exactly this reconstruction.
//
// The fuzz here drives randomized pairs through every edit class the delta
// layer supports — channel reweights, channel adds/removes, process
// additions (with wiring), process removals (stranding their channels,
// sometimes cascading until nodes are isolated), heavy shrinks down to
// fewer nodes than k — plus entirely unrelated pairs, where the invariant
// must still hold even though the script is large.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/delta.hpp"
#include "graph/diff.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "partition/coarsen_cache.hpp"  // part::graph_digest
#include "support/prng.hpp"

namespace ppnpart {
namespace {

using graph::Graph;
using graph::GraphDelta;
using graph::NodeId;
using graph::Weight;

/// Bit-identity, asserted on the raw CSR arrays (stronger than the digest,
/// which is also checked because it is what the engine's caches key on).
void expect_bit_identical(const Graph& a, const Graph& b, const char* what) {
  EXPECT_EQ(a.xadj(), b.xadj()) << what;
  EXPECT_EQ(a.adj(), b.adj()) << what;
  EXPECT_EQ(a.raw_edge_weights(), b.raw_edge_weights()) << what;
  EXPECT_EQ(a.node_weights(), b.node_weights()) << what;
  EXPECT_EQ(part::graph_digest(a), part::graph_digest(b)) << what;
}

void expect_round_trip(const Graph& base, const Graph& edited,
                       const char* what) {
  const GraphDelta d = graph::diff(base, edited);
  const GraphDelta::Applied applied = d.apply(base);
  expect_bit_identical(applied.graph, edited, what);
  ASSERT_EQ(applied.node_map.size(),
            static_cast<std::size_t>(
                std::max(base.num_nodes(), edited.num_nodes())));
  // Stable-id alignment: survivors keep their ids, so the node map is the
  // identity on [0, edited nodes) and invalid on the removed tail.
  for (NodeId u = 0; u < edited.num_nodes(); ++u)
    EXPECT_EQ(applied.node_map[u], u) << what;
  for (NodeId u = edited.num_nodes(); u < base.num_nodes(); ++u)
    EXPECT_EQ(applied.node_map[u], graph::kInvalidNode) << what;
}

/// A random edit script over `g`, exercising every op kind. Mirrors the
/// evolving-network generator in spirit but stays self-contained (tests do
/// not include bench headers).
GraphDelta random_edits(const Graph& g, std::size_t ops, support::Rng& rng,
                        bool allow_node_ops) {
  GraphDelta d(g);
  std::vector<NodeId> live;
  live.reserve(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) live.push_back(u);
  for (std::size_t i = 0; i < ops && live.size() >= 2; ++i) {
    const std::size_t roll = rng.uniform_index(100);
    const NodeId u = live[rng.uniform_index(live.size())];
    if (roll < 35 && g.degree(u) != 0) {  // reweight a surviving channel
      const NodeId v = g.neighbors(u)[rng.uniform_index(g.degree(u))];
      if (std::find(live.begin(), live.end(), v) != live.end()) {
        d.set_edge_weight(u, v, 1 + static_cast<Weight>(rng.uniform_index(20)));
        continue;
      }
    }
    if (roll < 50 && g.degree(u) != 0) {  // delete a surviving channel
      const NodeId v = g.neighbors(u)[rng.uniform_index(g.degree(u))];
      if (std::find(live.begin(), live.end(), v) != live.end()) {
        d.remove_edge(u, v);
        continue;
      }
    }
    if (roll < 65) {  // add a channel
      const NodeId v = live[rng.uniform_index(live.size())];
      if (u != v) d.add_edge(u, v, 1 + static_cast<Weight>(rng.uniform_index(9)));
      continue;
    }
    if (roll < 75) {  // reweight a process
      d.set_node_weight(u, 1 + static_cast<Weight>(rng.uniform_index(90)));
      continue;
    }
    if (!allow_node_ops) continue;
    if (roll < 88) {  // add a process wired into the live set
      const NodeId fresh =
          d.add_node(5 + static_cast<Weight>(rng.uniform_index(60)));
      d.add_edge(fresh, live[rng.uniform_index(live.size())],
                 1 + static_cast<Weight>(rng.uniform_index(9)));
      if (rng.bernoulli(0.5))
        d.add_edge(fresh, live[rng.uniform_index(live.size())],
                   1 + static_cast<Weight>(rng.uniform_index(9)));
      continue;
    }
    // retire a process, stranding its channels
    const std::size_t idx = rng.uniform_index(live.size());
    d.remove_node(live[idx]);
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  return d;
}

Graph random_graph(support::Rng& rng) {
  switch (rng.uniform_index(4)) {
    case 0: {
      graph::ProcessNetworkParams p;
      p.num_nodes = static_cast<NodeId>(8 + rng.uniform_index(120));
      p.layers = std::max<std::uint32_t>(2, p.num_nodes / 8);
      return graph::random_process_network(p, rng);
    }
    case 1:
      return graph::erdos_renyi_gnm(
          static_cast<NodeId>(4 + rng.uniform_index(60)),
          4 + rng.uniform_index(150), rng, {1, 40}, {1, 12});
    case 2:
      return graph::ring_of_cliques(
          2 + static_cast<std::uint32_t>(rng.uniform_index(5)),
          2 + static_cast<std::uint32_t>(rng.uniform_index(4)));
    default:
      return graph::preferential_attachment(
          static_cast<NodeId>(6 + rng.uniform_index(80)), 2, rng, {1, 30},
          {1, 8});
  }
}

// ---------------------------------------------------------- round trips ---

TEST(GraphDiff, IdenticalGraphsDiffEmpty) {
  support::Rng rng(101);
  for (int i = 0; i < 20; ++i) {
    const Graph g = random_graph(rng);
    const GraphDelta d = graph::diff(g, g);
    EXPECT_TRUE(d.empty());
    expect_round_trip(g, g, "identical pair");
  }
}

TEST(GraphDiff, RoundTripOverRandomEditScripts) {
  support::Rng rng(202);
  for (int i = 0; i < 120; ++i) {
    const Graph base = random_graph(rng);
    const std::size_t ops = 1 + rng.uniform_index(30);
    const GraphDelta edits =
        random_edits(base, ops, rng, /*allow_node_ops=*/true);
    const Graph edited = edits.apply(base).graph;
    expect_round_trip(base, edited, "edited pair");
  }
}

TEST(GraphDiff, RoundTripUnderHeavyShrinkIncludingBelowK) {
  // The similarity scenario's nastiest shape: the arriving graph shrank so
  // far that fewer nodes than parts remain (k > n downstream) and most base
  // edges strand. The diff must still reconstruct it exactly.
  support::Rng rng(303);
  for (int i = 0; i < 40; ++i) {
    const Graph base = random_graph(rng);
    GraphDelta shrink(base);
    const NodeId keep =
        static_cast<NodeId>(rng.uniform_index(4));  // 0..3 survivors
    for (NodeId u = base.num_nodes(); u-- > keep;) shrink.remove_node(u);
    const Graph edited = shrink.apply(base).graph;
    ASSERT_EQ(edited.num_nodes(), std::min(keep, base.num_nodes()));
    expect_round_trip(base, edited, "heavy shrink");
    expect_round_trip(edited, base, "heavy grow (reverse direction)");
  }
}

TEST(GraphDiff, RoundTripBetweenUnrelatedGraphs) {
  // diff is total: even a pair that shares nothing must reconstruct. The
  // script is large — the admission gates, not diff itself, are what route
  // such pairs to a full run.
  support::Rng rng(404);
  for (int i = 0; i < 40; ++i) {
    const Graph a = random_graph(rng);
    const Graph b = random_graph(rng);
    expect_round_trip(a, b, "unrelated pair");
    expect_round_trip(b, a, "unrelated pair (reversed)");
  }
}

TEST(GraphDiff, EmptyAndTinyGraphs) {
  // The canonical zero-node CSR (xadj == {0}), as GraphBuilder and
  // GraphDelta::apply both produce it — a default-constructed Graph{} is a
  // distinct degenerate representation outside the apply/rebuild contract.
  const Graph empty = graph::GraphBuilder(0).build();
  support::Rng rng(505);
  const Graph g = random_graph(rng);
  expect_round_trip(empty, g, "empty -> g");
  expect_round_trip(g, empty, "g -> empty");
  expect_round_trip(empty, empty, "empty -> empty");

  // Single node, no edges.
  graph::GraphBuilder one(1);
  const Graph single = one.build();
  expect_round_trip(single, g, "single -> g");
  expect_round_trip(g, single, "g -> single");
}

// ----------------------------------------------------------- minimality ---

TEST(GraphDiff, ScriptIsMinimalForSmallEdits) {
  graph::GraphBuilder b(6);
  b.add_edge(0, 1, 4);
  b.add_edge(1, 2, 5);
  b.add_edge(2, 3, 6);
  b.add_edge(3, 4, 7);
  b.add_edge(4, 5, 8);
  const Graph base = b.build();

  // One reweight -> exactly one op.
  {
    GraphDelta e(base);
    e.set_edge_weight(1, 2, 9);
    const Graph edited = e.apply(base).graph;
    EXPECT_EQ(graph::diff(base, edited).num_ops(), 1u);
  }
  // One node addition wired by one channel -> exactly two ops.
  {
    GraphDelta e(base);
    const NodeId fresh = e.add_node(11);
    e.add_edge(fresh, 0, 2);
    const Graph edited = e.apply(base).graph;
    EXPECT_EQ(graph::diff(base, edited).num_ops(), 2u);
  }
  // Removing the LAST node (stable ids!) -> exactly one op; its stranded
  // channel costs nothing.
  {
    GraphDelta e(base);
    e.remove_node(5);
    const Graph edited = e.apply(base).graph;
    EXPECT_EQ(graph::diff(base, edited).num_ops(), 1u);
  }
}

// ----------------------------------------------- introspection / replay ---

TEST(GraphDiff, EdgeEditsExposeTheScriptInOrder) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1, 3);
  b.add_edge(2, 3, 5);
  const Graph base = b.build();

  GraphDelta e(base);
  e.set_edge_weight(0, 1, 7);
  e.remove_edge(2, 3);
  e.add_edge(1, 2, 2);
  const auto edits = e.edge_edits();
  ASSERT_EQ(edits.size(), 3u);
  EXPECT_EQ(edits[0].kind, GraphDelta::EdgeOpKind::kSet);
  EXPECT_EQ(edits[0].u, 0u);
  EXPECT_EQ(edits[0].v, 1u);
  EXPECT_EQ(edits[0].w, 7);
  EXPECT_EQ(edits[1].kind, GraphDelta::EdgeOpKind::kRemove);
  EXPECT_EQ(edits[2].kind, GraphDelta::EdgeOpKind::kAdd);
  EXPECT_EQ(edits[2].w, 2);
}

TEST(GraphDiff, IntrospectionReplayReproducesApply) {
  // The CLI's --diff serializer emits adds, reweights, edge ops, then
  // removals; replaying that order through a fresh delta must reproduce
  // apply() exactly (removal reordering is semantics-preserving because
  // apply strands ops on removed endpoints wherever they sit).
  support::Rng rng(606);
  for (int i = 0; i < 60; ++i) {
    const Graph base = random_graph(rng);
    const GraphDelta d =
        random_edits(base, 1 + rng.uniform_index(25), rng, true);

    GraphDelta replay(base);
    for (const Weight w : d.added_node_weights()) replay.add_node(w);
    for (const auto& [u, w] : d.node_weight_edits()) replay.set_node_weight(u, w);
    for (const auto& op : d.edge_edits()) {
      switch (op.kind) {
        case GraphDelta::EdgeOpKind::kAdd:
          replay.add_edge(op.u, op.v, op.w);
          break;
        case GraphDelta::EdgeOpKind::kRemove:
          replay.remove_edge(op.u, op.v);
          break;
        case GraphDelta::EdgeOpKind::kSet:
          replay.set_edge_weight(op.u, op.v, op.w);
          break;
      }
    }
    for (const NodeId u : d.removed_nodes()) replay.remove_node(u);

    expect_bit_identical(d.apply(base).graph, replay.apply(base).graph,
                         "introspection replay");
  }
}

}  // namespace
}  // namespace ppnpart
