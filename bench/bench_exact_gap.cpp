// Quality gap versus the exact optimum: on 12-node instances (the paper's
// experiment scale) the constrained branch-and-bound optimum is computable,
// so GP's heuristic gap is measurable directly — the trade the intro
// gestures at ("possible to solve … in an exact manner … not the case when
// practical graphs are under examination").

#include <cstdio>

#include "bench_common.hpp"
#include "partition/exact.hpp"
#include "ppn/paper_instances.hpp"

int main() {
  using namespace ppnpart;

  bench::print_header(
      "GP vs exact constrained optimum (12-node instances, K=4)",
      "instance        exact-cut   GP-cut   gap     exact-time   GP-time");

  double worst_gap = 1.0, gap_sum = 0;
  int gap_count = 0;

  auto run_one = [&](const std::string& name, const graph::Graph& g,
                     const part::Constraints& c, std::uint64_t seed) {
    part::ExactOptions exact_options;
    exact_options.time_limit_seconds = 20;
    const part::ExactResult exact =
        part::exact_min_cut(g, 4, c, exact_options);
    part::PartitionRequest request;
    request.k = 4;
    request.constraints = c;
    request.seed = seed;
    part::GpPartitioner gp;
    const part::PartitionResult result = gp.run(g, request);
    if (!exact.found) {
      std::printf("%-14s   infeasible (proven=%s); GP feasible=%s\n",
                  name.c_str(), exact.optimal ? "yes" : "no",
                  result.feasible ? "yes (BUG)" : "no (consistent)");
      return;
    }
    const double gap = result.feasible
                           ? static_cast<double>(result.metrics.total_cut) /
                                 static_cast<double>(exact.cut)
                           : -1;
    if (gap > 0) {
      worst_gap = std::max(worst_gap, gap);
      gap_sum += gap;
      ++gap_count;
    }
    std::printf("%-14s %10lld %8lld %6.2fx %11.3fs %8.3fs\n", name.c_str(),
                static_cast<long long>(exact.cut),
                static_cast<long long>(result.metrics.total_cut),
                gap > 0 ? gap : 0.0, exact.seconds, result.seconds);
  };

  for (int e = 1; e <= 3; ++e) {
    const ppn::PaperInstance inst = ppn::paper_instance(e);
    run_one("paper-exp" + std::to_string(e), inst.graph, inst.constraints,
            7);
  }
  for (int i = 0; i < 9; ++i) {
    bench::InstanceFamily family;
    family.nodes = 12;
    family.k = 4;
    family.resource_slack = 1.15;
    family.bandwidth_slack = 1.4;
    family.base_seed = 5000 + static_cast<std::uint64_t>(i);
    const auto inst = family.make(i);
    run_one("random-" + std::to_string(i), inst.graph,
            inst.request.constraints, inst.request.seed);
  }
  if (gap_count > 0) {
    std::printf("mean gap %.3fx, worst gap %.3fx over %d solved instances\n",
                gap_sum / gap_count, worst_gap, gap_count);
  }
  return 0;
}
