#include "support/cli.hpp"

#include <sstream>

#include "support/strings.hpp"

namespace ppnpart::support {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

ArgParser& ArgParser::add_flag(const std::string& name,
                               const std::string& help) {
  Option o;
  o.kind = Kind::kFlag;
  o.help = help;
  options_[name] = std::move(o);
  order_.push_back(name);
  return *this;
}

ArgParser& ArgParser::add_int(const std::string& name,
                              std::int64_t default_value,
                              const std::string& help) {
  Option o;
  o.kind = Kind::kInt;
  o.help = help;
  o.int_value = default_value;
  options_[name] = std::move(o);
  order_.push_back(name);
  return *this;
}

ArgParser& ArgParser::add_double(const std::string& name, double default_value,
                                 const std::string& help) {
  Option o;
  o.kind = Kind::kDouble;
  o.help = help;
  o.double_value = default_value;
  options_[name] = std::move(o);
  order_.push_back(name);
  return *this;
}

ArgParser& ArgParser::add_string(const std::string& name,
                                 const std::string& default_value,
                                 const std::string& help) {
  Option o;
  o.kind = Kind::kString;
  o.help = help;
  o.string_value = default_value;
  options_[name] = std::move(o);
  order_.push_back(name);
  return *this;
}

Status ArgParser::parse(int argc, const char* const* argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return Status::ok();
    }
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(name);
    if (it == options_.end())
      return Status::error(StatusCode::kInvalidArgument,
                           "unknown option --" + name);
    Option& opt = it->second;
    if (opt.kind == Kind::kFlag) {
      if (has_value) return Status::error(StatusCode::kInvalidArgument,
                                      "--" + name + " takes no value");
      opt.flag_value = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc)
        return Status::error(StatusCode::kInvalidArgument,
                             "--" + name + " expects a value");
      value = argv[++i];
    }
    switch (opt.kind) {
      case Kind::kInt: {
        std::int64_t v = 0;
        if (!parse_i64(value, v))
          return Status::error(StatusCode::kInvalidArgument,
                               "--" + name + ": not an integer: " + value);
        opt.int_value = v;
        break;
      }
      case Kind::kDouble: {
        double v = 0;
        if (!parse_f64(value, v))
          return Status::error(StatusCode::kInvalidArgument,
                               "--" + name + ": not a number: " + value);
        opt.double_value = v;
        break;
      }
      case Kind::kString:
        opt.string_value = value;
        break;
      case Kind::kFlag:
        break;  // unreachable
    }
  }
  return Status::ok();
}

const ArgParser::Option* ArgParser::find(const std::string& name,
                                         Kind kind) const {
  auto it = options_.find(name);
  if (it == options_.end() || it->second.kind != kind) return nullptr;
  return &it->second;
}

bool ArgParser::flag(const std::string& name) const {
  const Option* o = find(name, Kind::kFlag);
  return o != nullptr && o->flag_value;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  const Option* o = find(name, Kind::kInt);
  return o != nullptr ? o->int_value : 0;
}

double ArgParser::get_double(const std::string& name) const {
  const Option* o = find(name, Kind::kDouble);
  return o != nullptr ? o->double_value : 0.0;
}

const std::string& ArgParser::get_string(const std::string& name) const {
  static const std::string kEmpty;
  const Option* o = find(name, Kind::kString);
  return o != nullptr ? o->string_value : kEmpty;
}

std::string ArgParser::help_text() const {
  std::ostringstream out;
  if (!description_.empty()) out << description_ << "\n\n";
  out << "usage: " << (program_name_.empty() ? "prog" : program_name_)
      << " [options]\n\noptions:\n";
  for (const auto& name : order_) {
    const Option& o = options_.at(name);
    out << "  --" << name;
    switch (o.kind) {
      case Kind::kFlag:
        break;
      case Kind::kInt:
        out << " <int, default " << o.int_value << ">";
        break;
      case Kind::kDouble:
        out << " <float, default " << o.double_value << ">";
        break;
      case Kind::kString:
        out << " <string, default \"" << o.string_value << "\">";
        break;
    }
    out << "\n      " << o.help << "\n";
  }
  return out.str();
}

}  // namespace ppnpart::support
