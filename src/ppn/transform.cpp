#include "ppn/transform.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "support/strings.hpp"

namespace ppnpart::ppn {

namespace {

/// Splits an integer total into `ways` near-equal positive shares.
std::vector<Weight> fair_shares(Weight total, std::uint32_t ways) {
  std::vector<Weight> shares(ways, total / ways);
  Weight remainder = total - shares[0] * ways;
  for (std::uint32_t i = 0; i < ways && remainder > 0; ++i, --remainder)
    ++shares[i];
  // Channels must keep positive weight: round zero shares up (slightly
  // over-approximating traffic is the conservative direction for Bmax).
  for (Weight& s : shares)
    if (s <= 0) s = 1;
  return shares;
}

std::vector<std::uint64_t> fair_shares_u64(std::uint64_t total,
                                           std::uint32_t ways) {
  std::vector<std::uint64_t> shares(ways, total / ways);
  std::uint64_t remainder = total - shares[0] * ways;
  for (std::uint32_t i = 0; i < ways && remainder > 0; ++i, --remainder)
    ++shares[i];
  return shares;
}

}  // namespace

SplitResult split_process(const ProcessNetwork& net, std::uint32_t target,
                          std::uint32_t ways, const SplitOptions& options) {
  if (target >= net.num_processes())
    throw std::invalid_argument("split_process: target out of range");
  if (ways < 2) throw std::invalid_argument("split_process: ways must be >= 2");
  if (options.resource_overhead < 0)
    throw std::invalid_argument("split_process: negative resource_overhead");

  const Process& original = net.process(target);

  SplitResult out;
  out.network.set_name(net.name());
  out.copies.reserve(ways);

  // Copy 0 reuses the target slot so other ids are stable.
  const Weight copy_resources = std::max<Weight>(
      1, original.resources +
             static_cast<Weight>(std::llround(
                 options.resource_overhead *
                 static_cast<double>(original.resources))));
  const auto firing_shares = fair_shares_u64(original.firings, ways);

  for (std::uint32_t i = 0; i < net.num_processes(); ++i) {
    if (i == target) {
      Process copy0 = original;
      copy0.name = original.name + "#0";
      copy0.resources = copy_resources;
      copy0.firings = firing_shares[0];
      out.network.add_process(std::move(copy0));
      out.copies.push_back(i);
      out.origin_of.push_back(target);
    } else {
      out.network.add_process(net.process(i));
      out.origin_of.push_back(i);
    }
  }
  for (std::uint32_t w = 1; w < ways; ++w) {
    Process copy = original;
    copy.name = support::str_format("%s#%u", original.name.c_str(), w);
    copy.resources = copy_resources;
    copy.firings = firing_shares[w];
    out.copies.push_back(out.network.add_process(std::move(copy)));
    out.origin_of.push_back(target);
  }

  // Channels: those touching the target fan out across the copies with the
  // traffic divided; everything else copies through unchanged.
  for (const Channel& ch : net.channels()) {
    if (ch.src != target && ch.dst != target) {
      out.network.add_channel(ch);
      continue;
    }
    const auto bw_shares = fair_shares(ch.bandwidth, ways);
    const auto vol_shares = fair_shares_u64(ch.volume, ways);
    for (std::uint32_t w = 0; w < ways; ++w) {
      Channel piece = ch;
      piece.bandwidth = bw_shares[w];
      piece.volume = vol_shares[w];
      piece.label = ch.label.empty()
                        ? ch.label
                        : support::str_format("%s#%u", ch.label.c_str(), w);
      if (ch.src == target) piece.src = out.copies[w];
      if (ch.dst == target) piece.dst = out.copies[w];
      out.network.add_channel(piece);
    }
  }
  return out;
}

MergeResult merge_processes(const ProcessNetwork& net,
                            const std::vector<std::uint32_t>& group) {
  if (group.size() < 2)
    throw std::invalid_argument("merge_processes: group must have >= 2 ids");
  std::vector<bool> in_group(net.num_processes(), false);
  for (std::uint32_t id : group) {
    if (id >= net.num_processes())
      throw std::invalid_argument("merge_processes: id out of range");
    if (in_group[id])
      throw std::invalid_argument("merge_processes: duplicate id in group");
    in_group[id] = true;
  }
  const std::uint32_t anchor =
      *std::min_element(group.begin(), group.end());

  MergeResult out;
  out.network.set_name(net.name());
  out.merged_into.resize(net.num_processes());

  // New compacted ids: group members collapse onto the anchor's slot.
  std::uint32_t next = 0;
  for (std::uint32_t i = 0; i < net.num_processes(); ++i) {
    if (in_group[i] && i != anchor) continue;
    out.merged_into[i] = next++;
  }
  for (std::uint32_t id : group) out.merged_into[id] = out.merged_into[anchor];

  // Build the merged process.
  Process merged;
  merged.resources = 0;
  merged.firings = 0;
  std::string merged_name = "m(";
  bool first = true;
  for (std::uint32_t i = 0; i < net.num_processes(); ++i) {
    if (!in_group[i]) continue;
    merged.resources += net.process(i).resources;
    merged.firings += net.process(i).firings;
    if (!first) merged_name += "+";
    merged_name += net.process(i).name;
    first = false;
  }
  merged.name = merged_name + ")";

  for (std::uint32_t i = 0; i < net.num_processes(); ++i) {
    if (in_group[i] && i != anchor) continue;
    if (i == anchor) {
      out.network.add_process(merged);
    } else {
      out.network.add_process(net.process(i));
    }
  }

  // Channels: internal ones vanish; external ones re-target; parallel
  // channels between the same (src, dst) coalesce by summing traffic.
  struct Key {
    std::uint32_t src, dst;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return (static_cast<std::size_t>(k.src) << 32) ^ k.dst;
    }
  };
  std::unordered_map<Key, Channel, KeyHash> coalesced;
  std::vector<Key> order;  // deterministic output ordering
  for (const Channel& ch : net.channels()) {
    const std::uint32_t s = out.merged_into[ch.src];
    const std::uint32_t d = out.merged_into[ch.dst];
    if (s == d) continue;  // internal to the merged process (or self)
    const Key key{s, d};
    auto [it, inserted] = coalesced.try_emplace(key, ch);
    if (inserted) {
      it->second.src = s;
      it->second.dst = d;
      order.push_back(key);
    } else {
      it->second.bandwidth += ch.bandwidth;
      it->second.volume += ch.volume;
      if (!ch.label.empty()) {
        if (!it->second.label.empty()) it->second.label += "+";
        it->second.label += ch.label;
      }
    }
  }
  for (const Key& key : order) out.network.add_channel(coalesced.at(key));
  return out;
}

MergeResult merge_heavy_channels(const ProcessNetwork& net, Weight rmax_cap,
                                 std::size_t max_merges) {
  MergeResult out;
  out.network = net;
  out.merged_into.resize(net.num_processes());
  std::iota(out.merged_into.begin(), out.merged_into.end(), 0u);

  std::size_t merges = 0;
  while (max_merges == 0 || merges < max_merges) {
    // Heaviest channel whose fused endpoints stay under the cap.
    const ProcessNetwork& cur = out.network;
    std::size_t best = cur.num_channels();
    Weight best_bw = std::numeric_limits<Weight>::min();
    for (std::size_t i = 0; i < cur.num_channels(); ++i) {
      const Channel& ch = cur.channels()[i];
      const Weight fused = cur.process(ch.src).resources +
                           cur.process(ch.dst).resources;
      if (fused > rmax_cap) continue;
      if (ch.bandwidth > best_bw) {
        best_bw = ch.bandwidth;
        best = i;
      }
    }
    if (best == cur.num_channels()) break;  // nothing mergeable

    const Channel& ch = cur.channels()[best];
    MergeResult step = merge_processes(cur, {ch.src, ch.dst});
    // Compose the id maps.
    for (std::uint32_t& id : out.merged_into) id = step.merged_into[id];
    out.network = std::move(step.network);
    ++merges;
  }
  return out;
}

AutoSplitReport auto_split_until_feasible(const ProcessNetwork& net,
                                          part::PartId k,
                                          const part::Constraints& c,
                                          const AutoSplitOptions& options) {
  AutoSplitReport report;
  report.network = net;

  part::PartitionRequest request;
  request.k = k;
  request.constraints = c;
  request.seed = options.seed;

  for (std::uint32_t round = 0;; ++round) {
    part::GpPartitioner gp(options.gp);
    const graph::Graph g = to_graph(report.network);
    report.result = gp.run(g, request);
    report.feasible = report.result.feasible;
    if (report.feasible) {
      report.actions.push_back(support::str_format(
          "round %u: feasible (cut=%lld, maxB=%lld, maxR=%lld)", round,
          static_cast<long long>(report.result.metrics.total_cut),
          static_cast<long long>(report.result.metrics.max_pairwise_cut),
          static_cast<long long>(report.result.metrics.max_load)));
      return report;
    }
    if (report.result.violation.bandwidth_excess == 0) {
      // Resource-side infeasibility: replication cannot help.
      report.actions.push_back(support::str_format(
          "round %u: resource-infeasible (excess=%lld); splitting cannot "
          "repair resources — stopping",
          round,
          static_cast<long long>(report.result.violation.resource_excess)));
      return report;
    }
    if (report.splits_performed >= options.max_splits) {
      report.actions.push_back(support::str_format(
          "round %u: split budget (%u) exhausted, still infeasible", round,
          options.max_splits));
      return report;
    }

    // Find the most violated FPGA pair and the process shipping the most
    // traffic across it — the split candidate.
    const part::Partition& p = report.result.partition;
    const part::PairwiseCut& pw = report.result.metrics.pairwise;
    part::PartId worst_a = 0, worst_b = 1;
    Weight worst_excess = std::numeric_limits<Weight>::min();
    for (part::PartId a = 0; a < k; ++a) {
      for (part::PartId b = a + 1; b < k; ++b) {
        const Weight excess = pw.at(a, b) - c.bmax;
        if (excess > worst_excess) {
          worst_excess = excess;
          worst_a = a;
          worst_b = b;
        }
      }
    }
    std::vector<Weight> traffic(report.network.num_processes(), 0);
    for (const Channel& ch : report.network.channels()) {
      const part::PartId ps = p[ch.src];
      const part::PartId pd = p[ch.dst];
      const bool crosses_worst = (ps == worst_a && pd == worst_b) ||
                                 (ps == worst_b && pd == worst_a);
      if (!crosses_worst) continue;
      traffic[ch.src] += ch.bandwidth;
      traffic[ch.dst] += ch.bandwidth;
    }
    const auto hottest = static_cast<std::uint32_t>(
        std::max_element(traffic.begin(), traffic.end()) - traffic.begin());
    if (traffic[hottest] == 0) {
      report.actions.push_back(support::str_format(
          "round %u: no traffic on the violated pair (%d,%d)? stopping",
          round, worst_a, worst_b));
      return report;
    }

    report.actions.push_back(support::str_format(
        "round %u: infeasible (B-excess=%lld on pair (%d,%d)); splitting "
        "'%s' (traffic %lld) %u-way",
        round,
        static_cast<long long>(report.result.violation.bandwidth_excess),
        worst_a, worst_b, report.network.process(hottest).name.c_str(),
        static_cast<long long>(traffic[hottest]), options.ways_per_split));
    SplitResult split = split_process(report.network, hottest,
                                      options.ways_per_split, options.split);
    report.network = std::move(split.network);
    ++report.splits_performed;
  }
}

}  // namespace ppnpart::ppn
