#include "partition/gp.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>

#include "partition/coarsen_cache.hpp"
#include "partition/parallel.hpp"
#include "partition/phase_profile.hpp"
#include "partition/workspace.hpp"
#include "support/log.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace ppnpart::part {

namespace {

constexpr const char* kTraceCat = "gp";

/// Refines an assignment down a hierarchy, recording the trace. `assign`
/// indexes the coarsest graph on entry and the finest on return. `finest`
/// stands in for level 0: cached hierarchies drop their level-0 graph (the
/// caller holds the input already), and for local hierarchies it is simply
/// the same graph by content.
std::vector<PartId> refine_down(const Hierarchy& h, const Graph& finest,
                                std::vector<PartId> assign, PartId k,
                                const Constraints& c, const GpOptions& options,
                                const ParallelOptions& par,
                                support::Rng& rng, std::uint32_t cycle,
                                std::vector<GpLevelTrace>* trace,
                                Workspace& ws) {
  FmOptions fm;
  fm.max_passes = options.refine_passes;
  support::ThreadPool& pool = support::ThreadPool::global();
  for (std::size_t level = h.num_levels(); level-- > 0;) {
    const Graph& g = level == 0 ? finest : h.graphs[level];
    PhaseScope phase(ws.phases, PhaseProfile::kRefine, ws.phase_cat,
                     static_cast<std::int64_t>(level),
                     static_cast<std::int64_t>(g.num_nodes()));
    if (level + 1 < h.num_levels()) {
      // Project from the coarser level.
      std::vector<PartId> finer(g.num_nodes());
      for (NodeId u = 0; u < g.num_nodes(); ++u) finer[u] = assign[h.maps[level][u]];
      assign = std::move(finer);
    }
    Partition& p = ws.level_partition;
    p.reset(g.num_nodes(), k);
    for (NodeId u = 0; u < g.num_nodes(); ++u) p.set(u, assign[u]);
    support::Rng level_rng = rng.derive(0xFEEDull * (level + 1) + cycle);
    if (par.threads > 1 && g.num_nodes() >= par.min_parallel_nodes) {
      // Large level on the parallel path: goodness-monotone label
      // propagation across the pool, then one bounded serial FM pass. LP
      // does the bulk move work in parallel; the capped FM pass repairs
      // what LP cannot see (tight constraint corners, negative-gain
      // escapes) at a serial cost that stays a small fraction of the
      // level — the Amdahl term is move_limit, not the node count.
      LpRefineOptions lp;
      parallel_lp_refine(g, p, c, lp, par, ws, pool);
      FmOptions polish = fm;
      polish.max_passes = 1;
      polish.move_limit = std::max<std::uint64_t>(
          4096, static_cast<std::uint64_t>(g.num_nodes()) / 8);
      constrained_fm_refine(g, p, c, polish, level_rng, ws);
    } else {
      constrained_fm_refine(g, p, c, fm, level_rng, ws);
      // Alternate FM with the swap neighbourhood on small graphs (coarsest
      // levels and small instances); swaps are what tight-Rmax repairs need.
      SwapRefineOptions swap_opts;
      for (std::uint32_t round = 0; round < 3; ++round) {
        const bool swapped = swap_refine(g, p, c, swap_opts, level_rng, ws);
        if (!swapped) break;
        constrained_fm_refine(g, p, c, fm, level_rng, ws);
      }
    }
    for (NodeId u = 0; u < g.num_nodes(); ++u) assign[u] = p[u];
    if (trace != nullptr) {
      GpLevelTrace t;
      t.cycle = cycle;
      t.level = level;
      t.nodes = g.num_nodes();
      t.edges = g.num_edges();
      t.phase = GpLevelTrace::Phase::kUncoarsen;
      t.goodness = compute_goodness(g, p, c);
      trace->push_back(t);
    }
  }
  return assign;
}

void record_coarsen_trace(const Hierarchy& h, const Graph& finest,
                          std::uint32_t cycle,
                          std::vector<GpLevelTrace>* trace) {
  if (trace == nullptr) return;
  for (std::size_t level = 0; level < h.num_levels(); ++level) {
    const Graph& g = level == 0 ? finest : h.graphs[level];
    GpLevelTrace t;
    t.cycle = cycle;
    t.level = level;
    t.nodes = g.num_nodes();
    t.edges = g.num_edges();
    t.phase = level + 1 == h.num_levels() ? GpLevelTrace::Phase::kInitial
                                          : GpLevelTrace::Phase::kCoarsen;
    if (level > 0) t.matching = h.winners[level - 1];
    trace->push_back(t);
  }
}

}  // namespace

GpPartitioner::GpPartitioner(GpOptions options) : options_(std::move(options)) {
  if (options_.matchings.empty())
    throw std::invalid_argument("GpPartitioner: no matching strategies");
}

PartitionResult GpPartitioner::run(const Graph& g,
                                   const PartitionRequest& request) {
  return run_detailed(g, request);
}

GpResult GpPartitioner::run_detailed(const Graph& g,
                                     const PartitionRequest& request) {
  if (request.k <= 0) throw std::invalid_argument("GP: k must be positive");
  support::Timer timer;
  GpResult result;
  result.algorithm = name();

  const PartId k = request.k;
  const Constraints& c = request.constraints;
  support::Rng rng(request.seed);

  CoarsenOptions coarsen_opts;
  coarsen_opts.coarsen_to = std::max<NodeId>(
      options_.coarsen_to, static_cast<NodeId>(k));  // never below k nodes
  coarsen_opts.strategies = options_.matchings;

  GreedyGrowOptions grow_opts;
  grow_opts.restarts = options_.restarts;
  grow_opts.balance_slack = options_.balance_slack;
  grow_opts.parallel = options_.parallel_restarts;

  FmOptions fm;
  fm.max_passes = options_.refine_passes;

  Workspace local_ws;
  Workspace& ws = request.workspace != nullptr ? *request.workspace : local_ws;
  WorkspaceLease lease(ws);
  PhaseContextScope<Workspace> phase_ctx(ws, request.phases, kTraceCat);

  support::ThreadPool& pool = support::ThreadPool::global();
  const ParallelOptions par =
      resolve_parallel(request.threads, request.deterministic, pool);

  std::optional<std::vector<PartId>> best_assign;
  Goodness best_goodness;
  std::uint32_t feasible_cycles = 0;
  // With a coarsening cache every fresh V-cycle descends the one canonical
  // hierarchy (fetched at most once per run); search diversity then comes
  // from initial-partitioning restarts, refinement randomness and kicks.
  std::shared_ptr<const Hierarchy> shared_h;

  const std::uint32_t cycles = std::max(1u, options_.max_cycles);
  for (std::uint32_t cycle = 0; cycle < cycles; ++cycle) {
    // Cooperative stop at V-cycle granularity; cycle 0 always completes so
    // a budget-expired run still returns a complete partition.
    if (cycle > 0 && request.stop_requested()) break;
    support::Rng cycle_rng = rng.derive(0xC1C1Eull + cycle);
    const bool fresh =
        !best_assign ||
        (options_.fresh_restart_period > 0 &&
         cycle % std::max(1u, options_.fresh_restart_period) == 0);

    std::vector<PartId> assign;
    if (fresh) {
      // Fresh V-cycle: coarsen (or fetch the shared canonical hierarchy),
      // seed with greedy growth, refine down.
      Hierarchy local;
      if (request.coarsen_cache != nullptr) {
        if (!shared_h) {
          // The fetch covers a cache hit or an inline build (the cache's
          // canonical builder uses its own workspace, so per-level charges
          // do not double-count); either way it is coarsening time.
          PhaseScope phase(request.phases, PhaseProfile::kCoarsen, kTraceCat,
                           -1, static_cast<std::int64_t>(g.num_nodes()));
          const std::uint64_t gkey =
              request.graph_key != 0 ? request.graph_key : graph_digest(g);
          shared_h = request.coarsen_cache->hierarchy(gkey, coarsen_opts, g);
        }
      } else if (par.threads > 1) {
        // Parallel heavy-edge coarsening (deterministic by default; no RNG
        // consumed). A coarsen_cache, when present, wins instead: reusing
        // the shared canonical hierarchy beats rebuilding it in parallel.
        local = parallel_coarsen(g, coarsen_opts, par, ws, pool);
      } else {
        local = coarsen(g, coarsen_opts, cycle_rng, ws);
      }
      const Hierarchy& h = shared_h ? *shared_h : local;
      record_coarsen_trace(h, g, cycle, &result.trace);
      const Graph& coarsest = h.num_levels() == 1 ? g : h.coarsest();
      std::vector<PartId> coarse_assign;
      {
        PhaseScope phase(request.phases, PhaseProfile::kInitial, kTraceCat,
                         static_cast<std::int64_t>(h.num_levels() - 1),
                         static_cast<std::int64_t>(coarsest.num_nodes()));
        support::Rng grow_rng = cycle_rng.derive(0x6120);
        Partition seed_part =
            greedy_grow_initial(coarsest, k, c, grow_opts, grow_rng);
        support::Rng seed_fm_rng = cycle_rng.derive(0x6121);
        constrained_fm_refine(coarsest, seed_part, c, fm, seed_fm_rng, ws);
        coarse_assign.resize(coarsest.num_nodes());
        for (NodeId u = 0; u < coarsest.num_nodes(); ++u)
          coarse_assign[u] = seed_part[u];
      }
      assign = refine_down(h, g, std::move(coarse_assign), k, c, options_,
                           par, cycle_rng, cycle, &result.trace, ws);
    } else {
      // Cyclic re-coarsening around the incumbent (paper: "coarsened back to
      // the lowest level if needed … repeated a number of parametrized
      // times"), with a random kick so FM escapes the incumbent's basin
      // (iterated local search).
      RestrictedHierarchy rh =
          coarsen_restricted(g, *best_assign, coarsen_opts, cycle_rng, ws);
      record_coarsen_trace(rh.hierarchy, g, cycle, &result.trace);
      std::vector<PartId>& coarse = rh.coarse_parts;
      const NodeId cn = rh.hierarchy.coarsest().num_nodes();
      support::Rng kick_rng = cycle_rng.derive(0x6B1C6);
      const std::uint32_t kicks = std::max<std::uint32_t>(
          options_.perturbation_moves,
          static_cast<std::uint32_t>(cn / 64));
      for (std::uint32_t i = 0; i < kicks && cn > 1; ++i) {
        // Alternate single-node reassignments with pairwise swaps; swaps
        // keep loads level, which matters when Rmax is tight.
        const NodeId u = static_cast<NodeId>(kick_rng.uniform_index(cn));
        if (i % 2 == 0) {
          coarse[u] = static_cast<PartId>(
              kick_rng.uniform_index(static_cast<std::size_t>(k)));
        } else {
          const NodeId v = static_cast<NodeId>(kick_rng.uniform_index(cn));
          if (u != v) std::swap(coarse[u], coarse[v]);
        }
      }
      assign = refine_down(rh.hierarchy, g, std::move(coarse), k, c, options_,
                           par, cycle_rng, cycle, &result.trace, ws);
    }

    Partition p(g.num_nodes(), k);
    for (NodeId u = 0; u < g.num_nodes(); ++u) p.set(u, assign[u]);
    const Goodness goodness = compute_goodness(g, p, c);
    if (!best_assign || goodness < best_goodness) {
      best_goodness = goodness;
      best_assign = std::move(assign);
    }
    result.cycles_used = cycle + 1;
    if (best_goodness.resource_excess == 0 &&
        best_goodness.bandwidth_excess == 0) {
      // Feasible: allow a few polish cycles to chase cut, then stop.
      if (feasible_cycles++ >= options_.extra_cycles_after_feasible) break;
    }
  }

  result.partition = Partition(g.num_nodes(), k);
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    result.partition.set(u, (*best_assign)[u]);
  result.finalize(g, c);
  result.seconds = timer.seconds();
  if (!result.feasible) {
    PPNPART_INFO << "GP: no feasible partition within " << result.cycles_used
                 << " cycles — constraints may be infeasible or need more "
                    "iterations (paper Section IV-C)";
  }
  return result;
}

}  // namespace ppnpart::part
