#pragma once
// Minimal Status / Result<T> error handling (header-only).
//
// The library reports recoverable errors (bad input files, infeasible
// configurations, malformed graphs) through Result<T> instead of exceptions,
// per the project convention; exceptions remain for programming errors.

#include <optional>
#include <string>
#include <utility>

namespace ppnpart::support {

class Status {
 public:
  Status() = default;  // OK
  static Status ok() { return Status(); }
  static Status error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    s.ok_ = false;
    return s;
  }

  bool is_ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  static Result error(std::string message) {
    return Result(Status::error(std::move(message)));
  }

  bool is_ok() const { return status_.is_ok(); }
  explicit operator bool() const { return is_ok(); }
  const Status& status() const { return status_; }
  const std::string& message() const { return status_.message(); }

  /// Precondition: is_ok().
  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T value_or(T fallback) const {
    return is_ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace ppnpart::support
