#pragma once
// Shared-memory parallel multilevel kernels (ROADMAP open item 1).
//
// Everything above this layer parallelizes *across* runs (portfolio members,
// engine jobs); these kernels parallelize *inside* one run so a single large
// polyhedral process network can use the machine. Three pieces, in the
// Mt-KaHyPar mold adapted to this repo's CSR graphs and workspace rules:
//
//  * parallel coarsening — heavy-edge matching chunked across
//    support::ThreadPool (deterministic synchronous mutual-proposal rounds,
//    or free-running CAS claims on a per-node `matched` word), then a
//    parallel prefix-sum pass that reproduces the serial coarse-id
//    assignment bit-exactly and feeds graph::contract_csr;
//  * parallel refinement — size-constrained label propagation over the
//    boundary set: a read-only parallel scan proposes moves against the
//    round-start MoveContext state into per-thread buffers, then a serial
//    commit re-validates each candidate against the exact lexicographic
//    goodness (so LP is goodness-monotone and never worsens a projection);
//  * a deterministic mode (default ON) that fixes the reduction order —
//    per-chunk results merged in chunk-index order, synchronous LP rounds,
//    ties broken by node id — making fixed-seed results a pure function of
//    (graph, options), bit-identical at ANY thread count. Free-running mode
//    trades that for uncoordinated CAS matching and completion-order merges.
//
// Threading rules: chunks are contiguous node ranges, one ThreadArena per
// chunk task, carved from the single leased Workspace (the one-lease-per-run
// invariant holds; arenas are interior and disjoint). Scan phases only read
// shared state; mutation happens in serial phases between them, so the
// deterministic kernels are data-race-free by construction. All fan-out goes
// through support::ThreadPool and degrades to inline execution on a pool
// worker (nested parallelism) — deterministic results are unaffected because
// they do not depend on the executing thread count.

#include <cstdint>

#include "partition/coarsen.hpp"
#include "partition/partition.hpp"
#include "partition/workspace.hpp"
#include "support/thread_pool.hpp"

namespace ppnpart::part {

/// Resolved intra-run parallelism knobs, derived from
/// PartitionRequest::{threads, deterministic} by resolve_parallel().
struct ParallelOptions {
  /// Worker chunks per phase (>= 1). 1 still runs the parallel kernels —
  /// inline, single-chunk — which is how the p=1 leg of the determinism
  /// golden exercises the same code path.
  std::uint32_t threads = 1;
  /// Fix reduction order (chunk-index merges, synchronous rounds, node-id
  /// ties) so results are identical at any thread count.
  bool deterministic = true;
  /// Levels smaller than this use the serial kernels (task overhead and
  /// quality both favour serial on small graphs).
  NodeId min_parallel_nodes = 2048;
};

/// Maps PartitionRequest::threads (0 = auto = pool size, 1 = serial path,
/// n = n chunks) onto the pool. Values above the pool size are kept: chunk
/// count is a partitioning choice, not a thread count, and deterministic
/// results do not depend on it.
ParallelOptions resolve_parallel(std::uint32_t requested, bool deterministic,
                                 support::ThreadPool& pool);

/// Parallel heavy-edge matching into `match` (resized to g.num_nodes()).
/// Deterministic mode runs synchronous mutual-proposal rounds (each free
/// node proposes its heaviest free neighbour, ties to the smaller id;
/// mutual proposals pair up) — a pure function of the graph. Free-running
/// mode claims pairs with CAS on a per-node word, so the matching depends
/// on scheduling. Returns the total matched edge weight.
Weight parallel_heavy_edge_matching(const Graph& g,
                                    const ParallelOptions& options,
                                    Matching& match, Workspace& ws,
                                    support::ThreadPool& pool);

/// Chunked prefix-sum coarse-id assignment: bit-identical to the serial
/// ascending scan (ids ascend by the pair's smaller endpoint) at any chunk
/// count. Returns the coarse node count.
NodeId parallel_fine_to_coarse(const Graph& fine, const Matching& matching,
                               const ParallelOptions& options,
                               std::vector<NodeId>& fine_to_coarse,
                               Workspace& ws, support::ThreadPool& pool);

/// Multilevel coarsening through the parallel matching + prefix-sum map +
/// graph::contract_csr. Winners are always kHeavyEdge (the parallel path
/// does not run the serial matching competition). Deterministic mode yields
/// one hierarchy per (graph, options) regardless of thread count.
Hierarchy parallel_coarsen(const Graph& g, const CoarsenOptions& options,
                           const ParallelOptions& popts, Workspace& ws,
                           support::ThreadPool& pool);

struct LpRefineOptions {
  /// Synchronous scan/commit rounds; a round that commits nothing stops.
  std::uint32_t max_rounds = 12;
};

/// Size-constrained parallel label propagation under the lexicographic
/// goodness. Scan: boundary nodes (against the round-start state) propose
/// their best-connected target part into per-chunk buffers. Commit (serial,
/// node-id order in deterministic mode, completion order otherwise):
/// re-validate each candidate with MoveContext::goodness_after and apply
/// strictly-improving moves only — per-block weight budgets are enforced
/// exactly because overload is the leading goodness component. Returns true
/// iff any move was committed.
bool parallel_lp_refine(const Graph& g, Partition& p, const Constraints& c,
                        const LpRefineOptions& options,
                        const ParallelOptions& popts, Workspace& ws,
                        support::ThreadPool& pool);

}  // namespace ppnpart::part
