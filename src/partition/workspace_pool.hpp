#pragma once
// Leased pool of reusable Workspaces for the engine's warm-start machinery.
//
// A Workspace is deliberately unsynchronized scratch with a hard ownership
// rule: ONE run at a time, never shared across threads. The engine used to
// satisfy that rule with a single workspace behind a mutex — correct, but it
// serialized every warm start, and once similarity warm starts moved onto
// pool tasks it would have parked the submitter behind whichever task held
// the lock. A WorkspacePool keeps a small fixed set of workspaces and hands
// them out as exclusive RAII leases instead: concurrent warm-start tasks
// each lease their own scratch, and the WorkspaceLease debug guard inside
// the partitioner entry points still aborts if any path ever shares one.
//
// acquire() blocks until a workspace frees. That is deadlock-free here:
// holders are bounded warm-start runs that never wait on non-holders, so
// some holder always completes and releases. Hand-out is LIFO — the most
// recently released (size-warm, cache-warm) workspace goes out first, so a
// steady state of same-sized graphs keeps reusing one warm workspace and
// stops growing buffers entirely (the property
// EngineStats::repartition_ws_growths tracks).

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "partition/workspace.hpp"

namespace ppnpart::part {

class WorkspacePool {
 public:
  /// Builds `capacity` workspaces up front (at least one). No allocation
  /// happens on acquire/release.
  explicit WorkspacePool(std::size_t capacity);

  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  /// Exclusive RAII lease of one pooled workspace; returns it to the pool
  /// on destruction. Movable, never copyable — exactly one owner at a
  /// time, like the workspace itself.
  class Lease {
   public:
    Lease() = default;
    ~Lease() { release(); }
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), ws_(other.ws_), index_(other.index_) {
      other.pool_ = nullptr;
      other.ws_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = other.pool_;
        ws_ = other.ws_;
        index_ = other.index_;
        other.pool_ = nullptr;
        other.ws_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    Workspace* get() const { return ws_; }
    Workspace& operator*() const { return *ws_; }
    explicit operator bool() const { return ws_ != nullptr; }

   private:
    friend class WorkspacePool;
    Lease(WorkspacePool* pool, Workspace* ws, std::size_t index)
        : pool_(pool), ws_(ws), index_(index) {}
    void release();
    WorkspacePool* pool_ = nullptr;
    Workspace* ws_ = nullptr;
    std::size_t index_ = 0;
  };

  /// Blocks until a workspace is free, then leases it (LIFO hand-out).
  Lease acquire();

  /// Fixed at construction; safe to read without the lock.
  std::size_t capacity() const { return all_.size(); }
  /// Workspaces currently free (diagnostics/tests).
  std::size_t available() const;
  /// Sum of buffer growths across every pooled workspace, as of each
  /// workspace's last release — a leased workspace's in-flight growths are
  /// counted when it comes back, so this never races a holder's unsynchronized
  /// scratch. Warm steady state (stable graph family) stops advancing it.
  std::uint64_t total_growths() const;

 private:
  friend class Lease;
  void put_back(std::size_t index);

  struct Slot {
    std::unique_ptr<Workspace> ws;
    /// Growth counter snapshot taken at release time (under mutex_, with no
    /// concurrent user by the lease exclusivity rule).
    std::uint64_t growths = 0;
  };

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Slot> all_;            // fixed after construction
  std::vector<std::size_t> free_;    // indices into all_, LIFO stack
};

}  // namespace ppnpart::part
