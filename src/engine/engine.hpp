#pragma once
// Portfolio partitioning engine — the library's concurrent service core.
//
// The paper's multi-level flow answers one request with one algorithm. This
// subsystem turns that into a multi-tenant service: batches of
// (graph, request) jobs race a configurable portfolio of partitioners
// across the global thread pool, with
//
//   * per-job wall-clock budgets (StopToken deadlines; members return their
//     best-so-far when the budget fires, so an answer always exists),
//   * cooperative cancellation once a member's result is feasible and beats
//     a quality threshold (remaining members are stopped / skipped),
//   * deterministic per-member seed streams (SeedStream of the request
//     seed), so a fixed seed reproduces bit-identical results regardless of
//     scheduling — provided no budget/cancel threshold is set, since those
//     trade determinism for latency by construction,
//   * an in-memory LRU result cache keyed by graph fingerprint + request
//     hash + portfolio identity, so repeated queries (the heavy-traffic
//     scenario) are served in O(1) without touching the pool,
//   * shared graphs: a Job holds a shared_ptr<const Graph>, so a batch of N
//     jobs over one network holds ONE graph (not N copies), its fingerprint
//     is computed once and memoized, and a CoarseningCache shares the
//     multilevel coarsening across members and jobs on the same graph —
//     different k/seeds/algorithms re-run only initial partitioning and
//     refinement,
//   * single-flight keys: concurrent jobs with an identical cache key
//     coalesce onto one in-flight computation and share its outcome
//     (marked `coalesced`), instead of racing duplicate portfolios. Jobs
//     carrying a caller stop token never coalesce — their cancellation
//     semantics stay their own,
//   * incremental repartitioning: repartition(job, delta, prev) applies a
//     GraphDelta to an answered network and refines the previous solution
//     around the edit sites from a reusable workspace instead of paying a
//     full portfolio run — falling back to one (and to the caches) when
//     the delta is too large. The edited graph gets its own content
//     fingerprint, so every cache rekeys instead of serving stale entries,
//   * similarity-aware admission (opt-in, EngineOptions::similarity): plain
//     CSR arrivals that are near-identical to a recently served graph are
//     detected by sketch (support::GraphSketch -> SimilarityIndex), diffed
//     into a GraphDelta (graph::diff) and answered by the same warm-started
//     refinement — no caller-supplied delta required.
//
// Every entry point — run_one (synchronous), run_batch (fan out a vector of
// jobs and wait), the streaming submit/poll/wait trio, and repartition —
// goes through ONE admission pipeline (admit()):
//
//   stage 1  exact fingerprint hit      -> serve the cached result
//   stage 2  warm start                 -> caller-supplied delta
//            (repartition) or a sketch near-hit (similarity admission,
//            re-verified by bit-identical diff reconstruction) seeds
//            IncrementalPartitioner from the matched graph's partition.
//            For similarity the submitter only pays the sketch probe: the
//            diff -> verify -> refine verdict runs as a WARM-START TASK on
//            the thread pool, with scratch leased from an engine-owned
//            WorkspacePool. Concurrent near-twins of an unanswered graph
//            coalesce batch-aware: the first routes full as the cohort's
//            leader, the rest park and warm-start from its indexed answer
//   stage 3  full portfolio             -> single-flight member fan-out,
//            the answer enters the result cache and the similarity index
//
// Admission correctness rails: a warm-started answer is computed ON the
// arriving graph (always a valid partition of it), is NEVER written to the
// exact result cache (it depends on the matched previous answer; the cache
// key does not), and an estimated-too-far or diff-too-large arrival falls
// through to the untouched full path. One pipeline, one cache, one stats
// block; all entry points are safe to call from multiple client threads.
//
// Winner selection is deterministic: members are compared by (goodness,
// member index), never by completion order.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/cache.hpp"
#include "engine/portfolio.hpp"
#include "engine/similarity.hpp"
#include "graph/delta.hpp"
#include "graph/graph.hpp"
#include "partition/coarsen_cache.hpp"
#include "partition/incremental.hpp"
#include "partition/partitioner.hpp"
#include "partition/workspace_pool.hpp"
#include "support/metrics.hpp"
#include "support/status.hpp"

namespace ppnpart::engine {

/// What bounded admission does when the pending queue is full (see
/// EngineOptions::queue_capacity). Shed jobs complete immediately with a
/// typed error on PortfolioOutcome::status — submit() itself never blocks.
enum class ShedPolicy : std::uint8_t {
  /// Refuse the arriving job (kResourceExhausted); queued work is safe.
  kRejectNew,
  /// Admit the arriving job and shed the OLDEST still-queued job instead
  /// (kResourceExhausted): freshest work wins, e.g. when newer requests
  /// supersede older ones.
  kDropOldest,
  /// Like kRejectNew, but additionally refuses any job whose caller
  /// StopToken deadline will expire before the queue ahead of it can drain
  /// (kDeadlineExceeded, estimated from the engine's recent job latency) —
  /// no cycles are spent computing answers nobody is still waiting for.
  kDeadlineAware,
};

/// Stable lowercase label ("reject_new", "drop_oldest", "deadline_aware").
const char* to_string(ShedPolicy policy);
/// Parses a shed-policy name (the CLI's --shed values); kInvalidArgument on
/// anything else.
support::Result<ShedPolicy> parse_shed_policy(const std::string& name);

/// Members cheap enough for the degradation ladder's reduced rungs: the
/// single-pass heuristics plus GP (nlevel/annealing/tabu/genetic/exact are
/// the expensive tail — on the tracked workload NLevel alone costs ~30x GP).
bool is_cheap_member(const std::string& name);

struct EngineOptions {
  Portfolio portfolio = Portfolio::defaults();

  /// Per-job wall-clock budget in milliseconds; 0 = unlimited. The budget
  /// is cooperative: member 0 of a job always runs (partitioners produce a
  /// complete partition even when stopped at their first checkpoint), so a
  /// blown budget degrades quality, never availability. Checkpoint polls
  /// exist in the iterative members (gp, annealing, genetic, tabu) and in
  /// exact's branch-and-bound; the single-pass heuristics (metislike,
  /// nlevel, kl, spectral, random) run to completion — they are the fast,
  /// bounded members, so the overshoot is one direct pass at worst.
  double time_budget_ms = 0;

  /// Early-exit quality gate: once some member's result is feasible with
  /// total cut <= cancel_cut_threshold, the job's remaining members are
  /// stopped (running ones at their next checkpoint, unstarted ones are
  /// skipped). Negative disables the gate.
  part::Weight cancel_cut_threshold = -1;

  /// Shorthand gate: any feasible member result cancels the rest. Useful
  /// when the caller wants *a* feasible mapping as fast as possible.
  bool cancel_on_feasible = false;

  /// Result-cache capacity in jobs; 0 disables caching.
  std::size_t cache_capacity = 4096;

  /// Coarsening-cache capacity in hierarchies; 0 disables coarsening reuse
  /// (members then coarsen per run, with the request seed folded into the
  /// coarsening randomness, exactly like standalone partitioner use).
  std::size_t coarsen_cache_capacity = 32;

  /// Thresholds of the incremental repartitioning path (see
  /// part::IncrementalOptions); past them Engine::repartition falls back to
  /// a FULL PORTFOLIO run — `incremental.fallback_algorithm` is therefore
  /// ignored here (it only applies to standalone IncrementalPartitioner
  /// use): the portfolio is the engine's stronger, cacheable fallback.
  /// `incremental.max_diff_ops_fraction` also gates the similarity path's
  /// reconstructed diffs.
  part::IncrementalOptions incremental;

  /// Similarity-aware admission (stage 2 for plain CSR arrivals). Off by
  /// default — see SimilarityOptions for the knobs and the trade-offs.
  SimilarityOptions similarity;

  /// Size of the engine-owned workspace pool that warm starts lease scratch
  /// from (similarity warm-start tasks and repartition calls). Each
  /// workspace grows to the working graph size and is then reused; more
  /// workspaces let more warm starts refine concurrently, fewer cap the
  /// scratch memory. At least one is always built.
  std::size_t warm_workspaces = 2;

  /// Overload protection: bounds the number of stage-3 (full-portfolio)
  /// jobs admitted but not yet fanned out. 0 (default) disables protection
  /// entirely — every job fans out immediately, exactly the pre-overload
  /// behaviour. With a capacity set, submit() NEVER blocks and never queues
  /// unboundedly: a full queue sheds per `shed_policy`, and rising depth
  /// walks the degradation ladder (see AdmissionDecision::DegradeRung)
  /// before any shedding happens. The capacity is enforced against the
  /// depth snapshot each admission observes; concurrent admits can
  /// transiently overshoot by the number of in-flight submit() calls.
  std::size_t queue_capacity = 0;

  /// What to do with the overflow once the queue is full.
  ShedPolicy shed_policy = ShedPolicy::kRejectNew;

  /// How many stage-3 jobs may be fanned out onto the pool concurrently
  /// while overload protection is on (ignored when queue_capacity == 0).
  /// 0 = auto: pool size / portfolio size, at least 1 — member tasks about
  /// fill the pool. Finished jobs pump the queue, so held-back jobs start
  /// the moment capacity frees.
  std::size_t max_running_jobs = 0;

  /// Graceful degradation ladder (only meaningful with queue_capacity > 0):
  /// instead of failing under load, admission deterministically steps down
  ///   full portfolio -> cheap-members-only -> GP-only -> projected answer
  /// by observed queue depth (quarter/half of capacity) and caller budget
  /// (an expired StopToken deadline gets the projected rung: a coarse
  /// answer now beats a full answer after the caller stopped waiting).
  /// The rung is a pure function of (depth snapshot, budget state), so a
  /// fixed submission order replays the same ladder. Degraded answers are
  /// NEVER written to the result cache or the similarity index — the rung
  /// depends on transient load, the cache key does not.
  bool degrade_under_load = true;

  /// Intra-member parallelism: PartitionRequest::threads handed to every
  /// portfolio member (1 = serial members, the default; 0 = auto = pool
  /// size; >= 2 = the parallel multilevel path). The engine caps the
  /// effective value so members x threads never oversubscribes the pool
  /// (see Engine::threads_per_job()); deterministic mode makes the cap
  /// result-neutral — parallel-path answers are identical at any thread
  /// count, so capping (or nested serial degradation when the pool is
  /// saturated) changes timing only, never output or cache contents.
  std::uint32_t threads_per_job = 1;

  /// Metrics sink (non-owning; must outlive the engine). Null = the
  /// process-wide support::MetricsRegistry::global(). The engine records
  /// admission-path counters, job latency histograms and per-member
  /// run/win/loss/time series under the "engine." prefix; tests hand in a
  /// private registry to assert exact values in isolation.
  support::MetricsRegistry* metrics = nullptr;
};

/// Per-member accounting of one job.
struct MemberOutcome {
  std::string algorithm;
  part::Goodness goodness;
  double seconds = 0;
  bool ran = false;     // false = skipped by cancellation before starting
  bool failed = false;  // threw (e.g. Exact on an oversized graph)
  bool won = false;     // this member's result was selected as the answer
  std::string error;
};

/// Structured admission decision record: which pipeline stage answered a
/// job and why. Returned on the outcome and emitted as a trace instant, so
/// "why did this job take the path it took" is answerable offline — the
/// provenance signal the adaptive-portfolio roadmap item learns from.
struct AdmissionDecision {
  enum class Path : std::uint8_t {
    kExactHit,       // stage 1: result-cache fingerprint hit
    kWarmStart,      // stage 2: caller-supplied delta warm start
    kSimilarity,     // stage 2: sketch near-hit, diffed and warm-started
    kFullPortfolio,  // stage 3: member fan-out
    kShed,           // bounded admission refused/evicted the job (typed
                     // error on PortfolioOutcome::status, no answer)
  };
  /// The degradation ladder's rung for a stage-3 job (see
  /// EngineOptions::degrade_under_load). Anything below kFull marks a
  /// degraded answer: valid and complete, computed with reduced effort.
  enum class DegradeRung : std::uint8_t {
    kFull = 0,       // the whole portfolio raced
    kCheapMembers,   // only the portfolio's cheap members ran
    kGpOnly,         // a single cheap member ran
    kProjected,      // coarsen + initial partition + project, no refinement
  };
  Path path = Path::kFullPortfolio;
  DegradeRung rung = DegradeRung::kFull;
  /// The similarity index was consulted for this job.
  bool sim_probed = false;
  /// The similarity verdict (diff -> verify -> refine) ran as a warm-start
  /// task on the pool instead of on the submitting thread — set both for
  /// sketch matches handed straight to a task and for parked near-twin
  /// followers resumed by their leader.
  bool warm_deferred = false;
  /// This job led a near-twin cohort: it arrived before any twin was
  /// answered, registered as the pending leader and routed full-portfolio;
  /// its answer seeded the parked followers' warm starts.
  bool warm_leader = false;
  /// Why a consulted warm start fell through to the full path ("no sketch
  /// match", "diff too large", ...). Empty when it did not.
  std::string decline_reason;
};

/// Stable lowercase label of an admission path ("exact-hit", "warm-start",
/// "similarity", "full-portfolio", "shed").
const char* to_string(AdmissionDecision::Path path);
/// Stable lowercase label of a degradation rung ("full", "cheap-members",
/// "gp-only", "projected").
const char* to_string(AdmissionDecision::DegradeRung rung);

/// The engine's answer for one job.
struct PortfolioOutcome {
  /// Why there is no answer, when there is none: shed jobs carry
  /// kResourceExhausted (queue full) or kDeadlineExceeded (deadline-aware
  /// admission), and a job whose every member failed carries kInternal.
  /// ok() whenever `winner` is non-empty — check this FIRST; `best` is
  /// meaningless on error.
  support::Status status;
  part::PartitionResult best;  // the winning member's full result
  std::string winner;          // registry name of the winning member
  bool from_cache = false;
  bool coalesced = false;       // served by an identical in-flight job
  /// Served by similarity admission: a sketch near-hit was diffed and
  /// warm-started (winner == "similarity"). Mutually exclusive with
  /// from_cache; the answer was computed fresh on THIS job's graph.
  bool similarity = false;
  bool budget_expired = false;  // the job's deadline fired
  double seconds = 0;           // engine-observed job latency
  std::uint64_t key = 0;        // cache key (diagnostics)
  /// How admission routed this job (decline provenance included).
  AdmissionDecision decision;
  std::vector<MemberOutcome> members;
};

/// Engine::repartition's answer: the portfolio-style outcome plus the
/// edited graph, the node map and the touched set the caller needs to keep
/// evolving the network (chain the next delta against `graph`, hand
/// `outcome.best` back as `prev`).
struct RepartitionOutcome {
  PortfolioOutcome outcome;
  std::shared_ptr<const graph::Graph> graph;  // the post-delta graph
  std::vector<graph::NodeId> node_map;  // extended old id -> new id
  std::vector<graph::NodeId> touched;   // delta-touched new-graph ids
  bool incremental = false;  // true = the warm-started path answered
  std::string fallback_reason;  // why the full portfolio (or cache) answered
};

// A caller-armed request.stop is honoured: the per-job token links it as a
// parent, so firing it cancels the job exactly like the quality gate does
// (running members stop at their next checkpoint; an answer still exists
// once any member completes).
struct EngineStats {
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_coalesced = 0;  // duplicates served by single-flight
  /// Bounded-admission accounting (queue_capacity > 0). Every submitted
  /// stage-3 job ends in exactly one of completed / rejected / shed:
  /// `rejected` = refused at admission (queue full under reject_new /
  /// deadline_aware, or an unmeetable deadline); `shed` = admitted, queued,
  /// then evicted by drop_oldest before running. Both complete immediately
  /// with a typed error outcome. `degraded` counts jobs ADMITTED below the
  /// full rung (decision-time count; a degraded job later evicted by
  /// drop_oldest still counted here).
  std::uint64_t jobs_rejected = 0;
  std::uint64_t jobs_shed = 0;
  std::uint64_t jobs_degraded = 0;
  std::uint64_t members_run = 0;
  std::uint64_t members_skipped = 0;
  std::uint64_t members_failed = 0;
  std::uint64_t repartitions_incremental = 0;  // warm-started answers
  std::uint64_t repartitions_fallback = 0;     // declined -> full portfolio
  std::uint64_t repartition_cache_hits = 0;    // post-edit twin in the cache
  /// Buffer growths across the engine-owned warm-start workspace pool
  /// (summed at each lease release); a warm steady state (stable network
  /// size) stops advancing it.
  std::uint64_t repartition_ws_growths = 0;
  /// Full graph_fingerprint computations; shared graphs are memoized, so a
  /// batch of N jobs over one shared graph computes exactly one. (Distinct
  /// client threads racing the very first submit of the same graph may
  /// each compute once — the memo coalesces every later call, not the
  /// initial race.)
  std::uint64_t graph_fingerprints_computed = 0;
  /// The deadline-aware policy's drain-time estimate: an EWMA of FULL-rung
  /// completion latencies. 0 until the first full-path completion seeds it
  /// (degraded/projected completions never feed it — they finish fast by
  /// design and would bias the estimate low). Diagnostics: this is the
  /// per-job seconds the admission gate multiplies by queue depth.
  double avg_job_seconds = 0;
  CacheStats cache;
  CacheStats coarsening;  // CoarseningCache traffic (hits = reused builds)
  /// Similarity-admission traffic: probes (admissions that consulted the
  /// index), near_hits (warm starts served), declines (probes routed to the
  /// full path), deferred/parked (async-stage traffic), plus the index's
  /// insert/evict counters. Updated under the engine mutex — exact even
  /// under concurrent submit. A probe and its verdict are bumped as one
  /// transaction AT RESOLUTION TIME (on the warm-start task's pool thread
  /// when deferred), so `probes == near_hits + declines` holds in EVERY
  /// snapshot — never a torn mid-probe view, even while verdicts are in
  /// flight on the pool.
  SimilarityStats similarity;
  /// Snapshot of the engine's metrics registry ("engine." counters, job
  /// latency histograms, per-member win/loss/time series). Note: a shared
  /// (global) registry snapshots everything recorded into it, including
  /// other engines'.
  support::MetricsSnapshot metrics;
};

/// One unit of work for the batch/streaming entry points. The graph is held
/// by shared_ptr so a same-graph batch shares one copy; the by-value
/// constructor wraps for callers that still hand graphs in directly.
struct Job {
  std::shared_ptr<const graph::Graph> graph;
  part::PartitionRequest request;

  Job() = default;
  Job(std::shared_ptr<const graph::Graph> g, part::PartitionRequest r)
      : graph(std::move(g)), request(std::move(r)) {}
  /// Convenience: moves/copies the graph into shared ownership.
  Job(graph::Graph g, part::PartitionRequest r)
      : graph(std::make_shared<graph::Graph>(std::move(g))),
        request(std::move(r)) {}
};

class Engine {
 public:
  using JobId = std::uint64_t;

  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const EngineOptions& options() const { return options_; }

  /// Effective PartitionRequest::threads handed to every portfolio member:
  /// EngineOptions::threads_per_job (0 = pool size) capped so that
  /// members x threads <= pool size — concurrent member tasks already fill
  /// the pool, so uncapped intra-member fan-out would only oversubscribe.
  /// Always >= 1.
  std::uint32_t threads_per_job() const { return threads_per_job_; }

  /// Synchronous single-job entry point. A cache hit returns without
  /// copying the graph or touching the pool. The const& overload aliases
  /// the caller's graph for the duration of the call (no copy; run_one
  /// blocks until the job finishes, so the reference stays valid); the
  /// shared_ptr overload additionally memoizes the graph's fingerprint
  /// across calls that share the pointer.
  PortfolioOutcome run_one(const graph::Graph& g,
                           const part::PartitionRequest& request);
  PortfolioOutcome run_one(std::shared_ptr<const graph::Graph> g,
                           const part::PartitionRequest& request);
  // (The const& overload fingerprints per call — only truly shared
  // pointers are safe to memoize by address.)

  /// Fans every job's every member onto the thread pool at once and waits;
  /// results are returned in job order. Throughput scales with cores
  /// because members of *different* jobs overlap, not just members of one.
  /// Jobs hold their graphs by shared_ptr, so both overloads are cheap; the
  /// && overload exists for callers that built the vector to hand over.
  std::vector<PortfolioOutcome> run_batch(const std::vector<Job>& jobs);
  std::vector<PortfolioOutcome> run_batch(std::vector<Job>&& jobs);

  /// Streaming: enqueue a job and return immediately. With overload
  /// protection on (EngineOptions::queue_capacity > 0) this NEVER blocks on
  /// a full queue: a refused job still gets a valid JobId whose outcome is
  /// already complete, with an empty `winner` and a typed
  /// PortfolioOutcome::status (kResourceExhausted / kDeadlineExceeded) —
  /// poll/wait on it return immediately, exactly like any finished job.
  /// Rejection is reported through the outcome rather than here so every
  /// caller, streaming or batch, sees one uniform completion protocol.
  JobId submit(Job job);

  /// Non-blocking: the outcome if the job finished, nullopt otherwise.
  /// A shed/rejected job counts as finished the moment submit() returns
  /// (its typed-error outcome is immediately available). A returned outcome
  /// releases the job's bookkeeping; a second poll of the same id reports
  /// an error (std::invalid_argument).
  std::optional<PortfolioOutcome> poll(JobId id);

  /// Blocks until the job finishes, then behaves like a successful poll.
  /// Never blocks on a shed/rejected job — those are born finished; check
  /// outcome.status to distinguish an answer from a typed refusal.
  PortfolioOutcome wait(JobId id);

  /// Incremental repartitioning of an evolving network. Applies `delta` to
  /// job.graph (the PRE-edit graph; immutable, never mutated), projects
  /// `prev` (the partition answered for that graph) through the old->new
  /// node map, and refines it with boundary-seeded FM from the engine-owned
  /// reusable workspace. When the delta exceeds the EngineOptions::incremental
  /// thresholds, the full portfolio runs on the edited graph instead
  /// (`incremental == false`, `fallback_reason` says why).
  ///
  /// Cache discipline — the edited graph is a NEW immutable object with its
  /// own content fingerprint, so every digest-keyed cache rekeys
  /// automatically and pre-edit entries can never be served for the
  /// post-edit graph. A cached FULL answer for exactly the edited graph is
  /// served (it is a pure function of graph+request). Incremental answers
  /// are deliberately NOT inserted into the result cache: they depend on
  /// `prev`, and the cache key does not — caching them would hand
  /// prev-dependent answers to future full-effort twins. Fallback runs
  /// flow through the normal job path and are cached as usual.
  ///
  /// Safe to call from multiple client threads; each incremental refinement
  /// leases its own workspace from the engine-owned pool (concurrent calls
  /// only wait when every pooled workspace is busy). Budget exemption: the
  /// incremental
  /// path is short and bounded (projection + seeding + a fixed FM pass
  /// budget) and deliberately does not poll request.stop mid-refinement; a
  /// caller stop token governs the fallback portfolio run exactly as in
  /// run_one.
  RepartitionOutcome repartition(const Job& job, const graph::GraphDelta& delta,
                                 const part::PartitionResult& prev);

  EngineStats stats() const;

  /// Clears the result cache, the coarsening cache and the similarity
  /// index.
  void clear_cache();

 private:
  struct JobState;

  /// How the admission pipeline answered a job (recorded on its JobState).
  enum class Route : std::uint8_t {
    kFull,         // stage 3: portfolio member fan-out
    kResultCache,  // stage 1: exact fingerprint hit
    kWarmStart,    // stage 2: caller-supplied delta warm start
    kSimilarity,   // stage 2: sketch near-hit, diffed and warm-started
  };

  /// A caller-supplied warm start (repartition): the previous partition of
  /// the pre-edit graph plus the node map / touched set its delta produced.
  /// Spans alias caller storage; valid only for the duration of admit().
  struct WarmStartSeed {
    const part::Partition* prev = nullptr;
    std::span<const graph::NodeId> node_map;
    std::span<const graph::NodeId> touched;
  };

  std::uint64_t job_key(std::uint64_t graph_fp,
                        const part::PartitionRequest& request) const;
  /// Memoized graph_fingerprint: one computation per live shared graph.
  /// Only owning pointers may pass through here — the weak_ptr validity
  /// probe assumes the pointee lives exactly as long as the control block.
  std::uint64_t shared_graph_fingerprint(
      const std::shared_ptr<const graph::Graph>& g);

  /// run_one's body: the synchronous entry points prepend an O(1)
  /// exact-hit fast path ("a hash and a lookup", no JobState) before
  /// joining the shared pipeline with check_cache=false, so a repeated
  /// query never pays job bookkeeping.
  PortfolioOutcome run_one_impl(std::shared_ptr<const graph::Graph> g,
                                const part::PartitionRequest& request,
                                std::uint64_t graph_fp, bool owns_graph);

  /// The one front door (see the file comment's pipeline). `owns_graph` is
  /// false only for run_one's aliasing const& overload, whose graph must
  /// never outlive the call — it may PROBE the similarity index but is
  /// never inserted into it (and never leads a near-twin cohort).
  /// `caller_warm`, when set, takes stage 2 (the similarity probe is
  /// skipped; the caller's delta is the better signal) and `warm_stats`
  /// receives the warm start's accounting. `check_cache` is false when the
  /// caller already ran the stage-1 lookup (run_one's fast path) — the miss
  /// was counted there and must not be recounted.
  ///
  /// Stage 1 and the caller-delta warm start answer inline on the admitting
  /// thread (a cache hit is O(1); repartition is a synchronous API). A
  /// SIMILARITY admission costs the submitter only the sketch probe: the
  /// diff -> verify -> refine verdict runs as a warm-start task on the
  /// thread pool (spawn_warm_task / run_warm_task), so submit() returns in
  /// bounded time with the warm start still in flight.
  std::shared_ptr<JobState> admit(Job job, std::uint64_t graph_fp,
                                  bool owns_graph,
                                  const WarmStartSeed* caller_warm,
                                  part::IncrementalStats* warm_stats,
                                  bool check_cache = true);
  /// Stage-2 helpers: run the engine-owned warm start machinery.
  std::optional<part::PartitionResult> run_warm_start(
      const std::shared_ptr<JobState>& state, const WarmStartSeed& seed,
      part::IncrementalStats* stats);
  bool admit_similarity(const std::shared_ptr<JobState>& state);
  /// Hands the deferred similarity verdict to the pool (falls through to
  /// the full path when the task cannot be submitted). The probe is counted
  /// when the verdict lands, never here.
  void spawn_warm_task(const std::shared_ptr<JobState>& state,
                       SimilarityIndex::Match match);
  /// The warm-start task body: lease a pooled workspace, diff -> verify ->
  /// refine, then either serve the similarity answer or decline to the
  /// full path. Runs on a pool worker (or inline as spawn's fallback).
  void run_warm_task(const std::shared_ptr<JobState>& state,
                     SimilarityIndex::Match match);
  /// One-transaction probe accounting for a declined verdict (see
  /// EngineStats::similarity); the caller routes the job afterwards.
  void count_probe_declined(const std::shared_ptr<JobState>& state,
                            const std::string& reason);
  /// Resumes a parked near-twin follower after its leader resolved:
  /// re-probes the index (the leader's answer is there on success) and
  /// warm-starts from it, or declines to the full path.
  void resume_follower(const std::shared_ptr<JobState>& state);
  /// If `state` leads a near-twin cohort, unregisters it and hands every
  /// parked follower its own resumption task. MUST be called on every
  /// completion path of a potential leader, before its `done` flip — a
  /// stranded follower would hang its waiter forever.
  void resolve_sim_pending(const std::shared_ptr<JobState>& state);
  /// Publishes a stage-2 answer: indexes the fresh partition, wraps it as
  /// a one-member PortfolioOutcome labelled `winner`, serves it inline.
  void serve_warm(const std::shared_ptr<JobState>& state,
                  part::PartitionResult result, const char* winner,
                  bool similarity_served);
  /// Publishes an admission-stage answer (stages 1-2) on the state.
  void serve_inline(const std::shared_ptr<JobState>& state,
                    PortfolioOutcome outcome);
  /// Records the arriving graph + its fresh answer in the similarity index
  /// (no-op when disabled or the job does not own its graph).
  void maybe_index(const std::shared_ptr<JobState>& state,
                   const part::Partition& partition);
  /// Stage 3: single-flight registration and portfolio member fan-out.
  void launch_full(const std::shared_ptr<JobState>& state);
  /// Bounded-admission gate (queue_capacity > 0): picks the degradation
  /// rung from the depth snapshot + caller budget, then either marks the
  /// state runnable (true), queues it, or sheds it / a queued victim per
  /// the policy. False = the caller must NOT fan out; the state's outcome
  /// is (or will be) published by the gate machinery.
  bool admission_gate(const std::shared_ptr<JobState>& state);
  /// Member indices the given rung races (kFull -> all; reduced rungs pick
  /// from the cheap set). Never empty.
  std::vector<std::size_t> members_for_rung(
      AdmissionDecision::DegradeRung rung) const;
  /// The actual pool fan-out of launch_full, factored out so the queue
  /// pump can start held-back jobs later.
  void fan_out(const std::shared_ptr<JobState>& state);
  /// Starts queued jobs while running slots are free. Called when a
  /// finishing job releases its slot — before its `done` flip, per
  /// finalize_job's ordering rule.
  void pump_queue();
  /// Completes a job WITHOUT an answer: publishes a typed-error outcome,
  /// drains single-flight followers with the same error, erases the
  /// inflight entry. The shed path's finalize_job.
  void serve_error(const std::shared_ptr<JobState>& state,
                   support::Status status);
  /// The ladder's last rung: coarsen (via the coarsening cache when on) +
  /// greedy-grow on the coarsest level + project to the finest — a valid,
  /// feasible-balance-effort answer at a fraction of one member's cost.
  /// Never cached or indexed.
  void serve_projected(const std::shared_ptr<JobState>& state);

  std::shared_ptr<JobState> find_job(JobId id);
  PortfolioOutcome take_outcome(const std::shared_ptr<JobState>& state);
  void run_member(const std::shared_ptr<JobState>& state, std::size_t index);
  void finalize_job(const std::shared_ptr<JobState>& state);

  bool similarity_enabled() const {
    return options_.similarity.enabled && options_.similarity.capacity > 0;
  }

  EngineOptions options_;
  /// Resolved in the constructor: threads_per_job capped by pool/portfolio.
  std::uint32_t threads_per_job_ = 1;
  LruCache<PortfolioOutcome> cache_;
  part::CoarseningCache coarsen_cache_;
  part::IncrementalPartitioner incremental_;
  SimilarityIndex sim_index_;

  /// Resolved metrics sink (options_.metrics or the global registry) and
  /// handles cached at construction: hot-path updates are plain relaxed
  /// atomics, no name lookups. Pointers are registry-stable for its
  /// lifetime.
  support::MetricsRegistry& metrics_;
  struct PathMetrics {
    support::Counter* jobs = nullptr;        // engine.jobs
    support::Counter* exact_hits = nullptr;  // engine.admit.exact_hit
    support::Counter* warm_starts = nullptr;
    support::Counter* sim_served = nullptr;
    support::Counter* sim_declined = nullptr;
    support::Counter* sim_deferred = nullptr;  // engine.admit.sim_deferred
    support::Counter* sim_parked = nullptr;    // engine.admit.sim_parked
    support::Counter* full_runs = nullptr;
    support::Counter* rejected = nullptr;   // engine.admit.rejected
    support::Counter* shed = nullptr;       // engine.admit.shed
    support::Counter* degrade_cheap = nullptr;  // engine.degrade.cheap_members
    support::Counter* degrade_gp = nullptr;     // engine.degrade.gp_only
    support::Counter* degrade_projected = nullptr;  // engine.degrade.projected
    support::Histogram* job_us = nullptr;   // engine.job.time_us
    support::Histogram* warm_us = nullptr;  // engine.warm.time_us
  };
  PathMetrics path_metrics_;
  /// Per portfolio member, by index. `span_name` is the member's interned
  /// registry name, usable as a trace event name.
  struct MemberMetrics {
    const char* span_name = nullptr;
    support::Counter* runs = nullptr;      // engine.member.<name>.runs
    support::Counter* wins = nullptr;      // selected as the job's answer
    support::Counter* losses = nullptr;    // ran, completed, not selected
    support::Counter* failures = nullptr;  // threw
    support::Histogram* time_us = nullptr;
  };
  std::vector<MemberMetrics> member_metrics_;

  /// Reusable scratch of every warm start (similarity warm-start tasks and
  /// repartition calls): a small pool of workspaces handed out as exclusive
  /// leases, so concurrent warm starts neither share scratch nor serialize
  /// on one mutex. Engine code never constructs an ad-hoc Workspace — the
  /// `workspace-pool-lease` lint rule enforces it.
  part::WorkspacePool warm_pool_;

  mutable std::mutex mutex_;  // guards jobs_, inflight_, next_id_, stats_
  std::uint64_t next_id_ = 1;
  std::unordered_map<JobId, std::shared_ptr<JobState>> jobs_;
  /// Single-flight registry: cache key -> the JobState computing it.
  std::unordered_map<std::uint64_t, std::shared_ptr<JobState>> inflight_;
  EngineStats stats_;
  /// Bounded admission (all under mutex_): stage-3 jobs admitted but
  /// awaiting a running slot, the count of jobs currently fanned out, the
  /// resolved concurrent-job cap, and an EWMA of recent job latency (the
  /// deadline-aware policy's drain-time estimate).
  std::deque<std::shared_ptr<JobState>> queue_;
  std::size_t running_full_ = 0;
  std::size_t max_running_resolved_ = 0;
  double avg_job_seconds_ = 0;

  std::atomic<std::uint64_t> fp_computed_{0};
  mutable std::mutex fp_mutex_;  // guards fp_memo_
  struct FpEntry {
    std::weak_ptr<const graph::Graph> graph;  // validity probe (expiry =
                                              // the pointer may be reused)
    std::uint64_t fp = 0;
  };
  std::unordered_map<const graph::Graph*, FpEntry> fp_memo_;
};

}  // namespace ppnpart::engine
