#include "partition/move_context.hpp"

#include <algorithm>
#include <stdexcept>

namespace ppnpart::part {

namespace {
inline Weight over(Weight value, Weight cap) { return excess_over(value, cap); }
}  // namespace

MoveContext::MoveContext(const Graph& g, Partition& p, const Constraints& c)
    : graph_(&g), partition_(&p), constraints_(c), k_(p.k()) {
  if (p.size() != g.num_nodes())
    throw std::invalid_argument("MoveContext: size mismatch");
  if (!p.complete())
    throw std::invalid_argument("MoveContext: incomplete partition");
  conn_.assign(static_cast<std::size_t>(g.num_nodes()) * k_, 0);
  loads_.assign(static_cast<std::size_t>(k_), 0);
  counts_.assign(static_cast<std::size_t>(k_), 0);
  pairwise_ = PairwiseCut(k_);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const PartId pu = p[u];
    loads_[static_cast<std::size_t>(pu)] += g.node_weight(u);
    ++counts_[static_cast<std::size_t>(pu)];
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i];
      conn_[static_cast<std::size_t>(u) * k_ + static_cast<std::size_t>(p[v])] +=
          wgts[i];
      if (u < v && pu != p[v]) {
        cut_ += wgts[i];
        pairwise_.add(pu, p[v], wgts[i]);
      }
    }
  }
  for (PartId r = 0; r < k_; ++r) {
    resource_excess_ +=
        over(loads_[static_cast<std::size_t>(r)], constraints_.rmax_of(r));
  }
  for (PartId a = 0; a < k_; ++a) {
    for (PartId b = a + 1; b < k_; ++b) {
      bandwidth_excess_ += over(pairwise_.at(a, b), constraints_.bmax);
    }
  }
}

Goodness MoveContext::goodness_after(NodeId u, PartId q) const {
  const PartId p = part_of(u);
  if (p == q) return goodness();
  const Weight w = graph_->node_weight(u);
  const Weight cup = conn(u, p);
  const Weight cuq = conn(u, q);

  Weight res = resource_excess_;
  res -= over(load(p), constraints_.rmax_of(p));
  res += over(load(p) - w, constraints_.rmax_of(p));
  res -= over(load(q), constraints_.rmax_of(q));
  res += over(load(q) + w, constraints_.rmax_of(q));

  Weight bw = bandwidth_excess_;
  if (constraints_.bmax != Constraints::kUnlimited) {
    const Weight pq_old = pairwise_.at(p, q);
    const Weight pq_new = pq_old + cup - cuq;
    bw += over(pq_new, constraints_.bmax) - over(pq_old, constraints_.bmax);
    for (PartId r = 0; r < k_; ++r) {
      if (r == p || r == q) continue;
      const Weight cur = conn(u, r);
      if (cur == 0) continue;
      const Weight pr_old = pairwise_.at(p, r);
      const Weight qr_old = pairwise_.at(q, r);
      bw += over(pr_old - cur, constraints_.bmax) -
            over(pr_old, constraints_.bmax);
      bw += over(qr_old + cur, constraints_.bmax) -
            over(qr_old, constraints_.bmax);
    }
  }

  return Goodness{res, bw, cut_ + cup - cuq};
}

void MoveContext::apply(NodeId u, PartId q) {
  const PartId p = part_of(u);
  if (p == q) return;
  const Weight w = graph_->node_weight(u);
  const Weight cup = conn(u, p);
  const Weight cuq = conn(u, q);

  // Pairwise cuts and bandwidth excess (uses conn before neighbour updates).
  auto update_pair = [&](PartId a, PartId b, Weight delta) {
    if (delta == 0) return;
    const Weight old = pairwise_.at(a, b);
    pairwise_.add(a, b, delta);
    bandwidth_excess_ +=
        over(old + delta, constraints_.bmax) - over(old, constraints_.bmax);
  };
  update_pair(p, q, cup - cuq);
  for (PartId r = 0; r < k_; ++r) {
    if (r == p || r == q) continue;
    const Weight cur = conn(u, r);
    if (cur == 0) continue;
    update_pair(p, r, -cur);
    update_pair(q, r, cur);
  }
  cut_ += cup - cuq;

  // Loads and resource excess.
  resource_excess_ -= over(load(p), constraints_.rmax_of(p));
  resource_excess_ -= over(load(q), constraints_.rmax_of(q));
  loads_[static_cast<std::size_t>(p)] -= w;
  loads_[static_cast<std::size_t>(q)] += w;
  resource_excess_ += over(load(p), constraints_.rmax_of(p));
  resource_excess_ += over(load(q), constraints_.rmax_of(q));
  --counts_[static_cast<std::size_t>(p)];
  ++counts_[static_cast<std::size_t>(q)];

  // Neighbour connectivity.
  auto nbrs = graph_->neighbors(u);
  auto wgts = graph_->edge_weights(u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const std::size_t base = static_cast<std::size_t>(nbrs[i]) * k_;
    conn_[base + static_cast<std::size_t>(p)] -= wgts[i];
    conn_[base + static_cast<std::size_t>(q)] += wgts[i];
  }

  partition_->set(u, q);
}

bool MoveContext::is_boundary(NodeId u) const {
  const PartId p = part_of(u);
  const Weight internal = conn(u, p);
  const Weight total = graph_->incident_weight(u);
  return total > internal;
}

std::vector<NodeId> MoveContext::boundary_nodes() const {
  std::vector<NodeId> out;
  for (NodeId u = 0; u < graph_->num_nodes(); ++u) {
    if (is_boundary(u)) out.push_back(u);
  }
  return out;
}

std::optional<MoveContext::Candidate> MoveContext::best_move(
    NodeId u, bool allow_emptying) const {
  const PartId p = part_of(u);
  if (!allow_emptying && part_size(p) <= 1) return std::nullopt;
  std::optional<Candidate> best;
  for (PartId q = 0; q < k_; ++q) {
    if (q == p) continue;
    const Goodness after = goodness_after(u, q);
    if (!best || after < best->after) best = Candidate{q, after};
  }
  return best;
}

}  // namespace ppnpart::part
