#include "partition/matching.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "support/strings.hpp"

namespace ppnpart::part {

namespace {

void identity_matching_into(NodeId n, Matching& m, MatchingScratch& scratch) {
  support::reserve_tracked(m, n, scratch.stats);
  m.resize(n);
  std::iota(m.begin(), m.end(), NodeId{0});
}

/// Random tie-break among equal weights keeps the sweeps stochastic across
/// V-cycles, as the multi-restart design expects. Tagging the shuffled
/// positions and sorting by (w desc, pos asc) is exactly the stable sort by
/// descending weight, minus stable_sort's per-call merge-buffer allocation.
void shuffle_sort_by_weight(support::Rng& rng,
                            std::vector<WeightedEdge>& edges) {
  rng.shuffle(edges);
  for (std::size_t i = 0; i < edges.size(); ++i)
    edges[i].pos = static_cast<std::uint32_t>(i);
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return a.w != b.w ? a.w > b.w : a.pos < b.pos;
            });
}

}  // namespace

Weight random_maximal_matching_into(const Graph& g, support::Rng& rng,
                                    Matching& match, MatchingScratch& scratch) {
  const NodeId n = g.num_nodes();
  identity_matching_into(n, match, scratch);
  support::reserve_tracked(scratch.order, n, scratch.stats);
  rng.permutation_into(n, scratch.order);
  std::vector<NodeId>& candidates = scratch.candidates;
  support::reserve_tracked(candidates, n, scratch.stats);  // degree <= n
  Weight matched_weight = 0;
  for (NodeId u : scratch.order) {
    if (match[u] != u) continue;
    candidates.clear();
    for (NodeId v : g.neighbors(u)) {
      if (match[v] == v) candidates.push_back(v);
    }
    if (candidates.empty()) continue;
    const NodeId v = candidates[rng.uniform_index(candidates.size())];
    match[u] = v;
    match[v] = u;
    matched_weight += g.edge_weight_between(u, v);
  }
  return matched_weight;
}

Matching random_maximal_matching(const Graph& g, support::Rng& rng) {
  Matching match;
  MatchingScratch scratch;
  random_maximal_matching_into(g, rng, match, scratch);
  return match;
}

Weight heavy_edge_matching_into(const Graph& g, support::Rng& rng,
                                Matching& match, MatchingScratch& scratch,
                                bool globally_sorted) {
  const NodeId n = g.num_nodes();
  identity_matching_into(n, match, scratch);
  Weight matched_weight = 0;
  if (globally_sorted) {
    // Literal description from the paper: sort all edges by weight
    // descending, sweep, match edges whose both endpoints are free.
    std::vector<WeightedEdge>& edges = scratch.edges;
    support::reserve_tracked(edges, g.num_edges(), scratch.stats);
    edges.clear();
    for (NodeId u = 0; u < n; ++u) {
      auto nbrs = g.neighbors(u);
      auto wgts = g.edge_weights(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (u < nbrs[i]) edges.push_back({wgts[i], u, nbrs[i], 0});
      }
    }
    shuffle_sort_by_weight(rng, edges);
    for (const WeightedEdge& e : edges) {
      if (match[e.u] == e.u && match[e.v] == e.v) {
        match[e.u] = e.v;
        match[e.v] = e.u;
        matched_weight += e.w;
      }
    }
    return matched_weight;
  }
  // Node-local HEM (Karypis-Kumar style): random visit order, pick the
  // heaviest free incident edge.
  support::reserve_tracked(scratch.order, n, scratch.stats);
  rng.permutation_into(n, scratch.order);
  for (NodeId u : scratch.order) {
    if (match[u] != u) continue;
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    NodeId best = graph::kInvalidNode;
    Weight best_w = std::numeric_limits<Weight>::min();
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i];
      if (match[v] != v) continue;
      if (wgts[i] > best_w) {
        best_w = wgts[i];
        best = v;
      }
    }
    if (best != graph::kInvalidNode) {
      match[u] = best;
      match[best] = u;
      matched_weight += best_w;
    }
  }
  return matched_weight;
}

Matching heavy_edge_matching(const Graph& g, support::Rng& rng,
                             bool globally_sorted) {
  Matching match;
  MatchingScratch scratch;
  heavy_edge_matching_into(g, rng, match, scratch, globally_sorted);
  return match;
}

Weight kmeans_matching_into(const Graph& g, support::Rng& rng, Matching& match,
                            MatchingScratch& scratch,
                            const KMeansMatchingOptions& options) {
  const NodeId n = g.num_nodes();
  identity_matching_into(n, match, scratch);
  if (n < 2) return 0;
  Weight matched_weight = 0;

  std::uint32_t k = options.clusters;
  if (k == 0) k = std::max<std::uint32_t>(1, (n + 7) / 8);
  k = std::min<std::uint32_t>(k, n);

  // --- 1-D k-means on node weight. --------------------------------------
  // 1-D structure makes the usual O(n*k) Lloyd step unnecessary: with
  // centroids kept sorted, the nearest centroid of a weight w is found by
  // binary search over the k-1 midpoints, so one iteration costs
  // O(n log k). Seeding uses jittered quantiles of the weight distribution
  // (the 1-D equivalent of k-means++ spread, at O(n log n) once).
  std::vector<double>& centroid = scratch.centroid;
  support::assign_tracked(centroid, k, 0.0, scratch.stats);
  {
    std::vector<double>& weight_of = scratch.weight_of;
    support::assign_tracked(weight_of, n, 0.0, scratch.stats);
    for (NodeId u = 0; u < n; ++u)
      weight_of[u] = static_cast<double>(g.node_weight(u));

    std::vector<double>& sorted_w = scratch.sorted_w;
    support::reserve_tracked(sorted_w, n, scratch.stats);
    sorted_w.assign(weight_of.begin(), weight_of.end());
    std::sort(sorted_w.begin(), sorted_w.end());
    for (std::uint32_t c = 0; c < k; ++c) {
      const double jitter = rng.uniform_real(-0.25, 0.25);
      const double pos =
          (static_cast<double>(c) + 0.5 + jitter) * n / static_cast<double>(k);
      const auto idx = static_cast<std::size_t>(std::clamp(
          pos, 0.0, static_cast<double>(n - 1)));
      centroid[c] = sorted_w[idx];
    }
    std::sort(centroid.begin(), centroid.end());

    std::vector<std::uint32_t>& cluster_of = scratch.cluster_of;
    support::assign_tracked(cluster_of, n, 0u, scratch.stats);
    std::vector<double>& midpoints = scratch.midpoints;
    support::assign_tracked(midpoints, k > 0 ? k - 1 : 0, 0.0, scratch.stats);
    std::vector<double>& sum = scratch.cluster_sum;
    std::vector<std::uint32_t>& cnt = scratch.cluster_count;
    for (std::uint32_t it = 0; it < options.max_iterations; ++it) {
      for (std::uint32_t c = 0; c + 1 < k; ++c)
        midpoints[c] = 0.5 * (centroid[c] + centroid[c + 1]);
      bool changed = false;
      support::assign_tracked(sum, k, 0.0, scratch.stats);
      support::assign_tracked(cnt, k, 0u, scratch.stats);
      for (NodeId u = 0; u < n; ++u) {
        const auto best = static_cast<std::uint32_t>(
            std::upper_bound(midpoints.begin(), midpoints.end(),
                             weight_of[u]) -
            midpoints.begin());
        if (cluster_of[u] != best) {
          cluster_of[u] = best;
          changed = true;
        }
        sum[best] += weight_of[u];
        ++cnt[best];
      }
      for (std::uint32_t c = 0; c < k; ++c) {
        if (cnt[c] > 0) centroid[c] = sum[c] / cnt[c];
      }
      // Means of disjoint sorted intervals stay sorted; re-sort only to
      // guard against empty-cluster carry-overs.
      std::sort(centroid.begin(), centroid.end());
      if (!changed) break;
    }

    // --- Match within clusters, heaviest incident edge first. ----------
    std::vector<WeightedEdge>& intra = scratch.edges;
    support::reserve_tracked(intra, g.num_edges(), scratch.stats);
    intra.clear();
    for (NodeId u = 0; u < n; ++u) {
      auto nbrs = g.neighbors(u);
      auto wgts = g.edge_weights(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const NodeId v = nbrs[i];
        if (u < v && cluster_of[u] == cluster_of[v]) {
          intra.push_back({wgts[i], u, v, 0});
        }
      }
    }
    shuffle_sort_by_weight(rng, intra);
    for (const WeightedEdge& e : intra) {
      if (match[e.u] == e.u && match[e.v] == e.v) {
        match[e.u] = e.v;
        match[e.v] = e.u;
        matched_weight += e.w;
      }
    }
  }
  return matched_weight;
}

Matching kmeans_matching(const Graph& g, support::Rng& rng,
                         const KMeansMatchingOptions& options) {
  Matching match;
  MatchingScratch scratch;
  kmeans_matching_into(g, rng, match, scratch, options);
  return match;
}

Weight matched_edge_weight(const Graph& g, const Matching& m) {
  Weight sum = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const NodeId v = m[u];
    if (v != u && u < v) sum += g.edge_weight_between(u, v);
  }
  return sum;
}

std::uint32_t matched_pair_count(const Matching& m) {
  std::uint32_t count = 0;
  for (NodeId u = 0; u < m.size(); ++u) {
    if (m[u] != u && u < m[u]) ++count;
  }
  return count;
}

std::string validate_matching(const Graph& g, const Matching& m) {
  using support::str_format;
  if (m.size() != g.num_nodes()) return "matching size mismatch";
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const NodeId v = m[u];
    if (v >= g.num_nodes()) return str_format("match[%u] out of range", u);
    if (m[v] != u) return str_format("matching not symmetric at %u", u);
    if (v != u && !g.has_edge(u, v))
      return str_format("matched pair (%u, %u) not adjacent", u, v);
  }
  return {};
}

}  // namespace ppnpart::part
