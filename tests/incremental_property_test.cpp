// Property/fuzz suite for incremental repartitioning (PR 4).
//
// Two contracts are fuzzed over randomized edit sequences:
//
//   1. GraphDelta::apply is bit-identical to a from-scratch rebuild: a
//      shadow model (plain maps) mirrors every op's documented semantics,
//      rebuilds the edited graph through GraphBuilder, and the digests must
//      agree — including removals that strand edges, isolated added nodes,
//      duplicate-edge accumulation and remove-then-re-add pairs.
//   2. IncrementalPartitioner output is valid: complete assignment, every
//      reported metric equal to a scratch recomputation, and goodness never
//      worse than the projected warm start (refinement commits best
//      prefixes only).
//
// Sequence counts are deliberately >= 200 in aggregate (see ISSUE/ROADMAP
// acceptance); keep them if you shrink individual cases.

#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "graph/delta.hpp"
#include "graph/generators.hpp"
#include "partition/coarsen_cache.hpp"
#include "partition/incremental.hpp"
#include "partition/workspace.hpp"
#include "support/prng.hpp"

namespace {

using namespace ppnpart;
using graph::GraphDelta;
using graph::NodeId;
using graph::Weight;

/// Reference semantics of a delta, kept as plain maps and replayed through
/// GraphBuilder — deliberately sharing no code with GraphDelta::apply.
struct ShadowGraph {
  std::vector<Weight> weights;         // extended ids
  std::vector<bool> removed;           // extended ids
  std::map<std::pair<NodeId, NodeId>, Weight> edges;  // canonical (u < v)

  explicit ShadowGraph(const graph::Graph& g) {
    weights.assign(g.node_weights().begin(), g.node_weights().end());
    removed.assign(weights.size(), false);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      auto nbrs = g.neighbors(u);
      auto wgts = g.edge_weights(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (u < nbrs[i]) edges[{u, nbrs[i]}] = wgts[i];
      }
    }
  }

  static std::pair<NodeId, NodeId> key(NodeId u, NodeId v) {
    return u < v ? std::make_pair(u, v) : std::make_pair(v, u);
  }

  NodeId add_node(Weight w) {
    weights.push_back(w);
    removed.push_back(false);
    return static_cast<NodeId>(weights.size() - 1);
  }
  void remove_node(NodeId u) { removed[u] = true; }
  void set_node_weight(NodeId u, Weight w) { weights[u] = w; }
  void add_edge(NodeId u, NodeId v, Weight w) { edges[key(u, v)] += w; }
  void remove_edge(NodeId u, NodeId v) { edges.erase(key(u, v)); }
  void set_edge(NodeId u, NodeId v, Weight w) { edges[key(u, v)] = w; }

  struct Rebuilt {
    graph::Graph graph;
    std::vector<NodeId> node_map;
  };
  Rebuilt rebuild() const {
    Rebuilt out;
    out.node_map.assign(weights.size(), graph::kInvalidNode);
    NodeId n_new = 0;
    for (NodeId u = 0; u < weights.size(); ++u) {
      if (!removed[u]) out.node_map[u] = n_new++;
    }
    graph::GraphBuilder b(n_new);
    for (NodeId u = 0; u < weights.size(); ++u) {
      if (!removed[u]) b.set_node_weight(out.node_map[u], weights[u]);
    }
    for (const auto& [uv, w] : edges) {
      if (!removed[uv.first] && !removed[uv.second])
        b.add_edge(out.node_map[uv.first], out.node_map[uv.second], w);
    }
    out.graph = b.build();
    return out;
  }
};

/// Mirrors random ops into a GraphDelta and the shadow model at once.
struct Fuzzer {
  support::Rng rng;
  GraphDelta delta;
  ShadowGraph shadow;
  std::vector<NodeId> live;  // live extended ids

  Fuzzer(const graph::Graph& base, std::uint64_t seed)
      : rng(seed), delta(base), shadow(base) {
    for (NodeId u = 0; u < base.num_nodes(); ++u) live.push_back(u);
  }

  std::vector<std::pair<NodeId, NodeId>> live_edges() const {
    std::vector<std::pair<NodeId, NodeId>> out;
    for (const auto& [uv, w] : shadow.edges) {
      (void)w;
      if (!shadow.removed[uv.first] && !shadow.removed[uv.second])
        out.push_back(uv);
    }
    return out;
  }

  NodeId random_live() { return live[rng.uniform_index(live.size())]; }

  void random_op() {
    const std::size_t roll = rng.uniform_index(100);
    if (roll < 25) {  // reweight an existing edge
      const auto es = live_edges();
      if (!es.empty()) {
        const auto [u, v] = es[rng.uniform_index(es.size())];
        const Weight w = 1 + static_cast<Weight>(rng.uniform_index(12));
        delta.set_edge_weight(u, v, w);
        shadow.set_edge(u, v, w);
        return;
      }
    }
    if (roll < 45) {  // add (or accumulate onto) an edge
      if (live.size() >= 2) {
        const NodeId u = random_live();
        const NodeId v = random_live();
        if (u != v) {
          const Weight w = 1 + static_cast<Weight>(rng.uniform_index(9));
          delta.add_edge(u, v, w);
          shadow.add_edge(u, v, w);
          return;
        }
      }
    }
    if (roll < 55) {  // remove an edge (sometimes one that does not exist)
      if (live.size() >= 2 && rng.bernoulli(0.2)) {
        const NodeId u = random_live();
        const NodeId v = random_live();
        if (u != v) {
          delta.remove_edge(u, v);
          shadow.remove_edge(u, v);
          return;
        }
      }
      const auto es = live_edges();
      if (!es.empty()) {
        const auto [u, v] = es[rng.uniform_index(es.size())];
        delta.remove_edge(u, v);
        shadow.remove_edge(u, v);
        return;
      }
    }
    if (roll < 68) {  // reweight a node (0 allowed)
      if (!live.empty()) {
        const NodeId u = random_live();
        const Weight w = static_cast<Weight>(rng.uniform_index(50));
        delta.set_node_weight(u, w);
        shadow.set_node_weight(u, w);
        return;
      }
    }
    if (roll < 85 || live.empty()) {  // add a node, often wired, often isolated
      const Weight w = 1 + static_cast<Weight>(rng.uniform_index(40));
      const NodeId ext = delta.add_node(w);
      ASSERT_EQ(ext, shadow.add_node(w));
      const std::size_t wires =
          live.empty() ? 0 : rng.uniform_index(3);  // 0 = isolated node
      for (std::size_t i = 0; i < wires; ++i) {
        const NodeId v = random_live();
        const Weight ew = 1 + static_cast<Weight>(rng.uniform_index(9));
        delta.add_edge(ext, v, ew);
        shadow.add_edge(ext, v, ew);
      }
      live.push_back(ext);
      return;
    }
    // remove a node (strands its edges)
    const std::size_t idx = rng.uniform_index(live.size());
    const NodeId u = live[idx];
    delta.remove_node(u);
    shadow.remove_node(u);
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
  }
};

graph::Graph random_base(support::Rng& rng) {
  switch (rng.uniform_index(6)) {
    case 0:
      return graph::Graph();  // empty
    case 1: {
      graph::GraphBuilder b(1 + static_cast<NodeId>(rng.uniform_index(3)));
      return b.build();  // tiny, edgeless
    }
    case 2: {
      graph::ProcessNetworkParams params;
      params.num_nodes = 8 + static_cast<NodeId>(rng.uniform_index(56));
      params.layers = 4;
      return graph::random_process_network(params, rng);
    }
    case 3: {
      const NodeId n = 6 + static_cast<NodeId>(rng.uniform_index(40));
      return graph::erdos_renyi_gnm(n, 2ull * n, rng, {1, 20}, {1, 9});
    }
    case 4:
      return graph::ring_of_cliques(
          2 + static_cast<std::uint32_t>(rng.uniform_index(4)), 4);
    default:
      return graph::grid2d(3 + static_cast<std::uint32_t>(rng.uniform_index(4)),
                           3 + static_cast<std::uint32_t>(rng.uniform_index(4)));
  }
}

void expect_graphs_identical(const graph::Graph& a, const graph::Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.xadj(), b.xadj());
  EXPECT_EQ(a.adj(), b.adj());
  EXPECT_EQ(a.raw_edge_weights(), b.raw_edge_weights());
  EXPECT_EQ(a.node_weights(), b.node_weights());
  EXPECT_EQ(part::graph_digest(a), part::graph_digest(b));
}

// ---- 1. Delta apply == scratch rebuild (digest equality), chained. --------

TEST(IncrementalProperty, DeltaMatchesScratchRebuild) {
  support::Rng meta(0xde17a);
  for (int seq = 0; seq < 120; ++seq) {
    support::Rng base_rng = meta.derive(seq);
    graph::Graph g = random_base(base_rng);
    // Chain two deltas: the second edits the first's output, which is how
    // evolving networks are actually driven.
    for (int round = 0; round < 2; ++round) {
      Fuzzer fz(g, meta.derive(1000 + seq * 2 + round)());
      const std::size_t ops = 1 + fz.rng.uniform_index(30);
      for (std::size_t i = 0; i < ops; ++i) fz.random_op();

      const GraphDelta::Applied applied = fz.delta.apply(g);
      EXPECT_TRUE(applied.graph.validate().empty())
          << "seq " << seq << ": " << applied.graph.validate();

      const ShadowGraph::Rebuilt ref = fz.shadow.rebuild();
      ASSERT_NO_FATAL_FAILURE(expect_graphs_identical(applied.graph, ref.graph))
          << "seq " << seq << " round " << round;
      EXPECT_EQ(applied.node_map, ref.node_map);

      // touched: sorted, unique, in range.
      for (std::size_t i = 0; i < applied.touched.size(); ++i) {
        EXPECT_LT(applied.touched[i], applied.graph.num_nodes());
        if (i > 0) EXPECT_LT(applied.touched[i - 1], applied.touched[i]);
      }
      g = applied.graph;
    }
  }
}

TEST(IncrementalProperty, TouchedCoversAdjacencyChanges) {
  // Every node whose CSR row or weight differs (under the node map) must be
  // in `touched` — the incremental partitioner trusts this to bound where
  // refinement is needed, and the fallback threshold counts it.
  support::Rng meta(0x70c4ed);
  for (int seq = 0; seq < 40; ++seq) {
    support::Rng base_rng = meta.derive(seq);
    const graph::Graph g = random_base(base_rng);
    Fuzzer fz(g, meta.derive(500 + seq)());
    const std::size_t ops = 1 + fz.rng.uniform_index(20);
    for (std::size_t i = 0; i < ops; ++i) fz.random_op();
    const GraphDelta::Applied applied = fz.delta.apply(g);

    std::vector<bool> touched(applied.graph.num_nodes(), false);
    for (NodeId t : applied.touched) touched[t] = true;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      const NodeId m = applied.node_map[u];
      if (m == graph::kInvalidNode) continue;
      bool changed = g.node_weight(u) != applied.graph.node_weight(m) ||
                     g.degree(u) != applied.graph.degree(m);
      if (!changed) {
        auto old_nbrs = g.neighbors(u);
        auto old_w = g.edge_weights(u);
        auto new_nbrs = applied.graph.neighbors(m);
        auto new_w = applied.graph.edge_weights(m);
        for (std::size_t i = 0; i < old_nbrs.size() && !changed; ++i) {
          changed = applied.node_map[old_nbrs[i]] != new_nbrs[i] ||
                    old_w[i] != new_w[i];
        }
      }
      if (changed) {
        EXPECT_TRUE(touched[m])
            << "seq " << seq << ": node " << u << " changed but not touched";
      }
    }
  }
}

// ---- 2. Incremental partitions are valid and never worse than the warm
// start. ---------------------------------------------------------------------

TEST(IncrementalProperty, RepartitionValidOverRandomEditSequences) {
  support::Rng meta(0x5eed);
  part::IncrementalOptions opts;
  opts.max_touched_fraction = 2.0;      // never decline: exercise the
  opts.max_projected_imbalance = 1e18;  // incremental path on every shape
  part::IncrementalPartitioner inc(opts);
  part::Workspace ws;  // one workspace reused across every sequence

  int nonempty = 0;
  for (int seq = 0; seq < 100; ++seq) {
    support::Rng base_rng = meta.derive(7000 + seq);
    const graph::Graph g = random_base(base_rng);
    const auto k = static_cast<part::PartId>(1 + base_rng.uniform_index(7));

    // Previous solution: a deliberately mediocre but complete partition —
    // validity must not depend on the warm start being good.
    part::Partition prev(g.num_nodes(), k);
    for (NodeId u = 0; u < g.num_nodes(); ++u)
      prev.set(u, static_cast<part::PartId>((u * 7 + 3) % k));

    Fuzzer fz(g, meta.derive(9000 + seq)());
    const std::size_t ops = 1 + fz.rng.uniform_index(25);
    for (std::size_t i = 0; i < ops; ++i) fz.random_op();
    const GraphDelta::Applied applied = fz.delta.apply(g);

    part::PartitionRequest request;
    request.k = k;
    request.seed = 42 + static_cast<std::uint64_t>(seq);
    request.workspace = &ws;
    if (base_rng.bernoulli(0.5) && k > 0) {
      request.constraints.rmax = std::max<Weight>(
          1, static_cast<Weight>(1.3 * static_cast<double>(
                                           applied.graph.total_node_weight()) /
                                 k));
      request.constraints.bmax =
          std::max<Weight>(1, applied.graph.total_edge_weight() / 4);
    }

    part::IncrementalStats stats;
    const auto result = inc.try_repartition(applied, prev, request, &stats);
    ASSERT_TRUE(result.has_value()) << "declined: " << stats.fallback_reason;

    const graph::Graph& ng = applied.graph;
    ASSERT_EQ(result->partition.size(), ng.num_nodes());
    EXPECT_TRUE(result->partition.complete());
    if (ng.num_nodes() == 0) continue;
    ++nonempty;

    // Reported metrics == scratch recomputation.
    const part::PartitionMetrics m = part::compute_metrics(ng, result->partition);
    EXPECT_EQ(result->metrics.total_cut, m.total_cut);
    EXPECT_EQ(result->metrics.max_load, m.max_load);
    EXPECT_EQ(result->metrics.max_pairwise_cut, m.max_pairwise_cut);
    const part::Violation v = part::compute_violation(m, request.constraints);
    EXPECT_EQ(result->violation.resource_excess, v.resource_excess);
    EXPECT_EQ(result->violation.bandwidth_excess, v.bandwidth_excess);
    EXPECT_EQ(result->feasible, v.feasible());

    // Refinement never returns anything worse than the projected start.
    EXPECT_FALSE(stats.projected_goodness < part::goodness_of(*result))
        << "seq " << seq << ": refinement worsened the warm start";
    EXPECT_EQ(stats.projected + stats.fresh, ng.num_nodes());
  }
  EXPECT_GT(nonempty, 50);  // the fuzz mix must exercise real instances
}

TEST(IncrementalProperty, RepartitionChainsAcrossDeltas) {
  // prev -> delta -> result -> delta -> result ... the evolving-network
  // loop. Every hop must stay valid.
  support::Rng meta(0xc4a1);
  part::IncrementalOptions opts;
  opts.max_touched_fraction = 2.0;
  opts.max_projected_imbalance = 1e18;
  part::IncrementalPartitioner inc(opts);
  part::Workspace ws;

  for (int seq = 0; seq < 20; ++seq) {
    support::Rng base_rng = meta.derive(seq);
    graph::ProcessNetworkParams params;
    params.num_nodes = 40;
    params.layers = 5;
    graph::Graph g = graph::random_process_network(params, base_rng);
    const part::PartId k = 4;

    part::PartitionRequest request;
    request.k = k;
    request.seed = 7;
    request.workspace = &ws;

    part::Partition prev(g.num_nodes(), k);
    for (NodeId u = 0; u < g.num_nodes(); ++u)
      prev.set(u, static_cast<part::PartId>(u % k));

    for (int hop = 0; hop < 5; ++hop) {
      Fuzzer fz(g, meta.derive(100 + seq * 10 + hop)());
      const std::size_t ops = 1 + fz.rng.uniform_index(8);
      for (std::size_t i = 0; i < ops; ++i) fz.random_op();
      const GraphDelta::Applied applied = fz.delta.apply(g);

      const auto result = inc.try_repartition(applied, prev, request, nullptr);
      ASSERT_TRUE(result.has_value());
      ASSERT_EQ(result->partition.size(), applied.graph.num_nodes());
      EXPECT_TRUE(result->partition.complete());
      if (applied.graph.num_nodes() > 0) {
        EXPECT_EQ(result->metrics.total_cut,
                  part::compute_metrics(applied.graph, result->partition)
                      .total_cut);
      }
      g = applied.graph;
      prev = result->partition;
    }
  }
}

// ---- 3. Decline thresholds and determinism. -------------------------------

TEST(IncrementalProperty, DeclinesOversizedDeltasAndChangedK) {
  graph::ProcessNetworkParams params;
  params.num_nodes = 60;
  params.layers = 6;
  support::Rng rng(31);
  const graph::Graph g = graph::random_process_network(params, rng);

  part::Partition prev(g.num_nodes(), 4);
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    prev.set(u, static_cast<part::PartId>(u % 4));

  // Touch every node: reweight them all.
  GraphDelta big(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    big.set_node_weight(u, g.node_weight(u) + 1);
  const GraphDelta::Applied applied = big.apply(g);
  ASSERT_EQ(applied.touched.size(), g.num_nodes());

  part::IncrementalPartitioner inc;  // default thresholds
  part::PartitionRequest request;
  request.k = 4;
  part::IncrementalStats stats;
  EXPECT_FALSE(inc.try_repartition(applied, prev, request, &stats).has_value());
  EXPECT_TRUE(stats.fell_back);
  EXPECT_FALSE(stats.fallback_reason.empty());

  // k change declines even for a tiny delta.
  GraphDelta small(g);
  small.set_node_weight(0, 99);
  const GraphDelta::Applied applied_small = small.apply(g);
  part::PartitionRequest request_k8 = request;
  request_k8.k = 8;
  EXPECT_FALSE(
      inc.try_repartition(applied_small, prev, request_k8, &stats).has_value());
  EXPECT_EQ(stats.fallback_reason, "k changed");

  // repartition() answers anyway, via the fallback algorithm.
  const part::PartitionResult full =
      inc.repartition(applied, prev, request, &stats);
  EXPECT_TRUE(stats.fell_back);
  EXPECT_TRUE(full.partition.complete());
  EXPECT_EQ(full.partition.size(), applied.graph.num_nodes());
}

TEST(IncrementalProperty, RepartitionDeterministicAcrossWorkspaces) {
  graph::ProcessNetworkParams params;
  params.num_nodes = 80;
  params.layers = 8;
  support::Rng rng(77);
  const graph::Graph g = graph::random_process_network(params, rng);

  part::Partition prev(g.num_nodes(), 4);
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    prev.set(u, static_cast<part::PartId>(u % 4));

  GraphDelta delta(g);
  delta.set_edge_weight(0, 1, 5);
  const NodeId fresh = delta.add_node(25);
  delta.add_edge(fresh, 3, 4);
  delta.remove_node(10);
  const GraphDelta::Applied applied = delta.apply(g);

  part::PartitionRequest request;
  request.k = 4;
  request.seed = 99;
  request.constraints.rmax = g.total_node_weight();  // loose

  part::IncrementalPartitioner inc;
  part::Workspace ws_a, ws_b;
  part::PartitionRequest ra = request, rb = request;
  ra.workspace = &ws_a;
  const auto a = inc.try_repartition(applied, prev, ra, nullptr);
  const auto b = inc.try_repartition(applied, prev, rb, nullptr);  // no ws
  rb.workspace = &ws_b;
  const auto c = inc.try_repartition(applied, prev, rb, nullptr);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(a->partition.assignments(), b->partition.assignments());
  EXPECT_EQ(a->partition.assignments(), c->partition.assignments());
}

// ---- 4. Workspace steady state: the incremental refine loop allocates
// nothing once warm. ---------------------------------------------------------

TEST(IncrementalProperty, WorkspaceSteadyStateAllocationFree) {
  graph::ProcessNetworkParams params;
  params.num_nodes = 400;
  params.layers = 16;
  support::Rng rng(123);
  graph::Graph g = graph::random_process_network(params, rng);
  const part::PartId k = 6;

  part::Partition prev(g.num_nodes(), k);
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    prev.set(u, static_cast<part::PartId>(u % k));

  part::IncrementalOptions opts;
  opts.max_touched_fraction = 2.0;
  part::IncrementalPartitioner inc(opts);
  part::Workspace ws;
  part::PartitionRequest request;
  request.k = k;
  request.seed = 5;
  request.workspace = &ws;
  request.constraints.rmax = static_cast<Weight>(
      1.3 * static_cast<double>(g.total_node_weight()) / k);

  // Edge-only deltas keep the graph size stable: after two warm-up rounds
  // every workspace buffer has reached its high-water mark.
  support::Rng edit_rng(9);
  const auto one_round = [&]() {
    GraphDelta delta(g);
    for (int e = 0; e < 8; ++e) {
      const NodeId u = static_cast<NodeId>(edit_rng.uniform_index(g.num_nodes()));
      if (g.degree(u) == 0) continue;
      const auto nbrs = g.neighbors(u);
      const NodeId v = nbrs[edit_rng.uniform_index(nbrs.size())];
      delta.set_edge_weight(u, v, 1 + static_cast<Weight>(edit_rng.uniform_index(12)));
    }
    const GraphDelta::Applied applied = delta.apply(g);
    const auto result = inc.try_repartition(applied, prev, request, nullptr);
    ASSERT_TRUE(result.has_value());
    g = applied.graph;
    prev = result->partition;
  };

  for (int warm = 0; warm < 2; ++warm) ASSERT_NO_FATAL_FAILURE(one_round());
  const std::uint64_t growths_before = ws.stats().growths;
  for (int i = 0; i < 6; ++i) ASSERT_NO_FATAL_FAILURE(one_round());
  EXPECT_EQ(ws.stats().growths, growths_before)
      << "incremental refine loop allocated in steady state";
}

}  // namespace
