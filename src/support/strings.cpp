#include "support/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ppnpart::support {

std::vector<std::string> split(std::string_view text, char sep,
                               bool keep_empty) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      std::string_view token = text.substr(start, i - start);
      if (keep_empty || !token.empty()) out.emplace_back(token);
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    std::size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0, e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args);
  return out;
}

bool parse_i64(std::string_view text, std::int64_t& out) {
  text = trim(text);
  if (text.empty()) return false;
  std::string buf(text);
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  out = v;
  return true;
}

bool parse_f64(std::string_view text, double& out) {
  text = trim(text);
  if (text.empty()) return false;
  std::string buf(text);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  out = v;
  return true;
}

std::string with_thousands(std::int64_t value) {
  const bool neg = value < 0;
  std::string digits = std::to_string(neg ? -value : value);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return neg ? "-" + out : out;
}

}  // namespace ppnpart::support
