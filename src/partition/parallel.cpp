#include "partition/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <future>
#include <mutex>
#include <stdexcept>

#include "graph/contract.hpp"
#include "partition/move_context.hpp"
#include "partition/phase_profile.hpp"
#include "support/alloc_stats.hpp"

namespace ppnpart::part {

namespace {

using graph::kInvalidNode;

/// Contiguous node range handled by one task/arena. Chunk boundaries are a
/// scheduling choice only: every deterministic kernel below produces output
/// that is invariant under re-chunking (per-node work is a pure function of
/// phase-start state; merges happen in node order).
struct Chunk {
  std::size_t index;
  NodeId begin;
  NodeId end;
};

std::vector<Chunk> make_chunks(NodeId n, std::uint32_t parts) {
  const std::size_t count =
      std::max<std::size_t>(1, std::min<std::size_t>(parts, n == 0 ? 1 : n));
  std::vector<Chunk> chunks;
  chunks.reserve(count);
  const NodeId per = static_cast<NodeId>((n + count - 1) / count);
  NodeId begin = 0;
  for (std::size_t i = 0; i < count && begin < n; ++i) {
    const NodeId end = std::min<NodeId>(n, begin + per);
    chunks.push_back(Chunk{i, begin, end});
    begin = end;
  }
  if (chunks.empty()) chunks.push_back(Chunk{0, 0, 0});
  return chunks;
}

/// Runs fn(chunk) for every chunk, fanning out through the pool. Falls back
/// to inline execution for a single chunk or when already on a pool worker
/// (nested parallelism would deadlock a saturated pool); the fallback cannot
/// change deterministic results, which never depend on the executing thread.
/// All chunks run to completion even if one throws; the first exception is
/// rethrown.
template <typename Fn>
void run_chunks(support::ThreadPool& pool, const std::vector<Chunk>& chunks,
                const Fn& fn) {
  if (chunks.size() <= 1 || pool.on_worker_thread()) {
    for (const Chunk& ch : chunks) fn(ch);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(chunks.size());
  for (const Chunk& ch : chunks)
    futures.push_back(pool.submit([fn, ch] { fn(ch); }));
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

/// Globally consistent total order on edges: heavier first, then the
/// lexicographically smaller (min endpoint, max endpoint) pair. Both
/// endpoints of an edge rank it identically, which is what guarantees the
/// mutual-proposal rounds always pair the globally best free edge (the
/// "local max" argument) and therefore make progress every round.
bool edge_better(Weight w_a, NodeId a1, NodeId a2, Weight w_b, NodeId b1,
                 NodeId b2) {
  if (w_a != w_b) return w_a > w_b;
  const NodeId amin = std::min(a1, a2), amax = std::max(a1, a2);
  const NodeId bmin = std::min(b1, b2), bmax = std::max(b1, b2);
  if (amin != bmin) return amin < bmin;
  return amax < bmax;
}

/// Deterministic parallel matching: synchronous rounds of (A) every free
/// node proposes its best free neighbour under edge_better, (B) mutual
/// proposals pair up, proposal-less nodes finalize single. Each phase is a
/// pure function of the previous barrier's state and every slot has exactly
/// one writer, so the result is a pure function of the graph — identical at
/// any chunk count, no RNG consumed. Terminates because every round with a
/// free-free edge matches at least the globally best one, and free nodes
/// without free neighbours finalize immediately.
Weight deterministic_matching(const Graph& g, const ParallelOptions& options,
                              Matching& match, Workspace& ws,
                              support::ThreadPool& pool) {
  const NodeId n = g.num_nodes();
  support::AllocStats* stats = ws.parallel.stats;
  support::assign_tracked(match, n, kInvalidNode, stats);
  support::assign_tracked(ws.parallel.proposal, n, kInvalidNode, stats);
  support::assign_tracked(ws.parallel.proposal_weight, n, Weight{0}, stats);

  const std::vector<Chunk> chunks = make_chunks(n, options.threads);
  std::vector<Weight> chunk_weight(chunks.size(), 0);
  std::vector<NodeId> chunk_free(chunks.size(), 0);

  const Graph* gp = &g;
  NodeId* m = match.data();
  NodeId* prop = ws.parallel.proposal.data();
  Weight* prop_w = ws.parallel.proposal_weight.data();

  Weight total = 0;
  NodeId free_nodes = n;
  while (free_nodes > 0) {
    // Phase A: propose. Reads `m` (frozen since the last barrier), writes
    // only prop/prop_w slots the chunk owns.
    run_chunks(pool, chunks, [gp, m, prop, prop_w](const Chunk& ch) {
      for (NodeId u = ch.begin; u < ch.end; ++u) {
        if (m[u] != kInvalidNode) continue;
        auto nbrs = gp->neighbors(u);
        auto wgts = gp->edge_weights(u);
        NodeId best = u;
        Weight best_w = 0;
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          const NodeId v = nbrs[i];
          if (v == u || m[v] != kInvalidNode) continue;
          if (best == u ||
              edge_better(wgts[i], u, v, best_w, u, best)) {
            best = v;
            best_w = wgts[i];
          }
        }
        prop[u] = best;
        prop_w[u] = best_w;
      }
    });
    // Phase B: pair mutual proposals; finalize proposal-less singles. Each
    // node writes only its own match slot (both endpoints of a mutual pair
    // observe the same frozen proposals and write their own halves).
    Weight* cw = chunk_weight.data();
    NodeId* cf = chunk_free.data();
    run_chunks(pool, chunks, [m, prop, prop_w, cw, cf](const Chunk& ch) {
      Weight w = 0;
      NodeId still_free = 0;
      for (NodeId u = ch.begin; u < ch.end; ++u) {
        if (m[u] != kInvalidNode) continue;
        const NodeId v = prop[u];
        if (v == u) {
          m[u] = u;  // no free neighbour left; final
          continue;
        }
        if (prop[v] == u) {
          m[u] = v;
          if (u < v) w += prop_w[u];
          continue;
        }
        ++still_free;
      }
      cw[ch.index] = w;
      cf[ch.index] = still_free;
    });
    // Reduce in chunk-index order (== node order); integer sums would be
    // order-independent anyway, but the discipline is uniform.
    free_nodes = 0;
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      total += chunk_weight[i];
      free_nodes += chunk_free[i];
    }
  }
  return total;
}

/// Free-running parallel matching: chunks race to claim pairs with CAS on a
/// per-node `matched` word (kInvalidNode = free; claims[u] == u = locked or
/// single; claims[u] == v = matched to v). The matching depends on
/// scheduling — valid but not reproducible — and exists for the
/// deterministic-mode-OFF path and the TSan stress.
Weight free_running_matching(const Graph& g, const ParallelOptions& options,
                             Matching& match, Workspace& ws,
                             support::ThreadPool& pool) {
  const NodeId n = g.num_nodes();
  support::AllocStats* stats = ws.parallel.stats;
  support::assign_tracked(match, n, kInvalidNode, stats);
  std::atomic<NodeId>* claims = ws.parallel.claims(n);

  const std::vector<Chunk> chunks = make_chunks(n, options.threads);
  run_chunks(pool, chunks, [claims](const Chunk& ch) {
    for (NodeId u = ch.begin; u < ch.end; ++u)
      claims[u].store(kInvalidNode, std::memory_order_relaxed);
  });

  const Graph* gp = &g;
  run_chunks(pool, chunks, [gp, claims](const Chunk& ch) {
    for (NodeId u = ch.begin; u < ch.end; ++u) {
      NodeId expected = kInvalidNode;
      // Lock u by self-claiming; failure means another chunk took it.
      if (!claims[u].compare_exchange_strong(expected, u,
                                             std::memory_order_acq_rel))
        continue;
      auto nbrs = gp->neighbors(u);
      auto wgts = gp->edge_weights(u);
      for (;;) {
        NodeId best = u;
        Weight best_w = 0;
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          const NodeId v = nbrs[i];
          if (v == u) continue;
          if (claims[v].load(std::memory_order_relaxed) != kInvalidNode)
            continue;
          if (best == u || edge_better(wgts[i], u, v, best_w, u, best)) {
            best = v;
            best_w = wgts[i];
          }
        }
        if (best == u) break;  // stays single: claims[u] == u already
        NodeId free_v = kInvalidNode;
        if (claims[best].compare_exchange_strong(free_v, u,
                                                 std::memory_order_acq_rel)) {
          claims[u].store(best, std::memory_order_release);
          break;
        }
        // best was taken between the scan and the CAS; rescan.
      }
    }
  });

  // Materialize into the plain matching; per-chunk weight partials.
  std::vector<Weight> chunk_weight(chunks.size(), 0);
  NodeId* m = match.data();
  Weight* cw = chunk_weight.data();
  run_chunks(pool, chunks, [gp, claims, m, cw](const Chunk& ch) {
    Weight w = 0;
    for (NodeId u = ch.begin; u < ch.end; ++u) {
      const NodeId v = claims[u].load(std::memory_order_relaxed);
      m[u] = v;
      if (v != u && u < v) w += gp->edge_weight_between(u, v);
    }
    cw[ch.index] = w;
  });
  Weight total = 0;
  for (const Weight w : chunk_weight) total += w;
  return total;
}

/// Per-part resource budget (uniform or heterogeneous).
Weight budget_of(const Constraints& c, PartId p) { return c.rmax_of(p); }

}  // namespace

ParallelOptions resolve_parallel(std::uint32_t requested, bool deterministic,
                                 support::ThreadPool& pool) {
  ParallelOptions out;
  out.threads = requested == 0 ? std::max(1u, pool.size()) : requested;
  out.deterministic = deterministic;
  return out;
}

Weight parallel_heavy_edge_matching(const Graph& g,
                                    const ParallelOptions& options,
                                    Matching& match, Workspace& ws,
                                    support::ThreadPool& pool) {
  if (options.deterministic)
    return deterministic_matching(g, options, match, ws, pool);
  return free_running_matching(g, options, match, ws, pool);
}

NodeId parallel_fine_to_coarse(const Graph& fine, const Matching& matching,
                               const ParallelOptions& options,
                               std::vector<NodeId>& fine_to_coarse,
                               Workspace& ws, support::ThreadPool& pool) {
  const NodeId n = fine.num_nodes();
  if (matching.size() != n)
    throw std::invalid_argument("parallel_fine_to_coarse: size mismatch");
  support::AllocStats* stats = ws.parallel.stats;
  support::assign_tracked(fine_to_coarse, n, kInvalidNode, stats);
  const std::vector<Chunk> chunks = make_chunks(n, options.threads);
  support::assign_tracked(ws.parallel.chunk_base, chunks.size(), NodeId{0},
                          stats);

  // A node represents its pair iff it is the smaller endpoint (or single).
  // The serial scan assigns ids at the first touch of each pair — i.e. ids
  // ascend by representative — so a per-chunk count + exclusive prefix over
  // chunk-index order reproduces the serial assignment bit-exactly.
  const NodeId* m = matching.data();
  NodeId* base = ws.parallel.chunk_base.data();
  run_chunks(pool, chunks, [m, base](const Chunk& ch) {
    NodeId reps = 0;
    for (NodeId u = ch.begin; u < ch.end; ++u)
      if (m[u] == u || u < m[u]) ++reps;
    base[ch.index] = reps;
  });
  NodeId next = 0;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const NodeId count = base[i];
    base[i] = next;
    next += count;
  }
  NodeId* f2c = fine_to_coarse.data();
  run_chunks(pool, chunks, [m, base, f2c](const Chunk& ch) {
    NodeId id = base[ch.index];
    for (NodeId u = ch.begin; u < ch.end; ++u) {
      if (m[u] == u || u < m[u]) {
        f2c[u] = id;
        // The partner is never a representative, so this slot has exactly
        // one writer even when it lives in another chunk.
        if (m[u] != u) f2c[m[u]] = id;
        ++id;
      }
    }
  });
  return next;
}

Hierarchy parallel_coarsen(const Graph& g, const CoarsenOptions& options,
                           const ParallelOptions& popts, Workspace& ws,
                           support::ThreadPool& pool) {
  Hierarchy h;
  h.graphs.push_back(g);
  while (h.coarsest().num_nodes() > options.coarsen_to &&
         h.num_levels() <= options.max_levels) {
    const Graph& current = h.coarsest();
    PhaseScope phase(ws.phases, PhaseProfile::kCoarsen, ws.phase_cat,
                     static_cast<std::int64_t>(h.num_levels() - 1),
                     static_cast<std::int64_t>(current.num_nodes()));
    (void)parallel_heavy_edge_matching(current, popts, ws.match_best, ws,
                                       pool);
    std::vector<NodeId> fine_to_coarse;
    const NodeId coarse_n = parallel_fine_to_coarse(
        current, ws.match_best, popts, fine_to_coarse, ws, pool);
    if (coarse_n == current.num_nodes()) break;  // no contractible pairs
    Graph coarse =
        graph::contract_csr(current, fine_to_coarse, coarse_n, ws.contract);
    const double shrink = static_cast<double>(coarse.num_nodes()) /
                          static_cast<double>(current.num_nodes());
    if (shrink > options.min_shrink_factor) break;
    h.maps.push_back(std::move(fine_to_coarse));
    h.winners.push_back(MatchingKind::kHeavyEdge);
    h.graphs.push_back(std::move(coarse));
  }
  return h;
}

bool parallel_lp_refine(const Graph& g, Partition& p, const Constraints& c,
                        const LpRefineOptions& options,
                        const ParallelOptions& popts, Workspace& ws,
                        support::ThreadPool& pool) {
  const NodeId n = g.num_nodes();
  const PartId k = p.k();
  if (n == 0 || k <= 1) return false;
  MoveContext& mc = ws.move_ctx;
  mc.reset(g, p, c);

  const std::vector<Chunk> chunks = make_chunks(n, popts.threads);
  std::vector<ThreadArena*> arena_ptrs(chunks.size(), nullptr);
  for (std::size_t i = 0; i < chunks.size(); ++i)
    arena_ptrs[i] = &ws.parallel.arena(i);

  std::vector<LpCandidate>& merged = ws.parallel.merged;
  std::mutex merge_mutex;
  bool any_committed = false;
  for (std::uint32_t round = 0; round < options.max_rounds; ++round) {
    merged.clear();
    // Scan phase: read-only against the round-start MoveContext state (the
    // commit below is the only mutator and is strictly phase-separated).
    // Each boundary node proposes its best-connected other part, ties to
    // the smaller part id; an overloaded home part also proposes so the
    // exact commit check can trade cut for feasibility.
    const MoveContext* mcp = &mc;
    const Constraints* cp = &c;
    ThreadArena* const* arenas = arena_ptrs.data();
    const bool det = popts.deterministic;
    std::vector<LpCandidate>* merged_ptr = &merged;
    std::mutex* merge_mutex_ptr = &merge_mutex;
    run_chunks(pool, chunks,
               [mcp, cp, k, arenas, det, merged_ptr,
                merge_mutex_ptr](const Chunk& ch) {
                 ThreadArena& arena = *arenas[ch.index];
                 arena.moves.clear();
                 for (NodeId u = ch.begin; u < ch.end; ++u) {
                   if (!mcp->is_boundary(u)) continue;
                   const PartId from = mcp->part_of(u);
                   const Weight conn_from = mcp->conn(u, from);
                   PartId best = from;
                   Weight best_conn = -1;
                   for (PartId q = 0; q < k; ++q) {
                     if (q == from) continue;
                     const Weight cq = mcp->conn(u, q);
                     if (cq > best_conn) {
                       best = q;
                       best_conn = cq;
                     }
                   }
                   if (best == from) continue;
                   const bool overloaded =
                       mcp->load(from) > budget_of(*cp, from);
                   if (best_conn > conn_from || overloaded)
                     arena.moves.push_back(LpCandidate{u, best});
                 }
                 if (!det) {
                   // Free-running reduction: merge in completion order. The
                   // deterministic path instead merges after the barrier in
                   // chunk-index order below.
                   std::lock_guard<std::mutex> lock(*merge_mutex_ptr);
                   merged_ptr->insert(merged_ptr->end(), arena.moves.begin(),
                                      arena.moves.end());
                 }
               });
    if (popts.deterministic) {
      // Chunks are contiguous ascending ranges, so chunk-index order is
      // node-id order — the reduction is independent of the chunk count.
      for (std::size_t i = 0; i < chunks.size(); ++i) {
        ThreadArena& arena = *arena_ptrs[i];
        merged.insert(merged.end(), arena.moves.begin(), arena.moves.end());
      }
    }
    // Commit phase (serial): re-validate every candidate against the exact
    // lexicographic goodness on the *current* state and apply strictly
    // improving moves only. Overload is the leading goodness component, so
    // per-part weight budgets are enforced exactly; stale proposals whose
    // gain evaporated under earlier commits are rejected for free.
    std::size_t committed = 0;
    for (const LpCandidate& cand : merged) {
      if (mc.part_of(cand.node) == cand.to) continue;
      if (mc.goodness_after(cand.node, cand.to) < mc.goodness()) {
        mc.apply(cand.node, cand.to);
        ++committed;
      }
    }
    if (committed == 0) break;
    any_committed = true;
  }
  return any_committed;
}

}  // namespace ppnpart::part
