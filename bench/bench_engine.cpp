// Portfolio engine: batch throughput, cache hit rate, determinism.
//
// Three measurements back the engine's service-layer claims:
//
//   1. Batch throughput — N jobs through Engine::run_batch (members of all
//      jobs interleave on the thread pool) vs the same work run
//      sequentially (each member of each job, one after another, no pool).
//      On a multicore host the batch path approaches a size()-fold speedup;
//      on a single core it should at least break even.
//
//   2. Repeated-query workload — Q queries drawn round-robin from D << Q
//      distinct jobs. The LRU cache answers Q - D of them in O(1); the
//      report shows the measured hit rate and the speedup over the same
//      traffic with the cache disabled.
//
//   3. Determinism — the same job run twice through fresh engines (cache
//      off) must produce bit-identical partitions.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "engine/engine.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace {

using namespace ppnpart;

engine::Job to_job(bench::InstanceFamily::Instance&& inst) {
  return engine::Job{std::move(inst.graph), inst.request};
}

using part::goodness_of;

/// The baseline a single-request CLI user gets: every portfolio member run
/// back-to-back on the calling thread, best answer kept. Seeds match the
/// engine's per-member derivation so quality is identical by construction.
part::PartitionResult run_sequential(const engine::Job& job,
                                     const engine::Portfolio& portfolio) {
  part::PartitionResult best;
  part::Goodness best_good;
  bool have = false;
  for (std::size_t i = 0; i < portfolio.size(); ++i) {
    auto algo = part::make_partitioner(portfolio.members[i]);
    part::PartitionRequest req = job.request;
    req.seed = support::SeedStream(job.request.seed).seed_for(i);
    part::PartitionResult r = algo->run(job.graph, req);
    const part::Goodness good = goodness_of(r);
    if (!have || good < best_good) {
      have = true;
      best_good = good;
      best = std::move(r);
    }
  }
  return best;
}

}  // namespace

int main() {
  const unsigned threads = support::ThreadPool::global().size();
  std::printf("# bench_engine — portfolio engine service-layer measurements\n");
  std::printf("# thread pool size: %u\n\n", threads);

  bench::InstanceFamily family;
  family.nodes = 120;
  family.k = 4;

  const engine::Portfolio portfolio = engine::Portfolio::defaults();

  // ---- 1. Batch throughput: N jobs, batch vs sequential. ------------------
  constexpr int kBatchJobs = 32;
  std::vector<engine::Job> jobs;
  jobs.reserve(kBatchJobs);
  for (int i = 0; i < kBatchJobs; ++i) jobs.push_back(to_job(family.make(i)));

  support::Timer seq_timer;
  std::vector<part::PartitionResult> seq_results;
  seq_results.reserve(jobs.size());
  for (const engine::Job& job : jobs)
    seq_results.push_back(run_sequential(job, portfolio));
  const double seq_seconds = seq_timer.seconds();

  engine::EngineOptions bopts;
  bopts.portfolio = portfolio;
  bopts.cache_capacity = 0;  // all distinct jobs; measure compute, not cache
  engine::Engine batch_engine(bopts);
  support::Timer batch_timer;
  const auto batch_results = batch_engine.run_batch(jobs);
  const double batch_seconds = batch_timer.seconds();

  int quality_matches = 0;
  for (int i = 0; i < kBatchJobs; ++i) {
    if (goodness_of(batch_results[i].best) == goodness_of(seq_results[i]))
      ++quality_matches;
  }

  std::printf("[batch throughput]  jobs=%d portfolio=%s\n", kBatchJobs,
              portfolio.to_string().c_str());
  std::printf("  sequential : %8.3f s   %6.2f jobs/s\n", seq_seconds,
              kBatchJobs / seq_seconds);
  std::printf("  run_batch  : %8.3f s   %6.2f jobs/s\n", batch_seconds,
              kBatchJobs / batch_seconds);
  std::printf("  speedup    : %6.2fx (pool size %u)\n",
              seq_seconds / batch_seconds, threads);
  std::printf("  quality    : %d/%d jobs match the sequential best exactly\n\n",
              quality_matches, kBatchJobs);

  // ---- 2. Repeated-query workload: cache hit rate and speedup. ------------
  constexpr int kDistinct = 12;
  constexpr int kQueries = 96;
  std::vector<engine::Job> distinct;
  for (int i = 0; i < kDistinct; ++i)
    distinct.push_back(to_job(family.make(1000 + i)));

  engine::EngineOptions copts;
  copts.portfolio = portfolio;
  copts.cache_capacity = 4096;
  engine::Engine cached_engine(copts);
  support::Timer cached_timer;
  for (int q = 0; q < kQueries; ++q) {
    const engine::Job& job = distinct[q % kDistinct];
    (void)cached_engine.run_one(job.graph, job.request);
  }
  const double cached_seconds = cached_timer.seconds();
  const engine::EngineStats cstats = cached_engine.stats();

  engine::EngineOptions nopts = copts;
  nopts.cache_capacity = 0;
  engine::Engine uncached_engine(nopts);
  support::Timer uncached_timer;
  for (int q = 0; q < kQueries; ++q) {
    const engine::Job& job = distinct[q % kDistinct];
    (void)uncached_engine.run_one(job.graph, job.request);
  }
  const double uncached_seconds = uncached_timer.seconds();

  std::printf("[repeated queries]  %d queries over %d distinct jobs\n",
              kQueries, kDistinct);
  std::printf("  cache hits : %llu/%d  (hit rate %.1f%%)\n",
              static_cast<unsigned long long>(cstats.cache.hits), kQueries,
              100.0 * cstats.cache.hit_rate());
  std::printf("  cached     : %8.3f s   %6.2f queries/s\n", cached_seconds,
              kQueries / cached_seconds);
  std::printf("  uncached   : %8.3f s   %6.2f queries/s\n", uncached_seconds,
              kQueries / uncached_seconds);
  std::printf("  speedup    : %6.2fx\n\n", uncached_seconds / cached_seconds);

  // ---- 3. Determinism: fixed seed => bit-identical partitions. ------------
  const engine::Job probe = to_job(family.make(77));
  engine::EngineOptions dopts;
  dopts.portfolio = portfolio;
  dopts.cache_capacity = 0;
  engine::Engine run_a(dopts);
  engine::Engine run_b(dopts);
  const auto a = run_a.run_one(probe.graph, probe.request);
  const auto b = run_b.run_one(probe.graph, probe.request);
  const bool identical =
      a.winner == b.winner &&
      a.best.partition.assignments() == b.best.partition.assignments();
  std::printf("[determinism]  fixed seed, two fresh engines\n");
  std::printf("  winner     : %s vs %s\n", a.winner.c_str(), b.winner.c_str());
  std::printf("  bit-identical partitions: %s\n", identical ? "yes" : "NO");

  return identical ? 0 : 1;
}
