#include "partition/partitioner.hpp"

namespace ppnpart::part {

void PartitionResult::finalize(const Graph& g, const Constraints& c) {
  metrics = compute_metrics(g, partition);
  violation = compute_violation(metrics, c);
  feasible = violation.feasible();
}

}  // namespace ppnpart::part
