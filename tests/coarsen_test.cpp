#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "partition/coarsen.hpp"

namespace ppnpart::part {
namespace {

TEST(Contract, PairMergesWeights) {
  // 0-1 matched (w3); 0-2 (w4), 1-2 (w5) fold into one coarse edge w9.
  graph::GraphBuilder b(3);
  b.set_node_weight(0, 10);
  b.set_node_weight(1, 20);
  b.set_node_weight(2, 30);
  b.add_edge(0, 1, 3);
  b.add_edge(0, 2, 4);
  b.add_edge(1, 2, 5);
  const Graph g = b.build();
  const CoarseLevel level = contract(g, {1, 0, 2});
  EXPECT_EQ(level.graph.num_nodes(), 2u);
  EXPECT_EQ(level.graph.num_edges(), 1u);
  EXPECT_EQ(level.graph.node_weight(0), 30);  // 10 + 20
  EXPECT_EQ(level.graph.node_weight(1), 30);
  EXPECT_EQ(level.graph.edge_weight_between(0, 1), 9);
  EXPECT_EQ(level.fine_to_coarse[0], level.fine_to_coarse[1]);
  EXPECT_NE(level.fine_to_coarse[0], level.fine_to_coarse[2]);
}

TEST(Contract, IdentityMatchingKeepsGraph) {
  support::Rng rng(2);
  const Graph g = graph::erdos_renyi_gnm(20, 50, rng, {1, 5}, {1, 5});
  Matching identity(g.num_nodes());
  std::iota(identity.begin(), identity.end(), NodeId{0});
  const CoarseLevel level = contract(g, identity);
  EXPECT_EQ(level.graph.num_nodes(), g.num_nodes());
  EXPECT_EQ(level.graph.num_edges(), g.num_edges());
  EXPECT_EQ(level.graph.total_edge_weight(), g.total_edge_weight());
}

class ContractConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ContractConservation, WeightsConserved) {
  support::Rng rng(GetParam());
  const Graph g = graph::erdos_renyi_gnm(80, 240, rng, {1, 9}, {1, 9});
  support::Rng mrng(GetParam() * 7);
  const Matching m = heavy_edge_matching(g, mrng);
  const CoarseLevel level = contract(g, m);
  // Node weight is always conserved.
  EXPECT_EQ(level.graph.total_node_weight(), g.total_node_weight());
  // Edge weight shrinks by exactly the matched (hidden) weight.
  EXPECT_EQ(level.graph.total_edge_weight() + matched_edge_weight(g, m),
            g.total_edge_weight());
  EXPECT_TRUE(level.graph.validate().empty());
  // fine_to_coarse is a surjection onto [0, coarse_n).
  std::vector<bool> hit(level.graph.num_nodes(), false);
  for (NodeId c : level.fine_to_coarse) {
    ASSERT_LT(c, level.graph.num_nodes());
    hit[c] = true;
  }
  EXPECT_TRUE(std::all_of(hit.begin(), hit.end(), [](bool x) { return x; }));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContractConservation,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Coarsen, StopsAtTarget) {
  support::Rng rng(3);
  const Graph g = graph::erdos_renyi_gnm(500, 2000, rng, {1, 5}, {1, 5});
  CoarsenOptions options;
  options.coarsen_to = 60;
  support::Rng crng(11);
  const Hierarchy h = coarsen(g, options, crng);
  EXPECT_GT(h.num_levels(), 1u);
  EXPECT_LE(h.coarsest().num_nodes(), 120u);  // roughly halves per level
  // Monotone shrink.
  for (std::size_t i = 1; i < h.num_levels(); ++i) {
    EXPECT_LT(h.graphs[i].num_nodes(), h.graphs[i - 1].num_nodes());
  }
  EXPECT_EQ(h.winners.size(), h.num_levels() - 1);
}

TEST(Coarsen, SmallGraphIsSingleLevel) {
  support::Rng rng(4);
  const Graph g = graph::erdos_renyi_gnm(12, 30, rng);
  CoarsenOptions options;  // coarsen_to = 100
  support::Rng crng(5);
  const Hierarchy h = coarsen(g, options, crng);
  EXPECT_EQ(h.num_levels(), 1u);
}

TEST(Coarsen, EdgelessGraphStops) {
  graph::GraphBuilder b(200);
  const Graph g = b.build();
  CoarsenOptions options;
  options.coarsen_to = 50;
  support::Rng rng(6);
  const Hierarchy h = coarsen(g, options, rng);
  EXPECT_EQ(h.num_levels(), 1u);  // nothing contractible
}

TEST(Coarsen, ProjectionRoundTrip) {
  support::Rng rng(7);
  const Graph g = graph::erdos_renyi_gnm(300, 900, rng, {1, 5}, {1, 5});
  CoarsenOptions options;
  options.coarsen_to = 40;
  support::Rng crng(8);
  const Hierarchy h = coarsen(g, options, crng);
  // Assign each coarsest node a distinct label; projection must give every
  // fine node the label of its coarse ancestor.
  std::vector<PartId> coarse(h.coarsest().num_nodes());
  for (std::size_t i = 0; i < coarse.size(); ++i) {
    coarse[i] = static_cast<PartId>(i % 7);
  }
  const std::vector<PartId> fine = h.project_to_level(coarse, 0);
  ASSERT_EQ(fine.size(), g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    NodeId c = u;
    for (const auto& map : h.maps) c = map[c];
    EXPECT_EQ(fine[u], coarse[c]);
  }
}

TEST(Coarsen, ThrowsWithoutStrategies) {
  CoarsenOptions options;
  options.strategies.clear();
  support::Rng rng(9);
  EXPECT_THROW(coarsen(Graph(), options, rng), std::invalid_argument);
}

TEST(CoarsenRestricted, PreservesPartition) {
  support::Rng rng(10);
  const Graph g = graph::erdos_renyi_gnm(400, 1600, rng, {1, 5}, {1, 5});
  // Arbitrary 4-way labels.
  std::vector<PartId> parts(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) parts[u] = u % 4;
  CoarsenOptions options;
  options.coarsen_to = 50;
  support::Rng crng(11);
  const RestrictedHierarchy rh = coarsen_restricted(g, parts, options, crng);
  // Every coarse node has a consistent part, and projecting back yields the
  // original labels exactly.
  ASSERT_EQ(rh.coarse_parts.size(), rh.hierarchy.coarsest().num_nodes());
  const std::vector<PartId> back =
      rh.hierarchy.project_to_level(rh.coarse_parts, 0);
  EXPECT_EQ(back, parts);
}

TEST(CoarsenRestricted, SizeMismatchThrows) {
  support::Rng rng(12);
  const Graph g = graph::erdos_renyi_gnm(10, 20, rng);
  CoarsenOptions options;
  EXPECT_THROW(coarsen_restricted(g, {0, 1}, options, rng),
               std::invalid_argument);
}

TEST(MatchingKindNames, AllDistinct) {
  EXPECT_EQ(to_string(MatchingKind::kRandom), "random");
  EXPECT_EQ(to_string(MatchingKind::kHeavyEdge), "heavy-edge");
  EXPECT_EQ(to_string(MatchingKind::kKMeans), "k-means");
}

}  // namespace
}  // namespace ppnpart::part
