#include "partition/partitioner.hpp"

#include "partition/annealing.hpp"
#include "partition/exact.hpp"
#include "partition/genetic.hpp"
#include "partition/gp.hpp"
#include "partition/kl.hpp"
#include "partition/metislike.hpp"
#include "partition/nlevel.hpp"
#include "partition/spectral.hpp"
#include "partition/tabu.hpp"

namespace ppnpart::part {

void PartitionResult::finalize(const Graph& g, const Constraints& c) {
  metrics = compute_metrics(g, partition);
  violation = compute_violation(metrics, c);
  feasible = violation.feasible();
}

Goodness goodness_of(const PartitionResult& r) {
  return Goodness{r.violation.resource_excess, r.violation.bandwidth_excess,
                  r.metrics.total_cut};
}

std::vector<std::string> partitioner_names() {
  return {"gp",   "metislike", "nlevel",  "kl",    "spectral",
          "tabu", "annealing", "genetic", "exact", "random"};
}

std::unique_ptr<Partitioner> make_partitioner(const std::string& name) {
  if (name == "gp") return std::make_unique<GpPartitioner>();
  if (name == "metislike") return std::make_unique<MetisLikePartitioner>();
  if (name == "nlevel") return std::make_unique<NLevelPartitioner>();
  if (name == "kl") return std::make_unique<KlPartitioner>();
  if (name == "spectral") return std::make_unique<SpectralPartitioner>();
  if (name == "tabu") return std::make_unique<TabuPartitioner>();
  if (name == "annealing") return std::make_unique<AnnealingPartitioner>();
  if (name == "genetic") return std::make_unique<GeneticPartitioner>();
  if (name == "exact") return std::make_unique<ExactPartitioner>();
  if (name == "random") return std::make_unique<RandomPartitioner>();
  return nullptr;
}

}  // namespace ppnpart::part
