#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/initial.hpp"

namespace ppnpart::part {
namespace {

TEST(GreedyGrow, ProducesCompletePartition) {
  support::Rng rng(1);
  const Graph g = graph::erdos_renyi_gnm(40, 120, rng, {1, 10}, {1, 5});
  Constraints c;
  c.rmax = g.total_node_weight();  // loose
  support::Rng grng(2);
  const Partition p = greedy_grow_initial(g, 4, c, GreedyGrowOptions{}, grng);
  EXPECT_TRUE(p.complete());
  EXPECT_EQ(p.k(), 4);
}

TEST(GreedyGrow, RespectsRmaxWhenFeasible) {
  // Clean instance: 4 clusters of equal weight; cap generous.
  const Graph g = graph::ring_of_cliques(4, 4, 10, 1);
  Constraints c;
  c.rmax = 5;  // each clique weighs 4 nodes * 1 = 4 <= 5
  support::Rng rng(3);
  const Partition p = greedy_grow_initial(g, 4, c, GreedyGrowOptions{}, rng);
  const PartitionMetrics m = compute_metrics(g, p);
  EXPECT_LE(m.max_load, c.rmax);
}

TEST(GreedyGrow, OverflowsOnlyAsLastResort) {
  // Total weight 40, Rmax 9, k=4 => 36 capacity: someone must overflow.
  graph::GraphBuilder b(4);
  for (NodeId u = 0; u < 4; ++u) b.set_node_weight(u, 10);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 3, 1);
  const Graph g = b.build();
  Constraints c;
  c.rmax = 9;
  support::Rng rng(4);
  const Partition p = greedy_grow_initial(g, 4, c, GreedyGrowOptions{}, rng);
  EXPECT_TRUE(p.complete());  // still assigns everything (paper's rule)
}

TEST(GreedyGrow, DeterministicGivenSeed) {
  support::Rng rng(5);
  const Graph g = graph::erdos_renyi_gnm(30, 90, rng, {1, 8}, {1, 8});
  Constraints c;
  c.rmax = g.total_node_weight() / 3;
  GreedyGrowOptions options;
  options.parallel = true;
  support::Rng a(77), b2(77);
  const Partition pa = greedy_grow_initial(g, 3, c, options, a);
  const Partition pb = greedy_grow_initial(g, 3, c, options, b2);
  EXPECT_EQ(pa.assignments(), pb.assignments());
}

TEST(GreedyGrow, SerialAndParallelAgree) {
  support::Rng rng(6);
  const Graph g = graph::erdos_renyi_gnm(30, 90, rng, {1, 8}, {1, 8});
  Constraints c;
  c.rmax = g.total_node_weight() / 3;
  GreedyGrowOptions serial;
  serial.parallel = false;
  GreedyGrowOptions parallel;
  parallel.parallel = true;
  support::Rng a(99), b2(99);
  EXPECT_EQ(greedy_grow_initial(g, 3, c, serial, a).assignments(),
            greedy_grow_initial(g, 3, c, parallel, b2).assignments());
}

TEST(GreedyGrow, MoreRestartsNeverHurt) {
  support::Rng rng(7);
  const Graph g = graph::erdos_renyi_gnm(40, 140, rng, {1, 9}, {1, 9});
  Constraints c;
  c.rmax = g.total_node_weight() / 4 + 10;
  c.bmax = 50;
  GreedyGrowOptions one;
  one.restarts = 1;
  GreedyGrowOptions many;
  many.restarts = 20;
  support::Rng a(11), b2(11);
  const Goodness g1 =
      compute_goodness(g, greedy_grow_initial(g, 4, c, one, a), c);
  const Goodness g20 =
      compute_goodness(g, greedy_grow_initial(g, 4, c, many, b2), c);
  EXPECT_FALSE(g1 < g20) << "restarts should only improve the best pick";
}

TEST(GreedyGrow, KLargerThanNodes) {
  graph::GraphBuilder b(2);
  b.add_edge(0, 1, 1);
  const Graph g = b.build();
  support::Rng rng(8);
  const Partition p =
      greedy_grow_initial(g, 5, Constraints{}, GreedyGrowOptions{}, rng);
  EXPECT_TRUE(p.complete());
}

TEST(RandomBalanced, LoadsRoughlyEqual) {
  support::Rng rng(9);
  const Graph g = graph::erdos_renyi_gnm(100, 300, rng, {1, 5}, {1, 1});
  const Partition p = random_balanced_partition(g, 4, rng);
  const PartitionMetrics m = compute_metrics(g, p);
  EXPECT_LT(m.imbalance, 1.2);
  EXPECT_TRUE(p.all_parts_nonempty());
}

TEST(RegionGrow, FractionRespected) {
  support::Rng rng(10);
  const Graph g = graph::grid2d(10, 10);
  const Partition p = region_grow_bisection(g, 0.3, rng);
  const PartitionMetrics m = compute_metrics(g, p);
  // Side 0 holds ~30% of the weight (BFS granularity adds slack).
  EXPECT_NEAR(static_cast<double>(m.loads[0]) /
                  static_cast<double>(g.total_node_weight()),
              0.3, 0.1);
}

TEST(RegionGrow, CoversDisconnectedGraphs) {
  graph::GraphBuilder b(6);
  b.add_edge(0, 1, 1);
  b.add_edge(2, 3, 1);  // two components + 2 isolated nodes
  const Graph g = b.build();
  support::Rng rng(11);
  const Partition p = region_grow_bisection(g, 0.9, rng);
  EXPECT_TRUE(p.complete());
  // 90% target must pull from several components.
  EXPECT_GE(compute_metrics(g, p).loads[0], 5);
}

}  // namespace
}  // namespace ppnpart::part
