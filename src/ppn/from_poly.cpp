#include "ppn/from_poly.hpp"

#include <algorithm>
#include <map>

namespace ppnpart::ppn {

ProcessNetwork derive_network(const poly::Program& program,
                              const DerivationOptions& options) {
  ProcessNetwork network(program.name);
  const poly::DependenceAnalysis analysis =
      poly::compute_dependences(program, options.dependence);

  // Port counts feed the resource estimate; gather them first.
  std::vector<std::uint32_t> in_ports(program.statements.size(), 0);
  std::vector<std::uint32_t> out_ports(program.statements.size(), 0);
  for (const poly::Dependence& d : analysis.flows) {
    if (options.drop_self_channels && d.producer == d.consumer) continue;
    ++out_ports[d.producer];
    ++in_ports[d.consumer];
  }
  for (const auto& ext : analysis.external_reads) ++in_ports[ext.consumer];

  // Steady-state horizon: the longest-running statement's firing count.
  std::uint64_t horizon = 1;
  for (const poly::Statement& s : program.statements) {
    horizon = std::max(horizon, s.domain.cardinality());
  }

  // One process per statement.
  std::vector<std::uint32_t> process_of(program.statements.size());
  for (std::size_t i = 0; i < program.statements.size(); ++i) {
    const poly::Statement& s = program.statements[i];
    Process p;
    p.name = s.name;
    p.firings = std::max<std::uint64_t>(1, s.domain.cardinality());
    p.resources = options.resource_model.estimate(
        s.ops_per_iteration, in_ports[i], out_ports[i]);
    process_of[i] = network.add_process(std::move(p));
  }

  // One source process per external input array.
  std::map<std::string, std::uint32_t> source_of;
  for (const std::string& array : program.external_inputs()) {
    Process p;
    p.name = "src_" + array;
    p.resources = options.source_resources;
    p.firings = 1;  // adjusted below to the total tokens it must emit
    source_of[array] = network.add_process(std::move(p));
  }

  auto bandwidth_of = [&](std::uint64_t volume) {
    return static_cast<graph::Weight>(
        std::max<std::uint64_t>(1, (volume + horizon - 1) / horizon));
  };

  for (const poly::Dependence& d : analysis.flows) {
    if (options.drop_self_channels && d.producer == d.consumer) continue;
    network.add_channel(process_of[d.producer], process_of[d.consumer],
                        bandwidth_of(d.volume), d.volume,
                        d.array + "#" + std::to_string(d.read_index));
  }
  for (const auto& ext : analysis.external_reads) {
    const std::uint32_t src = source_of.at(ext.array);
    network.add_channel(src, process_of[ext.consumer],
                        bandwidth_of(ext.volume), ext.volume,
                        ext.array + "#" + std::to_string(ext.read_index));
    // The source streams one token per firing per channel; its firing count
    // is the largest single-channel demand (SDF rates absorb the rest).
    network.process(src).firings =
        std::max(network.process(src).firings, ext.volume);
  }
  return network;
}

}  // namespace ppnpart::ppn
