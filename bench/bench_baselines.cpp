// Cross-algorithm comparison over the related-work families the paper
// surveys in Section II: local search (KL, FM-based GP refinement, tabu),
// non-greedy hill climbing (simulated annealing), evolutionary (genetic),
// spectral, multilevel (GP, MetisLike, n-level) and the exact optimum where
// tractable.
//
// Two panels:
//   1. The paper's three 12-node instances — every algorithm, constraint
//      compliance and cut next to the exact constrained optimum.
//   2. A 200-node PN family (8 instances) — feasibility rate, mean cut and
//      mean runtime per algorithm, the statistical version of the paper's
//      "GP always complies, METIS does not" claim.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "partition/annealing.hpp"
#include "partition/exact.hpp"
#include "partition/genetic.hpp"
#include "partition/gp.hpp"
#include "partition/kl.hpp"
#include "partition/metislike.hpp"
#include "partition/nlevel.hpp"
#include "partition/spectral.hpp"
#include "partition/tabu.hpp"
#include "ppn/paper_instances.hpp"

namespace {

using namespace ppnpart;

std::vector<std::unique_ptr<part::Partitioner>> make_algorithms() {
  std::vector<std::unique_ptr<part::Partitioner>> algos;
  algos.push_back(std::make_unique<part::GpPartitioner>());
  algos.push_back(std::make_unique<part::MetisLikePartitioner>());
  algos.push_back(std::make_unique<part::NLevelPartitioner>());
  algos.push_back(std::make_unique<part::KlPartitioner>());
  algos.push_back(std::make_unique<part::SpectralPartitioner>());
  algos.push_back(std::make_unique<part::TabuPartitioner>());
  algos.push_back(std::make_unique<part::AnnealingPartitioner>());
  part::GeneticOptions ga;
  ga.generations = 25;
  algos.push_back(std::make_unique<part::GeneticPartitioner>(ga));
  algos.push_back(std::make_unique<part::RandomPartitioner>());
  return algos;
}

void paper_instance_panel() {
  std::printf(
      "=== Panel 1: paper instances (K=4), all related-work families ===\n");
  for (int index = 1; index <= 3; ++index) {
    const ppn::PaperInstance inst = ppn::paper_instance(index);
    std::printf(
        "--- instance %d (n=%u m=%llu Bmax=%lld Rmax=%lld) ---\n", index,
        inst.graph.num_nodes(),
        static_cast<unsigned long long>(inst.graph.num_edges()),
        static_cast<long long>(inst.constraints.bmax),
        static_cast<long long>(inst.constraints.rmax));
    std::printf("%-10s %8s %8s %8s %10s %9s\n", "algorithm", "cut", "maxR",
                "maxB", "feasible", "time(s)");

    // Exact constrained optimum as the yardstick (12 nodes: tractable).
    part::ExactOptions exact_opts;
    exact_opts.time_limit_seconds = 30;
    const part::ExactResult exact = part::exact_min_cut(
        inst.graph, inst.k, inst.constraints, exact_opts);
    if (exact.found) {
      const part::PartitionMetrics m =
          part::compute_metrics(inst.graph, exact.partition);
      std::printf("%-10s %8lld %8lld %8lld %10s %9s\n", "Exact*",
                  static_cast<long long>(m.total_cut),
                  static_cast<long long>(m.max_load),
                  static_cast<long long>(m.max_pairwise_cut), "yes",
                  exact.optimal ? "(opt)" : "(cap)");
    }

    for (const auto& algo : make_algorithms()) {
      part::PartitionRequest request;
      request.k = inst.k;
      request.constraints = inst.constraints;
      request.seed = 2025 + static_cast<std::uint64_t>(index);
      const part::PartitionResult r = algo->run(inst.graph, request);
      std::printf("%-10s %8lld %8lld %8lld %10s %8.3fs\n",
                  algo->name().c_str(),
                  static_cast<long long>(r.metrics.total_cut),
                  static_cast<long long>(r.metrics.max_load),
                  static_cast<long long>(r.metrics.max_pairwise_cut),
                  r.feasible ? "yes" : "NO", r.seconds);
    }
  }
}

void family_panel() {
  std::printf(
      "\n=== Panel 2: 200-node PN family (8 instances, K=4, slack 1.08) "
      "===\n");
  std::printf("%-10s %10s %10s %12s %12s\n", "algorithm", "feas-rate",
              "mean-cut", "mean-maxB", "mean-time(s)");
  bench::InstanceFamily family;
  family.nodes = 200;
  family.k = 4;
  family.resource_slack = 1.08;
  family.bandwidth_slack = 1.08;

  for (const auto& algo : make_algorithms()) {
    bench::RunSummary summary;
    for (int i = 0; i < 8; ++i) {
      const auto inst = family.make(i);
      summary.add(algo->run(inst.graph, inst.request));
    }
    std::printf("%-10s %9.0f%% %10.1f %12.1f %11.3fs\n",
                algo->name().c_str(), 100.0 * summary.feasible_rate(),
                summary.mean_cut(), summary.max_bw_sum / summary.total,
                summary.mean_seconds());
  }
}

}  // namespace

int main() {
  paper_instance_panel();
  family_panel();
  return 0;
}
