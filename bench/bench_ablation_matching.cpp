// Ablation: the paper's claim (Section IV-A) that running all three matching
// heuristics side by side and keeping the best beats committing to any
// single one. Measures feasibility rate / mean cut / time over a family of
// PN-shaped instances.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace ppnpart;
  using part::MatchingKind;

  bench::InstanceFamily family;
  family.nodes = 400;
  family.k = 4;
  family.resource_slack = 1.15;
  family.bandwidth_slack = 1.2;
  const int kInstances = 8;

  struct Config {
    const char* name;
    std::vector<MatchingKind> matchings;
  };
  const std::vector<Config> configs = {
      {"random-only", {MatchingKind::kRandom}},
      {"hem-only", {MatchingKind::kHeavyEdge}},
      {"kmeans-only", {MatchingKind::kKMeans}},
      {"all-three (paper)", {MatchingKind::kRandom, MatchingKind::kHeavyEdge,
                             MatchingKind::kKMeans}},
  };

  bench::print_header(
      "Ablation: coarsening matching strategies (GP, 8 PN instances, n=400, "
      "K=4)",
      "strategy            feasible    mean-cut   mean-max-bw    mean-time");
  for (const Config& config : configs) {
    part::GpOptions options;
    options.matchings = config.matchings;
    bench::RunSummary summary;
    for (int i = 0; i < kInstances; ++i) {
      const auto inst = family.make(i);
      part::GpPartitioner gp(options);
      summary.add(gp.run(inst.graph, inst.request));
    }
    std::printf("%-18s %4d/%-4d %11.1f %13.1f %11.3fs\n", config.name,
                summary.feasible, summary.total, summary.mean_cut(),
                summary.max_bw_sum / summary.total, summary.mean_seconds());
  }
  return 0;
}
